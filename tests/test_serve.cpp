// The serving layer: EDF queue semantics, deadline-aware batch forming,
// the shared miss-rate watchdog, and the deterministic open-loop load
// simulation — bit-reproducible numbers, batching beating single-request
// service under overload, saturation triggering the Pareto-front fallback,
// and served outputs bitwise identical to single-image forwards.
//
// This suite carries the `serve` ctest label and runs both clean and under
// the NETCUT_FAULTS chaos schedule in check.sh, so every assertion must
// hold with fault injection active (the global schedule flows into
// BatchServer by default).
#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "app/watchdog.hpp"
#include "hw/device.hpp"
#include "nn/init.hpp"
#include "nn/network.hpp"
#include "serve/batcher.hpp"
#include "serve/queue.hpp"
#include "serve/server.hpp"
#include "serve_sim.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"
#include "zoo/zoo.hpp"

namespace netcut {
namespace {

using serve_sim::LoadConfig;
using serve_sim::SimReport;
using tensor::Shape;
using tensor::Tensor;

serve::Request req(std::uint64_t id, double arrival, double deadline,
                   const Tensor* input = nullptr) {
  serve::Request r;
  r.id = id;
  r.arrival_ms = arrival;
  r.deadline_ms = deadline;
  r.input = input;
  return r;
}

/// Memoized batched-latency curve of a zoo trunk on the simulated device.
std::function<double(int)> batch_curve(std::shared_ptr<const nn::Graph> graph,
                                       double scale = 1.0) {
  auto device = std::make_shared<hw::DeviceModel>();
  auto cache = std::make_shared<std::map<int, double>>();
  return [graph = std::move(graph), device, cache, scale](int b) {
    if (auto it = cache->find(b); it != cache->end()) return it->second;
    const double v =
        scale * device->network_latency_ms(*graph, hw::Precision::kInt8, true, b);
    return cache->emplace(b, v).first->second;
  };
}

std::shared_ptr<const nn::Graph> small_trunk() {
  return std::make_shared<const nn::Graph>(
      zoo::build_trunk(zoo::NetId::kMobileNetV1_025, 32));
}

TEST(ServeQueue, TakeIsEdfOrderedAndAtomic) {
  serve::RequestQueue q;
  q.push(req(0, 0.0, 30.0));
  q.push(req(1, 1.0, 10.0));
  q.push(req(2, 2.0, 20.0));
  ASSERT_EQ(q.size(), 3u);

  std::vector<serve::Request> seen;
  const auto taken = q.take([&](const std::vector<serve::Request>& edf) {
    seen = edf;
    return std::size_t{2};
  });
  // The policy saw the whole pending set EDF-sorted...
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0].id, 1u);
  EXPECT_EQ(seen[1].id, 2u);
  EXPECT_EQ(seen[2].id, 0u);
  // ... and the earliest-deadline prefix was popped.
  ASSERT_EQ(taken.size(), 2u);
  EXPECT_EQ(taken[0].id, 1u);
  EXPECT_EQ(taken[1].id, 2u);
  EXPECT_EQ(q.size(), 1u);
}

TEST(ServeQueue, DeadlineTiesBreakById) {
  serve::RequestQueue q;
  q.push(req(7, 0.0, 5.0));
  q.push(req(3, 1.0, 5.0));
  const auto taken = q.take([](const std::vector<serve::Request>& edf) {
    return edf.size();
  });
  ASSERT_EQ(taken.size(), 2u);
  EXPECT_EQ(taken[0].id, 3u);
  EXPECT_EQ(taken[1].id, 7u);
}

TEST(ServeQueue, CloseStopsPushesAndWakesWaiters) {
  serve::RequestQueue q;
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.wait_nonempty());
  EXPECT_THROW(q.push(req(0, 0.0, 1.0)), std::logic_error);
}

TEST(BatchFormer, PacksLargestBatchMeetingTheEarliestDeadline) {
  // Linear curve: lat(n) = 1 + n.
  serve::BatchFormer former({/*max_batch=*/8},
                            [](int n) { return 1.0 + static_cast<double>(n); });
  std::vector<serve::Request> edf;
  for (std::uint64_t i = 0; i < 10; ++i) edf.push_back(req(i, 0.0, 6.0));
  // now=0: need 1 + n <= 6 -> n = 5 (even though 10 are pending, cap 8).
  EXPECT_EQ(former.choose(0.0, edf), 5u);
  // now=4: only n = 1 fits (1 + 1 <= 2 slack)... 4 + 1 + n <= 6 -> n = 1.
  EXPECT_EQ(former.choose(4.0, edf), 1u);
  // Already hopeless head: still serves it rather than starving the queue.
  EXPECT_EQ(former.choose(100.0, edf), 1u);
  // Plenty of slack: capped by max_batch.
  for (auto& r : edf) r.deadline_ms = 1e6;
  EXPECT_EQ(former.choose(0.0, edf), 8u);
  EXPECT_EQ(former.choose(0.0, {}), 0u);
}

TEST(MissRateWatchdog, BreachFallsBackCooldownAndPatienceGateRecovery) {
  app::WatchdogConfig cfg;
  cfg.window = 4;
  cfg.breach_miss_rate = 0.5;
  cfg.recover_miss_rate = 0.0;
  cfg.cooldown_frames = 4;
  cfg.recover_patience = 3;
  app::MissRateWatchdog wd(cfg, 2);
  ASSERT_TRUE(wd.adaptive());

  // Fill the window with misses: the first full-window breach acts at once.
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(wd.observe(true, false).action, app::MissRateWatchdog::Action::kStay);
  const auto fall = wd.observe(true, false);
  EXPECT_EQ(fall.action, app::MissRateWatchdog::Action::kFallBack);
  EXPECT_DOUBLE_EQ(fall.window_miss_rate, 1.0);
  EXPECT_EQ(wd.current(), 1u);

  // Calm but slower-does-not-fit: never recovers.
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(wd.observe(false, false).action, app::MissRateWatchdog::Action::kStay);
  EXPECT_EQ(wd.current(), 1u);

  // Calm and fitting: recovers after the patience streak.
  int recovered_at = -1;
  for (int i = 0; i < 10; ++i) {
    if (wd.observe(false, true).action == app::MissRateWatchdog::Action::kRecover) {
      recovered_at = i;
      break;
    }
  }
  EXPECT_EQ(recovered_at, 2);  // three consecutive calm+fitting observations
  EXPECT_EQ(wd.current(), 0u);
}

TEST(ServeSim, SameSeedIsBitIdentical) {
  const auto g = small_trunk();
  LoadConfig load;
  load.requests = 300;
  const auto curve = batch_curve(g);
  load.mean_interarrival_ms = curve(1) / 4.0;
  load.deadline_slack_ms = 4.0 * curve(1);

  auto run = [&] {
    serve::RequestQueue q;
    serve::ServeConfig sc;
    sc.nominal_deadline_ms = load.deadline_slack_ms;
    serve::BatchServer server({{"trn", nullptr, batch_curve(g)}}, q, sc);
    return serve_sim::run_open_loop(server, q, serve_sim::generate_arrivals(load, {}));
  };
  const SimReport a = run();
  const SimReport b = run();
  ASSERT_EQ(a.completions.size(), 300u);
  EXPECT_TRUE(serve_sim::reports_identical(a, b));
}

TEST(ServeSim, BatchedServingBeatsSingleRequestUnderOverload) {
  // Arrivals at ~5x the single-request service rate: an unbatched server
  // saturates (queue and response times grow without bound); the batched
  // one amortizes launches and weights and keeps up.
  const auto g = small_trunk();
  const auto curve = batch_curve(g);
  LoadConfig load;
  load.requests = 400;
  load.mean_interarrival_ms = curve(1) / 5.0;
  load.deadline_slack_ms = 6.0 * curve(1);

  auto run = [&](int max_batch) {
    serve::RequestQueue q;
    serve::ServeConfig sc;
    sc.max_batch = max_batch;
    sc.nominal_deadline_ms = load.deadline_slack_ms;
    serve::BatchServer server({{"trn", nullptr, batch_curve(g)}}, q, sc);
    return serve_sim::run_open_loop(server, q, serve_sim::generate_arrivals(load, {}));
  };
  const SimReport single = run(1);
  const SimReport batched = run(8);

  EXPECT_GE(batched.throughput_rps, 3.0 * single.throughput_rps)
      << "batched=" << batched.throughput_rps << " rps, single=" << single.throughput_rps
      << " rps";
  EXPECT_LE(batched.miss_rate, single.miss_rate)
      << "batched=" << batched.miss_rate << " single=" << single.miss_rate;
  EXPECT_LE(batched.p99_response_ms, single.p99_response_ms);
  EXPECT_GT(batched.mean_batch, 1.5);
}

TEST(ServeSim, SaturationFallsBackToFasterTrnLikeADeadlineBreach) {
  // A Pareto front of two options: the preferred TRN cannot sustain the
  // offered load even batched; the fallback (a deeper cut, ~4x faster) can.
  // Queue saturation shows up as deadline misses, the shared watchdog
  // breaches, and the server sheds load by switching options.
  const auto g = small_trunk();
  const auto slow = batch_curve(g);
  LoadConfig load;
  load.requests = 600;
  load.mean_interarrival_ms = slow(8) / 8.0 * 0.8;  // beyond batched capacity
  load.deadline_slack_ms = 3.0 * slow(1);

  serve::RequestQueue q;
  serve::ServeConfig sc;
  sc.max_batch = 8;
  sc.nominal_deadline_ms = load.deadline_slack_ms;
  sc.watchdog.window = 16;
  sc.watchdog.cooldown_frames = 32;
  serve::BatchServer server(
      {{"preferred", nullptr, batch_curve(g)}, {"fallback", nullptr, batch_curve(g, 0.25)}},
      q, sc);
  const SimReport rep =
      serve_sim::run_open_loop(server, q, serve_sim::generate_arrivals(load, {}));

  ASSERT_FALSE(server.stats().switches.empty());
  EXPECT_EQ(server.stats().switches.front().from, 0u);
  EXPECT_EQ(server.stats().switches.front().to, 1u);
  // The fallback served a substantial share of the load.
  std::int64_t on_fallback = 0;
  for (const serve::Completion& c : rep.completions) on_fallback += c.option == 1 ? 1 : 0;
  EXPECT_GT(on_fallback, 0);
  EXPECT_LT(rep.miss_rate, 1.0);
}

TEST(ServeSim, ServedOutputsBitwiseIdenticalToSingleImageForwards) {
  // The whole point of the batched forward path: what a client gets back
  // from a batch-N launch is exactly what a dedicated single-image pass
  // would have produced.
  nn::Graph g = zoo::build_trunk(zoo::NetId::kMobileNetV1_025, 32);
  util::Rng rng(515);
  nn::init_graph(g, rng);
  nn::Network served(g);
  nn::Network reference(g);

  std::vector<Tensor> pool;
  for (int i = 0; i < 6; ++i) pool.push_back(Tensor::randn(Shape::chw(3, 32, 32), rng, 0.5f));

  auto graph_ptr = std::make_shared<const nn::Graph>(served.graph());
  const auto curve = batch_curve(graph_ptr);
  LoadConfig load;
  load.requests = 64;
  load.mean_interarrival_ms = curve(1) / 4.0;
  load.deadline_slack_ms = 5.0 * curve(1);

  serve::RequestQueue q;
  serve::ServeConfig sc;
  sc.nominal_deadline_ms = load.deadline_slack_ms;
  serve::BatchServer server({{"trn", &served, batch_curve(graph_ptr)}}, q, sc);
  const SimReport rep =
      serve_sim::run_open_loop(server, q, serve_sim::generate_arrivals(load, pool));

  ASSERT_EQ(rep.completions.size(), 64u);
  bool saw_multi = false;
  for (const serve::Completion& c : rep.completions) {
    saw_multi = saw_multi || c.batch > 1;
    const Tensor expect = reference.forward(pool[c.id % pool.size()]);
    ASSERT_EQ(c.output.shape(), expect.shape());
    ASSERT_EQ(std::memcmp(c.output.data(), expect.data(),
                          sizeof(float) * static_cast<std::size_t>(expect.numel())),
              0)
        << "request " << c.id << " (batch " << c.batch << ")";
  }
  EXPECT_TRUE(saw_multi) << "load never formed a multi-request batch";
}

}  // namespace
}  // namespace netcut
