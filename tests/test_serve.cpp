// The serving layer: EDF queue semantics (incrementally maintained heap),
// deadline-aware batch forming, the shared miss-rate watchdog, the
// deterministic open-loop load simulation — and the fleet layer on top:
// sharded queues with seeded work stealing, admission control with
// explicit shedding, per-tenant SLO accounting, and multi-worker scaling.
//
// This suite carries the `serve` ctest label and runs clean, under the
// NETCUT_FAULTS chaos schedule, and under TSan in check.sh, so every
// assertion must hold with fault injection active (the global schedule
// flows into BatchServer by default). Tests that pin tight latency bounds
// disable faults explicitly via ServeConfig::faults.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "app/watchdog.hpp"
#include "core/cascade.hpp"
#include "core/trn.hpp"
#include "hw/device.hpp"
#include "hw/faults.hpp"
#include "nn/init.hpp"
#include "nn/network.hpp"
#include "serve/batcher.hpp"
#include "serve/fleet.hpp"
#include "serve/queue.hpp"
#include "serve/server.hpp"
#include "serve/shard.hpp"
#include "serve_sim.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "zoo/zoo.hpp"

namespace netcut {
namespace {

using serve_sim::FleetLoadConfig;
using serve_sim::FleetReport;
using serve_sim::LoadConfig;
using serve_sim::SimReport;
using tensor::Shape;
using tensor::Tensor;

serve::Request req(std::uint64_t id, double arrival, double deadline,
                   const Tensor* input = nullptr, std::uint32_t tenant = 0) {
  serve::Request r;
  r.id = id;
  r.arrival_ms = arrival;
  r.deadline_ms = deadline;
  r.input = input;
  r.tenant = tenant;
  return r;
}

/// Take every pending request (EDF order) from a queue.
std::vector<serve::Request> take_all(serve::RequestQueue& q) {
  return q.take([](const serve::Request&, std::size_t pending) { return pending; });
}

/// Memoized batched-latency curve of a zoo trunk on the simulated device.
std::function<double(int)> batch_curve(std::shared_ptr<const nn::Graph> graph,
                                       double scale = 1.0) {
  auto device = std::make_shared<hw::DeviceModel>();
  auto cache = std::make_shared<std::map<int, double>>();
  return [graph = std::move(graph), device, cache, scale](int b) {
    if (auto it = cache->find(b); it != cache->end()) return it->second;
    const double v =
        scale * device->network_latency_ms(*graph, hw::Precision::kInt8, true, b);
    return cache->emplace(b, v).first->second;
  };
}

std::shared_ptr<const nn::Graph> small_trunk() {
  return std::make_shared<const nn::Graph>(
      zoo::build_trunk(zoo::NetId::kMobileNetV1_025, 32));
}

/// A homogeneous timing-only fleet over `n` replicas of the small trunk.
/// Faults pinned off when `tight` (tests asserting sharp latency bounds
/// must hold under the chaos schedule too). fallback_scale = 1.0 drops the
/// fallback rung: a single-option fleet, whose capacity is exactly the
/// preferred curve (the clean setup for capacity/shedding arithmetic).
serve::Fleet make_fleet(const std::shared_ptr<const nn::Graph>& graph, std::size_t n,
                        serve::FleetConfig cfg, double nominal_deadline_ms,
                        bool tight = false, double fallback_scale = 0.25,
                        const hw::FaultModel* fleet_faults = nullptr) {
  std::vector<serve::FleetWorker> workers;
  for (std::size_t w = 0; w < n; ++w) {
    serve::FleetWorker fw;
    fw.name = "w" + std::to_string(w);
    fw.options = {{"preferred", nullptr, batch_curve(graph), {}}};
    if (fallback_scale < 1.0)
      fw.options.push_back({"fallback", nullptr, batch_curve(graph, fallback_scale), {}});
    fw.serve.max_batch = 8;
    fw.serve.nominal_deadline_ms = nominal_deadline_ms;
    fw.serve.seed = util::derive_seed(7070, "fleet/worker/" + std::to_string(w));
    if (tight) fw.serve.faults = &hw::FaultModel::disabled();
    workers.push_back(std::move(fw));
  }
  // Worker-scoped fault clauses (crash=/hang=/flaky=) are pinned off at the
  // fleet level unless a test passes its own model: this suite's numeric
  // contracts describe the healthy fleet (and must hold under the
  // multiplier chaos schedule); replica failure is exercised with explicit
  // schedules here and in test_serve_failover.
  cfg.faults = fleet_faults != nullptr ? fleet_faults : &hw::FaultModel::disabled();
  return serve::Fleet(std::move(workers), std::move(cfg));
}

TEST(ServeQueue, TakeIsEdfOrderedAndAtomic) {
  serve::RequestQueue q;
  q.push(req(0, 0.0, 30.0));
  q.push(req(1, 1.0, 10.0));
  q.push(req(2, 2.0, 20.0));
  ASSERT_EQ(q.size(), 3u);

  // The policy sees the EDF head and the backlog size under the lock...
  serve::Request head;
  std::size_t pending = 0;
  const auto taken = q.take([&](const serve::Request& h, std::size_t n) {
    head = h;
    pending = n;
    return std::size_t{2};
  });
  EXPECT_EQ(head.id, 1u);
  EXPECT_EQ(pending, 3u);
  // ... and the earliest-deadline prefix is popped in EDF order.
  ASSERT_EQ(taken.size(), 2u);
  EXPECT_EQ(taken[0].id, 1u);
  EXPECT_EQ(taken[1].id, 2u);
  EXPECT_EQ(q.size(), 1u);
}

TEST(ServeQueue, DeadlineTiesBreakById) {
  serve::RequestQueue q;
  q.push(req(7, 0.0, 5.0));
  q.push(req(3, 1.0, 5.0));
  const auto taken = take_all(q);
  ASSERT_EQ(taken.size(), 2u);
  EXPECT_EQ(taken[0].id, 3u);
  EXPECT_EQ(taken[1].id, 7u);
}

TEST(ServeQueue, HeapPopOrderMatchesFullEdfSort) {
  // The heap replaced a full std::sort per take; the contract is that pop
  // order is bit-identical to the sorted order, including deadline ties.
  util::Rng rng(20260808);
  std::vector<serve::Request> all;
  serve::RequestQueue q;
  for (std::uint64_t i = 0; i < 500; ++i) {
    // Coarse deadlines force plenty of ties (broken by id).
    const double deadline = static_cast<double>(rng.uniform_int(0, 40));
    all.push_back(req(i, 0.0, deadline));
  }
  // Interleave pushes and partial takes to exercise incremental maintenance.
  std::vector<serve::Request> popped;
  std::size_t fed = 0;
  while (popped.size() < all.size()) {
    while (fed < all.size() && fed < popped.size() + 37) q.push(all[fed++]);
    const auto got = q.take([&](const serve::Request&, std::size_t pending) {
      return std::min<std::size_t>(pending, 5);
    });
    for (const auto& r : got) popped.push_back(r);
  }
  // Reference: what repeated sorted-prefix pops would have produced. With
  // the same interleaving, that is a global merge respecting (deadline, id)
  // among whatever was pending — replay it with a multiset-style sim.
  std::vector<serve::Request> pend, expect;
  fed = 0;
  auto edf_less = [](const serve::Request& a, const serve::Request& b) {
    if (a.deadline_ms != b.deadline_ms) return a.deadline_ms < b.deadline_ms;
    return a.id < b.id;
  };
  while (expect.size() < all.size()) {
    while (fed < all.size() && fed < expect.size() + 37) pend.push_back(all[fed++]);
    std::sort(pend.begin(), pend.end(), edf_less);
    const std::size_t n = std::min<std::size_t>(pend.size(), 5);
    expect.insert(expect.end(), pend.begin(), pend.begin() + static_cast<std::ptrdiff_t>(n));
    pend.erase(pend.begin(), pend.begin() + static_cast<std::ptrdiff_t>(n));
  }
  ASSERT_EQ(popped.size(), expect.size());
  for (std::size_t i = 0; i < popped.size(); ++i) {
    EXPECT_EQ(popped[i].id, expect[i].id) << "position " << i;
    EXPECT_EQ(popped[i].deadline_ms, expect[i].deadline_ms) << "position " << i;
  }
}

TEST(ServeQueue, CloseStopsPushesAndWakesWaiters) {
  serve::RequestQueue q;
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.wait_nonempty());
  EXPECT_THROW(q.push(req(0, 0.0, 1.0)), std::logic_error);
}

TEST(ServeQueue, ClosedQueueStillDrainsAndAcceptsReinserts) {
  // close() stops new arrivals but in-flight work still migrates between
  // shards and gets served: take/steal/reinsert must all work post-close.
  serve::RequestQueue q;
  q.push(req(0, 0.0, 5.0));
  q.close();
  EXPECT_THROW(q.push(req(1, 0.0, 1.0)), std::logic_error);
  q.reinsert(req(2, 0.0, 1.0));  // stolen work re-entering
  const auto stolen = q.steal(1);
  ASSERT_EQ(stolen.size(), 1u);
  EXPECT_EQ(stolen[0].id, 2u);
  const auto rest = take_all(q);
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].id, 0u);
  EXPECT_TRUE(q.empty());
}

TEST(ServeQueue, CloseRacesConcurrentPushers) {
  // N threads hammer push while the main thread closes mid-stream. Every
  // push must either land or throw logic_error — and the queue must end up
  // holding exactly the landed ones. Run under TSan in check.sh.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 400;
  serve::RequestQueue q;
  std::atomic<int> landed{0};
  std::atomic<int> refused{0};
  std::vector<std::thread> pushers;
  pushers.reserve(kThreads);
  for (int p = 0; p < kThreads; ++p)
    pushers.emplace_back([&, p] {
      for (int i = 0; i < kPerThread; ++i) {
        try {
          q.push(req(static_cast<std::uint64_t>(p * kPerThread + i), 0.0, 1.0));
          landed.fetch_add(1, std::memory_order_relaxed);
        } catch (const std::logic_error&) {
          refused.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  q.close();  // races the pushers on purpose
  for (auto& t : pushers) t.join();
  EXPECT_EQ(landed.load() + refused.load(), kThreads * kPerThread);
  EXPECT_EQ(q.size(), static_cast<std::size_t>(landed.load()));
  EXPECT_TRUE(q.closed());
  // Drain still works and is EDF-ordered.
  const auto drained = take_all(q);
  EXPECT_EQ(drained.size(), static_cast<std::size_t>(landed.load()));
}

TEST(ShardedQueue, RoutesByTenantAndStealsEdfHead) {
  serve::ShardedQueue sq(2, 1234);
  // One tenant: rendezvous hashing sends its whole stream to one home
  // shard (deterministic per seed), so the other shard runs dry.
  const std::size_t home = sq.route(0);
  const std::size_t thief = 1 - home;
  sq.push(req(0, 0.0, 40.0));
  sq.push(req(2, 0.0, 10.0));
  sq.push(req(4, 0.0, 20.0));
  sq.push(req(6, 0.0, 30.0));
  EXPECT_EQ(sq.shard(home).size(), 4u);
  EXPECT_EQ(sq.shard(thief).size(), 0u);

  // The dry worker steals: it takes the victim's earliest-deadline work.
  const std::size_t stolen = sq.balance(thief, 2);
  EXPECT_EQ(stolen, 2u);
  EXPECT_EQ(sq.steals(thief), 1);
  EXPECT_EQ(sq.shard(home).size(), 2u);
  ASSERT_EQ(sq.shard(thief).size(), 2u);
  const auto got = take_all(sq.shard(thief));
  EXPECT_EQ(got[0].id, 2u);  // deadline 10
  EXPECT_EQ(got[1].id, 4u);  // deadline 20

  // A non-dry shard never steals.
  sq.push(req(8, 0.0, 5.0));
  EXPECT_EQ(sq.balance(home, 8), 0u);
}

TEST(ShardedQueue, RendezvousRoutingIsDeterministicAndMinimallyDisruptive) {
  // Same seed -> identical routing; different seed -> a different (but
  // still valid) assignment. Dropping one shard from the routable set only
  // remaps the tenants whose home was the dropped shard — every other
  // tenant keeps its home (the minimal-disruption property that makes
  // failover cheap: survivors' queues keep their EDF state).
  serve::ShardedQueue a(4, 777);
  serve::ShardedQueue b(4, 777);
  std::map<std::uint32_t, std::size_t> before;
  for (std::uint32_t tenant = 0; tenant < 64; ++tenant) {
    EXPECT_EQ(a.route(tenant), b.route(tenant));
    before[tenant] = a.route(tenant);
  }
  // All four shards attract some tenant (HRW spreads the keyspace).
  std::vector<int> hits(4, 0);
  for (const auto& [tenant, s] : before) ++hits[s];
  for (int h : hits) EXPECT_GT(h, 0);

  a.set_routable(2, false);
  for (std::uint32_t tenant = 0; tenant < 64; ++tenant) {
    const std::size_t now = a.route(tenant);
    EXPECT_NE(now, 2u);
    if (before[tenant] != 2) {
      EXPECT_EQ(now, before[tenant]);
    }
  }
  // Restoring the shard restores the original assignment exactly.
  a.set_routable(2, true);
  for (std::uint32_t tenant = 0; tenant < 64; ++tenant)
    EXPECT_EQ(a.route(tenant), before[tenant]);
  // With nothing routable, route() falls back to the full shard set.
  for (std::size_t s = 0; s < 4; ++s) a.set_routable(s, false);
  for (std::uint32_t tenant = 0; tenant < 8; ++tenant)
    EXPECT_EQ(a.route(tenant), before[tenant]);
}

TEST(ShardedQueue, StealFromEmptyShardSetIsANoOp) {
  serve::ShardedQueue sq(4, 99);
  EXPECT_EQ(sq.total_size(), 0u);
  for (std::size_t w = 0; w < sq.shards(); ++w) {
    EXPECT_EQ(sq.balance(w, 8), 0u);
    EXPECT_EQ(sq.steals(w), 0);
  }
  EXPECT_EQ(sq.total_size(), 0u);
  // The empty attempts consumed no RNG draws: the first real steal matches
  // a fresh same-seed shard set's first steal bit-for-bit.
  serve::ShardedQueue fresh(4, 99);
  for (std::uint64_t i = 0; i < 8; ++i) {
    sq.push(req(i * 4 + 1, 0.0, static_cast<double>(i)));   // one tenant, one home shard
    fresh.push(req(i * 4 + 1, 0.0, static_cast<double>(i)));
  }
  const std::size_t thief = (sq.route(0) + 1) % 4;  // a shard that is dry for sure
  EXPECT_EQ(sq.balance(thief, 3), fresh.balance(thief, 3));
  const auto a = take_all(sq.shard(thief));
  const auto b = take_all(fresh.shard(thief));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].id, b[i].id);
}

TEST(BatchFormer, PacksLargestBatchMeetingTheEarliestDeadline) {
  // Linear curve: lat(n) = 1 + n.
  serve::BatchFormer former({/*max_batch=*/8},
                            [](int n) { return 1.0 + static_cast<double>(n); });
  // now=0, head deadline 6, 10 pending: need 1 + n <= 6 -> n = 5.
  EXPECT_EQ(former.choose(0.0, 6.0, 10), 5u);
  // now=4: 4 + 1 + n <= 6 -> n = 1.
  EXPECT_EQ(former.choose(4.0, 6.0, 10), 1u);
  // Already hopeless head: still served — in the largest batch, since
  // nothing can save it and full amortization drains the backlog fastest.
  EXPECT_EQ(former.choose(100.0, 6.0, 10), 8u);
  // Head that fits alone but not with company: batch of exactly 1.
  EXPECT_EQ(former.choose(3.9, 6.0, 10), 1u);
  // Plenty of slack: capped by max_batch, then by pending.
  EXPECT_EQ(former.choose(0.0, 1e6, 10), 8u);
  EXPECT_EQ(former.choose(0.0, 1e6, 3), 3u);
  EXPECT_EQ(former.choose(0.0, 6.0, 0), 0u);
}

TEST(MissRateWatchdog, BreachFallsBackCooldownAndPatienceGateRecovery) {
  app::WatchdogConfig cfg;
  cfg.window = 4;
  cfg.breach_miss_rate = 0.5;
  cfg.recover_miss_rate = 0.0;
  cfg.cooldown_frames = 4;
  cfg.recover_patience = 3;
  app::MissRateWatchdog wd(cfg, 2);
  ASSERT_TRUE(wd.adaptive());
  EXPECT_DOUBLE_EQ(wd.window_miss_rate(), 0.0);

  // Fill the window with misses: the first full-window breach acts at once.
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(wd.observe(true, false).action, app::MissRateWatchdog::Action::kStay);
  EXPECT_DOUBLE_EQ(wd.window_miss_rate(), 1.0);
  const auto fall = wd.observe(true, false);
  EXPECT_EQ(fall.action, app::MissRateWatchdog::Action::kFallBack);
  EXPECT_DOUBLE_EQ(fall.window_miss_rate, 1.0);
  EXPECT_EQ(wd.current(), 1u);
  EXPECT_DOUBLE_EQ(wd.window_miss_rate(), 0.0);  // window resets on switch

  // Calm but slower-does-not-fit: never recovers.
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(wd.observe(false, false).action, app::MissRateWatchdog::Action::kStay);
  EXPECT_EQ(wd.current(), 1u);

  // Calm and fitting: recovers after the patience streak.
  int recovered_at = -1;
  for (int i = 0; i < 10; ++i) {
    if (wd.observe(false, true).action == app::MissRateWatchdog::Action::kRecover) {
      recovered_at = i;
      break;
    }
  }
  EXPECT_EQ(recovered_at, 2);  // three consecutive calm+fitting observations
  EXPECT_EQ(wd.current(), 0u);
}

TEST(ServeSim, SameSeedIsBitIdentical) {
  const auto g = small_trunk();
  LoadConfig load;
  load.requests = 300;
  const auto curve = batch_curve(g);
  load.mean_interarrival_ms = curve(1) / 4.0;
  load.deadline_slack_ms = 4.0 * curve(1);

  auto run = [&] {
    serve::RequestQueue q;
    serve::ServeConfig sc;
    sc.nominal_deadline_ms = load.deadline_slack_ms;
    serve::BatchServer server({{"trn", nullptr, batch_curve(g), {}}}, q, sc);
    return serve_sim::run_open_loop(server, q, serve_sim::generate_arrivals(load, {}));
  };
  const SimReport a = run();
  const SimReport b = run();
  ASSERT_EQ(a.completions.size(), 300u);
  EXPECT_TRUE(serve_sim::reports_identical(a, b));
}

TEST(ServeSim, BatchedServingBeatsSingleRequestUnderOverload) {
  // Arrivals at ~5x the single-request service rate: an unbatched server
  // saturates (queue and response times grow without bound); the batched
  // one amortizes launches and weights and keeps up.
  const auto g = small_trunk();
  const auto curve = batch_curve(g);
  LoadConfig load;
  load.requests = 400;
  load.mean_interarrival_ms = curve(1) / 5.0;
  load.deadline_slack_ms = 6.0 * curve(1);

  auto run = [&](int max_batch) {
    serve::RequestQueue q;
    serve::ServeConfig sc;
    sc.max_batch = max_batch;
    sc.nominal_deadline_ms = load.deadline_slack_ms;
    serve::BatchServer server({{"trn", nullptr, batch_curve(g), {}}}, q, sc);
    return serve_sim::run_open_loop(server, q, serve_sim::generate_arrivals(load, {}));
  };
  const SimReport single = run(1);
  const SimReport batched = run(8);

  EXPECT_GE(batched.throughput_rps, 3.0 * single.throughput_rps)
      << "batched=" << batched.throughput_rps << " rps, single=" << single.throughput_rps
      << " rps";
  EXPECT_LE(batched.miss_rate, single.miss_rate)
      << "batched=" << batched.miss_rate << " single=" << single.miss_rate;
  EXPECT_LE(batched.p99_response_ms, single.p99_response_ms);
  EXPECT_GT(batched.mean_batch, 1.5);
}

TEST(ServeSim, SaturationFallsBackToFasterTrnLikeADeadlineBreach) {
  // A Pareto front of two options: the preferred TRN cannot sustain the
  // offered load even batched; the fallback (a deeper cut, ~4x faster) can.
  // Queue saturation shows up as deadline misses, the shared watchdog
  // breaches, and the server sheds load by switching options.
  const auto g = small_trunk();
  const auto slow = batch_curve(g);
  LoadConfig load;
  load.requests = 600;
  load.mean_interarrival_ms = slow(8) / 8.0 * 0.8;  // beyond batched capacity
  load.deadline_slack_ms = 3.0 * slow(1);

  serve::RequestQueue q;
  serve::ServeConfig sc;
  sc.max_batch = 8;
  sc.nominal_deadline_ms = load.deadline_slack_ms;
  sc.watchdog.window = 16;
  sc.watchdog.cooldown_frames = 32;
  serve::BatchServer server(
      {{"preferred", nullptr, batch_curve(g), {}}, {"fallback", nullptr, batch_curve(g, 0.25), {}}},
      q, sc);
  const SimReport rep =
      serve_sim::run_open_loop(server, q, serve_sim::generate_arrivals(load, {}));

  ASSERT_FALSE(server.stats().switches.empty());
  EXPECT_EQ(server.stats().switches.front().from, 0u);
  EXPECT_EQ(server.stats().switches.front().to, 1u);
  // The fallback served a substantial share of the load.
  std::int64_t on_fallback = 0;
  for (const serve::Completion& c : rep.completions) on_fallback += c.option == 1 ? 1 : 0;
  EXPECT_GT(on_fallback, 0);
  EXPECT_LT(rep.miss_rate, 1.0);
}

TEST(ServeSim, ServedOutputsBitwiseIdenticalToSingleImageForwards) {
  // The whole point of the batched forward path: what a client gets back
  // from a batch-N launch is exactly what a dedicated single-image pass
  // would have produced.
  nn::Graph g = zoo::build_trunk(zoo::NetId::kMobileNetV1_025, 32);
  util::Rng rng(515);
  nn::init_graph(g, rng);
  nn::Network served(g);
  nn::Network reference(g);

  std::vector<Tensor> pool;
  for (int i = 0; i < 6; ++i) pool.push_back(Tensor::randn(Shape::chw(3, 32, 32), rng, 0.5f));

  auto graph_ptr = std::make_shared<const nn::Graph>(served.graph());
  const auto curve = batch_curve(graph_ptr);
  LoadConfig load;
  load.requests = 64;
  load.mean_interarrival_ms = curve(1) / 4.0;
  load.deadline_slack_ms = 5.0 * curve(1);

  serve::RequestQueue q;
  serve::ServeConfig sc;
  sc.nominal_deadline_ms = load.deadline_slack_ms;
  serve::BatchServer server({{"trn", &served, batch_curve(graph_ptr), {}}}, q, sc);
  const SimReport rep =
      serve_sim::run_open_loop(server, q, serve_sim::generate_arrivals(load, pool));

  ASSERT_EQ(rep.completions.size(), 64u);
  bool saw_multi = false;
  for (const serve::Completion& c : rep.completions) {
    saw_multi = saw_multi || c.batch > 1;
    const Tensor expect = reference.forward(pool[c.id % pool.size()]);
    ASSERT_EQ(c.output.shape(), expect.shape());
    ASSERT_EQ(std::memcmp(c.output.data(), expect.data(),
                          sizeof(float) * static_cast<std::size_t>(expect.numel())),
              0)
        << "request " << c.id << " (batch " << c.batch << ")";
  }
  EXPECT_TRUE(saw_multi) << "load never formed a multi-request batch";
}

TEST(ServeSim, CascadeSameSeedBitIdenticalAndNoSilentOutcomes) {
  // Timing-only cascade option: escalation wishes are Bernoulli(p) draws
  // keyed on (cascade seed, request id), so two same-seed runs must agree
  // on every completion — including the escalated flag, which rides bit 3
  // of the completion digest.
  const auto g = small_trunk();
  const auto deep = batch_curve(g);
  LoadConfig load;
  load.requests = 400;
  load.mean_interarrival_ms = deep(1) / 3.0;
  load.deadline_slack_ms = 6.0 * deep(1);

  auto run = [&] {
    serve::RequestQueue q;
    serve::ServeConfig sc;
    sc.max_batch = 8;
    sc.nominal_deadline_ms = load.deadline_slack_ms;
    serve::ServeCascade cascade;
    cascade.enabled = true;
    cascade.threshold = 0.2;
    cascade.p_escalate = 0.3;
    cascade.stage2_ms = batch_curve(g, 0.6);
    serve::BatchServer server({{"cascade", nullptr, batch_curve(g, 0.35), cascade}}, q, sc);
    SimReport rep = serve_sim::run_open_loop(server, q, serve_sim::generate_arrivals(load, {}));
    return std::make_pair(std::move(rep), server.stats().escalated);
  };
  const auto [a, esc_a] = run();
  const auto [b, esc_b] = run();

  ASSERT_EQ(a.completions.size(), 400u);
  EXPECT_TRUE(serve_sim::reports_identical(a, b));
  std::uint64_t ha = 14695981039346656037ull, hb = ha;
  for (const serve::Completion& c : a.completions) serve_sim::digest_completion(ha, c);
  for (const serve::Completion& c : b.completions) serve_sim::digest_completion(hb, c);
  EXPECT_EQ(ha, hb);

  // No silent outcomes: every submitted request completes exactly once with
  // explicit flags, and the server's escalation counter matches the
  // per-completion flags.
  std::vector<char> seen(a.completions.size(), 0);
  std::int64_t escalated = 0;
  for (const serve::Completion& c : a.completions) {
    ASSERT_LT(c.id, seen.size());
    ASSERT_EQ(seen[c.id], 0) << "request " << c.id << " completed twice";
    seen[c.id] = 1;
    escalated += c.escalated ? 1 : 0;
  }
  EXPECT_EQ(escalated, esc_a);
  EXPECT_EQ(esc_a, esc_b);
  EXPECT_GT(escalated, 0);
  EXPECT_LT(escalated, 400);
}

TEST(ServeSim, CascadeTailNoWorseThanEqualAccuracyStaticCut) {
  // A mixed easy/hard workload against the static cut that delivers the
  // cascade's accuracy — the deep one (escalations produce the deep TRN's
  // output, early exits only take high-confidence answers). Unbatched, the
  // deep cut cannot sustain the offered load; the cascade pays the full
  // two-stage price only for the escalating fraction and keeps up, so its
  // p99 and miss rate must be no worse.
  const auto g = small_trunk();
  const auto deep = batch_curve(g);
  LoadConfig load;
  load.requests = 400;
  load.mean_interarrival_ms = 0.9 * deep(1);  // beyond the unbatched deep rate
  load.deadline_slack_ms = 4.0 * deep(1);
  const auto arrivals = serve_sim::generate_arrivals(load, {});

  auto run = [&](bool cascaded) {
    serve::RequestQueue q;
    serve::ServeConfig sc;
    sc.max_batch = 1;
    sc.nominal_deadline_ms = load.deadline_slack_ms;
    serve::ServeCascade cascade;
    if (cascaded) {
      cascade.enabled = true;
      cascade.threshold = 0.2;
      cascade.p_escalate = 0.25;
      // Stage 2 resumes from the shared prefix: stage1 + stage2 lands near
      // (just above) the deep cut's from-scratch cost.
      cascade.stage2_ms = batch_curve(g, 0.6);
    }
    serve::BatchServer server(
        {{cascaded ? "cascade" : "deep", nullptr,
          cascaded ? batch_curve(g, 0.35) : batch_curve(g), cascade}},
        q, sc);
    return serve_sim::run_open_loop(server, q, arrivals);
  };
  const SimReport cascade_rep = run(true);
  const SimReport deep_rep = run(false);

  EXPECT_LE(cascade_rep.miss_rate, deep_rep.miss_rate)
      << "cascade=" << cascade_rep.miss_rate << " deep=" << deep_rep.miss_rate;
  EXPECT_LE(cascade_rep.p99_response_ms, deep_rep.p99_response_ms);
  EXPECT_LT(cascade_rep.p50_response_ms, deep_rep.p50_response_ms);
}

TEST(ServeSim, CascadeServedOutputsMatchStageReferences) {
  // The compute cascade's serving contract: an escalated request gets
  // exactly the deep TRN's output (prefix resume included), everything else
  // gets exactly the shallow head's — bitwise, through batching.
  nn::Graph trunk = zoo::build_trunk(zoo::NetId::kMobileNetV1_025, 32);
  util::Rng rng(606);
  nn::init_graph(trunk, rng);
  const std::vector<int> cuts = core::blockwise_cutpoints(trunk);
  core::CascadeTrn cascade(trunk, cuts[cuts.size() / 3], cuts.back(), core::HeadConfig{},
                           rng);
  nn::Network ref_shallow(cascade.shallow().graph());
  nn::Network ref_deep(cascade.deep().graph());

  std::vector<Tensor> pool;
  for (int i = 0; i < 8; ++i) pool.push_back(Tensor::randn(Shape::chw(3, 32, 32), rng, 0.5f));
  // Median stage-1 margin of the pool: roughly half the requests escalate —
  // the mixed easy/hard workload.
  std::vector<double> margins;
  for (const Tensor& img : pool) margins.push_back(cascade.stage1(img).margin);
  std::sort(margins.begin(), margins.end());
  const double threshold = margins[margins.size() / 2];

  auto deep_graph = std::make_shared<const nn::Graph>(ref_deep.graph());
  auto shallow_graph = std::make_shared<const nn::Graph>(ref_shallow.graph());
  const auto shallow_curve = batch_curve(shallow_graph);
  LoadConfig load;
  load.requests = 48;
  load.mean_interarrival_ms = shallow_curve(1) / 3.0;
  load.deadline_slack_ms = 8.0 * batch_curve(deep_graph)(1);

  serve::RequestQueue q;
  serve::ServeConfig sc;
  sc.max_batch = 4;
  sc.nominal_deadline_ms = load.deadline_slack_ms;
  serve::ServeCascade sco;
  sco.enabled = true;
  sco.trn = &cascade;
  sco.threshold = threshold;
  sco.p_escalate = 0.5;
  sco.stage2_ms = batch_curve(deep_graph, 0.5);
  serve::BatchServer server({{"cascade", nullptr, shallow_curve, sco}}, q, sc);
  const SimReport rep =
      serve_sim::run_open_loop(server, q, serve_sim::generate_arrivals(load, pool));

  ASSERT_EQ(rep.completions.size(), 48u);
  int escalated = 0, exited = 0;
  for (const serve::Completion& c : rep.completions) {
    const Tensor& input = pool[c.id % pool.size()];
    const Tensor expect = c.escalated ? ref_deep.forward(input) : ref_shallow.forward(input);
    escalated += c.escalated ? 1 : 0;
    exited += c.escalated ? 0 : 1;
    ASSERT_EQ(c.output.shape(), expect.shape());
    ASSERT_EQ(std::memcmp(c.output.data(), expect.data(),
                          sizeof(float) * static_cast<std::size_t>(expect.numel())),
              0)
        << "request " << c.id << (c.escalated ? " (escalated)" : " (early exit)");
  }
  EXPECT_GT(escalated, 0) << "workload never escalated";
  EXPECT_GT(exited, 0) << "workload never exited early";
  EXPECT_EQ(server.stats().escalated, escalated);
}

TEST(ServeSim, ExpectedLatencyBudgetsEscalationMass) {
  const auto g = small_trunk();
  const auto stage1 = batch_curve(g, 0.35);
  const auto stage2 = batch_curve(g, 0.6);
  serve::ServeCascade cascade;
  cascade.enabled = true;
  cascade.threshold = 0.2;
  cascade.p_escalate = 0.3;
  cascade.stage2_ms = stage2;
  const serve::ServeOption opt{"cascade", nullptr, stage1, cascade};
  // ceil(0.3 * 8) = 3 escalations budgeted at batch 8.
  EXPECT_DOUBLE_EQ(serve::expected_latency_ms(opt, 8), stage1(8) + stage2(3));
  EXPECT_DOUBLE_EQ(serve::expected_latency_ms(opt, 1), stage1(1) + stage2(1));
  const serve::ServeOption plain{"deep", nullptr, batch_curve(g), {}};
  EXPECT_DOUBLE_EQ(serve::expected_latency_ms(plain, 8), batch_curve(g)(8));
  serve::ServeCascade never = cascade;
  never.p_escalate = 0.0;
  const serve::ServeOption opt0{"cascade0", nullptr, stage1, never};
  EXPECT_DOUBLE_EQ(serve::expected_latency_ms(opt0, 8), stage1(8));
}

TEST(FleetSim, SameSeedBitIdenticalIncludingPerTenantReport) {
  // The fleet contract at scale: (config, seed) fully determines the
  // completion stream, work stealing, shedding and every per-tenant
  // number. 20k requests over a 3-worker fleet, two tenants.
  const auto g = small_trunk();
  const auto curve = batch_curve(g);
  serve::FleetConfig fc;
  fc.classes = {{"gold", 4.0 * curve(1), 4.0 * curve(1), 3.0},
                {"standard", 8.0 * curve(1), 8.0 * curve(1), 1.0}};
  FleetLoadConfig load;
  load.requests = 20000;
  load.mean_interarrival_ms = curve(8) / 8.0 / 2.5;  // ~2.5 workers' worth
  load.tenants = {{11, 0, 1.0}, {22, 1, 2.0}};

  auto run = [&] {
    serve::Fleet fleet = make_fleet(g, 3, fc, fc.classes[0].deadline_slack_ms);
    return serve_sim::run_fleet_open_loop(
        fleet, serve_sim::generate_fleet_arrivals(load, fc.classes, {}));
  };
  const FleetReport a = run();
  const FleetReport b = run();
  EXPECT_EQ(a.submitted, 20000);
  EXPECT_EQ(a.shed + a.served, 20000);
  ASSERT_EQ(a.tenants.size(), 2u);
  EXPECT_TRUE(serve_sim::fleet_reports_identical(a, b));
}

TEST(FleetSim, BitIdenticalAtOneAndEightThreads) {
  // NETCUT_THREADS parallelizes the kernels inside forward_batch, never the
  // event loop or the steal streams — so a compute-backed fleet run is
  // bit-identical (reports AND output tensors) at any thread count.
  nn::Graph g = zoo::build_trunk(zoo::NetId::kMobileNetV1_025, 32);
  util::Rng rng(616);
  nn::init_graph(g, rng);
  auto graph_ptr = std::make_shared<const nn::Graph>(g);
  const auto curve = batch_curve(graph_ptr);

  serve::FleetConfig fc;
  fc.classes = {{"standard", 6.0 * curve(1), 6.0 * curve(1), 1.0}};
  FleetLoadConfig load;
  load.requests = 96;
  load.mean_interarrival_ms = curve(8) / 8.0 / 1.5;
  load.tenants = {{1, 0, 1.0}, {2, 0, 1.0}};

  std::vector<Tensor> pool;
  for (int i = 0; i < 5; ++i) pool.push_back(Tensor::randn(Shape::chw(3, 32, 32), rng, 0.5f));
  const auto arrivals = serve_sim::generate_fleet_arrivals(load, fc.classes, pool);

  auto run = [&](int threads, std::vector<serve::Completion>& cap) {
    util::set_num_threads(threads);
    std::vector<std::unique_ptr<nn::Network>> nets;
    std::vector<serve::FleetWorker> workers;
    for (std::size_t w = 0; w < 2; ++w) {
      nets.push_back(std::make_unique<nn::Network>(*graph_ptr));
      serve::FleetWorker fw;
      fw.options = {{"trn", nets.back().get(), batch_curve(graph_ptr), {}}};
      fw.serve.nominal_deadline_ms = fc.classes[0].deadline_slack_ms;
      workers.push_back(std::move(fw));
    }
    serve::Fleet fleet(std::move(workers), fc);
    return serve_sim::run_fleet_open_loop(fleet, arrivals, &cap);
  };
  std::vector<serve::Completion> cap1, cap8;
  const FleetReport r1 = run(1, cap1);
  const FleetReport r8 = run(8, cap8);
  util::set_num_threads(util::default_thread_count());

  EXPECT_TRUE(serve_sim::fleet_reports_identical(r1, r8));
  ASSERT_EQ(cap1.size(), cap8.size());
  for (std::size_t i = 0; i < cap1.size(); ++i) {
    ASSERT_EQ(cap1[i].id, cap8[i].id);
    ASSERT_EQ(cap1[i].output.shape(), cap8[i].output.shape());
    if (cap1[i].output.numel() > 0)
      ASSERT_EQ(std::memcmp(cap1[i].output.data(), cap8[i].output.data(),
                            sizeof(float) * static_cast<std::size_t>(cap1[i].output.numel())),
                0)
          << "request " << cap1[i].id;
  }
}

TEST(FleetSim, FourWorkersSustainTripleOneWorkerThroughput) {
  // The scale-out headline, small edition (the bench pins it at fleet
  // scale): offered load ~6x one worker's batched capacity; four replicas
  // absorb ~4x what one does, at no worse an admitted miss rate.
  const auto g = small_trunk();
  const auto curve = batch_curve(g);
  serve::FleetConfig fc;
  fc.classes = {{"standard", 6.0 * curve(1), 6.0 * curve(1), 1.0}};
  FleetLoadConfig load;
  load.requests = 30000;
  load.mean_interarrival_ms = curve(8) / 8.0 / 6.0;  // ~6x one worker
  // Many tenants so rendezvous hashing spreads the stream across shards
  // (per-tenant routing concentrates any single tenant on one home shard).
  load.tenants = {{1, 0, 1.0}, {2, 0, 1.0}, {3, 0, 1.0}, {4, 0, 1.0},
                  {5, 0, 1.0}, {6, 0, 1.0}, {7, 0, 1.0}, {8, 0, 1.0}};

  auto run = [&](std::size_t workers) {
    serve::Fleet fleet = make_fleet(g, workers, fc, fc.classes[0].deadline_slack_ms,
                                    /*tight=*/true, /*fallback_scale=*/1.0);
    return serve_sim::run_fleet_open_loop(
        fleet, serve_sim::generate_fleet_arrivals(load, fc.classes, {}));
  };
  const FleetReport one = run(1);
  const FleetReport four = run(4);
  EXPECT_GE(four.throughput_rps, 3.0 * one.throughput_rps)
      << "four=" << four.throughput_rps << " one=" << one.throughput_rps;
  EXPECT_LE(four.miss_rate, one.miss_rate + 0.01);
  EXPECT_LT(four.shed_rate, one.shed_rate);  // more capacity, less shedding
}

TEST(FleetSim, WorkStealingRecoversUtilizationUnderSkewedRouting) {
  // Same fleet and rate as the scaling test, but the whole stream belongs
  // to ONE tenant — rendezvous hashing pins 100% of the traffic to its
  // home shard, the worst-case routing skew. Without stealing, three of
  // four workers would idle and throughput would collapse to one worker's;
  // with it, dry workers pull the EDF-earliest work over and aggregate
  // throughput stays at the balanced (8-tenant) fleet's level.
  const auto g = small_trunk();
  const auto curve = batch_curve(g);
  serve::FleetConfig fc;
  fc.classes = {{"standard", 6.0 * curve(1), 6.0 * curve(1), 1.0}};
  FleetLoadConfig load;
  load.requests = 30000;
  load.mean_interarrival_ms = curve(8) / 8.0 / 6.0;

  auto run = [&](bool skew) {
    load.tenants.clear();
    if (skew) {
      load.tenants = {{1, 0, 1.0}};
    } else {
      for (std::uint32_t tenant = 1; tenant <= 8; ++tenant)
        load.tenants.push_back({tenant, 0, 1.0});
    }
    serve::Fleet fleet = make_fleet(g, 4, fc, fc.classes[0].deadline_slack_ms,
                                    /*tight=*/true, /*fallback_scale=*/1.0);
    return serve_sim::run_fleet_open_loop(
        fleet, serve_sim::generate_fleet_arrivals(load, fc.classes, {}));
  };
  const FleetReport balanced = run(false);
  const FleetReport skewed = run(true);
  EXPECT_GT(skewed.steals, 1000);  // stealing carried most of three workers' load
  EXPECT_GE(skewed.throughput_rps, 0.8 * balanced.throughput_rps)
      << "skewed=" << skewed.throughput_rps << " balanced=" << balanced.throughput_rps;
  EXPECT_LT(skewed.miss_rate, 0.02);
}

TEST(FleetSim, RendezvousRemapKeepsThroughputNearBalanced) {
  // Satellite contract for tenant-aware routing: crash one of four
  // replicas at attempt 0, so the whole run serves against the remapped
  // 3-shard assignment. At ~2.5x one worker's rate the surviving three
  // have headroom, and because HRW moves ONLY the dead shard's tenants
  // (survivors keep their queues) and stealing levels the coarser 3-way
  // hash, throughput stays >= 0.9x the healthy balanced fleet's.
  const auto g = small_trunk();
  const auto curve = batch_curve(g);
  serve::FleetConfig fc;
  fc.classes = {{"standard", 6.0 * curve(1), 6.0 * curve(1), 1.0}};
  FleetLoadConfig load;
  load.requests = 30000;
  load.mean_interarrival_ms = curve(8) / 8.0 / 2.5;  // ~2.5x one worker
  for (std::uint32_t tenant = 1; tenant <= 8; ++tenant)
    load.tenants.push_back({tenant, 0, 1.0});
  const auto arrivals = serve_sim::generate_fleet_arrivals(load, fc.classes, {});

  const hw::FaultModel crash2(hw::parse_fault_spec("crash=2@0,seed=11"));
  auto run = [&](const hw::FaultModel* faults) {
    serve::Fleet fleet = make_fleet(g, 4, fc, fc.classes[0].deadline_slack_ms,
                                    /*tight=*/true, /*fallback_scale=*/1.0, faults);
    return serve_sim::run_fleet_open_loop(fleet, arrivals);
  };
  const FleetReport balanced = run(nullptr);
  const FleetReport remapped = run(&crash2);
  EXPECT_GE(remapped.failovers, 1);
  EXPECT_GE(remapped.throughput_rps, 0.9 * balanced.throughput_rps)
      << "remapped=" << remapped.throughput_rps << " balanced=" << balanced.throughput_rps;
  // Everything is explicitly accounted through the failover.
  EXPECT_EQ(remapped.shed + remapped.served, remapped.submitted);
}

TEST(FleetSim, AdmissionShedsExplicitlyAndBoundsAdmittedTail) {
  // 2x overload: admission control turns the overflow into explicit
  // Rejected completions instead of a growing queue of silent misses —
  // admitted requests keep their p99 within the SLO class budget.
  const auto g = small_trunk();
  const auto curve = batch_curve(g);
  serve::FleetConfig fc;
  fc.classes = {{"standard", 6.0 * curve(1), 6.0 * curve(1), 1.0}};
  fc.pressure_backlog = 32;
  FleetLoadConfig load;
  load.requests = 40000;
  load.mean_interarrival_ms = curve(8) / 8.0 / 2.0 / 2.0;  // 2x a 2-worker fleet
  load.tenants = {{5, 0, 1.0}};

  serve::Fleet fleet = make_fleet(g, 2, fc, fc.classes[0].deadline_slack_ms,
                                  /*tight=*/true, /*fallback_scale=*/1.0);
  const FleetReport rep = serve_sim::run_fleet_open_loop(
      fleet, serve_sim::generate_fleet_arrivals(load, fc.classes, {}));

  EXPECT_GT(rep.shed, 0);
  EXPECT_NEAR(rep.shed_rate, 0.5, 0.15);  // ~half the 2x overload is shed
  EXPECT_LE(rep.p99_response_ms, fc.classes[0].p99_budget_ms)
      << "admitted p99 " << rep.p99_response_ms << " budget " << fc.classes[0].p99_budget_ms;
  EXPECT_LT(rep.miss_rate, 0.02);
  EXPECT_EQ(rep.shed + rep.served, rep.submitted);  // nothing silently lost
}

TEST(FleetSim, BurstyTenantShedsItsOwnOverflowNotOthers) {
  // Three tenants; tenant 99 goes 8x bursty mid-run, tripling the offered
  // load. Weighted admission makes the burst shed fall on tenant 99 while
  // the well-behaved tenants keep serving within their budgets.
  const auto g = small_trunk();
  const auto curve = batch_curve(g);
  serve::FleetConfig fc;
  fc.classes = {{"gold", 5.0 * curve(1), 5.0 * curve(1), 3.0},
                {"standard", 9.0 * curve(1), 9.0 * curve(1), 1.0}};
  fc.pressure_backlog = 24;
  const double base_rate = curve(8) / 8.0 / 2.0 / 0.8;  // ~80% of a 2-worker fleet
  FleetLoadConfig load;
  load.requests = 60000;
  load.mean_interarrival_ms = base_rate;
  load.tenants = {{99, 1, 1.0}, {1, 0, 1.0}, {2, 1, 1.0}};
  const double span = base_rate * 60000.0;
  constexpr std::size_t kNoBoost = static_cast<std::size_t>(-1);
  load.phases = {{span * 0.3, 1.0, kNoBoost, 1.0},
                 {span * 0.2, 3.0, 0, 8.0},  // tenant 99 bursts 8x, total ~3x
                 {span * 0.5, 1.0, kNoBoost, 1.0}};

  serve::Fleet fleet = make_fleet(g, 2, fc, fc.classes[0].deadline_slack_ms, /*tight=*/true);
  const FleetReport rep = serve_sim::run_fleet_open_loop(
      fleet, serve_sim::generate_fleet_arrivals(load, fc.classes, {}));

  ASSERT_EQ(rep.tenants.size(), 3u);
  const serve_sim::TenantReport& bursty = rep.tenants.at(99);
  const serve_sim::TenantReport& gold = rep.tenants.at(1);
  const serve_sim::TenantReport& standard = rep.tenants.at(2);
  // The burst is shed from the bursty tenant, explicitly.
  EXPECT_GT(bursty.shed_rate, 5.0 * gold.shed_rate);
  EXPECT_GT(bursty.shed_rate, 0.1);
  // The others keep their service level.
  EXPECT_LT(gold.shed_rate, 0.05);
  EXPECT_LT(gold.miss_rate, 0.02);
  EXPECT_LE(gold.p99_response_ms, fc.classes[0].p99_budget_ms);
  EXPECT_LT(standard.miss_rate, 0.05);
}

TEST(Fleet, ValidatesConfigAndSloReferences) {
  const auto g = small_trunk();
  EXPECT_THROW(serve::Fleet({}, serve::FleetConfig{}), std::invalid_argument);
  serve::FleetConfig no_classes;
  no_classes.classes.clear();
  std::vector<serve::FleetWorker> one;
  serve::FleetWorker fw;
  fw.options = {{"trn", nullptr, batch_curve(g), {}}};
  one.push_back(fw);
  EXPECT_THROW(serve::Fleet(std::move(one), no_classes), std::invalid_argument);

  std::vector<serve::FleetWorker> two;
  two.push_back(fw);
  serve::Fleet fleet(std::move(two), serve::FleetConfig{});
  serve::Request r = req(0, 0.0, 1.0);
  r.slo = 7;  // out of range
  EXPECT_THROW(fleet.submit(r, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace netcut
