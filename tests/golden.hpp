// Golden-file regression harness: a checked-in flat JSON object mapping
// metric names to doubles, compared against freshly computed metrics with a
// per-key tolerance.
//
// File format (hand-parsed, no JSON dependency):
//   {
//     "fig01/latency_ms/MobileNetV1-0.25": 0.123456,
//     ...
//   }
//
// Regeneration: run the test with NETCUT_GOLDEN_REGEN=1 and the current
// metrics are written over the golden file instead of compared (the test
// then skips). Tolerances absorb the jitter injected by the chaos fault
// schedule (scripts/check.sh runs the suite both clean and under
// NETCUT_FAULTS), so a golden mismatch means a real behavioural change,
// not measurement noise.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace netcut::golden {

using Metrics = std::map<std::string, double>;

inline bool regen_requested() {
  const char* env = std::getenv("NETCUT_GOLDEN_REGEN");
  return env != nullptr && env[0] == '1';
}

inline void save(const std::string& path, const Metrics& metrics) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("golden: cannot write " + path);
  out << "{\n";
  std::size_t i = 0;
  for (const auto& [key, value] : metrics) {
    char num[64];
    std::snprintf(num, sizeof num, "%.17g", value);
    out << "  \"" << key << "\": " << num << (++i == metrics.size() ? "" : ",") << "\n";
  }
  out << "}\n";
}

inline Metrics load(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw std::runtime_error("golden: cannot read " + path +
                             " (run with NETCUT_GOLDEN_REGEN=1 to create it)");
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  Metrics metrics;
  std::size_t pos = 0;
  while (true) {
    const std::size_t open = text.find('"', pos);
    if (open == std::string::npos) break;
    const std::size_t close = text.find('"', open + 1);
    if (close == std::string::npos)
      throw std::runtime_error("golden: unterminated key in " + path);
    const std::string key = text.substr(open + 1, close - open - 1);
    const std::size_t colon = text.find(':', close);
    if (colon == std::string::npos)
      throw std::runtime_error("golden: missing ':' after key '" + key + "' in " + path);
    const char* start = text.c_str() + colon + 1;
    char* end = nullptr;
    const double value = std::strtod(start, &end);
    if (end == start)
      throw std::runtime_error("golden: bad number for key '" + key + "' in " + path);
    metrics[key] = value;
    pos = static_cast<std::size_t>(end - text.c_str());
  }
  if (metrics.empty()) throw std::runtime_error("golden: no metrics in " + path);
  return metrics;
}

struct Tolerance {
  double rel = 0.0;  // fraction of |golden value|
  double abs = 0.0;  // additive floor (covers golden values near zero)
};

/// Compare actual metrics against the golden set. A key passes when
/// |actual - golden| <= tol.abs + tol.rel * |golden|; the tolerance is the
/// longest-prefix match from `overrides`, else `fallback`. Missing and
/// unexpected keys are always failures (the metric *set* is part of the
/// contract). Returns human-readable problem lines; empty means pass.
inline std::vector<std::string> diff(const Metrics& want, const Metrics& got,
                                     Tolerance fallback,
                                     const std::map<std::string, Tolerance>& overrides = {}) {
  std::vector<std::string> problems;
  for (const auto& [key, golden_value] : want) {
    const auto it = got.find(key);
    if (it == got.end()) {
      problems.push_back("missing metric: " + key);
      continue;
    }
    Tolerance tol = fallback;
    std::size_t best_prefix = 0;
    for (const auto& [prefix, t] : overrides)
      if (key.compare(0, prefix.size(), prefix) == 0 && prefix.size() >= best_prefix) {
        tol = t;
        best_prefix = prefix.size();
      }
    const double limit = tol.abs + tol.rel * std::abs(golden_value);
    const double delta = std::abs(it->second - golden_value);
    if (!(delta <= limit)) {  // catches NaN too
      char line[256];
      std::snprintf(line, sizeof line, "%s: golden %.6g vs actual %.6g (|delta| %.3g > %.3g)",
                    key.c_str(), golden_value, it->second, delta, limit);
      problems.push_back(line);
    }
  }
  for (const auto& [key, value] : got) {
    (void)value;
    if (want.find(key) == want.end()) problems.push_back("unexpected metric: " + key);
  }
  return problems;
}

}  // namespace netcut::golden
