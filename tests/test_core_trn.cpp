// TRN construction, cutpoints, head attachment, Pareto utilities.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/pareto.hpp"
#include "core/trn.hpp"
#include "nn/network.hpp"
#include "zoo/zoo.hpp"

namespace netcut::core {
namespace {

TEST(Cutpoints, BlockwiseMatchesBlockEnds) {
  const nn::Graph trunk = zoo::build_trunk(zoo::NetId::kMobileNetV1_050, 64);
  const auto cuts = blockwise_cutpoints(trunk);
  EXPECT_EQ(cuts.size(), 13u);
  EXPECT_TRUE(std::is_sorted(cuts.begin(), cuts.end()));
  EXPECT_EQ(cuts.back(), trunk.output_node());
}

TEST(Cutpoints, IterativeIsSupersetOfBlockwise) {
  for (auto id : {zoo::NetId::kInceptionV3, zoo::NetId::kResNet50}) {
    const nn::Graph trunk = zoo::build_trunk(id, 64);
    const auto blocks = blockwise_cutpoints(trunk);
    const auto iter = iterative_cutpoints(trunk);
    EXPECT_GT(iter.size(), blocks.size());
    for (int b : blocks)
      EXPECT_NE(std::find(iter.begin(), iter.end(), b), iter.end());
  }
}

TEST(AttachHead, PaperHeadStructure) {
  util::Rng rng(1);
  nn::Graph trunk = zoo::build_trunk(zoo::NetId::kMobileNetV1_025, 32);
  const int trunk_nodes = trunk.node_count();
  HeadConfig head;
  nn::Graph full = attach_head(std::move(trunk), head, rng);
  // GAP + (FC, ReLU) x2 + FC + Softmax = 7 new nodes.
  EXPECT_EQ(full.node_count(), trunk_nodes + 7);
  const auto shapes = full.infer_shapes();
  EXPECT_EQ(shapes.back(), tensor::Shape::vec(5));

  // The network is executable and emits a probability distribution.
  nn::Network net(std::move(full));
  util::Rng rng2(2);
  const tensor::Tensor y =
      net.forward(tensor::Tensor::randn(tensor::Shape::chw(3, 32, 32), rng2, 0.5f));
  EXPECT_NEAR(y.sum(), 1.0f, 1e-5f);
}

TEST(AttachHead, RequiresChwTrunkOutput) {
  util::Rng rng(1);
  nn::Graph g;
  g.add_input(tensor::Shape::vec(8));
  EXPECT_THROW(attach_head(std::move(g), HeadConfig{}, rng), std::invalid_argument);
}

TEST(BuildTrn, CutReducesSizeMonotonically) {
  util::Rng rng(3);
  const nn::Graph trunk = zoo::build_trunk(zoo::NetId::kResNet50, 64);
  const auto cuts = blockwise_cutpoints(trunk);
  std::int64_t prev_flops = 0;
  for (std::size_t i = 0; i < cuts.size(); i += 5) {
    const nn::Graph trn = build_trn(trunk, cuts[i], HeadConfig{}, rng);
    const std::int64_t flops = trn.total_cost().flops;
    EXPECT_GT(flops, prev_flops);
    prev_flops = flops;
  }
}

TEST(BuildTrn, LayerAccountingConsistent) {
  const nn::Graph trunk = zoo::build_trunk(zoo::NetId::kMobileNetV2_100, 64);
  const auto cuts = blockwise_cutpoints(trunk);
  const int cut = cuts[static_cast<std::size_t>(cuts.size() / 2)];
  EXPECT_EQ(layers_removed(trunk, cut) + layers_remaining(trunk, cut), trunk.layer_count());
  EXPECT_GT(layers_removed(trunk, cut), 0);
  const std::string name = trn_name("MobileNetV2-1.00", trunk, cut);
  EXPECT_EQ(name, "MobileNetV2-1.00/" + std::to_string(layers_remaining(trunk, cut)));
}

TEST(Pareto, DominanceDefinition) {
  const TradeoffPoint fast_accurate{"a", 1.0, 0.9};
  const TradeoffPoint slow_inaccurate{"b", 2.0, 0.8};
  const TradeoffPoint fast_inaccurate{"c", 1.0, 0.8};
  EXPECT_TRUE(dominates(fast_accurate, slow_inaccurate));
  EXPECT_TRUE(dominates(fast_accurate, fast_inaccurate));
  EXPECT_FALSE(dominates(slow_inaccurate, fast_accurate));
  EXPECT_FALSE(dominates(fast_accurate, fast_accurate));
}

TEST(Pareto, FrontierExtraction) {
  std::vector<TradeoffPoint> pts{
      {"a", 1.0, 0.5}, {"b", 2.0, 0.7}, {"c", 3.0, 0.6},  // c dominated by b
      {"d", 0.5, 0.4}, {"e", 4.0, 0.9},
  };
  const auto f = pareto_frontier(pts);
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f[0].name, "d");
  EXPECT_EQ(f[3].name, "e");
  for (std::size_t i = 1; i < f.size(); ++i) {
    EXPECT_GT(f[i].latency_ms, f[i - 1].latency_ms);
    EXPECT_GT(f[i].accuracy, f[i - 1].accuracy);  // frontier is monotone
  }
}

TEST(Pareto, BestUnderDeadline) {
  std::vector<TradeoffPoint> pts{{"a", 0.3, 0.5}, {"b", 0.8, 0.7}, {"c", 1.5, 0.9}};
  EXPECT_EQ(best_under_deadline(pts, 0.9), 1);
  EXPECT_EQ(best_under_deadline(pts, 10.0), 2);
  EXPECT_EQ(best_under_deadline(pts, 0.1), -1);
}

}  // namespace
}  // namespace netcut::core
