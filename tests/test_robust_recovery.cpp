// Crash-safety and graceful-degradation checks: checked atomic files,
// accuracy-cache healing, weight-cache quarantine, exploration journal
// resume, and the deadline watchdog's Pareto fallback.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "app/classifier.hpp"
#include "app/control_loop.hpp"
#include "core/evaluator.hpp"
#include "core/explorer.hpp"
#include "core/lab.hpp"
#include "core/pretrained_cache.hpp"
#include "util/atomic_file.hpp"

namespace netcut {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

data::HandsConfig tiny_data() {
  data::HandsConfig c;
  c.resolution = 24;
  c.train_count = 60;
  c.test_count = 30;
  return c;
}

data::PretrainedConfig tiny_pretrain() {
  data::PretrainedConfig c;
  c.source_images = 80;
  c.epochs = 6;
  return c;
}

core::EvalConfig tiny_eval(const std::string& cache_path, const std::string& weight_dir) {
  core::EvalConfig c;
  c.resolution = 24;
  c.epochs = 6;
  c.pretrained = tiny_pretrain();
  c.cache_path = cache_path;
  c.weight_cache_dir = weight_dir;
  return c;
}

// ---------------------------------------------------------------- atomic file

TEST(AtomicFile, CheckedRoundTripIncludingBinaryPayload) {
  const std::string dir = fresh_dir("atomic_roundtrip");
  const std::string path = dir + "/blob.bin";
  std::string payload = "hello\0world\n\xff\x01 binary";
  payload.resize(22);
  util::atomic_write_checked(path, payload, 0xABCD1234u, 3);
  EXPECT_EQ(util::peek_magic(path).value(), 0xABCD1234u);
  const auto back = util::read_checked(path, 0xABCD1234u, 3);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, payload);
  EXPECT_FALSE(util::read_checked(dir + "/missing.bin", 0xABCD1234u, 3).has_value());
}

TEST(AtomicFile, CorruptionAndTruncationAreDetected) {
  const std::string dir = fresh_dir("atomic_corrupt");
  const std::string path = dir + "/blob.bin";
  util::atomic_write_checked(path, std::string(256, 'x'), 0x11u, 1);

  std::string raw = slurp(path);
  raw[raw.size() / 2] ^= 0x20;  // flip one payload bit
  std::ofstream(path, std::ios::binary | std::ios::trunc) << raw;
  EXPECT_THROW(util::read_checked(path, 0x11u, 1), util::CorruptFileError);

  util::atomic_write_checked(path, std::string(256, 'x'), 0x11u, 1);
  raw = slurp(path);
  std::ofstream(path, std::ios::binary | std::ios::trunc) << raw.substr(0, raw.size() - 40);
  EXPECT_THROW(util::read_checked(path, 0x11u, 1), util::CorruptFileError);
}

TEST(AtomicFile, QuarantineMovesAsideWithoutClobbering) {
  const std::string dir = fresh_dir("atomic_quarantine");
  const std::string path = dir + "/bad.bin";
  util::atomic_write_text(path, "first");
  const std::string q1 = util::quarantine_file(path);
  EXPECT_FALSE(fs::exists(path));
  EXPECT_TRUE(fs::exists(q1));
  util::atomic_write_text(path, "second");
  const std::string q2 = util::quarantine_file(path);
  EXPECT_NE(q1, q2);  // the first quarantined copy is preserved
  EXPECT_TRUE(fs::exists(q1));
  EXPECT_TRUE(fs::exists(q2));
}

// ------------------------------------------------------------- accuracy cache

TEST(AccuracyCache, MalformedRowsSkippedCountedAndHealed) {
  const std::string dir = fresh_dir("acc_cache");
  const std::string cache = dir + "/cache.csv";
  const data::HandsDataset dataset(tiny_data());
  const zoo::NetId base = zoo::NetId::kMobileNetV1_025;

  core::TrnEvaluator probe(dataset, tiny_eval(cache, ""));
  const int cut = probe.full_cut(base);
  const std::string key = zoo::net_name(base) + "|" + std::to_string(cut) + "|" +
                          std::to_string(probe.config_hash());

  // A valid legacy (checksum-less) row, a torn append, and binary garbage.
  {
    std::ofstream out(cache);
    out << key << ",0.875,0.65\n";
    out << "NetX|3|123,0.4\n";
    out << key << ",0.9,not_a_number\n";
  }

  core::TrnEvaluator eval(dataset, tiny_eval(cache, ""));
  testing::internal::CaptureStderr();
  const core::AccuracyResult r = eval.accuracy(base, cut);  // pure cache hit, no training
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_DOUBLE_EQ(r.angular_similarity, 0.875);
  EXPECT_DOUBLE_EQ(r.top1, 0.65);
  EXPECT_EQ(eval.cache_rows_skipped(), 2);
  EXPECT_NE(err.find("malformed"), std::string::npos);

  // The healed file parses cleanly and still carries the surviving row.
  core::TrnEvaluator again(dataset, tiny_eval(cache, ""));
  const core::AccuracyResult r2 = again.accuracy(base, cut);
  EXPECT_EQ(again.cache_rows_skipped(), 0);
  EXPECT_DOUBLE_EQ(r2.angular_similarity, 0.875);
}

// --------------------------------------------------------------- weight cache

void graph_params(nn::Graph& g, std::vector<float>& out) {
  out.clear();
  for (int id = 1; id < g.node_count(); ++id)
    for (const tensor::Tensor* t : g.node(id).layer->state())
      out.insert(out.end(), t->data(), t->data() + t->numel());
}

TEST(WeightCache, CorruptFileQuarantinedAndRetrainedDeterministically) {
  const std::string dir = fresh_dir("weight_cache");
  const zoo::NetId net = zoo::NetId::kMobileNetV1_025;
  const data::PretrainedConfig cfg = tiny_pretrain();

  nn::Graph first = core::pretrained_trunk(net, 24, cfg, dir);
  const std::string path = core::pretrained_cache_file(net, cfg, dir);
  ASSERT_TRUE(fs::exists(path));

  // Clean reload: no retraining, identical parameters.
  nn::Graph reloaded = core::pretrained_trunk(net, 24, cfg, dir);
  std::vector<float> a, b;
  graph_params(first, a);
  graph_params(reloaded, b);
  EXPECT_EQ(a, b);

  // Bit-flip the payload: the checksum catches it, the file is quarantined,
  // and retraining reproduces the exact same weights.
  std::string raw = slurp(path);
  raw[raw.size() / 2] ^= 0x40;
  std::ofstream(path, std::ios::binary | std::ios::trunc) << raw;
  testing::internal::CaptureStderr();
  nn::Graph healed = core::pretrained_trunk(net, 24, cfg, dir);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("quarantined"), std::string::npos);
  EXPECT_TRUE(fs::exists(path + ".quarantined"));
  std::vector<float> c;
  graph_params(healed, c);
  EXPECT_EQ(a, c);

  // A torn write (crash mid-save) is caught the same way.
  std::ofstream(path, std::ios::binary | std::ios::trunc) << slurp(path).substr(0, 100);
  testing::internal::CaptureStderr();
  nn::Graph healed2 = core::pretrained_trunk(net, 24, cfg, dir);
  testing::internal::GetCapturedStderr();
  graph_params(healed2, c);
  EXPECT_EQ(a, c);
}

// --------------------------------------------------------- exploration journal

TEST(ExplorationJournal, ResumesFromCompletedCutsAfterTruncation) {
  const std::string dir = fresh_dir("journal_resume");
  const std::string journal = dir + "/journal.csv";
  const std::string wdir = dir + "/weights";
  const zoo::NetId base = zoo::NetId::kMobileNetV1_025;
  const data::HandsDataset dataset(tiny_data());

  core::LatencyLab lab1;
  core::TrnEvaluator eval1(dataset, tiny_eval("", wdir));
  core::BlockwiseExplorer explorer1(lab1, eval1);
  explorer1.set_journal(journal);
  const std::vector<core::Candidate> full = explorer1.explore(base, true);
  ASSERT_GT(full.size(), 3u);
  EXPECT_EQ(explorer1.journal_hits(), 0);

  // Simulate a crash: drop the last two completed rows and leave a torn
  // partial append behind.
  std::vector<std::string> lines;
  {
    std::ifstream in(journal);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), full.size() + 1);  // header + one row per cut
  {
    std::ofstream out(journal, std::ios::trunc);
    for (std::size_t i = 0; i + 2 < lines.size(); ++i) out << lines[i] << '\n';
    out << lines[lines.size() - 2].substr(0, 10);  // torn mid-row, no newline
  }

  core::LatencyLab lab2;
  core::TrnEvaluator eval2(dataset, tiny_eval("", wdir));
  core::BlockwiseExplorer explorer2(lab2, eval2);
  testing::internal::CaptureStderr();
  explorer2.set_journal(journal);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("torn"), std::string::npos);
  const std::vector<core::Candidate> resumed = explorer2.explore(base, true);

  EXPECT_EQ(explorer2.journal_hits(), static_cast<int>(full.size()) - 2);
  ASSERT_EQ(resumed.size(), full.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(resumed[i].trn_name, full[i].trn_name);
    EXPECT_DOUBLE_EQ(resumed[i].latency_ms, full[i].latency_ms);
    EXPECT_DOUBLE_EQ(resumed[i].accuracy, full[i].accuracy);
    EXPECT_DOUBLE_EQ(resumed[i].top1, full[i].top1);
  }

  // A third run finds every cut journaled and skips retraining entirely.
  core::LatencyLab lab3;
  core::TrnEvaluator eval3(dataset, tiny_eval("", wdir));
  core::BlockwiseExplorer explorer3(lab3, eval3);
  explorer3.set_journal(journal);
  const std::vector<core::Candidate> replayed = explorer3.explore(base, true);
  EXPECT_EQ(explorer3.journal_hits(), static_cast<int>(full.size()));
  for (std::size_t i = 0; i < full.size(); ++i)
    EXPECT_DOUBLE_EQ(replayed[i].accuracy, full[i].accuracy);
}

TEST(ExplorationJournal, ForeignConfigurationIsQuarantined) {
  const std::string dir = fresh_dir("journal_mismatch");
  const std::string journal = dir + "/journal.csv";
  {
    std::ofstream out(journal);
    out << "#netcut-journal v1 deadbeef\n";
    out << "MobileNetV1-0.25,7,0.9,0.8,0\n";
  }
  const data::HandsDataset dataset(tiny_data());
  core::LatencyLab lab;
  core::TrnEvaluator eval(dataset, tiny_eval("", ""));
  core::BlockwiseExplorer explorer(lab, eval);
  testing::internal::CaptureStderr();
  explorer.set_journal(journal);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("quarantined"), std::string::npos);
  EXPECT_EQ(explorer.journal_hits(), 0);
  EXPECT_TRUE(fs::exists(journal + ".quarantined"));
  // The fresh journal carries this configuration's header.
  const std::string head = slurp(journal);
  EXPECT_EQ(head.rfind("#netcut-journal v1 ", 0), 0u);
  EXPECT_EQ(head.find("deadbeef"), std::string::npos);
}

// ------------------------------------------------------------ deadline watchdog

struct LoopFixture {
  data::HandsDataset dataset{tiny_data()};
  data::EmgGenerator emg_gen{data::EmgConfig{}};
  app::MlpConfig mlp = [] {
    app::MlpConfig c;
    c.epochs = 15;
    return c;
  }();
  app::EmgClassifier emg{emg_gen, 150, mlp};
  app::VisualClassifier vision;  // initialized in the constructor below

  LoopFixture()
      : vision(zoo::NetId::kMobileNetV1_025,
               zoo::build_trunk(zoo::NetId::kMobileNetV1_025, 24).output_node(), dataset,
               mlp, tiny_pretrain()) {}
};

TEST(DeadlineWatchdog, SustainedThrottleTriggersSingleFallback) {
  LoopFixture f;
  // Preferred TRN at 0.85 ms, fallback at 0.30 ms, deadline 0.9 ms. A x2
  // throttle that never cools pushes the preferred network over the
  // deadline on every frame; the fallback still fits.
  const hw::FaultModel hot(hw::parse_fault_spec("throttle=2.0@0~100000,seed=4"));
  std::vector<app::TrnOption> options = {{"slow-accurate", 0.85, &f.vision, {}},
                                         {"fast-fallback", 0.30, &f.vision, {}}};
  app::ControlLoopConfig cfg;
  cfg.episodes = 20;
  app::ControlLoop loop(options, f.emg, f.emg_gen, cfg, app::WatchdogConfig{}, &hot);
  const app::ControlLoopReport report = loop.run(f.dataset);

  ASSERT_EQ(report.switches.size(), 1u);  // one decisive move, no flapping
  EXPECT_EQ(report.switches[0].from, 0u);
  EXPECT_EQ(report.switches[0].to, 1u);
  EXPECT_EQ(report.final_option, 1u);
  EXPECT_GT(report.pre_fallback_miss_rate, 0.9);
  EXPECT_LT(report.post_fallback_miss_rate, 0.05);
  EXPECT_LT(report.post_fallback_miss_rate, report.pre_fallback_miss_rate);
  EXPECT_GT(report.mean_frames_used, 10.0);  // vision still contributes post-fallback
}

TEST(DeadlineWatchdog, RecoversToPreferredOptionAfterTransient) {
  LoopFixture f;
  // The throttle cools with a 100-frame e-folding: the watchdog must fall
  // back while the device is hot and step back up once it cools.
  const hw::FaultModel transient(hw::parse_fault_spec("throttle=2.0@0~100,seed=4"));
  std::vector<app::TrnOption> options = {{"slow-accurate", 0.85, &f.vision, {}},
                                         {"fast-fallback", 0.30, &f.vision, {}}};
  app::ControlLoopConfig cfg;
  cfg.episodes = 40;
  app::ControlLoop loop(options, f.emg, f.emg_gen, cfg, app::WatchdogConfig{}, &transient);
  const app::ControlLoopReport report = loop.run(f.dataset);

  ASSERT_GE(report.switches.size(), 2u);
  EXPECT_EQ(report.switches[0].to, 1u);               // first move is the fallback
  EXPECT_EQ(report.final_option, 0u);                 // ends back on the preferred TRN
  EXPECT_EQ(report.switches.back().to, 0u);
  EXPECT_LE(report.switches.size(), 10u);             // hysteresis bounds the flapping
  EXPECT_LT(report.post_fallback_miss_rate, report.pre_fallback_miss_rate);
}

TEST(DeadlineWatchdog, SingleOptionWithoutFaultsMatchesLegacyLoop) {
  const char* env = std::getenv("NETCUT_FAULTS");
  if (env != nullptr && *env != '\0' && std::string(env) != "off")
    GTEST_SKIP() << "NETCUT_FAULTS active; legacy loop is deliberately faulted";
  LoopFixture f;
  app::ControlLoopConfig cfg;
  cfg.episodes = 10;
  app::ControlLoop legacy(f.vision, f.emg, f.emg_gen, 0.3, cfg);
  std::vector<app::TrnOption> one = {{"only", 0.3, &f.vision, {}}};
  app::ControlLoop adaptive(one, f.emg, f.emg_gen, cfg, app::WatchdogConfig{},
                            &hw::FaultModel::disabled());
  const app::ControlLoopReport a = legacy.run(f.dataset);
  const app::ControlLoopReport b = adaptive.run(f.dataset);
  EXPECT_DOUBLE_EQ(a.mean_angular_similarity, b.mean_angular_similarity);
  EXPECT_DOUBLE_EQ(a.top1_accuracy, b.top1_accuracy);
  EXPECT_DOUBLE_EQ(a.deadline_miss_rate, b.deadline_miss_rate);
  EXPECT_DOUBLE_EQ(a.mean_frames_used, b.mean_frames_used);
  EXPECT_TRUE(b.switches.empty());
  EXPECT_EQ(b.final_option, 0u);
}

}  // namespace
}  // namespace netcut
