#include <gtest/gtest.h>

#include <cmath>

#include "ml/linreg.hpp"
#include "ml/metrics.hpp"
#include "ml/model_selection.hpp"
#include "ml/svr.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace netcut::ml {
namespace {

std::pair<std::vector<std::vector<double>>, std::vector<double>> sine_data(int n) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < n; ++i) {
    const double t = 2.0 * i / n;
    x.push_back({t});
    y.push_back(std::sin(3.0 * t) + 0.2 * t);
  }
  return {x, y};
}

TEST(Svr, FitsWithinEpsilonTube) {
  auto [x, y] = sine_data(60);
  SvrConfig cfg;
  cfg.gamma = 2.0;
  cfg.c = 100.0;
  cfg.epsilon = 0.01;
  Svr svr(cfg);
  svr.fit(x, y);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_LE(std::abs(svr.predict(x[i]) - y[i]), cfg.epsilon + 1e-4);
}

TEST(Svr, SparseSupportVectors) {
  auto [x, y] = sine_data(60);
  SvrConfig cfg;
  cfg.gamma = 2.0;
  cfg.c = 100.0;
  cfg.epsilon = 0.05;  // wide tube -> few SVs
  Svr svr(cfg);
  svr.fit(x, y);
  EXPECT_LT(svr.support_vector_count(), 30);
  EXPECT_GT(svr.support_vector_count(), 0);
}

TEST(Svr, CapturesNonlinearityLinearCannot) {
  auto [x, y] = sine_data(80);
  SvrConfig cfg;
  cfg.gamma = 2.0;
  cfg.c = 1000.0;
  cfg.epsilon = 0.01;
  Svr svr(cfg);
  svr.fit(x, y);
  LinearRegression lin;
  lin.fit(x, y);
  const double svr_rmse = util::rmse(svr.predict(x), y);
  const double lin_rmse = util::rmse(lin.predict(x), y);
  EXPECT_LT(svr_rmse, lin_rmse / 5.0);
}

TEST(Svr, LinearKernelOnLinearData) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 30; ++i) {
    x.push_back({static_cast<double>(i), static_cast<double>(i % 3)});
    y.push_back(2.0 * i - 0.5 * (i % 3) + 1.0);
  }
  SvrConfig cfg;
  cfg.kernel = KernelType::kLinear;
  cfg.c = 1000.0;
  cfg.epsilon = 0.05;
  Svr svr(cfg);
  svr.fit(x, y);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(svr.predict(x[i]), y[i], 0.2);
}

TEST(Svr, RejectsBadInput) {
  EXPECT_THROW(Svr({.gamma = -1.0}), std::invalid_argument);
  Svr svr;
  EXPECT_THROW(svr.fit({{1.0}}, {1.0}), std::invalid_argument);
  EXPECT_THROW(svr.predict(std::vector<double>{1.0}), std::logic_error);
}

TEST(LinearRegression, RecoversExactLinearModel) {
  util::Rng rng(1);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 50; ++i) {
    const double a = rng.uniform(-2, 2), b = rng.uniform(-2, 2);
    x.push_back({a, b});
    y.push_back(3.0 * a - 1.5 * b + 0.7);
  }
  LinearRegression lr;
  lr.fit(x, y);
  EXPECT_NEAR(lr.coefficients()[0], 3.0, 1e-6);
  EXPECT_NEAR(lr.coefficients()[1], -1.5, 1e-6);
  EXPECT_NEAR(lr.intercept(), 0.7, 1e-6);
}

TEST(LinearRegression, SolverHandlesPivoting) {
  // System whose natural elimination order needs a pivot swap.
  const auto w = solve_linear_system({{0.0, 1.0}, {1.0, 0.0}}, {2.0, 3.0});
  EXPECT_NEAR(w[0], 3.0, 1e-12);
  EXPECT_NEAR(w[1], 2.0, 1e-12);
  EXPECT_THROW(solve_linear_system({{1.0, 1.0}, {1.0, 1.0}}, {1.0, 2.0}),
               std::runtime_error);
}

TEST(Standardizer, ZeroMeanUnitVariance) {
  util::Rng rng(2);
  std::vector<std::vector<double>> x;
  for (int i = 0; i < 200; ++i) x.push_back({rng.normal(5.0, 3.0), rng.normal(-2.0, 0.5)});
  Standardizer s;
  s.fit(x);
  const auto tx = s.transform(x);
  double m0 = 0.0, v0 = 0.0;
  for (const auto& row : tx) m0 += row[0];
  m0 /= static_cast<double>(tx.size());
  for (const auto& row : tx) v0 += (row[0] - m0) * (row[0] - m0);
  v0 /= static_cast<double>(tx.size());
  EXPECT_NEAR(m0, 0.0, 1e-9);
  EXPECT_NEAR(v0, 1.0, 1e-9);
}

TEST(Standardizer, ConstantFeatureStaysFinite) {
  Standardizer s;
  s.fit({{1.0, 5.0}, {2.0, 5.0}});
  const auto t = s.transform(std::vector<double>{1.5, 5.0});
  EXPECT_TRUE(std::isfinite(t[1]));
  EXPECT_NEAR(t[1], 0.0, 1e-12);
}

TEST(KFold, PartitionIsExactAndDisjoint) {
  const auto folds = kfold(25, 5, 1);
  ASSERT_EQ(folds.size(), 5u);
  std::vector<int> seen(25, 0);
  for (const Fold& f : folds) {
    EXPECT_EQ(f.train_indices.size() + f.test_indices.size(), 25u);
    for (int i : f.test_indices) ++seen[static_cast<std::size_t>(i)];
  }
  for (int count : seen) EXPECT_EQ(count, 1);  // each index tested exactly once
}

TEST(CrossValidate, ScoresAConstantPredictor) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 20; ++i) {
    x.push_back({static_cast<double>(i)});
    y.push_back(4.0);
  }
  const double err = cross_validate(
      x, y, 4, 9,
      [](const auto&, const auto&, const auto& test_x) {
        return std::vector<double>(test_x.size(), 4.0);
      },
      [](const auto& pred, const auto& truth) { return util::rmse(pred, truth); });
  EXPECT_NEAR(err, 0.0, 1e-12);
}

TEST(GridSearch, PicksReasonableHyperparameters) {
  auto [x, y] = sine_data(40);
  Standardizer s;
  s.fit(x);
  const auto points = grid_search_svr(s.transform(x), y, {1e-2, 1.0, 10.0}, {1.0, 100.0}, 5, 3);
  ASSERT_EQ(points.size(), 6u);
  EXPECT_LE(points.front().cv_error, points.back().cv_error);
  // A sine on standardized inputs needs a non-tiny gamma.
  EXPECT_GE(points.front().gamma, 1.0);
}

TEST(Metrics, AngularSimilarityBounds) {
  tensor::Tensor p(tensor::Shape::vec(3));
  p[0] = 1.0f;
  tensor::Tensor q(tensor::Shape::vec(3));
  q[1] = 1.0f;
  EXPECT_NEAR(angular_similarity(p, p), 1.0, 1e-6);
  EXPECT_NEAR(angular_similarity(p, q), 0.0, 1e-6);  // orthogonal -> 2/pi * pi/2
  EXPECT_NEAR(angular_distance(p, q), 1.0, 1e-6);
}

TEST(Metrics, AngularSimilaritySymmetric) {
  tensor::Tensor p(tensor::Shape::vec(3));
  p[0] = 0.5f; p[1] = 0.3f; p[2] = 0.2f;
  tensor::Tensor q(tensor::Shape::vec(3));
  q[0] = 0.2f; q[1] = 0.5f; q[2] = 0.3f;
  EXPECT_NEAR(angular_similarity(p, q), angular_similarity(q, p), 1e-9);
  EXPECT_GT(angular_similarity(p, q), 0.3);
  EXPECT_LT(angular_similarity(p, q), 1.0);
}

TEST(Metrics, Top1Agreement) {
  tensor::Tensor a(tensor::Shape::vec(2));
  a[0] = 0.9f; a[1] = 0.1f;
  tensor::Tensor b(tensor::Shape::vec(2));
  b[0] = 0.2f; b[1] = 0.8f;
  EXPECT_DOUBLE_EQ(top1_agreement({a, b}, {a, a}), 0.5);
}

}  // namespace
}  // namespace netcut::ml
