// Deterministic load simulation for the serving layer, shared by
// tests/test_serve.cpp and bench/serve_snapshot.cpp.
//
// Everything here runs on a simulated millisecond clock: arrivals are an
// open-loop Poisson process drawn from a seeded Rng (the same
// derive_seed(seed, label) idiom the fault streams use), the single-server
// event loop advances time to batch finishes and next arrivals, and every
// reported number — throughput, p50/p99 response, miss rate — is a pure
// function of (config, seed). Two same-seed invocations are bit-identical,
// which is what lets the benchmark check its numbers into a snapshot and
// the tests assert reproducibility outright.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "serve/queue.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"

namespace netcut::serve_sim {

struct LoadConfig {
  int requests = 200;
  /// Mean of the exponential interarrival gap (open-loop: arrivals do not
  /// wait for service). Rates above the single-request service rate
  /// saturate an unbatched server.
  double mean_interarrival_ms = 1.0;
  /// Relative deadline attached to every request (absolute deadline =
  /// arrival + slack).
  double deadline_slack_ms = 10.0;
  std::uint64_t seed = 424242;
};

/// Open-loop Poisson arrival schedule, in arrival order with ids 0..n-1.
/// Inputs are assigned round-robin from `pool` (which the caller keeps
/// alive for the whole simulation); an empty pool leaves inputs null and is
/// only valid for timing-only servers (ServeOption::net == nullptr).
inline std::vector<serve::Request> generate_arrivals(
    const LoadConfig& config, const std::vector<tensor::Tensor>& pool) {
  if (config.requests < 1) throw std::invalid_argument("generate_arrivals: no requests");
  if (config.mean_interarrival_ms <= 0 || config.deadline_slack_ms <= 0)
    throw std::invalid_argument("generate_arrivals: non-positive timing");
  util::Rng rng(util::derive_seed(config.seed, "serve-sim/arrivals"));
  std::vector<serve::Request> out;
  out.reserve(static_cast<std::size_t>(config.requests));
  double t = 0.0;
  for (int i = 0; i < config.requests; ++i) {
    // Exponential gap via inverse transform; uniform() < 1 keeps log finite.
    t += -config.mean_interarrival_ms * std::log(1.0 - rng.uniform());
    serve::Request r;
    r.id = static_cast<std::uint64_t>(i);
    r.arrival_ms = t;
    r.deadline_ms = t + config.deadline_slack_ms;
    if (!pool.empty()) r.input = &pool[static_cast<std::size_t>(i) % pool.size()];
    out.push_back(r);
  }
  return out;
}

struct SimReport {
  std::vector<serve::Completion> completions;  // in completion order
  double makespan_ms = 0.0;       // last finish time
  double throughput_rps = 0.0;    // served per second of simulated time
  double p50_response_ms = 0.0;   // response = finish - arrival
  double p99_response_ms = 0.0;
  double miss_rate = 0.0;         // deadline misses / served
  std::int64_t batches = 0;
  double mean_batch = 0.0;
};

/// Empirical quantile of `sorted` (ascending), nearest-rank. q in [0, 1].
inline double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto n = static_cast<double>(sorted.size());
  const auto rank = static_cast<std::size_t>(std::ceil(q * n));
  return sorted[std::min(sorted.size() - 1, rank > 0 ? rank - 1 : 0)];
}

/// Single-server event loop: enqueue every arrival due by `t`; when the
/// queue is empty jump `t` to the next arrival, otherwise serve one batch
/// and advance `t` to its finish. Runs until all arrivals complete.
inline SimReport run_open_loop(serve::BatchServer& server, serve::RequestQueue& queue,
                               const std::vector<serve::Request>& arrivals) {
  SimReport rep;
  rep.completions.reserve(arrivals.size());
  double t = 0.0;
  std::size_t next = 0;
  while (rep.completions.size() < arrivals.size()) {
    while (next < arrivals.size() && arrivals[next].arrival_ms <= t)
      queue.push(arrivals[next++]);
    if (queue.empty()) {
      t = arrivals[next].arrival_ms;
      continue;
    }
    std::vector<serve::Completion> done = server.step(t);
    t = done.front().finish_ms;
    for (serve::Completion& c : done) rep.completions.push_back(std::move(c));
  }

  std::vector<double> responses;
  responses.reserve(rep.completions.size());
  std::int64_t misses = 0;
  for (const serve::Completion& c : rep.completions) {
    responses.push_back(c.finish_ms - c.arrival_ms);
    rep.makespan_ms = std::max(rep.makespan_ms, c.finish_ms);
    misses += c.missed ? 1 : 0;
  }
  std::sort(responses.begin(), responses.end());
  const double n = static_cast<double>(rep.completions.size());
  rep.throughput_rps = rep.makespan_ms > 0 ? n / rep.makespan_ms * 1e3 : 0.0;
  rep.p50_response_ms = quantile(responses, 0.50);
  rep.p99_response_ms = quantile(responses, 0.99);
  rep.miss_rate = n > 0 ? static_cast<double>(misses) / n : 0.0;
  rep.batches = server.stats().batches;
  rep.mean_batch = rep.batches > 0 ? n / static_cast<double>(rep.batches) : 0.0;
  return rep;
}

/// Bit-level equality of two simulation outcomes (double comparisons are
/// exact on purpose: the contract is bit-reproducibility, not tolerance).
inline bool reports_identical(const SimReport& a, const SimReport& b) {
  if (a.completions.size() != b.completions.size() || a.batches != b.batches ||
      a.makespan_ms != b.makespan_ms || a.throughput_rps != b.throughput_rps ||
      a.p50_response_ms != b.p50_response_ms || a.p99_response_ms != b.p99_response_ms ||
      a.miss_rate != b.miss_rate)
    return false;
  for (std::size_t i = 0; i < a.completions.size(); ++i) {
    const serve::Completion& x = a.completions[i];
    const serve::Completion& y = b.completions[i];
    if (x.id != y.id || x.finish_ms != y.finish_ms || x.missed != y.missed ||
        x.failed != y.failed || x.option != y.option || x.batch != y.batch)
      return false;
  }
  return true;
}

}  // namespace netcut::serve_sim
