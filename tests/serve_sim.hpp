// Deterministic load simulation for the serving layer, shared by
// tests/test_serve.cpp, bench/serve_snapshot.cpp and examples/serve_demo.
//
// Everything here runs on a simulated millisecond clock: arrivals are an
// open-loop Poisson process drawn from a seeded Rng (the same
// derive_seed(seed, label) idiom the fault streams use), the event loops
// advance time to batch finishes and next arrivals, and every reported
// number — throughput, p50/p99 response, miss rate — is a pure function of
// (config, seed). Two same-seed invocations are bit-identical, which is
// what lets the benchmark check its numbers into a snapshot and the tests
// assert reproducibility outright.
//
// Two harnesses share the arrival machinery:
//  * the single-server loop (run_open_loop) from PR 5, unchanged, and
//  * the fleet loop (run_fleet_open_loop): multi-tenant phased arrivals
//    through Fleet::submit/step, scaled to millions of requests — the
//    report keeps O(1) state per request (responses + an FNV-1a digest of
//    the completion stream) instead of materializing every Completion, so
//    bit-identity checks stay cheap at fleet scale.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <map>
#include <stdexcept>
#include <vector>

#include "serve/fleet.hpp"
#include "serve/queue.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"

namespace netcut::serve_sim {

struct LoadConfig {
  int requests = 200;
  /// Mean of the exponential interarrival gap (open-loop: arrivals do not
  /// wait for service). Rates above the single-request service rate
  /// saturate an unbatched server.
  double mean_interarrival_ms = 1.0;
  /// Relative deadline attached to every request (absolute deadline =
  /// arrival + slack).
  double deadline_slack_ms = 10.0;
  std::uint64_t seed = 424242;
};

/// Open-loop Poisson arrival schedule, in arrival order with ids 0..n-1.
/// Inputs are assigned round-robin from `pool` (which the caller keeps
/// alive for the whole simulation); an empty pool leaves inputs null and is
/// only valid for timing-only servers (ServeOption::net == nullptr).
inline std::vector<serve::Request> generate_arrivals(
    const LoadConfig& config, const std::vector<tensor::Tensor>& pool) {
  if (config.requests < 1) throw std::invalid_argument("generate_arrivals: no requests");
  if (config.mean_interarrival_ms <= 0 || config.deadline_slack_ms <= 0)
    throw std::invalid_argument("generate_arrivals: non-positive timing");
  util::Rng rng(util::derive_seed(config.seed, "serve-sim/arrivals"));
  std::vector<serve::Request> out;
  out.reserve(static_cast<std::size_t>(config.requests));
  double t = 0.0;
  for (int i = 0; i < config.requests; ++i) {
    // Exponential gap via inverse transform; uniform() < 1 keeps log finite.
    t += -config.mean_interarrival_ms * std::log(1.0 - rng.uniform());
    serve::Request r;
    r.id = static_cast<std::uint64_t>(i);
    r.arrival_ms = t;
    r.deadline_ms = t + config.deadline_slack_ms;
    if (!pool.empty()) r.input = &pool[static_cast<std::size_t>(i) % pool.size()];
    out.push_back(r);
  }
  return out;
}

struct SimReport {
  std::vector<serve::Completion> completions;  // in completion order
  double makespan_ms = 0.0;       // last finish time
  double throughput_rps = 0.0;    // served per second of simulated time
  double p50_response_ms = 0.0;   // response = finish - arrival
  double p99_response_ms = 0.0;
  double miss_rate = 0.0;         // deadline misses / served
  std::int64_t batches = 0;
  double mean_batch = 0.0;
};

/// Empirical quantile of `sorted` (ascending), nearest-rank. q in [0, 1].
inline double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto n = static_cast<double>(sorted.size());
  const auto rank = static_cast<std::size_t>(std::ceil(q * n));
  return sorted[std::min(sorted.size() - 1, rank > 0 ? rank - 1 : 0)];
}

/// Single-server event loop: enqueue every arrival due by `t`; when the
/// queue is empty jump `t` to the next arrival, otherwise serve one batch
/// and advance `t` to its finish. Runs until all arrivals complete.
inline SimReport run_open_loop(serve::BatchServer& server, serve::RequestQueue& queue,
                               const std::vector<serve::Request>& arrivals) {
  SimReport rep;
  rep.completions.reserve(arrivals.size());
  double t = 0.0;
  std::size_t next = 0;
  while (rep.completions.size() < arrivals.size()) {
    while (next < arrivals.size() && arrivals[next].arrival_ms <= t)
      queue.push(arrivals[next++]);
    if (queue.empty()) {
      t = arrivals[next].arrival_ms;
      continue;
    }
    std::vector<serve::Completion> done = server.step(t);
    t = done.front().finish_ms;
    for (serve::Completion& c : done) rep.completions.push_back(std::move(c));
  }

  std::vector<double> responses;
  responses.reserve(rep.completions.size());
  std::int64_t misses = 0;
  for (const serve::Completion& c : rep.completions) {
    responses.push_back(c.finish_ms - c.arrival_ms);
    rep.makespan_ms = std::max(rep.makespan_ms, c.finish_ms);
    misses += c.missed ? 1 : 0;
  }
  std::sort(responses.begin(), responses.end());
  const double n = static_cast<double>(rep.completions.size());
  rep.throughput_rps = rep.makespan_ms > 0 ? n / rep.makespan_ms * 1e3 : 0.0;
  rep.p50_response_ms = quantile(responses, 0.50);
  rep.p99_response_ms = quantile(responses, 0.99);
  rep.miss_rate = n > 0 ? static_cast<double>(misses) / n : 0.0;
  rep.batches = server.stats().batches;
  rep.mean_batch = rep.batches > 0 ? n / static_cast<double>(rep.batches) : 0.0;
  return rep;
}

/// Bit-level equality of two simulation outcomes (double comparisons are
/// exact on purpose: the contract is bit-reproducibility, not tolerance).
inline bool reports_identical(const SimReport& a, const SimReport& b) {
  if (a.completions.size() != b.completions.size() || a.batches != b.batches ||
      a.makespan_ms != b.makespan_ms || a.throughput_rps != b.throughput_rps ||
      a.p50_response_ms != b.p50_response_ms || a.p99_response_ms != b.p99_response_ms ||
      a.miss_rate != b.miss_rate)
    return false;
  for (std::size_t i = 0; i < a.completions.size(); ++i) {
    const serve::Completion& x = a.completions[i];
    const serve::Completion& y = b.completions[i];
    if (x.id != y.id || x.finish_ms != y.finish_ms || x.missed != y.missed ||
        x.failed != y.failed || x.rejected != y.rejected || x.escalated != y.escalated ||
        x.option != y.option || x.worker != y.worker || x.batch != y.batch)
      return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Fleet-scale harness: multi-tenant phased arrivals + multi-worker event loop.
// ---------------------------------------------------------------------------

/// One tenant in the merged arrival stream.
struct TenantSpec {
  std::uint32_t tenant = 0;
  std::uint32_t slo = 0;  // index into the fleet's SLO class table
  double weight = 1.0;    // share of the merged Poisson stream
};

/// Piecewise traffic shaping. Phases apply in order from t=0; past the last
/// phase the base rate resumes. `boost_tenant` indexes into the tenants
/// vector (not a tenant id) and multiplies that tenant's stream weight —
/// the "one tenant goes bursty" overload schedule.
struct LoadPhase {
  double duration_ms = 0.0;
  double rate_mult = 1.0;  // multiplies the aggregate arrival rate
  std::size_t boost_tenant = static_cast<std::size_t>(-1);
  double boost_mult = 1.0;
};

struct FleetLoadConfig {
  std::int64_t requests = 100000;
  /// Mean interarrival of the merged stream at rate_mult = 1.
  double mean_interarrival_ms = 1.0;
  std::vector<TenantSpec> tenants = {TenantSpec{}};
  std::vector<LoadPhase> phases;  // empty = uniform rate throughout
  std::uint64_t seed = 424242;
};

/// Open-loop multi-tenant Poisson schedule in arrival order, ids 0..n-1.
/// Each arrival draws its tenant from the (phase-adjusted) weights; its
/// deadline is arrival + the tenant's SLO-class slack. Inputs round-robin
/// from `pool` as in generate_arrivals.
inline std::vector<serve::Request> generate_fleet_arrivals(
    const FleetLoadConfig& config, const std::vector<serve::SloClass>& classes,
    const std::vector<tensor::Tensor>& pool) {
  if (config.requests < 1) throw std::invalid_argument("generate_fleet_arrivals: no requests");
  if (config.mean_interarrival_ms <= 0)
    throw std::invalid_argument("generate_fleet_arrivals: non-positive interarrival");
  if (config.tenants.empty())
    throw std::invalid_argument("generate_fleet_arrivals: no tenants");
  for (const TenantSpec& ts : config.tenants) {
    if (ts.weight <= 0) throw std::invalid_argument("generate_fleet_arrivals: bad weight");
    if (ts.slo >= classes.size())
      throw std::invalid_argument("generate_fleet_arrivals: unknown SLO class");
  }
  for (const LoadPhase& p : config.phases)
    if (p.duration_ms <= 0 || p.rate_mult <= 0 || p.boost_mult <= 0)
      throw std::invalid_argument("generate_fleet_arrivals: bad phase");

  util::Rng rng(util::derive_seed(config.seed, "serve-sim/fleet-arrivals"));
  std::vector<serve::Request> out;
  out.reserve(static_cast<std::size_t>(config.requests));
  std::vector<double> weights(config.tenants.size(), 0.0);
  double t = 0.0;
  std::size_t phase = 0;
  double phase_end = config.phases.empty() ? 0.0 : config.phases[0].duration_ms;
  for (std::int64_t i = 0; i < config.requests; ++i) {
    while (phase < config.phases.size() && t >= phase_end) {
      ++phase;
      if (phase < config.phases.size()) phase_end += config.phases[phase].duration_ms;
    }
    const bool in_phase = phase < config.phases.size();
    const double rate_mult = in_phase ? config.phases[phase].rate_mult : 1.0;
    t += -config.mean_interarrival_ms / rate_mult * std::log(1.0 - rng.uniform());
    for (std::size_t k = 0; k < weights.size(); ++k) {
      weights[k] = config.tenants[k].weight;
      if (in_phase && k == config.phases[phase].boost_tenant)
        weights[k] *= config.phases[phase].boost_mult;
    }
    const auto pick = static_cast<std::size_t>(rng.categorical(weights));
    const TenantSpec& ts = config.tenants[pick];
    serve::Request r;
    r.id = static_cast<std::uint64_t>(i);
    r.arrival_ms = t;
    r.deadline_ms = t + classes[ts.slo].deadline_slack_ms;
    r.tenant = ts.tenant;
    r.slo = ts.slo;
    if (!pool.empty()) r.input = &pool[static_cast<std::size_t>(i) % pool.size()];
    out.push_back(r);
  }
  return out;
}

struct TenantReport {
  std::uint32_t slo = 0;
  std::int64_t submitted = 0;
  std::int64_t shed = 0;
  std::int64_t served = 0;
  std::int64_t missed = 0;
  double p50_response_ms = 0.0;  // admitted (served) requests only
  double p99_response_ms = 0.0;
  double miss_rate = 0.0;  // missed / served
  double shed_rate = 0.0;  // shed / submitted
};

/// Fleet-level outcome. Deliberately O(1) per request: quantiles come from
/// response vectors and everything order-sensitive is folded into `digest`
/// (FNV-1a over the completion stream, rejections included), so two runs
/// of a multi-million-request simulation can be compared bit-for-bit
/// without holding two copies of every Completion.
struct FleetReport {
  std::int64_t submitted = 0;
  std::int64_t shed = 0;
  std::int64_t served = 0;
  std::int64_t missed = 0;
  std::int64_t batches = 0;
  std::int64_t steals = 0;
  std::int64_t failovers = 0;   // Down declarations that triggered a drain
  std::int64_t requeued = 0;    // orphans re-queued onto surviving shards
  std::int64_t drain_shed = 0;  // orphans shed at re-admission (subset of shed)
  double makespan_ms = 0.0;
  double throughput_rps = 0.0;   // served per second of simulated time
  double p50_response_ms = 0.0;  // admitted requests only
  double p99_response_ms = 0.0;
  double miss_rate = 0.0;  // missed / served (admitted work; shed is separate)
  double shed_rate = 0.0;  // shed / submitted (always reported, never silent)
  double mean_batch = 0.0;
  std::map<std::uint32_t, TenantReport> tenants;
  std::uint64_t digest = 14695981039346656037ull;  // FNV-1a offset basis
};

inline void digest_u64(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 1099511628211ull;
  }
}

inline std::uint64_t double_bits(double d) {
  std::uint64_t u = 0;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

inline void digest_completion(std::uint64_t& h, const serve::Completion& c) {
  digest_u64(h, c.id);
  digest_u64(h, double_bits(c.finish_ms));
  digest_u64(h, c.tenant);
  digest_u64(h, c.slo);
  // `escalated` rides bit 3 so every pre-cascade digest (escalated always
  // false) keeps its stored value.
  digest_u64(h, static_cast<std::uint64_t>(c.missed) | (static_cast<std::uint64_t>(c.failed) << 1) |
                    (static_cast<std::uint64_t>(c.rejected) << 2) |
                    (static_cast<std::uint64_t>(c.escalated) << 3));
  digest_u64(h, c.option);
  digest_u64(h, c.worker);
  digest_u64(h, static_cast<std::uint64_t>(c.batch));
}

/// Fleet event loop: submit every arrival at its arrival time (admission
/// rejections complete immediately), let every free worker start a batch,
/// then jump the clock to the next arrival or batch finish. Runs until
/// every arrival is accounted for (served or shed). `capture`, when given,
/// receives the full completion stream (tests; leave null at bench scale).
inline FleetReport run_fleet_open_loop(serve::Fleet& fleet,
                                       const std::vector<serve::Request>& arrivals,
                                       std::vector<serve::Completion>* capture = nullptr) {
  FleetReport rep;
  std::vector<double> responses;
  responses.reserve(arrivals.size());
  std::map<std::uint32_t, std::vector<double>> tenant_responses;
  std::size_t accounted = 0;
  std::size_t next = 0;
  double t = 0.0;

  auto account = [&](const serve::Completion& c) {
    digest_completion(rep.digest, c);
    if (!c.rejected) {
      responses.push_back(c.finish_ms - c.arrival_ms);
      tenant_responses[c.tenant].push_back(c.finish_ms - c.arrival_ms);
      rep.makespan_ms = std::max(rep.makespan_ms, c.finish_ms);
    }
    if (capture != nullptr) capture->push_back(c);
    ++accounted;
  };

  while (accounted < arrivals.size()) {
    while (next < arrivals.size() && arrivals[next].arrival_ms <= t) {
      const serve::Request& r = arrivals[next++];
      if (auto rejected = fleet.submit(r, r.arrival_ms)) account(*rejected);
    }
    std::vector<serve::Completion> done = fleet.step(t);
    if (!done.empty()) {
      for (const serve::Completion& c : done) account(c);
      continue;
    }
    const double next_arrival = next < arrivals.size()
                                    ? arrivals[next].arrival_ms
                                    : std::numeric_limits<double>::infinity();
    const double next_finish = fleet.next_free_after(t);
    const double jump = std::min(next_arrival, next_finish);
    if (!std::isfinite(jump)) break;  // defensive: nothing left can make progress
    t = jump;
  }

  const serve::FleetStats& fs = fleet.stats();
  rep.submitted = fs.submitted;
  rep.shed = fs.shed;
  rep.served = fs.served;
  rep.missed = fs.missed;
  rep.steals = fs.steals;
  rep.failovers = fs.failovers;
  rep.requeued = fs.requeued;
  rep.drain_shed = fs.drain_shed;
  for (std::size_t w = 0; w < fleet.workers(); ++w)
    rep.batches += fleet.worker(w).stats().batches;
  std::sort(responses.begin(), responses.end());
  rep.throughput_rps =
      rep.makespan_ms > 0 ? static_cast<double>(rep.served) / rep.makespan_ms * 1e3 : 0.0;
  rep.p50_response_ms = quantile(responses, 0.50);
  rep.p99_response_ms = quantile(responses, 0.99);
  rep.miss_rate =
      rep.served > 0 ? static_cast<double>(rep.missed) / static_cast<double>(rep.served) : 0.0;
  rep.shed_rate = rep.submitted > 0
                      ? static_cast<double>(rep.shed) / static_cast<double>(rep.submitted)
                      : 0.0;
  rep.mean_batch = rep.batches > 0
                       ? static_cast<double>(rep.served) / static_cast<double>(rep.batches)
                       : 0.0;
  for (const auto& [tenant, counters] : fleet.tenants()) {
    TenantReport tr;
    tr.slo = counters.slo;
    tr.submitted = counters.submitted;
    tr.shed = counters.shed;
    tr.served = counters.served;
    tr.missed = counters.missed;
    auto it = tenant_responses.find(tenant);
    if (it != tenant_responses.end()) {
      std::sort(it->second.begin(), it->second.end());
      tr.p50_response_ms = quantile(it->second, 0.50);
      tr.p99_response_ms = quantile(it->second, 0.99);
    }
    tr.miss_rate = tr.served > 0
                       ? static_cast<double>(tr.missed) / static_cast<double>(tr.served)
                       : 0.0;
    tr.shed_rate = tr.submitted > 0
                       ? static_cast<double>(tr.shed) / static_cast<double>(tr.submitted)
                       : 0.0;
    rep.tenants.emplace(tenant, tr);
  }
  return rep;
}

/// Bit-level equality of two fleet outcomes, per-tenant reports included.
/// The digest covers the full completion stream, so agreement here means
/// the two runs produced identical completions in identical order.
inline bool fleet_reports_identical(const FleetReport& a, const FleetReport& b) {
  if (a.digest != b.digest || a.submitted != b.submitted || a.shed != b.shed ||
      a.served != b.served || a.missed != b.missed || a.batches != b.batches ||
      a.steals != b.steals || a.failovers != b.failovers || a.requeued != b.requeued ||
      a.drain_shed != b.drain_shed || a.makespan_ms != b.makespan_ms ||
      a.throughput_rps != b.throughput_rps || a.p50_response_ms != b.p50_response_ms ||
      a.p99_response_ms != b.p99_response_ms || a.miss_rate != b.miss_rate ||
      a.shed_rate != b.shed_rate || a.tenants.size() != b.tenants.size())
    return false;
  for (auto ita = a.tenants.begin(), itb = b.tenants.begin(); ita != a.tenants.end();
       ++ita, ++itb) {
    const TenantReport& x = ita->second;
    const TenantReport& y = itb->second;
    if (ita->first != itb->first || x.slo != y.slo || x.submitted != y.submitted ||
        x.shed != y.shed || x.served != y.served || x.missed != y.missed ||
        x.p50_response_ms != y.p50_response_ms || x.p99_response_ms != y.p99_response_ms)
      return false;
  }
  return true;
}

}  // namespace netcut::serve_sim
