#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace netcut::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(11);
  double sum = 0.0, sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(3);
  const std::vector<int> p = rng.permutation(100);
  std::vector<bool> seen(100, false);
  for (int v : p) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 100);
    EXPECT_FALSE(seen[static_cast<std::size_t>(v)]);
    seen[static_cast<std::size_t>(v)] = true;
  }
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(5);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 30000; ++i) ++counts[static_cast<std::size_t>(rng.categorical({1.0, 2.0, 7.0}))];
  EXPECT_NEAR(counts[0] / 30000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / 30000.0, 0.2, 0.02);
  EXPECT_NEAR(counts[2] / 30000.0, 0.7, 0.02);
}

TEST(Rng, DeriveSeedDecorrelatesLabels) {
  EXPECT_NE(derive_seed(1, "a"), derive_seed(1, "b"));
  EXPECT_NE(derive_seed(1, "a"), derive_seed(2, "a"));
  EXPECT_EQ(derive_seed(1, "a"), derive_seed(1, "a"));
}

TEST(Stats, MeanAndStdev) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(stdev(xs), 2.138, 1e-3);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 2.5);
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(Stats, RelativeErrorAndAggregates) {
  EXPECT_NEAR(relative_error(1.1, 1.0), 0.1, 1e-12);
  EXPECT_THROW(relative_error(1.0, 0.0), std::invalid_argument);
  EXPECT_NEAR(mean_relative_error({1.1, 0.9}, {1.0, 1.0}), 0.1, 1e-12);
  EXPECT_NEAR(mean_absolute_error({1.5, 2.0}, {1.0, 1.0}), 0.75, 1e-12);
  EXPECT_NEAR(rmse({3.0, 1.0}, {1.0, 1.0}), std::sqrt(2.0), 1e-12);
}

TEST(Stats, PearsonPerfectCorrelation) {
  EXPECT_NEAR(pearson({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
  EXPECT_NEAR(pearson({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
}

TEST(Stats, EmptyInputThrows) {
  EXPECT_THROW(mean({}), std::invalid_argument);
  EXPECT_THROW(percentile({}, 50), std::invalid_argument);
}

TEST(Table, RendersAlignedAndCsv) {
  Table t({"name", "value"});
  t.add_row({"a", Table::num(1.5, 2)});
  t.add_row({"bb", "x"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name | value |"), std::string::npos);
  EXPECT_NE(s.find("1.50"), std::string::npos);
  EXPECT_EQ(t.to_csv(), "name,value\na,1.50\nbb,x\n");
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

}  // namespace
}  // namespace netcut::util
