// Architecture-level checks on the seven-network zoo: parameter counts in
// the published ballpark, block structure, resolution scaling, and forward
// executability at experiment resolution.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "nn/init.hpp"
#include "nn/network.hpp"
#include "util/rng.hpp"
#include "zoo/common.hpp"
#include "zoo/zoo.hpp"

namespace netcut::zoo {
namespace {

using nn::Graph;

struct ZooCase {
  NetId id;
  int expected_blocks;
  double params_millions_lo;
  double params_millions_hi;
};

class ZooStructure : public ::testing::TestWithParam<ZooCase> {};

TEST_P(ZooStructure, BuildsWithExpectedBlocksAndParams) {
  const ZooCase c = GetParam();
  const Graph g = build_trunk(c.id, native_resolution(c.id));
  EXPECT_EQ(static_cast<int>(g.blocks().size()), c.expected_blocks);
  const double mparams = static_cast<double>(g.total_cost().params) / 1e6;
  EXPECT_GE(mparams, c.params_millions_lo) << net_name(c.id);
  EXPECT_LE(mparams, c.params_millions_hi) << net_name(c.id);
}

TEST_P(ZooStructure, BlockEndsAreDominators) {
  // Every blockwise cut site must be a legal single-tensor cut.
  const ZooCase c = GetParam();
  const Graph g = build_trunk(c.id, 64);
  const auto doms = g.output_dominators();
  for (const nn::BlockInfo& b : g.blocks())
    EXPECT_NE(std::find(doms.begin(), doms.end(), b.last_node), doms.end())
        << net_name(c.id) << " block " << b.name;
}

TEST_P(ZooStructure, NodeIdsAreResolutionInvariant) {
  const ZooCase c = GetParam();
  const Graph a = build_trunk(c.id, 32);
  const Graph b = build_trunk(c.id, native_resolution(c.id));
  ASSERT_EQ(a.node_count(), b.node_count());
  for (int id = 1; id < a.node_count(); ++id) {
    EXPECT_EQ(a.node(id).name, b.node(id).name);
    EXPECT_EQ(a.node(id).block_id, b.node(id).block_id);
    EXPECT_EQ(a.node(id).inputs, b.node(id).inputs);
  }
}

TEST_P(ZooStructure, ForwardRunsAtExperimentResolution) {
  const ZooCase c = GetParam();
  Graph g = build_trunk(c.id, 32);
  util::Rng rng(1);
  nn::init_graph(g, rng);
  nn::Network net(std::move(g));
  const tensor::Tensor x = tensor::Tensor::randn(tensor::Shape::chw(3, 32, 32), rng, 0.5f);
  const tensor::Tensor y = net.forward(x);
  EXPECT_EQ(y.shape().rank(), 3);
  for (std::int64_t i = 0; i < std::min<std::int64_t>(y.numel(), 64); ++i)
    EXPECT_TRUE(std::isfinite(y[i]));
}

// Published trunk parameter counts: MobileNetV1-0.25 ~0.21M, -0.5 ~0.8M,
// MobileNetV2-1.0 ~2.2M, -1.4 ~4.3M, InceptionV3 ~21.8M, ResNet-50 ~23.5M,
// DenseNet-121 ~7.0M.
INSTANTIATE_TEST_SUITE_P(
    AllNets, ZooStructure,
    ::testing::Values(ZooCase{NetId::kMobileNetV1_025, 13, 0.15, 0.30},
                      ZooCase{NetId::kMobileNetV1_050, 13, 0.70, 0.95},
                      ZooCase{NetId::kMobileNetV2_100, 18, 2.0, 2.5},
                      ZooCase{NetId::kMobileNetV2_140, 18, 4.0, 4.7},
                      ZooCase{NetId::kInceptionV3, 11, 20.5, 23.0},
                      ZooCase{NetId::kResNet50, 16, 22.5, 24.5},
                      ZooCase{NetId::kDenseNet121, 62, 6.5, 7.5}),
    [](const ::testing::TestParamInfo<ZooCase>& info) {
      std::string n = net_name(info.param.id);
      for (char& ch : n)
        if (ch == '-' || ch == '.') ch = '_';
      return n;
    });

TEST(Zoo, SevenNetworksInPaperOrder) {
  const auto nets = all_nets();
  ASSERT_EQ(nets.size(), 7u);
  EXPECT_EQ(net_name(nets[0]), "MobileNetV1-0.25");
  EXPECT_EQ(net_name(nets[6]), "DenseNet121");
}

TEST(Zoo, NativeResolutions) {
  EXPECT_EQ(native_resolution(NetId::kInceptionV3), 299);
  EXPECT_EQ(native_resolution(NetId::kResNet50), 224);
}

TEST(Zoo, MakeDivisibleRounding) {
  EXPECT_EQ(make_divisible(32 * 0.25), 8);
  EXPECT_EQ(make_divisible(24 * 1.4), 32);   // 33.6 -> 32
  EXPECT_EQ(make_divisible(3.0), 8);         // floor at divisor
  EXPECT_EQ(make_divisible(100.0), 104);     // 100 -> 96 < 0.9*100 -> bump to 104
}

TEST(Zoo, WidthMultiplierScalesChannels) {
  const Graph quarter = build_mobilenet_v1(0.25, 64);
  const Graph half = build_mobilenet_v1(0.5, 64);
  const auto qs = quarter.infer_shapes();
  const auto hs = half.infer_shapes();
  EXPECT_EQ(qs.back()[0] * 2, hs.back()[0]);
}

TEST(Zoo, MobileNetV2FinalConvIsItsOwnBlock) {
  const Graph g = build_mobilenet_v2(1.0, 224);
  const auto blocks = g.blocks();
  EXPECT_EQ(blocks.back().name, "features");
  const auto shapes = g.infer_shapes();
  EXPECT_EQ(shapes.back()[0], 1280);
}

TEST(Zoo, ResNetBottleneckExpansion) {
  const Graph g = build_resnet50(224);
  const auto shapes = g.infer_shapes();
  EXPECT_EQ(shapes.back(), tensor::Shape::chw(2048, 7, 7));
}

TEST(Zoo, DenseNetGrowthAccumulates) {
  const Graph g = build_densenet121(224);
  const auto shapes = g.infer_shapes();
  EXPECT_EQ(shapes.back(), tensor::Shape::chw(1024, 7, 7));
  // First dense block ends at 64 + 6*32 = 256 channels.
  const auto blocks = g.blocks();
  EXPECT_EQ(shapes[static_cast<std::size_t>(blocks[5].last_node)][0], 256);
}

TEST(Zoo, InceptionConcatWidths) {
  const Graph g = build_inception_v3(299);
  const auto shapes = g.infer_shapes();
  EXPECT_EQ(shapes.back()[0], 2048);
}

}  // namespace
}  // namespace netcut::zoo
