#include <gtest/gtest.h>

#include "nn/activation.hpp"
#include "nn/combine.hpp"
#include "nn/conv.hpp"
#include "nn/dense.hpp"
#include "nn/graph.hpp"
#include "nn/network.hpp"
#include "nn/pooling.hpp"
#include "util/rng.hpp"

namespace netcut::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

Graph diamond_graph() {
  // input -> conv -> {branch a: conv, branch b: conv} -> add -> relu
  Graph g;
  const int in = g.add_input(Shape::chw(1, 6, 6));
  const int stem = g.add(std::make_unique<Conv2D>(1, 2, 3, 1), {in}, "stem");
  const int a = g.add(std::make_unique<Conv2D>(2, 2, 3, 1), {stem}, "a", 0, "blk0");
  const int b = g.add(std::make_unique<Conv2D>(2, 2, 1, 1), {stem}, "b", 0, "blk0");
  const int add = g.add(std::make_unique<Add>(2), {a, b}, "add", 0, "blk0");
  g.add(std::make_unique<ReLU>(false), {add}, "out", 1, "blk1");
  return g;
}

TEST(Graph, TopologicalConstructionRules) {
  Graph g;
  EXPECT_THROW(g.add(std::make_unique<ReLU>(false), {0}), std::logic_error);
  g.add_input(Shape::vec(4));
  EXPECT_THROW(g.add_input(Shape::vec(4)), std::logic_error);
  EXPECT_THROW(g.add(std::make_unique<ReLU>(false), {5}), std::invalid_argument);
  EXPECT_THROW(g.add(std::make_unique<ReLU>(false), {}), std::invalid_argument);
  const int id = g.add(std::make_unique<ReLU>(false), {0});
  EXPECT_EQ(id, 1);
  EXPECT_EQ(g.output_node(), 1);
}

TEST(Graph, ShapeInferenceAndErrors) {
  Graph g = diamond_graph();
  const auto shapes = g.infer_shapes();
  EXPECT_EQ(shapes.back(), Shape::chw(2, 6, 6));

  Graph bad;
  bad.add_input(Shape::chw(3, 8, 8));
  bad.add(std::make_unique<Conv2D>(4, 2, 3), {0}, "mismatched");
  EXPECT_THROW(bad.infer_shapes(), std::invalid_argument);
}

TEST(Graph, BlocksAreContiguousAndOrdered) {
  Graph g = diamond_graph();
  const auto blocks = g.blocks();
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0].block_id, 0);
  EXPECT_EQ(blocks[0].node_count, 3);
  EXPECT_EQ(blocks[0].last_node, 4);
  EXPECT_EQ(blocks[1].last_node, 5);
}

TEST(Graph, DominatorsSkipParallelBranches) {
  Graph g = diamond_graph();
  // Nodes: 0 input, 1 stem, 2 a, 3 b, 4 add, 5 relu.
  const auto doms = g.output_dominators();
  EXPECT_EQ(doms, (std::vector<int>{1, 4, 5}));
}

TEST(Graph, PrefixExtractsAncestors) {
  Graph g = diamond_graph();
  const Graph p = g.prefix(4);  // up to the add
  EXPECT_EQ(p.node_count(), 5);
  EXPECT_EQ(p.output_node(), 4);
  const auto shapes = p.infer_shapes();
  EXPECT_EQ(shapes.back(), Shape::chw(2, 6, 6));

  // Prefix at the stem drops both branches.
  const Graph s = g.prefix(1);
  EXPECT_EQ(s.node_count(), 2);
}

TEST(Graph, PrefixDeepCopiesWeights) {
  Graph g = diamond_graph();
  Graph p = g.prefix(4);
  auto& orig = static_cast<Conv2D&>(*g.node(1).layer);
  auto& copy = static_cast<Conv2D&>(*p.node(1).layer);
  copy.weight().fill(7.0f);
  EXPECT_NE(orig.weight()[0], 7.0f);
}

TEST(Graph, CopySemanticsAreDeep) {
  Graph g = diamond_graph();
  Graph g2 = g;
  auto& orig = static_cast<Conv2D&>(*g.node(1).layer);
  auto& copy = static_cast<Conv2D&>(*g2.node(1).layer);
  orig.weight().fill(3.0f);
  EXPECT_NE(copy.weight()[0], 3.0f);
}

TEST(Graph, TotalCostAggregates) {
  Graph g = diamond_graph();
  const LayerCost c = g.total_cost();
  EXPECT_GT(c.flops, 0);
  EXPECT_GT(c.params, 0);
  EXPECT_EQ(c.kernel, 3);
}

TEST(Network, ForwardDeterministicAndShaped) {
  util::Rng rng(1);
  Graph g = diamond_graph();
  for (int id = 1; id < g.node_count(); ++id)
    for (Tensor* p : g.node(id).layer->params()) *p = Tensor::randn(p->shape(), rng, 0.3f);
  Network net(std::move(g));
  const Tensor x = Tensor::randn(Shape::chw(1, 6, 6), rng);
  const Tensor y1 = net.forward(x);
  const Tensor y2 = net.forward(x);
  EXPECT_EQ(y1.shape(), Shape::chw(2, 6, 6));
  EXPECT_LT(tensor::max_abs_diff(y1, y2), 1e-7f);
}

TEST(Network, ForwardCollectReturnsRequestedNodes) {
  util::Rng rng(2);
  Graph g = diamond_graph();
  Network net(std::move(g));
  const Tensor x = Tensor::randn(Shape::chw(1, 6, 6), rng);
  const auto acts = net.forward_collect(x, {1, 4});
  ASSERT_EQ(acts.size(), 2u);
  EXPECT_EQ(acts[0].shape(), Shape::chw(2, 6, 6));
  EXPECT_EQ(acts[1].shape(), Shape::chw(2, 6, 6));
  EXPECT_THROW(net.forward_collect(x, {99}), std::out_of_range);
}

TEST(Network, ParamAndGradListsAlign) {
  Graph g = diamond_graph();
  Network net(std::move(g));
  const auto params = net.params();
  const auto grads = net.grads();
  ASSERT_EQ(params.size(), grads.size());
  for (std::size_t i = 0; i < params.size(); ++i)
    EXPECT_EQ(params[i]->numel(), grads[i]->numel());
}

TEST(Network, BackwardBeforeForwardThrows) {
  Graph g = diamond_graph();
  Network net(std::move(g));
  Tensor grad(Shape::chw(2, 6, 6));
  EXPECT_THROW(net.backward(grad), std::logic_error);
}

}  // namespace
}  // namespace netcut::nn
