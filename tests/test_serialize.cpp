// Weight serialization round trips and failure modes.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "data/pretrained.hpp"
#include "nn/init.hpp"
#include "nn/network.hpp"
#include "nn/norm.hpp"
#include "nn/serialize.hpp"
#include "util/rng.hpp"
#include "zoo/zoo.hpp"

namespace netcut::nn {
namespace {

struct TempFile {
  std::string path;
  explicit TempFile(std::string p) : path(std::move(p)) {}
  ~TempFile() { std::remove(path.c_str()); }
};

TEST(Serialize, RoundTripPreservesEveryParameterAndBnStat) {
  const TempFile file("test_serialize_roundtrip.bin");
  util::Rng rng(5);
  Graph a = zoo::build_trunk(zoo::NetId::kMobileNetV1_025, 24);
  init_graph(a, rng);
  // Perturb BN running stats so they differ from defaults.
  for (int id = 1; id < a.node_count(); ++id) {
    if (a.node(id).layer->kind() != LayerKind::kBatchNorm) continue;
    auto& bn = static_cast<BatchNorm&>(*a.node(id).layer);
    for (int c = 0; c < bn.channels(); ++c) {
      bn.running_mean()[c] = static_cast<float>(rng.normal(0.0, 0.3));
      bn.running_var()[c] = static_cast<float>(rng.uniform(0.5, 2.0));
    }
  }
  save_params(a, file.path);

  Graph b = zoo::build_trunk(zoo::NetId::kMobileNetV1_025, 24);
  ASSERT_TRUE(load_params(b, file.path));

  for (int id = 1; id < a.node_count(); ++id) {
    auto pa = a.node(id).layer->params();
    auto pb = b.node(id).layer->params();
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t k = 0; k < pa.size(); ++k)
      EXPECT_LT(tensor::max_abs_diff(*pa[k], *pb[k]), 1e-9f);
    if (a.node(id).layer->kind() == LayerKind::kBatchNorm) {
      auto& bna = static_cast<BatchNorm&>(*a.node(id).layer);
      auto& bnb = static_cast<BatchNorm&>(*b.node(id).layer);
      EXPECT_LT(tensor::max_abs_diff(bna.running_mean(), bnb.running_mean()), 1e-9f);
      EXPECT_LT(tensor::max_abs_diff(bna.running_var(), bnb.running_var()), 1e-9f);
    }
  }

  // Identical forward behaviour is the property that actually matters.
  util::Rng probe_rng(6);
  const tensor::Tensor x = tensor::Tensor::randn(tensor::Shape::chw(3, 24, 24), probe_rng);
  Network na(std::move(a)), nb(std::move(b));
  EXPECT_LT(tensor::max_abs_diff(na.forward(x), nb.forward(x)), 1e-9f);
}

TEST(Serialize, LoadAtDifferentResolutionWorks) {
  // Weights are resolution-independent; a file saved from a 24-res trunk
  // must load into a 32-res trunk (the pretrained-cache mechanism).
  const TempFile file("test_serialize_res.bin");
  util::Rng rng(7);
  Graph small = zoo::build_trunk(zoo::NetId::kMobileNetV1_025, 24);
  init_graph(small, rng);
  save_params(small, file.path);
  Graph big = zoo::build_trunk(zoo::NetId::kMobileNetV1_025, 32);
  EXPECT_TRUE(load_params(big, file.path));
}

TEST(Serialize, MissingFileReturnsFalse) {
  Graph g = zoo::build_trunk(zoo::NetId::kMobileNetV1_025, 24);
  EXPECT_FALSE(load_params(g, "definitely_not_a_file.bin"));
}

TEST(Serialize, StructuralMismatchThrows) {
  const TempFile file("test_serialize_mismatch.bin");
  util::Rng rng(8);
  Graph a = zoo::build_trunk(zoo::NetId::kMobileNetV1_025, 24);
  init_graph(a, rng);
  save_params(a, file.path);
  Graph other = zoo::build_trunk(zoo::NetId::kMobileNetV1_050, 24);
  EXPECT_THROW(load_params(other, file.path), std::runtime_error);
}

TEST(Serialize, CorruptedFileThrows) {
  const TempFile file("test_serialize_corrupt.bin");
  {
    std::ofstream out(file.path, std::ios::binary);
    const char junk[] = "not a weight file at all";
    out.write(junk, sizeof(junk));
  }
  Graph g = zoo::build_trunk(zoo::NetId::kMobileNetV1_025, 24);
  EXPECT_THROW(load_params(g, file.path), std::runtime_error);
}

TEST(Serialize, TruncatedFileThrows) {
  const TempFile file("test_serialize_truncated.bin");
  util::Rng rng(9);
  Graph a = zoo::build_trunk(zoo::NetId::kMobileNetV1_025, 24);
  init_graph(a, rng);
  save_params(a, file.path);
  // Chop the file in half.
  std::ifstream in(file.path, std::ios::binary | std::ios::ate);
  const auto size = in.tellg();
  in.seekg(0);
  std::vector<char> half(static_cast<std::size_t>(size) / 2);
  in.read(half.data(), static_cast<std::streamsize>(half.size()));
  in.close();
  std::ofstream out(file.path, std::ios::binary | std::ios::trunc);
  out.write(half.data(), static_cast<std::streamsize>(half.size()));
  out.close();
  Graph b = zoo::build_trunk(zoo::NetId::kMobileNetV1_025, 24);
  EXPECT_THROW(load_params(b, file.path), std::runtime_error);
}

}  // namespace
}  // namespace netcut::nn
