// Algorithm 1 semantics, with both a scripted estimator (exact control over
// the decision sequence) and the real profiler estimator end to end on the
// cheap MobileNet family.
#include <gtest/gtest.h>

#include "core/netcut.hpp"

namespace netcut::core {
namespace {

data::HandsConfig tiny_data() {
  data::HandsConfig c;
  c.resolution = 24;
  c.train_count = 120;
  c.test_count = 50;
  return c;
}

EvalConfig tiny_eval() {
  EvalConfig c;
  c.resolution = 24;
  c.epochs = 10;
  c.cache_path.clear();  // no cross-test memoization
  c.pretrained.source_images = 100;  // light pretraining keeps the suite fast
  c.pretrained.epochs = 10;
  return c;
}

/// Estimator driven by the lab's true latency — deterministic, no noise.
class OracleEstimator final : public LatencyEstimator {
 public:
  explicit OracleEstimator(LatencyLab& lab) : lab_(lab) {}
  double estimate_ms(zoo::NetId base, int cut) override { return lab_.true_ms(base, cut); }
  std::string name() const override { return "oracle"; }

 private:
  LatencyLab& lab_;
};

class NetCutTest : public ::testing::Test {
 protected:
  NetCutTest() : dataset_(tiny_data()), evaluator_(dataset_, tiny_eval()) {}

  LatencyLab lab_;
  data::HandsDataset dataset_;
  TrnEvaluator evaluator_;
};

TEST_F(NetCutTest, FirstFeasibleCutStopsAtDeadline) {
  OracleEstimator oracle(lab_);
  NetCut nc(lab_, evaluator_);
  const zoo::NetId net = zoo::NetId::kMobileNetV2_140;

  const double full = lab_.true_ms(net, lab_.full_cut(net));
  // Deadline just under the full network: exactly one block must go.
  int tried = 0;
  const auto cut = nc.first_feasible_cut(oracle, net, full * 0.98, &tried);
  ASSERT_TRUE(cut.has_value());
  EXPECT_EQ(tried, 2);  // full (too slow) + first TRN
  EXPECT_LE(cut->second, full * 0.98);
  EXPECT_LT(cut->first, lab_.full_cut(net));

  // Generous deadline: the full network is selected without cutting.
  const auto easy = nc.first_feasible_cut(oracle, net, full * 10.0, &tried);
  ASSERT_TRUE(easy.has_value());
  EXPECT_EQ(tried, 1);
  EXPECT_EQ(easy->first, lab_.full_cut(net));
}

TEST_F(NetCutTest, InfeasibleDeadlineYieldsNoCut) {
  OracleEstimator oracle(lab_);
  NetCut nc(lab_, evaluator_);
  const auto cut =
      nc.first_feasible_cut(oracle, zoo::NetId::kMobileNetV1_025, 1e-6, nullptr);
  EXPECT_FALSE(cut.has_value());
}

TEST_F(NetCutTest, RunRetrainsOnePerNetworkAndPicksBest) {
  OracleEstimator oracle(lab_);
  NetCut nc(lab_, evaluator_);
  NetCutConfig cfg;
  cfg.networks = {zoo::NetId::kMobileNetV1_025, zoo::NetId::kMobileNetV1_050};
  cfg.deadline_ms = 0.9;
  const NetCutResult r = nc.run(oracle, cfg);

  ASSERT_EQ(r.proposals.size(), 2u);
  EXPECT_EQ(r.networks_retrained, 2);
  EXPECT_GT(r.exploration_hours, 0.0);
  ASSERT_GE(r.selected, 0);
  for (const NetCutProposal& p : r.proposals) {
    EXPECT_LE(p.estimated_ms, cfg.deadline_ms);
    EXPECT_GE(r.winner().trn.accuracy, p.trn.accuracy);
  }
}

TEST_F(NetCutTest, WinnerMeetsDeadlineByMeasurement) {
  ProfilerEstimator prof(lab_);
  NetCut nc(lab_, evaluator_);
  NetCutConfig cfg;
  cfg.networks = {zoo::NetId::kMobileNetV1_050, zoo::NetId::kMobileNetV2_100};
  cfg.deadline_ms = 0.5;
  const NetCutResult r = nc.run(prof, cfg);
  ASSERT_GE(r.selected, 0);
  // Estimation error is ~small; the measured latency should confirm.
  EXPECT_TRUE(r.winner().meets_deadline)
      << "measured " << r.winner().trn.latency_ms << " vs deadline " << cfg.deadline_ms;
}

TEST_F(NetCutTest, EmptyWinnerThrows) {
  NetCutResult r;
  EXPECT_THROW(r.winner(), std::logic_error);
}

TEST_F(NetCutTest, ExplorationCostFarBelowBlockwise) {
  // The headline claim at mini scale: NetCut's retraining bill must be a
  // small fraction of exhaustive blockwise exploration over the same nets.
  OracleEstimator oracle(lab_);
  NetCut nc(lab_, evaluator_);
  NetCutConfig cfg;
  cfg.networks = {zoo::NetId::kMobileNetV1_025, zoo::NetId::kMobileNetV1_050};
  cfg.deadline_ms = 0.35;
  const NetCutResult r = nc.run(oracle, cfg);

  BlockwiseExplorer explorer(lab_, evaluator_);
  double blockwise_hours = 0.0;
  for (zoo::NetId net : cfg.networks)
    for (int cut : lab_.blockwise(net)) blockwise_hours += lab_.training_hours(net, cut);

  EXPECT_LT(r.exploration_hours, blockwise_hours / 5.0);
}

TEST_F(NetCutTest, EvaluatorAccuracyInValidRangeAndCached) {
  const zoo::NetId net = zoo::NetId::kMobileNetV1_025;
  const AccuracyResult a = evaluator_.accuracy(net, evaluator_.full_cut(net));
  EXPECT_GT(a.angular_similarity, 0.4);  // far above random
  EXPECT_LE(a.angular_similarity, 1.0);
  EXPECT_GE(a.top1, 0.2);
  // Memoized second call returns the identical value.
  const AccuracyResult b = evaluator_.accuracy(net, evaluator_.full_cut(net));
  EXPECT_DOUBLE_EQ(a.angular_similarity, b.angular_similarity);
}

TEST_F(NetCutTest, EvaluatorRejectsIllegalCut) {
  EXPECT_THROW(evaluator_.accuracy(zoo::NetId::kMobileNetV1_025, 2'000'000),
               std::invalid_argument);
}

}  // namespace
}  // namespace netcut::core
