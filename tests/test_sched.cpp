// Model-checker suites for the serve concurrency protocols (label: sched).
//
// Each suite drives a real serve primitive — RequestQueue, ShardedQueue
// stealing, Fleet admission — through hundreds of deterministic schedules
// (tests/sched_check.hpp over util/schedule.hpp) and asserts protocol
// invariants at quiescence. Negative tests seed known bug patterns (lost
// wakeup, lock-order inversion, held-while-blocking) and assert the
// matching analyzer actually catches them, including replaying a recorded
// failing schedule verbatim.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "app/watchdog.hpp"
#include "serve/fleet.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"
#include "serve/shard.hpp"
#include "sched_check.hpp"
#include "util/ranked_mutex.hpp"
#include "util/schedule.hpp"

namespace {

using netcut::testing::ExploreConfig;
using netcut::testing::ExploreStats;
using netcut::testing::Protocol;
using netcut::testing::explore;
using netcut::testing::replay;
using netcut::testing::run_one_schedule;
namespace sched = netcut::util::sched;
namespace serve = netcut::serve;
namespace util = netcut::util;

void require(bool ok, const std::string& what) {
  if (!ok) throw std::runtime_error(what);
}

serve::Request make_request(std::uint64_t id, double deadline_ms) {
  serve::Request r;
  r.id = id;
  r.arrival_ms = 0.0;
  r.deadline_ms = deadline_ms;
  return r;
}

// ---------------------------------------------------------------------------
// RequestQueue: take vs concurrent push/close.
// ---------------------------------------------------------------------------

// Two producers push disjoint id sets; the last producer to finish closes
// the queue; a consumer loops wait_nonempty/take-all until closed+drained.
// Conservation: every pushed id is consumed exactly once, and every take's
// batch comes back in EDF order. A lost wakeup (push/close landing in the
// consumer's wait window) would deadlock — the explorer proves the
// unlock-before-notify protocol never loses one.
Protocol queue_take_push_close_protocol() {
  struct State {
    serve::RequestQueue q;
    std::atomic<int> producers_left{2};
    std::vector<std::uint64_t> got;  // consumer-only until join
  };
  auto st = std::make_shared<State>();
  const auto producer = [st](std::uint64_t base) {
    for (std::uint64_t i = 0; i < 2; ++i)
      st->q.push(make_request(base + i, 10.0 + static_cast<double>((base * 7 + i * 3) % 5)));
    if (st->producers_left.fetch_sub(1) == 1) st->q.close();
  };
  Protocol p;
  p.bodies.push_back([st] {
    while (st->q.wait_nonempty()) {
      const std::vector<serve::Request> batch = st->q.take(
          [](const serve::Request&, std::size_t pending) { return pending; });
      double last = -1.0;
      for (const serve::Request& r : batch) {
        require(r.deadline_ms >= last, "take batch not EDF-ordered");
        last = r.deadline_ms;
        st->got.push_back(r.id);
      }
    }
  });
  p.bodies.push_back([producer] { producer(100); });
  p.bodies.push_back([producer] { producer(200); });
  p.check = [st] {
    require(st->q.closed(), "queue not closed at quiescence");
    require(st->q.empty(), "requests left behind at quiescence");
    std::vector<std::uint64_t> got = st->got;
    std::sort(got.begin(), got.end());
    const std::vector<std::uint64_t> want = {100, 101, 200, 201};
    require(got == want, "consumed id set != pushed id set");
  };
  return p;
}

TEST(SchedQueue, TakeVsPushCloseConservesRequests) {
  ExploreConfig cfg;
  cfg.seed = 0xBADC0FFEE;
  cfg.random_schedules = 200;
  cfg.exhaustive_depth = 4;
  const ExploreStats stats = explore(queue_take_push_close_protocol, cfg);
  EXPECT_GE(stats.schedules, 200u + 1u);
  EXPECT_GT(stats.max_points, 10u);
}

// Heap-pop order under concurrent mutation: producers push interleaved
// deadlines while a consumer pops singles; each pop must hand out a
// then-minimal element (checked per-batch above; here we additionally
// verify the final serial drain of whatever the consumer did not pop is
// globally EDF-sorted — the heap invariant survived concurrent pushes).
Protocol queue_heap_order_protocol() {
  struct State {
    serve::RequestQueue q;
    std::vector<serve::Request> popped;
  };
  auto st = std::make_shared<State>();
  Protocol p;
  p.bodies.push_back([st] {
    for (std::uint64_t i = 0; i < 3; ++i) st->q.push(make_request(i, 5.0 - static_cast<double>(i)));
  });
  p.bodies.push_back([st] {
    for (std::uint64_t i = 10; i < 13; ++i)
      st->q.push(make_request(i, 2.5 + static_cast<double>(i - 10)));
  });
  p.bodies.push_back([st] {
    for (int i = 0; i < 3; ++i) {
      const std::vector<serve::Request> one =
          st->q.take([](const serve::Request&, std::size_t) { return std::size_t{1}; });
      for (const serve::Request& r : one) st->popped.push_back(r);
    }
  });
  p.check = [st] {
    std::vector<serve::Request> rest = st->q.steal(100);
    double last = -1.0;
    for (const serve::Request& r : rest) {
      require(r.deadline_ms >= last, "final drain not EDF-ordered");
      last = r.deadline_ms;
    }
    require(st->popped.size() + rest.size() == 6, "requests lost or duplicated");
  };
  return p;
}

TEST(SchedQueue, HeapPopOrderSurvivesConcurrentMutation) {
  ExploreConfig cfg;
  cfg.seed = 7171;
  cfg.random_schedules = 200;
  cfg.exhaustive_depth = 3;
  const ExploreStats stats = explore(queue_heap_order_protocol, cfg);
  EXPECT_GE(stats.schedules, 200u);
}

// ---------------------------------------------------------------------------
// ShardedQueue: steal-vs-drain reinsertion.
// ---------------------------------------------------------------------------

// A pusher routes six requests across two shards while a balancer migrates
// work into dry shard 0 and a drainer steals from both shards. The
// balance() window where stolen requests are in *neither* shard (yield
// point shard.balance.holding-stolen) is exactly what the interleavings
// attack. Conservation: drained + remaining == pushed, no duplicates.
Protocol shard_steal_reinsert_protocol() {
  struct State {
    State() : sq(2, 4242) {}
    serve::ShardedQueue sq;
    std::vector<std::uint64_t> drained;
    std::size_t steals_done = 0;
  };
  auto st = std::make_shared<State>();
  Protocol p;
  p.bodies.push_back([st] {
    for (std::uint64_t id = 0; id < 6; ++id)
      st->sq.push(make_request(id, 1.0 + static_cast<double>(id)));
  });
  p.bodies.push_back([st] {
    for (int round = 0; round < 3; ++round)
      if (st->sq.balance(0, 2) > 0) ++st->steals_done;
  });
  p.bodies.push_back([st] {
    for (int round = 0; round < 4; ++round) {
      for (std::size_t w = 0; w < 2; ++w)
        for (const serve::Request& r : st->sq.shard(w).steal(1))
          st->drained.push_back(r.id);
    }
  });
  p.check = [st] {
    std::vector<std::uint64_t> all = st->drained;
    for (std::size_t w = 0; w < 2; ++w)
      for (const serve::Request& r : st->sq.shard(w).steal(100)) all.push_back(r.id);
    std::sort(all.begin(), all.end());
    const std::vector<std::uint64_t> want = {0, 1, 2, 3, 4, 5};
    require(all == want, "steal/reinsert lost or duplicated a request");
    require(st->sq.steals(0) == static_cast<std::int64_t>(st->steals_done),
            "steals counter out of sync with successful balances");
  };
  return p;
}

TEST(SchedShard, StealReinsertConservesRequests) {
  ExploreConfig cfg;
  cfg.seed = 90210;
  cfg.random_schedules = 200;
  cfg.exhaustive_depth = 3;
  const ExploreStats stats = explore(shard_steal_reinsert_protocol, cfg);
  EXPECT_GE(stats.schedules, 200u);
}

// ---------------------------------------------------------------------------
// Fleet: admission racing shedding and stepping.
// ---------------------------------------------------------------------------

serve::FleetConfig sched_fleet_config() {
  serve::FleetConfig fc;
  fc.seed = 1313;
  fc.admission = true;
  return fc;
}

std::vector<serve::FleetWorker> sched_fleet_workers() {
  std::vector<serve::FleetWorker> workers;
  for (int w = 0; w < 2; ++w) {
    serve::FleetWorker fw;
    fw.name = "sched-w" + std::to_string(w);
    serve::ServeOption opt;
    opt.name = "timing-only";
    opt.latency_ms = [](int n) { return 1.0 + 0.1 * n; };
    fw.options.push_back(opt);
    fw.serve.max_batch = 4;
    fw.serve.seed = 5150 + static_cast<std::uint64_t>(w);
    fw.serve.jitter_sigma = 0.0;
    workers.push_back(fw);
  }
  return workers;
}

// Two submitters race a stepper: generous deadlines get admitted, hopeless
// ones shed (even the fastest option cannot meet them). The conservation
// invariant submitted == shed + served + backlog must hold at quiescence
// for the fleet totals AND the per-tenant counters, across every
// interleaving of the admit-to-push window, shedding, and serving.
Protocol fleet_admission_protocol() {
  struct State {
    State() : fleet(sched_fleet_workers(), sched_fleet_config()) {}
    serve::Fleet fleet;
    std::atomic<std::int64_t> rejected{0};
  };
  auto st = std::make_shared<State>();
  const auto submitter = [st](std::uint32_t tenant, std::uint64_t base) {
    for (std::uint64_t i = 0; i < 3; ++i) {
      // Every third request is hopeless: deadline tighter than the fastest
      // single-request batch, shed no matter the schedule.
      const double deadline = (i == 2) ? 0.5 : 1000.0;
      serve::Request r = make_request(base + i, deadline);
      r.tenant = tenant;
      if (st->fleet.submit(r, 0.0).has_value()) st->rejected.fetch_add(1);
    }
  };
  Protocol p;
  p.bodies.push_back([submitter] { submitter(1, 100); });
  p.bodies.push_back([submitter] { submitter(2, 200); });
  p.bodies.push_back([st] {
    double now = 0.0;
    for (int i = 0; i < 12; ++i) {
      (void)st->fleet.step(now);
      now += 2.0;
    }
  });
  p.check = [st] {
    const serve::FleetStats fs = st->fleet.stats();
    require(fs.submitted == 6, "submitted count wrong");
    require(fs.shed == st->rejected.load(), "shed != rejections returned to submitters");
    require(fs.submitted == fs.shed + fs.served +
                                static_cast<std::int64_t>(st->fleet.backlog()),
            "fleet conservation violated: submitted != shed + served + backlog");
    std::int64_t t_submitted = 0, t_shed = 0, t_served = 0;
    for (const auto& [tenant, tc] : st->fleet.tenants()) {
      t_submitted += tc.submitted;
      t_shed += tc.shed;
      t_served += tc.served;
    }
    require(t_submitted == fs.submitted && t_shed == fs.shed && t_served == fs.served,
            "per-tenant counters out of sync with fleet totals");
  };
  return p;
}

TEST(SchedFleet, AdmissionRacingSheddingConserves) {
  ExploreConfig cfg;
  cfg.seed = 60606;
  cfg.random_schedules = 200;
  cfg.exhaustive_depth = 2;
  const ExploreStats stats = explore(fleet_admission_protocol, cfg);
  EXPECT_GE(stats.schedules, 200u);
}

// Regression for the data-visibility fixes: live reporters (watchdog
// current/window_miss_rate, fleet stats) race the serving thread's
// mutations. Before this PR current_ and the steals counters were naked
// fields read outside any lock.
Protocol watchdog_live_report_protocol() {
  struct State {
    State() : wd(make_config(), 3) {}
    static netcut::app::WatchdogConfig make_config() {
      netcut::app::WatchdogConfig c;
      c.window = 2;
      c.cooldown_frames = 1;
      c.recover_patience = 1;
      c.breach_miss_rate = 0.5;
      return c;
    }
    netcut::app::MissRateWatchdog wd;
    std::size_t last_seen = 0;
  };
  auto st = std::make_shared<State>();
  Protocol p;
  p.bodies.push_back([st] {
    for (int i = 0; i < 6; ++i) st->wd.observe(/*missed=*/true, /*slower_fits=*/false);
  });
  p.bodies.push_back([st] {
    for (int i = 0; i < 4; ++i) {
      const std::size_t cur = st->wd.current();
      const double rate = st->wd.window_miss_rate();
      require(cur < 3, "current() out of range");
      require(rate >= 0.0 && rate <= 1.0, "window_miss_rate() out of range");
      st->last_seen = cur;
    }
  });
  p.check = [st] {
    require(st->wd.current() == 2, "six straight misses must walk to the fastest option");
  };
  return p;
}

TEST(SchedRegression, WatchdogLiveReadsRaceObserve) {
  ExploreConfig cfg;
  cfg.seed = 31337;
  cfg.random_schedules = 200;
  cfg.exhaustive_depth = 3;
  const ExploreStats stats = explore(watchdog_live_report_protocol, cfg);
  EXPECT_GE(stats.schedules, 200u);
}

// ---------------------------------------------------------------------------
// Determinism + replay.
// ---------------------------------------------------------------------------

TEST(SchedDeterminism, SameSeedBitReproducibleSchedule) {
  sched::RandomSchedule a(424242), b(424242);
  const sched::RunResult ra = run_one_schedule(queue_take_push_close_protocol, a, 200000);
  const sched::RunResult rb = run_one_schedule(queue_take_push_close_protocol, b, 200000);
  EXPECT_EQ(ra.picks, rb.picks);
  EXPECT_EQ(ra.trace, rb.trace);
  EXPECT_EQ(ra.branching, rb.branching);
}

TEST(SchedDeterminism, RecordedScheduleReplaysVerbatim) {
  sched::RandomSchedule src(777);
  const sched::RunResult recorded =
      run_one_schedule(shard_steal_reinsert_protocol, src, 200000);
  const sched::RunResult again = replay(shard_steal_reinsert_protocol, recorded.picks);
  EXPECT_EQ(recorded.trace, again.trace);
  EXPECT_EQ(recorded.picks, again.picks);
}

TEST(SchedDeterminism, PickFormatRoundTrips) {
  const std::vector<std::size_t> picks = {0, 1, 1, 2, 0, 3};
  EXPECT_EQ(sched::parse_picks(sched::format_picks(picks)), picks);
  EXPECT_TRUE(sched::parse_picks("").empty());
}

// ---------------------------------------------------------------------------
// Negative: the explorer must CATCH seeded concurrency bugs.
// ---------------------------------------------------------------------------

// The classic lost wakeup: the emptiness decision is made in one critical
// section, the (naked) wait happens in a later one, and a produce landing
// in the gap notifies nobody. Under a plain run this hangs rarely; the
// explorer constructs the schedule and reports a structural deadlock with
// a replayable trace.
struct BuggyCell {
  util::RankedMutex mu{util::rank::kQueue, "test/buggy-cell"};
  util::CondVar cv;
  int items = 0;

  bool has_item() {
    util::MutexLock l(mu);
    return items > 0;
  }
  void produce() {
    {
      util::MutexLock l(mu);
      ++items;
    }
    cv.notify_one();
  }
  void consume_buggy() {
    if (!has_item()) {  // BUG: the gap — decision taken, lock dropped
      util::MutexLock l(mu);
      cv.wait(mu);  // BUG: naked wait; a notify before this line is lost
    }
    util::MutexLock l(mu);
    --items;
  }
  void consume_correct() {
    util::MutexLock l(mu);
    cv.wait(mu, [&]() NETCUT_REQUIRES(mu) { return items > 0; });
    --items;
  }
};

Protocol lost_wakeup_protocol() {
  auto cell = std::make_shared<BuggyCell>();
  Protocol p;
  p.bodies.push_back([cell] { cell->consume_buggy(); });
  p.bodies.push_back([cell] { cell->produce(); });
  return p;
}

Protocol correct_wakeup_protocol() {
  auto cell = std::make_shared<BuggyCell>();
  Protocol p;
  p.bodies.push_back([cell] { cell->consume_correct(); });
  p.bodies.push_back([cell] { cell->produce(); });
  return p;
}

TEST(SchedNegative, ExplorerCatchesSeededLostWakeup) {
  ExploreConfig cfg;
  cfg.seed = 1;
  cfg.random_schedules = 300;
  cfg.exhaustive_depth = 8;
  std::optional<sched::ScheduleError> caught;
  try {
    explore(lost_wakeup_protocol, cfg);
  } catch (const sched::ScheduleError& e) {
    caught = e;
  }
  ASSERT_TRUE(caught.has_value()) << "schedule explorer failed to find the lost wakeup";
  EXPECT_TRUE(caught->deadlock());
  EXPECT_NE(std::string(caught->what()).find("cv.wait"), std::string::npos)
      << "deadlock report should show the stuck waiter: " << caught->what();
  EXPECT_FALSE(caught->picks().empty());

  // The recorded failing schedule replays verbatim — same structural
  // deadlock, same reason — which is what makes these reports actionable.
  try {
    replay(lost_wakeup_protocol, caught->picks());
    FAIL() << "replay of the failing pick list did not reproduce the deadlock";
  } catch (const sched::ScheduleError& e) {
    EXPECT_TRUE(e.deadlock());
    EXPECT_EQ(e.reason(), caught->reason());
  }
}

TEST(SchedNegative, CorrectWaitProtocolSurvivesSameCampaign) {
  ExploreConfig cfg;
  cfg.seed = 1;
  cfg.random_schedules = 300;
  cfg.exhaustive_depth = 8;
  EXPECT_NO_THROW(explore(correct_wakeup_protocol, cfg));
}

// Two-mutex handlock (AB vs BA): the explorer finds the deadlock and the
// trace names both stuck threads. The same bug is caught *earlier* (at
// acquisition, before any deadlock) by the runtime rank analyzer — see the
// LockCheckDeathTest suite below. Ranks are deliberately equal here so the
// explorer, not the rank rule, is the detector under test.
Protocol handlock_protocol() {
  struct State {
    util::RankedMutex a{util::rank::kQueue, "test/hand-a"};
    util::RankedMutex b{util::rank::kQueue, "test/hand-b"};
  };
  auto st = std::make_shared<State>();
  Protocol p;
  p.bodies.push_back([st] {
    util::MutexLock la(st->a);
    util::MutexLock lb(st->b);
  });
  p.bodies.push_back([st] {
    util::MutexLock lb(st->b);
    util::MutexLock la(st->a);
  });
  return p;
}

TEST(SchedNegative, ExplorerCatchesHandlock) {
  util::RankedMutex::set_check_enabled(false);  // let it deadlock, not abort
  ExploreConfig cfg;
  cfg.seed = 2;
  cfg.random_schedules = 200;
  cfg.exhaustive_depth = 4;
  std::optional<sched::ScheduleError> caught;
  try {
    explore(handlock_protocol, cfg);
  } catch (const sched::ScheduleError& e) {
    caught = e;
  }
  ASSERT_TRUE(caught.has_value());
  EXPECT_TRUE(caught->deadlock());
  EXPECT_NE(std::string(caught->what()).find("blocked"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Runtime lock-discipline analyzer (NETCUT_LOCKCHECK).
// ---------------------------------------------------------------------------

// Each seeded violation lives in a helper: EXPECT_DEATH's statement must
// not contain top-level commas (macro parsing), and the child re-runs only
// the statement, so the analyzer is armed inside.
void seeded_order_inversion() {
  util::RankedMutex::set_check_enabled(true);
  util::RankedMutex hi(util::rank::kWatchdog, "test/hi");
  util::RankedMutex lo(util::rank::kQueue, "test/lo");
  util::MutexLock lh(hi);
  util::MutexLock ll(lo);  // rank 40 under rank 50: inversion
}

void seeded_recursive_acquisition() {
  util::RankedMutex::set_check_enabled(true);
  util::RankedMutex m(util::rank::kQueue, "test/rec");
  util::MutexLock l1(m);
  m.lock();  // same rank: recursive
}

void seeded_held_while_blocking() {
  util::RankedMutex::set_check_enabled(true);
  util::RankedMutex outer(util::rank::kFleet, "test/outer");
  util::RankedMutex inner(util::rank::kQueue, "test/inner");
  util::CondVar cv;
  util::MutexLock lo(outer);
  util::MutexLock li(inner);
  cv.wait(inner);  // parked on a condvar while also holding 'outer'
}

TEST(LockCheckDeathTest, SeededOrderInversionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(seeded_order_inversion(),
               "lock-order inversion.*'test/lo' \\(rank 40\\).*'test/hi' \\(rank 50\\)");
}

TEST(LockCheckDeathTest, RecursiveAcquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(seeded_recursive_acquisition(), "recursive acquisition.*'test/rec'");
}

TEST(LockCheckDeathTest, HeldWhileBlockingAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(seeded_held_while_blocking(),
               "held-while-blocking.*'test/inner'.*'test/outer'");
}

TEST(LockCheck, RankIncreasingNestingPasses) {
  util::RankedMutex::set_check_enabled(true);
  {
    util::RankedMutex fleet{util::rank::kFleet, "test/fleet"};
    util::RankedMutex server{util::rank::kServer, "test/server"};
    util::RankedMutex queue{util::rank::kQueue, "test/queue"};
    util::MutexLock a(fleet);
    util::MutexLock b(server);
    util::MutexLock c(queue);
  }
  util::RankedMutex::set_check_enabled(false);
}

TEST(LockCheck, ServePrimitivesRunCleanUnderAnalyzer) {
  // The real protocols, single-threaded, with the analyzer armed: the
  // production rank table must hold along every nesting chain exercised.
  util::RankedMutex::set_check_enabled(true);
  {
    serve::Fleet fleet(sched_fleet_workers(), sched_fleet_config());
    for (std::uint64_t i = 0; i < 6; ++i) {
      serve::Request r = make_request(i, 1000.0);
      r.tenant = static_cast<std::uint32_t>(i % 2);
      (void)fleet.submit(r, 0.0);
    }
    double now = 0.0;
    for (int i = 0; i < 8; ++i) {
      (void)fleet.step(now);
      now += 2.0;
    }
    const serve::FleetStats fs = fleet.stats();
    EXPECT_EQ(fs.submitted, 6);
    EXPECT_EQ(fs.shed + fs.served + static_cast<std::int64_t>(fleet.backlog()), 6);
  }
  util::RankedMutex::set_check_enabled(false);
}

}  // namespace
