// Structured exit codes of the netcut_cli front end, asserted end-to-end by
// actually spawning the binary (tests/subprocess.hpp).
//
// The CLI contract (examples/netcut_cli.cpp):
//   0  success / --help
//   1  no network can meet the deadline
//   2  bad arguments
//   3  filesystem failure (unusable cache location)
//   4  runtime failure inside the pipeline
//
// Each invocation pins NETCUT_FAULTS explicitly on its own command line so
// the assertions hold both in clean CI runs and when the whole suite runs
// under a chaos fault schedule (scripts/check.sh exports NETCUT_FAULTS for
// the chaos pass; a child inheriting that env must not flip these codes).
#include <gtest/gtest.h>

#include <string>

#include "subprocess.hpp"

namespace netcut {
namespace {

#ifndef NETCUT_CLI_PATH
#error "NETCUT_CLI_PATH must point at the netcut_cli binary"
#endif

std::string cli(const std::string& args, const std::string& faults = "off") {
  return "NETCUT_FAULTS=" + faults + " " + std::string(NETCUT_CLI_PATH) + " " + args;
}

TEST(CliExitCodes, HelpExitsZero) {
  const auto r = testing::run_command(cli("--help"));
  EXPECT_FALSE(r.signalled);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("usage:"), std::string::npos) << r.output;
}

TEST(CliExitCodes, UnknownFlagExitsTwo) {
  const auto r = testing::run_command(cli("--frobnicate"));
  EXPECT_FALSE(r.signalled);
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos) << r.output;
}

TEST(CliExitCodes, UnknownBackendExitsTwo) {
  const auto r = testing::run_command(cli("--backend avx9000"));
  EXPECT_FALSE(r.signalled);
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown backend"), std::string::npos) << r.output;
}

TEST(CliExitCodes, ValidBackendIsAccepted) {
  // --backend scalar must parse cleanly; pair it with an infeasible
  // deadline so the run stays on the cheap sweep path (exit 1, not 2).
  const auto r = testing::run_command(
      cli("--backend scalar --deadline 0.000001 --fast --net MobileNetV1-0.25"));
  EXPECT_FALSE(r.signalled);
  EXPECT_EQ(r.exit_code, 1);
}

TEST(CliExitCodes, WorkersZeroExitsTwo) {
  const auto r = testing::run_command(cli("--workers 0"));
  EXPECT_FALSE(r.signalled);
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--workers needs an integer >= 1"), std::string::npos) << r.output;
}

TEST(CliExitCodes, WorkersNonNumericExitsTwo) {
  const auto r = testing::run_command(cli("--workers abc"));
  EXPECT_FALSE(r.signalled);
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--workers needs an integer >= 1"), std::string::npos) << r.output;
}

TEST(CliExitCodes, WorkersTrailingGarbageExitsTwo) {
  // Full-consumption parse: "8x" must not silently become 8 workers.
  const auto r = testing::run_command(cli("--workers 8x"));
  EXPECT_FALSE(r.signalled);
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--workers needs an integer >= 1"), std::string::npos) << r.output;
}

TEST(CliExitCodes, WorkersRunsTheFleetDemo) {
  const auto r = testing::run_command(cli("--workers 2"));
  EXPECT_FALSE(r.signalled);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("fleet demo: 2 workers"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("explicit rejections"), std::string::npos) << r.output;
}

TEST(CliExitCodes, KillWorkerMalformedSpecExitsTwo) {
  for (const char* spec : {"banana", "2", "2@", "@5", "-1@5", "2@-3"}) {
    const auto r = testing::run_command(cli(std::string("--workers 4 --kill-worker ") + spec));
    EXPECT_FALSE(r.signalled) << spec;
    EXPECT_EQ(r.exit_code, 2) << spec << ": " << r.output;
    EXPECT_NE(r.output.find("--kill-worker needs W@S"), std::string::npos)
        << spec << ": " << r.output;
  }
}

TEST(CliExitCodes, KillWorkerWithoutWorkersExitsTwo) {
  const auto r = testing::run_command(cli("--kill-worker 1@50"));
  EXPECT_FALSE(r.signalled);
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("pass --workers"), std::string::npos) << r.output;
}

TEST(CliExitCodes, KillWorkerRunsTheFailoverDemo) {
  const auto r = testing::run_command(cli("--workers 4 --kill-worker 1@50"));
  EXPECT_FALSE(r.signalled);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("failover: 1 declared"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("replica1: down"), std::string::npos) << r.output;
}

TEST(CliExitCodes, CascadeMalformedSpecExitsTwo) {
  // Eager validation: every malformed spec dies on one line with exit 2
  // before the evaluator pipeline spins up.
  for (const char* spec :
       {"banana", "shallow=2", "shallow=2,deep=4", "shallow=a,deep=4,thr=0.2",
        "shallow=2,deep=1,thr=0.5", "shallow=-1,deep=4,thr=0.2",
        "shallow=2,deep=4,thr=2.5", "shallow=2,deep=4,thr=0.2,bogus=1"}) {
    const auto r = testing::run_command(cli(std::string("--cascade ") + spec));
    EXPECT_FALSE(r.signalled) << spec;
    EXPECT_EQ(r.exit_code, 2) << spec << ": " << r.output;
    EXPECT_NE(r.output.find("--cascade:"), std::string::npos) << spec << ": " << r.output;
  }
}

TEST(CliExitCodes, CascadeOrdinalOutOfRangeExitsTwo) {
  // Grammar-valid but ordinal 99 exceeds every zoo trunk's blockwise cut
  // list; the demo rejects it before calibrating anything.
  const auto r = testing::run_command(
      cli("--cascade shallow=2,deep=99,thr=0.2 --fast --net MobileNetV1-0.25 "
          "--cache-dir /tmp/netcut_cli_cascade_range"));
  EXPECT_FALSE(r.signalled);
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("out of range"), std::string::npos) << r.output;
}

TEST(CliExitCodes, CascadeRunsTheDemo) {
  const auto r = testing::run_command(
      cli("--cascade shallow=2,deep=4,thr=0.2 --fast --net MobileNetV1-0.25 "
          "--cache-dir /tmp/netcut_cli_cascade_demo"));
  EXPECT_FALSE(r.signalled);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("cascade:"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("p_escalate"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("static-cut front"), std::string::npos) << r.output;
}

TEST(CliExitCodes, UnknownNetworkExitsTwo) {
  const auto r = testing::run_command(cli("--net NoSuchNet-9.99"));
  EXPECT_FALSE(r.signalled);
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown network"), std::string::npos) << r.output;
}

TEST(CliExitCodes, ImpossibleDeadlineExitsOne) {
  // A 1 ns deadline is infeasible for every cut, so the run stops after the
  // (cheap, device-model) latency sweep without retraining anything.
  const auto r =
      testing::run_command(cli("--deadline 0.000001 --fast --net MobileNetV1-0.25"));
  EXPECT_FALSE(r.signalled);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("no network can meet"), std::string::npos) << r.output;
}

TEST(CliExitCodes, UnusableCacheDirExitsThree) {
  // /dev/null is a file, so create_directories("/dev/null/x") must throw
  // std::filesystem::filesystem_error before any expensive work starts.
  const auto r = testing::run_command(cli("--cache-dir /dev/null/x --fast"));
  EXPECT_FALSE(r.signalled);
  EXPECT_EQ(r.exit_code, 3);
  EXPECT_NE(r.output.find("filesystem error"), std::string::npos) << r.output;
}

TEST(CliExitCodes, TotalMeasurementLossExitsFour) {
  // drop=1.0 makes every simulated measurement run fail, so the latency lab
  // throws std::runtime_error -> the generic handler maps it to 4.
  const auto r = testing::run_command(
      cli("--deadline 0.5 --fast --net MobileNetV1-0.25", "drop=1.0"));
  EXPECT_FALSE(r.signalled);
  EXPECT_EQ(r.exit_code, 4);
  EXPECT_NE(r.output.find("netcut_cli: error:"), std::string::npos) << r.output;
}

}  // namespace
}  // namespace netcut
