// Thread-pool substrate: lifecycle, partitioning edge cases, exception
// propagation, the nested-parallelism rule, and the determinism contract —
// kernel and evaluator outputs must be bit-identical at any thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "core/evaluator.hpp"
#include "nn/conv.hpp"
#include "nn/init.hpp"
#include "tensor/gemm.hpp"
#include "util/thread_pool.hpp"

namespace netcut::util {
namespace {

/// Restores the default pool size when a test exits.
struct PoolGuard {
  ~PoolGuard() { set_num_threads(default_thread_count()); }
};

TEST(ThreadPool, ResizeChangesParticipantCount) {
  PoolGuard guard;
  set_num_threads(4);
  EXPECT_EQ(num_threads(), 4);
  set_num_threads(1);
  EXPECT_EQ(num_threads(), 1);
  set_num_threads(0);  // clamps to 1
  EXPECT_EQ(num_threads(), 1);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  PoolGuard guard;
  for (const int threads : {1, 3, 8}) {
    set_num_threads(threads);
    for (const std::int64_t range : {1, 2, 7, 64, 1000}) {
      for (const std::int64_t grain : {1, 3, 128}) {
        std::vector<std::atomic<int>> hits(static_cast<std::size_t>(range));
        for (auto& h : hits) h = 0;
        parallel_for(0, range, grain, [&](std::int64_t b, std::int64_t e) {
          ASSERT_LE(b, e);
          for (std::int64_t i = b; i < e; ++i) ++hits[static_cast<std::size_t>(i)];
        });
        for (std::int64_t i = 0; i < range; ++i)
          EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
              << "threads=" << threads << " range=" << range << " grain=" << grain;
      }
    }
  }
}

TEST(ThreadPool, EmptyRangeNeverInvokesBody) {
  PoolGuard guard;
  set_num_threads(4);
  bool called = false;
  parallel_for(5, 5, 1, [&](std::int64_t, std::int64_t) { called = true; });
  parallel_for(7, 3, 1, [&](std::int64_t, std::int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, RangeSmallerThanThreadCount) {
  PoolGuard guard;
  set_num_threads(8);
  std::vector<std::atomic<int>> hits(3);
  for (auto& h : hits) h = 0;
  parallel_for(0, 3, 1, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) ++hits[static_cast<std::size_t>(i)];
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, GrainLargerThanRangeRunsSingleChunk) {
  PoolGuard guard;
  set_num_threads(4);
  std::atomic<int> calls{0};
  parallel_for(0, 10, 100, [&](std::int64_t b, std::int64_t e) {
    ++calls;
    EXPECT_EQ(b, 0);
    EXPECT_EQ(e, 10);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, NonPositiveGrainClampsToOne) {
  PoolGuard guard;
  set_num_threads(2);
  std::vector<std::atomic<int>> hits(5);
  for (auto& h : hits) h = 0;
  parallel_for(0, 5, 0, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) ++hits[static_cast<std::size_t>(i)];
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  PoolGuard guard;
  set_num_threads(4);
  EXPECT_THROW(parallel_for(0, 100, 1,
                            [&](std::int64_t b, std::int64_t) {
                              if (b == 42) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
  // The pool survives an exception and keeps working.
  std::atomic<int> sum{0};
  parallel_for(0, 10, 1, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) sum += static_cast<int>(i);
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, NestedParallelForRunsSeriallyInWorker) {
  PoolGuard guard;
  set_num_threads(4);
  std::atomic<int> outer_hits{0}, inner_hits{0};
  std::atomic<bool> saw_worker_flag{false};
  parallel_for(0, 8, 1, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      ++outer_hits;
      if (ThreadPool::in_worker()) saw_worker_flag = true;
      // The nested call must complete inline without deadlocking.
      parallel_for(0, 4, 1, [&](std::int64_t nb, std::int64_t ne) {
        for (std::int64_t j = nb; j < ne; ++j) ++inner_hits;
      });
    }
  });
  EXPECT_EQ(outer_hits.load(), 8);
  EXPECT_EQ(inner_hits.load(), 32);
  EXPECT_TRUE(saw_worker_flag.load());  // with 4 participants some chunk ran on a worker
}

TEST(ThreadPool, DefaultThreadCountIsPositive) { EXPECT_GE(default_thread_count(), 1); }

// --- Determinism contract -------------------------------------------------

template <typename Fn>
std::vector<std::vector<float>> run_at_thread_counts(Fn&& fn) {
  PoolGuard guard;
  std::vector<std::vector<float>> results;
  for (const int threads : {1, 8}) {
    set_num_threads(threads);
    results.push_back(fn());
  }
  return results;
}

void expect_bit_identical(const std::vector<std::vector<float>>& results) {
  ASSERT_EQ(results.size(), 2u);
  ASSERT_EQ(results[0].size(), results[1].size());
  ASSERT_FALSE(results[0].empty());
  EXPECT_EQ(std::memcmp(results[0].data(), results[1].data(),
                        results[0].size() * sizeof(float)),
            0);
}

TEST(ThreadDeterminism, GemmBitIdenticalAcrossThreadCounts) {
  Rng rng(11);
  const int m = 67, k = 150, n = 93;  // deliberately tile-unaligned
  const auto a = tensor::Tensor::randn(tensor::Shape{m, k}, rng);
  const auto b = tensor::Tensor::randn(tensor::Shape{k, n}, rng);
  expect_bit_identical(run_at_thread_counts([&] {
    tensor::Tensor c(tensor::Shape{m, n});
    tensor::gemm(a.data(), b.data(), c.data(), m, k, n);
    return std::vector<float>(c.data(), c.data() + c.numel());
  }));
}

TEST(ThreadDeterminism, GemmTransposedVariantsBitIdentical) {
  Rng rng(12);
  const int m = 61, k = 77, n = 129;
  const auto at = tensor::Tensor::randn(tensor::Shape{k, m}, rng);
  const auto bt = tensor::Tensor::randn(tensor::Shape{n, k}, rng);
  const auto a = tensor::Tensor::randn(tensor::Shape{m, k}, rng);
  const auto b = tensor::Tensor::randn(tensor::Shape{k, n}, rng);
  expect_bit_identical(run_at_thread_counts([&] {
    tensor::Tensor c1(tensor::Shape{m, n}), c2(tensor::Shape{m, n});
    tensor::gemm_at(at.data(), b.data(), c1.data(), m, k, n);
    tensor::gemm_bt(a.data(), bt.data(), c2.data(), m, k, n);
    std::vector<float> out(c1.data(), c1.data() + c1.numel());
    out.insert(out.end(), c2.data(), c2.data() + c2.numel());
    return out;
  }));
}

TEST(ThreadDeterminism, ConvForwardBackwardBitIdentical) {
  Rng rng(13);
  const auto x = tensor::Tensor::randn(tensor::Shape::chw(13, 19, 17), rng);
  nn::Conv2D proto(13, 21, 3, 1);
  nn::he_init_conv(proto.weight(), rng);
  const auto gy = tensor::Tensor::randn(tensor::Shape::chw(21, 19, 17), rng);
  expect_bit_identical(run_at_thread_counts([&] {
    nn::Conv2D conv = proto;  // fresh gradients per run
    const tensor::Tensor y = conv.forward({&x}, /*train=*/true);
    const std::vector<tensor::Tensor> gx = conv.backward(gy);
    std::vector<float> out(y.data(), y.data() + y.numel());
    out.insert(out.end(), gx[0].data(), gx[0].data() + gx[0].numel());
    const tensor::Tensor& gw = *conv.grads()[0];
    out.insert(out.end(), gw.data(), gw.data() + gw.numel());
    return out;
  }));
}

TEST(ThreadDeterminism, DepthwiseConvBitIdentical) {
  Rng rng(14);
  const auto x = tensor::Tensor::randn(tensor::Shape::chw(37, 15, 15), rng);
  nn::DepthwiseConv2D proto(37, 3, 1);
  nn::he_init_conv(proto.weight(), rng);
  const auto gy = tensor::Tensor::randn(tensor::Shape::chw(37, 15, 15), rng);
  expect_bit_identical(run_at_thread_counts([&] {
    nn::DepthwiseConv2D conv = proto;
    const tensor::Tensor y = conv.forward({&x}, /*train=*/true);
    const std::vector<tensor::Tensor> gx = conv.backward(gy);
    std::vector<float> out(y.data(), y.data() + y.numel());
    out.insert(out.end(), gx[0].data(), gx[0].data() + gx[0].numel());
    return out;
  }));
}

TEST(ThreadDeterminismHeavy, EvaluatorBitIdenticalAcrossThreadCounts) {
#if defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "trunk pretraining is too slow under TSan";
#endif
  // Same mini configuration as test_integration, so the pretrained-trunk
  // disk cache is shared across the suite.
  data::HandsConfig dc;
  dc.resolution = 24;
  dc.train_count = 80;
  dc.test_count = 40;
  core::EvalConfig ec;
  ec.resolution = 24;
  ec.epochs = 8;
  ec.cache_path = "";  // no memo file: force real recomputation per run
  ec.pretrained.source_images = 80;
  ec.pretrained.epochs = 6;
  const data::HandsDataset dataset(dc);

  PoolGuard guard;
  std::vector<core::AccuracyResult> results;
  for (const int threads : {1, 8}) {
    set_num_threads(threads);
    core::TrnEvaluator evaluator(dataset, ec);
    const auto cuts = evaluator.cutpoints(zoo::NetId::kMobileNetV1_025);
    results.push_back(evaluator.accuracy(zoo::NetId::kMobileNetV1_025, cuts[cuts.size() / 2]));
  }
  // Bitwise equality on the doubles — the determinism contract, not an
  // approximate match.
  EXPECT_EQ(results[0].angular_similarity, results[1].angular_similarity);
  EXPECT_EQ(results[0].top1, results[1].top1);
}

}  // namespace
}  // namespace netcut::util
