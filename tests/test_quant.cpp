// Quantization: round-trip properties, BN folding equivalence, calibration,
// integer kernels vs the float reference.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>

#include "data/hands.hpp"
#include "data/pretrained.hpp"
#include "nn/activation.hpp"
#include "nn/conv.hpp"
#include "nn/dense.hpp"
#include "nn/combine.hpp"
#include "nn/init.hpp"
#include "nn/norm.hpp"
#include "quant/calibrate.hpp"
#include "quant/fusion.hpp"
#include "quant/qnetwork.hpp"
#include "quant/quantize.hpp"
#include "hw/device.hpp"
#include "tensor/backend.hpp"
#include "util/rng.hpp"
#include "zoo/zoo.hpp"

namespace netcut::quant {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(QuantParams, RangeIncludesZeroAndRoundTrips) {
  const QuantParams p = QuantParams::from_range(0.5f, 4.0f);  // lo pulled to 0
  EXPECT_EQ(quantize_value(0.0f, p), p.zero_point);
  EXPECT_NEAR(dequantize_value(quantize_value(0.0f, p), p), 0.0f, 1e-6f);
  EXPECT_NEAR(dequantize_value(quantize_value(3.7f, p), p), 3.7f, p.scale);
}

TEST(QuantParams, ErrorBoundedByHalfStep) {
  util::Rng rng(1);
  const Tensor x = Tensor::uniform(Shape::vec(1000), rng, -2.0f, 6.0f);
  const QuantParams p = QuantParams::from_range(-2.0f, 6.0f);
  EXPECT_LE(quantization_error(x, p), p.scale * 0.5f + 1e-6f);
}

TEST(QuantParams, ClampsOutOfRange) {
  const QuantParams p = QuantParams::from_range(-1.0f, 1.0f);
  EXPECT_EQ(quantize_value(100.0f, p), 255);
  EXPECT_EQ(quantize_value(-100.0f, p), 0);
}

TEST(ChannelQuant, PerChannelScalesAndBound) {
  util::Rng rng(2);
  Tensor w = Tensor::randn(Shape{4, 3, 3, 3}, rng, 0.2f);
  // Give channel 2 a much larger range.
  for (int i = 0; i < 27; ++i) w[2 * 27 + i] *= 20.0f;
  const ChannelQuant q = quantize_weights_per_channel(w);
  EXPECT_GT(q.scales[2], q.scales[0] * 5.0f);
  const Tensor restored = dequantize_weights(q, w.shape());
  for (int o = 0; o < 4; ++o)
    for (int i = 0; i < 27; ++i)
      EXPECT_NEAR(restored[o * 27 + i], w[o * 27 + i], q.scales[static_cast<std::size_t>(o)]);
}

TEST(Fusion, FoldedGraphIsNumericallyEquivalent) {
  util::Rng rng(3);
  nn::Graph g;
  int x = g.add_input(Shape::chw(3, 8, 8));
  auto conv = std::make_unique<nn::Conv2D>(3, 6, 3, 1, -1, false);
  nn::he_init_conv(conv->weight(), rng);
  x = g.add(std::move(conv), {x}, "conv");
  auto bn = std::make_unique<nn::BatchNorm>(6);
  for (int c = 0; c < 6; ++c) {
    bn->gamma()[c] = static_cast<float>(rng.uniform(0.5, 1.5));
    bn->beta()[c] = static_cast<float>(rng.normal(0.0, 0.3));
    bn->running_mean()[c] = static_cast<float>(rng.normal(0.0, 0.5));
    bn->running_var()[c] = static_cast<float>(rng.uniform(0.3, 2.0));
  }
  x = g.add(std::move(bn), {x}, "bn");
  g.add(std::make_unique<nn::ReLU>(false), {x}, "relu");

  FusionReport report;
  nn::Graph folded = fold_batchnorm(g, &report);
  EXPECT_EQ(report.batchnorms_folded, 1);
  EXPECT_EQ(report.nodes_after, report.nodes_before - 1);

  nn::Network orig(std::move(g)), fused(std::move(folded));
  const Tensor input = Tensor::randn(Shape::chw(3, 8, 8), rng, 0.7f);
  EXPECT_LT(tensor::max_abs_diff(orig.forward(input), fused.forward(input)), 1e-4f);
}

TEST(Fusion, WholeTrunkFoldsAndMatches) {
  nn::Graph trunk = zoo::build_trunk(zoo::NetId::kMobileNetV1_025, 24);
  data::PretrainedConfig pc;
  pc.source_images = 40;
  pc.epochs = 1;  // weights just need to be non-degenerate here
  data::generate_pretrained_weights(trunk, pc);
  // Give BNs non-trivial running stats.
  util::Rng rng(5);
  for (int id = 1; id < trunk.node_count(); ++id) {
    if (trunk.node(id).layer->kind() != nn::LayerKind::kBatchNorm) continue;
    auto& bn = static_cast<nn::BatchNorm&>(*trunk.node(id).layer);
    for (int c = 0; c < bn.channels(); ++c) {
      bn.running_mean()[c] = static_cast<float>(rng.normal(0.0, 0.2));
      bn.running_var()[c] = static_cast<float>(rng.uniform(0.5, 1.5));
    }
  }

  FusionReport report;
  nn::Graph folded = fold_batchnorm(trunk, &report);
  EXPECT_EQ(report.batchnorms_folded, 27);  // stem + 13 blocks * 2

  nn::Network a(std::move(trunk)), b(std::move(folded));
  const Tensor x = Tensor::randn(Shape::chw(3, 24, 24), rng, 0.5f);
  const Tensor ya = a.forward(x);
  const Tensor yb = b.forward(x);
  EXPECT_LT(tensor::max_abs_diff(ya, yb) / std::max(1.0f, ya.max()), 2e-3f);
}

TEST(Fusion, SkipsSharedProducers) {
  // BN whose producer feeds two consumers must not fold.
  nn::Graph g;
  int in = g.add_input(Shape::chw(2, 4, 4));
  int conv = g.add(std::make_unique<nn::Conv2D>(2, 2, 1, 1), {in}, "conv");
  int bn = g.add(std::make_unique<nn::BatchNorm>(2), {conv}, "bn");
  g.add(std::make_unique<nn::Add>(2), {conv, bn}, "add");  // conv used twice
  FusionReport report;
  fold_batchnorm(g, &report);
  EXPECT_EQ(report.batchnorms_folded, 0);
}

TEST(Calibrate, ObservedRangesCoverActivations) {
  util::Rng rng(4);
  nn::Graph g;
  int x = g.add_input(Shape::chw(1, 4, 4));
  auto conv = std::make_unique<nn::Conv2D>(1, 2, 3, 1);
  nn::he_init_conv(conv->weight(), rng);
  g.add(std::move(conv), {x}, "conv");
  nn::Network net(std::move(g));

  std::vector<Tensor> imgs;
  for (int i = 0; i < 10; ++i) imgs.push_back(Tensor::randn(Shape::chw(1, 4, 4), rng));
  std::vector<const Tensor*> ptrs;
  for (const auto& t : imgs) ptrs.push_back(&t);

  CalibrationConfig cc;
  cc.policy = ScalePolicy::kMinMax;
  const ActivationScales scales = calibrate_activations(net, ptrs, cc);
  ASSERT_EQ(scales.size(), 2u);  // input + conv
  // Re-run an image: all activations must quantize within range (no clamp
  // beyond one step at the extremes).
  const Tensor y = net.forward(imgs[0]);
  const QuantParams p = scales.at(1);
  EXPECT_LE(quantization_error(y, p), p.scale * 0.51f);
}

TEST(QuantizedNetwork, AccuracyImpactIsSmall) {
  util::Rng rng(6);
  nn::Graph g;
  int x = g.add_input(Shape::chw(2, 6, 6));
  auto conv = std::make_unique<nn::Conv2D>(2, 4, 3, 1);
  nn::he_init_conv(conv->weight(), rng);
  x = g.add(std::move(conv), {x}, "conv");
  x = g.add(std::make_unique<nn::ReLU>(false), {x}, "relu");
  auto conv2 = std::make_unique<nn::Conv2D>(4, 3, 1, 1);
  nn::he_init_conv(conv2->weight(), rng);
  g.add(std::move(conv2), {x}, "conv2");
  nn::Network ref(g);  // copy keeps fp32 weights

  QuantizedNetwork qnet(std::move(g));
  std::vector<Tensor> imgs;
  for (int i = 0; i < 12; ++i) imgs.push_back(Tensor::randn(Shape::chw(2, 6, 6), rng, 0.7f));
  std::vector<const Tensor*> ptrs;
  for (const auto& t : imgs) ptrs.push_back(&t);
  qnet.calibrate(ptrs);

  const Tensor probe = Tensor::randn(Shape::chw(2, 6, 6), rng, 0.7f);
  const Tensor yf = ref.forward(probe);
  const Tensor yq = qnet.forward(probe);
  const float scale = std::max(std::abs(yf.max()), std::abs(yf.min()));
  EXPECT_LT(tensor::max_abs_diff(yf, yq), 0.1f * scale + 0.05f);
  EXPECT_GT(tensor::max_abs_diff(yf, yq), 0.0f);  // quantization is lossy
}

TEST(Int8Kernels, ConvMatchesFloatReferenceOnQuantizedWeights) {
  util::Rng rng(7);
  nn::Conv2D conv(2, 3, 3, 2);
  nn::he_init_conv(conv.weight(), rng);
  for (int o = 0; o < 3; ++o) conv.bias()[o] = static_cast<float>(rng.normal(0.0, 0.1));

  const Tensor x = Tensor::uniform(Shape::chw(2, 7, 7), rng, -1.0f, 1.0f);
  const QuantParams in_p = QuantParams::from_range(-1.0f, 1.0f);

  // Reference: float conv over int8-round-tripped weights and activations.
  nn::Conv2D ref = conv;
  const ChannelQuant qw = quantize_weights_per_channel(conv.weight());
  ref.weight() = dequantize_weights(qw, conv.weight().shape());
  const Tensor xq = fake_quantize(x, in_p);
  const Tensor want = ref.forward({&xq}, false);

  const Tensor got = int8_conv2d(conv, x, in_p);
  EXPECT_LT(tensor::max_abs_diff(want, got), 1e-3f);
}

TEST(Int8Kernels, DenseMatchesFloatReference) {
  util::Rng rng(8);
  nn::Dense dense(10, 4);
  nn::xavier_init_dense(dense.weight(), rng);
  const Tensor x = Tensor::uniform(Shape::vec(10), rng, 0.0f, 2.0f);
  const QuantParams in_p = QuantParams::from_range(0.0f, 2.0f);

  nn::Dense ref = dense;
  const ChannelQuant qw = quantize_weights_per_channel(dense.weight());
  ref.weight() = dequantize_weights(qw, dense.weight().shape());
  const Tensor xq = fake_quantize(x, in_p);
  const Tensor want = ref.forward({&xq}, false);

  const Tensor got = int8_dense(dense, x, in_p);
  EXPECT_LT(tensor::max_abs_diff(want, got), 1e-4f);
}

TEST(Calibrate, EmptyImageSetThrows) {
  util::Rng rng(20);
  nn::Graph g;
  int x = g.add_input(Shape::chw(1, 4, 4));
  auto conv = std::make_unique<nn::Conv2D>(1, 2, 3, 1);
  nn::he_init_conv(conv->weight(), rng);
  g.add(std::move(conv), {x}, "conv");
  nn::Network net(std::move(g));
  EXPECT_THROW(calibrate_activations(net, {}), std::invalid_argument);
}

TEST(Calibrate, SingleImageSetWorks) {
  util::Rng rng(21);
  nn::Graph g;
  int x = g.add_input(Shape::chw(1, 4, 4));
  auto conv = std::make_unique<nn::Conv2D>(1, 2, 3, 1);
  nn::he_init_conv(conv->weight(), rng);
  g.add(std::move(conv), {x}, "conv");

  QuantizedNetwork qnet(std::move(g));
  const Tensor img = Tensor::randn(Shape::chw(1, 4, 4), rng);
  qnet.calibrate({&img});
  ASSERT_TRUE(qnet.calibrated());
  for (const auto& [id, p] : qnet.scales()) EXPECT_GT(p.scale, 0.0f) << "node " << id;
  // Both execution paths must run off a one-image calibration.
  const Tensor ys = qnet.forward(img);
  const Tensor yi = qnet.forward_int8(img);
  EXPECT_EQ(ys.shape(), yi.shape());
}

TEST(ChannelQuant, AllZeroChannelGetsSafeScale) {
  Tensor w(Shape{3, 4});  // [O, I] dense-style weight
  for (int i = 0; i < 4; ++i) {
    w[0 * 4 + i] = 0.0f;  // channel 0: all zeros — must not divide by zero
    w[1 * 4 + i] = 0.5f * static_cast<float>(i + 1);
    w[2 * 4 + i] = -1.0f;
  }
  const ChannelQuant q = quantize_weights_per_channel(w);
  EXPECT_FLOAT_EQ(q.scales[0], 1.0f);  // amax==0 guard (scale stays finite)
  for (int i = 0; i < 4; ++i) EXPECT_EQ(q.values[static_cast<std::size_t>(i)], 0);
  const Tensor restored = dequantize_weights(q, w.shape());
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(restored[0 * 4 + i], 0.0f);
}

TEST(Int8Kernels, OddKShapesMatchReference) {
  // K = in_c * kh * kw lands off every vector width here (K = 5 for conv,
  // K = 17 for dense); exercises the packed kernel's K remainder path.
  util::Rng rng(22);
  nn::Conv2D conv(5, 3, 1, 1);
  nn::he_init_conv(conv.weight(), rng);
  const Tensor x = Tensor::uniform(Shape::chw(5, 6, 6), rng, -1.0f, 1.0f);
  const QuantParams in_p = QuantParams::from_range(-1.0f, 1.0f);
  nn::Conv2D cref = conv;
  cref.weight() = dequantize_weights(quantize_weights_per_channel(conv.weight()),
                                     conv.weight().shape());
  const Tensor xq = fake_quantize(x, in_p);
  EXPECT_LT(tensor::max_abs_diff(cref.forward({&xq}, false), int8_conv2d(conv, x, in_p)),
            1e-3f);

  nn::Dense dense(17, 3);
  nn::xavier_init_dense(dense.weight(), rng);
  const Tensor v = Tensor::uniform(Shape::vec(17), rng, 0.0f, 2.0f);
  const QuantParams vp = QuantParams::from_range(0.0f, 2.0f);
  nn::Dense dref = dense;
  dref.weight() = dequantize_weights(quantize_weights_per_channel(dense.weight()),
                                     dense.weight().shape());
  const Tensor vq = fake_quantize(v, vp);
  EXPECT_LT(tensor::max_abs_diff(dref.forward({&vq}, false), int8_dense(dense, v, vp)),
            1e-4f);
}

TEST(QuantizedNetwork, ForwardInt8TracksSimulatedForwardOnZooTrunk) {
  util::Rng rng(23);
  nn::Graph g = zoo::build_trunk(zoo::NetId::kMobileNetV1_025, 24);
  nn::init_graph(g, rng);
  QuantizedNetwork qnet(fold_batchnorm(g));

  std::vector<Tensor> imgs;
  for (int i = 0; i < 4; ++i) imgs.push_back(Tensor::randn(Shape::chw(3, 24, 24), rng, 0.5f));
  std::vector<const Tensor*> ptrs;
  for (const auto& t : imgs) ptrs.push_back(&t);
  qnet.calibrate(ptrs);

  const Tensor ys = qnet.forward(imgs[0]);
  const Tensor yi = qnet.forward_int8(imgs[0]);
  ASSERT_EQ(ys.shape(), yi.shape());
  // Same weights, same calibrated grids; the two paths differ only in where
  // requantization rounding lands, so they track within a small fraction of
  // the output range.
  const float range = std::max(std::abs(ys.max()), std::abs(ys.min()));
  EXPECT_LT(tensor::max_abs_diff(ys, yi), 0.15f * range + 0.05f);

  // Steady-state integer passes reuse the arena: a second run must be
  // bitwise identical to the first.
  const Tensor yi2 = qnet.forward_int8(imgs[0]);
  EXPECT_EQ(tensor::max_abs_diff(yi, yi2), 0.0f);
}

TEST(QuantizedNetwork, Int8SpeedupReportedAgainstDeviceModel) {
  // The speedup claim is a property of the packed simd kernels — the scalar
  // backend's s8u8 loop is deliberately the slow oracle — so pin the simd
  // backend for the measurement regardless of NETCUT_BACKEND.
  const tensor::BackendKind entry_backend = tensor::active_backend_kind();
  tensor::set_backend(tensor::BackendKind::kSimd);
  util::Rng rng(24);
  nn::Graph g = zoo::build_trunk(zoo::NetId::kResNet50, 32);
  nn::init_graph(g, rng);
  nn::Network fp(fold_batchnorm(g));
  QuantizedNetwork qnet(fold_batchnorm(g));
  const Tensor img = Tensor::randn(Shape::chw(3, 32, 32), rng, 0.5f);
  qnet.calibrate({&img});

  const auto best_ms = [](auto&& fn) {
    fn();  // warm caches and plans
    double best = 1e300;
    for (int i = 0; i < 3; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      fn();
      const auto t1 = std::chrono::steady_clock::now();
      best = std::min(best, std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
    return best;
  };
  const double fp_ms = best_ms([&] { fp.forward(img); });
  const double q_ms = best_ms([&] { qnet.forward_int8(img); });
  const double measured = fp_ms / q_ms;
  const double predicted = hw::DeviceModel().int8_speedup(fp.graph(), /*fuse=*/true);

  RecordProperty("fp32_ms", std::to_string(fp_ms));
  RecordProperty("int8_ms", std::to_string(q_ms));
  RecordProperty("measured_speedup", std::to_string(measured));
  RecordProperty("device_model_speedup", std::to_string(predicted));
  std::printf("int8 e2e resnet50@32: fp32 %.3f ms, int8 %.3f ms, measured %.2fx, "
              "device-model term %.2fx\n",
              fp_ms, q_ms, measured, predicted);

  // The model simulates an embedded GPU, so only direction is comparable:
  // both must see int8 as a speedup (loose floor guards timing jitter).
  EXPECT_GT(predicted, 1.0);
  EXPECT_GT(measured, 0.75);
  tensor::set_backend(entry_backend);
}

}  // namespace
}  // namespace netcut::quant
