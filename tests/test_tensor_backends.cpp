// Scalar-vs-simd kernel backend agreement. The scalar backend is the
// correctness oracle: fp32 kernels must agree to ULP-level tolerance (FMA
// and lane reductions legally change bits), the int8 kernel must agree
// bit-for-bit (integer sums are associative, so any difference is a bug).
// Shapes deliberately cover register-tile edges: M not a multiple of the
// row tile, N not a multiple of the panel width, K not a multiple of the
// vector width, and degenerate single-row/column cases.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "tensor/backend.hpp"
#include "tensor/gemm.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace netcut::tensor {
namespace {

struct ShapeCase {
  int m, k, n;
};

const std::vector<ShapeCase>& edge_shapes() {
  static const std::vector<ShapeCase> shapes = {
      {1, 1, 1},   {1, 7, 1},   {3, 5, 7},    {6, 16, 16},  {7, 17, 19},
      {4, 1, 16},  {5, 2, 33},  {13, 33, 31}, {23, 63, 40}, {64, 64, 64},
      {6, 128, 1}, {2, 255, 9},
  };
  return shapes;
}

/// Restores the entry backend on scope exit so agreement tests cannot leak
/// a forced backend into the rest of the binary.
class BackendGuard {
 public:
  BackendGuard() : saved_(active_backend_kind()) {}
  ~BackendGuard() { set_backend(saved_); }

 private:
  BackendKind saved_;
};

/// |a - b| within `ulps` units of the wider value's last place, with a small
/// absolute floor for results near zero.
void expect_ulp_close(const float* a, const float* b, std::size_t count, float ulps) {
  for (std::size_t i = 0; i < count; ++i) {
    const float mag = std::max(std::fabs(a[i]), std::fabs(b[i]));
    const float tol = ulps * (mag * 1.19209290e-07f) + 1e-6f;
    ASSERT_NEAR(a[i], b[i], tol) << "at flat index " << i;
  }
}

TEST(Backends, ParseAndNames) {
  EXPECT_EQ(parse_backend("scalar"), BackendKind::kScalar);
  EXPECT_EQ(parse_backend("simd"), BackendKind::kSimd);
  EXPECT_THROW(parse_backend("avx9000"), std::invalid_argument);
  EXPECT_THROW(parse_backend(""), std::invalid_argument);
  EXPECT_STREQ(backend_name(BackendKind::kScalar), "scalar");
  EXPECT_STREQ(backend_name(BackendKind::kSimd), "simd");
  EXPECT_STREQ(scalar_backend().name, "scalar");
  EXPECT_STREQ(simd_backend().name, "simd");
  const std::string isa = simd_isa();
  EXPECT_TRUE(isa == "avx2" || isa == "portable") << isa;
}

TEST(Backends, SetBackendSwitchesDispatch) {
  BackendGuard guard;
  set_backend(BackendKind::kScalar);
  EXPECT_EQ(active_backend_kind(), BackendKind::kScalar);
  EXPECT_STREQ(active_backend().name, "scalar");
  set_backend(BackendKind::kSimd);
  EXPECT_EQ(active_backend_kind(), BackendKind::kSimd);
  EXPECT_STREQ(active_backend().name, "simd");
}

TEST(Backends, Fp32GemmAgreesToUlp) {
  util::Rng rng(101);
  for (const ShapeCase& s : edge_shapes()) {
    const auto a = Tensor::randn(Shape{s.m, s.k}, rng);
    const auto b = Tensor::randn(Shape{s.k, s.n}, rng);
    std::vector<float> ref(static_cast<std::size_t>(s.m) * s.n);
    std::vector<float> got(ref.size());
    scalar_backend().gemm(a.data(), b.data(), ref.data(), s.m, s.k, s.n, false);
    simd_backend().gemm(a.data(), b.data(), got.data(), s.m, s.k, s.n, false);
    // K accumulation steps compound rounding differently under FMA; allow a
    // per-step ULP budget.
    expect_ulp_close(ref.data(), got.data(), ref.size(), 4.0f * static_cast<float>(s.k));
  }
}

TEST(Backends, Fp32GemmAccumulateAgreesToUlp) {
  util::Rng rng(102);
  for (const ShapeCase& s : edge_shapes()) {
    const auto a = Tensor::randn(Shape{s.m, s.k}, rng);
    const auto b = Tensor::randn(Shape{s.k, s.n}, rng);
    const auto c0 = Tensor::randn(Shape{s.m, s.n}, rng);
    std::vector<float> ref(c0.data(), c0.data() + c0.numel());
    std::vector<float> got = ref;
    scalar_backend().gemm(a.data(), b.data(), ref.data(), s.m, s.k, s.n, true);
    simd_backend().gemm(a.data(), b.data(), got.data(), s.m, s.k, s.n, true);
    expect_ulp_close(ref.data(), got.data(), ref.size(), 4.0f * static_cast<float>(s.k));
  }
}

TEST(Backends, TransposedEntryPointsFollowActiveBackend) {
  BackendGuard guard;
  util::Rng rng(103);
  const int m = 9, k = 21, n = 13;
  const auto at = Tensor::randn(Shape{k, m}, rng);
  const auto b = Tensor::randn(Shape{k, n}, rng);
  const auto a = Tensor::randn(Shape{m, k}, rng);
  const auto bt = Tensor::randn(Shape{n, k}, rng);

  std::vector<float> ref(static_cast<std::size_t>(m) * n), got(ref.size());
  set_backend(BackendKind::kScalar);
  gemm_at(at.data(), b.data(), ref.data(), m, k, n);
  set_backend(BackendKind::kSimd);
  gemm_at(at.data(), b.data(), got.data(), m, k, n);
  expect_ulp_close(ref.data(), got.data(), ref.size(), 4.0f * static_cast<float>(k));

  set_backend(BackendKind::kScalar);
  gemm_bt(a.data(), bt.data(), ref.data(), m, k, n);
  set_backend(BackendKind::kSimd);
  gemm_bt(a.data(), bt.data(), got.data(), m, k, n);
  expect_ulp_close(ref.data(), got.data(), ref.size(), 4.0f * static_cast<float>(k));
}

TEST(Backends, GemvAgreesToUlp) {
  util::Rng rng(104);
  for (const ShapeCase& s : edge_shapes()) {
    const auto a = Tensor::randn(Shape{s.m, s.n}, rng);
    const auto x = Tensor::randn(Shape::vec(s.n), rng);
    const auto xt = Tensor::randn(Shape::vec(s.m), rng);
    std::vector<float> ref(static_cast<std::size_t>(s.m)), got(ref.size());
    scalar_backend().gemv(a.data(), x.data(), ref.data(), s.m, s.n);
    simd_backend().gemv(a.data(), x.data(), got.data(), s.m, s.n);
    expect_ulp_close(ref.data(), got.data(), ref.size(), 4.0f * static_cast<float>(s.n));

    std::vector<float> reft(static_cast<std::size_t>(s.n)), gott(reft.size());
    scalar_backend().gemv_t(a.data(), xt.data(), reft.data(), s.m, s.n);
    simd_backend().gemv_t(a.data(), xt.data(), gott.data(), s.m, s.n);
    expect_ulp_close(reft.data(), gott.data(), reft.size(), 4.0f * static_cast<float>(s.m));
  }
}

TEST(Backends, Int8GemmBitExactAcrossBackendsAndMatchesNaive) {
  util::Rng rng(105);
  // K values straddle the madd pair width and the panel interleave; N and M
  // straddle the int8 tile.
  for (const ShapeCase& s : edge_shapes()) {
    std::vector<std::int8_t> a(static_cast<std::size_t>(s.m) * s.k);
    std::vector<std::uint8_t> b(static_cast<std::size_t>(s.k) * s.n);
    for (auto& v : a) v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
    for (auto& v : b) v = static_cast<std::uint8_t>(rng.uniform_int(0, 255));

    std::vector<std::int32_t> ref(static_cast<std::size_t>(s.m) * s.n);
    std::vector<std::int32_t> got(ref.size());
    scalar_backend().gemm_s8u8(a.data(), b.data(), ref.data(), s.m, s.k, s.n);
    simd_backend().gemm_s8u8(a.data(), b.data(), got.data(), s.m, s.k, s.n);
    ASSERT_EQ(ref, got) << "shape " << s.m << "x" << s.k << "x" << s.n;

    // Independent naive oracle on a probe subset (full naive is O(mkn)).
    for (int i = 0; i < s.m; i += std::max(1, s.m / 3)) {
      for (int j = 0; j < s.n; j += std::max(1, s.n / 3)) {
        std::int64_t acc = 0;
        for (int kk = 0; kk < s.k; ++kk)
          acc += static_cast<std::int64_t>(a[static_cast<std::size_t>(i) * s.k + kk]) *
                 static_cast<std::int64_t>(b[static_cast<std::size_t>(kk) * s.n + j]);
        ASSERT_EQ(ref[static_cast<std::size_t>(i) * s.n + j], static_cast<std::int32_t>(acc))
            << "at (" << i << "," << j << ") shape " << s.m << "x" << s.k << "x" << s.n;
      }
    }
  }
}

TEST(Backends, PublicEntryPointsDispatchThroughActiveBackend) {
  BackendGuard guard;
  util::Rng rng(106);
  const int m = 11, k = 29, n = 17;
  const auto a = Tensor::randn(Shape{m, k}, rng);
  const auto b = Tensor::randn(Shape{k, n}, rng);
  std::vector<float> via_gemm(static_cast<std::size_t>(m) * n);
  std::vector<float> via_table(via_gemm.size());
  for (const BackendKind kind : {BackendKind::kScalar, BackendKind::kSimd}) {
    set_backend(kind);
    gemm(a.data(), b.data(), via_gemm.data(), m, k, n);
    (kind == BackendKind::kScalar ? scalar_backend() : simd_backend())
        .gemm(a.data(), b.data(), via_table.data(), m, k, n, false);
    // Same table entry, same inputs: the free function adds nothing, so
    // this is bitwise.
    ASSERT_EQ(std::memcmp(via_gemm.data(), via_table.data(),
                          via_gemm.size() * sizeof(float)),
              0);
  }
}

}  // namespace
}  // namespace netcut::tensor
