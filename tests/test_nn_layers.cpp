#include <gtest/gtest.h>

#include <cmath>

#include "nn/activation.hpp"
#include "nn/combine.hpp"
#include "nn/conv.hpp"
#include "nn/dense.hpp"
#include "nn/norm.hpp"
#include "nn/pooling.hpp"
#include "util/rng.hpp"

namespace netcut::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

std::vector<const Tensor*> in(const Tensor& t) { return {&t}; }

TEST(Conv2D, ShapeInference) {
  Conv2D conv(3, 8, 3, 2);  // same pad
  EXPECT_EQ(conv.output_shape({Shape::chw(3, 32, 32)}), Shape::chw(8, 16, 16));
  Conv2D valid(3, 8, 3, 1, 0);
  EXPECT_EQ(valid.output_shape({Shape::chw(3, 32, 32)}), Shape::chw(8, 30, 30));
  EXPECT_THROW(conv.output_shape({Shape::chw(4, 32, 32)}), std::invalid_argument);
}

TEST(Conv2D, IdentityKernelPassesThrough) {
  Conv2D conv(1, 1, 1, 1, 0, false);
  conv.weight()[0] = 1.0f;
  util::Rng rng(1);
  const Tensor x = Tensor::randn(Shape::chw(1, 5, 5), rng);
  const Tensor y = conv.forward(in(x), false);
  EXPECT_LT(tensor::max_abs_diff(x, y), 1e-6f);
}

TEST(Conv2D, MatchesNaiveConvolution) {
  util::Rng rng(2);
  Conv2D conv(2, 3, 3, 1);
  for (auto* p : conv.params()) *p = Tensor::randn(p->shape(), rng, 0.5f);
  const Tensor x = Tensor::randn(Shape::chw(2, 6, 6), rng);
  const Tensor y = conv.forward(in(x), false);

  for (int o = 0; o < 3; ++o)
    for (int yy = 0; yy < 6; ++yy)
      for (int xx = 0; xx < 6; ++xx) {
        float ref = conv.bias()[o];
        for (int c = 0; c < 2; ++c)
          for (int kh = 0; kh < 3; ++kh)
            for (int kw = 0; kw < 3; ++kw) {
              const int iy = yy + kh - 1, ix = xx + kw - 1;
              if (iy < 0 || iy >= 6 || ix < 0 || ix >= 6) continue;
              ref += conv.weight().at(o, c, kh, kw) * x.at(c, iy, ix);
            }
        ASSERT_NEAR(y.at(o, yy, xx), ref, 1e-4f);
      }
}

TEST(Conv2D, RectangularKernelShapes) {
  Conv2D conv(4, 6, 1, 7, 1, 0, 3, false);  // 1x7 "same"
  EXPECT_EQ(conv.output_shape({Shape::chw(4, 10, 10)}), Shape::chw(6, 10, 10));
  EXPECT_EQ(conv.weight().shape(), (Shape{6, 4, 1, 7}));
}

TEST(Conv2D, CostCountsMacsAndParams) {
  Conv2D conv(3, 8, 3, 1, -1, false);
  const LayerCost c = conv.cost({Shape::chw(3, 10, 10)});
  EXPECT_EQ(c.flops, 2LL * 3 * 3 * 3 * 8 * 100);
  EXPECT_EQ(c.params, 3LL * 3 * 3 * 8);
  EXPECT_EQ(c.kernel, 3);
}

TEST(DepthwiseConv2D, IndependentChannels) {
  DepthwiseConv2D conv(2, 3, 1, -1, false);
  conv.weight().fill(0.0f);
  // Channel 0: identity tap; channel 1: zero kernel.
  conv.weight().at(0, 0, 1, 1) = 1.0f;
  util::Rng rng(3);
  const Tensor x = Tensor::randn(Shape::chw(2, 4, 4), rng);
  const Tensor y = conv.forward(in(x), false);
  for (int i = 0; i < 16; ++i) {
    EXPECT_FLOAT_EQ(y[i], x[i]);        // channel 0 passes
    EXPECT_FLOAT_EQ(y[16 + i], 0.0f);   // channel 1 suppressed
  }
}

TEST(Dense, MatrixVectorSemantics) {
  Dense d(3, 2);
  d.weight().fill(0.0f);
  d.weight()[0] = 1.0f;              // w[0][0]
  d.weight()[3 + 2] = 2.0f;          // w[1][2]
  d.bias()[1] = 0.5f;
  Tensor x(Shape::vec(3));
  x[0] = 4.0f;
  x[2] = 3.0f;
  const Tensor y = d.forward(in(x), false);
  EXPECT_FLOAT_EQ(y[0], 4.0f);
  EXPECT_FLOAT_EQ(y[1], 6.5f);
}

TEST(BatchNorm, InferenceUsesRunningStats) {
  BatchNorm bn(1, 0.0f);
  bn.running_mean()[0] = 2.0f;
  bn.running_var()[0] = 4.0f;
  bn.gamma()[0] = 3.0f;
  bn.beta()[0] = 1.0f;
  Tensor x(Shape::chw(1, 1, 2));
  x[0] = 2.0f;  // -> beta
  x[1] = 4.0f;  // -> (4-2)/2*3+1 = 4
  const Tensor y = bn.forward(in(x), false);
  EXPECT_FLOAT_EQ(y[0], 1.0f);
  EXPECT_FLOAT_EQ(y[1], 4.0f);
}

TEST(BatchNorm, TrainModeNormalizesSpatially) {
  BatchNorm bn(1);
  util::Rng rng(4);
  const Tensor x = Tensor::randn(Shape::chw(1, 8, 8), rng, 5.0f);
  const Tensor y = bn.forward(in(x), true);
  EXPECT_NEAR(y.mean(), 0.0f, 1e-4f);
  double var = 0.0;
  for (std::int64_t i = 0; i < y.numel(); ++i) var += y[i] * y[i];
  EXPECT_NEAR(var / y.numel(), 1.0, 1e-2);
}

TEST(BatchNorm, StatCollectionInstallsObservedMoments) {
  BatchNorm bn(1);
  bn.begin_stat_collection();
  Tensor x(Shape::chw(1, 1, 4));
  x[0] = 1.0f; x[1] = 3.0f; x[2] = 5.0f; x[3] = 7.0f;
  bn.forward(in(x), false);
  bn.end_stat_collection();
  EXPECT_FLOAT_EQ(bn.running_mean()[0], 4.0f);
  EXPECT_NEAR(bn.running_var()[0], 5.0f, 1e-4f);  // population variance
}

TEST(ReLU, ClipsNegativeAndOptionallySix) {
  Tensor x(Shape::vec(3));
  x[0] = -1.0f; x[1] = 3.0f; x[2] = 9.0f;
  ReLU relu(false), relu6(true);
  const Tensor a = relu.forward(in(x), false);
  EXPECT_FLOAT_EQ(a[0], 0.0f);
  EXPECT_FLOAT_EQ(a[2], 9.0f);
  const Tensor b = relu6.forward(in(x), false);
  EXPECT_FLOAT_EQ(b[2], 6.0f);
  EXPECT_EQ(relu.kind(), LayerKind::kReLU);
  EXPECT_EQ(relu6.kind(), LayerKind::kReLU6);
}

TEST(Softmax, NormalizesAndOrders) {
  Tensor x(Shape::vec(3));
  x[0] = 1.0f; x[1] = 3.0f; x[2] = 2.0f;
  const Tensor p = softmax(x);
  EXPECT_NEAR(p.sum(), 1.0f, 1e-6f);
  EXPECT_GT(p[1], p[2]);
  EXPECT_GT(p[2], p[0]);
}

TEST(Softmax, StableForLargeLogits) {
  Tensor x(Shape::vec(2));
  x[0] = 1000.0f; x[1] = 1001.0f;
  const Tensor p = softmax(x);
  EXPECT_TRUE(std::isfinite(p[0]));
  EXPECT_NEAR(p.sum(), 1.0f, 1e-6f);
}

TEST(Pool2D, MaxAndAvgSemantics) {
  Tensor x(Shape::chw(1, 2, 2));
  x[0] = 1.0f; x[1] = 2.0f; x[2] = 3.0f; x[3] = 4.0f;
  Pool2D mx(Pool2D::Mode::kMax, 2, 2, 0);
  Pool2D av(Pool2D::Mode::kAvg, 2, 2, 0);
  EXPECT_FLOAT_EQ(mx.forward(in(x), false)[0], 4.0f);
  EXPECT_FLOAT_EQ(av.forward(in(x), false)[0], 2.5f);
}

TEST(Pool2D, TinyInputClampsToOneOutput) {
  Pool2D p(Pool2D::Mode::kMax, 3, 2, 0);
  EXPECT_EQ(p.output_shape({Shape::chw(4, 1, 1)}), Shape::chw(4, 1, 1));
  Tensor x(Shape::chw(4, 1, 1), 2.0f);
  EXPECT_FLOAT_EQ(p.forward(in(x), false)[0], 2.0f);
}

TEST(GlobalAvgPool, ChannelMeans) {
  Tensor x(Shape::chw(2, 2, 2));
  for (int i = 0; i < 4; ++i) x[i] = 1.0f;
  for (int i = 4; i < 8; ++i) x[i] = static_cast<float>(i);
  GlobalAvgPool gap;
  const Tensor y = gap.forward(in(x), false);
  EXPECT_EQ(y.shape(), Shape::vec(2));
  EXPECT_FLOAT_EQ(y[0], 1.0f);
  EXPECT_FLOAT_EQ(y[1], 5.5f);
}

TEST(AddConcat, CombineSemantics) {
  Tensor a(Shape::chw(1, 1, 2), 1.0f);
  Tensor b(Shape::chw(1, 1, 2), 2.0f);
  Add add(2);
  const Tensor s = add.forward({&a, &b}, false);
  EXPECT_FLOAT_EQ(s[0], 3.0f);

  Concat cat(2);
  const Tensor c = cat.forward({&a, &b}, false);
  EXPECT_EQ(c.shape(), Shape::chw(2, 1, 2));
  EXPECT_FLOAT_EQ(c[0], 1.0f);
  EXPECT_FLOAT_EQ(c[2], 2.0f);
  EXPECT_THROW(cat.output_shape({Shape::chw(1, 1, 2), Shape::chw(1, 2, 2)}),
               std::invalid_argument);
}

TEST(Flatten, RoundTrips) {
  util::Rng rng(5);
  const Tensor x = Tensor::randn(Shape::chw(2, 3, 4), rng);
  Flatten f;
  const Tensor y = f.forward(in(x), true);
  EXPECT_EQ(y.shape(), Shape::vec(24));
  const auto back = f.backward(y);
  EXPECT_EQ(back[0].shape(), x.shape());
  EXPECT_LT(tensor::max_abs_diff(back[0], x), 1e-6f);
}

TEST(Layer, BackwardWithoutForwardThrows) {
  Conv2D conv(1, 1, 3);
  Tensor g(Shape::chw(1, 4, 4));
  EXPECT_THROW(conv.backward(g), std::logic_error);
}

}  // namespace
}  // namespace netcut::nn
