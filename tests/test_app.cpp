// Robotic-hand application layer: classifiers, fusion, and the control loop.
#include <gtest/gtest.h>

#include "app/classifier.hpp"
#include "app/control_loop.hpp"
#include "app/fusion.hpp"
#include "ml/metrics.hpp"

namespace netcut::app {
namespace {

data::HandsConfig tiny_data() {
  data::HandsConfig c;
  c.resolution = 24;
  c.train_count = 60;
  c.test_count = 30;
  return c;
}

MlpConfig quick_mlp() {
  MlpConfig c;
  c.epochs = 15;
  return c;
}

data::PretrainedConfig tiny_pretrain() {
  data::PretrainedConfig c;
  c.source_images = 80;
  c.epochs = 6;
  return c;
}

TEST(SoftClassifier, LearnsSeparableFeatures) {
  // Features: class-indexed bumps; must reach high angular similarity.
  util::Rng rng(1);
  std::vector<tensor::Tensor> x, y;
  for (int i = 0; i < 100; ++i) {
    const int cls = i % 5;
    tensor::Tensor f(tensor::Shape::vec(10));
    for (int k = 0; k < 10; ++k) f[k] = static_cast<float>(rng.normal(0.0, 0.3));
    f[cls * 2] += 2.0f;
    x.push_back(std::move(f));
    y.push_back(data::make_label(static_cast<data::GraspType>(cls), rng, 0.02));
  }
  SoftClassifier clf(10, quick_mlp());
  clf.fit(x, y);
  std::vector<tensor::Tensor> preds, labels;
  for (int i = 0; i < 100; ++i) {
    preds.push_back(clf.predict(x[static_cast<std::size_t>(i)]));
    labels.push_back(y[static_cast<std::size_t>(i)]);
  }
  EXPECT_GT(ml::mean_angular_similarity(preds, labels), 0.8);
  EXPECT_GT(ml::top1_agreement(preds, labels), 0.9);
}

TEST(SoftClassifier, PredictBeforeFitThrows) {
  SoftClassifier clf(4, quick_mlp());
  EXPECT_THROW(clf.predict(tensor::Tensor(tensor::Shape::vec(4))), std::logic_error);
}

TEST(EmgClassifier, BeatsChanceOnHeldOutData) {
  data::EmgGenerator gen(data::EmgConfig{});
  EmgClassifier clf(gen, 150, quick_mlp());
  const double acc = clf.test_accuracy(gen, 100, 777);
  EXPECT_GT(acc, 0.55);  // well above the ~0.35 of a uniform predictor
}

TEST(Fusion, ProductOfExpertsSharpens) {
  tensor::Tensor a(tensor::Shape::vec(2));
  a[0] = 0.7f; a[1] = 0.3f;
  const tensor::Tensor fused = fuse({a, a}, {1.0, 1.0});
  EXPECT_GT(fused[0], 0.8f);  // agreement sharpens the decision
  EXPECT_NEAR(fused.sum(), 1.0f, 1e-5f);
}

TEST(Fusion, WeightsModulateInfluence) {
  tensor::Tensor confident(tensor::Shape::vec(2));
  confident[0] = 0.9f; confident[1] = 0.1f;
  tensor::Tensor opposite(tensor::Shape::vec(2));
  opposite[0] = 0.1f; opposite[1] = 0.9f;
  // Heavily down-weighted opposite opinion barely moves the result.
  const tensor::Tensor fused = fuse({confident, opposite}, {1.0, 0.1});
  EXPECT_GT(fused[0], 0.5f);
}

TEST(Fusion, AccumulatorUniformBeforeObservations) {
  EvidenceAccumulator acc(5);
  const tensor::Tensor d = acc.decision();
  for (int i = 0; i < 5; ++i) EXPECT_NEAR(d[i], 0.2f, 1e-6f);
  tensor::Tensor p(tensor::Shape::vec(5));
  p[2] = 1.0f;
  acc.observe(p);
  EXPECT_GT(acc.decision()[2], 0.9f);
  acc.reset();
  EXPECT_EQ(acc.observations(), 0);
  EXPECT_NEAR(acc.decision()[0], 0.2f, 1e-6f);
}

TEST(ControlLoop, FusedDecisionsBeatDeadlineMissRegime) {
  const data::HandsDataset dataset(tiny_data());
  data::EmgGenerator emg_gen(data::EmgConfig{});
  EmgClassifier emg(emg_gen, 150, quick_mlp());

  const zoo::NetId base = zoo::NetId::kMobileNetV1_025;
  nn::Graph trunk = zoo::build_trunk(base, 24);
  VisualClassifier vision(base, trunk.output_node(), dataset, quick_mlp(),
                          tiny_pretrain());

  ControlLoopConfig cfg;
  cfg.episodes = 20;

  // In-deadline classifier: frames flow.
  ControlLoop good(vision, emg, emg_gen, /*visual_latency_ms=*/0.3, cfg);
  const ControlLoopReport ok = good.run(dataset);
  EXPECT_LT(ok.deadline_miss_rate, 0.01);
  EXPECT_GT(ok.mean_frames_used, 10.0);
  EXPECT_GT(ok.top1_accuracy, 0.45);
  EXPECT_GT(ok.mean_angular_similarity, 0.5);

  // Over-deadline classifier: every frame is dropped; fusion degrades to
  // EMG-only but must still function.
  ControlLoop bad(vision, emg, emg_gen, /*visual_latency_ms=*/2.0, cfg);
  const ControlLoopReport degraded = bad.run(dataset);
  EXPECT_GT(degraded.deadline_miss_rate, 0.99);
  EXPECT_LE(degraded.top1_accuracy, ok.top1_accuracy + 0.15);
}

TEST(VisualClassifier, TrimmedTrunkStillClassifies) {
  const data::HandsDataset dataset(tiny_data());
  const zoo::NetId base = zoo::NetId::kMobileNetV1_050;
  nn::Graph trunk = zoo::build_trunk(base, 24);
  const auto cuts = core::blockwise_cutpoints(trunk);
  VisualClassifier trimmed(base, cuts[static_cast<std::size_t>(cuts.size() / 2)], dataset,
                           quick_mlp(), tiny_pretrain());
  const double acc = trimmed.test_accuracy(dataset);
  EXPECT_GT(acc, 0.33);
  const tensor::Tensor p = trimmed.predict(dataset.test()[0].image);
  EXPECT_NEAR(p.sum(), 1.0f, 1e-5f);
}

}  // namespace
}  // namespace netcut::app
