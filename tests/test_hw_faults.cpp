// Fault-injection schedule + self-healing measurement checks: spec parsing,
// grammar fuzzing and format/parse round-trips, per-stream determinism,
// bit-identical clean paths, MAD trimming under spikes and thermal
// throttles, retry accounting, and the estimator's low-confidence row
// repair.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "core/estimator.hpp"
#include "core/lab.hpp"
#include "hw/faults.hpp"
#include "hw/measure.hpp"
#include "hw/profiler.hpp"
#include "nn/activation.hpp"
#include "nn/conv.hpp"
#include "nn/norm.hpp"
#include "util/rng.hpp"
#include "zoo/zoo.hpp"

namespace netcut::hw {
namespace {

using nn::Graph;

bool env_faults_active() {
  const char* env = std::getenv("NETCUT_FAULTS");
  return env != nullptr && *env != '\0' && std::string(env) != "off";
}

Graph conv_bn_relu_chain(int blocks) {
  Graph g;
  int x = g.add_input(tensor::Shape::chw(3, 32, 32));
  int c = 3;
  for (int b = 0; b < blocks; ++b) {
    x = g.add(std::make_unique<nn::Conv2D>(c, 16, 3, 1, -1, false), {x},
              "conv" + std::to_string(b));
    x = g.add(std::make_unique<nn::BatchNorm>(16), {x}, "bn" + std::to_string(b));
    x = g.add(std::make_unique<nn::ReLU>(false), {x}, "relu" + std::to_string(b));
    c = 16;
  }
  return g;
}

TEST(FaultSpec, ParsesFullGrammar) {
  const FaultConfig c =
      parse_fault_spec("throttle=2.5@200~400,spike=0.02x6,burst=0.004x8x3,drop=0.01,seed=7");
  EXPECT_TRUE(c.enabled);
  EXPECT_DOUBLE_EQ(c.throttle_mult, 2.5);
  EXPECT_EQ(c.throttle_start, 200);
  EXPECT_DOUBLE_EQ(c.throttle_decay, 400.0);
  EXPECT_DOUBLE_EQ(c.spike_prob, 0.02);
  EXPECT_DOUBLE_EQ(c.spike_mult, 6.0);
  EXPECT_DOUBLE_EQ(c.burst_prob, 0.004);
  EXPECT_EQ(c.burst_len, 8);
  EXPECT_DOUBLE_EQ(c.burst_mult, 3.0);
  EXPECT_DOUBLE_EQ(c.drop_prob, 0.01);
  EXPECT_EQ(c.seed, 7u);
}

TEST(FaultSpec, EmptyAndOffDisable) {
  EXPECT_FALSE(parse_fault_spec("").enabled);
  EXPECT_FALSE(parse_fault_spec("off").enabled);
}

TEST(FaultSpec, MalformedClausesThrow) {
  EXPECT_THROW(parse_fault_spec("throttle=abc"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("spike=0.5"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("bananas"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("drop=2.0"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("crash=2"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("hang=1@2~0"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("flaky=1x1.5"), std::invalid_argument);
}

TEST(FaultSpec, DiagnosticsAreOneLineAndNameTheVariable) {
  const char* bad[] = {"throttle=abc", "spike=0.5",    "bananas",     "drop=2.0",
                       "burst=0.1x2",  "spike=-0.1x2", "throttle=0.5@1~1",
                       "crash=-1@5",   "hang=1@2",     "flaky=2"};
  for (const char* spec : bad) {
    try {
      parse_fault_spec(spec);
      ADD_FAILURE() << "'" << spec << "' should not parse";
    } catch (const std::invalid_argument& e) {
      const std::string msg = e.what();
      EXPECT_EQ(msg.find('\n'), std::string::npos) << spec << ": " << msg;
      EXPECT_EQ(msg.rfind("NETCUT_FAULTS:", 0), 0u) << spec << ": " << msg;
    }
  }
}

// Property: any token soup either parses or throws std::invalid_argument —
// never crashes, never throws anything else. The generator samples from the
// grammar's own alphabet (keys, separators, digits) so a large fraction of
// inputs are near-misses of valid clauses rather than trivially rejected
// noise.
TEST(FaultSpec, FuzzedTokenSoupNeverCrashes) {
  const char* tokens[] = {"throttle", "spike", "burst",  "drop", "seed", "off", "=",
                          ",",        "@",     "~",      "x",    "0",    "1",   "2.5",
                          "0.02",     "-1",    "1e300",  "nan",  "inf",  ".",   "e",
                          "0x8",      "@2~",   "=0.1x6", "",     "crash", "hang",
                          "flaky",    "=2@5",  "x0.3"};
  constexpr int kCases = 2000;
  util::Rng rng(20260806);
  int parsed = 0, rejected = 0;
  for (int i = 0; i < kCases; ++i) {
    std::string spec;
    const int pieces = rng.uniform_int(0, 12);
    for (int p = 0; p < pieces; ++p)
      spec += tokens[rng.uniform_int(0, static_cast<int>(std::size(tokens)) - 1)];
    try {
      const FaultConfig c = parse_fault_spec(spec);
      // Whatever parsed must survive a format -> parse round-trip.
      EXPECT_EQ(parse_fault_spec(format_fault_spec(c)), c) << "spec: " << spec;
      ++parsed;
    } catch (const std::invalid_argument&) {
      ++rejected;  // the only acceptable failure mode
    }
  }
  // The token alphabet must actually exercise both outcomes.
  EXPECT_GT(parsed, kCases / 20);
  EXPECT_GT(rejected, kCases / 20);
}

// Property: every valid spec round-trips — parse -> format -> parse yields
// an identical config. Randomized over the full grammar.
TEST(FaultSpec, ValidSpecsRoundTripThroughFormat) {
  util::Rng rng(424242);
  for (int i = 0; i < 500; ++i) {
    std::string spec;
    auto clause = [&](const std::string& text) {
      if (!spec.empty()) spec += ',';
      spec += text;
    };
    if (rng.chance(0.5))
      clause("throttle=" + std::to_string(rng.uniform(1.0, 4.0)) + "@" +
             std::to_string(rng.uniform_int(0, 500)) + "~" +
             std::to_string(rng.uniform(1.0, 600.0)));
    if (rng.chance(0.5))
      clause("spike=" + std::to_string(rng.uniform(0.0, 1.0)) + "x" +
             std::to_string(rng.uniform(1.0, 10.0)));
    if (rng.chance(0.5))
      clause("burst=" + std::to_string(rng.uniform(0.0, 1.0)) + "x" +
             std::to_string(rng.uniform_int(1, 32)) + "x" +
             std::to_string(rng.uniform(1.0, 8.0)));
    if (rng.chance(0.5)) clause("drop=" + std::to_string(rng.uniform(0.0, 1.0)));
    if (rng.chance(0.5))
      clause("crash=" + std::to_string(rng.uniform_int(0, 15)) + "@" +
             std::to_string(rng.uniform_int(0, 5000)));
    if (rng.chance(0.5))
      clause("hang=" + std::to_string(rng.uniform_int(0, 15)) + "@" +
             std::to_string(rng.uniform_int(0, 5000)) + "~" +
             std::to_string(rng.uniform(1.0, 200.0)));
    if (rng.chance(0.5))
      clause("flaky=" + std::to_string(rng.uniform_int(0, 15)) + "x" +
             std::to_string(rng.uniform(0.0, 1.0)));
    if (rng.chance(0.5)) clause("seed=" + std::to_string(rng.uniform_int(0, 1 << 30)));

    const FaultConfig once = parse_fault_spec(spec);
    const std::string canonical = format_fault_spec(once);
    const FaultConfig twice = parse_fault_spec(canonical);
    EXPECT_EQ(once, twice) << "spec: '" << spec << "' canonical: '" << canonical << "'";
    // format is a fixed point: canonical specs format back to themselves.
    EXPECT_EQ(format_fault_spec(twice), canonical);
  }
  EXPECT_EQ(format_fault_spec(parse_fault_spec("")), "off");
  EXPECT_EQ(format_fault_spec(parse_fault_spec("off")), "off");
}

TEST(FaultStream, DeterministicPerLabelAndDecorrelatedAcrossLabels) {
  const FaultModel model(parse_fault_spec("spike=0.2x4,drop=0.1,seed=11"));
  FaultStream a = model.stream("measure/0");
  FaultStream b = model.stream("measure/0");
  FaultStream c = model.stream("measure/1");
  int diffs = 0;
  for (int i = 0; i < 200; ++i) {
    const RunFault fa = a.next(i), fb = b.next(i), fc = c.next(i);
    EXPECT_DOUBLE_EQ(fa.multiplier, fb.multiplier);
    EXPECT_EQ(fa.failed, fb.failed);
    if (fa.failed != fc.failed || fa.multiplier != fc.multiplier) ++diffs;
  }
  EXPECT_GT(diffs, 0);  // different labels draw different schedules
}

TEST(FaultStream, ThrottleDecaysBackToUnity) {
  FaultConfig c;
  c.enabled = true;
  c.throttle_mult = 2.0;
  c.throttle_start = 10;
  c.throttle_decay = 5.0;
  FaultStream s(c, 99);
  EXPECT_DOUBLE_EQ(s.next(0).multiplier, 1.0);   // before the event
  EXPECT_DOUBLE_EQ(s.next(10).multiplier, 2.0);  // at onset
  const double late = s.next(60).multiplier;     // ten e-foldings later
  EXPECT_NEAR(late, 1.0, 1e-4);
}

TEST(Measure, CleanPathBitIdenticalToExplicitlyDisabled) {
  if (env_faults_active()) GTEST_SKIP() << "NETCUT_FAULTS active; clean path untestable";
  DeviceModel dev;
  const Graph g = conv_bn_relu_chain(2);
  MeasureConfig plain;  // faults=nullptr -> global (disabled: env unset)
  MeasureConfig pinned;
  pinned.faults = &FaultModel::disabled();
  LatencyMeasurer a(dev, plain), b(dev, pinned);
  const Measurement ma = a.measure_network(g, Precision::kInt8, true);
  const Measurement mb = b.measure_network(g, Precision::kInt8, true);
  EXPECT_DOUBLE_EQ(ma.mean_ms, mb.mean_ms);
  EXPECT_DOUBLE_EQ(ma.stdev_ms, mb.stdev_ms);
  EXPECT_EQ(ma.runs, mb.runs);
  EXPECT_EQ(ma.outliers_rejected, 0);
  EXPECT_DOUBLE_EQ(ma.confidence, 1.0);
}

TEST(Measure, TrimmedMeanSurvivesSpikes) {
  DeviceModel dev;
  const Graph g = conv_bn_relu_chain(2);
  const double truth = dev.network_latency_ms(g, Precision::kInt8, true);

  MeasureConfig clean_cfg;
  clean_cfg.faults = &FaultModel::disabled();
  LatencyMeasurer clean(dev, clean_cfg);
  const double clean_err =
      std::abs(clean.measure_network(g, Precision::kInt8, true).mean_ms - truth);

  const FaultModel spiky(parse_fault_spec("spike=0.05x8,seed=3"));
  MeasureConfig faulty_cfg;
  faulty_cfg.faults = &spiky;
  LatencyMeasurer faulty(dev, faulty_cfg);
  const Measurement m = faulty.measure_network(g, Precision::kInt8, true);

  // Spikes are rejected, not averaged in: the trimmed mean stays within
  // twice the fault-free protocol error (floored at 1% of truth).
  EXPECT_LE(std::abs(m.mean_ms - truth), std::max(2.0 * clean_err, 0.01 * truth));
  EXPECT_GT(m.outliers_rejected, 0);
  EXPECT_LT(m.confidence, 1.0);
  EXPECT_GT(m.confidence, 0.85);
}

TEST(Measure, LateThermalThrottleIsTrimmed) {
  DeviceModel dev;
  const Graph g = conv_bn_relu_chain(2);
  const double truth = dev.network_latency_ms(g, Precision::kInt8, true);
  // Throttle hits after run 900: the last ~100 timed runs ramp to 3x.
  const FaultModel hot(parse_fault_spec("throttle=3.0@900~30,seed=5"));
  MeasureConfig mc;
  mc.faults = &hot;
  LatencyMeasurer meas(dev, mc);
  const Measurement m = meas.measure_network(g, Precision::kInt8, true);
  EXPECT_GT(m.outliers_rejected, 10);
  EXPECT_NEAR(m.mean_ms, truth, truth * 0.03);
}

TEST(Measure, DroppedRunsAreRetriedWithAccounting) {
  DeviceModel dev;
  const Graph g = conv_bn_relu_chain(1);
  const FaultModel droppy(parse_fault_spec("drop=0.3,seed=21"));
  MeasureConfig mc;
  mc.faults = &droppy;
  LatencyMeasurer meas(dev, mc);
  const Measurement m = meas.measure_network(g, Precision::kInt8, true);
  EXPECT_GT(m.retries, 0);
  EXPECT_LE(m.runs, 800);
  EXPECT_GT(m.confidence, 0.9);  // retries recover nearly every run
  EXPECT_GT(m.mean_ms, 0.0);
}

TEST(Measure, AllRunsFailingThrows) {
  DeviceModel dev;
  const Graph g = conv_bn_relu_chain(1);
  const FaultModel dead(parse_fault_spec("drop=1.0,seed=1"));
  MeasureConfig mc;
  mc.faults = &dead;
  mc.max_retries = 1;
  LatencyMeasurer meas(dev, mc);
  EXPECT_THROW(meas.measure_network(g, Precision::kInt8, true), std::runtime_error);
}

TEST(Profiler, ConfidenceDropsUnderDrops) {
  DeviceModel dev;
  const Graph g = conv_bn_relu_chain(2);

  MeasureConfig clean_mc;
  clean_mc.faults = &FaultModel::disabled();
  LatencyMeasurer clean_meas(dev, clean_mc);
  ProfilerConfig clean_pc;
  clean_pc.faults = &FaultModel::disabled();
  LayerProfiler clean_prof(dev, clean_meas, clean_pc);
  const LatencyTable clean_t = clean_prof.profile(g, "chain", Precision::kInt8, true);
  for (const ProfiledLayer& l : clean_t.layers) EXPECT_DOUBLE_EQ(l.confidence, 1.0);

  const FaultModel droppy(parse_fault_spec("drop=0.5,seed=9"));
  MeasureConfig mc;
  mc.faults = &FaultModel::disabled();  // end-to-end reference stays clean
  LatencyMeasurer meas(dev, mc);
  ProfilerConfig pc;
  pc.faults = &droppy;
  pc.max_retries = 0;  // no retry budget: drops translate into confidence
  LayerProfiler prof(dev, meas, pc);
  const LatencyTable t = prof.profile(g, "chain", Precision::kInt8, true);
  int degraded = 0;
  for (const ProfiledLayer& l : t.layers)
    if (!l.fused_away && l.confidence < 1.0) ++degraded;
  EXPECT_GT(degraded, 0);
}

TEST(ProfilerEstimator, RepairsLowConfidenceRowsWithWarning) {
  const zoo::NetId base = zoo::NetId::kMobileNetV1_025;

  core::LabConfig clean_cfg;
  clean_cfg.measure.faults = &FaultModel::disabled();
  clean_cfg.profiler.faults = &FaultModel::disabled();
  core::LatencyLab clean_lab(clean_cfg);
  core::ProfilerEstimator clean_est(clean_lab);

  // Heavy drops with no retry budget force many rows below the confidence
  // floor; the estimator must interpolate them instead of trusting zeros.
  const FaultModel droppy(parse_fault_spec("drop=0.65,seed=13"));
  core::LabConfig faulty_cfg;
  faulty_cfg.measure.faults = &FaultModel::disabled();
  faulty_cfg.profiler.faults = &droppy;
  faulty_cfg.profiler.max_retries = 0;
  core::LatencyLab faulty_lab(faulty_cfg);
  core::ProfilerEstimator faulty_est(faulty_lab);

  const auto& cuts = clean_lab.blockwise(base);
  const int cut = cuts[cuts.size() / 2];
  const double clean_ms = clean_est.estimate_ms(base, cut);

  testing::internal::CaptureStderr();
  const double faulty_ms = faulty_est.estimate_ms(base, cut);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("low confidence"), std::string::npos);

  EXPECT_GT(faulty_ms, 0.0);
  EXPECT_GT(faulty_ms, clean_ms * 0.5);
  EXPECT_LT(faulty_ms, clean_ms * 2.0);

  // The warning fires once per base, not once per estimate.
  testing::internal::CaptureStderr();
  faulty_est.estimate_ms(base, cuts[cuts.size() / 3]);
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

}  // namespace
}  // namespace netcut::hw
