// Minimal subprocess helper for exit-code tests: run a shell command line,
// capture combined stdout+stderr, and decode the child's exit status.
//
// Built on popen(3) so it needs no extra dependencies; the command runs
// through /bin/sh, which lets callers prefix environment assignments
// ("NETCUT_FAULTS=off ./netcut_cli ...") without touching this process's
// environment.
#pragma once

#include <array>
#include <cstdio>
#include <stdexcept>
#include <string>

#include <sys/wait.h>

namespace netcut::testing {

struct SubprocessResult {
  int exit_code = -1;    // WEXITSTATUS when the child exited normally
  bool signalled = false;  // true when the child died on a signal
  std::string output;    // combined stdout + stderr
};

inline SubprocessResult run_command(const std::string& command) {
  const std::string wrapped = command + " 2>&1";
  FILE* pipe = ::popen(wrapped.c_str(), "r");
  if (pipe == nullptr) throw std::runtime_error("popen failed for: " + command);

  SubprocessResult result;
  std::array<char, 4096> chunk{};
  while (std::fgets(chunk.data(), static_cast<int>(chunk.size()), pipe) != nullptr)
    result.output += chunk.data();

  const int status = ::pclose(pipe);
  if (status == -1) throw std::runtime_error("pclose failed for: " + command);
  if (WIFEXITED(status)) {
    result.exit_code = WEXITSTATUS(status);
  } else {
    result.signalled = true;
  }
  return result;
}

}  // namespace netcut::testing
