// Parameterized property sweeps: each suite pins an invariant across a grid
// of configurations (TEST_P / INSTANTIATE_TEST_SUITE_P).
#include <gtest/gtest.h>

#include <cmath>

#include "hw/device.hpp"
#include "ml/svr.hpp"
#include "nn/conv.hpp"
#include "nn/gradcheck.hpp"
#include "nn/init.hpp"
#include "nn/network.hpp"
#include "nn/pooling.hpp"
#include "quant/quantize.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "zoo/zoo.hpp"

namespace netcut {
namespace {

using nn::Graph;
using tensor::Shape;
using tensor::Tensor;

// ---------------------------------------------------------------------------
// Convolution forward/backward consistency across hyperparameter grid
// ---------------------------------------------------------------------------

struct ConvCase {
  int in_c, out_c, kh, kw, stride, size;
};

class ConvSweep : public ::testing::TestWithParam<ConvCase> {};

double sum_loss(const Tensor& y) {
  double s = 0.0;
  for (std::int64_t i = 0; i < y.numel(); ++i) s += 0.5 * y[i] * y[i];
  return s;
}

Tensor sum_loss_grad(const Tensor& y) { return y; }

TEST_P(ConvSweep, GradientsMatchFiniteDifferences) {
  const ConvCase c = GetParam();
  util::Rng rng(101);
  Graph g;
  const int in = g.add_input(Shape::chw(c.in_c, c.size, c.size));
  auto conv = std::make_unique<nn::Conv2D>(c.in_c, c.out_c, c.kh, c.kw, c.stride,
                                           (c.kh - 1) / 2, (c.kw - 1) / 2, true);
  for (auto* p : conv->params()) *p = Tensor::randn(p->shape(), rng, 0.4f);
  g.add(std::move(conv), {in}, "conv");
  nn::Network net(std::move(g));

  const Tensor x = Tensor::randn(Shape::chw(c.in_c, c.size, c.size), rng, 0.7f);
  const auto input_r = nn::check_input_gradient(net, x, sum_loss, sum_loss_grad);
  EXPECT_LT(input_r.max_rel_error, 2e-2);
  const auto param_r = nn::check_param_gradients(net, x, sum_loss, sum_loss_grad, 1e-3, 8);
  EXPECT_LT(param_r.max_rel_error, 2e-2);
}

TEST_P(ConvSweep, OutputShapeMatchesFormula) {
  const ConvCase c = GetParam();
  nn::Conv2D conv(c.in_c, c.out_c, c.kh, c.kw, c.stride, (c.kh - 1) / 2, (c.kw - 1) / 2,
                  false);
  const Shape out = conv.output_shape({Shape::chw(c.in_c, c.size, c.size)});
  EXPECT_EQ(out[0], c.out_c);
  EXPECT_EQ(out[1], (c.size + 2 * ((c.kh - 1) / 2) - c.kh) / c.stride + 1);
  EXPECT_EQ(out[2], (c.size + 2 * ((c.kw - 1) / 2) - c.kw) / c.stride + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConvSweep,
    ::testing::Values(ConvCase{1, 1, 1, 1, 1, 5}, ConvCase{2, 3, 3, 3, 1, 6},
                      ConvCase{3, 2, 3, 3, 2, 7}, ConvCase{2, 2, 5, 5, 1, 8},
                      ConvCase{2, 4, 1, 7, 1, 9}, ConvCase{4, 2, 7, 1, 1, 9},
                      ConvCase{3, 3, 3, 3, 2, 9}),
    [](const ::testing::TestParamInfo<ConvCase>& info) {
      const ConvCase& c = info.param;
      return "i" + std::to_string(c.in_c) + "o" + std::to_string(c.out_c) + "k" +
             std::to_string(c.kh) + "x" + std::to_string(c.kw) + "s" +
             std::to_string(c.stride) + "n" + std::to_string(c.size);
    });

// ---------------------------------------------------------------------------
// Pooling invariants across modes / kernels / strides
// ---------------------------------------------------------------------------

struct PoolCase {
  nn::Pool2D::Mode mode;
  int kernel, stride, size;
};

class PoolSweep : public ::testing::TestWithParam<PoolCase> {};

TEST_P(PoolSweep, OutputBoundedByInputRange) {
  const PoolCase c = GetParam();
  util::Rng rng(11);
  const Tensor x = Tensor::randn(Shape::chw(3, c.size, c.size), rng);
  nn::Pool2D pool(c.mode, c.kernel, c.stride);
  const Tensor y = pool.forward({&x}, false);
  EXPECT_LE(y.max(), x.max() + 1e-6f);
  EXPECT_GE(y.min(), x.min() - 1e-6f);
}

TEST_P(PoolSweep, ConstantInputIsPreserved) {
  const PoolCase c = GetParam();
  Tensor x(Shape::chw(2, c.size, c.size), 3.25f);
  nn::Pool2D pool(c.mode, c.kernel, c.stride);
  const Tensor y = pool.forward({&x}, false);
  for (std::int64_t i = 0; i < y.numel(); ++i) EXPECT_FLOAT_EQ(y[i], 3.25f);
}

TEST_P(PoolSweep, BackwardConservesGradientMassForAvg) {
  const PoolCase c = GetParam();
  if (c.mode != nn::Pool2D::Mode::kAvg) GTEST_SKIP();
  util::Rng rng(12);
  const Tensor x = Tensor::randn(Shape::chw(1, c.size, c.size), rng);
  nn::Pool2D pool(c.mode, c.kernel, c.stride, 0);  // no padding: windows tile
  const Tensor y = pool.forward({&x}, true);
  Tensor gy(y.shape(), 1.0f);
  const auto gx = pool.backward(gy);
  // Sum of distributed gradients equals the number of output cells.
  EXPECT_NEAR(gx[0].sum(), static_cast<float>(y.numel()), 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PoolSweep,
    ::testing::Values(PoolCase{nn::Pool2D::Mode::kMax, 2, 2, 8},
                      PoolCase{nn::Pool2D::Mode::kAvg, 2, 2, 8},
                      PoolCase{nn::Pool2D::Mode::kMax, 3, 2, 9},
                      PoolCase{nn::Pool2D::Mode::kAvg, 3, 1, 7},
                      PoolCase{nn::Pool2D::Mode::kMax, 3, 1, 5},
                      PoolCase{nn::Pool2D::Mode::kAvg, 2, 1, 6}),
    [](const ::testing::TestParamInfo<PoolCase>& info) {
      const PoolCase& c = info.param;
      return std::string(c.mode == nn::Pool2D::Mode::kMax ? "max" : "avg") + "k" +
             std::to_string(c.kernel) + "s" + std::to_string(c.stride) + "n" +
             std::to_string(c.size);
    });

// ---------------------------------------------------------------------------
// Quantization round-trip error bound across ranges
// ---------------------------------------------------------------------------

struct QuantCase {
  float lo, hi;
};

class QuantSweep : public ::testing::TestWithParam<QuantCase> {};

TEST_P(QuantSweep, RoundTripWithinHalfStepInsideRange) {
  const QuantCase c = GetParam();
  util::Rng rng(13);
  const Tensor x = Tensor::uniform(Shape::vec(512), rng, c.lo, c.hi);
  const quant::QuantParams p = quant::QuantParams::from_range(c.lo, c.hi);
  EXPECT_LE(quant::quantization_error(x, p), p.scale * 0.5f + 1e-6f);
}

TEST_P(QuantSweep, ZeroIsExact) {
  const QuantCase c = GetParam();
  const quant::QuantParams p = quant::QuantParams::from_range(c.lo, c.hi);
  EXPECT_FLOAT_EQ(quant::dequantize_value(quant::quantize_value(0.0f, p), p), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(Grid, QuantSweep,
                         ::testing::Values(QuantCase{-1.0f, 1.0f}, QuantCase{0.0f, 6.0f},
                                           QuantCase{-0.1f, 0.1f}, QuantCase{-8.0f, 2.0f},
                                           QuantCase{0.0f, 100.0f}),
                         [](const ::testing::TestParamInfo<QuantCase>& info) {
                           return "case" + std::to_string(info.index);
                         });

// ---------------------------------------------------------------------------
// Device-model invariants across the whole zoo
// ---------------------------------------------------------------------------

class ZooDeviceSweep : public ::testing::TestWithParam<zoo::NetId> {};

TEST_P(ZooDeviceSweep, FusionAndInt8AlwaysHelp) {
  const zoo::NetId id = GetParam();
  const Graph g = zoo::build_trunk(id, zoo::native_resolution(id));
  hw::DeviceModel dev;
  const double fp32_unfused = dev.network_latency_ms(g, hw::Precision::kFp32, false);
  const double fp32_fused = dev.network_latency_ms(g, hw::Precision::kFp32, true);
  const double int8_fused = dev.network_latency_ms(g, hw::Precision::kInt8, true);
  EXPECT_LT(fp32_fused, fp32_unfused);
  EXPECT_LT(int8_fused, fp32_fused);
  EXPECT_GT(int8_fused, 0.05);  // nothing is free
}

TEST_P(ZooDeviceSweep, BlockwiseTrimMonotonicallyReducesTrueLatency) {
  const zoo::NetId id = GetParam();
  const Graph g = zoo::build_trunk(id, zoo::native_resolution(id));
  hw::DeviceModel dev;
  double prev = 0.0;
  for (const nn::BlockInfo& b : g.blocks()) {
    const double t = dev.network_latency_ms(g.prefix(b.last_node), hw::Precision::kInt8, true);
    EXPECT_GT(t, prev) << "block " << b.name;
    prev = t;
  }
}

INSTANTIATE_TEST_SUITE_P(AllNets, ZooDeviceSweep, ::testing::ValuesIn(zoo::all_nets()),
                         [](const ::testing::TestParamInfo<zoo::NetId>& info) {
                           std::string n = zoo::net_name(info.param);
                           for (char& ch : n)
                             if (ch == '-' || ch == '.') ch = '_';
                           return n;
                         });

// ---------------------------------------------------------------------------
// SVR tube-width sweep: in-sample residuals always within epsilon
// ---------------------------------------------------------------------------

class SvrEpsilonSweep : public ::testing::TestWithParam<double> {};

TEST_P(SvrEpsilonSweep, ResidualsRespectTube) {
  const double eps = GetParam();
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 50; ++i) {
    const double t = 2.0 * i / 50.0;
    x.push_back({t});
    y.push_back(std::cos(2.0 * t) + 0.5 * t);
  }
  ml::SvrConfig cfg;
  cfg.gamma = 2.0;
  cfg.c = 1000.0;
  cfg.epsilon = eps;
  ml::Svr svr(cfg);
  svr.fit(x, y);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_LE(std::abs(svr.predict(x[i]) - y[i]), eps + 1e-3);
  // Wider tubes never need more support vectors than narrower ones would.
  EXPECT_GT(svr.support_vector_count(), 0);
  EXPECT_LE(svr.support_vector_count(), 50);
}

INSTANTIATE_TEST_SUITE_P(Tubes, SvrEpsilonSweep, ::testing::Values(0.005, 0.02, 0.1, 0.3),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "eps" + std::to_string(info.index);
                         });

}  // namespace
}  // namespace netcut
