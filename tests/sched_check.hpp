// Exploration driver for the deterministic model checker
// (src/util/schedule.hpp). Layers three campaign shapes over
// Scheduler::run:
//
//  * bounded-exhaustive: enumerate EVERY schedule-tree prefix up to a small
//    depth (odometer over the branching factors recorded by each run, with
//    a deterministic round-robin tail) — the loom/CHESS trick that finds
//    shallow protocol races regardless of probability;
//  * seeded-random: N random schedules, each a pure function of
//    derive_seed(campaign seed, schedule index) — a whole campaign is
//    bit-reproducible from one integer;
//  * replay: re-run one recorded pick list verbatim, for regression-pinning
//    a schedule that once failed.
//
// Protocols are built fresh per schedule by a factory so no state leaks
// between interleavings; the factory also returns the invariant check to
// run at quiescence. Any failure — deadlock, livelock, a body exception,
// or a failed check — surfaces as a ScheduleError whose what() carries the
// replay pick list and the full grant trace.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "util/rng.hpp"
#include "util/schedule.hpp"

namespace netcut::testing {

/// One fresh instance of the protocol under test. The closures share
/// ownership of the protocol's state (capture a shared_ptr).
struct Protocol {
  std::vector<std::function<void()>> bodies;
  /// Invariant check run after the schedule completes (threads joined);
  /// throw (e.g. via GTest's ASSERT-in-helper or a plain std::runtime_error)
  /// to fail the schedule. May be empty.
  std::function<void()> check;
};

using ProtocolFactory = std::function<Protocol()>;

struct ExploreConfig {
  std::uint64_t seed = 20260808;
  /// Seeded random schedules after the exhaustive pass.
  std::size_t random_schedules = 200;
  /// Depth of the bounded-exhaustive prefix pass (0 disables it): every
  /// distinct sequence of the first `exhaustive_depth` scheduling
  /// decisions is enumerated, with a round-robin tail.
  std::size_t exhaustive_depth = 0;
  std::size_t max_steps = 200000;
};

struct ExploreStats {
  std::size_t schedules = 0;   // total schedules executed
  std::size_t exhaustive = 0;  // of which from the prefix enumeration
  std::size_t max_points = 0;  // longest schedule observed (decision count)
};

/// Run one schedule of a fresh protocol instance under `src`; a failing
/// invariant check is rethrown as a ScheduleError carrying the replay
/// picks of the schedule that produced the state.
inline util::sched::RunResult run_one_schedule(const ProtocolFactory& factory,
                                               util::sched::ScheduleSource& src,
                                               std::size_t max_steps) {
  Protocol p = factory();
  util::sched::Scheduler::Options opts;
  opts.max_steps = max_steps;
  util::sched::RunResult r =
      util::sched::Scheduler::run(std::move(p.bodies), src, opts);
  if (p.check) {
    try {
      p.check();
    } catch (const util::sched::ScheduleError&) {
      throw;
    } catch (const std::exception& e) {
      throw util::sched::ScheduleError(
          std::string("invariant violated at quiescence: ") + e.what(), r.picks,
          r.trace, /*deadlock=*/false);
    }
  }
  return r;
}

/// Replay one recorded pick list verbatim (round-robin past its end).
inline util::sched::RunResult replay(const ProtocolFactory& factory,
                                     const std::vector<std::size_t>& picks,
                                     std::size_t max_steps = 200000) {
  util::sched::PickListSchedule src(picks);
  return run_one_schedule(factory, src, max_steps);
}

/// Full campaign: bounded-exhaustive prefixes, then seeded random
/// schedules. Throws the first failing schedule's ScheduleError.
inline ExploreStats explore(const ProtocolFactory& factory, const ExploreConfig& cfg) {
  ExploreStats stats;
  const auto note = [&stats](const util::sched::RunResult& r) {
    ++stats.schedules;
    if (r.picks.size() > stats.max_points) stats.max_points = r.picks.size();
  };

  if (cfg.exhaustive_depth > 0) {
    // Odometer over the schedule tree: run the current prefix (round-robin
    // tail), read back the branching factor at each decision, and advance
    // the deepest position that still has unexplored siblings. Positions
    // shallower than the incremented one keep their picks, so each
    // iteration's branching factors are valid for the prefix it extends.
    std::vector<std::size_t> prefix;
    for (;;) {
      util::sched::PickListSchedule src(prefix);
      const util::sched::RunResult r = run_one_schedule(factory, src, cfg.max_steps);
      note(r);
      ++stats.exhaustive;
      const std::size_t depth = std::min(cfg.exhaustive_depth, r.branching.size());
      prefix.assign(r.picks.begin(),
                    r.picks.begin() + static_cast<std::ptrdiff_t>(depth));
      while (!prefix.empty()) {
        const std::size_t last = prefix.size() - 1;
        if (prefix[last] + 1 < r.branching[last]) {
          ++prefix[last];
          break;
        }
        prefix.pop_back();
      }
      if (prefix.empty()) break;
    }
  }

  for (std::size_t i = 0; i < cfg.random_schedules; ++i) {
    util::sched::RandomSchedule src(
        util::derive_seed(cfg.seed, "sched/" + std::to_string(i)));
    note(run_one_schedule(factory, src, cfg.max_steps));
  }
  return stats;
}

}  // namespace netcut::testing
