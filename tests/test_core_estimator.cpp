// Latency estimators against the simulated device's ground truth. Most
// cases use the cheap MobileNet graphs; the SVR-vs-linear ablation needs
// the full heterogeneous zoo (as in the fig09 bench).
#include <gtest/gtest.h>

#include "core/estimator.hpp"
#include "util/stats.hpp"

namespace netcut::core {
namespace {

class EstimatorTest : public ::testing::Test {
 protected:
  LatencyLab lab_;
};

TEST_F(EstimatorTest, FeaturesShrinkWithCut) {
  const zoo::NetId net = zoo::NetId::kMobileNetV1_050;
  const auto cuts = lab_.blockwise(net);
  const TrnFeatures full = compute_trn_features(lab_, net, lab_.full_cut(net));
  const TrnFeatures trimmed = compute_trn_features(lab_, net, cuts[4]);
  EXPECT_LT(trimmed.gflops, full.gflops);
  EXPECT_LT(trimmed.mparams, full.mparams);
  EXPECT_LT(trimmed.layer_count, full.layer_count);
  EXPECT_LT(trimmed.filter_size_sum, full.filter_size_sum);
  EXPECT_DOUBLE_EQ(trimmed.base_latency_ms, full.base_latency_ms);
}

TEST_F(EstimatorTest, ProfilerEstimateCloseToMeasured) {
  ProfilerEstimator est(lab_);
  const zoo::NetId net = zoo::NetId::kMobileNetV1_050;
  std::vector<double> estimates, truths;
  for (int cut : lab_.blockwise(net)) {
    estimates.push_back(est.estimate_ms(net, cut));
    truths.push_back(lab_.measured_ms(net, cut));
  }
  // The paper reports ~3.5% mean relative error for this estimator.
  EXPECT_LT(util::mean_relative_error(estimates, truths), 0.15);
}

TEST_F(EstimatorTest, ProfilerFullNetworkEstimateIsEndToEnd) {
  ProfilerEstimator est(lab_);
  const zoo::NetId net = zoo::NetId::kMobileNetV1_025;
  const double est_full = est.estimate_ms(net, lab_.full_cut(net));
  const double measured = lab_.measured_ms(net, lab_.full_cut(net));
  // No layers removed -> the estimate is exactly the profiled end-to-end.
  EXPECT_NEAR(est_full, measured, measured * 0.05);
}

TEST_F(EstimatorTest, ProfilerEstimateMonotoneInCut) {
  ProfilerEstimator est(lab_);
  const zoo::NetId net = zoo::NetId::kMobileNetV2_100;
  const auto cuts = lab_.blockwise(net);
  double prev = 0.0;
  for (int cut : cuts) {
    const double e = est.estimate_ms(net, cut);
    EXPECT_GT(e, prev);
    prev = e;
  }
}

TEST_F(EstimatorTest, AnalyticalSvrBeatsLinearBaseline) {
  // Train on 20% of the TRNs, test on the rest — the paper's split
  // (Section V-B2). The architecture set must be heterogeneous: within a
  // single family latency is nearly affine in the features and a linear
  // model suffices; the RBF kernel's advantage (the paper's 23.81% vs
  // 4.28% ablation) appears across families.
  std::vector<LatencySample> samples;
  for (zoo::NetId net : zoo::all_nets()) {
    for (int cut : lab_.blockwise(net)) {
      LatencySample s;
      s.base = net;
      s.cut_node = cut;
      s.features = compute_trn_features(lab_, net, cut);
      s.measured_ms = lab_.measured_ms(net, cut);
      samples.push_back(std::move(s));
    }
  }
  std::vector<LatencySample> train, test;
  for (std::size_t i = 0; i < samples.size(); ++i)
    (i % 5 == 2 ? train : test).push_back(samples[i]);

  AnalyticalEstimator svr(lab_, /*grid_search=*/true);
  svr.fit(train);
  LinearEstimator lin(lab_);
  lin.fit(train);

  std::vector<double> svr_pred, lin_pred, truth;
  for (const LatencySample& s : test) {
    svr_pred.push_back(svr.predict(s.features));
    lin_pred.push_back(lin.predict(s.features));
    truth.push_back(s.measured_ms);
  }
  const double svr_err = util::mean_relative_error(svr_pred, truth);
  const double lin_err = util::mean_relative_error(lin_pred, truth);
  EXPECT_LT(svr_err, 0.08);
  EXPECT_LT(svr_err * 2.0, lin_err);
}

TEST_F(EstimatorTest, EstimatorNamesAreStable) {
  ProfilerEstimator p(lab_);
  AnalyticalEstimator a(lab_);
  LinearEstimator l(lab_);
  EXPECT_EQ(p.name(), "profiler");
  EXPECT_EQ(a.name(), "analytical-svr");
  EXPECT_EQ(l.name(), "linear-regression");
}

TEST_F(EstimatorTest, UnfittedAnalyticalThrows) {
  AnalyticalEstimator a(lab_);
  EXPECT_THROW(a.estimate_ms(zoo::NetId::kMobileNetV1_025, 5), std::logic_error);
  EXPECT_THROW(a.fit({}), std::invalid_argument);
}

TEST_F(EstimatorTest, LabMeasurementsMemoized) {
  const zoo::NetId net = zoo::NetId::kMobileNetV1_025;
  const int cut = lab_.blockwise(net)[5];
  const double a = lab_.measured_ms(net, cut);
  const double b = lab_.measured_ms(net, cut);
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_NEAR(a, lab_.true_ms(net, cut), a * 0.05);
}

TEST_F(EstimatorTest, LabNamesFollowPaperConvention) {
  const zoo::NetId net = zoo::NetId::kMobileNetV1_050;
  const std::string full = lab_.name(net, lab_.full_cut(net));
  EXPECT_EQ(full, "MobileNetV1-0.50/81");  // 82 nodes - input
  const auto cuts = lab_.blockwise(net);
  EXPECT_EQ(lab_.name(net, cuts[0]), "MobileNetV1-0.50/9");  // stem + first block
}

}  // namespace
}  // namespace netcut::core
