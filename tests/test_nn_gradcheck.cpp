// Finite-difference validation of every layer's backward implementation:
// each case wraps the layer in a one-node network and checks both the
// input gradient and (where present) parameter gradients.
#include <gtest/gtest.h>

#include "nn/activation.hpp"
#include "nn/combine.hpp"
#include "nn/conv.hpp"
#include "nn/dense.hpp"
#include "nn/gradcheck.hpp"
#include "nn/norm.hpp"
#include "nn/pooling.hpp"
#include "util/rng.hpp"

namespace netcut::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

// Scalar loss: sum of weighted squares keeps gradients well-scaled and
// exercises all outputs.
double loss_of(const Tensor& y) {
  double s = 0.0;
  for (std::int64_t i = 0; i < y.numel(); ++i)
    s += 0.5 * static_cast<double>(y[i]) * y[i] * (1.0 + 0.1 * static_cast<double>(i % 7));
  return s;
}

Tensor loss_grad_of(const Tensor& y) {
  Tensor g(y.shape());
  for (std::int64_t i = 0; i < y.numel(); ++i)
    g[i] = y[i] * static_cast<float>(1.0 + 0.1 * static_cast<double>(i % 7));
  return g;
}

void check_single_layer(std::unique_ptr<Layer> layer, const Shape& input_shape,
                        double tol = 2e-2) {
  Graph g;
  const int in = g.add_input(input_shape);
  g.add(std::move(layer), {in}, "probe");
  Network net(std::move(g));

  util::Rng rng(17);
  const Tensor x = Tensor::randn(input_shape, rng, 0.8f);

  const GradCheckResult input_r = check_input_gradient(net, x, loss_of, loss_grad_of);
  EXPECT_LT(input_r.max_rel_error, tol) << "input gradient";

  if (!net.params().empty()) {
    const GradCheckResult param_r = check_param_gradients(net, x, loss_of, loss_grad_of);
    EXPECT_LT(param_r.max_rel_error, tol) << "parameter gradient";
  }
}

TEST(GradCheck, Conv2D) {
  util::Rng rng(1);
  auto conv = std::make_unique<Conv2D>(2, 3, 3, 1);
  for (auto* p : conv->params()) *p = Tensor::randn(p->shape(), rng, 0.4f);
  check_single_layer(std::move(conv), Shape::chw(2, 5, 5));
}

TEST(GradCheck, Conv2DStridedRectangular) {
  util::Rng rng(2);
  auto conv = std::make_unique<Conv2D>(2, 2, 1, 3, 2, 0, 1, true);
  for (auto* p : conv->params()) *p = Tensor::randn(p->shape(), rng, 0.4f);
  check_single_layer(std::move(conv), Shape::chw(2, 6, 6));
}

TEST(GradCheck, DepthwiseConv2D) {
  util::Rng rng(3);
  auto conv = std::make_unique<DepthwiseConv2D>(3, 3, 2);
  for (auto* p : conv->params()) *p = Tensor::randn(p->shape(), rng, 0.4f);
  check_single_layer(std::move(conv), Shape::chw(3, 6, 6));
}

TEST(GradCheck, Dense) {
  util::Rng rng(4);
  auto dense = std::make_unique<Dense>(7, 4);
  for (auto* p : dense->params()) *p = Tensor::randn(p->shape(), rng, 0.5f);
  check_single_layer(std::move(dense), Shape::vec(7));
}

TEST(GradCheck, BatchNormTrainMode) {
  auto bn = std::make_unique<BatchNorm>(2);
  bn->gamma()[0] = 1.3f;
  bn->gamma()[1] = 0.7f;
  bn->beta()[0] = 0.2f;
  check_single_layer(std::move(bn), Shape::chw(2, 4, 4), 5e-2);
}

TEST(GradCheck, ReLUFamilies) {
  check_single_layer(std::make_unique<ReLU>(false), Shape::chw(2, 4, 4));
  check_single_layer(std::make_unique<ReLU>(true), Shape::chw(2, 4, 4));
}

TEST(GradCheck, Softmax) { check_single_layer(std::make_unique<Softmax>(), Shape::vec(6)); }

TEST(GradCheck, MaxAndAvgPool) {
  check_single_layer(std::make_unique<Pool2D>(Pool2D::Mode::kMax, 2, 2, 0),
                     Shape::chw(2, 6, 6));
  check_single_layer(std::make_unique<Pool2D>(Pool2D::Mode::kAvg, 3, 2, 1),
                     Shape::chw(2, 6, 6));
}

TEST(GradCheck, GlobalAvgPool) {
  check_single_layer(std::make_unique<GlobalAvgPool>(), Shape::chw(3, 4, 4));
}

TEST(GradCheck, ResidualAddGraph) {
  // input -> conv -> add(input-branch conv2) : exercises multi-consumer
  // gradient accumulation through the DAG.
  util::Rng rng(5);
  Graph g;
  const int in = g.add_input(Shape::chw(2, 5, 5));
  auto c1 = std::make_unique<Conv2D>(2, 2, 3, 1);
  auto c2 = std::make_unique<Conv2D>(2, 2, 1, 1);
  for (auto* p : c1->params()) *p = Tensor::randn(p->shape(), rng, 0.4f);
  for (auto* p : c2->params()) *p = Tensor::randn(p->shape(), rng, 0.4f);
  const int a = g.add(std::move(c1), {in}, "branch-a");
  const int b = g.add(std::move(c2), {in}, "branch-b");
  g.add(std::make_unique<Add>(2), {a, b}, "merge");
  Network net(std::move(g));

  const Tensor x = Tensor::randn(Shape::chw(2, 5, 5), rng, 0.8f);
  const GradCheckResult r = check_input_gradient(net, x, loss_of, loss_grad_of);
  EXPECT_LT(r.max_rel_error, 2e-2);
  const GradCheckResult pr = check_param_gradients(net, x, loss_of, loss_grad_of);
  EXPECT_LT(pr.max_rel_error, 2e-2);
}

TEST(GradCheck, ConcatGraph) {
  util::Rng rng(6);
  Graph g;
  const int in = g.add_input(Shape::chw(2, 4, 4));
  auto c1 = std::make_unique<Conv2D>(2, 3, 3, 1);
  for (auto* p : c1->params()) *p = Tensor::randn(p->shape(), rng, 0.4f);
  const int a = g.add(std::move(c1), {in}, "branch");
  g.add(std::make_unique<Concat>(2), {in, a}, "concat");
  Network net(std::move(g));

  const Tensor x = Tensor::randn(Shape::chw(2, 4, 4), rng, 0.8f);
  const GradCheckResult r = check_input_gradient(net, x, loss_of, loss_grad_of);
  EXPECT_LT(r.max_rel_error, 2e-2);
}

TEST(GradCheck, SmallCnnEndToEnd) {
  // conv -> bn -> relu -> pool -> gap -> dense: the transfer-head pattern.
  util::Rng rng(7);
  Graph g;
  int x = g.add_input(Shape::chw(2, 8, 8));
  auto conv = std::make_unique<Conv2D>(2, 4, 3, 1);
  for (auto* p : conv->params()) *p = Tensor::randn(p->shape(), rng, 0.3f);
  x = g.add(std::move(conv), {x}, "conv");
  x = g.add(std::make_unique<BatchNorm>(4), {x}, "bn");
  x = g.add(std::make_unique<ReLU>(false), {x}, "relu");
  x = g.add(std::make_unique<Pool2D>(Pool2D::Mode::kAvg, 2, 2, 0), {x}, "pool");
  x = g.add(std::make_unique<GlobalAvgPool>(), {x}, "gap");
  auto dense = std::make_unique<Dense>(4, 3);
  for (auto* p : dense->params()) *p = Tensor::randn(p->shape(), rng, 0.5f);
  g.add(std::move(dense), {x}, "fc");
  Network net(std::move(g));

  const Tensor input = Tensor::randn(Shape::chw(2, 8, 8), rng, 0.8f);
  const GradCheckResult r = check_param_gradients(net, input, loss_of, loss_grad_of, 1e-3, 8);
  EXPECT_LT(r.max_rel_error, 5e-2);
}

}  // namespace
}  // namespace netcut::nn
