// Cross-module integration: the full mini-pipeline (dataset -> pretrained
// trunk -> blockwise exploration -> estimators -> NetCut) at reduced scale,
// exercising the same code path as the fig benches.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/netcut.hpp"
#include "core/pareto.hpp"
#include "util/stats.hpp"

namespace netcut::core {
namespace {

data::HandsConfig mini_data() {
  data::HandsConfig c;
  c.resolution = 24;
  c.train_count = 80;
  c.test_count = 40;
  return c;
}

EvalConfig mini_eval(const std::string& cache) {
  EvalConfig c;
  c.resolution = 24;
  c.epochs = 8;
  c.cache_path = cache;
  c.pretrained.source_images = 80;  // light pretraining keeps the suite fast
  c.pretrained.epochs = 6;
  return c;
}

TEST(Integration, BlockwiseExplorationProducesConsistentCandidates) {
  LatencyLab lab;
  const data::HandsDataset dataset(mini_data());
  TrnEvaluator evaluator(dataset, mini_eval(""));
  BlockwiseExplorer explorer(lab, evaluator);

  const auto candidates = explorer.explore(zoo::NetId::kMobileNetV1_050, true);
  ASSERT_EQ(candidates.size(), 13u);  // full + 12 TRNs
  EXPECT_EQ(candidates[0].blocks_removed, 0);
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    EXPECT_EQ(candidates[i].blocks_removed, static_cast<int>(i));
    // More blocks removed -> strictly lower latency and fewer layers.
    EXPECT_LT(candidates[i].latency_ms, candidates[i - 1].latency_ms);
    EXPECT_LT(candidates[i].layers_remaining, candidates[i - 1].layers_remaining);
    EXPECT_GT(candidates[i].accuracy, 0.3);
    EXPECT_GT(candidates[i].train_hours, 0.0);
  }
}

TEST(Integration, AccuraciesAreReproducibleAndBounded) {
  // Directional accuracy-vs-depth claims are asserted at full experiment
  // scale by the fig benches; at unit-test scale we pin determinism and
  // sane bounds instead.
  LatencyLab lab;
  const data::HandsDataset dataset(mini_data());
  TrnEvaluator a(dataset, mini_eval(""));
  TrnEvaluator b(dataset, mini_eval(""));
  const zoo::NetId net = zoo::NetId::kMobileNetV1_025;
  const auto cuts = a.cutpoints(net);
  for (std::size_t i = 0; i < cuts.size(); i += cuts.size() / 3) {
    const AccuracyResult ra = a.accuracy(net, cuts[i]);
    const AccuracyResult rb = b.accuracy(net, cuts[i]);
    EXPECT_DOUBLE_EQ(ra.angular_similarity, rb.angular_similarity);
    EXPECT_GT(ra.angular_similarity, 0.25);
    EXPECT_LE(ra.angular_similarity, 1.0);
  }
}

TEST(Integration, AccuracyCachePersistsAcrossEvaluators) {
  const std::string cache = "test_integration_cache.csv";
  std::remove(cache.c_str());
  const data::HandsDataset dataset(mini_data());
  const zoo::NetId net = zoo::NetId::kMobileNetV1_025;

  double first = 0.0;
  {
    TrnEvaluator evaluator(dataset, mini_eval(cache));
    first = evaluator.accuracy(net, evaluator.full_cut(net)).angular_similarity;
  }
  {
    TrnEvaluator evaluator(dataset, mini_eval(cache));
    const double second = evaluator.accuracy(net, evaluator.full_cut(net)).angular_similarity;
    EXPECT_DOUBLE_EQ(first, second);
  }
  std::remove(cache.c_str());
}

TEST(Integration, NetCutAgreesWithExhaustiveOracleUpToHeuristic) {
  // NetCut retrains one TRN per network; the exhaustive sweep retrains all.
  // NetCut's pick must (a) meet the deadline and (b) be within a generous
  // margin of the sweep's best deadline-meeting candidate. (At unit-test
  // scale the pretraining is deliberately weak, so the closest-to-deadline
  // heuristic's premise only holds loosely; the tight comparison happens at
  // experiment scale in the fig10 bench.)
  LatencyLab lab;
  const data::HandsDataset dataset(mini_data());
  TrnEvaluator evaluator(dataset, mini_eval(""));
  const std::vector<zoo::NetId> nets{zoo::NetId::kMobileNetV1_025,
                                     zoo::NetId::kMobileNetV1_050};
  const double deadline = 0.25;

  BlockwiseExplorer explorer(lab, evaluator);
  std::vector<TradeoffPoint> sweep;
  for (zoo::NetId net : nets)
    for (const Candidate& c : explorer.explore(net, true))
      sweep.push_back({c.trn_name, c.latency_ms, c.accuracy});
  const int best = best_under_deadline(sweep, deadline);
  ASSERT_GE(best, 0);

  ProfilerEstimator est(lab);
  NetCut nc(lab, evaluator);
  NetCutConfig cfg;
  cfg.networks = nets;
  cfg.deadline_ms = deadline;
  const NetCutResult r = nc.run(est, cfg);
  ASSERT_GE(r.selected, 0);
  EXPECT_LE(r.winner().trn.latency_ms, deadline * 1.1);
  EXPECT_GE(r.winner().trn.accuracy,
            sweep[static_cast<std::size_t>(best)].accuracy - 0.25);
}

TEST(Integration, IterativeSweepRefinesBlockwise) {
  LatencyLab lab;
  const data::HandsDataset dataset(mini_data());
  TrnEvaluator evaluator(dataset, mini_eval(""));
  BlockwiseExplorer explorer(lab, evaluator);

  const auto iterative = explorer.explore_iterative(zoo::NetId::kMobileNetV1_025, true);
  const auto blockwise = explorer.explore(zoo::NetId::kMobileNetV1_025, true);
  EXPECT_GT(iterative.size(), blockwise.size());
  // Latencies decrease along the iterative sweep (up to measurement noise:
  // adjacent dominators can differ by less than the protocol's jitter).
  for (std::size_t i = 1; i < iterative.size(); ++i)
    EXPECT_LE(iterative[i].latency_ms, iterative[i - 1].latency_ms * 1.01 + 1e-6);
}

}  // namespace
}  // namespace netcut::core
