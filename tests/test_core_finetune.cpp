// End-to-end two-stage fine-tuning (the paper's Section III-B3 protocol).
#include <gtest/gtest.h>

#include "core/finetune.hpp"
#include "core/pretrained_cache.hpp"

namespace netcut::core {
namespace {

data::HandsConfig tiny_data() {
  data::HandsConfig c;
  c.resolution = 24;
  c.train_count = 80;
  c.test_count = 40;
  return c;
}

data::PretrainedConfig tiny_pretrain() {
  data::PretrainedConfig c;
  c.source_images = 100;
  c.epochs = 6;
  return c;
}

TEST(Finetune, TwoStageProtocolProducesUsableClassifier) {
  const data::HandsDataset dataset(tiny_data());
  const nn::Graph trunk =
      pretrained_trunk(zoo::NetId::kMobileNetV1_025, 24, tiny_pretrain(), "netcut_weights");
  const auto cuts = blockwise_cutpoints(trunk);

  FinetuneConfig cfg;
  cfg.head_epochs = 6;
  cfg.full_epochs = 2;
  const FinetuneResult r =
      finetune_trn(trunk, cuts[static_cast<std::size_t>(cuts.size() / 2)], dataset, cfg);

  EXPECT_GT(r.after_head.angular_similarity, 0.35);
  EXPECT_LE(r.after_head.angular_similarity, 1.0);
  EXPECT_GT(r.stage1_final_loss, 0.0);
  // Unfreezing all layers at the low rate must not wreck the classifier;
  // at this scale it typically nudges accuracy up.
  EXPECT_GT(r.after_full.angular_similarity, r.after_head.angular_similarity - 0.08);
  EXPECT_GT(r.stage2_final_loss, 0.0);
  EXPECT_LT(r.stage2_final_loss, r.stage1_final_loss + 0.5);
}

TEST(Finetune, DeterministicForSeed) {
  const data::HandsDataset dataset(tiny_data());
  const nn::Graph trunk =
      pretrained_trunk(zoo::NetId::kMobileNetV1_025, 24, tiny_pretrain(), "netcut_weights");
  const auto cuts = blockwise_cutpoints(trunk);

  FinetuneConfig cfg;
  cfg.head_epochs = 2;
  cfg.full_epochs = 1;
  const FinetuneResult a = finetune_trn(trunk, cuts[2], dataset, cfg);
  const FinetuneResult b = finetune_trn(trunk, cuts[2], dataset, cfg);
  EXPECT_DOUBLE_EQ(a.after_full.angular_similarity, b.after_full.angular_similarity);
  EXPECT_DOUBLE_EQ(a.stage2_final_loss, b.stage2_final_loss);
}

}  // namespace
}  // namespace netcut::core
