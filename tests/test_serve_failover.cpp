// Fleet failover (labels: serve + sched): the replica lifecycle state
// machine, worker-scoped fault injection (crash=/hang=/flaky=), shard
// drain + re-queue at replica death, and capacity-aware degraded serving.
//
// Contracts pinned here:
//  * the worker-clause grammar round-trips and the injector is a pure
//    function of (config, seed) — failures are bit-reproducible;
//  * conservation (submitted == shed + served + backlog) survives drain
//    racing steal racing push, proven over >= 200 seeded schedules plus a
//    bounded-exhaustive prefix under the deterministic model checker;
//  * heartbeat detection never false-positives under a thermal throttle —
//    a slow replica still completes batches, only a silent one is
//    suspected;
//  * the Recovering warm-up is real hysteresis: across repeated
//    crash/recover cycles a replica re-enters admission only after a full
//    clean-batch ramp, never mid-flap;
//  * same-seed fleet runs with a failover mid-run are digest-identical;
//  * the acceptance scenario — 1 of 4 replicas crashing at 80% load —
//    produces zero silent outcomes: every request is served (miss bit
//    visible) or explicitly shed, and the orphaned shard's work is
//    re-queued and served by the survivors.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "hw/device.hpp"
#include "hw/faults.hpp"
#include "serve/fleet.hpp"
#include "serve/health.hpp"
#include "serve/shard.hpp"
#include "serve_sim.hpp"
#include "sched_check.hpp"
#include "util/rng.hpp"
#include "util/schedule.hpp"
#include "zoo/zoo.hpp"

namespace netcut {
namespace {

using serve_sim::FleetLoadConfig;
using serve_sim::FleetReport;
using testing::ExploreConfig;
using testing::ExploreStats;
using testing::Protocol;
using testing::explore;

void require(bool ok, const std::string& what) {
  if (!ok) throw std::runtime_error(what);
}

// ---------------------------------------------------------------------------
// Grammar + injector determinism.
// ---------------------------------------------------------------------------

TEST(FaultSpec, WorkerClausesParseFormatRoundTrip) {
  const hw::FaultConfig c = hw::parse_fault_spec("crash=2@120,hang=1@40~25,flaky=3x0.2,seed=99");
  EXPECT_TRUE(c.enabled);
  EXPECT_TRUE(c.targets_workers());
  EXPECT_EQ(c.crash_worker, 2);
  EXPECT_EQ(c.crash_attempt, 120);
  EXPECT_EQ(c.hang_worker, 1);
  EXPECT_EQ(c.hang_attempt, 40);
  EXPECT_DOUBLE_EQ(c.hang_ms, 25.0);
  EXPECT_EQ(c.flaky_worker, 3);
  EXPECT_DOUBLE_EQ(c.flaky_prob, 0.2);
  EXPECT_EQ(c.seed, 99u);
  // Round-trip exact, including mixed worker + measurement clauses.
  EXPECT_EQ(hw::parse_fault_spec(hw::format_fault_spec(c)), c);
  const hw::FaultConfig mixed =
      hw::parse_fault_spec("throttle=2.5@10~50,crash=0@7,drop=0.01,seed=3");
  EXPECT_EQ(hw::parse_fault_spec(hw::format_fault_spec(mixed)), mixed);
}

TEST(FaultSpec, MalformedWorkerClausesThrow) {
  const char* bad[] = {
      "crash=2",        // missing attempt
      "crash=x@5",      // non-numeric worker
      "crash=-1@5",     // negative worker
      "crash=1@-2",     // negative attempt
      "hang=1@2",       // missing duration
      "hang=1@2~0",     // non-positive duration
      "hang=1@2~-3",    // negative duration
      "flaky=2",        // missing probability
      "flaky=1x1.5",    // probability > 1
      "flaky=1x-0.1",   // negative probability
  };
  for (const char* spec : bad) {
    EXPECT_THROW((void)hw::parse_fault_spec(spec), std::invalid_argument) << spec;
  }
}

TEST(FaultSpec, WorkerClausesDoNotPerturbMeasurementStreams) {
  // Adding a crash/hang/flaky clause to a schedule must leave every
  // measurement stream's draw sequence bit-identical: the worker clauses
  // are consumed by the fleet's health layer only.
  const hw::FaultModel base(hw::parse_fault_spec("spike=0.05x4,drop=0.01,seed=42"));
  const hw::FaultModel with_workers(
      hw::parse_fault_spec("spike=0.05x4,drop=0.01,crash=1@10,flaky=0x0.3,seed=42"));
  hw::FaultStream a = base.stream("measure/7");
  hw::FaultStream b = with_workers.stream("measure/7");
  for (int run = 0; run < 200; ++run) {
    const hw::RunFault fa = a.next(run);
    const hw::RunFault fb = b.next(run);
    EXPECT_EQ(fa.multiplier, fb.multiplier);
    EXPECT_EQ(fa.failed, fb.failed);
  }
}

TEST(WorkerFaultInjector, SameConfigSameSeedIsBitIdentical) {
  const hw::FaultConfig cfg = hw::parse_fault_spec("crash=0@5,hang=1@3~10,flaky=2x0.3,seed=7");
  serve::WorkerFaultInjector a(cfg, 3);
  serve::WorkerFaultInjector b(cfg, 3);
  ASSERT_TRUE(a.active());
  for (std::int64_t k = 0; k < 64; ++k) {
    const double now = static_cast<double>(k);
    for (std::size_t w = 0; w < 3; ++w) {
      EXPECT_EQ(static_cast<int>(a.on_attempt(w, k, now)),
                static_cast<int>(b.on_attempt(w, k, now)))
          << "worker " << w << " attempt " << k;
      EXPECT_EQ(a.responsive(w, now), b.responsive(w, now));
    }
  }
  // The crash is permanent, the hang is not.
  EXPECT_FALSE(a.responsive(0, 1e9));
  EXPECT_TRUE(a.responsive(1, 1e9));
}

// ---------------------------------------------------------------------------
// HealthMonitor: warm-up hysteresis across repeated crash/recover cycles.
// ---------------------------------------------------------------------------

TEST(HealthMonitor, WarmupHysteresisHoldsAcrossRepeatedFlaps) {
  serve::HealthConfig hc;
  hc.suspect_after_ms = 1.0;
  hc.down_after_ms = 3.0;
  hc.probation_ms = 2.0;
  hc.warmup_batches = 2;
  serve::HealthMonitor m(2, hc);
  double t = 0.0;
  for (int cycle = 0; cycle < 3; ++cycle) {
    ASSERT_EQ(m.state(0), serve::ReplicaState::kUp) << "cycle " << cycle;
    // Silence opens; thresholds are pure functions of the clock.
    m.note_attempt_blocked(0, t);
    EXPECT_FALSE(m.advance(0, t + 0.5, /*responsive=*/false));
    EXPECT_EQ(m.state(0), serve::ReplicaState::kUp);
    EXPECT_FALSE(m.advance(0, t + 1.0, false));
    EXPECT_EQ(m.state(0), serve::ReplicaState::kDegraded);
    EXPECT_FALSE(m.routable(0));   // routed away before it is declared dead
    EXPECT_FALSE(m.in_admission(0));
    EXPECT_TRUE(m.serving_allowed(0));
    // Down exactly at the heartbeat deadline; the declaring call returns
    // true exactly once (the caller drains on it).
    EXPECT_TRUE(m.advance(0, t + 3.0, false));
    EXPECT_EQ(m.state(0), serve::ReplicaState::kDown);
    EXPECT_FALSE(m.serving_allowed(0));
    EXPECT_FALSE(m.advance(0, t + 3.5, false));  // still down, no re-drain
    EXPECT_DOUBLE_EQ(m.replica(0).detected_ms, t + 3.0);

    // Responsive again: probation, then steal-only Recovering.
    EXPECT_FALSE(m.advance(0, t + 4.0, true));
    EXPECT_EQ(m.state(0), serve::ReplicaState::kDown);
    EXPECT_FALSE(m.advance(0, t + 6.0, true));
    EXPECT_EQ(m.state(0), serve::ReplicaState::kRecovering);
    EXPECT_TRUE(m.steal_only(0));
    EXPECT_TRUE(m.serving_allowed(0));
    // The anti-flap core: a Recovering replica is NOT routable and NOT in
    // admission until the whole warm-up ramp completes — one clean batch
    // is not enough.
    EXPECT_FALSE(m.routable(0));
    EXPECT_FALSE(m.in_admission(0));
    EXPECT_EQ(m.up_count(), 1u);  // only the healthy sibling vouches
    m.note_progress(0, t + 6.5);
    EXPECT_EQ(m.state(0), serve::ReplicaState::kRecovering);
    EXPECT_FALSE(m.in_admission(0));
    m.note_progress(0, t + 7.0);
    EXPECT_EQ(m.state(0), serve::ReplicaState::kUp);
    EXPECT_TRUE(m.in_admission(0));
    t += 10.0;
  }
  // Exactly 4 transitions per cycle (Up->Degraded->Down->Recovering->Up):
  // no hidden flapping anywhere in three full cycles.
  EXPECT_EQ(m.replica(0).transitions, 12);
  // The untouched sibling never moved.
  EXPECT_EQ(m.replica(1).transitions, 0);
}

TEST(HealthMonitor, ErrorScoreIsLeakyAndEscalates) {
  serve::HealthConfig hc;  // defaults: degraded at 2, down at 5
  serve::HealthMonitor m(1, hc);
  m.note_error(0, 1.0);
  EXPECT_EQ(m.state(0), serve::ReplicaState::kUp);
  m.note_progress(0, 2.0);  // clean batch decays the score
  m.note_error(0, 3.0);
  EXPECT_EQ(m.state(0), serve::ReplicaState::kUp);  // 1 - 1 + 1 = 1 < 2
  m.note_error(0, 4.0);
  EXPECT_EQ(m.state(0), serve::ReplicaState::kDegraded);
  for (int i = 0; i < 3; ++i) m.note_error(0, 5.0 + i);
  EXPECT_EQ(m.state(0), serve::ReplicaState::kDown);
}

// ---------------------------------------------------------------------------
// Model checker: drain vs steal vs push conservation.
// ---------------------------------------------------------------------------

serve::FleetConfig failover_sched_config() {
  serve::FleetConfig fc;
  fc.seed = 1717;
  fc.admission = true;
  fc.health.suspect_after_ms = 0.5;
  fc.health.down_after_ms = 1.5;
  fc.health.probation_ms = 1.0;
  fc.health.warmup_batches = 1;
  return fc;
}

std::vector<serve::FleetWorker> failover_sched_workers(std::size_t n) {
  std::vector<serve::FleetWorker> workers;
  for (std::size_t w = 0; w < n; ++w) {
    serve::FleetWorker fw;
    fw.name = "failover-w" + std::to_string(w);
    serve::ServeOption opt;
    opt.name = "timing-only";
    opt.latency_ms = [](int b) { return 1.0 + 0.1 * b; };
    fw.options.push_back(opt);
    fw.serve.max_batch = 4;
    fw.serve.seed = 6160 + static_cast<std::uint64_t>(w);
    fw.serve.jitter_sigma = 0.0;
    fw.serve.faults = &hw::FaultModel::disabled();
    workers.push_back(fw);
  }
  return workers;
}

// Worker 0 crashes at its first dispatch attempt; two submitters (one
// tenant homed on the dying shard, one elsewhere) race two steppers whose
// clocks cross the heartbeat deadline — so drain/re-queue interleaves with
// admission pushes and steal migrations at every yield point
// (fleet.drain.holding-orphans, shard.balance.holding-stolen,
// fleet.submit.admit-to-push, ...). Conservation and explicit accounting
// must hold at quiescence for every schedule.
Protocol drain_steal_push_protocol() {
  static const hw::FaultModel crash0(hw::parse_fault_spec("crash=0@0,seed=21"));
  struct State {
    State() {
      serve::FleetConfig fc = failover_sched_config();
      fc.faults = &crash0;
      fleet = std::make_unique<serve::Fleet>(failover_sched_workers(2), fc);
      // Deterministically find a tenant homed on the doomed shard 0 and one
      // homed on shard 1 (rendezvous routing is a pure function of seed).
      doomed_tenant = other_tenant = 0;
      for (std::uint32_t t = 1; t <= 32 && (doomed_tenant == 0 || other_tenant == 0); ++t) {
        if (fleet->route(t) == 0 && doomed_tenant == 0) doomed_tenant = t;
        if (fleet->route(t) == 1 && other_tenant == 0) other_tenant = t;
      }
    }
    std::unique_ptr<serve::Fleet> fleet;
    std::uint32_t doomed_tenant = 0;
    std::uint32_t other_tenant = 0;
    std::atomic<std::int64_t> rejected{0};
    std::atomic<std::int64_t> step_shed{0};
  };
  auto st = std::make_shared<State>();
  const auto submitter = [st](std::uint32_t tenant, std::uint64_t base) {
    for (std::uint64_t i = 0; i < 3; ++i) {
      serve::Request r;
      r.id = base + i;
      r.arrival_ms = 0.0;
      // One hopeless request per submitter: shed at admission no matter
      // what the schedule does.
      r.deadline_ms = (i == 2) ? 0.2 : 1000.0;
      r.tenant = tenant;
      if (st->fleet->submit(r, 0.0).has_value()) st->rejected.fetch_add(1);
    }
  };
  const auto stepper = [st] {
    double now = 0.0;
    for (int i = 0; i < 8; ++i) {
      // Drain rejections come back from step(); count them so the check
      // can assert shed = admission rejections + drain sheds exactly.
      for (const serve::Completion& c : st->fleet->step(now))
        if (c.rejected) st->step_shed.fetch_add(1);
      now += 0.6;  // crosses suspect (0.5) and down (1.5) deadlines
    }
  };
  Protocol p;
  p.bodies.push_back([submitter, st] { submitter(st->doomed_tenant, 100); });
  p.bodies.push_back([submitter, st] { submitter(st->other_tenant, 200); });
  p.bodies.push_back(stepper);
  p.bodies.push_back(stepper);
  p.check = [st] {
    const serve::FleetStats fs = st->fleet->stats();
    require(fs.submitted == 6, "submitted count wrong");
    require(fs.shed == st->rejected.load() + st->step_shed.load(),
            "shed != admission rejections + drain rejections (silent loss)");
    require(fs.drain_shed <= fs.shed, "drain_shed must be a subset of shed");
    require(fs.submitted == fs.shed + fs.served +
                                static_cast<std::int64_t>(st->fleet->backlog()),
            "fleet conservation violated: submitted != shed + served + backlog");
    require(fs.failovers <= 1, "one crash must declare at most one failover");
    std::int64_t t_submitted = 0, t_shed = 0, t_served = 0;
    for (const auto& [tenant, tc] : st->fleet->tenants()) {
      t_submitted += tc.submitted;
      t_shed += tc.shed;
      t_served += tc.served;
    }
    require(t_submitted == fs.submitted && t_shed == fs.shed && t_served == fs.served,
            "per-tenant counters out of sync with fleet totals");
  };
  return p;
}

TEST(SchedFailover, DrainVsStealVsPushConserves) {
  ExploreConfig cfg;
  cfg.seed = 81818;
  cfg.random_schedules = 200;
  cfg.exhaustive_depth = 2;
  const ExploreStats stats = explore(drain_steal_push_protocol, cfg);
  EXPECT_GE(stats.schedules, 200u);
}

// ---------------------------------------------------------------------------
// Simulation-scale failover behavior.
// ---------------------------------------------------------------------------

std::function<double(int)> trunk_curve(double scale = 1.0) {
  auto device = std::make_shared<hw::DeviceModel>();
  auto graph = std::make_shared<const nn::Graph>(
      zoo::build_trunk(zoo::NetId::kMobileNetV1_025, 32));
  auto cache = std::make_shared<std::map<int, double>>();
  return [device, graph, cache, scale](int b) {
    if (auto it = cache->find(b); it != cache->end()) return it->second;
    const double v =
        scale * device->network_latency_ms(*graph, hw::Precision::kInt8, true, b);
    return cache->emplace(b, v).first->second;
  };
}

serve::Fleet sim_fleet(std::size_t n, serve::FleetConfig cfg, double deadline_ms,
                       const hw::FaultModel* fleet_faults,
                       const hw::FaultModel* server_faults = nullptr) {
  std::vector<serve::FleetWorker> workers;
  for (std::size_t w = 0; w < n; ++w) {
    serve::FleetWorker fw;
    fw.name = "w" + std::to_string(w);
    fw.options = {{"preferred", nullptr, trunk_curve(), {}},
                  {"fallback", nullptr, trunk_curve(0.25), {}}};
    fw.serve.max_batch = 8;
    fw.serve.nominal_deadline_ms = deadline_ms;
    fw.serve.seed = util::derive_seed(7070, "failover/worker/" + std::to_string(w));
    fw.serve.faults =
        server_faults != nullptr ? server_faults : &hw::FaultModel::disabled();
    workers.push_back(std::move(fw));
  }
  cfg.faults = fleet_faults != nullptr ? fleet_faults : &hw::FaultModel::disabled();
  return serve::Fleet(std::move(workers), std::move(cfg));
}

TEST(FleetFailover, HangIsDetectedButThrottleNeverFalsePositives) {
  // Worker 1 wedges for 60ms; at the same time the schedule throttles
  // every replica's service time 3x (decaying thermal event). Detection
  // must fire for the hung replica — and ONLY for it: a slow replica still
  // completes batches, still heartbeats, and must never be suspected.
  const auto curve = trunk_curve();
  const hw::FaultModel model(
      hw::parse_fault_spec("hang=1@20~60,throttle=3.0@0~200,seed=5"));
  serve::FleetConfig fc;
  fc.classes = {{"standard", 12.0 * curve(1), 12.0 * curve(1), 1.0}};
  FleetLoadConfig load;
  load.requests = 20000;
  load.mean_interarrival_ms = curve(8) / 8.0 / 2.0;  // ~2x one worker
  for (std::uint32_t tenant = 1; tenant <= 8; ++tenant)
    load.tenants.push_back({tenant, 0, 1.0});

  serve::Fleet fleet =
      sim_fleet(4, fc, fc.classes[0].deadline_slack_ms, &model, &model);
  const FleetReport rep = serve_sim::run_fleet_open_loop(
      fleet, serve_sim::generate_fleet_arrivals(load, fc.classes, {}));

  // The hung replica was declared dead (and its shard drained)...
  EXPECT_EQ(rep.failovers, 1);
  const serve::ReplicaHealth hung = fleet.worker_health(1);
  EXPECT_GE(hung.transitions, 2);         // Up -> Degraded -> Down at least
  EXPECT_GT(hung.detected_ms, 0.0);
  // ... within a detection window bounded by the configured deadlines (the
  // hang lasts 60ms; suspicion + declaration take suspect+down = 28ms of
  // silence by default, found at the next health-event clock edge).
  EXPECT_LT(hung.detected_ms, rep.makespan_ms);
  // No false positives: every throttled-but-alive replica stayed Up the
  // whole run.
  for (std::size_t w : {0u, 2u, 3u}) {
    EXPECT_EQ(fleet.worker_health(w).transitions, 0)
        << "throttled worker " << w << " was wrongly suspected";
    EXPECT_EQ(fleet.worker_state(w), serve::ReplicaState::kUp);
  }
  // Everything remains explicitly accounted through hang + recovery.
  EXPECT_EQ(rep.shed + rep.served, rep.submitted);
}

TEST(FleetFailover, SameSeedRunsWithFailoverAreDigestIdentical) {
  // Bit-identity is part of the failover contract: a crash mid-run must
  // not introduce wall-clock or iteration-order dependence. Two same-seed
  // runs produce identical completion streams (digest-checked); two
  // different seeds produce different ones.
  const auto curve = trunk_curve();
  const hw::FaultModel crash(hw::parse_fault_spec("crash=2@150,seed=31"));
  std::vector<std::uint64_t> digests;
  for (const std::uint64_t seed : {424242ull, 777000ull}) {
    serve::FleetConfig fc;
    fc.classes = {{"standard", 8.0 * curve(1), 8.0 * curve(1), 1.0}};
    FleetLoadConfig load;
    load.requests = 20000;
    load.mean_interarrival_ms = curve(8) / 8.0 / 2.5;
    load.seed = seed;
    for (std::uint32_t tenant = 1; tenant <= 6; ++tenant)
      load.tenants.push_back({tenant, 0, 1.0});
    const auto arrivals = serve_sim::generate_fleet_arrivals(load, fc.classes, {});
    auto run = [&] {
      serve::Fleet fleet = sim_fleet(4, fc, fc.classes[0].deadline_slack_ms, &crash);
      return serve_sim::run_fleet_open_loop(fleet, arrivals);
    };
    const FleetReport a = run();
    const FleetReport b = run();
    EXPECT_GE(a.failovers, 1) << "seed " << seed;
    EXPECT_TRUE(serve_sim::fleet_reports_identical(a, b)) << "seed " << seed;
    digests.push_back(a.digest);
  }
  EXPECT_NE(digests[0], digests[1]);  // the seed actually flows through
}

TEST(FleetFailover, CrashOneOfFourAtEightyPercentLoadHasNoSilentOutcomes) {
  // The acceptance scenario: 4 replicas at ~80% fleet load, replica 1
  // fail-stops mid-run. Every submitted request must end as exactly one
  // explicit outcome — served (deadline verdict visible on the completion)
  // or shed (admission or drain rejection) — with the dead shard's orphans
  // re-queued onto the survivors. No request may vanish, and the admitted
  // miss rate must stay controlled because survivors' watchdogs take the
  // capacity-loss fallback instead of letting deadlines blow up.
  const auto curve = trunk_curve();
  const hw::FaultModel crash(hw::parse_fault_spec("crash=1@400,seed=13"));
  serve::FleetConfig fc;
  fc.classes = {{"standard", 8.0 * curve(1), 8.0 * curve(1), 1.0}};
  // Heartbeat deadlines on the service timescale (a few batch times), like
  // a real deployment: with the defaults (8ms/20ms ~ 100 batch times here)
  // the silence window is so long the stealers pick the dying shard clean
  // before the drain ever sees an orphan.
  fc.health.suspect_after_ms = 2.0 * curve(1);
  fc.health.down_after_ms = 5.0 * curve(1);
  serve::Fleet fleet = sim_fleet(4, fc, fc.classes[0].deadline_slack_ms, &crash);

  FleetLoadConfig load;
  load.requests = 30000;
  load.mean_interarrival_ms = curve(8) / 8.0 / 3.2;  // 80% of 4 workers
  for (std::uint32_t tenant = 1; tenant <= 8; ++tenant) {
    // Skew extra traffic onto the doomed replica's shard (the rendezvous
    // route is a pure function of the seed, so the probe is deterministic):
    // its shard must carry standing backlog at drain time so the test
    // actually exercises the orphan re-queue path, not an empty drain.
    const double weight = fleet.route(tenant) == 1 ? 3.0 : 1.0;
    load.tenants.push_back({tenant, 0, weight});
  }
  const auto arrivals = serve_sim::generate_fleet_arrivals(load, fc.classes, {});
  std::vector<serve::Completion> completions;
  const FleetReport rep = serve_sim::run_fleet_open_loop(fleet, arrivals, &completions);

  EXPECT_EQ(rep.failovers, 1);
  EXPECT_EQ(fleet.worker_state(1), serve::ReplicaState::kDown);
  EXPECT_GT(rep.requeued, 0);  // the orphans went to the survivors
  // Zero silent outcomes: every id appears exactly once, as served or shed.
  ASSERT_EQ(completions.size(), arrivals.size());
  const double detected = fleet.worker_health(1).detected_ms;
  EXPECT_GT(detected, 0.0);
  std::set<std::uint64_t> seen;
  for (const serve::Completion& c : completions) {
    EXPECT_TRUE(seen.insert(c.id).second) << "request " << c.id << " completed twice";
    // The dead replica's pre-crash service is fine; nothing it "served" may
    // finish past the point it was declared dead.
    if (!c.rejected && c.worker == 1) {
      EXPECT_LE(c.finish_ms, detected) << "request " << c.id << " served by a dead replica";
    }
  }
  EXPECT_EQ(rep.shed + rep.served, rep.submitted);
  EXPECT_EQ(rep.served + rep.shed, static_cast<std::int64_t>(arrivals.size()));
  // The dead replica's load was absorbed, not missed: admitted work keeps
  // a controlled miss rate through the failover.
  EXPECT_LT(rep.miss_rate, 0.02) << "post-failover misses leaked";
  // At least one survivor took the capacity-loss fallback at the drain.
  std::int64_t switches = 0;
  for (std::size_t w : {0u, 2u, 3u}) {
    switches += static_cast<std::int64_t>(fleet.worker(w).stats().switches.size());
  }
  EXPECT_GE(switches, 3);  // every survivor got the nudge
}

}  // namespace
}  // namespace netcut
