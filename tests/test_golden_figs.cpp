// Golden-regression tests for the latency-side numbers behind Figure 1 and
// Figure 9 (bench/fig01_offtheshelf.cpp, bench/fig09_estimator_accuracy.cpp),
// compared against checked-in JSON in tests/golden/ via tests/golden.hpp.
//
// Scope: only the latency / estimator metrics are pinned — they are pure
// functions of the device model and the simulated measurement streams, so
// they are cheap (no TRN training) and identical in NETCUT_FAST and full
// mode. Accuracy columns would need real training and are covered by the
// bench harnesses instead.
//
// Differences from fig09 proper: the SVR uses the fixed default (gamma, C)
// instead of the 10-fold grid search. Grid search picks hyperparameters by
// argmax over discrete candidates, so chaos-schedule measurement jitter can
// flip the winner and discontinuously move the aggregate error; with fixed
// hyperparameters every pinned metric varies continuously with the inputs
// and a modest tolerance absorbs the fault-injection noise.
//
// Regenerate after an intentional behaviour change:
//   NETCUT_GOLDEN_REGEN=1 ./build/tests/test_golden_figs
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/estimator.hpp"
#include "core/lab.hpp"
#include "golden.hpp"
#include "util/stats.hpp"
#include "zoo/zoo.hpp"

namespace netcut {
namespace {

#ifndef NETCUT_GOLDEN_DIR
#error "NETCUT_GOLDEN_DIR must point at the checked-in golden files"
#endif

void check_or_regen(const std::string& file, const golden::Metrics& actual,
                    golden::Tolerance fallback,
                    const std::map<std::string, golden::Tolerance>& overrides = {}) {
  const std::string path = std::string(NETCUT_GOLDEN_DIR) + "/" + file;
  if (golden::regen_requested()) {
    golden::save(path, actual);
    GTEST_SKIP() << "regenerated " << path;
  }
  const golden::Metrics want = golden::load(path);
  const std::vector<std::string> problems = golden::diff(want, actual, fallback, overrides);
  for (const std::string& p : problems) ADD_FAILURE() << p;
  if (!problems.empty())
    ADD_FAILURE() << "golden mismatch vs " << path
                  << " (NETCUT_GOLDEN_REGEN=1 regenerates after an intended change)";
}

// The blockwise latency-sample sweep from bench/bench_common.hpp, inlined so
// the test does not reach into bench/ (same nets, same cuts, same split).
std::vector<core::LatencySample> latency_samples(core::LatencyLab& lab) {
  std::vector<core::LatencySample> samples;
  for (zoo::NetId net : zoo::all_nets())
    for (int cut : lab.blockwise(net)) {
      core::LatencySample s;
      s.base = net;
      s.cut_node = cut;
      s.features = core::compute_trn_features(lab, net, cut);
      s.measured_ms = lab.measured_ms(net, cut);
      samples.push_back(std::move(s));
    }
  return samples;
}

TEST(GoldenFigs, Fig01OffTheShelfLatencies) {
  core::LatencyLab lab;
  golden::Metrics metrics;
  for (zoo::NetId net : zoo::all_nets())
    metrics["fig01/latency_ms/" + zoo::net_name(net)] =
        lab.measured_ms(net, lab.full_cut(net));

  // Tolerance is set from the observed clean-vs-chaos spread (the chaos
  // schedule inflates individual measurement draws by up to 2.5x with small
  // probability; the lab's aggregation keeps the end metric close).
  check_or_regen("fig01_latency.json", metrics, {/*rel=*/0.10, /*abs=*/0.005});
}

TEST(GoldenFigs, Fig09EstimatorAccuracyAggregates) {
  core::LatencyLab lab;
  const std::vector<core::LatencySample> samples = latency_samples(lab);
  std::vector<core::LatencySample> train, test;
  for (std::size_t i = 0; i < samples.size(); ++i)
    (i % 5 == 2 ? train : test).push_back(samples[i]);
  ASSERT_FALSE(train.empty());
  ASSERT_FALSE(test.empty());

  core::AnalyticalEstimator svr(lab, /*grid_search=*/false);
  svr.fit(train);
  core::LinearEstimator lin(lab);
  lin.fit(train);
  core::ProfilerEstimator prof(lab);

  std::vector<double> truth, prof_est, svr_est, lin_est, sum_est;
  for (const core::LatencySample& s : test) {
    truth.push_back(s.measured_ms);
    prof_est.push_back(prof.estimate_ms(s.base, s.cut_node));
    svr_est.push_back(svr.predict(s.features));
    lin_est.push_back(lin.predict(s.features));
    const hw::LatencyTable& t = lab.profile(s.base);
    double kept = 0.0;
    for (const hw::ProfiledLayer& l : t.layers)
      if (l.node <= s.cut_node || l.node > lab.trunk_last_node(s.base))
        kept += l.latency_ms;
    sum_est.push_back(kept);
  }

  golden::Metrics metrics;
  metrics["fig09/test_samples"] = static_cast<double>(test.size());
  metrics["fig09/profiler/mre_pct"] = util::mean_relative_error(prof_est, truth) * 100.0;
  metrics["fig09/profiler/mae_ms"] = util::mean_absolute_error(prof_est, truth);
  metrics["fig09/analytical/mre_pct"] = util::mean_relative_error(svr_est, truth) * 100.0;
  metrics["fig09/analytical/mae_ms"] = util::mean_absolute_error(svr_est, truth);
  metrics["fig09/linear/mre_pct"] = util::mean_relative_error(lin_est, truth) * 100.0;
  metrics["fig09/linear/mae_ms"] = util::mean_absolute_error(lin_est, truth);
  metrics["fig09/plain_sum/mre_pct"] = util::mean_relative_error(sum_est, truth) * 100.0;
  metrics["fig09/plain_sum/mae_ms"] = util::mean_absolute_error(sum_est, truth);

  // Error *aggregates* wobble more than raw latencies under fault injection
  // (train split and truth jitter independently), hence the wider default;
  // the sample count is structural and must match exactly.
  check_or_regen("fig09_estimators.json", metrics, {/*rel=*/0.35, /*abs=*/0.01},
                 {{"fig09/test_samples", {0.0, 0.0}}});
}

}  // namespace
}  // namespace netcut
