#!/usr/bin/env bash
# Negative test: the schedule explorer must catch a deliberately seeded
# lost-wakeup bug (check-then-wait gap + naked condvar wait).
#
#   ./tests/negative/sched_catches_lost_wakeup.sh [path/to/test_sched]
#
# Runs the SchedNegative suite from tests/test_sched.cpp in isolation:
#  * ExplorerCatchesSeededLostWakeup — the buggy consumer protocol MUST be
#    driven into a deadlock by the campaign, with a replayable pick list
#    that reproduces the identical failure;
#  * CorrectWaitProtocolSurvivesSameCampaign — the fixed protocol survives
#    the same schedules, proving the detection is the bug and not noise;
#  * ExplorerCatchesHandlock — an AB/BA double-lock hand-off must deadlock.
#
# If the explorer ever stops finding these seeded bugs (scheduler
# regression, yield points removed, campaign gutted), this script fails —
# guarding the guard, per DESIGN.md section 13.
set -euo pipefail

cd "$(dirname "$0")/../.."

BIN="${1:-build/tests/test_sched}"
if [[ ! -x "$BIN" ]]; then
  echo "sched-negative: $BIN not built (cmake --build build --target test_sched)" >&2
  exit 1
fi

"$BIN" --gtest_filter='SchedNegative.*' --gtest_brief=1
echo "sched-negative: OK — explorer caught the seeded lost wakeup and handlock"
