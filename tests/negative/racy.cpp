// Deliberately racy program for tests/negative/tsan_catches_race.sh.
//
// Two threads increment the same plain (non-atomic) counter with no
// synchronization — the canonical data race. This file exists so the
// harness can prove the ThreadSanitizer step in scripts/check.sh is
// actually live: if TSan ever stops reporting THIS race (toolchain
// regression, wrong flags, suppression file gone rogue), the negative
// test fails loudly instead of the sanitizer wall going silently blind.
//
// Never linked into the main build; compiled standalone by the script.
#include <cstdio>
#include <thread>

namespace {
long counter = 0;  // shared, unsynchronized — the bug under test

void hammer() {
  for (int i = 0; i < 100000; ++i) ++counter;
}
}  // namespace

int main() {
  std::thread a(hammer);
  std::thread b(hammer);
  a.join();
  b.join();
  std::printf("counter=%ld\n", counter);
  return 0;
}
