#!/usr/bin/env bash
# Negative test: ThreadSanitizer must catch a deliberately seeded data race.
#
#   ./tests/negative/tsan_catches_race.sh [CXX]
#
# Compiles tests/negative/racy.cpp (two threads bumping a plain long) with
# -fsanitize=thread and asserts the run REPORTS a race and exits nonzero.
# If the racy program runs "clean", the sanitizer wall is blind and this
# script fails — guarding the guard, per DESIGN.md section 13.
set -euo pipefail

cd "$(dirname "$0")/../.."

CXX="${1:-${CXX:-g++}}"
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

"$CXX" -std=c++20 -O1 -g -fsanitize=thread -pthread \
  tests/negative/racy.cpp -o "$workdir/racy"

# TSan reports go to stderr; the default exitcode on detection is 66.
status=0
TSAN_OPTIONS="exitcode=66" "$workdir/racy" >"$workdir/out" 2>&1 || status=$?

if [[ "$status" -eq 0 ]]; then
  echo "tsan-negative: FAIL — racy program exited 0, no race reported" >&2
  cat "$workdir/out" >&2
  exit 1
fi
if ! grep -q "WARNING: ThreadSanitizer: data race" "$workdir/out"; then
  echo "tsan-negative: FAIL — nonzero exit but no data-race report" >&2
  cat "$workdir/out" >&2
  exit 1
fi
echo "tsan-negative: OK — TSan reported the seeded race (exit $status)"
