#include <gtest/gtest.h>

#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace netcut::tensor {
namespace {

TEST(Shape, BasicProperties) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s[0], 2);
  EXPECT_EQ(s.to_string(), "[2x3x4]");
  EXPECT_EQ(s, Shape::chw(2, 3, 4));
  EXPECT_NE(s, Shape::chw(2, 3, 5));
}

TEST(Shape, RejectsNonPositiveDims) {
  EXPECT_THROW(Shape({0, 1}), std::invalid_argument);
  EXPECT_THROW(Shape({2, -1}), std::invalid_argument);
}

TEST(Tensor, FillAndAccessors) {
  Tensor t(Shape::chw(2, 2, 2), 3.0f);
  EXPECT_EQ(t.numel(), 8);
  EXPECT_FLOAT_EQ(t.sum(), 24.0f);
  t.at(1, 1, 1) = 5.0f;
  EXPECT_FLOAT_EQ(t.at(1, 1, 1), 5.0f);
  EXPECT_FLOAT_EQ(t.max(), 5.0f);
  EXPECT_FLOAT_EQ(t.min(), 3.0f);
  EXPECT_THROW(t.at(2, 0, 0), std::out_of_range);
}

TEST(Tensor, ElementwiseOps) {
  Tensor a(Shape::vec(3), 1.0f);
  Tensor b(Shape::vec(3), 2.0f);
  a += b;
  EXPECT_FLOAT_EQ(a[0], 3.0f);
  a -= b;
  EXPECT_FLOAT_EQ(a[1], 1.0f);
  a *= 4.0f;
  EXPECT_FLOAT_EQ(a[2], 4.0f);
  a.add_scaled(b, 0.5f);
  EXPECT_FLOAT_EQ(a[0], 5.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t(Shape{2, 3});
  for (int i = 0; i < 6; ++i) t[i] = static_cast<float>(i);
  const Tensor r = t.reshaped(Shape{3, 2});
  EXPECT_EQ(r.shape(), (Shape{3, 2}));
  for (int i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(r[i], static_cast<float>(i));
  EXPECT_THROW(t.reshaped(Shape{4, 2}), std::invalid_argument);
}

TEST(Tensor, RandnStatistics) {
  util::Rng rng(9);
  const Tensor t = Tensor::randn(Shape{100, 100}, rng, 2.0f);
  EXPECT_NEAR(t.mean(), 0.0f, 0.05f);
  double var = 0.0;
  for (std::int64_t i = 0; i < t.numel(); ++i) var += t[i] * t[i];
  EXPECT_NEAR(var / t.numel(), 4.0, 0.2);
}

TEST(Gemm, MatchesNaiveReference) {
  util::Rng rng(1);
  const int m = 17, k = 23, n = 13;
  const Tensor a = Tensor::randn(Shape{m, k}, rng);
  const Tensor b = Tensor::randn(Shape{k, n}, rng);
  Tensor c(Shape{m, n});
  gemm(a.data(), b.data(), c.data(), m, k, n);
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j) {
      float ref = 0.0f;
      for (int kk = 0; kk < k; ++kk) ref += a[i * k + kk] * b[kk * n + j];
      EXPECT_NEAR(c[i * n + j], ref, 1e-3f) << i << "," << j;
    }
}

TEST(Gemm, AccumulateAddsOntoC) {
  util::Rng rng(2);
  const Tensor a = Tensor::randn(Shape{4, 5}, rng);
  const Tensor b = Tensor::randn(Shape{5, 6}, rng);
  Tensor c1(Shape{4, 6}, 1.0f);
  Tensor c0(Shape{4, 6});
  gemm(a.data(), b.data(), c0.data(), 4, 5, 6);
  gemm_accumulate(a.data(), b.data(), c1.data(), 4, 5, 6);
  for (int i = 0; i < 24; ++i) EXPECT_NEAR(c1[i], c0[i] + 1.0f, 1e-4f);
}

TEST(Gemm, TransposedVariantsAgree) {
  util::Rng rng(3);
  const int m = 6, k = 7, n = 8;
  const Tensor a = Tensor::randn(Shape{m, k}, rng);
  const Tensor b = Tensor::randn(Shape{k, n}, rng);
  Tensor ref(Shape{m, n});
  gemm(a.data(), b.data(), ref.data(), m, k, n);

  // A stored transposed (k x m).
  Tensor at(Shape{k, m});
  for (int i = 0; i < m; ++i)
    for (int kk = 0; kk < k; ++kk) at[kk * m + i] = a[i * k + kk];
  Tensor c1(Shape{m, n});
  gemm_at(at.data(), b.data(), c1.data(), m, k, n);
  EXPECT_LT(max_abs_diff(ref, c1), 1e-4f);

  // B stored transposed (n x k).
  Tensor bt(Shape{n, k});
  for (int kk = 0; kk < k; ++kk)
    for (int j = 0; j < n; ++j) bt[j * k + kk] = b[kk * n + j];
  Tensor c2(Shape{m, n});
  gemm_bt(a.data(), bt.data(), c2.data(), m, k, n);
  EXPECT_LT(max_abs_diff(ref, c2), 1e-4f);
}

TEST(Gemm, GemvMatchesGemm) {
  util::Rng rng(4);
  const int m = 9, n = 11;
  const Tensor a = Tensor::randn(Shape{m, n}, rng);
  const Tensor x = Tensor::randn(Shape::vec(n), rng);
  Tensor y1(Shape::vec(m));
  gemv(a.data(), x.data(), y1.data(), m, n);
  Tensor y2(Shape::vec(m));
  gemm(a.data(), x.data(), y2.data(), m, n, 1);
  EXPECT_LT(max_abs_diff(y1, y2), 1e-4f);

  Tensor z1(Shape::vec(n));
  gemv_t(a.data(), y1.data(), z1.data(), m, n);
  Tensor z2(Shape::vec(n));
  for (int j = 0; j < n; ++j) {
    float s = 0.0f;
    for (int i = 0; i < m; ++i) s += a[i * n + j] * y1[i];
    z2[j] = s;
  }
  EXPECT_LT(max_abs_diff(z1, z2), 1e-3f);
}

TEST(Im2col, IdentityKernelReproducesImage) {
  util::Rng rng(5);
  ConvGeometry g;
  g.in_c = 2;
  g.in_h = 4;
  g.in_w = 5;
  const Tensor img = Tensor::randn(Shape::chw(2, 4, 5), rng);
  std::vector<float> cols(static_cast<std::size_t>(g.in_c * g.patch() * g.out_h() * g.out_w()));
  im2col(img.data(), g, cols.data());
  // 1x1 kernel, stride 1, no pad: cols must equal the image.
  for (std::int64_t i = 0; i < img.numel(); ++i)
    EXPECT_FLOAT_EQ(cols[static_cast<std::size_t>(i)], img[i]);
}

TEST(Im2col, PaddingProducesZeros) {
  ConvGeometry g;
  g.in_c = 1;
  g.in_h = 2;
  g.in_w = 2;
  g.kernel_h = 3;
  g.kernel_w = 3;
  g.pad_h = 1;
  g.pad_w = 1;
  Tensor img(Shape::chw(1, 2, 2), 1.0f);
  std::vector<float> cols(static_cast<std::size_t>(9 * g.out_h() * g.out_w()));
  im2col(img.data(), g, cols.data());
  // Top-left output, top-left kernel tap reads the (-1,-1) pad position.
  EXPECT_FLOAT_EQ(cols[0], 0.0f);
}

TEST(Im2col, Col2imIsAdjointOfIm2col) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y — the property that
  // makes conv backward correct.
  util::Rng rng(6);
  ConvGeometry g;
  g.in_c = 3;
  g.in_h = 6;
  g.in_w = 5;
  g.kernel_h = 3;
  g.kernel_w = 2;
  g.stride = 2;
  g.pad_h = 1;
  g.pad_w = 0;
  const int cols_n = g.in_c * g.patch() * g.out_h() * g.out_w();
  const Tensor x = Tensor::randn(Shape::chw(3, 6, 5), rng);
  const Tensor y = Tensor::randn(Shape::vec(cols_n), rng);

  std::vector<float> cols(static_cast<std::size_t>(cols_n));
  im2col(x.data(), g, cols.data());
  double lhs = 0.0;
  for (int i = 0; i < cols_n; ++i) lhs += static_cast<double>(cols[static_cast<std::size_t>(i)]) * y[i];

  Tensor xt(Shape::chw(3, 6, 5));
  col2im(y.data(), g, xt.data());
  double rhs = 0.0;
  for (std::int64_t i = 0; i < x.numel(); ++i) rhs += static_cast<double>(x[i]) * xt[i];

  EXPECT_NEAR(lhs, rhs, 1e-3);
}

}  // namespace
}  // namespace netcut::tensor
