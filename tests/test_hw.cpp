// Device model, measurement protocol, profiler, and trainer-model checks.
#include <gtest/gtest.h>

#include "hw/device.hpp"
#include "hw/measure.hpp"
#include "hw/profiler.hpp"
#include "hw/trainer_model.hpp"
#include "nn/activation.hpp"
#include "nn/conv.hpp"
#include "nn/norm.hpp"
#include "zoo/zoo.hpp"

namespace netcut::hw {
namespace {

using nn::Graph;

Graph conv_bn_relu_chain(int blocks) {
  Graph g;
  int x = g.add_input(tensor::Shape::chw(3, 32, 32));
  int c = 3;
  for (int b = 0; b < blocks; ++b) {
    x = g.add(std::make_unique<nn::Conv2D>(c, 16, 3, 1, -1, false), {x},
              "conv" + std::to_string(b));
    x = g.add(std::make_unique<nn::BatchNorm>(16), {x}, "bn" + std::to_string(b));
    x = g.add(std::make_unique<nn::ReLU>(false), {x}, "relu" + std::to_string(b));
    c = 16;
  }
  return g;
}

TEST(DeviceModel, FusionAbsorbsBnRelu) {
  const Graph g = conv_bn_relu_chain(3);
  const auto fused = DeviceModel::fused_away(g);
  int absorbed = 0;
  for (bool f : fused) absorbed += f ? 1 : 0;
  EXPECT_EQ(absorbed, 6);  // 3 BNs + 3 ReLUs

  DeviceModel dev;
  const double t_fused = dev.network_latency_ms(g, Precision::kFp32, true);
  const double t_unfused = dev.network_latency_ms(g, Precision::kFp32, false);
  EXPECT_LT(t_fused, t_unfused);
}

TEST(DeviceModel, Int8FasterThanFp32) {
  const Graph g = zoo::build_trunk(zoo::NetId::kResNet50, 224);
  DeviceModel dev;
  EXPECT_LT(dev.network_latency_ms(g, Precision::kInt8, true),
            dev.network_latency_ms(g, Precision::kFp32, true));
}

TEST(DeviceModel, LatencyMonotoneInDepth) {
  DeviceModel dev;
  double prev = 0.0;
  for (int blocks = 1; blocks <= 4; ++blocks) {
    const double t =
        dev.network_latency_ms(conv_bn_relu_chain(blocks), Precision::kInt8, true);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(DeviceModel, KernelCostsCoverEveryNode) {
  const Graph g = conv_bn_relu_chain(2);
  DeviceModel dev;
  const auto costs = dev.kernel_costs(g, Precision::kInt8, true);
  EXPECT_EQ(static_cast<int>(costs.size()), g.node_count() - 1);
  double total = 0.0;
  for (const KernelCost& kc : costs) total += kc.latency_ms;
  EXPECT_NEAR(total, dev.network_latency_ms(g, Precision::kInt8, true), 1e-12);
}

TEST(DeviceModel, PaperScaleCalibration) {
  // The qualitative Fig 1 setup: MobileNetV1-0.5 comfortably meets the
  // 0.9 ms deadline; the deep networks miss it.
  DeviceModel dev;
  const double mnv1 = dev.network_latency_ms(
      zoo::build_trunk(zoo::NetId::kMobileNetV1_050, 224), Precision::kInt8, true);
  EXPECT_GT(mnv1, 0.1);
  EXPECT_LT(mnv1, 0.9);
  const double resnet = dev.network_latency_ms(
      zoo::build_trunk(zoo::NetId::kResNet50, 224), Precision::kInt8, true);
  EXPECT_GT(resnet, 0.9);
}

TEST(Measure, ProtocolAveragesAfterWarmup) {
  DeviceModel dev;
  MeasureConfig mc;
  mc.noise_sigma = 0.02;
  mc.faults = &FaultModel::disabled();  // exact protocol counts need a clean device
  LatencyMeasurer meas(dev, mc);
  const Graph g = conv_bn_relu_chain(2);
  const Measurement m = meas.measure_network(g, Precision::kInt8, true);
  const double truth = dev.network_latency_ms(g, Precision::kInt8, true);
  EXPECT_EQ(m.runs, 800);
  // Warm-up absorbed: mean within a few percent of the true latency.
  EXPECT_NEAR(m.mean_ms, truth, truth * 0.03);
  EXPECT_GT(m.stdev_ms, 0.0);
  EXPECT_LE(m.min_ms, m.mean_ms);
  EXPECT_GE(m.max_ms, m.mean_ms);
}

TEST(Measure, ColdRunsAreSlower) {
  DeviceModel dev;
  LatencyMeasurer meas(dev);
  util::Rng rng(1);
  const double cold = meas.simulate_run_ms(1.0, 0, rng);
  double warm_sum = 0.0;
  for (int i = 0; i < 50; ++i) warm_sum += meas.simulate_run_ms(1.0, 500 + i, rng);
  EXPECT_GT(cold, warm_sum / 50 * 1.3);
}

TEST(Measure, DeterministicAcrossInstances) {
  DeviceModel dev;
  const Graph g = conv_bn_relu_chain(2);
  LatencyMeasurer a(dev), b(dev);
  EXPECT_DOUBLE_EQ(a.measure_network(g, Precision::kInt8, true).mean_ms,
                   b.measure_network(g, Precision::kInt8, true).mean_ms);
}

TEST(Profiler, LayerSumExceedsEndToEnd) {
  // The event-overhead artifact that motivates the paper's ratio formula.
  DeviceModel dev;
  LatencyMeasurer meas(dev);
  LayerProfiler prof(dev, meas);
  const Graph g = zoo::build_trunk(zoo::NetId::kMobileNetV2_100, 224);
  const LatencyTable t = prof.profile(g, "mnv2", Precision::kInt8, true);
  EXPECT_GT(t.layer_sum_ms(), t.end_to_end_ms);
  EXPECT_LT(t.layer_sum_ms(), t.end_to_end_ms * 1.5);
}

TEST(Profiler, FusedLayersReportZero) {
  DeviceModel dev;
  LatencyMeasurer meas(dev);
  LayerProfiler prof(dev, meas);
  const Graph g = conv_bn_relu_chain(2);
  const LatencyTable t = prof.profile(g, "chain", Precision::kInt8, true);
  int zero_rows = 0;
  for (const ProfiledLayer& l : t.layers)
    if (l.fused_away) {
      EXPECT_DOUBLE_EQ(l.latency_ms, 0.0);
      ++zero_rows;
    }
  EXPECT_EQ(zero_rows, 4);
}

TEST(TrainerModel, HoursScaleWithNetworkSize) {
  TrainerModel tm;
  const Graph small = zoo::build_trunk(zoo::NetId::kMobileNetV1_025, 224);
  const Graph big = zoo::build_trunk(zoo::NetId::kResNet50, 224);
  EXPECT_LT(tm.training_hours(small), tm.training_hours(big));
  EXPECT_GT(tm.training_hours(small), 0.0);
}

TEST(TrainerModel, PaperScaleTotalHours) {
  // The 7 full networks alone should land within the same order as the
  // paper's per-network training times (~1 hour each on a K20m).
  TrainerModel tm;
  double total = 0.0;
  for (auto id : zoo::all_nets())
    total += tm.training_hours(zoo::build_trunk(id, zoo::native_resolution(id)));
  EXPECT_GT(total, 2.0);
  EXPECT_LT(total, 60.0);
}

}  // namespace
}  // namespace netcut::hw
