// Memory-planned execution: the planned forward/backward path must be
// bit-identical to the naive (per-node heap allocation) reference path —
// same activations, same collected tensors, same parameter gradients — in
// train and inference mode, at any thread count, on real zoo trunks and on
// a TRN whose head joins the trunk through a multi-input combine node.
// Also pins down the point of the exercise: far fewer heap allocations per
// planned pass, and a planned activation peak below the naive sum.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/trn.hpp"
#include "nn/activation.hpp"
#include "nn/combine.hpp"
#include "nn/conv.hpp"
#include "nn/init.hpp"
#include "nn/memory_plan.hpp"
#include "nn/network.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "zoo/zoo.hpp"

namespace netcut::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

/// Restores the default pool size when a test exits.
struct PoolGuard {
  ~PoolGuard() { util::set_num_threads(util::default_thread_count()); }
};

void expect_bitwise_equal(const Tensor& a, const Tensor& b, const std::string& what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  ASSERT_EQ(std::memcmp(a.data(), b.data(),
                        sizeof(float) * static_cast<std::size_t>(a.numel())),
            0)
      << what;
}

/// Two networks over copies of one initialized graph: `planned` executes
/// through the arena, `naive` through per-node allocation.
struct NetPair {
  Network planned;
  Network naive;

  explicit NetPair(const Graph& g) : planned(g), naive(g) {
    planned.set_memory_planning(true);
    naive.set_memory_planning(false);
  }
};

Graph initialized_trunk(zoo::NetId id, int resolution, unsigned seed) {
  Graph g = zoo::build_trunk(id, resolution);
  util::Rng rng(seed);
  init_graph(g, rng);
  return g;
}

class MemPlanZoo : public ::testing::TestWithParam<zoo::NetId> {};

TEST_P(MemPlanZoo, InferenceBitIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  const Graph g = initialized_trunk(GetParam(), 32, 11);
  util::Rng rng(12);
  const Tensor x = Tensor::randn(Shape::chw(3, 32, 32), rng, 0.5f);
  for (const int threads : {1, 8}) {
    util::set_num_threads(threads);
    NetPair nets(g);
    const Tensor yp = nets.planned.forward(x);
    const Tensor yn = nets.naive.forward(x);
    expect_bitwise_equal(yp, yn,
                         zoo::net_name(GetParam()) + " threads=" + std::to_string(threads));
  }
}

TEST_P(MemPlanZoo, ForwardCollectMatchesNaive) {
  PoolGuard guard;
  const Graph g = initialized_trunk(GetParam(), 32, 21);
  util::Rng rng(22);
  const Tensor x = Tensor::randn(Shape::chw(3, 32, 32), rng, 0.5f);
  std::vector<int> collect;
  for (const BlockInfo& b : g.blocks()) collect.push_back(b.last_node);
  NetPair nets(g);
  const auto ap = nets.planned.forward_collect(x, collect);
  const auto an = nets.naive.forward_collect(x, collect);
  ASSERT_EQ(ap.size(), an.size());
  for (std::size_t i = 0; i < ap.size(); ++i)
    expect_bitwise_equal(ap[i], an[i], "collect[" + std::to_string(i) + "]");
}

TEST_P(MemPlanZoo, PlannedPeakBelowNaiveSum) {
  Graph g = zoo::build_trunk(GetParam(), 32);
  Network net(std::move(g));
  const MemoryPlan& plan = net.plan_for({}, /*train=*/false);
  EXPECT_LT(plan.planned_activation_floats(), plan.naive_activation_floats())
      << zoo::net_name(GetParam());
  EXPECT_GT(plan.planned_activation_floats(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Nets, MemPlanZoo,
                         ::testing::Values(zoo::NetId::kResNet50, zoo::NetId::kMobileNetV2_100,
                                           zoo::NetId::kInceptionV3),
                         [](const ::testing::TestParamInfo<zoo::NetId>& info) {
                           std::string n = zoo::net_name(info.param);
                           for (char& c : n)
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           return n;
                         });

TEST_P(MemPlanZoo, BatchedForwardBitIdenticalToSingleImageForwards) {
  // The serving layer's contract: one batch-N launch through the lane-
  // replicated arena returns exactly what N independent single-image
  // forwards would, at any thread count.
  PoolGuard guard;
  const Graph g = initialized_trunk(GetParam(), 32, 71);
  util::Rng rng(72);
  std::vector<Tensor> images;
  for (int i = 0; i < 5; ++i) images.push_back(Tensor::randn(Shape::chw(3, 32, 32), rng, 0.5f));
  std::vector<const Tensor*> inputs;
  for (const Tensor& t : images) inputs.push_back(&t);

  for (const int threads : {1, 8}) {
    util::set_num_threads(threads);
    NetPair nets(g);
    const std::vector<Tensor> batched = nets.planned.forward_batch(inputs);
    ASSERT_EQ(batched.size(), images.size());
    for (std::size_t i = 0; i < images.size(); ++i) {
      const Tensor single = nets.naive.forward(images[i]);
      expect_bitwise_equal(batched[i], single,
                           zoo::net_name(GetParam()) + " lane " + std::to_string(i) +
                               " threads=" + std::to_string(threads));
    }
  }
}

TEST(MemPlan, DistinctBatchSizesNeverShareAPlan) {
  // Regression: the plan-cache key must include the batch size — a batch-4
  // pass reusing a batch-1 plan would run lanes 1..3 through unreserved
  // arena memory.
  Graph g = zoo::build_trunk(zoo::NetId::kMobileNetV1_025, 32);
  Network net(std::move(g));
  const MemoryPlan& p1 = net.plan_for({}, /*train=*/false, 1);
  EXPECT_EQ(p1.batch(), 1);
  const std::size_t lane = p1.lane_stride();
  EXPECT_EQ(p1.arena_floats(), lane);

  const MemoryPlan& p4 = net.plan_for({}, /*train=*/false, 4);
  EXPECT_EQ(p4.batch(), 4);
  EXPECT_EQ(p4.lane_stride(), lane);  // lane 0 layout is the batch-1 layout
  EXPECT_EQ(p4.arena_floats(), 4 * lane);
  EXPECT_NE(&p1, &p4);

  // Asking for batch 1 again must not hand back the batch-4 plan.
  const MemoryPlan& p1_again = net.plan_for({}, /*train=*/false, 1);
  EXPECT_EQ(p1_again.batch(), 1);
  EXPECT_EQ(p1_again.arena_floats(), lane);
}

TEST(MemPlan, BatchedPlansRejectTrainAndBadBatch) {
  Graph g = zoo::build_trunk(zoo::NetId::kMobileNetV1_025, 32);
  const auto shapes = g.infer_shapes();
  EXPECT_THROW(MemoryPlan(g, shapes, {}, /*train=*/true, 2), std::invalid_argument);
  EXPECT_THROW(MemoryPlan(g, shapes, {}, /*train=*/false, 0), std::invalid_argument);
}

TEST(MemPlan, EveryZooNetPlansBelowNaiveSum) {
  for (const zoo::NetId id : zoo::all_nets()) {
    Graph g = zoo::build_trunk(id, 32);
    Network net(std::move(g));
    const MemoryPlan& inference = net.plan_for({}, /*train=*/false);
    EXPECT_LT(inference.planned_activation_floats(), inference.naive_activation_floats())
        << zoo::net_name(id);
  }
}

TEST(MemPlan, TrainForwardBackwardBitIdentical) {
  // TRN over a MobileNetV2 prefix: the retraining path. The head attaches
  // through the trunk cut, and train-mode passes must produce identical
  // parameter gradients through either execution path.
  PoolGuard guard;
  const Graph trunk = initialized_trunk(zoo::NetId::kMobileNetV2_100, 32, 31);
  const auto cuts = core::blockwise_cutpoints(trunk);
  util::Rng rng(32);
  const Graph trn = core::build_trn(trunk, cuts[cuts.size() / 2], core::HeadConfig{}, rng);

  const Tensor x = Tensor::randn(Shape::chw(3, 32, 32), rng, 0.5f);
  for (const int threads : {1, 8}) {
    util::set_num_threads(threads);
    NetPair nets(trn);
    const Tensor yp = nets.planned.forward(x, /*train=*/true);
    const Tensor yn = nets.naive.forward(x, /*train=*/true);
    expect_bitwise_equal(yp, yn, "train forward, threads=" + std::to_string(threads));

    util::Rng grad_rng(33);
    const Tensor gout = Tensor::randn(yp.shape(), grad_rng);
    nets.planned.zero_grads();
    nets.naive.zero_grads();
    nets.planned.backward(gout);
    nets.naive.backward(gout);
    const auto gp = nets.planned.grads();
    const auto gn = nets.naive.grads();
    ASSERT_EQ(gp.size(), gn.size());
    for (std::size_t i = 0; i < gp.size(); ++i)
      expect_bitwise_equal(*gp[i], *gn[i], "grad[" + std::to_string(i) + "]");
  }
}

TEST(MemPlan, MultiInputCombineBitIdentical) {
  // Diamond with an explicit multi-input combine node, train and inference.
  auto diamond = [] {
    Graph g;
    const int in = g.add_input(Shape::chw(2, 8, 8));
    const int stem = g.add(std::make_unique<Conv2D>(2, 4, 3, 1), {in}, "stem");
    const int a = g.add(std::make_unique<Conv2D>(4, 4, 3, 1), {stem}, "a");
    const int b = g.add(std::make_unique<Conv2D>(4, 4, 1, 1), {stem}, "b");
    const int add = g.add(std::make_unique<Add>(2), {a, b}, "add");
    g.add(std::make_unique<ReLU>(false), {add}, "out");
    return g;
  };
  Graph g = diamond();
  util::Rng rng(41);
  init_graph(g, rng);
  const Tensor x = Tensor::randn(Shape::chw(2, 8, 8), rng, 0.5f);
  for (const bool train : {false, true}) {
    NetPair nets(g);
    const Tensor yp = nets.planned.forward(x, train);
    const Tensor yn = nets.naive.forward(x, train);
    expect_bitwise_equal(yp, yn, train ? "train" : "inference");
  }
}

TEST(MemPlan, RepeatedPlannedForwardsAllocateFarLess) {
  // The acceptance bar for the arena path: a steady-state planned forward
  // performs at least 5x fewer heap allocations than a naive one. The first
  // planned call builds the plan and sizes the arena, so measure from the
  // second call on.
  const Graph g = initialized_trunk(zoo::NetId::kMobileNetV2_100, 32, 51);
  util::Rng rng(52);
  const Tensor x = Tensor::randn(Shape::chw(3, 32, 32), rng, 0.5f);

  NetPair nets(g);
  (void)nets.planned.forward(x);  // warm-up: plan + arena + conv scratch
  (void)nets.naive.forward(x);

  const std::uint64_t p0 = tensor::tensor_alloc_count();
  const Tensor yp = nets.planned.forward(x);
  const std::uint64_t planned_allocs = tensor::tensor_alloc_count() - p0;

  const std::uint64_t n0 = tensor::tensor_alloc_count();
  const Tensor yn = nets.naive.forward(x);
  const std::uint64_t naive_allocs = tensor::tensor_alloc_count() - n0;

  expect_bitwise_equal(yp, yn, "steady-state forward");
  EXPECT_GE(naive_allocs, 5 * planned_allocs)
      << "planned=" << planned_allocs << " naive=" << naive_allocs;
}

TEST(MemPlan, CollectedTensorsOutliveTheArena) {
  // Collected activations must be deep copies: mutating the network's state
  // with further passes may not change previously harvested tensors.
  const Graph g = initialized_trunk(zoo::NetId::kMobileNetV1_025, 32, 61);
  util::Rng rng(62);
  const Tensor x1 = Tensor::randn(Shape::chw(3, 32, 32), rng, 0.5f);
  const Tensor x2 = Tensor::randn(Shape::chw(3, 32, 32), rng, 0.5f);
  Network net(g);
  net.set_memory_planning(true);
  std::vector<int> collect;
  for (const BlockInfo& b : net.graph().blocks()) collect.push_back(b.last_node);
  auto first = net.forward_collect(x1, collect);
  std::vector<Tensor> snapshot;
  for (const Tensor& t : first) snapshot.push_back(t);
  (void)net.forward_collect(x2, collect);  // overwrites the arena
  for (std::size_t i = 0; i < first.size(); ++i)
    expect_bitwise_equal(first[i], snapshot[i], "harvested[" + std::to_string(i) + "]");
}

TEST(MemPlan, PlanIntervalsNeverAliasLiveBuffers) {
  // Structural invariant: two activations whose live intervals overlap must
  // occupy disjoint arena ranges (offsets are in floats; slots are aligned).
  Graph g = zoo::build_trunk(zoo::NetId::kInceptionV3, 32);
  const auto shapes = g.infer_shapes();
  const MemoryPlan plan(g, shapes, {}, /*train=*/false);
  const int n = plan.node_count();
  for (int i = 1; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const bool overlap = i <= plan.last_use(j) && j <= plan.last_use(i);
      if (!overlap) continue;
      const PlanSlot& si = plan.activation(i);
      const PlanSlot& sj = plan.activation(j);
      const bool disjoint =
          si.offset + si.floats <= sj.offset || sj.offset + sj.floats <= si.offset;
      EXPECT_TRUE(disjoint) << "nodes " << i << " and " << j << " alias";
    }
  }
}

}  // namespace
}  // namespace netcut::nn
