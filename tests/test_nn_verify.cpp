// nn::verify — the static-analysis wall between graph transforms and
// execution. Three proof obligations:
//  1. zero findings on every real artifact: all seven zoo trunks, every
//     blockwise/iterative TRN cut site, and every memory plan the planner
//     emits in train and inference mode;
//  2. every seeded defect class (cycle, dangling edge, dead node, arity
//     mismatch, shape contradiction, stale shape cache, aliased plan,
//     NaN-poisoned use-before-write, non-finite output/params, illegal cut
//     site) is caught with its stable rule id;
//  3. the verifier is cheap: full graph+plan verification of ResNet-50
//     costs < 5% of one forward pass.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/trn.hpp"
#include "nn/activation.hpp"
#include "nn/combine.hpp"
#include "nn/conv.hpp"
#include "nn/init.hpp"
#include "nn/memory_plan.hpp"
#include "nn/network.hpp"
#include "nn/pooling.hpp"
#include "nn/serialize.hpp"
#include "nn/verify.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"
#include "zoo/zoo.hpp"

namespace netcut::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

/// Restores the process-wide verify mode when a test exits.
struct ModeGuard {
  VerifyMode saved = verify_mode();
  ~ModeGuard() { set_verify_mode(saved); }
};

Graph diamond_graph() {
  // 0 input -> 1 stem -> {2 a, 3 b} -> 4 add -> 5 out
  Graph g;
  const int in = g.add_input(Shape::chw(2, 8, 8));
  const int stem = g.add(std::make_unique<Conv2D>(2, 4, 3, 1), {in}, "stem");
  const int a = g.add(std::make_unique<Conv2D>(4, 4, 3, 1), {stem}, "a", 0, "blk0");
  const int b = g.add(std::make_unique<Conv2D>(4, 4, 1, 1), {stem}, "b", 0, "blk0");
  const int add = g.add(std::make_unique<Add>(2), {a, b}, "add", 0, "blk0");
  g.add(std::make_unique<ReLU>(false), {add}, "out");
  return g;
}

// ---- 1. Real artifacts verify clean ------------------------------------

TEST(NnVerify, AllZooTrunksVerifyWithZeroFindings) {
  for (const zoo::NetId id : zoo::all_nets()) {
    const Graph g = zoo::build_trunk(id, 32);
    const VerifyReport report = verify_graph(g);
    EXPECT_TRUE(report.findings.empty()) << zoo::net_name(id) << "\n" << report.to_string();
  }
}

TEST(NnVerify, AllZooPlansPassTheIndependentAliasProof) {
  for (const zoo::NetId id : zoo::all_nets()) {
    const Graph g = zoo::build_trunk(id, 32);
    std::vector<int> collect;
    for (const BlockInfo& b : g.blocks()) collect.push_back(b.last_node);
    for (const bool train : {false, true}) {
      for (const std::vector<int>& c : {std::vector<int>{}, collect}) {
        const MemoryPlan plan(g, g.infer_shapes(), c, train);
        const VerifyReport report = verify_plan(g, plan);
        EXPECT_TRUE(report.findings.empty())
            << zoo::net_name(id) << " train=" << train << " collect=" << c.size() << "\n"
            << report.to_string();
      }
    }
  }
}

TEST(NnVerify, EveryBlockwiseCutSiteOfEveryNetIsLegalAndBuildsACleanTrn) {
  util::Rng rng(7);
  for (const zoo::NetId id : zoo::all_nets()) {
    const Graph trunk = zoo::build_trunk(id, 32);
    for (const int cut : core::blockwise_cutpoints(trunk)) {
      EXPECT_TRUE(verify_cut_site(trunk, cut).findings.empty())
          << zoo::net_name(id) << " cut " << cut;
      const Graph trn = core::build_trn(trunk, cut, core::HeadConfig{}, rng);
      const VerifyReport report = verify_graph(trn);
      EXPECT_TRUE(report.findings.empty())
          << zoo::net_name(id) << " cut " << cut << "\n" << report.to_string();
    }
  }
}

TEST(NnVerify, EveryIterativeCutSiteIsLegal) {
  for (const zoo::NetId id : {zoo::NetId::kResNet50, zoo::NetId::kInceptionV3,
                              zoo::NetId::kDenseNet121}) {
    const Graph trunk = zoo::build_trunk(id, 32);
    for (const int cut : core::iterative_cutpoints(trunk))
      EXPECT_TRUE(verify_cut_site(trunk, cut).findings.empty())
          << zoo::net_name(id) << " cut " << cut;
  }
}

// ---- 2. Seeded defect classes ------------------------------------------

TEST(NnVerify, SeededCycleIsCaught) {
  Graph g = diamond_graph();
  g.node(2).inputs = {4};  // 2 <- 4 closes 2 -> 4 -> 2
  g.invalidate_shape_cache();
  const VerifyReport report = verify_graph(g);
  EXPECT_TRUE(report.has(rules::kCycle)) << report.to_string();
  EXPECT_FALSE(report.ok());
}

TEST(NnVerify, SeededDanglingEdgeIsCaught) {
  Graph g = diamond_graph();
  g.node(3).inputs = {99};
  g.invalidate_shape_cache();
  const VerifyReport report = verify_graph(g);
  EXPECT_TRUE(report.has(rules::kDanglingEdge)) << report.to_string();
  EXPECT_FALSE(report.ok());
}

TEST(NnVerify, SeededDeadNodeIsCaught) {
  Graph g;
  const int in = g.add_input(Shape::chw(2, 8, 8));
  const int stem = g.add(std::make_unique<Conv2D>(2, 4, 3, 1), {in}, "stem");
  g.add(std::make_unique<Conv2D>(4, 4, 3, 1), {stem}, "dead");  // nothing consumes this
  g.add(std::make_unique<ReLU>(false), {stem}, "out");
  const VerifyReport report = verify_graph(g);
  EXPECT_TRUE(report.has(rules::kUnreachable)) << report.to_string();
  // Dead nodes are warnings (auxiliary heads are legitimate), not errors.
  EXPECT_TRUE(report.ok());
}

TEST(NnVerify, SeededArityMismatchIsCaught) {
  Graph g = diamond_graph();
  g.node(4).inputs = {2};  // Add declares arity 2
  g.invalidate_shape_cache();
  const VerifyReport report = verify_graph(g);
  EXPECT_TRUE(report.has(rules::kArity)) << report.to_string();
  EXPECT_FALSE(report.ok());
}

TEST(NnVerify, SeededDuplicateEdgeIsCaught) {
  Graph g = diamond_graph();
  g.node(4).inputs = {2, 2};
  g.invalidate_shape_cache();
  EXPECT_TRUE(verify_graph(g).has(rules::kDuplicateEdge));
}

TEST(NnVerify, SeededShapeContradictionIsCaught) {
  Graph g = diamond_graph();
  // Node 3 now demands 8 input channels; its input carries 4.
  g.node(3).layer = std::make_unique<Conv2D>(8, 4, 1, 1);
  g.invalidate_shape_cache();
  const VerifyReport report = verify_graph(g);
  EXPECT_TRUE(report.has(rules::kShape)) << report.to_string();
  EXPECT_FALSE(report.ok());
}

TEST(NnVerify, StaleShapeCacheIsCaught) {
  Graph g = diamond_graph();
  (void)g.infer_shapes();  // populate the cache
  ASSERT_NE(g.cached_shapes(), nullptr);
  // Mutating a node through the non-const accessor without invalidating
  // leaves the cache stale; the verifier's independent re-derivation
  // disagrees with it. GlobalAvgPool keeps the graph well-shaped (CHW in,
  // vector out) so only the cache check can notice.
  g.node(5).layer = std::make_unique<GlobalAvgPool>();
  const VerifyReport stale = verify_graph(g);
  EXPECT_TRUE(stale.has(rules::kShapeCache)) << stale.to_string();
  EXPECT_FALSE(stale.ok());
  g.invalidate_shape_cache();
  EXPECT_TRUE(verify_graph(g).findings.empty());
}

TEST(NnVerify, ShapeCacheInvalidatesOnMutationAndIsSharedByCopies) {
  Graph g = diamond_graph();
  (void)g.infer_shapes();
  ASSERT_NE(g.cached_shapes(), nullptr);
  const Graph copy = g;
  EXPECT_EQ(copy.cached_shapes(), g.cached_shapes());  // shared immutable payload
  g.add(std::make_unique<ReLU>(false), {g.output_node()}, "tail");
  EXPECT_EQ(g.cached_shapes(), nullptr);               // mutation dropped it
  EXPECT_NE(copy.cached_shapes(), nullptr);            // the copy keeps its own
  EXPECT_EQ(g.infer_shapes().size(), 7u);
}

TEST(NnVerify, SeededAliasedPlanIsCaught) {
  // Raw slot proof: two slots that overlap in both time and space.
  VerifyReport raw;
  check_slots({SlotView{1, false, 0, 64, 1, 3}, SlotView{2, false, 32, 64, 2, 4}}, 128, raw);
  EXPECT_TRUE(raw.has(rules::kPlanAlias)) << raw.to_string();

  // End-to-end: a plan built for a chain where node 1 dies at node 2 lets
  // node 3 reuse node 1's bytes. Verified against a graph whose last node
  // still reads node 1, the reuse is an alias and the recorded interval a
  // lie — the independent re-derivation must flag both.
  auto chain = [](int last_input) {
    Graph g;
    const int in = g.add_input(Shape::chw(4, 8, 8));
    const int n1 = g.add(std::make_unique<ReLU>(false), {in}, "n1");
    const int n2 = g.add(std::make_unique<ReLU>(false), {n1}, "n2");
    const int n3 = g.add(std::make_unique<ReLU>(false), {n2}, "n3");
    g.add(std::make_unique<ReLU>(false), {last_input == 1 ? n1 : n3}, "n4");
    return g;
  };
  const Graph honest = chain(3);
  const Graph pinned = chain(1);
  const MemoryPlan plan(honest, honest.infer_shapes(), {}, /*train=*/false);
  ASSERT_TRUE(verify_plan(honest, plan).findings.empty());
  const VerifyReport report = verify_plan(pinned, plan);
  EXPECT_TRUE(report.has(rules::kPlanInterval)) << report.to_string();
  EXPECT_TRUE(report.has(rules::kPlanAlias)) << report.to_string();
}

TEST(NnVerify, SlotBeyondArenaCapacityIsCaught) {
  VerifyReport report;
  check_slots({SlotView{1, false, 96, 64, 1, 2}}, 128, report);
  EXPECT_TRUE(report.has(rules::kPlanCapacity)) << report.to_string();
}

/// A layer that writes only the first half of its output buffer — the
/// use-before-write defect the poison guard exists for.
class HalfWriter final : public Layer {
 public:
  LayerKind kind() const override { return LayerKind::kReLU; }
  std::unique_ptr<Layer> clone() const override { return std::make_unique<HalfWriter>(*this); }
  Shape output_shape(const std::vector<Shape>& in) const override {
    require_arity(in, 1, "HalfWriter");
    return in[0];
  }
  Tensor forward(const std::vector<const Tensor*>& in, bool train) override {
    Tensor out(in[0]->shape());
    forward_into(in, out, train, nullptr);
    return out;
  }
  void forward_into(const std::vector<const Tensor*>& in, Tensor& out, bool /*train*/,
                    float* /*scratch*/) override {
    for (std::int64_t i = 0; i < out.numel() / 2; ++i) out[i] = (*in[0])[i];
  }
  std::vector<Tensor> backward(const Tensor& grad_out) override { return {grad_out}; }
  LayerCost cost(const std::vector<Shape>&) const override { return {}; }
};

TEST(NnVerify, PoisonGuardCatchesUseBeforeWrite) {
  ModeGuard guard;
  // HalfWriter consumes the graph input directly so its arena slot cannot
  // reuse bytes some earlier layer already wrote: the unwritten half still
  // carries the poison pattern verbatim when the scan runs.
  Graph g;
  const int in = g.add_input(Shape::chw(2, 8, 8));
  g.add(std::make_unique<HalfWriter>(), {in}, "half");
  util::Rng rng(3);
  init_graph(g, rng);
  Network net(std::move(g));
  net.set_memory_planning(true);
  const Tensor x = Tensor::randn(Shape::chw(2, 8, 8), rng, 0.5f);

  set_verify_mode(VerifyMode::kStatic);
  EXPECT_NO_THROW(net.forward(x));  // guard off: the bug executes silently

  set_verify_mode(VerifyMode::kRuntime);
  try {
    net.forward(x);
    FAIL() << "poison guard did not fire";
  } catch (const VerifyError& e) {
    EXPECT_TRUE(e.report().has(rules::kUseBeforeWrite)) << e.what();
  }
}

/// A layer that emits an Inf — the exploding-activation defect.
class InfWriter final : public Layer {
 public:
  LayerKind kind() const override { return LayerKind::kReLU; }
  std::unique_ptr<Layer> clone() const override { return std::make_unique<InfWriter>(*this); }
  Shape output_shape(const std::vector<Shape>& in) const override { return in[0]; }
  Tensor forward(const std::vector<const Tensor*>& in, bool train) override {
    Tensor out(in[0]->shape());
    forward_into(in, out, train, nullptr);
    return out;
  }
  void forward_into(const std::vector<const Tensor*>& in, Tensor& out, bool /*train*/,
                    float* /*scratch*/) override {
    out.copy_from(*in[0]);
    out[0] = 1e30f;
    out[0] *= 1e30f;  // +inf
  }
  std::vector<Tensor> backward(const Tensor& grad_out) override { return {grad_out}; }
  LayerCost cost(const std::vector<Shape>&) const override { return {}; }
};

TEST(NnVerify, RuntimeGuardCatchesNonFiniteActivations) {
  ModeGuard guard;
  Graph g;
  g.add_input(Shape::chw(2, 4, 4));
  g.add(std::make_unique<InfWriter>(), {0}, "boom");
  Network net(std::move(g));
  util::Rng rng(4);
  const Tensor x = Tensor::randn(Shape::chw(2, 4, 4), rng, 0.5f);
  set_verify_mode(VerifyMode::kRuntime);
  for (const bool planned : {true, false}) {
    net.set_memory_planning(planned);
    try {
      net.forward(x);
      FAIL() << "numerics guard did not fire (planned=" << planned << ")";
    } catch (const VerifyError& e) {
      EXPECT_TRUE(e.report().has(rules::kNonFinite)) << e.what();
    }
  }
}

TEST(NnVerify, RuntimeGuardIsCleanOnARealNet) {
  ModeGuard guard;
  set_verify_mode(VerifyMode::kRuntime);
  Graph g = zoo::build_trunk(zoo::NetId::kMobileNetV1_025, 32);
  util::Rng rng(5);
  init_graph(g, rng);
  Network net(std::move(g));
  const Tensor x = Tensor::randn(Shape::chw(3, 32, 32), rng, 0.5f);
  for (const bool planned : {true, false}) {
    net.set_memory_planning(planned);
    EXPECT_NO_THROW(net.forward(x)) << "planned=" << planned;
  }
}

TEST(NnVerify, IllegalCutSiteInsideABlockIsRejected) {
  const Graph trunk = zoo::build_trunk(zoo::NetId::kResNet50, 32);
  const std::vector<int> doms = trunk.output_dominators();
  // Find a block-interior node that is not a dominator: one branch of a
  // residual Add. Cutting there severs the other operand.
  int inside = -1;
  for (int id = 1; id < trunk.node_count() && inside < 0; ++id)
    if (trunk.node(id).block_id >= 0 &&
        !std::binary_search(doms.begin(), doms.end(), id))
      inside = id;
  ASSERT_GT(inside, 0);
  const VerifyReport report = verify_cut_site(trunk, inside);
  EXPECT_TRUE(report.has(rules::kCutSite)) << report.to_string();

  util::Rng rng(6);
  EXPECT_THROW(core::build_trn(trunk, inside, core::HeadConfig{}, rng), VerifyError);
}

TEST(NnVerify, LoadParamsRejectsNonFiniteWeights) {
  Graph g = diamond_graph();
  util::Rng rng(8);
  init_graph(g, rng);
  static_cast<Conv2D&>(*g.node(1).layer).weight()[3] = 1e30f * 1e30f;  // inf
  const std::string path = ::testing::TempDir() + "netcut_verify_nan_params.bin";
  save_params(g, path);
  Graph fresh = diamond_graph();
  try {
    load_params(fresh, path);
    FAIL() << "load_params accepted non-finite weights";
  } catch (const VerifyError& e) {
    EXPECT_TRUE(e.report().has(rules::kParamNonFinite)) << e.what();
  }
  std::remove(path.c_str());
}

TEST(NnVerify, CheckHooksAreNoOpsWhenVerificationIsOff) {
  ModeGuard guard;
  set_verify_mode(VerifyMode::kOff);
  Graph g = diamond_graph();
  g.node(4).inputs = {2};  // arity defect
  g.invalidate_shape_cache();
  EXPECT_NO_THROW(check_graph(g, "test"));
  set_verify_mode(VerifyMode::kStatic);
  EXPECT_THROW(check_graph(g, "test"), VerifyError);
}

// ---- 3. Overhead budget ------------------------------------------------

TEST(NnVerify, FullVerificationCostsUnderFivePercentOfAForwardPass) {
  Graph g = zoo::build_trunk(zoo::NetId::kResNet50, 32);
  util::Rng rng(9);
  init_graph(g, rng);
  const MemoryPlan plan(g, g.infer_shapes(), {}, /*train=*/false);
  Network net(g);
  const Tensor x = Tensor::randn(Shape::chw(3, 32, 32), rng, 0.5f);
  (void)net.forward(x);  // warm up: plan, arena, conv scratch

  using clock = std::chrono::steady_clock;
  auto min_of = [](auto&& fn, int reps) {
    std::chrono::nanoseconds best = std::chrono::nanoseconds::max();
    for (int i = 0; i < reps; ++i) {
      const auto t0 = clock::now();
      fn();
      best = std::min(best, std::chrono::duration_cast<std::chrono::nanoseconds>(
                                clock::now() - t0));
    }
    return best;
  };

  const auto forward_ns = min_of([&] { (void)net.forward(x); }, 3);
  const auto verify_ns = min_of(
      [&] {
        const VerifyReport a = verify_graph(g);
        const VerifyReport b = verify_plan(g, plan);
        ASSERT_TRUE(a.ok() && b.ok());
      },
      3);
  EXPECT_LT(verify_ns.count(), forward_ns.count() / 20)
      << "verify " << verify_ns.count() << " ns vs forward " << forward_ns.count() << " ns";
}

}  // namespace
}  // namespace netcut::nn
