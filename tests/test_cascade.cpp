// Input-adaptive TRN cascade (core/cascade.hpp): prefix-resume bitwise
// identities, degenerate-threshold equivalences, calibration monotonicity,
// spec-grammar round-trip + fuzz, and the golden (threshold x cut) Pareto
// front asserting the combined front dominates the single-cut front.
//
// Bitwise claims here are exact float comparisons: both TRNs of a cascade
// clone their weights from one trunk, kernels are deterministic at any
// NETCUT_THREADS, and forward_from is the suffix of the very computation
// the deep TRN's full forward runs.
//
// Regenerate the golden front after an intentional behaviour change:
//   NETCUT_GOLDEN_REGEN=1 ./build/tests/test_cascade
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/cascade.hpp"
#include "golden.hpp"
#include "util/thread_pool.hpp"
#include "zoo/zoo.hpp"

namespace netcut::core {
namespace {

#ifndef NETCUT_GOLDEN_DIR
#error "NETCUT_GOLDEN_DIR must point at the checked-in golden files"
#endif

bool bitwise_equal(const tensor::Tensor& a, const tensor::Tensor& b) {
  if (a.shape() != b.shape()) return false;
  return std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.numel()) * sizeof(float)) == 0;
}

// ---- Spec grammar ------------------------------------------------------

TEST(CascadeSpec_, ParsesFullSpec) {
  const CascadeSpec s = parse_cascade_spec("shallow=1,deep=3,thr=0.25");
  EXPECT_TRUE(s.enabled);
  EXPECT_EQ(s.shallow, 1);
  EXPECT_EQ(s.deep, 3);
  EXPECT_DOUBLE_EQ(s.threshold, 0.25);
}

TEST(CascadeSpec_, OffAndEmptyDisable) {
  EXPECT_EQ(parse_cascade_spec("off"), CascadeSpec{});
  EXPECT_EQ(parse_cascade_spec(""), CascadeSpec{});
  EXPECT_EQ(format_cascade_spec(CascadeSpec{}), "off");
}

TEST(CascadeSpec_, RoundTripIsLossless) {
  for (const char* spec : {"off", "shallow=0,deep=1,thr=0", "shallow=2,deep=7,thr=0.15",
                           "shallow=1,deep=12,thr=0.33333333333333331", "thr=1,shallow=0,deep=9"}) {
    const CascadeSpec c = parse_cascade_spec(spec);
    EXPECT_EQ(parse_cascade_spec(format_cascade_spec(c)), c) << spec;
  }
}

TEST(CascadeSpec_, MalformedSpecsThrow) {
  for (const char* spec :
       {"banana", "shallow=1", "deep=2,thr=0.5", "shallow=1,deep=2", "shallow=x,deep=2,thr=0.5",
        "shallow=1,deep=2,thr=1.5", "shallow=1,deep=2,thr=-0.1", "shallow=2,deep=2,thr=0.5",
        "shallow=3,deep=1,thr=0.5", "shallow=-1,deep=2,thr=0.5", "shallow=1.5,deep=2,thr=0.5",
        "shallow=1,deep=2,thr=0.5,bogus=7", "shallow==1,deep=2,thr=0.5"}) {
    EXPECT_THROW(parse_cascade_spec(spec), std::invalid_argument) << spec;
  }
}

TEST(CascadeSpec_, TokenSoupFuzzNeverCrashesOrYieldsIllegalSpec) {
  // Random token soup over the grammar's alphabet: every outcome must be a
  // clean std::invalid_argument or a spec the rest of the system can trust
  // (enabled implies shallow < deep and threshold in [0,1]).
  const std::string alphabet = "shalowdepthr=,.0123456789-+exf";
  util::Rng rng(util::derive_seed(20260808, "cascade/fuzz"));
  for (int iter = 0; iter < 500; ++iter) {
    std::string soup;
    const int len = rng.uniform_int(0, 40);
    for (int i = 0; i < len; ++i)
      soup += alphabet[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(alphabet.size()) - 1))];
    try {
      const CascadeSpec s = parse_cascade_spec(soup);
      if (s.enabled) {
        EXPECT_LT(s.shallow, s.deep) << soup;
        EXPECT_GE(s.shallow, 0) << soup;
        EXPECT_GE(s.threshold, 0.0) << soup;
        EXPECT_LE(s.threshold, 1.0) << soup;
        // Whatever parses must round-trip losslessly.
        EXPECT_EQ(parse_cascade_spec(format_cascade_spec(s)), s) << soup;
      }
    } catch (const std::invalid_argument&) {
      // the contract: malformed input throws exactly this
    }
  }
}

TEST(SoftmaxMargin_, TopTwoGap) {
  tensor::Tensor p(tensor::Shape::vec(4));
  p[0] = 0.1f;
  p[1] = 0.6f;
  p[2] = 0.25f;
  p[3] = 0.05f;
  EXPECT_NEAR(softmax_margin(p), 0.35, 1e-7);
  EXPECT_THROW(softmax_margin(tensor::Tensor()), std::invalid_argument);
}

// ---- CascadeTrn bitwise identities -------------------------------------

class CascadeTrnTest : public ::testing::Test {
 protected:
  static constexpr int kRes = 32;

  CascadeTrn make_cascade(int& shallow, int& deep) {
    trunk_ = zoo::build_trunk(zoo::NetId::kMobileNetV1_025, kRes);
    const std::vector<int> cuts = blockwise_cutpoints(trunk_);
    shallow = cuts[cuts.size() / 3];
    deep = cuts[cuts.size() - 1];
    util::Rng rng(7);
    return CascadeTrn(trunk_, shallow, deep, HeadConfig{}, rng);
  }

  nn::Graph trunk_;
};

TEST_F(CascadeTrnTest, RejectsInvertedCutOrder) {
  nn::Graph trunk = zoo::build_trunk(zoo::NetId::kMobileNetV1_025, kRes);
  const std::vector<int> cuts = blockwise_cutpoints(trunk);
  util::Rng rng(7);
  EXPECT_THROW(CascadeTrn(trunk, cuts.back(), cuts.front(), HeadConfig{}, rng),
               std::invalid_argument);
  EXPECT_THROW(CascadeTrn(trunk, cuts.front(), cuts.front(), HeadConfig{}, rng),
               std::invalid_argument);
}

TEST_F(CascadeTrnTest, PrefixResumeBitwiseEqualsDeepForwardAtThreads1And8) {
  int shallow = 0, deep = 0;
  CascadeTrn cascade = make_cascade(shallow, deep);
  util::Rng rng(11);
  const tensor::Tensor input = tensor::Tensor::randn(tensor::Shape::chw(3, kRes, kRes), rng, 0.5f);

  const int before = util::num_threads();
  for (const int threads : {1, 8}) {
    util::set_num_threads(threads);
    const tensor::Tensor direct = cascade.deep().forward(input);
    const CascadeTrn::Stage1 s1 = cascade.stage1(input);
    const tensor::Tensor resumed = cascade.escalate(s1);
    EXPECT_TRUE(bitwise_equal(resumed, direct)) << "threads=" << threads;
  }
  util::set_num_threads(before);
}

TEST_F(CascadeTrnTest, PrefixResumeBitwiseOnNaivePath) {
  int shallow = 0, deep = 0;
  CascadeTrn cascade = make_cascade(shallow, deep);
  cascade.shallow().set_memory_planning(false);
  cascade.deep().set_memory_planning(false);
  util::Rng rng(12);
  const tensor::Tensor input = tensor::Tensor::randn(tensor::Shape::chw(3, kRes, kRes), rng, 0.5f);
  const tensor::Tensor direct = cascade.deep().forward(input);
  const tensor::Tensor resumed = cascade.escalate(cascade.stage1(input));
  EXPECT_TRUE(bitwise_equal(resumed, direct));
}

TEST_F(CascadeTrnTest, DegenerateThresholdsRecoverTheStaticCuts) {
  int shallow = 0, deep = 0;
  CascadeTrn cascade = make_cascade(shallow, deep);
  util::Rng rng(13);
  for (int i = 0; i < 4; ++i) {
    const tensor::Tensor input =
        tensor::Tensor::randn(tensor::Shape::chw(3, kRes, kRes), rng, 0.5f);

    // thr = 0: margin < 0 is impossible — every input exits shallow.
    const CascadeTrn::Result exit_all = cascade.classify(input, 0.0);
    EXPECT_FALSE(exit_all.escalated);
    EXPECT_TRUE(bitwise_equal(exit_all.output, cascade.shallow().forward(input)));

    // thr > 1: margin <= 1 always — every input escalates to the deep cut.
    const CascadeTrn::Result escalate_all = cascade.classify(input, 1.1);
    EXPECT_TRUE(escalate_all.escalated);
    EXPECT_TRUE(bitwise_equal(escalate_all.output, cascade.deep().forward(input)));
  }
}

TEST_F(CascadeTrnTest, EscalateBatchBitwiseEqualsSingles) {
  int shallow = 0, deep = 0;
  CascadeTrn cascade = make_cascade(shallow, deep);
  util::Rng rng(17);
  std::vector<tensor::Tensor> inputs;
  for (int i = 0; i < 5; ++i)
    inputs.push_back(tensor::Tensor::randn(tensor::Shape::chw(3, kRes, kRes), rng, 0.5f));
  std::vector<const tensor::Tensor*> in_ptrs;
  for (const tensor::Tensor& t : inputs) in_ptrs.push_back(&t);

  const std::vector<CascadeTrn::Stage1> stages = cascade.stage1_batch(in_ptrs);
  std::vector<const CascadeTrn::Stage1*> stage_ptrs;
  for (const CascadeTrn::Stage1& s : stages) stage_ptrs.push_back(&s);

  const int before = util::num_threads();
  util::set_num_threads(8);
  const std::vector<tensor::Tensor> batched = cascade.escalate_batch(stage_ptrs);
  util::set_num_threads(before);
  ASSERT_EQ(batched.size(), stages.size());
  for (std::size_t i = 0; i < stages.size(); ++i) {
    EXPECT_TRUE(bitwise_equal(batched[i], cascade.escalate(stages[i]))) << i;
    EXPECT_TRUE(bitwise_equal(batched[i], cascade.deep().forward(inputs[i]))) << i;
  }
}

TEST_F(CascadeTrnTest, SameSeedDecisionsAreDeterministicUnderChaos) {
  // Cascade decisions are pure functions of (trunk seed, input): the fault
  // layer perturbs simulated measurements, never network execution, so two
  // same-seed cascades agree bit-for-bit on every decision whether or not a
  // NETCUT_FAULTS chaos schedule is active in the environment.
  nn::Graph trunk = zoo::build_trunk(zoo::NetId::kMobileNetV1_025, kRes);
  const std::vector<int> cuts = blockwise_cutpoints(trunk);
  util::Rng rng_a(21), rng_b(21);
  CascadeTrn a(trunk, cuts[2], cuts.back(), HeadConfig{}, rng_a);
  CascadeTrn b(trunk, cuts[2], cuts.back(), HeadConfig{}, rng_b);

  util::Rng rng(22);
  for (int i = 0; i < 6; ++i) {
    const tensor::Tensor input =
        tensor::Tensor::randn(tensor::Shape::chw(3, kRes, kRes), rng, 0.5f);
    const CascadeTrn::Result ra = a.classify(input, 0.3);
    const CascadeTrn::Result rb = b.classify(input, 0.3);
    EXPECT_EQ(ra.escalated, rb.escalated) << i;
    EXPECT_EQ(ra.margin, rb.margin) << i;
    EXPECT_TRUE(bitwise_equal(ra.output, rb.output)) << i;
  }
}

// ---- Calibration + golden front ----------------------------------------

// Heavier than the usual tiny fixtures: the dominance claim needs deep
// features that actually transfer, which needs real pretraining (a starved
// source task leaves deep features no better than shallow ones and the
// premise of escalation collapses).
data::HandsConfig cascade_data() {
  data::HandsConfig c;
  c.resolution = 24;
  c.train_count = 200;
  c.test_count = 80;
  return c;
}

EvalConfig cascade_eval() {
  EvalConfig c;
  c.resolution = 24;
  c.epochs = 15;
  c.cache_path.clear();  // no cross-test memoization
  c.pretrained.source_images = 400;
  c.pretrained.epochs = 16;
  return c;
}

class CascadeExplorerTest : public ::testing::Test {
 protected:
  CascadeExplorerTest()
      : dataset_(cascade_data()), evaluator_(dataset_, cascade_eval()),
        explorer_(evaluator_, lab_) {}

  // A mid-depth cut window (blockwise ordinals 2/4/6). At test scale the
  // very first blocks are anomalously strong on the synthetic task
  // (directional accuracy-vs-depth holds at full experiment scale only —
  // see test_integration), so the sweep targets the window where the
  // transfer premise is real.
  std::vector<int> test_cuts(zoo::NetId net) {
    const std::vector<int>& blocks = lab_.blockwise(net);
    return {blocks[2], blocks[4], blocks[6]};
  }

  LatencyLab lab_;
  data::HandsDataset dataset_;
  TrnEvaluator evaluator_;
  CascadeExplorer explorer_;
};

TEST_F(CascadeExplorerTest, EscalationRateMonotoneInThreshold) {
  const zoo::NetId net = zoo::NetId::kMobileNetV1_025;
  const std::vector<int> cuts = test_cuts(net);
  double prev = -1.0;
  for (const double thr : {0.0, 0.05, 0.1, 0.2, 0.3, 0.5, 0.8, 1.0}) {
    const double rate = explorer_.escalation_rate(net, cuts.front(), thr);
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 1.0);
    EXPECT_GE(rate, prev) << "thr=" << thr;  // more required confidence, more escalation
    prev = rate;
  }
  // The degenerate thresholds pin the endpoints: thr=0 never escalates.
  EXPECT_DOUBLE_EQ(explorer_.escalation_rate(net, cuts.front(), 0.0), 0.0);
}

TEST_F(CascadeExplorerTest, OperatingPointCompositionIsConsistent) {
  const zoo::NetId net = zoo::NetId::kMobileNetV1_025;
  const std::vector<int> cuts = test_cuts(net);
  const CascadeOperatingPoint p = explorer_.operating_point(net, cuts[0], cuts[2], 0.2);
  EXPECT_DOUBLE_EQ(p.p_escalate, explorer_.escalation_rate(net, cuts[0], 0.2));
  EXPECT_NEAR(p.latency_ms,
              lab_.measured_ms(net, cuts[0]) +
                  p.p_escalate * lab_.measured_stage2_ms(net, cuts[0], cuts[2]),
              1e-12);
  // The second stage is cheaper than the full deep TRN (the shared prefix
  // is never paid twice) but more than nothing.
  EXPECT_GT(lab_.true_stage2_ms(net, cuts[0], cuts[2]), 0.0);
  EXPECT_LT(lab_.true_stage2_ms(net, cuts[0], cuts[2]), lab_.true_ms(net, cuts[2]));
  EXPECT_THROW(explorer_.operating_point(net, cuts[2], cuts[0], 0.2), std::invalid_argument);
}

TEST_F(CascadeExplorerTest, GoldenFrontDominatesSingleCutsOnTwoTrunks) {
  golden::Metrics metrics;
  int improved = 0;
  for (const zoo::NetId net : {zoo::NetId::kMobileNetV1_025, zoo::NetId::kMobileNetV1_050}) {
    const std::vector<int> cuts = test_cuts(net);
    const std::vector<CascadeOperatingPoint> sweep =
        explorer_.sweep(net, cuts, CascadeExplorer::default_thresholds());
    const std::vector<TradeoffPoint> single_front =
        pareto_frontier(explorer_.single_cut_points(net, cuts));
    ASSERT_FALSE(single_front.empty());

    const bool improves = cascade_improves(sweep, single_front);
    if (improves) ++improved;

    // Combined front: single cuts + cascade points, pareto-filtered.
    std::vector<TradeoffPoint> combined = explorer_.single_cut_points(net, cuts);
    for (const CascadeOperatingPoint& p : sweep) combined.push_back(p.as_tradeoff());
    const std::vector<TradeoffPoint> front = pareto_frontier(combined);

    double best_acc = 0.0, best_acc_latency = 0.0;
    for (const TradeoffPoint& tp : front)
      if (tp.accuracy > best_acc) {
        best_acc = tp.accuracy;
        best_acc_latency = tp.latency_ms;
      }

    const std::string prefix = "cascade/" + zoo::net_name(net) + "/";
    metrics[prefix + "improves"] = improves ? 1.0 : 0.0;
    metrics[prefix + "front_best_accuracy"] = best_acc;
    metrics[prefix + "front_best_latency_ms"] = best_acc_latency;
    // A fixed operating point, pinned end to end (continuous in the
    // measurement stream, so a chaos schedule stays inside tolerance).
    const CascadeOperatingPoint fixed = explorer_.operating_point(net, cuts[0], cuts[2], 0.2);
    metrics[prefix + "fixed/p_escalate"] = fixed.p_escalate;
    metrics[prefix + "fixed/accuracy"] = fixed.accuracy;
    metrics[prefix + "fixed/latency_ms"] = fixed.latency_ms;
  }
  EXPECT_EQ(improved, 2) << "cascade must strictly improve on both zoo trunks";

  const std::string path = std::string(NETCUT_GOLDEN_DIR) + "/cascade_front.json";
  if (golden::regen_requested()) {
    golden::save(path, metrics);
    GTEST_SKIP() << "regenerated " << path;
  }
  const golden::Metrics want = golden::load(path);
  // Latencies carry measurement noise (chaos schedules inflate draws);
  // accuracies and escalation rates are deterministic training artifacts.
  const std::vector<std::string> problems =
      golden::diff(want, metrics, {/*rel=*/0.10, /*abs=*/0.005},
                   {{"cascade/", {/*rel=*/0.10, /*abs=*/0.005}},
                    {"improves", {/*rel=*/0.0, /*abs=*/0.0}}});
  for (const std::string& p : problems) ADD_FAILURE() << p;
}

}  // namespace
}  // namespace netcut::core
