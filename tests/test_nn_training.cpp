// End-to-end training behaviour: losses, optimizers, and that small
// networks actually learn under the framework's backprop.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/activation.hpp"
#include "nn/conv.hpp"
#include "nn/dense.hpp"
#include "nn/graph.hpp"
#include "nn/init.hpp"
#include "nn/loss.hpp"
#include "nn/network.hpp"
#include "nn/norm.hpp"
#include "nn/optimizer.hpp"
#include "nn/pooling.hpp"
#include "util/rng.hpp"

namespace netcut::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(Loss, SoftCrossEntropyGradientIsSoftmaxMinusTarget) {
  Tensor logits(Shape::vec(3));
  logits[0] = 0.2f; logits[1] = -0.4f; logits[2] = 1.1f;
  Tensor target(Shape::vec(3));
  target[0] = 0.5f; target[1] = 0.3f; target[2] = 0.2f;
  const auto r = loss::soft_cross_entropy(logits, target);
  const Tensor p = softmax(logits);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(r.grad[i], p[i] - target[i], 1e-6f);
  EXPECT_GT(r.value, 0.0);
}

TEST(Loss, CrossEntropyMinimizedWhenPredictionMatchesTarget) {
  Tensor target(Shape::vec(3));
  target[0] = 0.6f; target[1] = 0.3f; target[2] = 0.1f;
  Tensor matching(Shape::vec(3));
  for (int i = 0; i < 3; ++i) matching[i] = std::log(target[i]);
  const double at_target = loss::soft_cross_entropy(matching, target).value;
  Tensor off(Shape::vec(3));
  off[0] = 2.0f; off[1] = -1.0f; off[2] = 0.0f;
  EXPECT_LT(at_target, loss::soft_cross_entropy(off, target).value);
}

TEST(Loss, KlDivergenceProperties) {
  Tensor p(Shape::vec(2));
  p[0] = 0.7f; p[1] = 0.3f;
  EXPECT_NEAR(loss::kl_divergence(p, p), 0.0, 1e-6);
  Tensor q(Shape::vec(2));
  q[0] = 0.3f; q[1] = 0.7f;
  EXPECT_GT(loss::kl_divergence(p, q), 0.0);
}

TEST(Loss, MseValueAndGradient) {
  Tensor pred(Shape::vec(2));
  pred[0] = 1.0f; pred[1] = 3.0f;
  Tensor target(Shape::vec(2), 2.0f);
  const auto r = loss::mse(pred, target);
  EXPECT_NEAR(r.value, 1.0, 1e-6);
  EXPECT_NEAR(r.grad[0], -1.0f, 1e-6f);
  EXPECT_NEAR(r.grad[1], 1.0f, 1e-6f);
}

/// y = Wx regression: SGD and Adam must drive the loss near zero.
template <typename Opt>
double train_linear_regression(Opt&& opt, int epochs) {
  util::Rng rng(42);
  Graph g;
  const int in = g.add_input(Shape::vec(4));
  auto fc = std::make_unique<Dense>(4, 2);
  xavier_init_dense(fc->weight(), rng);
  g.add(std::move(fc), {in}, "fc");
  Network net(std::move(g));

  // Ground-truth weights.
  Tensor wtrue(Shape{2, 4});
  for (int i = 0; i < 8; ++i) wtrue[i] = static_cast<float>(0.3 * (i % 5) - 0.5);

  std::vector<Tensor> xs, ys;
  for (int i = 0; i < 64; ++i) {
    Tensor x = Tensor::randn(Shape::vec(4), rng);
    Tensor y(Shape::vec(2));
    for (int o = 0; o < 2; ++o) {
      float s = 0.0f;
      for (int k = 0; k < 4; ++k) s += wtrue[o * 4 + k] * x[k];
      y[o] = s;
    }
    xs.push_back(std::move(x));
    ys.push_back(std::move(y));
  }

  opt.bind(net.params(), net.grads());
  double last = 0.0;
  for (int e = 0; e < epochs; ++e) {
    last = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      net.zero_grads();
      const Tensor pred = net.forward(xs[i], true);
      const auto r = loss::mse(pred, ys[i]);
      net.backward(r.grad);
      opt.step();
      last += r.value;
    }
    last /= static_cast<double>(xs.size());
  }
  return last;
}

TEST(Optimizer, SgdConvergesOnLinearRegression) {
  EXPECT_LT(train_linear_regression(Sgd(0.05, 0.9), 60), 1e-4);
}

TEST(Optimizer, AdamConvergesOnLinearRegression) {
  EXPECT_LT(train_linear_regression(Adam(0.02), 60), 1e-4);
}

TEST(Optimizer, BindValidatesShapes) {
  Sgd opt(0.1);
  Tensor p(Shape::vec(3)), g(Shape::vec(4));
  EXPECT_THROW(opt.bind({&p}, {&g}), std::invalid_argument);
  EXPECT_THROW(opt.bind({&p}, {}), std::invalid_argument);
}

TEST(Training, TinyCnnLearnsToClassify) {
  // Two 6x6 single-channel patterns (vertical vs horizontal bar) must be
  // separable by a conv net trained with full backprop through conv, bn,
  // pooling, and dense layers.
  util::Rng rng(7);
  Graph g;
  int x = g.add_input(Shape::chw(1, 6, 6));
  auto conv = std::make_unique<Conv2D>(1, 4, 3, 1);
  he_init_conv(conv->weight(), rng);
  x = g.add(std::move(conv), {x}, "conv");
  x = g.add(std::make_unique<ReLU>(false), {x}, "relu");
  x = g.add(std::make_unique<GlobalAvgPool>(), {x}, "gap");
  auto fc = std::make_unique<Dense>(4, 2);
  xavier_init_dense(fc->weight(), rng);
  g.add(std::move(fc), {x}, "fc");
  Network net(std::move(g));

  auto make_sample = [&](bool vertical) {
    Tensor img(Shape::chw(1, 6, 6));
    const int pos = rng.uniform_int(1, 4);
    for (int i = 0; i < 6; ++i) {
      if (vertical)
        img.at(0, i, pos) = 1.0f;
      else
        img.at(0, pos, i) = 1.0f;
    }
    for (std::int64_t i = 0; i < img.numel(); ++i)
      img[i] += static_cast<float>(rng.normal(0.0, 0.05));
    return img;
  };

  Adam opt(0.01);
  opt.bind(net.params(), net.grads());
  for (int step = 0; step < 400; ++step) {
    const bool vertical = step % 2 == 0;
    Tensor target(Shape::vec(2));
    target[vertical ? 0 : 1] = 1.0f;
    net.zero_grads();
    const Tensor logits = net.forward(make_sample(vertical), true);
    net.backward(loss::soft_cross_entropy(logits, target).grad);
    opt.step();
  }

  int correct = 0;
  for (int i = 0; i < 60; ++i) {
    const bool vertical = i % 2 == 0;
    const Tensor logits = net.forward(make_sample(vertical), false);
    const bool pred_vertical = logits[0] > logits[1];
    if (pred_vertical == vertical) ++correct;
  }
  EXPECT_GE(correct, 55) << "CNN failed to learn a trivially separable task";
}

TEST(Init, HeAndXavierScales) {
  util::Rng rng(3);
  Tensor w(Shape{32, 16, 3, 3});
  he_init_conv(w, rng);
  double var = 0.0;
  for (std::int64_t i = 0; i < w.numel(); ++i) var += w[i] * w[i];
  var /= static_cast<double>(w.numel());
  EXPECT_NEAR(var, 2.0 / (16 * 9), 2.0 / (16 * 9) * 0.2);

  Tensor d(Shape{64, 64});
  xavier_init_dense(d, rng);
  EXPECT_LE(d.max(), std::sqrt(6.0 / 128) + 1e-6);
  EXPECT_GE(d.min(), -std::sqrt(6.0 / 128) - 1e-6);
}

}  // namespace
}  // namespace netcut::nn
