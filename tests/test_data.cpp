// Synthetic dataset, pseudo-pretrained weight generation, and EMG stream.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/emg.hpp"
#include "data/hands.hpp"
#include "data/pretrained.hpp"
#include "zoo/zoo.hpp"

namespace netcut::data {
namespace {

HandsConfig small_config() {
  HandsConfig c;
  c.resolution = 24;
  c.train_count = 50;
  c.test_count = 20;
  return c;
}

TEST(HandsDataset, SplitSizesAndShapes) {
  const HandsDataset ds(small_config());
  EXPECT_EQ(ds.train().size(), 50u);
  EXPECT_EQ(ds.test().size(), 20u);
  for (const Sample& s : ds.train()) {
    EXPECT_EQ(s.image.shape(), tensor::Shape::chw(3, 24, 24));
    EXPECT_EQ(s.label.shape(), tensor::Shape::vec(5));
  }
}

TEST(HandsDataset, LabelsAreDistributionsWithCorrectMode) {
  const HandsDataset ds(small_config());
  for (const Sample& s : ds.train()) {
    float sum = 0.0f;
    int argmax = 0;
    for (int i = 0; i < kGraspCount; ++i) {
      EXPECT_GT(s.label[i], 0.0f);
      sum += s.label[i];
      if (s.label[i] > s.label[argmax]) argmax = i;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
    EXPECT_EQ(argmax, static_cast<int>(s.primary));
    EXPECT_LT(s.label[argmax], 0.95f);  // probabilistic, not one-hot
  }
}

TEST(HandsDataset, PixelsInUnitRange) {
  const HandsDataset ds(small_config());
  for (const Sample& s : ds.test()) {
    EXPECT_GE(s.image.min(), 0.0f);
    EXPECT_LE(s.image.max(), 1.0f);
  }
}

TEST(HandsDataset, ClassesAreBalanced) {
  const HandsDataset ds(small_config());
  std::vector<int> counts(kGraspCount, 0);
  for (const Sample& s : ds.train()) ++counts[static_cast<std::size_t>(static_cast<int>(s.primary))];
  for (int c : counts) EXPECT_EQ(c, 10);
}

TEST(HandsDataset, DeterministicForSeed) {
  const HandsDataset a(small_config()), b(small_config());
  EXPECT_LT(tensor::max_abs_diff(a.train()[7].image, b.train()[7].image), 1e-9f);
  HandsConfig other = small_config();
  other.seed = 43;
  const HandsDataset c(other);
  EXPECT_GT(tensor::max_abs_diff(a.train()[7].image, c.train()[7].image), 1e-4f);
}

TEST(HandsDataset, ObjectsDifferAcrossClasses) {
  // Mean absolute inter-class image difference should exceed intra-class
  // difference: the renderer must encode the category.
  const HandsDataset ds(small_config());
  const Sample& sphere1 = ds.train()[2];   // class i%5: index 2 -> PowerSphere
  const Sample& sphere2 = ds.train()[7];
  const Sample& plate = ds.train()[0];     // OpenPalm
  ASSERT_EQ(sphere1.primary, GraspType::kPowerSphere);
  ASSERT_EQ(plate.primary, GraspType::kOpenPalm);
  // Not a strict invariant per pair, but with the default silhouettes the
  // sphere/plate silhouette mass differs a lot.
  double intra = 0.0, inter = 0.0;
  for (std::int64_t i = 0; i < sphere1.image.numel(); ++i) {
    intra += std::abs(sphere1.image[i] - sphere2.image[i]);
    inter += std::abs(sphere1.image[i] - plate.image[i]);
  }
  EXPECT_GT(inter, intra * 0.5);
}

TEST(HandsDataset, CalibrationSetFractionAndMembership) {
  const HandsDataset ds(small_config());
  const auto calib = ds.calibration_set(0.1, 5);
  EXPECT_EQ(calib.size(), 5u);
  std::set<const Sample*> unique(calib.begin(), calib.end());
  EXPECT_EQ(unique.size(), calib.size());
  EXPECT_THROW(ds.calibration_set(0.0, 5), std::invalid_argument);
}

PretrainedConfig tiny_pretrain() {
  PretrainedConfig cfg;
  cfg.source_images = 60;
  cfg.epochs = 4;
  return cfg;
}

TEST(Pretrained, TrainingReducesSourceLoss) {
  nn::Graph trunk = zoo::build_trunk(zoo::NetId::kMobileNetV1_025, 24);
  PretrainedConfig cfg = tiny_pretrain();
  cfg.epochs = 6;
  const PretrainReport r = generate_pretrained_weights(trunk, cfg);
  // Chance-level CE for 10 classes is ln(10) = 2.30 per head (two heads).
  EXPECT_LT(r.final_loss, 2.0 * 2.30);
  EXPECT_GT(r.source_accuracy, 0.15);  // above the 0.10 chance level
  EXPECT_EQ(r.steps, cfg.epochs * ((cfg.source_images + cfg.batch_size - 1) /
                                   cfg.batch_size));
}

TEST(Pretrained, GeneratorIsDeterministic) {
  nn::Graph a = zoo::build_trunk(zoo::NetId::kMobileNetV1_025, 24);
  nn::Graph b = zoo::build_trunk(zoo::NetId::kMobileNetV1_025, 24);
  const PretrainedConfig cfg = tiny_pretrain();
  generate_pretrained_weights(a, cfg);
  generate_pretrained_weights(b, cfg);
  for (int id = 1; id < a.node_count(); ++id) {
    auto pa = a.node(id).layer->params();
    auto pb = b.node(id).layer->params();
    for (std::size_t k = 0; k < pa.size(); ++k)
      ASSERT_LT(tensor::max_abs_diff(*pa[k], *pb[k]), 1e-9f);
  }
}

TEST(Pretrained, SourceObjectsCoverAllCategories) {
  util::Rng rng(5);
  for (int cat = 0; cat < kSourceClasses; ++cat) {
    const tensor::Tensor img = render_source_object(cat, 24, rng, 0.05);
    EXPECT_EQ(img.shape(), tensor::Shape::chw(3, 24, 24));
    EXPECT_GE(img.min(), 0.0f);
    EXPECT_LE(img.max(), 1.0f);
  }
  EXPECT_THROW(render_source_object(kSourceClasses, 24, rng, 0.05), std::invalid_argument);
}

TEST(Pretrained, ActivationsStayFiniteAfterCalibration) {
  const HandsDataset ds(small_config());
  nn::Graph trunk = zoo::build_trunk(zoo::NetId::kMobileNetV2_100, 24);
  generate_pretrained_weights(trunk, tiny_pretrain());
  nn::Network net(std::move(trunk));

  std::vector<const tensor::Tensor*> images;
  for (int i = 0; i < 8; ++i) images.push_back(&ds.train()[static_cast<std::size_t>(i)].image);
  calibrate_batchnorm(net, images);

  const tensor::Tensor y = net.forward(ds.test()[0].image);
  for (std::int64_t i = 0; i < y.numel(); ++i) ASSERT_TRUE(std::isfinite(y[i]));
  // Calibration should keep deep activations in a sane dynamic range.
  EXPECT_LT(std::abs(y.mean()), 50.0f);
}

TEST(Pretrained, FeaturesCarryClassInformation) {
  // Fisher criterion (between-class / within-class variance) of GAP features
  // read at a mid-trunk cut site must show a clear class signal — otherwise
  // the transfer experiments are vacuous. The probe sits at ~30% of the
  // block sequence: that is the depth range TRN retraining consumes, and it
  // lies below the specialization onset — features at the trunk's own output
  // are deliberately source-task-specific and carry no target signal.
  HandsConfig hc = small_config();
  hc.train_count = 100;
  const HandsDataset ds(hc);
  nn::Graph trunk = zoo::build_trunk(zoo::NetId::kMobileNetV1_050, 24);
  const auto blocks = trunk.blocks();
  const int nb = static_cast<int>(blocks.size());
  int bi = static_cast<int>(0.3 * nb) - 1;
  if (bi < 0) bi = 0;
  const int probe = blocks[static_cast<std::size_t>(bi)].last_node;

  PretrainedConfig cfg = tiny_pretrain();
  cfg.epochs = 8;
  cfg.source_images = 100;
  generate_pretrained_weights(trunk, cfg);
  nn::Network net(std::move(trunk));
  std::vector<const tensor::Tensor*> images;
  for (int i = 0; i < 8; ++i) images.push_back(&ds.train()[static_cast<std::size_t>(i)].image);
  calibrate_batchnorm(net, images);

  std::vector<std::vector<double>> feats;
  std::vector<int> labels;
  int C = 0;
  for (const Sample& smp : ds.train()) {
    std::vector<tensor::Tensor> acts = net.forward_collect(smp.image, {probe});
    const tensor::Tensor& act = acts[0];
    C = act.shape()[0];
    const int hw = act.shape()[1] * act.shape()[2];
    std::vector<double> f(static_cast<std::size_t>(C), 0.0);
    for (int c = 0; c < C; ++c) {
      const float* chan = act.data() + static_cast<std::int64_t>(c) * hw;
      for (int i = 0; i < hw; ++i) f[static_cast<std::size_t>(c)] += chan[i];
      f[static_cast<std::size_t>(c)] /= hw;
    }
    feats.push_back(std::move(f));
    labels.push_back(static_cast<int>(smp.primary));
  }

  const int n = static_cast<int>(feats.size());
  std::vector<std::vector<double>> cls_mean(kGraspCount,
                                            std::vector<double>(static_cast<std::size_t>(C), 0.0));
  std::vector<int> counts(kGraspCount, 0);
  std::vector<double> gmean(static_cast<std::size_t>(C), 0.0);
  for (int i = 0; i < n; ++i) {
    for (int c = 0; c < C; ++c) {
      cls_mean[static_cast<std::size_t>(labels[static_cast<std::size_t>(i)])]
              [static_cast<std::size_t>(c)] += feats[static_cast<std::size_t>(i)][static_cast<std::size_t>(c)];
      gmean[static_cast<std::size_t>(c)] += feats[static_cast<std::size_t>(i)][static_cast<std::size_t>(c)];
    }
    ++counts[static_cast<std::size_t>(labels[static_cast<std::size_t>(i)])];
  }
  for (int g = 0; g < kGraspCount; ++g)
    for (int c = 0; c < C; ++c)
      cls_mean[static_cast<std::size_t>(g)][static_cast<std::size_t>(c)] /= counts[static_cast<std::size_t>(g)];
  for (int c = 0; c < C; ++c) gmean[static_cast<std::size_t>(c)] /= n;

  double between = 0.0, within = 0.0;
  for (int c = 0; c < C; ++c) {
    for (int g = 0; g < kGraspCount; ++g) {
      const double d = cls_mean[static_cast<std::size_t>(g)][static_cast<std::size_t>(c)] -
                       gmean[static_cast<std::size_t>(c)];
      between += d * d * counts[static_cast<std::size_t>(g)];
    }
    for (int i = 0; i < n; ++i) {
      const double d =
          feats[static_cast<std::size_t>(i)][static_cast<std::size_t>(c)] -
          cls_mean[static_cast<std::size_t>(labels[static_cast<std::size_t>(i)])]
                  [static_cast<std::size_t>(c)];
      within += d * d;
    }
  }
  const double fisher = between / (within + 1e-12);
  // Class-free random features would land near (K-1)/(n-K) ~= 0.04 on this
  // split; require a clear margin above that.
  EXPECT_GT(fisher, 0.06) << "mid-trunk features carry almost no class signal";
}

TEST(Emg, PatternsAreClassSpecificAndNoisy) {
  EmgGenerator gen(EmgConfig{});
  util::Rng rng(3);
  const tensor::Tensor a = gen.sample(GraspType::kOpenPalm, rng);
  const tensor::Tensor b = gen.sample(GraspType::kPalmarPinch, rng);
  EXPECT_EQ(a.shape(), tensor::Shape::vec(kEmgChannels));
  EXPECT_GT(tensor::max_abs_diff(a, b), 0.05f);
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_GE(a[i], 0.0f);
}

TEST(Emg, DatasetBalancedWithSoftLabels) {
  EmgGenerator gen(EmgConfig{});
  const auto ds = gen.dataset(50, 1);
  ASSERT_EQ(ds.size(), 50u);
  std::vector<int> counts(kGraspCount, 0);
  for (const Sample& s : ds) {
    ++counts[static_cast<std::size_t>(static_cast<int>(s.primary))];
    EXPECT_NEAR(s.label.sum(), 1.0f, 1e-5f);
  }
  for (int c : counts) EXPECT_EQ(c, 10);
}

TEST(Labels, MakeLabelJitterChangesButPreservesMode) {
  util::Rng rng(1);
  for (int g = 0; g < kGraspCount; ++g) {
    const tensor::Tensor l1 = make_label(static_cast<GraspType>(g), rng, 0.05);
    int argmax = 0;
    for (int i = 1; i < kGraspCount; ++i)
      if (l1[i] > l1[argmax]) argmax = i;
    EXPECT_EQ(argmax, g);
  }
}

}  // namespace
}  // namespace netcut::data
