// Figure 6: the accuracy-performance trade-off of all blockwise TRNs — the
// densified scatter that fills the gaps between off-the-shelf networks.
// Also checks the paper's observation that TRNs of MobileNetV1(0.5) can
// dominate the off-the-shelf MobileNetV1(0.25).
#include "bench_common.hpp"

int main() {
  using namespace netcut;
  using namespace netcut::bench;

  print_header("Fig 6: accuracy-latency trade-off of all TRNs");

  core::LatencyLab lab(lab_config());
  const data::HandsDataset dataset(dataset_config());
  core::TrnEvaluator evaluator(dataset, eval_config());
  core::BlockwiseExplorer explorer(lab, evaluator);

  const auto candidates = explorer.explore_all(true);

  util::Table table({"trn", "latency_ms", "accuracy", "blocks_removed"});
  for (const core::Candidate& c : candidates)
    table.add_row({c.trn_name, util::Table::num(c.latency_ms, 3),
                   util::Table::num(c.accuracy, 4), std::to_string(c.blocks_removed)});
  std::printf("%s\n", table.to_string().c_str());

  // Does some MobileNetV1-0.50 TRN dominate off-the-shelf MobileNetV1-0.25?
  const core::Candidate* mnv1_025_full = nullptr;
  for (const core::Candidate& c : candidates)
    if (c.base == zoo::NetId::kMobileNetV1_025 && c.blocks_removed == 0) mnv1_025_full = &c;
  bool dominated = false;
  std::string dominator;
  for (const core::Candidate& c : candidates) {
    if (c.base != zoo::NetId::kMobileNetV1_050 || c.blocks_removed == 0) continue;
    if (c.latency_ms <= mnv1_025_full->latency_ms &&
        c.accuracy >= mnv1_025_full->accuracy &&
        (c.latency_ms < mnv1_025_full->latency_ms ||
         c.accuracy > mnv1_025_full->accuracy)) {
      dominated = true;
      dominator = c.trn_name;
      break;
    }
  }
  std::printf("MobileNetV1-0.25 off-the-shelf: %.3f ms, accuracy %.4f\n",
              mnv1_025_full->latency_ms, mnv1_025_full->accuracy);
  std::printf("dominated by a MobileNetV1-0.50 TRN: %s%s\n",
              dominated ? "yes, " : "no", dominator.c_str());

  // How many TRNs land inside the deadline where no off-the-shelf net was?
  int trns_in_gap = 0;
  double best_offshelf_under = 0.0;
  for (const core::Candidate& c : candidates)
    if (c.blocks_removed == 0 && c.latency_ms <= kDeadlineMs)
      best_offshelf_under = std::max(best_offshelf_under, c.latency_ms);
  for (const core::Candidate& c : candidates)
    if (c.blocks_removed > 0 && c.latency_ms <= kDeadlineMs &&
        c.latency_ms > best_offshelf_under)
      ++trns_in_gap;
  std::printf("TRNs inside the deadline gap (%.3f..%.3f ms): %d\n", best_offshelf_under,
              kDeadlineMs, trns_in_gap);
  return 0;
}
