// Ablation harness for the design choices DESIGN.md calls out on the
// latency side (no retraining required):
//
//  1. Deployment optimizations (Section III-B4): latency under
//     fp32/unfused -> fp32/fused -> int8/fused for every base network.
//  2. The paper's Section IV-B2 observation: "inference latency decreases
//     almost linearly w.r.t. the number of layers removed" — per network,
//     fit latency ~ a + b * layers_removed over the blockwise TRN sweep and
//     report R^2.
//  3. Measurement-protocol ablation: how much the warm-up phase matters
//     (mean of the first 50 runs vs the protocol's post-warm-up mean).
#include "bench_common.hpp"

#include "util/stats.hpp"

int main() {
  using namespace netcut;
  using namespace netcut::bench;

  print_header("Ablation: deployment optimizations & latency linearity");

  core::LatencyLab lab(lab_config());
  const hw::DeviceModel& dev = lab.device();

  util::Table table({"network", "fp32_unfused_ms", "fp32_fused_ms", "int8_fused_ms",
                     "fusion_gain", "int8_gain"});
  for (zoo::NetId net : zoo::all_nets()) {
    const nn::Graph trn = lab.build_native_trn(net, lab.full_cut(net));
    const double a = dev.network_latency_ms(trn, hw::Precision::kFp32, false);
    const double b = dev.network_latency_ms(trn, hw::Precision::kFp32, true);
    const double c = dev.network_latency_ms(trn, hw::Precision::kInt8, true);
    table.add_row({zoo::net_name(net), util::Table::num(a, 3), util::Table::num(b, 3),
                   util::Table::num(c, 3), util::Table::num(a / b, 2) + "x",
                   util::Table::num(b / c, 2) + "x"});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("latency vs layers-removed linearity (blockwise sweep, measured):\n");
  for (zoo::NetId net : zoo::all_nets()) {
    std::vector<double> xs, ys;
    const auto cuts = lab.blockwise(net);
    for (int cut : cuts) {
      xs.push_back(static_cast<double>(lab.layers_removed(net, cut)));
      ys.push_back(lab.measured_ms(net, cut));
    }
    // R^2 of the least-squares line.
    const double mx = util::mean(xs), my = util::mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      sxy += (xs[i] - mx) * (ys[i] - my);
      sxx += (xs[i] - mx) * (xs[i] - mx);
      syy += (ys[i] - my) * (ys[i] - my);
    }
    const double r2 = sxy * sxy / (sxx * syy);
    const double slope_us = sxy / sxx * 1000.0;
    std::printf("  %-18s R^2 = %.4f   slope %+.2f us/layer   [paper: 'almost linear']\n",
                zoo::net_name(net).c_str(), r2, slope_us);
  }

  std::printf("\nwarm-up ablation (MobileNetV1-0.50, full network):\n");
  {
    hw::LatencyMeasurer measurer(dev);
    const nn::Graph trn =
        lab.build_native_trn(zoo::NetId::kMobileNetV1_050, lab.full_cut(zoo::NetId::kMobileNetV1_050));
    const double truth = dev.network_latency_ms(trn, hw::Precision::kInt8, true);
    util::Rng rng(77);
    std::vector<double> cold, warm;
    for (int i = 0; i < 50; ++i) cold.push_back(measurer.simulate_run_ms(truth, i, rng));
    for (int i = 0; i < 50; ++i)
      warm.push_back(measurer.simulate_run_ms(truth, 200 + i, rng));
    std::printf("  first-50-run mean : %.4f ms (clock ramp inflates by %.1f%%)\n",
                util::mean(cold), (util::mean(cold) / truth - 1.0) * 100.0);
    std::printf("  post-warm-up mean : %.4f ms (true %.4f ms)\n", util::mean(warm), truth);
    std::printf("  -> the paper's 200-inference warm-up phase is what makes the\n"
                "     800-run average land on the true latency.\n");
  }
  return 0;
}
