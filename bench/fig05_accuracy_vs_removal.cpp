// Figure 5: the effect of blockwise layer removal on accuracy for all seven
// architectures — one series per network, accuracy vs layers removed — plus
// the paper's qualitative observations (DenseNet/Inception plateau,
// MobileNets degrade fastest, MobileNetV2 more sensitive than ResNet).
#include "bench_common.hpp"

int main() {
  using namespace netcut;
  using namespace netcut::bench;

  print_header("Fig 5: accuracy vs layers removed, all architectures (blockwise TRNs)");

  core::LatencyLab lab(lab_config());
  const data::HandsDataset dataset(dataset_config());
  core::TrnEvaluator evaluator(dataset, eval_config());
  core::BlockwiseExplorer explorer(lab, evaluator);

  util::Table table({"network", "trn", "blocks_removed", "layers_removed", "accuracy"});
  int total_trns = 0;
  struct SeriesStats {
    std::string name;
    double full_acc = 0.0;
    double drop_quarter = 0.0;  // accuracy loss at ~25% of layers removed
    double min_acc = 1.0;
  };
  std::vector<SeriesStats> stats;

  for (zoo::NetId net : zoo::all_nets()) {
    const auto candidates = explorer.explore(net, true);
    SeriesStats st;
    st.name = zoo::net_name(net);
    st.full_acc = candidates.front().accuracy;
    const int total_layers = candidates.front().layers_remaining;
    for (const core::Candidate& c : candidates) {
      table.add_row({c.base_name, c.trn_name, std::to_string(c.blocks_removed),
                     std::to_string(c.layers_removed), util::Table::num(c.accuracy, 4)});
      if (c.blocks_removed > 0) ++total_trns;
      st.min_acc = std::min(st.min_acc, c.accuracy);
      if (st.drop_quarter == 0.0 && c.layers_removed >= total_layers / 4)
        st.drop_quarter = st.full_acc - c.accuracy;
    }
    stats.push_back(std::move(st));
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("total blockwise TRNs retrained: %d (paper: 148, incl. 7 base networks)\n\n",
              total_trns);

  std::printf("per-architecture sensitivity (accuracy drop at ~25%% layers removed):\n");
  for (const SeriesStats& st : stats)
    std::printf("  %-18s full=%.4f  drop@25%%=%+.4f  worst=%.4f\n", st.name.c_str(),
                st.full_acc, -st.drop_quarter, st.min_acc);
  return 0;
}
