// Shared experiment configuration for the fig* harnesses. Every bench uses
// the same lab, dataset, and evaluator settings so results compose: the
// accuracy memo cache (netcut_accuracy_cache.csv in the working directory)
// is shared, and the first bench to need a number pays for it.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/estimator.hpp"
#include "core/evaluator.hpp"
#include "core/explorer.hpp"
#include "core/lab.hpp"
#include "core/netcut.hpp"
#include "core/pareto.hpp"
#include "util/table.hpp"

namespace netcut::bench {

inline constexpr double kDeadlineMs = 0.9;  // the robotic hand's budget

/// NETCUT_FAST=1 shrinks the experiment (fewer images/epochs) for smoke
/// runs; default is the full experiment scale.
inline bool fast_mode() {
  const char* env = std::getenv("NETCUT_FAST");
  return env != nullptr && env[0] == '1';
}

inline data::HandsConfig dataset_config() {
  data::HandsConfig c;
  c.resolution = 24;  // matches the pretraining resolution (DESIGN.md)
  c.train_count = fast_mode() ? 120 : 300;
  c.test_count = fast_mode() ? 60 : 120;
  c.seed = 42;
  return c;
}

inline core::EvalConfig eval_config() {
  core::EvalConfig c;
  c.resolution = 24;
  c.epochs = fast_mode() ? 8 : 16;
  c.cache_path = "netcut_accuracy_cache.csv";
  if (fast_mode()) {
    c.pretrained.source_images = 100;
    c.pretrained.epochs = 8;
  }
  return c;
}

inline core::LabConfig lab_config() {
  return core::LabConfig{};  // int8 + fusion, Xavier-sim defaults
}

/// All blockwise TRN latency samples (for estimator training), including
/// the full networks.
inline std::vector<core::LatencySample> collect_latency_samples(core::LatencyLab& lab) {
  std::vector<core::LatencySample> samples;
  for (zoo::NetId net : zoo::all_nets()) {
    std::vector<int> cuts = lab.blockwise(net);
    // blockwise() already ends at the trunk output (== full cut).
    for (int cut : cuts) {
      core::LatencySample s;
      s.base = net;
      s.cut_node = cut;
      s.features = core::compute_trn_features(lab, net, cut);
      s.measured_ms = lab.measured_ms(net, cut);
      samples.push_back(std::move(s));
    }
  }
  return samples;
}

/// Deterministic 20/80 train/test split of the latency samples (the
/// paper's protocol: tune on the small split, test on the remaining 80%).
inline void split_samples(const std::vector<core::LatencySample>& all,
                          std::vector<core::LatencySample>& train,
                          std::vector<core::LatencySample>& test) {
  for (std::size_t i = 0; i < all.size(); ++i)
    (i % 5 == 2 ? train : test).push_back(all[i]);
}

inline void print_header(const std::string& title) {
  std::printf("\n==== %s ====\n\n", title.c_str());
}

}  // namespace netcut::bench
