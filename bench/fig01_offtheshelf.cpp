// Figure 1: the latency-accuracy trade-off of the seven off-the-shelf
// networks on the embedded device, the 0.9 ms deadline, and the accuracy
// gap left by the best deadline-meeting network.
#include "bench_common.hpp"

#include "ml/metrics.hpp"

int main() {
  using namespace netcut;
  using namespace netcut::bench;

  print_header("Fig 1: off-the-shelf latency/accuracy trade-off (deadline 0.9 ms)");

  core::LatencyLab lab(lab_config());
  const data::HandsDataset dataset(dataset_config());
  core::TrnEvaluator evaluator(dataset, eval_config());

  util::Table table({"network", "latency_ms", "accuracy(ang-sim)", "top1", "meets 0.9ms"});
  std::vector<core::TradeoffPoint> points;
  for (zoo::NetId net : zoo::all_nets()) {
    const int full = lab.full_cut(net);
    const double latency = lab.measured_ms(net, full);
    const core::AccuracyResult acc = evaluator.accuracy(net, full);
    table.add_row({zoo::net_name(net), util::Table::num(latency, 3),
                   util::Table::num(acc.angular_similarity, 4),
                   util::Table::num(acc.top1, 3), latency <= kDeadlineMs ? "yes" : "no"});
    points.push_back({zoo::net_name(net), latency, acc.angular_similarity});
  }
  std::printf("%s\n", table.to_string().c_str());

  const int best = core::best_under_deadline(points, kDeadlineMs);
  if (best < 0) {
    std::printf("no off-the-shelf network meets the deadline\n");
    return 1;
  }
  const auto& b = points[static_cast<std::size_t>(best)];
  std::printf("best off-the-shelf under deadline: %s  (%.3f ms, accuracy %.4f)\n",
              b.name.c_str(), b.latency_ms, b.accuracy);

  double best_any = 0.0;
  std::string best_any_name;
  for (const auto& p : points)
    if (p.accuracy > best_any) {
      best_any = p.accuracy;
      best_any_name = p.name;
    }
  std::printf("most accurate network overall:     %s  (accuracy %.4f)\n",
              best_any_name.c_str(), best_any);
  std::printf("accuracy gap at the deadline:      %.4f (slack the paper's TRNs reclaim)\n",
              best_any - b.accuracy);

  std::printf("\nPareto frontier of off-the-shelf networks:\n");
  for (const auto& p : core::pareto_frontier(points))
    std::printf("  %-18s %8.3f ms   %.4f\n", p.name.c_str(), p.latency_ms, p.accuracy);
  return 0;
}
