// Serving-layer snapshot (BENCH_serve.json): batched vs single-request
// service under the deterministic open-loop load simulation shared with
// tests/test_serve.cpp (tests/serve_sim.hpp).
//
//   ./build/bench/serve_snapshot [--json BENCH_serve.json]
//
// Every number is a pure function of (config, seed): the harness runs each
// configuration twice with the same seed and refuses to write the snapshot
// (exit 1) unless the two runs are bit-identical. The headline claims the
// snapshot exists to pin down:
//   * batch cap 8 sustains >= 3x the single-request throughput under an
//     offered load ~5x the single-request service rate, and
//   * its deadline-miss rate and p99 response do not exceed the
//     single-request baseline's.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hw/device.hpp"
#include "serve/queue.hpp"
#include "serve/server.hpp"
#include "serve_sim.hpp"
#include "zoo/zoo.hpp"

namespace {

using namespace netcut;

struct ServeRun {
  std::string label;
  int max_batch = 1;
  serve_sim::SimReport report;
  bool reproducible = false;
};

std::function<double(int)> batch_curve(std::shared_ptr<const nn::Graph> graph) {
  auto device = std::make_shared<hw::DeviceModel>();
  auto cache = std::make_shared<std::map<int, double>>();
  return [graph = std::move(graph), device, cache](int b) {
    if (auto it = cache->find(b); it != cache->end()) return it->second;
    const double v = device->network_latency_ms(*graph, hw::Precision::kInt8, true, b);
    return cache->emplace(b, v).first->second;
  };
}

ServeRun run_config(const std::shared_ptr<const nn::Graph>& graph,
                    const serve_sim::LoadConfig& load, const std::string& label,
                    int max_batch) {
  auto once = [&] {
    serve::RequestQueue queue;
    serve::ServeConfig sc;
    sc.max_batch = max_batch;
    sc.nominal_deadline_ms = load.deadline_slack_ms;
    serve::BatchServer server({{"trn", nullptr, batch_curve(graph)}}, queue, sc);
    return serve_sim::run_open_loop(server, queue, serve_sim::generate_arrivals(load, {}));
  };
  ServeRun r;
  r.label = label;
  r.max_batch = max_batch;
  r.report = once();
  r.reproducible = serve_sim::reports_identical(r.report, once());
  return r;
}

void print_run(const ServeRun& r) {
  std::printf("%-16s batch<=%d: %8.1f req/s, p50 %7.3f ms, p99 %8.3f ms, "
              "miss %5.1f%%, mean batch %.2f, reproducible=%s\n",
              r.label.c_str(), r.max_batch, r.report.throughput_rps,
              r.report.p50_response_ms, r.report.p99_response_ms,
              100.0 * r.report.miss_rate, r.report.mean_batch,
              r.reproducible ? "yes" : "NO");
}

void emit_json(std::ostream& out, const ServeRun& r, bool last) {
  out << "    {\"label\": \"" << r.label << "\", \"max_batch\": " << r.max_batch
      << ", \"throughput_rps\": " << r.report.throughput_rps
      << ", \"p50_response_ms\": " << r.report.p50_response_ms
      << ", \"p99_response_ms\": " << r.report.p99_response_ms
      << ", \"miss_rate\": " << r.report.miss_rate
      << ", \"mean_batch\": " << r.report.mean_batch
      << ", \"batches\": " << r.report.batches
      << ", \"reproducible\": " << (r.reproducible ? "true" : "false") << "}"
      << (last ? "" : ",") << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
    else if (std::strncmp(argv[i], "--json=", 7) == 0)
      json_path = argv[i] + 7;
  }

  const auto graph = std::make_shared<const nn::Graph>(
      zoo::build_trunk(zoo::NetId::kMobileNetV1_025, 32));
  const auto curve = batch_curve(graph);
  std::printf("device batch curve (ms): b1 %.4f  b2 %.4f  b4 %.4f  b8 %.4f\n", curve(1),
              curve(2), curve(4), curve(8));

  serve_sim::LoadConfig load;
  load.requests = 2000;
  load.mean_interarrival_ms = curve(1) / 5.0;  // ~5x single-request capacity
  load.deadline_slack_ms = 6.0 * curve(1);

  std::vector<ServeRun> runs;
  runs.push_back(run_config(graph, load, "single", 1));
  runs.push_back(run_config(graph, load, "batched", 8));
  for (const ServeRun& r : runs) print_run(r);

  const ServeRun& single = runs[0];
  const ServeRun& batched = runs[1];
  const double ratio = single.report.throughput_rps > 0
                           ? batched.report.throughput_rps / single.report.throughput_rps
                           : 0.0;
  std::printf("\nthroughput ratio (batched / single): %.2fx\n", ratio);

  bool ok = true;
  for (const ServeRun& r : runs)
    if (!r.reproducible) {
      std::fprintf(stderr, "serve_snapshot: '%s' not bit-identical across same-seed runs\n",
                   r.label.c_str());
      ok = false;
    }
  if (ratio < 3.0) {
    std::fprintf(stderr, "serve_snapshot: throughput ratio %.2fx below the 3x bar\n", ratio);
    ok = false;
  }
  if (batched.report.miss_rate > single.report.miss_rate) {
    std::fprintf(stderr, "serve_snapshot: batched miss rate exceeds the single baseline\n");
    ok = false;
  }

  std::ofstream out(json_path);
  if (!out) {
    std::cerr << "serve_snapshot: cannot open " << json_path << "\n";
    return 1;
  }
  out << "{\n  \"load\": {\"requests\": " << load.requests
      << ", \"mean_interarrival_ms\": " << load.mean_interarrival_ms
      << ", \"deadline_slack_ms\": " << load.deadline_slack_ms
      << ", \"seed\": " << load.seed << "},\n";
  out << "  \"throughput_ratio\": " << ratio << ",\n";
  out << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) emit_json(out, runs[i], i + 1 == runs.size());
  out << "  ]\n}\n";
  std::cout << "wrote " << json_path << "\n";
  return ok ? 0 : 1;
}
