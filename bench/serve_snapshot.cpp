// Serving-layer snapshot (BENCH_serve.json): batched vs single-request
// service, the heap-queue take() microbench, and the fleet section —
// multi-worker scaling, admission under overload and per-tenant SLOs —
// all under the deterministic open-loop load simulation shared with
// tests/test_serve.cpp (tests/serve_sim.hpp).
//
//   ./build/bench/serve_snapshot [--json BENCH_serve.json]
//
// Every simulated number is a pure function of (config, seed): the harness
// runs each configuration twice with the same seed and refuses to write the
// snapshot (exit 1) unless the two runs are bit-identical (fleet rows
// compare FNV-1a digests of the full completion stream). The headline
// claims the snapshot exists to pin down:
//   * batch cap 8 sustains >= 3x the single-request throughput under an
//     offered load ~5x the single-request service rate, at no worse a miss
//     rate or p99 than the single-request baseline;
//   * the heap-backed RequestQueue::take costs far less than the full
//     EDF re-sort per take it replaced, with bit-identical pop order;
//   * a 4-worker fleet sustains >= 3x a 1-worker fleet's aggregate
//     throughput at an equal admitted miss rate (1/2/4/8 scaling curve);
//   * under ~2x overload with a bursty tenant, admission sheds explicitly
//     (never a silent miss) and admitted p99 stays within each SLO class
//     budget — the burst's shedding lands on the bursty tenant.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/trn.hpp"
#include "hw/device.hpp"
#include "hw/faults.hpp"
#include "serve/fleet.hpp"
#include "serve/queue.hpp"
#include "serve/server.hpp"
#include "serve_sim.hpp"
#include "util/rng.hpp"
#include "zoo/zoo.hpp"

namespace {

using namespace netcut;

struct ServeRun {
  std::string label;
  int max_batch = 1;
  serve_sim::SimReport report;
  bool reproducible = false;
};

std::function<double(int)> batch_curve(std::shared_ptr<const nn::Graph> graph) {
  auto device = std::make_shared<hw::DeviceModel>();
  auto cache = std::make_shared<std::map<int, double>>();
  return [graph = std::move(graph), device, cache](int b) {
    if (auto it = cache->find(b); it != cache->end()) return it->second;
    const double v = device->network_latency_ms(*graph, hw::Precision::kInt8, true, b);
    return cache->emplace(b, v).first->second;
  };
}

ServeRun run_config(const std::shared_ptr<const nn::Graph>& graph,
                    const serve_sim::LoadConfig& load, const std::string& label,
                    int max_batch) {
  auto once = [&] {
    serve::RequestQueue queue;
    serve::ServeConfig sc;
    sc.max_batch = max_batch;
    sc.nominal_deadline_ms = load.deadline_slack_ms;
    serve::BatchServer server({{"trn", nullptr, batch_curve(graph), {}}}, queue, sc);
    return serve_sim::run_open_loop(server, queue, serve_sim::generate_arrivals(load, {}));
  };
  ServeRun r;
  r.label = label;
  r.max_batch = max_batch;
  r.report = once();
  r.reproducible = serve_sim::reports_identical(r.report, once());
  return r;
}

void print_run(const ServeRun& r) {
  std::printf("%-16s batch<=%d: %8.1f req/s, p50 %7.3f ms, p99 %8.3f ms, "
              "miss %5.1f%%, mean batch %.2f, reproducible=%s\n",
              r.label.c_str(), r.max_batch, r.report.throughput_rps,
              r.report.p50_response_ms, r.report.p99_response_ms,
              100.0 * r.report.miss_rate, r.report.mean_batch,
              r.reproducible ? "yes" : "NO");
}

void emit_json(std::ostream& out, const ServeRun& r, bool last) {
  out << "    {\"label\": \"" << r.label << "\", \"max_batch\": " << r.max_batch
      << ", \"throughput_rps\": " << r.report.throughput_rps
      << ", \"p50_response_ms\": " << r.report.p50_response_ms
      << ", \"p99_response_ms\": " << r.report.p99_response_ms
      << ", \"miss_rate\": " << r.report.miss_rate
      << ", \"mean_batch\": " << r.report.mean_batch
      << ", \"batches\": " << r.report.batches
      << ", \"reproducible\": " << (r.reproducible ? "true" : "false") << "}"
      << (last ? "" : ",") << "\n";
}

// ---------------------------------------------------------------------------
// Queue take() microbench: incrementally maintained heap vs the full
// EDF re-sort per take it replaced (satellite of the fleet PR). Pop order
// must agree bit-for-bit; the cost per take is wall-clock (reported, not
// part of the reproducibility gate).
// ---------------------------------------------------------------------------

struct QueueBench {
  std::size_t backlog = 0;
  std::size_t batch = 0;
  double heap_us_per_take = 0.0;
  double sort_us_per_take = 0.0;
  bool order_identical = false;
};

std::vector<serve::Request> queue_bench_workload(std::size_t n) {
  util::Rng rng(util::derive_seed(424242, "bench/queue-take"));
  std::vector<serve::Request> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    serve::Request r;
    r.id = static_cast<std::uint64_t>(i);
    // Coarse deadlines force ties (broken by id), the worst case for
    // keeping pop order deterministic.
    r.deadline_ms = static_cast<double>(rng.uniform_int(0, 1 << 14));
    out.push_back(r);
  }
  return out;
}

QueueBench run_queue_bench(std::size_t backlog, std::size_t batch) {
  using clock = std::chrono::steady_clock;
  const std::vector<serve::Request> work = queue_bench_workload(backlog);
  auto edf_less = [](const serve::Request& a, const serve::Request& b) {
    if (a.deadline_ms != b.deadline_ms) return a.deadline_ms < b.deadline_ms;
    return a.id < b.id;
  };

  QueueBench qb;
  qb.backlog = backlog;
  qb.batch = batch;

  // Heap-backed queue: push everything, then drain in batches.
  std::vector<std::uint64_t> heap_order;
  heap_order.reserve(backlog);
  {
    serve::RequestQueue q;
    for (const serve::Request& r : work) q.push(r);
    const auto t0 = clock::now();
    std::size_t takes = 0;
    while (!q.empty()) {
      const auto got = q.take([&](const serve::Request&, std::size_t pending) {
        return std::min(pending, batch);
      });
      for (const serve::Request& r : got) heap_order.push_back(r.id);
      ++takes;
    }
    const double us = std::chrono::duration<double, std::micro>(clock::now() - t0).count();
    qb.heap_us_per_take = us / static_cast<double>(takes);
  }

  // Legacy reference: the pre-heap implementation re-sorted the whole
  // backlog on every take.
  std::vector<std::uint64_t> sort_order;
  sort_order.reserve(backlog);
  {
    std::vector<serve::Request> pending = work;
    const auto t0 = clock::now();
    std::size_t takes = 0;
    while (!pending.empty()) {
      std::sort(pending.begin(), pending.end(), edf_less);
      const std::size_t n = std::min(pending.size(), batch);
      for (std::size_t i = 0; i < n; ++i) sort_order.push_back(pending[i].id);
      pending.erase(pending.begin(), pending.begin() + static_cast<std::ptrdiff_t>(n));
      ++takes;
    }
    const double us = std::chrono::duration<double, std::micro>(clock::now() - t0).count();
    qb.sort_us_per_take = us / static_cast<double>(takes);
  }

  qb.order_identical = heap_order == sort_order;
  return qb;
}

// ---------------------------------------------------------------------------
// Fleet section.
// ---------------------------------------------------------------------------

struct FleetRun {
  std::string label;
  std::size_t workers = 1;
  serve_sim::FleetReport report;
  bool reproducible = false;
};

/// Homogeneous timing-only fleet: one TRN per replica, faults pinned off
/// (these rows are capacity measurements), per-worker derived serve seeds.
serve::Fleet make_fleet(const std::shared_ptr<const nn::Graph>& graph, std::size_t n,
                        serve::FleetConfig cfg, double nominal_deadline_ms) {
  std::vector<serve::FleetWorker> workers;
  for (std::size_t w = 0; w < n; ++w) {
    serve::FleetWorker fw;
    fw.name = "w" + std::to_string(w);
    fw.options = {{"trn", nullptr, batch_curve(graph), {}}};
    fw.serve.max_batch = 8;
    fw.serve.nominal_deadline_ms = nominal_deadline_ms;
    fw.serve.seed = util::derive_seed(7070, "bench/fleet/worker/" + std::to_string(w));
    fw.serve.faults = &hw::FaultModel::disabled();
    workers.push_back(std::move(fw));
  }
  return serve::Fleet(std::move(workers), std::move(cfg));
}

FleetRun run_fleet_config(const std::shared_ptr<const nn::Graph>& graph,
                          const serve::FleetConfig& fc,
                          const serve_sim::FleetLoadConfig& load, const std::string& label,
                          std::size_t workers) {
  const auto arrivals = serve_sim::generate_fleet_arrivals(load, fc.classes, {});
  auto once = [&] {
    serve::Fleet fleet = make_fleet(graph, workers, fc, fc.classes[0].deadline_slack_ms);
    return serve_sim::run_fleet_open_loop(fleet, arrivals);
  };
  FleetRun r;
  r.label = label;
  r.workers = workers;
  r.report = once();
  r.reproducible = serve_sim::fleet_reports_identical(r.report, once());
  return r;
}

void print_fleet_run(const FleetRun& r) {
  std::printf("%-16s workers=%zu: %9.1f req/s, p99 %7.3f ms, miss %5.2f%%, "
              "shed %5.1f%%, steals %lld, mean batch %.2f, reproducible=%s\n",
              r.label.c_str(), r.workers, r.report.throughput_rps, r.report.p99_response_ms,
              100.0 * r.report.miss_rate, 100.0 * r.report.shed_rate,
              static_cast<long long>(r.report.steals), r.report.mean_batch,
              r.reproducible ? "yes" : "NO");
}

void emit_fleet_json(std::ostream& out, const FleetRun& r, bool last) {
  out << "      {\"label\": \"" << r.label << "\", \"workers\": " << r.workers
      << ", \"requests\": " << r.report.submitted
      << ", \"throughput_rps\": " << r.report.throughput_rps
      << ", \"p50_response_ms\": " << r.report.p50_response_ms
      << ", \"p99_response_ms\": " << r.report.p99_response_ms
      << ", \"miss_rate\": " << r.report.miss_rate
      << ", \"shed_rate\": " << r.report.shed_rate
      << ", \"steals\": " << r.report.steals << ", \"mean_batch\": " << r.report.mean_batch
      << ", \"digest\": " << r.report.digest
      << ", \"reproducible\": " << (r.reproducible ? "true" : "false") << "}"
      << (last ? "" : ",") << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
    else if (std::strncmp(argv[i], "--json=", 7) == 0)
      json_path = argv[i] + 7;
  }

  const auto graph = std::make_shared<const nn::Graph>(
      zoo::build_trunk(zoo::NetId::kMobileNetV1_025, 32));
  const auto curve = batch_curve(graph);
  std::printf("device batch curve (ms): b1 %.4f  b2 %.4f  b4 %.4f  b8 %.4f\n", curve(1),
              curve(2), curve(4), curve(8));

  serve_sim::LoadConfig load;
  load.requests = 2000;
  load.mean_interarrival_ms = curve(1) / 5.0;  // ~5x single-request capacity
  load.deadline_slack_ms = 6.0 * curve(1);

  std::vector<ServeRun> runs;
  runs.push_back(run_config(graph, load, "single", 1));
  runs.push_back(run_config(graph, load, "batched", 8));
  for (const ServeRun& r : runs) print_run(r);

  const ServeRun& single = runs[0];
  const ServeRun& batched = runs[1];
  const double ratio = single.report.throughput_rps > 0
                           ? batched.report.throughput_rps / single.report.throughput_rps
                           : 0.0;
  std::printf("throughput ratio (batched / single): %.2fx\n\n", ratio);

  bool ok = true;
  for (const ServeRun& r : runs)
    if (!r.reproducible) {
      std::fprintf(stderr, "serve_snapshot: '%s' not bit-identical across same-seed runs\n",
                   r.label.c_str());
      ok = false;
    }
  if (ratio < 3.0) {
    std::fprintf(stderr, "serve_snapshot: throughput ratio %.2fx below the 3x bar\n", ratio);
    ok = false;
  }
  if (batched.report.miss_rate > single.report.miss_rate) {
    std::fprintf(stderr, "serve_snapshot: batched miss rate exceeds the single baseline\n");
    ok = false;
  }

  // --- queue take() cost: heap vs full re-sort --------------------------
  const QueueBench qb = run_queue_bench(/*backlog=*/8192, /*batch=*/8);
  std::printf("queue take() at backlog %zu, batch %zu: heap %.2f us/take vs "
              "full-sort %.2f us/take (%.0fx), pop order identical=%s\n\n",
              qb.backlog, qb.batch, qb.heap_us_per_take, qb.sort_us_per_take,
              qb.heap_us_per_take > 0 ? qb.sort_us_per_take / qb.heap_us_per_take : 0.0,
              qb.order_identical ? "yes" : "NO");
  if (!qb.order_identical) {
    std::fprintf(stderr, "serve_snapshot: heap pop order diverged from the sorted reference\n");
    ok = false;
  }

  // --- fleet scaling curve: 1 -> 8 workers ------------------------------
  serve::FleetConfig scale_fc;
  scale_fc.classes = {{"standard", 6.0 * curve(1), 6.0 * curve(1), 1.0}};
  serve_sim::FleetLoadConfig scale_load;
  scale_load.requests = 500000;
  scale_load.mean_interarrival_ms = curve(8) / 8.0 / 6.0;  // ~6x one worker's capacity
  scale_load.tenants = {{1, 0, 1.0}};

  std::vector<FleetRun> fleet_runs;
  for (const std::size_t w : {1u, 2u, 4u, 8u})
    fleet_runs.push_back(run_fleet_config(graph, scale_fc, scale_load,
                                          "fleet-" + std::to_string(w) + "w", w));
  for (const FleetRun& r : fleet_runs) print_fleet_run(r);

  const double one_tput = fleet_runs[0].report.throughput_rps;
  const double ratio_4v1 = one_tput > 0 ? fleet_runs[2].report.throughput_rps / one_tput : 0.0;
  std::printf("fleet throughput ratio (4 workers / 1 worker): %.2fx\n\n", ratio_4v1);

  for (const FleetRun& r : fleet_runs)
    if (!r.reproducible) {
      std::fprintf(stderr, "serve_snapshot: '%s' not bit-identical across same-seed runs\n",
                   r.label.c_str());
      ok = false;
    }
  if (ratio_4v1 < 3.0) {
    std::fprintf(stderr, "serve_snapshot: fleet 4v1 ratio %.2fx below the 3x bar\n", ratio_4v1);
    ok = false;
  }
  if (fleet_runs[2].report.miss_rate > fleet_runs[0].report.miss_rate + 0.005) {
    std::fprintf(stderr, "serve_snapshot: 4-worker miss rate exceeds the 1-worker baseline\n");
    ok = false;
  }

  // --- admission under 2x overload with a bursty tenant -----------------
  serve::FleetConfig tenant_fc;
  tenant_fc.classes = {{"gold", 5.0 * curve(1), 5.0 * curve(1), 3.0},
                       {"standard", 9.0 * curve(1), 9.0 * curve(1), 1.0}};
  tenant_fc.pressure_backlog = 24;
  serve_sim::FleetLoadConfig tenant_load;
  tenant_load.requests = 500000;
  tenant_load.mean_interarrival_ms = curve(8) / 8.0 / 2.0 / 0.8;  // 80% of 2 workers
  tenant_load.tenants = {{99, 1, 1.0}, {1, 0, 1.0}, {2, 1, 1.0}};
  {
    constexpr std::size_t kNoBoost = static_cast<std::size_t>(-1);
    const double span =
        tenant_load.mean_interarrival_ms * static_cast<double>(tenant_load.requests);
    tenant_load.phases = {{span * 0.3, 1.0, kNoBoost, 1.0},
                          {span * 0.2, 2.5, 0, 8.0},  // tenant 99 bursts: ~2x fleet capacity
                          {span * 0.5, 1.0, kNoBoost, 1.0}};
  }
  const FleetRun overload =
      run_fleet_config(graph, tenant_fc, tenant_load, "fleet-overload", 2);
  print_fleet_run(overload);
  for (const auto& [tenant, tr] : overload.report.tenants)
    std::printf("  tenant %-3u (%s): shed %5.1f%%, miss %5.2f%%, p99 %.3f ms "
                "(budget %.3f ms)\n",
                tenant, tenant_fc.classes[tr.slo].name.c_str(), 100.0 * tr.shed_rate,
                100.0 * tr.miss_rate, tr.p99_response_ms,
                tenant_fc.classes[tr.slo].p99_budget_ms);
  std::printf("\n");

  if (!overload.reproducible) {
    std::fprintf(stderr, "serve_snapshot: overload row not bit-identical\n");
    ok = false;
  }
  if (overload.report.shed <= 0) {
    std::fprintf(stderr, "serve_snapshot: overload run shed nothing — not an overload\n");
    ok = false;
  }
  for (const auto& [tenant, tr] : overload.report.tenants) {
    if (tr.served > 0 && tr.p99_response_ms > tenant_fc.classes[tr.slo].p99_budget_ms) {
      std::fprintf(stderr,
                   "serve_snapshot: tenant %u admitted p99 %.3f ms over its %.3f ms budget\n",
                   tenant, tr.p99_response_ms, tenant_fc.classes[tr.slo].p99_budget_ms);
      ok = false;
    }
  }

  // --- failover: 4 workers, one fail-stops mid-run ----------------------
  // The degraded-serving claim: after 1 of 4 replicas crashes at ~T/2, the
  // survivors (with the orphaned shard re-queued onto them) sustain >= 0.7x
  // of a clean 3-worker fleet's throughput under the same offered load, and
  // admitted p99 stays inside the SLO budget. Gated on the same two-run
  // digest bit-identity as every other fleet row.
  constexpr std::size_t kVictim = 1;
  const hw::FaultModel crash_model(hw::parse_fault_spec("crash=1@3000,seed=13"));
  serve::FleetConfig fo_fc;
  fo_fc.classes = {{"standard", 8.0 * curve(1), 8.0 * curve(1), 1.0}};
  // Heartbeat deadlines a few batch times out (the service timescale of
  // this simulated device) so detection fires while the dying shard still
  // holds orphans.
  fo_fc.health.suspect_after_ms = 2.0 * curve(8);
  fo_fc.health.down_after_ms = 5.0 * curve(8);

  serve_sim::FleetLoadConfig fo_load;
  fo_load.requests = 200000;
  fo_load.mean_interarrival_ms = curve(8) / 8.0 / 3.2;  // 80% of 4 workers
  {
    // Skew extra traffic onto the victim's shard (probed through the same
    // seeded rendezvous routing the real run uses) so the drain actually
    // carries orphans.
    const serve::Fleet probe = make_fleet(graph, 4, fo_fc, fo_fc.classes[0].deadline_slack_ms);
    for (std::uint32_t tenant = 1; tenant <= 8; ++tenant)
      fo_load.tenants.push_back({tenant, 0, probe.route(tenant) == kVictim ? 3.0 : 1.0});
  }
  const auto fo_arrivals = serve_sim::generate_fleet_arrivals(fo_load, fo_fc.classes, {});

  serve::ReplicaHealth victim;
  auto fo_once = [&](std::vector<serve::Completion>* capture) {
    serve::FleetConfig cfg = fo_fc;
    cfg.faults = &crash_model;
    serve::Fleet fleet = make_fleet(graph, 4, cfg, cfg.classes[0].deadline_slack_ms);
    const serve_sim::FleetReport rep = serve_sim::run_fleet_open_loop(fleet, fo_arrivals, capture);
    victim = fleet.worker_health(kVictim);
    return rep;
  };
  std::vector<serve::Completion> fo_completions;
  const serve_sim::FleetReport fo_rep = fo_once(&fo_completions);
  const bool fo_reproducible = serve_sim::fleet_reports_identical(fo_rep, fo_once(nullptr));

  // Clean 3-worker reference under the identical offered load: what the
  // shrunk fleet would do if it had been born with 3 replicas.
  serve::FleetConfig steady_fc;
  steady_fc.classes = fo_fc.classes;
  const auto steady_arrivals = serve_sim::generate_fleet_arrivals(fo_load, steady_fc.classes, {});
  auto steady_once = [&] {
    serve::Fleet fleet = make_fleet(graph, 3, steady_fc, steady_fc.classes[0].deadline_slack_ms);
    return serve_sim::run_fleet_open_loop(fleet, steady_arrivals);
  };
  const serve_sim::FleetReport steady_rep = steady_once();
  const bool steady_reproducible = serve_sim::fleet_reports_identical(steady_rep, steady_once());

  // Post-failover throughput: admitted completions finishing after the Down
  // declaration, over the remaining simulated time.
  const double detect_latency = victim.detected_ms - victim.last_progress_ms;
  std::int64_t post_served = 0;
  for (const serve::Completion& c : fo_completions)
    if (!c.rejected && c.finish_ms > victim.detected_ms) ++post_served;
  const double post_span_ms = fo_rep.makespan_ms - victim.detected_ms;
  const double post_tput =
      post_span_ms > 0 ? static_cast<double>(post_served) / post_span_ms * 1e3 : 0.0;
  const double post_ratio =
      steady_rep.throughput_rps > 0 ? post_tput / steady_rep.throughput_rps : 0.0;

  std::printf("failover (4 workers, crash=%zu@3000 ~ T/2):\n", kVictim);
  std::printf("  detection-to-drain %.3f ms after the last heartbeat (declared at %.2f ms "
              "of %.2f ms)\n",
              detect_latency, victim.detected_ms, fo_rep.makespan_ms);
  std::printf("  drain: %lld orphans re-queued, %lld shed at re-admission; "
              "failovers %lld, reproducible=%s\n",
              static_cast<long long>(fo_rep.requeued),
              static_cast<long long>(fo_rep.drain_shed),
              static_cast<long long>(fo_rep.failovers), fo_reproducible ? "yes" : "NO");
  std::printf("  post-failover %.1f req/s vs 3-worker steady %.1f req/s (%.2fx), "
              "admitted p99 %.3f ms (budget %.3f ms), miss %.2f%%\n\n",
              post_tput, steady_rep.throughput_rps, post_ratio, fo_rep.p99_response_ms,
              fo_fc.classes[0].p99_budget_ms, 100.0 * fo_rep.miss_rate);

  if (!fo_reproducible || !steady_reproducible) {
    std::fprintf(stderr, "serve_snapshot: failover rows not bit-identical across same-seed runs\n");
    ok = false;
  }
  if (fo_rep.failovers != 1) {
    std::fprintf(stderr, "serve_snapshot: expected exactly 1 failover, got %lld\n",
                 static_cast<long long>(fo_rep.failovers));
    ok = false;
  }
  if (post_ratio < 0.7) {
    std::fprintf(stderr, "serve_snapshot: post-failover throughput %.2fx below the 0.7x bar\n",
                 post_ratio);
    ok = false;
  }
  if (fo_rep.p99_response_ms > fo_fc.classes[0].p99_budget_ms) {
    std::fprintf(stderr, "serve_snapshot: failover admitted p99 %.3f ms over the %.3f ms budget\n",
                 fo_rep.p99_response_ms, fo_fc.classes[0].p99_budget_ms);
    ok = false;
  }

  // --- cascade: input-adaptive two-stage serving vs the static deep cut --
  // The accuracy side of the claim lives in the golden cascade front
  // (tests/golden/cascade_front.json): escalations return the deep TRN's
  // output and early exits only take high-confidence answers, so the
  // cascade's accuracy is equal-or-better than the shallow cut and tracks
  // the deep one. This row pins the latency side: at a deadline-feasible
  // load, the cascade's mean response beats serving every request deep.
  util::Rng casc_rng(11);
  const std::vector<int> casc_cuts = core::blockwise_cutpoints(*graph);
  const int casc_shallow = casc_cuts[casc_cuts.size() / 3];
  const int casc_deep = casc_cuts.back();
  const auto shallow_graph = std::make_shared<const nn::Graph>(
      core::build_trn(*graph, casc_shallow, core::HeadConfig{}, casc_rng));
  const auto deep_graph = std::make_shared<const nn::Graph>(
      core::build_trn(*graph, casc_deep, core::HeadConfig{}, casc_rng));
  const int casc_resume = graph->prefix(casc_shallow).node_count() - 1;
  const auto shallow_curve = batch_curve(shallow_graph);
  const auto deep_curve = batch_curve(deep_graph);
  auto stage2_device = std::make_shared<hw::DeviceModel>();
  auto stage2_cache = std::make_shared<std::map<int, double>>();
  const auto stage2_curve = [deep_graph, stage2_device, casc_resume, stage2_cache](int k) {
    if (auto it = stage2_cache->find(k); it != stage2_cache->end()) return it->second;
    const double v = stage2_device->network_latency_from_ms(*deep_graph, hw::Precision::kInt8,
                                                            true, casc_resume, k);
    return stage2_cache->emplace(k, v).first->second;
  };
  const double casc_p = 0.3;  // calibrated escalation mass (timing-only row)

  serve_sim::LoadConfig casc_load;
  casc_load.requests = 2000;
  casc_load.mean_interarrival_ms = 1.2 * deep_curve(1);  // feasible even all-deep
  casc_load.deadline_slack_ms = 3.0 * deep_curve(1);
  const auto casc_arrivals = serve_sim::generate_arrivals(casc_load, {});

  std::int64_t casc_escalated = 0;
  auto casc_once = [&](bool cascaded) {
    serve::RequestQueue queue;
    serve::ServeConfig sc;
    sc.max_batch = 8;
    sc.nominal_deadline_ms = casc_load.deadline_slack_ms;
    serve::ServeCascade cascade;
    if (cascaded) {
      cascade.enabled = true;
      cascade.threshold = 0.2;
      cascade.p_escalate = casc_p;
      cascade.stage2_ms = stage2_curve;
    }
    serve::BatchServer server({{cascaded ? "cascade" : "deep-static", nullptr,
                                cascaded ? shallow_curve : deep_curve, cascade}},
                              queue, sc);
    serve_sim::SimReport rep = serve_sim::run_open_loop(server, queue, casc_arrivals);
    if (cascaded) casc_escalated = server.stats().escalated;
    return rep;
  };
  const auto mean_response = [](const serve_sim::SimReport& r) {
    double sum = 0.0;
    for (const serve::Completion& c : r.completions) sum += c.finish_ms - c.arrival_ms;
    return r.completions.empty() ? 0.0 : sum / static_cast<double>(r.completions.size());
  };
  const serve_sim::SimReport casc_rep = casc_once(true);
  const bool casc_reproducible = serve_sim::reports_identical(casc_rep, casc_once(true));
  const serve_sim::SimReport deep_rep = casc_once(false);
  const bool deep_reproducible = serve_sim::reports_identical(deep_rep, casc_once(false));
  const double casc_mean = mean_response(casc_rep);
  const double deep_mean = mean_response(deep_rep);

  std::printf("cascade (stage1 /%d + p=%.2f x stage2 resume@%d) vs deep static /%d:\n",
              casc_shallow, casc_p, casc_resume, casc_deep);
  std::printf("  cascade:     mean %.4f ms, p99 %.3f ms, miss %.2f%%, escalated %lld, "
              "reproducible=%s\n",
              casc_mean, casc_rep.p99_response_ms, 100.0 * casc_rep.miss_rate,
              static_cast<long long>(casc_escalated), casc_reproducible ? "yes" : "NO");
  std::printf("  deep static: mean %.4f ms, p99 %.3f ms, miss %.2f%%, reproducible=%s\n\n",
              deep_mean, deep_rep.p99_response_ms, 100.0 * deep_rep.miss_rate,
              deep_reproducible ? "yes" : "NO");

  if (!casc_reproducible || !deep_reproducible) {
    std::fprintf(stderr, "serve_snapshot: cascade rows not bit-identical across same-seed runs\n");
    ok = false;
  }
  if (casc_mean >= deep_mean) {
    std::fprintf(stderr, "serve_snapshot: cascade mean %.4f ms not below deep static %.4f ms\n",
                 casc_mean, deep_mean);
    ok = false;
  }
  if (casc_rep.miss_rate > deep_rep.miss_rate) {
    std::fprintf(stderr, "serve_snapshot: cascade miss rate exceeds the deep static baseline\n");
    ok = false;
  }
  if (casc_escalated <= 0) {
    std::fprintf(stderr, "serve_snapshot: cascade row never escalated\n");
    ok = false;
  }

  std::ofstream out(json_path);
  if (!out) {
    std::cerr << "serve_snapshot: cannot open " << json_path << "\n";
    return 1;
  }
  out << "{\n  \"load\": {\"requests\": " << load.requests
      << ", \"mean_interarrival_ms\": " << load.mean_interarrival_ms
      << ", \"deadline_slack_ms\": " << load.deadline_slack_ms
      << ", \"seed\": " << load.seed << "},\n";
  out << "  \"throughput_ratio\": " << ratio << ",\n";
  out << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) emit_json(out, runs[i], i + 1 == runs.size());
  out << "  ],\n";
  out << "  \"queue_take\": {\"backlog\": " << qb.backlog << ", \"batch\": " << qb.batch
      << ", \"heap_us_per_take\": " << qb.heap_us_per_take
      << ", \"sort_us_per_take\": " << qb.sort_us_per_take
      << ", \"order_identical\": " << (qb.order_identical ? "true" : "false")
      << ", \"note\": \"wall-clock costs, excluded from the bit-identity gate\"},\n";
  out << "  \"fleet\": {\n    \"throughput_ratio_4v1\": " << ratio_4v1 << ",\n";
  out << "    \"scaling\": [\n";
  for (std::size_t i = 0; i < fleet_runs.size(); ++i)
    emit_fleet_json(out, fleet_runs[i], i + 1 == fleet_runs.size());
  out << "    ],\n    \"overload\": [\n";
  emit_fleet_json(out, overload, true);
  out << "    ],\n    \"tenants\": [\n";
  {
    std::size_t i = 0;
    for (const auto& [tenant, tr] : overload.report.tenants) {
      out << "      {\"tenant\": " << tenant << ", \"class\": \""
          << tenant_fc.classes[tr.slo].name << "\", \"submitted\": " << tr.submitted
          << ", \"shed_rate\": " << tr.shed_rate << ", \"miss_rate\": " << tr.miss_rate
          << ", \"p99_response_ms\": " << tr.p99_response_ms
          << ", \"p99_budget_ms\": " << tenant_fc.classes[tr.slo].p99_budget_ms << "}"
          << (++i == overload.report.tenants.size() ? "" : ",") << "\n";
    }
  }
  out << "    ],\n    \"failover\": {\"workers\": 4, \"crash\": \"" << kVictim
      << "@3000\", \"detection_latency_ms\": " << detect_latency
      << ", \"detected_ms\": " << victim.detected_ms << ", \"requeued\": " << fo_rep.requeued
      << ", \"drain_shed\": " << fo_rep.drain_shed << ", \"failovers\": " << fo_rep.failovers
      << ", \"post_failover_throughput_rps\": " << post_tput
      << ", \"three_worker_throughput_rps\": " << steady_rep.throughput_rps
      << ", \"post_over_steady_ratio\": " << post_ratio
      << ", \"p99_response_ms\": " << fo_rep.p99_response_ms
      << ", \"p99_budget_ms\": " << fo_fc.classes[0].p99_budget_ms
      << ", \"miss_rate\": " << fo_rep.miss_rate << ", \"digest\": " << fo_rep.digest
      << ", \"reproducible\": " << (fo_reproducible ? "true" : "false") << "}\n  },\n";
  out << "  \"cascade\": {\"shallow_cut\": " << casc_shallow << ", \"deep_cut\": " << casc_deep
      << ", \"resume_node\": " << casc_resume << ", \"p_escalate\": " << casc_p
      << ", \"requests\": " << casc_load.requests
      << ", \"mean_interarrival_ms\": " << casc_load.mean_interarrival_ms
      << ",\n    \"cascade_mean_ms\": " << casc_mean
      << ", \"cascade_p99_ms\": " << casc_rep.p99_response_ms
      << ", \"cascade_miss_rate\": " << casc_rep.miss_rate
      << ", \"escalated\": " << casc_escalated
      << ", \"cascade_reproducible\": " << (casc_reproducible ? "true" : "false")
      << ",\n    \"deep_static_mean_ms\": " << deep_mean
      << ", \"deep_static_p99_ms\": " << deep_rep.p99_response_ms
      << ", \"deep_static_miss_rate\": " << deep_rep.miss_rate
      << ", \"deep_static_reproducible\": " << (deep_reproducible ? "true" : "false")
      << ",\n    \"mean_latency_improved\": " << (casc_mean < deep_mean ? "true" : "false")
      << "}\n}\n";
  std::cout << "wrote " << json_path << "\n";
  return ok ? 0 : 1;
}
