// Figure 9: estimation accuracy per network for the profiler-based and
// analytical estimators (plus the linear ablation), with the paper's
// aggregate numbers: profiler 3.5% / 0.024 ms, analytical 4.28% / 0.029 ms,
// linear 23.81% / 0.092 ms. Grid search with 10-fold CV tunes the SVR
// on the 20% train split (Section V-B2).
//
// Also prints the ratio-vs-plain-sum ablation for the profiler estimator
// (the design choice the paper justifies with the event-overhead artifact).
#include "bench_common.hpp"

#include <map>

#include "util/stats.hpp"

int main() {
  using namespace netcut;
  using namespace netcut::bench;

  print_header("Fig 9: estimation accuracy per network");

  core::LatencyLab lab(lab_config());
  const auto samples = collect_latency_samples(lab);
  std::vector<core::LatencySample> train, test;
  split_samples(samples, train, test);

  core::AnalyticalEstimator svr(lab, /*grid_search=*/true);
  svr.fit(train);
  core::LinearEstimator lin(lab);
  lin.fit(train);
  core::ProfilerEstimator prof(lab);

  std::printf("SVR grid search picked gamma=%.3g C=%.3g over 10-fold CV\n\n",
              svr.fitted_config().gamma, svr.fitted_config().c);

  struct Errors {
    std::vector<double> truth, prof, svr, lin, sum_ablation;
  };
  std::map<zoo::NetId, Errors> by_net;
  for (const core::LatencySample& s : test) {
    Errors& e = by_net[s.base];
    e.truth.push_back(s.measured_ms);
    e.prof.push_back(prof.estimate_ms(s.base, s.cut_node));
    e.svr.push_back(svr.predict(s.features));
    e.lin.push_back(lin.predict(s.features));
    // Ablation: plain sum of remaining profiled layers (no ratio rescale).
    const hw::LatencyTable& t = lab.profile(s.base);
    double kept = 0.0;
    for (const hw::ProfiledLayer& l : t.layers)
      if (l.node <= s.cut_node || l.node > lab.trunk_last_node(s.base))
        kept += l.latency_ms;
    e.sum_ablation.push_back(kept);
  }

  util::Table table({"network", "profiler%", "analytical%", "linear%", "plain-sum%"});
  std::vector<double> all_truth, all_prof, all_svr, all_lin, all_sum;
  int analytical_wins = 0;
  for (zoo::NetId net : zoo::all_nets()) {
    const Errors& e = by_net.at(net);
    const double pe = util::mean_relative_error(e.prof, e.truth) * 100.0;
    const double ae = util::mean_relative_error(e.svr, e.truth) * 100.0;
    const double le = util::mean_relative_error(e.lin, e.truth) * 100.0;
    const double se = util::mean_relative_error(e.sum_ablation, e.truth) * 100.0;
    table.add_row({zoo::net_name(net), util::Table::num(pe, 2), util::Table::num(ae, 2),
                   util::Table::num(le, 2), util::Table::num(se, 2)});
    if (ae < pe) ++analytical_wins;
    all_truth.insert(all_truth.end(), e.truth.begin(), e.truth.end());
    all_prof.insert(all_prof.end(), e.prof.begin(), e.prof.end());
    all_svr.insert(all_svr.end(), e.svr.begin(), e.svr.end());
    all_lin.insert(all_lin.end(), e.lin.begin(), e.lin.end());
    all_sum.insert(all_sum.end(), e.sum_ablation.begin(), e.sum_ablation.end());
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("aggregate over all TRNs (paper values in brackets):\n");
  std::printf("  profiler-based : %5.2f%%  %.4f ms   [3.50%%, 0.024 ms]\n",
              util::mean_relative_error(all_prof, all_truth) * 100.0,
              util::mean_absolute_error(all_prof, all_truth));
  std::printf("  analytical SVR : %5.2f%%  %.4f ms   [4.28%%, 0.029 ms]\n",
              util::mean_relative_error(all_svr, all_truth) * 100.0,
              util::mean_absolute_error(all_svr, all_truth));
  std::printf("  linear regress.: %5.2f%%  %.4f ms   [23.81%%, 0.092 ms]\n",
              util::mean_relative_error(all_lin, all_truth) * 100.0,
              util::mean_absolute_error(all_lin, all_truth));
  std::printf("  plain-sum ablat: %5.2f%%  %.4f ms   [motivates the ratio formula]\n",
              util::mean_relative_error(all_sum, all_truth) * 100.0,
              util::mean_absolute_error(all_sum, all_truth));
  std::printf("networks where the analytical model beats the profiler: %d  [paper: 2]\n",
              analytical_wins);
  return 0;
}
