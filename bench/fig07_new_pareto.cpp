// Figure 7: the new Pareto frontier after layer removal, and the paper's
// headline relative-accuracy-improvement numbers: up to 10.43% for a single
// removed block of MobileNetV1(0.5), 5.0% on average over all TRNs.
//
// "Relative improvement" of a TRN is measured the way the paper uses it:
// against the best *off-the-shelf* network whose latency does not exceed
// the TRN's own latency budget (the network one would otherwise deploy).
#include "bench_common.hpp"

#include <algorithm>

int main() {
  using namespace netcut;
  using namespace netcut::bench;

  print_header("Fig 7: the new Pareto frontier (off-the-shelf + TRNs)");

  core::LatencyLab lab(lab_config());
  const data::HandsDataset dataset(dataset_config());
  core::TrnEvaluator evaluator(dataset, eval_config());
  core::BlockwiseExplorer explorer(lab, evaluator);

  const auto candidates = explorer.explore_all(true);

  std::vector<core::TradeoffPoint> offshelf, all;
  for (const core::Candidate& c : candidates) {
    const core::TradeoffPoint p{c.trn_name, c.latency_ms, c.accuracy};
    if (c.blocks_removed == 0) offshelf.push_back(p);
    all.push_back(p);
  }

  const auto old_frontier = core::pareto_frontier(offshelf);
  const auto new_frontier = core::pareto_frontier(all);

  std::printf("old frontier (off-the-shelf only), %zu points:\n", old_frontier.size());
  for (const auto& p : old_frontier)
    std::printf("  %-24s %8.3f ms   %.4f\n", p.name.c_str(), p.latency_ms, p.accuracy);
  std::printf("\nnew frontier (with TRNs), %zu points:\n", new_frontier.size());
  for (const auto& p : new_frontier)
    std::printf("  %-24s %8.3f ms   %.4f\n", p.name.c_str(), p.latency_ms, p.accuracy);

  // Relative improvement of each TRN over the best off-the-shelf network
  // at or under the TRN's latency.
  double best_gain = 0.0;
  std::string best_gain_name;
  double gain_sum = 0.0;
  int gain_count = 0;
  for (const core::Candidate& c : candidates) {
    if (c.blocks_removed == 0) continue;
    const int ref = core::best_under_deadline(offshelf, c.latency_ms);
    if (ref < 0) continue;
    const double ref_acc = offshelf[static_cast<std::size_t>(ref)].accuracy;
    const double gain = (c.accuracy - ref_acc) / ref_acc * 100.0;
    gain_sum += gain;
    ++gain_count;
    if (gain > best_gain) {
      best_gain = gain;
      best_gain_name = c.trn_name;
    }
  }
  std::printf("\nmax relative accuracy improvement:  %.2f%% (%s)   [paper: 10.43%%]\n",
              best_gain, best_gain_name.c_str());
  std::printf("mean relative improvement over TRNs: %.2f%%            [paper: 5.0%%]\n",
              gain_sum / std::max(1, gain_count));

  // The single-block MobileNetV1-0.5 TRN the paper highlights.
  for (const core::Candidate& c : candidates)
    if (c.base == zoo::NetId::kMobileNetV1_050 && c.blocks_removed == 1) {
      const int ref = core::best_under_deadline(offshelf, c.latency_ms);
      const double ref_acc = offshelf[static_cast<std::size_t>(ref)].accuracy;
      std::printf("MobileNetV1-0.50 minus 1 block (%s): %+.2f%% vs %s\n", c.trn_name.c_str(),
                  (c.accuracy - ref_acc) / ref_acc * 100.0,
                  offshelf[static_cast<std::size_t>(ref)].name.c_str());
    }
  return 0;
}
