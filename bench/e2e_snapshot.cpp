// End-to-end performance snapshot (BENCH_e2e.json): wall-clock for the
// quickstart pipeline and a fast-mode fig10-style NetCut run, plus
// per-forward heap-allocation counts and activation-memory footprint with
// the arena-backed memory planner on vs off. Appends nothing; each run
// rewrites the JSON so the numbers always describe the current tree.
//
//   ./build/bench/e2e_snapshot [--json BENCH_e2e.json]
//
// The quickstart and forward sections compare planned vs naive execution
// directly. The fig10 section reuses the shared experiment caches
// (netcut_weights/, netcut_accuracy_cache.csv) exactly like the fig*
// harnesses, so its wall-clock reflects the steady-state developer loop.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "nn/init.hpp"
#include "nn/network.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"
#include "zoo/zoo.hpp"

namespace {

using namespace netcut;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best-of-reps wall time of fn(), in milliseconds.
template <typename Fn>
double time_best_ms(Fn&& fn, int reps) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    const double t0 = now_ms();
    fn();
    const double t1 = now_ms();
    if (t1 - t0 < best) best = t1 - t0;
  }
  return best;
}

/// Interleaved A/B comparison: alternates the two bodies rep by rep so
/// cold-start (page cache, CPU frequency ramp) and drift hit both sides
/// equally, and returns {best_a_ms, best_b_ms}.
template <typename FnA, typename FnB>
std::pair<double, double> time_best_ab_ms(FnA&& a, FnB&& b, int reps) {
  double best_a = 1e300, best_b = 1e300;
  for (int i = 0; i < reps; ++i) {
    double t0 = now_ms();
    a();
    double t1 = now_ms();
    if (t1 - t0 < best_a) best_a = t1 - t0;
    t0 = now_ms();
    b();
    t1 = now_ms();
    if (t1 - t0 < best_b) best_b = t1 - t0;
  }
  return {best_a, best_b};
}

/// The quickstart pipeline (examples/quickstart.cpp) minus the printf:
/// select + retrain one TRN of MobileNetV2-1.40 against a 0.45 ms deadline.
/// No accuracy memo, so the retraining forwards/backwards run for real.
double run_quickstart_once() {
  core::LatencyLab lab;
  data::HandsConfig data_cfg;
  data_cfg.resolution = 24;
  data_cfg.train_count = 150;
  data_cfg.test_count = 60;
  const data::HandsDataset dataset(data_cfg);

  core::EvalConfig eval_cfg;
  eval_cfg.resolution = 24;
  eval_cfg.epochs = 10;
  eval_cfg.cache_path.clear();
  core::TrnEvaluator evaluator(dataset, eval_cfg);

  core::ProfilerEstimator estimator(lab);
  core::NetCut netcut(lab, evaluator);
  core::NetCutConfig cfg;
  cfg.deadline_ms = 0.45;
  cfg.networks = {zoo::NetId::kMobileNetV2_140};
  const core::NetCutResult result = netcut.run(estimator, cfg);
  return result.selected >= 0 ? result.winner().trn.accuracy : -1.0;
}

/// Fig10-style selection under NETCUT_FAST: NetCut with the profiler
/// estimator over all seven networks at the robotic-hand deadline.
void run_fig10_fast_once() {
  core::LatencyLab lab(bench::lab_config());
  const data::HandsDataset dataset(bench::dataset_config());
  core::TrnEvaluator evaluator(dataset, bench::eval_config());
  core::NetCut netcut(lab, evaluator);
  core::ProfilerEstimator prof(lab);
  core::NetCutConfig cfg;
  cfg.deadline_ms = bench::kDeadlineMs;
  const core::NetCutResult r = netcut.run(prof, cfg);
  if (r.selected < 0) std::fprintf(stderr, "e2e_snapshot: fig10 run selected nothing\n");
}

struct ForwardRecord {
  std::string net;
  int resolution = 0;
  std::uint64_t naive_allocs = 0, planned_allocs = 0;
  std::size_t naive_activation_bytes = 0, planned_peak_activation_bytes = 0;
  double naive_ms = 0.0, planned_ms = 0.0;
};

ForwardRecord measure_forward(zoo::NetId id, int resolution) {
  util::Rng rng(7);
  nn::Graph g = zoo::build_trunk(id, resolution);
  nn::init_graph(g, rng);
  const tensor::Tensor x =
      tensor::Tensor::randn(tensor::Shape::chw(3, resolution, resolution), rng, 0.5f);

  ForwardRecord r;
  r.net = zoo::net_name(id);
  r.resolution = resolution;

  nn::Network planned(g);
  planned.set_memory_planning(true);
  nn::Network naive(g);
  naive.set_memory_planning(false);
  (void)planned.forward(x);  // warm-up: plan + arena + conv scratch
  (void)naive.forward(x);

  const nn::MemoryPlan& plan = planned.plan_for({}, /*train=*/false);
  r.planned_peak_activation_bytes = plan.planned_activation_floats() * sizeof(float);
  r.naive_activation_bytes = plan.naive_activation_floats() * sizeof(float);

  std::uint64_t c0 = tensor::tensor_alloc_count();
  (void)planned.forward(x);
  r.planned_allocs = tensor::tensor_alloc_count() - c0;
  c0 = tensor::tensor_alloc_count();
  (void)naive.forward(x);
  r.naive_allocs = tensor::tensor_alloc_count() - c0;

  constexpr int kReps = 30;
  const auto [planned_ms, naive_ms] = time_best_ab_ms(
      [&] { (void)planned.forward(x); }, [&] { (void)naive.forward(x); }, kReps);
  r.planned_ms = planned_ms;
  r.naive_ms = naive_ms;
  return r;
}

/// Diagnostic (--train-ab): steady-state train-mode forward cost, planned vs
/// naive, on one trunk. Isolates the planner's overhead on the retraining
/// path, where pinned lifetimes mean no buffer reuse is possible.
void train_ab() {
  util::Rng rng(7);
  nn::Graph g = zoo::build_trunk(zoo::NetId::kMobileNetV2_140, 24);
  nn::init_graph(g, rng);
  const tensor::Tensor x = tensor::Tensor::randn(tensor::Shape::chw(3, 24, 24), rng, 0.5f);
  nn::Network planned(g);
  planned.set_memory_planning(true);
  nn::Network naive(g);
  naive.set_memory_planning(false);
  (void)planned.forward(x, /*train=*/true);
  (void)naive.forward(x, /*train=*/true);
  const auto [p, n] = time_best_ab_ms([&] { (void)planned.forward(x, true); },
                                      [&] { (void)naive.forward(x, true); }, 50);
  std::printf("train fwd: planned %.3f ms vs naive %.3f ms\n", p, n);
}

/// Times one fresh-subprocess run of `self --run-<which>` with the planner
/// forced on or off, in milliseconds. Fresh processes keep the two modes
/// from contaminating each other through allocator state, and match how the
/// pipelines actually run.
double time_subprocess_ms(const std::string& self, const char* which, bool planned) {
  const std::string cmd = std::string("NETCUT_MEMPLAN=") + (planned ? "1" : "0") + " '" + self +
                          "' --run-" + which + " >/dev/null 2>&1";
  const double t0 = now_ms();
  if (std::system(cmd.c_str()) != 0)
    std::fprintf(stderr, "e2e_snapshot: subprocess '%s' failed\n", cmd.c_str());
  return now_ms() - t0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_e2e.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--train-ab") == 0) {
      train_ab();
      return 0;
    }
    if (std::strcmp(argv[i], "--run-quickstart") == 0) {
      run_quickstart_once();
      return 0;
    }
    if (std::strcmp(argv[i], "--run-fig10") == 0) {
      setenv("NETCUT_FAST", "1", 1);
      run_fig10_fast_once();
      return 0;
    }
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
    else if (std::strncmp(argv[i], "--json=", 7) == 0)
      json_path = argv[i] + 7;
  }
  const std::string self = argv[0];

  // Each pipeline: one untimed warm-up subprocess (weight caches, page
  // cache, frequency ramp), then planned vs naive interleaved best-of-3 in
  // fresh subprocesses (the pipelines are deterministic; repetition only
  // filters scheduler noise).
  std::printf("warming up quickstart pipeline...\n");
  time_subprocess_ms(self, "quickstart", true);
  std::printf("timing quickstart (planned vs naive, fresh subprocesses)...\n");
  const auto [quickstart_planned_ms, quickstart_naive_ms] = time_best_ab_ms(
      [&] { return time_subprocess_ms(self, "quickstart", true); },
      [&] { return time_subprocess_ms(self, "quickstart", false); }, 3);

  setenv("NETCUT_FAST", "1", 1);
  std::printf("warming up fig10-style fast run (shared caches)...\n");
  time_subprocess_ms(self, "fig10", true);
  std::printf("timing fig10-style fast run (planned vs naive, fresh subprocesses)...\n");
  const auto [fig10_planned_ms, fig10_naive_ms] =
      time_best_ab_ms([&] { return time_subprocess_ms(self, "fig10", true); },
                      [&] { return time_subprocess_ms(self, "fig10", false); }, 3);

  std::printf("per-forward metrics...\n");
  std::vector<ForwardRecord> fwd;
  fwd.push_back(measure_forward(zoo::NetId::kMobileNetV2_140, 32));
  fwd.push_back(measure_forward(zoo::NetId::kResNet50, 32));
  fwd.push_back(measure_forward(zoo::NetId::kInceptionV3, 32));
  // Larger inputs: the activation working set outgrows the cache naively
  // (8-12 MiB) but stays cache-resident under the plan (~1 MiB), so the
  // locality payoff of buffer reuse shows up here.
  fwd.push_back(measure_forward(zoo::NetId::kMobileNetV2_140, 64));
  fwd.push_back(measure_forward(zoo::NetId::kResNet50, 64));

  std::ofstream out(json_path);
  if (!out) {
    std::cerr << "e2e_snapshot: cannot open " << json_path << "\n";
    return 1;
  }
  out << "{\n";
  out << "  \"quickstart\": {\"planned_ms\": " << quickstart_planned_ms
      << ", \"naive_ms\": " << quickstart_naive_ms << "},\n";
  out << "  \"fig10_fast\": {\"planned_ms\": " << fig10_planned_ms
      << ", \"naive_ms\": " << fig10_naive_ms << "},\n";
  out << "  \"forward\": [\n";
  for (std::size_t i = 0; i < fwd.size(); ++i) {
    const ForwardRecord& r = fwd[i];
    out << "    {\"net\": \"" << r.net << "\", \"resolution\": " << r.resolution
        << ", \"planned_allocs\": " << r.planned_allocs
        << ", \"naive_allocs\": " << r.naive_allocs
        << ", \"planned_peak_activation_bytes\": " << r.planned_peak_activation_bytes
        << ", \"naive_activation_bytes\": " << r.naive_activation_bytes
        << ", \"planned_ms\": " << r.planned_ms << ", \"naive_ms\": " << r.naive_ms << "}"
        << (i + 1 < fwd.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << json_path << "\n";

  std::printf("\nquickstart: planned %.0f ms vs naive %.0f ms\n", quickstart_planned_ms,
              quickstart_naive_ms);
  std::printf("fig10 fast: planned %.0f ms vs naive %.0f ms\n", fig10_planned_ms,
              fig10_naive_ms);
  for (const ForwardRecord& r : fwd)
    std::printf("%-18s fwd: %.3f ms vs %.3f ms, allocs %llu vs %llu, act MiB %.2f vs %.2f\n",
                r.net.c_str(), r.planned_ms, r.naive_ms,
                static_cast<unsigned long long>(r.planned_allocs),
                static_cast<unsigned long long>(r.naive_allocs),
                r.planned_peak_activation_bytes / 1048576.0,
                r.naive_activation_bytes / 1048576.0);
  return 0;
}
