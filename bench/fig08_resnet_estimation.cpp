// Figure 8: latency estimations vs measured ground truth for ResNet-50's
// TRN sweep — the profiler-based ratio estimator, the analytical RBF-SVR,
// the linear-regression ablation, and the measurement itself.
#include "bench_common.hpp"

#include "util/stats.hpp"

int main() {
  using namespace netcut;
  using namespace netcut::bench;

  print_header("Fig 8: estimation vs ground truth (ResNet-50 TRNs)");

  core::LatencyLab lab(lab_config());

  // Train the learned estimators on the 20% split of the full-zoo samples.
  const auto samples = collect_latency_samples(lab);
  std::vector<core::LatencySample> train, test;
  split_samples(samples, train, test);
  core::AnalyticalEstimator svr(lab);
  svr.fit(train);
  core::LinearEstimator lin(lab);
  lin.fit(train);
  core::ProfilerEstimator prof(lab);

  const zoo::NetId net = zoo::NetId::kResNet50;
  util::Table table(
      {"trn", "measured_ms", "profiler_ms", "analytical_ms", "linear_ms"});
  std::vector<double> truths, prof_e, svr_e, lin_e;
  for (int cut : lab.blockwise(net)) {
    const double truth = lab.measured_ms(net, cut);
    const double p = prof.estimate_ms(net, cut);
    const double a = svr.estimate_ms(net, cut);
    const double l = lin.estimate_ms(net, cut);
    table.add_row({lab.name(net, cut), util::Table::num(truth, 3), util::Table::num(p, 3),
                   util::Table::num(a, 3), util::Table::num(l, 3)});
    truths.push_back(truth);
    prof_e.push_back(p);
    svr_e.push_back(a);
    lin_e.push_back(l);
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("mean relative error on ResNet-50 TRNs:\n");
  std::printf("  profiler-based : %6.2f%%\n",
              util::mean_relative_error(prof_e, truths) * 100.0);
  std::printf("  analytical SVR : %6.2f%%\n",
              util::mean_relative_error(svr_e, truths) * 100.0);
  std::printf("  linear (ablat.): %6.2f%%\n",
              util::mean_relative_error(lin_e, truths) * 100.0);
  std::printf("fitted SVR hyper-parameters: gamma=%.3g C=%.3g (paper: 0.1, 1e6)\n",
              svr.fitted_config().gamma, svr.fitted_config().c);
  return 0;
}
