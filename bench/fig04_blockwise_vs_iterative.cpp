// Figure 4: blockwise layer removal vs iterative (exhaustive per-layer)
// removal for InceptionV3 — accuracy vs number of layers removed, plus the
// paper's claim that blockwise loses < 0.03 accuracy at matching cuts.
#include "bench_common.hpp"

#include <algorithm>
#include <cmath>

int main() {
  using namespace netcut;
  using namespace netcut::bench;

  print_header("Fig 4: blockwise vs iterative layer removal (InceptionV3)");

  core::LatencyLab lab(lab_config());
  const data::HandsDataset dataset(dataset_config());
  core::TrnEvaluator evaluator(dataset, eval_config());
  core::BlockwiseExplorer explorer(lab, evaluator);

  const zoo::NetId net = zoo::NetId::kInceptionV3;
  const auto iterative = explorer.explore_iterative(net, true);
  const auto blockwise = explorer.explore(net, true);

  util::Table table({"series", "trn", "layers_removed", "accuracy"});
  for (const core::Candidate& c : iterative)
    table.add_row({"iterative", c.trn_name, std::to_string(c.layers_removed),
                   util::Table::num(c.accuracy, 4)});
  for (const core::Candidate& c : blockwise)
    table.add_row({"blockwise", c.trn_name, std::to_string(c.layers_removed),
                   util::Table::num(c.accuracy, 4)});
  std::printf("%s\n", table.to_string().c_str());

  // At every blockwise cut, compare against the best iterative candidate
  // with at least as many layers removed but before the next block end —
  // the layers "kept inside the block" the paper found unnecessary.
  double max_gap = 0.0;
  for (const core::Candidate& b : blockwise) {
    double best_finer = b.accuracy;
    for (const core::Candidate& it : iterative)
      if (it.layers_removed <= b.layers_removed)
        best_finer = std::max(best_finer, it.accuracy);
    // Gap between the blockwise point and any finer cut that removes no
    // more than it does.
    max_gap = std::max(max_gap, best_finer - b.accuracy);
  }
  std::printf("max accuracy sacrificed by blockwise granularity: %.4f", max_gap);
  std::printf("   (paper: < 0.03)\n");
  std::printf("candidates: iterative=%zu  blockwise=%zu  (search-space reduction %.0f%%)\n",
              iterative.size(), blockwise.size(),
              100.0 * (1.0 - static_cast<double>(blockwise.size()) /
                                 static_cast<double>(iterative.size())));
  return 0;
}
