// Figure 10 + the exploration-time accounting: NetCut's final selected
// networks under both estimators, the accuracy improvement over the best
// off-the-shelf real-time network, the number of retrained networks vs
// exhaustive blockwise exploration (paper: 9 vs 148, a 95% reduction), and
// the GPU-hour bill (paper: 6.7 h vs 183 h = 27x).
#include "bench_common.hpp"

#include <set>

int main() {
  using namespace netcut;
  using namespace netcut::bench;

  print_header("Fig 10: NetCut final selections & exploration speedup (deadline 0.9 ms)");

  core::LatencyLab lab(lab_config());
  const data::HandsDataset dataset(dataset_config());
  core::TrnEvaluator evaluator(dataset, eval_config());
  core::NetCut netcut(lab, evaluator);

  // Estimators, trained exactly as in fig08/fig09.
  const auto samples = collect_latency_samples(lab);
  std::vector<core::LatencySample> train, test;
  split_samples(samples, train, test);
  core::AnalyticalEstimator svr(lab);
  svr.fit(train);
  core::ProfilerEstimator prof(lab);

  // Reference: the best off-the-shelf network under the deadline.
  std::vector<core::TradeoffPoint> offshelf;
  for (zoo::NetId net : zoo::all_nets()) {
    const int full = lab.full_cut(net);
    offshelf.push_back({zoo::net_name(net), lab.measured_ms(net, full),
                        evaluator.accuracy(net, full).angular_similarity});
  }
  const int ref = core::best_under_deadline(offshelf, kDeadlineMs);
  const double ref_acc = offshelf[static_cast<std::size_t>(ref)].accuracy;
  std::printf("best off-the-shelf under deadline: %s (%.3f ms, accuracy %.4f)\n\n",
              offshelf[static_cast<std::size_t>(ref)].name.c_str(),
              offshelf[static_cast<std::size_t>(ref)].latency_ms, ref_acc);

  core::NetCutConfig cfg;
  cfg.deadline_ms = kDeadlineMs;

  std::set<std::string> retrained;
  double netcut_hours = 0.0;

  for (core::LatencyEstimator* est :
       std::initializer_list<core::LatencyEstimator*>{&prof, &svr}) {
    const core::NetCutResult r = netcut.run(*est, cfg);
    std::printf("--- estimator: %s ---\n", r.estimator.c_str());
    util::Table table({"proposal", "est_ms", "measured_ms", "accuracy", "meets", "rel-gain%"});
    for (const core::NetCutProposal& p : r.proposals) {
      table.add_row({p.trn.trn_name, util::Table::num(p.estimated_ms, 3),
                     util::Table::num(p.trn.latency_ms, 3),
                     util::Table::num(p.trn.accuracy, 4), p.meets_deadline ? "yes" : "no",
                     util::Table::num((p.trn.accuracy - ref_acc) / ref_acc * 100.0, 2)});
      if (retrained.insert(p.trn.trn_name).second) netcut_hours += p.trn.train_hours;
    }
    std::printf("%s", table.to_string().c_str());
    const core::NetCutProposal& w = r.winner();
    std::printf("selected: %s  accuracy %.4f  (%+.2f%% vs off-the-shelf)\n\n",
                w.trn.trn_name.c_str(), w.trn.accuracy,
                (w.trn.accuracy - ref_acc) / ref_acc * 100.0);
  }

  // Exploration-time accounting against exhaustive blockwise retraining.
  double blockwise_hours = 0.0;
  int blockwise_count = 0;
  for (zoo::NetId net : zoo::all_nets()) {
    const auto cuts = lab.blockwise(net);
    for (std::size_t k = 0; k + 1 < cuts.size(); ++k) {
      blockwise_hours += lab.training_hours(net, cuts[k]);
      ++blockwise_count;
    }
    blockwise_hours += lab.training_hours(net, lab.full_cut(net));  // the base nets too
    ++blockwise_count;
  }

  std::printf("exploration accounting (trainer model: Tesla K20m class):\n");
  std::printf("  blockwise exploration: %3d networks, %7.1f GPU-hours   [paper: 148, 183 h]\n",
              blockwise_count, blockwise_hours);
  std::printf("  NetCut (both estim.) : %3zu networks, %7.1f GPU-hours   [paper: 9, 6.7 h]\n",
              retrained.size(), netcut_hours);
  std::printf("  reduction in retrained networks: %.0f%%                 [paper: ~95%%]\n",
              100.0 * (1.0 - static_cast<double>(retrained.size()) / blockwise_count));
  std::printf("  exploration speedup: %.1fx                              [paper: 27x]\n",
              blockwise_hours / netcut_hours);
  return 0;
}
