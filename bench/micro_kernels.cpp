// Substrate micro-benchmarks (google-benchmark): the kernels everything
// else is built on, plus end-to-end inference of representative networks at
// experiment resolution, the SVR fit, and the TRN construction path.
//
// `--json <path>` switches to a self-timed kernel sweep that writes one
// JSON array of {kernel, m, k, n, gflops, ms, backend} records to <path> —
// every fp32/int8 kernel shape timed under both the scalar and simd
// backends, plus end-to-end fp32 vs integer forwards of a zoo trunk with
// the measured and DeviceModel-predicted int8 speedups — so the perf
// trajectory of the GEMM/conv substrate can be tracked across PRs
// (see BENCH_kernels.json).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "core/trn.hpp"
#include "data/hands.hpp"
#include "hw/device.hpp"
#include "ml/svr.hpp"
#include "nn/conv.hpp"
#include "nn/dense.hpp"
#include "nn/init.hpp"
#include "nn/network.hpp"
#include "quant/fusion.hpp"
#include "quant/qnetwork.hpp"
#include "tensor/backend.hpp"
#include "tensor/gemm.hpp"
#include "util/rng.hpp"
#include "zoo/zoo.hpp"

namespace {

using namespace netcut;

void BM_Gemm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(1);
  const auto a = tensor::Tensor::randn(tensor::Shape{n, n}, rng);
  const auto b = tensor::Tensor::randn(tensor::Shape{n, n}, rng);
  tensor::Tensor c(tensor::Shape{n, n});
  for (auto _ : state) {
    tensor::gemm(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_Conv3x3(benchmark::State& state) {
  const int c = static_cast<int>(state.range(0));
  util::Rng rng(2);
  nn::Conv2D conv(c, c, 3, 1);
  nn::he_init_conv(conv.weight(), rng);
  const auto x = tensor::Tensor::randn(tensor::Shape::chw(c, 16, 16), rng);
  for (auto _ : state) {
    auto y = conv.forward({&x}, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Conv3x3)->Arg(16)->Arg(64);

void BM_DepthwiseConv(benchmark::State& state) {
  const int c = static_cast<int>(state.range(0));
  util::Rng rng(3);
  nn::DepthwiseConv2D conv(c, 3, 1);
  nn::he_init_conv(conv.weight(), rng);
  const auto x = tensor::Tensor::randn(tensor::Shape::chw(c, 16, 16), rng);
  for (auto _ : state) {
    auto y = conv.forward({&x}, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_DepthwiseConv)->Arg(32)->Arg(128);

void BM_Int8VsFp32Dense(benchmark::State& state) {
  const bool int8 = state.range(0) == 1;
  util::Rng rng(4);
  nn::Dense dense(512, 128);
  nn::xavier_init_dense(dense.weight(), rng);
  const auto x = tensor::Tensor::uniform(tensor::Shape::vec(512), rng, 0.0f, 1.0f);
  const quant::QuantParams p = quant::QuantParams::from_range(0.0f, 1.0f);
  for (auto _ : state) {
    if (int8) {
      auto y = quant::int8_dense(dense, x, p);
      benchmark::DoNotOptimize(y.data());
    } else {
      auto y = dense.forward({&x}, false);
      benchmark::DoNotOptimize(y.data());
    }
  }
}
BENCHMARK(BM_Int8VsFp32Dense)->Arg(0)->Arg(1);

void BM_InferenceMobileNetV1(benchmark::State& state) {
  util::Rng rng(5);
  nn::Graph g = zoo::build_trunk(zoo::NetId::kMobileNetV1_025, 32);
  nn::init_graph(g, rng);
  nn::Network net(std::move(g));
  const auto x = tensor::Tensor::randn(tensor::Shape::chw(3, 32, 32), rng, 0.5f);
  for (auto _ : state) {
    auto y = net.forward(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_InferenceMobileNetV1);

void BM_SvrFit(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(6);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < n; ++i) {
    const double t = rng.uniform(0.0, 2.0);
    x.push_back({t, t * t});
    y.push_back(std::sin(3.0 * t));
  }
  ml::SvrConfig cfg;
  cfg.gamma = 1.0;
  cfg.c = 100.0;
  for (auto _ : state) {
    ml::Svr svr(cfg);
    svr.fit(x, y);
    benchmark::DoNotOptimize(svr.support_vector_count());
  }
}
BENCHMARK(BM_SvrFit)->Arg(40)->Arg(120);

void BM_TrnConstruction(benchmark::State& state) {
  const nn::Graph trunk = zoo::build_trunk(zoo::NetId::kMobileNetV2_100, 224);
  const auto cuts = core::blockwise_cutpoints(trunk);
  util::Rng rng(7);
  for (auto _ : state) {
    const nn::Graph trn =
        core::build_trn(trunk, cuts[cuts.size() / 2], core::HeadConfig{}, rng);
    benchmark::DoNotOptimize(trn.node_count());
  }
}
BENCHMARK(BM_TrnConstruction);

void BM_HandsRender(benchmark::State& state) {
  util::Rng rng(8);
  for (auto _ : state) {
    auto img = data::render_object(data::GraspType::kPowerSphere, 32, rng, 0.05);
    benchmark::DoNotOptimize(img.data());
  }
}
BENCHMARK(BM_HandsRender);

struct KernelRecord {
  const char* kernel;
  int m, k, n;
  double gflops = 0.0;
  double ms = 0.0;
  const char* backend = "simd";
};

/// Best-of-reps wall time of fn(), in milliseconds.
template <typename Fn>
double time_best_ms(Fn&& fn, int warmup = 2, int reps = 5) {
  for (int i = 0; i < warmup; ++i) fn();
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (ms < best) best = ms;
  }
  return best;
}

int run_json_sweep(const std::string& path) {
  util::Rng rng(42);
  std::vector<KernelRecord> records;

  // Every kernel shape is timed once per backend; `backend` tags the rows so
  // the JSON keeps scalar and simd columns side by side.
  for (const tensor::BackendKind kind :
       {tensor::BackendKind::kScalar, tensor::BackendKind::kSimd}) {
    tensor::set_backend(kind);
    const char* backend = tensor::backend_name(kind);

    auto gemm_like = [&](const char* name, int m, int k, int n, auto&& kernel) {
      const auto a = tensor::Tensor::randn(tensor::Shape{m, k}, rng);
      const auto b = tensor::Tensor::randn(tensor::Shape{k, n}, rng);
      tensor::Tensor c(tensor::Shape{m, n});
      KernelRecord r{name, m, k, n};
      r.backend = backend;
      r.ms = time_best_ms([&] {
        kernel(a.data(), b.data(), c.data(), m, k, n);
        benchmark::DoNotOptimize(c.data());
      });
      r.gflops = 2.0 * m * k * n / (r.ms * 1e6);
      records.push_back(r);
    };

    for (const int s : {64, 128, 256, 512})
      gemm_like("gemm", s, s, s, tensor::gemm);
    // Transposed variants at the shapes Conv2D::backward exercises. Operand
    // layouts differ from plain gemm ([k x m] A, [n x k] B) but the random
    // fill only cares about element count, so the timing is representative.
    for (const int s : {64, 128, 256, 512}) {
      gemm_like("gemm_at", s, s, s, tensor::gemm_at);
      gemm_like("gemm_bt", s, s, s, tensor::gemm_bt);
    }

    // Integer GEMM (uint8 activations x int8 weights -> int32), the engine
    // of the quantized inference path. MACs counted as 2 ops like fp32 so
    // the gflops column is directly comparable.
    for (const int s : {64, 128, 256, 512}) {
      std::vector<std::int8_t> a(static_cast<std::size_t>(s) * s);
      std::vector<std::uint8_t> b(static_cast<std::size_t>(s) * s);
      std::vector<std::int32_t> c(static_cast<std::size_t>(s) * s);
      for (auto& v : a) v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
      for (auto& v : b) v = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      KernelRecord r{"gemm_s8u8", s, s, s};
      r.backend = backend;
      r.ms = time_best_ms([&] {
        tensor::gemm_s8u8(a.data(), b.data(), c.data(), s, s, s);
        benchmark::DoNotOptimize(c.data());
      });
      r.gflops = 2.0 * s * s * s / (r.ms * 1e6);
      records.push_back(r);
    }

    for (const int c : {16, 64}) {
      nn::Conv2D conv(c, c, 3, 1);
      nn::he_init_conv(conv.weight(), rng);
      const auto x = tensor::Tensor::randn(tensor::Shape::chw(c, 16, 16), rng);
      // im2col lowering: m = out_c, k = in_c*3*3, n = oh*ow.
      KernelRecord r{"conv3x3", c, c * 9, 16 * 16};
      r.backend = backend;
      r.ms = time_best_ms([&] {
        auto y = conv.forward({&x}, false);
        benchmark::DoNotOptimize(y.data());
      });
      r.gflops = 2.0 * r.m * r.k * r.n / (r.ms * 1e6);
      records.push_back(r);
    }
  }
  tensor::set_backend(tensor::BackendKind::kSimd);

  // End-to-end fp32 vs genuine integer inference on a conv-heavy zoo trunk,
  // with the DeviceModel's analytical int8 term alongside the measured
  // ratio (the model simulates an embedded GPU, so the two need not agree —
  // the point is recording both for the validation story).
  {
    nn::Graph g = zoo::build_trunk(zoo::NetId::kResNet50, 32);
    nn::init_graph(g, rng);
    nn::Network net(quant::fold_batchnorm(g));
    quant::QuantizedNetwork qnet(quant::fold_batchnorm(g));
    const auto img0 = tensor::Tensor::randn(tensor::Shape::chw(3, 32, 32), rng, 0.5f);
    const auto img1 = tensor::Tensor::randn(tensor::Shape::chw(3, 32, 32), rng, 0.5f);
    qnet.calibrate({&img0, &img1});

    KernelRecord fp{"forward_fp32_resnet50", 0, 0, 0};
    fp.ms = time_best_ms([&] {
      auto y = net.forward(img0);
      benchmark::DoNotOptimize(y.data());
    });
    records.push_back(fp);

    KernelRecord q8{"forward_int8_resnet50", 0, 0, 0};
    q8.ms = time_best_ms([&] {
      auto y = qnet.forward_int8(img0);
      benchmark::DoNotOptimize(y.data());
    });
    records.push_back(q8);

    const double measured = q8.ms > 0.0 ? fp.ms / q8.ms : 0.0;
    const double predicted = hw::DeviceModel().int8_speedup(net.graph(), /*fuse=*/true);
    std::cout << "int8 e2e (resnet50@32): fp32 " << fp.ms << " ms, int8 " << q8.ms
              << " ms, measured speedup " << measured << "x, device-model term "
              << predicted << "x\n";
    KernelRecord sp{"int8_speedup_resnet50", 0, 0, 0};
    sp.gflops = measured;  // ratio, not a rate; kept in-schema for trending
    sp.ms = predicted;
    records.push_back(sp);
  }

  std::ofstream out(path);
  if (!out) {
    std::cerr << "micro_kernels: cannot open " << path << "\n";
    return 1;
  }
  out << "[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const KernelRecord& r = records[i];
    out << "  {\"kernel\": \"" << r.kernel << "\", \"m\": " << r.m << ", \"k\": " << r.k
        << ", \"n\": " << r.n << ", \"gflops\": " << r.gflops << ", \"ms\": " << r.ms
        << ", \"backend\": \"" << r.backend << "\"}"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "]\n";
  std::cout << "wrote " << records.size() << " kernel records to " << path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  // Strip --json <path> / --json=<path> before google-benchmark sees argv.
  int out_argc = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      argv[out_argc++] = argv[i];
    }
  }
  argc = out_argc;
  if (!json_path.empty()) return run_json_sweep(json_path);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
