// Substrate micro-benchmarks (google-benchmark): the kernels everything
// else is built on, plus end-to-end inference of representative networks at
// experiment resolution, the SVR fit, and the TRN construction path.
#include <benchmark/benchmark.h>

#include <cmath>

#include "core/trn.hpp"
#include "data/hands.hpp"
#include "ml/svr.hpp"
#include "nn/conv.hpp"
#include "nn/dense.hpp"
#include "nn/init.hpp"
#include "nn/network.hpp"
#include "quant/qnetwork.hpp"
#include "tensor/gemm.hpp"
#include "util/rng.hpp"
#include "zoo/zoo.hpp"

namespace {

using namespace netcut;

void BM_Gemm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(1);
  const auto a = tensor::Tensor::randn(tensor::Shape{n, n}, rng);
  const auto b = tensor::Tensor::randn(tensor::Shape{n, n}, rng);
  tensor::Tensor c(tensor::Shape{n, n});
  for (auto _ : state) {
    tensor::gemm(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_Conv3x3(benchmark::State& state) {
  const int c = static_cast<int>(state.range(0));
  util::Rng rng(2);
  nn::Conv2D conv(c, c, 3, 1);
  nn::he_init_conv(conv.weight(), rng);
  const auto x = tensor::Tensor::randn(tensor::Shape::chw(c, 16, 16), rng);
  for (auto _ : state) {
    auto y = conv.forward({&x}, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Conv3x3)->Arg(16)->Arg(64);

void BM_DepthwiseConv(benchmark::State& state) {
  const int c = static_cast<int>(state.range(0));
  util::Rng rng(3);
  nn::DepthwiseConv2D conv(c, 3, 1);
  nn::he_init_conv(conv.weight(), rng);
  const auto x = tensor::Tensor::randn(tensor::Shape::chw(c, 16, 16), rng);
  for (auto _ : state) {
    auto y = conv.forward({&x}, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_DepthwiseConv)->Arg(32)->Arg(128);

void BM_Int8VsFp32Dense(benchmark::State& state) {
  const bool int8 = state.range(0) == 1;
  util::Rng rng(4);
  nn::Dense dense(512, 128);
  nn::xavier_init_dense(dense.weight(), rng);
  const auto x = tensor::Tensor::uniform(tensor::Shape::vec(512), rng, 0.0f, 1.0f);
  const quant::QuantParams p = quant::QuantParams::from_range(0.0f, 1.0f);
  for (auto _ : state) {
    if (int8) {
      auto y = quant::int8_dense(dense, x, p);
      benchmark::DoNotOptimize(y.data());
    } else {
      auto y = dense.forward({&x}, false);
      benchmark::DoNotOptimize(y.data());
    }
  }
}
BENCHMARK(BM_Int8VsFp32Dense)->Arg(0)->Arg(1);

void BM_InferenceMobileNetV1(benchmark::State& state) {
  util::Rng rng(5);
  nn::Graph g = zoo::build_trunk(zoo::NetId::kMobileNetV1_025, 32);
  nn::init_graph(g, rng);
  nn::Network net(std::move(g));
  const auto x = tensor::Tensor::randn(tensor::Shape::chw(3, 32, 32), rng, 0.5f);
  for (auto _ : state) {
    auto y = net.forward(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_InferenceMobileNetV1);

void BM_SvrFit(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(6);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < n; ++i) {
    const double t = rng.uniform(0.0, 2.0);
    x.push_back({t, t * t});
    y.push_back(std::sin(3.0 * t));
  }
  ml::SvrConfig cfg;
  cfg.gamma = 1.0;
  cfg.c = 100.0;
  for (auto _ : state) {
    ml::Svr svr(cfg);
    svr.fit(x, y);
    benchmark::DoNotOptimize(svr.support_vector_count());
  }
}
BENCHMARK(BM_SvrFit)->Arg(40)->Arg(120);

void BM_TrnConstruction(benchmark::State& state) {
  const nn::Graph trunk = zoo::build_trunk(zoo::NetId::kMobileNetV2_100, 224);
  const auto cuts = core::blockwise_cutpoints(trunk);
  util::Rng rng(7);
  for (auto _ : state) {
    const nn::Graph trn =
        core::build_trn(trunk, cuts[cuts.size() / 2], core::HeadConfig{}, rng);
    benchmark::DoNotOptimize(trn.node_count());
  }
}
BENCHMARK(BM_TrnConstruction);

void BM_HandsRender(benchmark::State& state) {
  util::Rng rng(8);
  for (auto _ : state) {
    auto img = data::render_object(data::GraspType::kPowerSphere, 32, rng, 0.05);
    benchmark::DoNotOptimize(img.data());
  }
}
BENCHMARK(BM_HandsRender);

}  // namespace

BENCHMARK_MAIN();
