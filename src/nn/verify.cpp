#include "nn/verify.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "nn/combine.hpp"
#include "tensor/arena.hpp"

namespace netcut::nn {

const char* to_string(Severity severity) {
  return severity == Severity::kError ? "error" : "warning";
}

bool VerifyReport::ok() const { return errors() == 0; }

int VerifyReport::errors() const {
  int n = 0;
  for (const Finding& f : findings)
    if (f.severity == Severity::kError) ++n;
  return n;
}

bool VerifyReport::has(const std::string& rule) const {
  for (const Finding& f : findings)
    if (f.rule == rule) return true;
  return false;
}

std::string VerifyReport::to_string() const {
  std::ostringstream out;
  for (const Finding& f : findings) {
    out << nn::to_string(f.severity) << " [" << f.rule << "]";
    if (f.node >= 0) out << " node " << f.node;
    out << ": " << f.message << "\n";
  }
  return out.str();
}

void VerifyReport::add(Severity severity, int node, const char* rule, std::string message) {
  findings.push_back(Finding{severity, node, rule, std::move(message)});
}

// ---- Structural lint ---------------------------------------------------

namespace {

/// Declared input arity of a layer: exact count, or minimum when
/// `at_least` is set (Add/Concat accept any declared arity >= 2, but the
/// node's edge list must match the layer's own declared arity exactly).
int declared_arity(const Layer& layer) {
  switch (layer.kind()) {
    case LayerKind::kInput: return 0;
    case LayerKind::kAdd: return static_cast<const Add&>(layer).arity();
    case LayerKind::kConcat: return static_cast<const Concat&>(layer).arity();
    default: return 1;
  }
}

/// Cycle detection by iterative three-color DFS over input edges. The
/// public Graph API makes cycles unconstructible (inputs < id), but the
/// verifier assumes nothing: a remap bug or direct node mutation can
/// produce arbitrary edge lists.
void find_cycles(const Graph& g, VerifyReport& report) {
  const int n = g.node_count();
  enum : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<std::uint8_t> color(static_cast<std::size_t>(n), kWhite);
  std::vector<std::pair<int, std::size_t>> stack;  // node, next-input index
  for (int root = 0; root < n; ++root) {
    if (color[static_cast<std::size_t>(root)] != kWhite) continue;
    stack.emplace_back(root, 0);
    color[static_cast<std::size_t>(root)] = kGray;
    while (!stack.empty()) {
      auto& [id, next] = stack.back();
      const std::vector<int>& inputs = g.node(id).inputs;
      if (next >= inputs.size()) {
        color[static_cast<std::size_t>(id)] = kBlack;
        stack.pop_back();
        continue;
      }
      const int src = inputs[next++];
      if (src < 0 || src >= n) continue;  // reported as dangling-edge
      if (color[static_cast<std::size_t>(src)] == kGray) {
        report.add(Severity::kError, id, rules::kCycle,
                   "edge to node " + std::to_string(src) + " closes a cycle");
        return;  // one witness is enough; deeper analysis needs a valid DAG
      }
      if (color[static_cast<std::size_t>(src)] == kWhite) {
        color[static_cast<std::size_t>(src)] = kGray;
        stack.emplace_back(src, 0);
      }
    }
  }
}

}  // namespace

VerifyReport verify_graph(const Graph& graph) {
  VerifyReport report;
  const int n = graph.node_count();
  if (n == 0) {
    report.add(Severity::kError, -1, rules::kInputNode, "graph is empty");
    return report;
  }

  // Node 0 must be the unique Input placeholder.
  if (graph.node(0).layer->kind() != LayerKind::kInput)
    report.add(Severity::kError, 0, rules::kInputNode, "node 0 is not an Input layer");
  if (!graph.node(0).inputs.empty())
    report.add(Severity::kError, 0, rules::kInputNode, "input node has incoming edges");
  for (int id = 1; id < n; ++id)
    if (graph.node(id).layer->kind() == LayerKind::kInput)
      report.add(Severity::kError, id, rules::kInputNode,
                 "second Input layer (graphs have exactly one input)");

  // Edge validity: in range, topologically ordered, no duplicates. A node
  // is `broken` when its edges cannot be trusted for deeper analysis.
  std::vector<bool> broken(static_cast<std::size_t>(n), false);
  for (int id = 1; id < n; ++id) {
    const Node& nd = graph.node(id);
    for (const int src : nd.inputs) {
      if (src < 0 || src >= n) {
        report.add(Severity::kError, id, rules::kDanglingEdge,
                   "input edge to nonexistent node " + std::to_string(src));
        broken[static_cast<std::size_t>(id)] = true;
      } else if (src >= id) {
        report.add(Severity::kError, id, rules::kTopoOrder,
                   "input edge to node " + std::to_string(src) +
                       " violates topological (execution) order");
        broken[static_cast<std::size_t>(id)] = true;
      }
    }
    std::vector<int> sorted = nd.inputs;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end())
      report.add(Severity::kWarning, id, rules::kDuplicateEdge,
                 "the same source node appears twice in the input list");
  }

  find_cycles(graph, report);

  // Arity: the edge list must match the layer's declared arity.
  for (int id = 1; id < n; ++id) {
    const Node& nd = graph.node(id);
    const int want = declared_arity(*nd.layer);
    const int got = static_cast<int>(nd.inputs.size());
    if (got != want) {
      report.add(Severity::kError, id, rules::kArity,
                 std::string(to_string(nd.layer->kind())) + " (" + nd.name + ") declares " +
                     std::to_string(want) + " input(s) but has " + std::to_string(got));
      broken[static_cast<std::size_t>(id)] = true;
    }
  }

  // Shape re-derivation, independent of Graph::infer_shapes: walk nodes in
  // execution order and ask each layer for its output shape. Nodes whose
  // inputs are broken or unknown are skipped rather than cascading.
  std::vector<Shape> derived(static_cast<std::size_t>(n));
  std::vector<bool> known(static_cast<std::size_t>(n), false);
  if (graph.node(0).layer->kind() == LayerKind::kInput) {
    derived[0] = static_cast<const Input&>(*graph.node(0).layer).declared_shape();
    known[0] = true;
  }
  for (int id = 1; id < n; ++id) {
    if (broken[static_cast<std::size_t>(id)]) continue;
    const Node& nd = graph.node(id);
    std::vector<Shape> in;
    in.reserve(nd.inputs.size());
    bool inputs_known = true;
    for (const int src : nd.inputs) {
      if (src < 0 || src >= id || !known[static_cast<std::size_t>(src)]) {
        inputs_known = false;
        break;
      }
      in.push_back(derived[static_cast<std::size_t>(src)]);
    }
    if (!inputs_known) continue;
    try {
      derived[static_cast<std::size_t>(id)] = nd.layer->output_shape(in);
      known[static_cast<std::size_t>(id)] = true;
    } catch (const std::exception& e) {
      report.add(Severity::kError, id, rules::kShape,
                 std::string(to_string(nd.layer->kind())) + " (" + nd.name +
                     ") rejects its input shapes: " + e.what());
    }
  }

  // Cross-check the Graph's cached shape vector (if one is populated)
  // against the independent derivation — catches a stale cache after an
  // invalidation bug as well as divergence between the two shape passes.
  if (const std::vector<Shape>* cached = graph.cached_shapes()) {
    if (static_cast<int>(cached->size()) != n) {
      report.add(Severity::kError, -1, rules::kShapeCache,
                 "cached shape vector holds " + std::to_string(cached->size()) +
                     " entries for " + std::to_string(n) + " nodes");
    } else {
      for (int id = 0; id < n; ++id) {
        if (!known[static_cast<std::size_t>(id)]) continue;
        if ((*cached)[static_cast<std::size_t>(id)] != derived[static_cast<std::size_t>(id)])
          report.add(Severity::kError, id, rules::kShapeCache,
                     "cached shape " + (*cached)[static_cast<std::size_t>(id)].to_string() +
                         " disagrees with re-derived " +
                         derived[static_cast<std::size_t>(id)].to_string());
      }
    }
  }

  // Reachability: a node outside the output's ancestor set computes an
  // activation the final output never consumes. Warning severity: the
  // pretrained generator legitimately grafts auxiliary deep-supervision
  // heads (read back via forward_collect / backward_multi), but a dead
  // node in a plain trunk is a builder or remap bug.
  if (n > 1 && !report.has(rules::kCycle)) {
    std::vector<bool> live(static_cast<std::size_t>(n), false);
    live[static_cast<std::size_t>(n - 1)] = true;
    for (int id = n - 1; id >= 1; --id) {
      if (!live[static_cast<std::size_t>(id)]) continue;
      for (const int src : graph.node(id).inputs)
        if (src >= 0 && src < id) live[static_cast<std::size_t>(src)] = true;
    }
    for (int id = 1; id < n - 1; ++id)
      if (!live[static_cast<std::size_t>(id)])
        report.add(Severity::kWarning, id, rules::kUnreachable,
                   "node (" + graph.node(id).name + ") is not an ancestor of the output: " +
                       "legitimate only for auxiliary (deep-supervision) heads");
  }

  // Blocks: contiguous id runs, each ending at a node that dominates the
  // output (the blockwise cut-site contract). Dominators are only
  // meaningful on a structurally sound DAG.
  const bool structurally_sound =
      !report.has(rules::kCycle) && !report.has(rules::kDanglingEdge) &&
      !report.has(rules::kTopoOrder) && !report.has(rules::kInputNode);
  if (structurally_sound) {
    std::vector<int> seen_last(static_cast<std::size_t>(n), -1);  // block_id -> last node
    int prev_block = -1;
    for (int id = 1; id < n; ++id) {
      const int b = graph.node(id).block_id;
      if (b < 0) {
        prev_block = -1;
        continue;
      }
      if (b != prev_block && b < n && seen_last[static_cast<std::size_t>(b)] >= 0)
        report.add(Severity::kError, id, rules::kBlock,
                   "block " + std::to_string(b) + " is not contiguous");
      if (b < n) seen_last[static_cast<std::size_t>(b)] = id;
      prev_block = b;
    }
    const std::vector<int> doms = graph.output_dominators();
    for (int b = 0; b < n; ++b) {
      const int last = seen_last[static_cast<std::size_t>(b)];
      if (last < 0) continue;
      if (!std::binary_search(doms.begin(), doms.end(), last))
        report.add(Severity::kError, last, rules::kBlock,
                   "block " + std::to_string(b) + " ends at a node that does not dominate " +
                       "the output (illegal blockwise cut site)");
    }
  }

  return report;
}

VerifyReport verify_cut_site(const Graph& trunk, int cut_node) {
  VerifyReport report;
  const int n = trunk.node_count();
  if (cut_node <= 0 || cut_node >= n) {
    report.add(Severity::kError, cut_node, rules::kCutSite,
               "cut site " + std::to_string(cut_node) + " is not a removable node (graph has " +
                   std::to_string(n) + " nodes)");
    return report;
  }
  const std::vector<int> doms = trunk.output_dominators();
  if (!std::binary_search(doms.begin(), doms.end(), cut_node))
    report.add(Severity::kError, cut_node, rules::kCutSite,
               "cut at node (" + trunk.node(cut_node).name + ") does not dominate the trunk " +
                   "output: cutting here severs an Add/Concat operand inside a block");
  return report;
}

// ---- Memory-plan alias proof -------------------------------------------

void check_slots(const std::vector<SlotView>& slots, std::size_t capacity,
                 VerifyReport& report) {
  for (const SlotView& s : slots)
    if (s.offset + s.floats > capacity)
      report.add(Severity::kError, s.node, rules::kPlanCapacity,
                 std::string(s.is_scratch ? "scratch" : "activation") + " slot [" +
                     std::to_string(s.offset) + ", " + std::to_string(s.offset + s.floats) +
                     ") exceeds arena capacity " + std::to_string(capacity));

  // Sort by offset; for each slot only the slots that start before its end
  // can overlap it in space, so the inner scan terminates early.
  std::vector<const SlotView*> by_offset;
  by_offset.reserve(slots.size());
  for (const SlotView& s : slots)
    if (s.floats > 0) by_offset.push_back(&s);
  std::sort(by_offset.begin(), by_offset.end(),
            [](const SlotView* a, const SlotView* b) { return a->offset < b->offset; });
  for (std::size_t i = 0; i < by_offset.size(); ++i) {
    const SlotView& a = *by_offset[i];
    for (std::size_t j = i + 1; j < by_offset.size(); ++j) {
      const SlotView& b = *by_offset[j];
      if (b.offset >= a.offset + a.floats) break;  // no spatial overlap from here on
      if (a.def <= b.last && b.def <= a.last)
        report.add(Severity::kError, a.node, rules::kPlanAlias,
                   std::string(a.is_scratch ? "scratch" : "activation") + " of node " +
                       std::to_string(a.node) + " [" + std::to_string(a.offset) + ", " +
                       std::to_string(a.offset + a.floats) + ") live [" +
                       std::to_string(a.def) + ", " + std::to_string(a.last) + "] aliases " +
                       (b.is_scratch ? "scratch" : "activation") + " of node " +
                       std::to_string(b.node) + " [" + std::to_string(b.offset) + ", " +
                       std::to_string(b.offset + b.floats) + ") live [" +
                       std::to_string(b.def) + ", " + std::to_string(b.last) + "]");
    }
  }
}

VerifyReport verify_plan(const Graph& graph, const MemoryPlan& plan) {
  VerifyReport report;
  const int n = graph.node_count();
  if (plan.node_count() != n) {
    report.add(Severity::kError, -1, rules::kPlanStructure,
               "plan covers " + std::to_string(plan.node_count()) + " nodes, graph has " +
                   std::to_string(n));
    return report;
  }
  if (n < 2) return report;  // nothing is planned for an input-only graph

  std::vector<Shape> shapes;
  try {
    shapes = graph.infer_shapes();
  } catch (const std::exception& e) {
    report.add(Severity::kError, -1, rules::kPlanStructure,
               std::string("graph does not shape-check: ") + e.what());
    return report;
  }

  // Prefix-resume plans execute only nodes past the seed: the seed views
  // caller memory, skipped prefix nodes must own no slot, and no executed
  // node may read behind the seed (the independent re-check of the
  // planner's dominator assumption).
  const int resume = plan.resume();
  if (resume < 0 || resume >= n - 1) {
    report.add(Severity::kError, resume, rules::kPlanStructure, "resume node out of range");
    return report;
  }
  if (resume > 0) {
    if (plan.train()) {
      report.add(Severity::kError, resume, rules::kPlanStructure,
                 "resume plans are inference-only");
      return report;
    }
    for (int id = resume + 1; id < n; ++id)
      for (const int src : graph.node(id).inputs)
        if (src < resume)
          report.add(Severity::kError, id, rules::kPlanStructure,
                     "node " + std::to_string(id) + " reads node " + std::to_string(src) +
                         " behind resume node " + std::to_string(resume));
    for (const int id : plan.collect())
      if (id < resume)
        report.add(Severity::kError, id, rules::kPlanStructure,
                   "collect id precedes resume node");
    for (int id = 1; id <= resume; ++id)
      if (plan.activation(id).floats != 0 || plan.scratch(id).floats != 0)
        report.add(Severity::kError, id, rules::kPlanStructure,
                   "node before resume owns an arena slot");
    if (!report.ok()) return report;
  }

  // Independent live intervals: def -> last consumer, then pin collected
  // nodes and the output to the end of the pass, and everything when the
  // pass retains activations for backward. This re-implements (and must
  // agree with) the planner's interval analysis.
  const int end = n - 1;
  std::vector<int> last(static_cast<std::size_t>(n));
  for (int id = 0; id < n; ++id) last[static_cast<std::size_t>(id)] = id;
  for (int id = 1; id < n; ++id)
    for (const int src : graph.node(id).inputs)
      last[static_cast<std::size_t>(src)] = std::max(last[static_cast<std::size_t>(src)], id);
  for (const int id : plan.collect()) {
    if (id < 0 || id >= n) {
      report.add(Severity::kError, id, rules::kPlanStructure, "collect id out of range");
      return report;
    }
    last[static_cast<std::size_t>(id)] = end;
  }
  last[static_cast<std::size_t>(end)] = end;
  if (plan.train())
    for (int& l : last) l = end;

  std::vector<SlotView> slots;
  slots.reserve(2 * static_cast<std::size_t>(n));
  for (int id = resume + 1; id < n; ++id) {
    const Shape& shape = shapes[static_cast<std::size_t>(id)];
    if (plan.shape(id) != shape)
      report.add(Severity::kError, id, rules::kPlanShape,
                 "plan binds shape " + plan.shape(id).to_string() + " where the graph infers " +
                     shape.to_string());
    if (plan.last_use(id) != last[static_cast<std::size_t>(id)])
      report.add(Severity::kError, id, rules::kPlanInterval,
                 "plan records last use " + std::to_string(plan.last_use(id)) +
                     ", independent analysis finds " +
                     std::to_string(last[static_cast<std::size_t>(id)]));

    const PlanSlot& act = plan.activation(id);
    const auto want_floats = static_cast<std::size_t>(shape.numel());
    if (act.floats != want_floats)
      report.add(Severity::kError, id, rules::kPlanSlotSize,
                 "activation slot holds " + std::to_string(act.floats) + " floats for a " +
                     std::to_string(want_floats) + "-element activation");
    slots.push_back(SlotView{id, false, act.offset, std::max(act.floats, want_floats), id,
                             last[static_cast<std::size_t>(id)]});

    const Node& nd = graph.node(id);
    std::vector<Shape> in;
    in.reserve(nd.inputs.size());
    for (const int src : nd.inputs) in.push_back(shapes[static_cast<std::size_t>(src)]);
    const std::size_t want_scratch = nd.layer->forward_scratch_floats(in);
    const PlanSlot& scr = plan.scratch(id);
    if (scr.floats != want_scratch)
      report.add(Severity::kError, id, rules::kPlanSlotSize,
                 "scratch slot holds " + std::to_string(scr.floats) + " floats, layer asks " +
                     std::to_string(want_scratch));
    if (want_scratch > 0)
      slots.push_back(SlotView{id, true, scr.offset, std::max(scr.floats, want_scratch), id, id});
  }
  check_slots(slots, plan.arena_floats(), report);
  return report;
}

// ---- Numerics guard ----------------------------------------------------

namespace {

constexpr std::uint32_t kExpMask = 0x7F800000u;
constexpr std::uint32_t kMantMask = 0x007FFFFFu;

std::uint32_t float_bits(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

void scan_activation(const Tensor& t, int node, const std::string& name,
                     VerifyReport& report) {
  const float* p = t.data();
  const std::int64_t numel = t.numel();
  std::int64_t poison = 0, nonfinite = 0, denormal = 0;
  std::int64_t first_poison = -1, first_nonfinite = -1;
  for (std::int64_t i = 0; i < numel; ++i) {
    // Inspect bit patterns, not float values: poison must match exactly and
    // sNaN payloads must not pass through the FPU on the way to the check.
    const std::uint32_t bits = float_bits(p[i]);
    const std::uint32_t exp = bits & kExpMask;
    if (exp == kExpMask) {
      if ((bits & ~0x80000000u) == tensor::kArenaPoisonBits) {
        ++poison;
        if (first_poison < 0) first_poison = i;
      } else {
        ++nonfinite;
        if (first_nonfinite < 0) first_nonfinite = i;
      }
    } else if (exp == 0 && (bits & kMantMask) != 0) {
      ++denormal;
    }
  }
  if (poison > 0)
    report.add(Severity::kError, node, rules::kUseBeforeWrite,
               "(" + name + ") left " + std::to_string(poison) + "/" + std::to_string(numel) +
                   " output elements poisoned (first at " + std::to_string(first_poison) +
                   "): the layer read or kept memory it never wrote");
  if (nonfinite > 0)
    report.add(Severity::kError, node, rules::kNonFinite,
               "(" + name + ") produced " + std::to_string(nonfinite) + "/" +
                   std::to_string(numel) + " NaN/Inf output elements (first at " +
                   std::to_string(first_nonfinite) + ")");
  // A few denormals are legitimate underflow; a storm (>5% of the tensor)
  // signals vanishing activations and costs orders of magnitude in kernel
  // throughput on x86.
  if (denormal > 0 && denormal * 20 > numel)
    report.add(Severity::kWarning, node, rules::kDenormal,
               "(" + name + ") wrote " + std::to_string(denormal) + "/" +
                   std::to_string(numel) + " denormal output elements");
}

VerifyReport verify_params(const Graph& graph) {
  VerifyReport report;
  for (int id = 1; id < graph.node_count(); ++id) {
    const Node& nd = graph.node(id);
    for (const Tensor* t : nd.layer->state()) {
      const float* p = t->data();
      for (std::int64_t i = 0; i < t->numel(); ++i) {
        if ((float_bits(p[i]) & kExpMask) == kExpMask) {
          report.add(Severity::kError, id, rules::kParamNonFinite,
                     "(" + nd.name + ") carries a non-finite parameter at flat index " +
                         std::to_string(i));
          break;  // one finding per tensor is enough
        }
      }
    }
  }
  return report;
}

// ---- Mode plumbing and hooks -------------------------------------------

namespace {

VerifyMode mode_from_env() {
  const char* e = std::getenv("NETCUT_VERIFY");
  if (e == nullptr) return VerifyMode::kStatic;
  const std::string v(e);
  if (v == "0" || v == "off") return VerifyMode::kOff;
  if (v == "2" || v == "runtime") return VerifyMode::kRuntime;
  return VerifyMode::kStatic;
}

std::atomic<VerifyMode> g_mode{mode_from_env()};

}  // namespace

VerifyMode verify_mode() { return g_mode.load(std::memory_order_relaxed); }
void set_verify_mode(VerifyMode mode) { g_mode.store(mode, std::memory_order_relaxed); }
bool runtime_verify_enabled() { return verify_mode() == VerifyMode::kRuntime; }

VerifyError::VerifyError(std::string context, VerifyReport report)
    : std::invalid_argument(context + ": graph verification failed\n" + report.to_string()),
      context_(std::move(context)),
      report_(std::move(report)) {}

void enforce(const VerifyReport& report, const std::string& context) {
  if (!report.ok()) throw VerifyError(context, report);
}

void check_graph(const Graph& graph, const char* context) {
  if (verify_mode() == VerifyMode::kOff) return;
  enforce(verify_graph(graph), context);
}

void check_plan(const Graph& graph, const MemoryPlan& plan, const char* context) {
  if (verify_mode() == VerifyMode::kOff) return;
  enforce(verify_plan(graph, plan), context);
}

void check_cut_site(const Graph& trunk, int cut_node, const char* context) {
  if (verify_mode() == VerifyMode::kOff) return;
  enforce(verify_cut_site(trunk, cut_node), context);
}

void check_params(const Graph& graph, const char* context) {
  if (verify_mode() == VerifyMode::kOff) return;
  enforce(verify_params(graph), context);
}

}  // namespace netcut::nn
