// Per-channel batch normalization over CHW activations.
//
// Three modes:
//  - inference (default): y = gamma * (x - running_mean) / sqrt(running_var
//    + eps) + beta. Used by all transfer-learning experiments.
//  - training: normalizes with the current image's spatial statistics and
//    supports backward (exercised in tests / tiny fine-tuning).
//  - stat collection: accumulates running statistics from calibration images
//    (used by data::calibrate_batchnorm after pseudo-pretrained weight
//    generation so deep stacks stay numerically well-conditioned).
#pragma once

#include "nn/layer.hpp"

namespace netcut::nn {

class BatchNorm final : public Layer {
 public:
  explicit BatchNorm(int channels, float eps = 1e-3f);

  LayerKind kind() const override { return LayerKind::kBatchNorm; }
  std::unique_ptr<Layer> clone() const override { return std::make_unique<BatchNorm>(*this); }

  Shape output_shape(const std::vector<Shape>& in) const override;
  Tensor forward(const std::vector<const Tensor*>& in, bool train) override;
  void forward_into(const std::vector<const Tensor*>& in, Tensor& out, bool train,
                    float* scratch) override;
  std::vector<Tensor> backward(const Tensor& grad_out) override;

  std::vector<Tensor*> params() override { return {&gamma_, &beta_}; }
  std::vector<Tensor*> grads() override { return {&grad_gamma_, &grad_beta_}; }
  std::vector<Tensor*> state() override {
    return {&gamma_, &beta_, &running_mean_, &running_var_};
  }
  LayerCost cost(const std::vector<Shape>& in) const override;

  int channels() const { return channels_; }
  float eps() const { return eps_; }
  Tensor& gamma() { return gamma_; }
  Tensor& beta() { return beta_; }
  Tensor& running_mean() { return running_mean_; }
  Tensor& running_var() { return running_var_; }
  const Tensor& gamma() const { return gamma_; }
  const Tensor& beta() const { return beta_; }
  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }

  // ---- Calibration protocol ----
  void begin_stat_collection();
  bool collecting_stats() const { return collecting_; }
  /// Folds the accumulated sums into running_mean / running_var.
  void end_stat_collection();

  // ---- Frozen-statistics training ----
  /// With frozen stats, train-mode forward normalizes by the running
  /// statistics (treated as constants in backward) instead of the current
  /// image's spatial statistics. This is the standard fine-tuning regime,
  /// and the only numerically sane one once deep feature maps shrink
  /// toward 1x1 (per-image spatial stats would zero them out).
  void set_freeze_stats(bool freeze) { freeze_stats_ = freeze; }
  bool freeze_stats() const { return freeze_stats_; }

 private:
  int channels_;
  float eps_;
  Tensor gamma_, beta_, running_mean_, running_var_;
  Tensor grad_gamma_, grad_beta_;

  bool collecting_ = false;
  bool freeze_stats_ = false;
  Tensor stat_sum_, stat_sumsq_;
  std::int64_t stat_count_ = 0;  // samples per channel accumulated

  // Train-mode cache.
  bool cached_frozen_ = false;
  Tensor cached_xhat_;
  Tensor cached_inv_std_;  // per channel
};

}  // namespace netcut::nn
