// Multi-input combinators (residual Add, channel Concat) plus the trivial
// Input placeholder and Flatten.
#pragma once

#include "nn/layer.hpp"

namespace netcut::nn {

/// Graph entry point; identity. Holds the declared input shape.
class Input final : public Layer {
 public:
  explicit Input(Shape shape) : shape_(std::move(shape)) {}

  LayerKind kind() const override { return LayerKind::kInput; }
  std::unique_ptr<Layer> clone() const override { return std::make_unique<Input>(*this); }

  Shape output_shape(const std::vector<Shape>& in) const override;
  Tensor forward(const std::vector<const Tensor*>& in, bool train) override;
  std::vector<Tensor> backward(const Tensor& grad_out) override;
  LayerCost cost(const std::vector<Shape>& in) const override;

  const Shape& declared_shape() const { return shape_; }

 private:
  Shape shape_;
};

/// Elementwise sum of >= 2 equal-shaped inputs (residual connections).
class Add final : public Layer {
 public:
  explicit Add(int arity = 2);

  LayerKind kind() const override { return LayerKind::kAdd; }
  std::unique_ptr<Layer> clone() const override { return std::make_unique<Add>(*this); }

  Shape output_shape(const std::vector<Shape>& in) const override;
  Tensor forward(const std::vector<const Tensor*>& in, bool train) override;
  void forward_into(const std::vector<const Tensor*>& in, Tensor& out, bool train,
                    float* scratch) override;
  std::vector<Tensor> backward(const Tensor& grad_out) override;
  LayerCost cost(const std::vector<Shape>& in) const override;

  int arity() const { return arity_; }

 private:
  int arity_;
};

/// Channel-axis concatenation of CHW inputs with matching H, W
/// (Inception branches, DenseNet feature reuse).
class Concat final : public Layer {
 public:
  explicit Concat(int arity);

  LayerKind kind() const override { return LayerKind::kConcat; }
  std::unique_ptr<Layer> clone() const override { return std::make_unique<Concat>(*this); }

  Shape output_shape(const std::vector<Shape>& in) const override;
  Tensor forward(const std::vector<const Tensor*>& in, bool train) override;
  void forward_into(const std::vector<const Tensor*>& in, Tensor& out, bool train,
                    float* scratch) override;
  std::vector<Tensor> backward(const Tensor& grad_out) override;
  LayerCost cost(const std::vector<Shape>& in) const override;

  int arity() const { return arity_; }

 private:
  int arity_;
  std::vector<int> cached_channels_;
  int cached_h_ = 0, cached_w_ = 0;
};

/// CHW -> rank-1 vector.
class Flatten final : public Layer {
 public:
  LayerKind kind() const override { return LayerKind::kFlatten; }
  std::unique_ptr<Layer> clone() const override { return std::make_unique<Flatten>(*this); }

  Shape output_shape(const std::vector<Shape>& in) const override;
  Tensor forward(const std::vector<const Tensor*>& in, bool train) override;
  void forward_into(const std::vector<const Tensor*>& in, Tensor& out, bool train,
                    float* scratch) override;
  std::vector<Tensor> backward(const Tensor& grad_out) override;
  LayerCost cost(const std::vector<Shape>& in) const override;

 private:
  Shape cached_in_shape_;
};

}  // namespace netcut::nn
