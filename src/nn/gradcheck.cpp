#include "nn/gradcheck.hpp"

#include <algorithm>
#include <cmath>

namespace netcut::nn {

namespace {

/// Accumulates |a - n| and the gradient magnitude scale; the relative error
/// is normalized by the *largest* gradient entry seen, so near-zero entries
/// (where float noise dominates any pointwise ratio) don't produce spurious
/// failures.
struct ErrorAccumulator {
  double max_abs_error = 0.0;
  double max_magnitude = 0.0;

  void fold(double analytic, double numeric) {
    max_abs_error = std::max(max_abs_error, std::abs(analytic - numeric));
    max_magnitude = std::max({max_magnitude, std::abs(analytic), std::abs(numeric)});
  }

  GradCheckResult result() const {
    GradCheckResult r;
    r.max_abs_error = max_abs_error;
    r.max_rel_error = max_abs_error / std::max(max_magnitude, 1e-8);
    return r;
  }
};

}  // namespace

GradCheckResult check_input_gradient(
    Network& net, const Tensor& input,
    const std::function<double(const Tensor&)>& scalar_loss,
    const std::function<Tensor(const Tensor&)>& loss_grad, double eps) {
  // Network::backward discards the gradient at the input node, so mirror
  // the DAG backward here and keep grad[0] for the comparison.
  ErrorAccumulator acc;

  Tensor out = net.forward(input, /*train=*/true);
  Tensor g = loss_grad(out);

  // Manual DAG backward mirroring Network::backward, but keeping grad[0].
  const Graph& graph = net.graph();
  const int n = graph.node_count();
  std::vector<Tensor> grad(static_cast<std::size_t>(n));
  grad[static_cast<std::size_t>(graph.output_node())] = g;
  for (int id = n - 1; id >= 1; --id) {
    Tensor& go = grad[static_cast<std::size_t>(id)];
    if (go.empty()) continue;
    Node& nd = const_cast<Graph&>(graph).node(id);
    std::vector<Tensor> gin = nd.layer->backward(go);
    for (std::size_t i = 0; i < nd.inputs.size(); ++i) {
      Tensor& sink = grad[static_cast<std::size_t>(nd.inputs[i])];
      if (sink.empty())
        sink = std::move(gin[i]);
      else
        sink += gin[i];
    }
  }
  const Tensor& analytic = grad[0];

  Tensor probe = input;
  const std::int64_t stride = std::max<std::int64_t>(1, input.numel() / 64);
  for (std::int64_t i = 0; i < input.numel(); i += stride) {
    const float orig = probe[i];
    probe[i] = orig + static_cast<float>(eps);
    const double up = scalar_loss(net.forward(probe, true));
    probe[i] = orig - static_cast<float>(eps);
    const double down = scalar_loss(net.forward(probe, true));
    probe[i] = orig;
    const double numeric = (up - down) / (2.0 * eps);
    acc.fold(analytic[i], numeric);
  }
  return acc.result();
}

GradCheckResult check_param_gradients(
    Network& net, const Tensor& input,
    const std::function<double(const Tensor&)>& scalar_loss,
    const std::function<Tensor(const Tensor&)>& loss_grad, double eps,
    int max_params_per_tensor) {
  ErrorAccumulator acc;
  net.zero_grads();
  Tensor out = net.forward(input, /*train=*/true);
  net.backward(loss_grad(out));

  auto params = net.params();
  auto grads = net.grads();
  for (std::size_t k = 0; k < params.size(); ++k) {
    Tensor& p = *params[k];
    const Tensor& g = *grads[k];
    const std::int64_t stride = std::max<std::int64_t>(1, p.numel() / max_params_per_tensor);
    for (std::int64_t i = 0; i < p.numel(); i += stride) {
      const float orig = p[i];
      p[i] = orig + static_cast<float>(eps);
      const double up = scalar_loss(net.forward(input, true));
      p[i] = orig - static_cast<float>(eps);
      const double down = scalar_loss(net.forward(input, true));
      p[i] = orig;
      const double numeric = (up - down) / (2.0 * eps);
      acc.fold(g[i], numeric);
    }
  }
  return acc.result();
}

}  // namespace netcut::nn
