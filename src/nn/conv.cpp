#include "nn/conv.hpp"

#include <stdexcept>
#include <vector>

#include "tensor/gemm.hpp"
#include "util/thread_pool.hpp"

namespace netcut::nn {

using tensor::ConvGeometry;

Conv2D::Conv2D(int in_channels, int out_channels, int kernel, int stride, int pad, bool bias)
    : Conv2D(in_channels, out_channels, kernel, kernel, stride,
             pad < 0 ? tensor::same_pad(kernel) : pad,
             pad < 0 ? tensor::same_pad(kernel) : pad, bias) {}

Conv2D::Conv2D(int in_channels, int out_channels, int kernel_h, int kernel_w, int stride,
               int pad_h, int pad_w, bool bias)
    : in_c_(in_channels),
      out_c_(out_channels),
      kernel_h_(kernel_h),
      kernel_w_(kernel_w),
      stride_(stride),
      pad_h_(pad_h),
      pad_w_(pad_w),
      has_bias_(bias),
      weight_(Shape{out_channels, in_channels, kernel_h, kernel_w}),
      bias_(Shape{out_channels}),
      grad_weight_(Shape{out_channels, in_channels, kernel_h, kernel_w}),
      grad_bias_(Shape{out_channels}) {
  if (in_channels <= 0 || out_channels <= 0 || kernel_h <= 0 || kernel_w <= 0 || stride <= 0 ||
      pad_h < 0 || pad_w < 0)
    throw std::invalid_argument("Conv2D: invalid hyperparameters");
}

ConvGeometry Conv2D::geometry(const Shape& in) const {
  ConvGeometry g;
  g.in_c = in[0];
  g.in_h = in[1];
  g.in_w = in[2];
  g.kernel_h = kernel_h_;
  g.kernel_w = kernel_w_;
  g.stride = stride_;
  g.pad_h = pad_h_;
  g.pad_w = pad_w_;
  return g;
}

Shape Conv2D::output_shape(const std::vector<Shape>& in) const {
  require_arity(in, 1, "Conv2D");
  if (in[0].rank() != 3 || in[0][0] != in_c_)
    throw std::invalid_argument("Conv2D: input shape mismatch, got " + in[0].to_string());
  const ConvGeometry g = geometry(in[0]);
  if (g.out_h() < 1 || g.out_w() < 1)
    throw std::invalid_argument("Conv2D: output collapses below 1x1 for input " +
                                in[0].to_string());
  return Shape::chw(out_c_, g.out_h(), g.out_w());
}

Tensor Conv2D::forward(const std::vector<const Tensor*>& in, bool train) {
  require_arity(in, 1, "Conv2D");
  const ConvGeometry g = geometry(in[0]->shape());
  Tensor y(Shape::chw(out_c_, g.out_h(), g.out_w()));
  forward_into(in, y, train, nullptr);
  return y;
}

void Conv2D::forward_into(const std::vector<const Tensor*>& in, Tensor& out, bool train,
                          float* scratch) {
  require_arity(in, 1, "Conv2D");
  const Tensor& x = *in[0];
  const ConvGeometry g = geometry(x.shape());
  const int oh = g.out_h();
  const int ow = g.out_w();
  const int k2 = in_c_ * kernel_h_ * kernel_w_;

  float* cols = scratch;
  if (cols == nullptr) {
    const std::size_t cols_size = static_cast<std::size_t>(k2) * oh * ow;
    if (cols_scratch_.size() < cols_size) cols_scratch_.resize(cols_size);
    cols = cols_scratch_.data();
  }
  tensor::im2col(x.data(), g, cols);

  // W viewed as [out_c, k2]; cols is [k2, oh*ow]. gemm (like every hot
  // kernel here) dispatches through the active tensor::KernelBackend.
  tensor::gemm(weight_.data(), cols, out.data(), out_c_, k2, oh * ow);
  if (has_bias_) {
    const std::size_t hw = static_cast<std::size_t>(oh) * static_cast<std::size_t>(ow);
    for (std::size_t o = 0; o < static_cast<std::size_t>(out_c_); ++o) {
      float* plane = out.data() + o * hw;
      const float b = bias_[static_cast<std::int64_t>(o)];
      for (std::size_t i = 0; i < hw; ++i) plane[i] += b;
    }
  }
  if (train) cached_input_ = x;
}

std::size_t Conv2D::forward_scratch_floats(const std::vector<Shape>& in) const {
  const ConvGeometry g = geometry(in[0]);
  return static_cast<std::size_t>(in_c_ * kernel_h_ * kernel_w_) *
         static_cast<std::size_t>(g.out_h()) * static_cast<std::size_t>(g.out_w());
}

std::vector<Tensor> Conv2D::backward(const Tensor& grad_out) {
  if (cached_input_.empty()) throw std::logic_error("Conv2D::backward without train forward");
  const Tensor& x = cached_input_;
  const ConvGeometry g = geometry(x.shape());
  const int oh = g.out_h();
  const int ow = g.out_w();
  const int k2 = in_c_ * kernel_h_ * kernel_w_;
  const int hw = oh * ow;

  const std::size_t cols_size = static_cast<std::size_t>(k2) * hw;
  if (cols_scratch_.size() < cols_size) cols_scratch_.resize(cols_size);
  tensor::im2col(x.data(), g, cols_scratch_.data());

  // dW[out_c, k2] += dY[out_c, hw] * cols^T[hw, k2]
  const std::size_t dw_size = static_cast<std::size_t>(out_c_) * k2;
  if (dw_scratch_.size() < dw_size) dw_scratch_.resize(dw_size);
  tensor::gemm_bt(grad_out.data(), cols_scratch_.data(), dw_scratch_.data(), out_c_, hw, k2);
  for (std::int64_t i = 0; i < grad_weight_.numel(); ++i)
    grad_weight_[i] += dw_scratch_[static_cast<std::size_t>(i)];

  if (has_bias_) {
    const std::size_t shw = static_cast<std::size_t>(hw);
    for (std::size_t o = 0; o < static_cast<std::size_t>(out_c_); ++o) {
      const float* plane = grad_out.data() + o * shw;
      float s = 0.0f;
      for (std::size_t i = 0; i < shw; ++i) s += plane[i];
      grad_bias_[static_cast<std::int64_t>(o)] += s;
    }
  }

  // dcols[k2, hw] = W^T[k2, out_c] * dY[out_c, hw], then col2im.
  if (dcols_scratch_.size() < cols_size) dcols_scratch_.resize(cols_size);
  tensor::gemm_at(weight_.data(), grad_out.data(), dcols_scratch_.data(), k2, out_c_, hw);
  Tensor dx(x.shape());
  tensor::col2im(dcols_scratch_.data(), g, dx.data());

  std::vector<Tensor> grads_in;
  grads_in.push_back(std::move(dx));
  return grads_in;
}

std::vector<Tensor*> Conv2D::params() {
  if (has_bias_) return {&weight_, &bias_};
  return {&weight_};
}

std::vector<Tensor*> Conv2D::grads() {
  if (has_bias_) return {&grad_weight_, &grad_bias_};
  return {&grad_weight_};
}

LayerCost Conv2D::cost(const std::vector<Shape>& in) const {
  const Shape out = output_shape(in);
  LayerCost c;
  const std::int64_t hw = static_cast<std::int64_t>(out[1]) * out[2];
  c.flops = 2LL * kernel_h_ * kernel_w_ * in_c_ * out_c_ * hw + (has_bias_ ? out.numel() : 0);
  c.params = weight_.numel() + (has_bias_ ? bias_.numel() : 0);
  c.input_elems = in[0].numel();
  c.output_elems = out.numel();
  c.kernel = kernel_h_ > kernel_w_ ? kernel_h_ : kernel_w_;
  return c;
}

DepthwiseConv2D::DepthwiseConv2D(int channels, int kernel, int stride, int pad, bool bias)
    : channels_(channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad < 0 ? tensor::same_pad(kernel) : pad),
      has_bias_(bias),
      weight_(Shape{channels, 1, kernel, kernel}),
      bias_(Shape{channels}),
      grad_weight_(Shape{channels, 1, kernel, kernel}),
      grad_bias_(Shape{channels}) {
  if (channels <= 0 || kernel <= 0 || stride <= 0)
    throw std::invalid_argument("DepthwiseConv2D: invalid hyperparameters");
}

Shape DepthwiseConv2D::output_shape(const std::vector<Shape>& in) const {
  require_arity(in, 1, "DepthwiseConv2D");
  if (in[0].rank() != 3 || in[0][0] != channels_)
    throw std::invalid_argument("DepthwiseConv2D: input shape mismatch");
  const int oh = (in[0][1] + 2 * pad_ - kernel_) / stride_ + 1;
  const int ow = (in[0][2] + 2 * pad_ - kernel_) / stride_ + 1;
  if (oh < 1 || ow < 1)
    throw std::invalid_argument("DepthwiseConv2D: output collapses below 1x1");
  return Shape::chw(channels_, oh, ow);
}

Tensor DepthwiseConv2D::forward(const std::vector<const Tensor*>& in, bool train) {
  require_arity(in, 1, "DepthwiseConv2D");
  Tensor y(output_shape({in[0]->shape()}));
  forward_into(in, y, train, nullptr);
  return y;
}

void DepthwiseConv2D::forward_into(const std::vector<const Tensor*>& in, Tensor& out,
                                   bool train, float* /*scratch*/) {
  require_arity(in, 1, "DepthwiseConv2D");
  const Tensor& x = *in[0];
  const int ih = x.shape()[1], iw = x.shape()[2];
  const int oh = out.shape()[1], ow = out.shape()[2];

  // Channels are independent; partition the channel range. Per-channel
  // arithmetic order is unchanged, so results are thread-count invariant.
  const std::int64_t per_chan = 2LL * kernel_ * kernel_ * oh * ow;
  const std::int64_t grain = per_chan > 0 ? ((1 << 16) + per_chan - 1) / per_chan : 1;
  util::parallel_for(0, channels_, grain, [&](std::int64_t c0, std::int64_t c1) {
  for (std::int64_t c = c0; c < c1; ++c) {
    const float* chan = x.data() + c * ih * iw;
    const float* w = weight_.data() + c * kernel_ * kernel_;
    float* dst = out.data() + c * oh * ow;
    const float b = has_bias_ ? bias_[c] : 0.0f;
    for (int yo = 0; yo < oh; ++yo) {
      for (int xo = 0; xo < ow; ++xo) {
        float s = b;
        for (int kh = 0; kh < kernel_; ++kh) {
          const int iy = yo * stride_ + kh - pad_;
          if (iy < 0 || iy >= ih) continue;
          for (int kw = 0; kw < kernel_; ++kw) {
            const int ix = xo * stride_ + kw - pad_;
            if (ix < 0 || ix >= iw) continue;
            s += w[kh * kernel_ + kw] * chan[iy * iw + ix];
          }
        }
        dst[yo * ow + xo] = s;
      }
    }
  }
  });
  if (train) cached_input_ = x;
}

std::vector<Tensor> DepthwiseConv2D::backward(const Tensor& grad_out) {
  if (cached_input_.empty())
    throw std::logic_error("DepthwiseConv2D::backward without train forward");
  const Tensor& x = cached_input_;
  const int ih = x.shape()[1], iw = x.shape()[2];
  const int oh = grad_out.shape()[1], ow = grad_out.shape()[2];

  Tensor dx(x.shape());
  // All writes (dw, dxc, grad_bias_[c]) are channel-local, so the channel
  // partition is race-free and thread-count invariant.
  const std::int64_t per_chan = 4LL * kernel_ * kernel_ * oh * ow;
  const std::int64_t grain = per_chan > 0 ? ((1 << 16) + per_chan - 1) / per_chan : 1;
  util::parallel_for(0, channels_, grain, [&](std::int64_t c0, std::int64_t c1) {
  for (std::int64_t c = c0; c < c1; ++c) {
    const float* chan = x.data() + c * ih * iw;
    const float* dy = grad_out.data() + c * oh * ow;
    const float* w = weight_.data() + c * kernel_ * kernel_;
    float* dw = grad_weight_.data() + c * kernel_ * kernel_;
    float* dxc = dx.data() + c * ih * iw;
    float db = 0.0f;
    for (int yo = 0; yo < oh; ++yo) {
      for (int xo = 0; xo < ow; ++xo) {
        const float g = dy[yo * ow + xo];
        db += g;
        for (int kh = 0; kh < kernel_; ++kh) {
          const int iy = yo * stride_ + kh - pad_;
          if (iy < 0 || iy >= ih) continue;
          for (int kw = 0; kw < kernel_; ++kw) {
            const int ix = xo * stride_ + kw - pad_;
            if (ix < 0 || ix >= iw) continue;
            dw[kh * kernel_ + kw] += g * chan[iy * iw + ix];
            dxc[iy * iw + ix] += g * w[kh * kernel_ + kw];
          }
        }
      }
    }
    if (has_bias_) grad_bias_[c] += db;
  }
  });
  std::vector<Tensor> grads_in;
  grads_in.push_back(std::move(dx));
  return grads_in;
}

std::vector<Tensor*> DepthwiseConv2D::params() {
  if (has_bias_) return {&weight_, &bias_};
  return {&weight_};
}

std::vector<Tensor*> DepthwiseConv2D::grads() {
  if (has_bias_) return {&grad_weight_, &grad_bias_};
  return {&grad_weight_};
}

LayerCost DepthwiseConv2D::cost(const std::vector<Shape>& in) const {
  const Shape out = output_shape(in);
  LayerCost c;
  c.flops = 2LL * kernel_ * kernel_ * out.numel() + (has_bias_ ? out.numel() : 0);
  c.params = weight_.numel() + (has_bias_ ? bias_.numel() : 0);
  c.input_elems = in[0].numel();
  c.output_elems = out.numel();
  c.kernel = kernel_;
  return c;
}

}  // namespace netcut::nn
