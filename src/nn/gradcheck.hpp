// Finite-difference gradient checking, used by the test suite to validate
// every layer's backward implementation against its forward.
#pragma once

#include <functional>

#include "nn/network.hpp"

namespace netcut::nn {

struct GradCheckResult {
  double max_abs_error = 0.0;
  double max_rel_error = 0.0;
};

/// Compares the analytic gradient w.r.t. the network *input* against central
/// finite differences of `scalar_loss(network_output)`.
GradCheckResult check_input_gradient(
    Network& net, const Tensor& input,
    const std::function<double(const Tensor&)>& scalar_loss,
    const std::function<Tensor(const Tensor&)>& loss_grad, double eps = 1e-3);

/// Compares analytic parameter gradients against finite differences.
/// Checks up to `max_params_per_tensor` randomly strided entries per tensor.
GradCheckResult check_param_gradients(
    Network& net, const Tensor& input,
    const std::function<double(const Tensor&)>& scalar_loss,
    const std::function<Tensor(const Tensor&)>& loss_grad, double eps = 1e-3,
    int max_params_per_tensor = 16);

}  // namespace netcut::nn
