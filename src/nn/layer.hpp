// Layer abstraction: every operator in the CNN graphs implements forward,
// backward, shape inference, and a hardware-cost descriptor.
//
// Execution is batch-free (one CHW image at a time). BatchNorm consequently
// runs in inference mode with generated/calibrated running statistics during
// the transfer-learning experiments; its training mode uses single-image
// spatial statistics, which is exercised by unit tests and the tiny
// fine-tuning example.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace netcut::nn {

using tensor::Shape;
using tensor::Tensor;

enum class LayerKind {
  kInput,
  kConv2D,
  kDepthwiseConv2D,
  kDense,
  kBatchNorm,
  kReLU,
  kReLU6,
  kMaxPool,
  kAvgPool,
  kGlobalAvgPool,
  kSoftmax,
  kAdd,
  kConcat,
  kFlatten,
};

const char* to_string(LayerKind kind);

/// Static cost descriptor consumed by the hw::DeviceModel and by the
/// analytical latency estimator's feature extractor.
struct LayerCost {
  std::int64_t flops = 0;         // multiply-accumulates counted as 2 ops
  std::int64_t params = 0;        // trainable scalar count
  std::int64_t input_elems = 0;   // activations read
  std::int64_t output_elems = 0;  // activations written
  int kernel = 0;                 // spatial kernel size (0 for non-spatial ops)
};

class Layer {
 public:
  virtual ~Layer() = default;

  virtual LayerKind kind() const = 0;
  virtual std::unique_ptr<Layer> clone() const = 0;

  /// Shape of the output given input shapes. Throws on arity/shape mismatch.
  virtual Shape output_shape(const std::vector<Shape>& in) const = 0;

  /// Run the layer. With train=true, caches whatever backward() needs.
  virtual Tensor forward(const std::vector<const Tensor*>& in, bool train) = 0;

  /// Run the layer, writing the output into `out` — storage of the exact
  /// output shape, typically an arena view bound by the memory planner.
  /// `scratch` points to forward_scratch_floats(...) floats of per-call
  /// workspace when the caller planned one, nullptr otherwise. `out` must
  /// not alias any input (the planner guarantees this). The base
  /// implementation falls back to forward() plus a copy; the hot layers
  /// override it to write in place, and implement forward() on top of it so
  /// planned and unplanned passes run the same arithmetic bit-for-bit.
  virtual void forward_into(const std::vector<const Tensor*>& in, Tensor& out, bool train,
                            float* scratch);

  /// Per-call forward workspace (in floats) the layer wants planned into
  /// the arena (e.g. Conv2D's im2col column buffer). Zero by default.
  virtual std::size_t forward_scratch_floats(const std::vector<Shape>& in) const;

  /// Gradient of the loss w.r.t. each input, given the gradient w.r.t. the
  /// output of the most recent train-mode forward. Accumulates parameter
  /// gradients internally (see grads()).
  virtual std::vector<Tensor> backward(const Tensor& grad_out) = 0;

  virtual std::vector<Tensor*> params() { return {}; }
  virtual std::vector<Tensor*> grads() { return {}; }
  void zero_grads();

  /// Persistent state: parameters plus whatever non-parameter tensors must
  /// survive serialization (BatchNorm running statistics). Serialization
  /// and the verifier's non-finite-parameter scan both walk this list.
  virtual std::vector<Tensor*> state() { return params(); }

  virtual LayerCost cost(const std::vector<Shape>& in) const = 0;

  std::int64_t param_count() const;

 protected:
  static void require_arity(const std::vector<Shape>& in, int arity, const char* who);
  static void require_arity(const std::vector<const Tensor*>& in, int arity, const char* who);
};

}  // namespace netcut::nn
