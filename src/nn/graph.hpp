// A DAG of layers. Nodes are appended in topological order (a node's inputs
// must already exist), so insertion order doubles as execution order.
//
// Every node carries a block id: the repeating architectural module
// (depthwise-separable block, inverted residual, Inception module, residual
// bottleneck, dense layer, ...) it belongs to. Block boundaries are the cut
// sites for blockwise layer removal; graph dominators of the output are the
// cut sites for iterative (per-layer) removal.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "nn/layer.hpp"

namespace netcut::nn {

struct Node {
  std::unique_ptr<Layer> layer;
  std::vector<int> inputs;  // node ids, all < this node's id
  std::string name;
  int block_id = -1;            // -1: not part of a removable block (stem/head)
  std::string block_name;
};

struct BlockInfo {
  int block_id = -1;
  std::string name;
  int first_node = -1;
  int last_node = -1;  // the block's single output node (cut site)
  int node_count = 0;
};

class Graph {
 public:
  Graph() = default;
  Graph(const Graph& other);
  Graph& operator=(const Graph& other);
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  /// Creates the (single) input node. Must be called first, exactly once.
  int add_input(Shape shape);

  /// Appends a node; inputs must reference existing node ids.
  /// Returns the new node's id. The most recently added node is the output.
  int add(std::unique_ptr<Layer> layer, std::vector<int> inputs, std::string name = "",
          int block_id = -1, std::string block_name = "");

  int node_count() const { return static_cast<int>(nodes_.size()); }
  const Node& node(int id) const;
  Node& node(int id);
  int input_node() const { return 0; }
  int output_node() const { return node_count() - 1; }

  const Shape& input_shape() const;

  /// Shape of every node's output, in node order. Validates the graph.
  /// The result is computed once and cached; add()/add_input() and
  /// assignment invalidate the cache, so repeated callers (network
  /// construction, plan building, TRN cutting, device costing, pretrained
  /// harvesting) pay the per-layer shape walk only once per graph.
  /// Structural mutation through the non-const node() accessor is NOT
  /// tracked — such callers must invalidate_shape_cache() themselves, and
  /// nn::verify_graph cross-checks cache coherency either way. The lazy
  /// fill is not thread-safe; concurrent executors operate on per-worker
  /// Graph clones (each clone re-derives its own cache).
  const std::vector<Shape>& infer_shapes() const;

  /// Drop the cached shape vector (next infer_shapes() recomputes).
  void invalidate_shape_cache() { shape_cache_.reset(); }

  /// The cached shape vector, or nullptr when no infer_shapes() call has
  /// populated it since the last mutation. Used by nn::verify_graph to
  /// cross-check cache coherency against an independent re-derivation.
  const std::vector<Shape>* cached_shapes() const { return shape_cache_.get(); }

  /// Blocks in topological order of their last node. Only nodes with
  /// block_id >= 0 participate. Requires each block to be contiguous and to
  /// end at a node that dominates the output (a valid cut site).
  std::vector<BlockInfo> blocks() const;

  /// Node ids that every input->output path passes through, in topological
  /// order, excluding the input node itself. These are the legal single-
  /// tensor cut sites for iterative layer removal.
  std::vector<int> output_dominators() const;

  /// The subgraph consisting of all ancestors of `node_id` (inclusive),
  /// with `node_id` as the new output. Layer weights are deep-copied.
  Graph prefix(int node_id) const;

  /// Sum of per-layer costs (at the graph's own input resolution).
  LayerCost total_cost() const;

  /// Number of layers (nodes excluding the input placeholder).
  int layer_count() const { return node_count() - 1; }

 private:
  void copy_from(const Graph& other);
  std::vector<Node> nodes_;
  // Cached infer_shapes() result. Shared (immutable payload) so copying a
  // graph shares the already-computed shapes instead of re-deriving them.
  mutable std::shared_ptr<const std::vector<Shape>> shape_cache_;
};

}  // namespace netcut::nn
