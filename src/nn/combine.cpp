#include "nn/combine.hpp"

#include <cstring>
#include <stdexcept>

namespace netcut::nn {

Shape Input::output_shape(const std::vector<Shape>& in) const {
  if (!in.empty() && in[0] != shape_)
    throw std::invalid_argument("Input: shape mismatch with declared shape");
  return shape_;
}

Tensor Input::forward(const std::vector<const Tensor*>& in, bool /*train*/) {
  require_arity(in, 1, "Input");
  return *in[0];
}

std::vector<Tensor> Input::backward(const Tensor& grad_out) {
  std::vector<Tensor> grads_in;
  grads_in.push_back(grad_out);
  return grads_in;
}

LayerCost Input::cost(const std::vector<Shape>& /*in*/) const { return {}; }

Add::Add(int arity) : arity_(arity) {
  if (arity < 2) throw std::invalid_argument("Add: arity must be >= 2");
}

Shape Add::output_shape(const std::vector<Shape>& in) const {
  require_arity(in, arity_, "Add");
  for (const auto& s : in)
    if (s != in[0]) throw std::invalid_argument("Add: input shape mismatch");
  return in[0];
}

Tensor Add::forward(const std::vector<const Tensor*>& in, bool train) {
  require_arity(in, arity_, "Add");
  Tensor y(in[0]->shape());
  forward_into(in, y, train, nullptr);
  return y;
}

void Add::forward_into(const std::vector<const Tensor*>& in, Tensor& out, bool /*train*/,
                       float* /*scratch*/) {
  require_arity(in, arity_, "Add");
  out.copy_from(*in[0]);
  for (int i = 1; i < arity_; ++i) {
    const float* src = in[static_cast<std::size_t>(i)]->data();
    float* dst = out.data();
    for (std::int64_t j = 0; j < out.numel(); ++j) dst[j] += src[j];
  }
}

std::vector<Tensor> Add::backward(const Tensor& grad_out) {
  std::vector<Tensor> grads_in;
  for (int i = 0; i < arity_; ++i) grads_in.push_back(grad_out);
  return grads_in;
}

LayerCost Add::cost(const std::vector<Shape>& in) const {
  LayerCost c;
  c.flops = static_cast<std::int64_t>(arity_ - 1) * in[0].numel();
  c.input_elems = static_cast<std::int64_t>(arity_) * in[0].numel();
  c.output_elems = in[0].numel();
  return c;
}

Concat::Concat(int arity) : arity_(arity) {
  if (arity < 2) throw std::invalid_argument("Concat: arity must be >= 2");
}

Shape Concat::output_shape(const std::vector<Shape>& in) const {
  require_arity(in, arity_, "Concat");
  int channels = 0;
  for (const auto& s : in) {
    if (s.rank() != 3) throw std::invalid_argument("Concat: expected CHW inputs");
    if (s[1] != in[0][1] || s[2] != in[0][2])
      throw std::invalid_argument("Concat: spatial dims mismatch");
    channels += s[0];
  }
  return Shape::chw(channels, in[0][1], in[0][2]);
}

Tensor Concat::forward(const std::vector<const Tensor*>& in, bool train) {
  require_arity(in, arity_, "Concat");
  std::vector<Shape> shapes;
  shapes.reserve(in.size());
  for (const Tensor* t : in) shapes.push_back(t->shape());
  Tensor y(output_shape(shapes));
  forward_into(in, y, train, nullptr);
  return y;
}

void Concat::forward_into(const std::vector<const Tensor*>& in, Tensor& out, bool train,
                          float* /*scratch*/) {
  require_arity(in, arity_, "Concat");
  float* dst = out.data();
  for (const Tensor* t : in) {
    std::memcpy(dst, t->data(), sizeof(float) * static_cast<std::size_t>(t->numel()));
    dst += t->numel();
  }
  if (train) {
    cached_channels_.clear();
    for (const Tensor* t : in) cached_channels_.push_back(t->shape()[0]);
    cached_h_ = in[0]->shape()[1];
    cached_w_ = in[0]->shape()[2];
  }
}

std::vector<Tensor> Concat::backward(const Tensor& grad_out) {
  if (cached_channels_.empty())
    throw std::logic_error("Concat::backward without train forward");
  std::vector<Tensor> grads_in;
  const float* src = grad_out.data();
  for (int c : cached_channels_) {
    Tensor g(Shape::chw(c, cached_h_, cached_w_));
    std::memcpy(g.data(), src, sizeof(float) * static_cast<std::size_t>(g.numel()));
    src += g.numel();
    grads_in.push_back(std::move(g));
  }
  return grads_in;
}

LayerCost Concat::cost(const std::vector<Shape>& in) const {
  const Shape out = output_shape(in);
  LayerCost c;
  c.input_elems = out.numel();
  c.output_elems = out.numel();
  return c;
}

Shape Flatten::output_shape(const std::vector<Shape>& in) const {
  require_arity(in, 1, "Flatten");
  return Shape::vec(static_cast<int>(in[0].numel()));
}

Tensor Flatten::forward(const std::vector<const Tensor*>& in, bool train) {
  require_arity(in, 1, "Flatten");
  if (train) cached_in_shape_ = in[0]->shape();
  return in[0]->reshaped(Shape::vec(static_cast<int>(in[0]->numel())));
}

void Flatten::forward_into(const std::vector<const Tensor*>& in, Tensor& out, bool train,
                           float* /*scratch*/) {
  require_arity(in, 1, "Flatten");
  if (train) cached_in_shape_ = in[0]->shape();
  std::memcpy(out.data(), in[0]->data(),
              sizeof(float) * static_cast<std::size_t>(in[0]->numel()));
}

std::vector<Tensor> Flatten::backward(const Tensor& grad_out) {
  if (cached_in_shape_.rank() == 0)
    throw std::logic_error("Flatten::backward without train forward");
  std::vector<Tensor> grads_in;
  grads_in.push_back(grad_out.reshaped(cached_in_shape_));
  return grads_in;
}

LayerCost Flatten::cost(const std::vector<Shape>& in) const {
  LayerCost c;
  c.input_elems = in[0].numel();
  c.output_elems = in[0].numel();
  return c;
}

}  // namespace netcut::nn
