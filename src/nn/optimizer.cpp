#include "nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace netcut::nn {

void Optimizer::bind(std::vector<tensor::Tensor*> params, std::vector<tensor::Tensor*> grads) {
  if (params.size() != grads.size())
    throw std::invalid_argument("Optimizer::bind: param/grad count mismatch");
  for (std::size_t i = 0; i < params.size(); ++i)
    if (params[i]->numel() != grads[i]->numel())
      throw std::invalid_argument("Optimizer::bind: param/grad size mismatch");
  params_ = std::move(params);
  grads_ = std::move(grads);
  on_bind();
}

Sgd::Sgd(double lr, double momentum, double weight_decay)
    : Optimizer(lr), momentum_(momentum), weight_decay_(weight_decay) {}

void Sgd::on_bind() {
  velocity_.clear();
  for (const tensor::Tensor* p : params_)
    velocity_.emplace_back(static_cast<std::size_t>(p->numel()), 0.0f);
}

void Sgd::step() {
  for (std::size_t k = 0; k < params_.size(); ++k) {
    tensor::Tensor& p = *params_[k];
    const tensor::Tensor& g = *grads_[k];
    std::vector<float>& vel = velocity_[k];
    for (std::int64_t i = 0; i < p.numel(); ++i) {
      float grad = g[i] + static_cast<float>(weight_decay_) * p[i];
      float v = static_cast<float>(momentum_) * vel[static_cast<std::size_t>(i)] + grad;
      vel[static_cast<std::size_t>(i)] = v;
      p[i] -= static_cast<float>(lr_) * v;
    }
  }
}

Adam::Adam(double lr, double beta1, double beta2, double eps)
    : Optimizer(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

void Adam::on_bind() {
  t_ = 0;
  m_.clear();
  v_.clear();
  for (const tensor::Tensor* p : params_) {
    m_.emplace_back(static_cast<std::size_t>(p->numel()), 0.0f);
    v_.emplace_back(static_cast<std::size_t>(p->numel()), 0.0f);
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t k = 0; k < params_.size(); ++k) {
    tensor::Tensor& p = *params_[k];
    const tensor::Tensor& g = *grads_[k];
    std::vector<float>& m = m_[k];
    std::vector<float>& v = v_[k];
    for (std::int64_t i = 0; i < p.numel(); ++i) {
      const auto idx = static_cast<std::size_t>(i);
      m[idx] = static_cast<float>(beta1_) * m[idx] + static_cast<float>(1.0 - beta1_) * g[i];
      v[idx] =
          static_cast<float>(beta2_) * v[idx] + static_cast<float>(1.0 - beta2_) * g[i] * g[i];
      const double mhat = m[idx] / bc1;
      const double vhat = v[idx] / bc2;
      p[i] -= static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
    }
  }
}

}  // namespace netcut::nn
