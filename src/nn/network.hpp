// Network: an executable wrapper around a Graph. Owns per-node activation
// storage for forward passes and gradient accumulators for backward passes.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/graph.hpp"

namespace netcut::nn {

class Network {
 public:
  explicit Network(Graph graph);

  const Graph& graph() const { return graph_; }
  Graph& graph() { return graph_; }

  /// Run the network on one CHW image (or feature vector); returns the
  /// output node's activation. With train=true, layers cache for backward
  /// and activations are retained for the DAG backward pass.
  Tensor forward(const Tensor& input, bool train = false);

  /// Forward that also returns the activations of `collect` node ids
  /// (in the same order). Used to harvest features at candidate cutpoints
  /// in a single pass.
  std::vector<Tensor> forward_collect(const Tensor& input, const std::vector<int>& collect,
                                      bool train = false);

  /// Backpropagate from a gradient w.r.t. the output of the most recent
  /// train-mode forward. Parameter gradients accumulate in the layers.
  void backward(const Tensor& grad_output);

  /// Backpropagate from gradients seeded at several nodes simultaneously
  /// (deep supervision: auxiliary heads contribute to one backward pass).
  void backward_multi(const std::vector<std::pair<int, Tensor>>& seed_grads);

  std::vector<Tensor*> params();
  std::vector<Tensor*> grads();
  void zero_grads();

  std::int64_t total_flops() const { return graph_.total_cost().flops; }
  std::int64_t total_params() const { return graph_.total_cost().params; }

  /// Output shape at the declared input resolution.
  Shape output_shape() const;

 private:
  Graph graph_;
  std::vector<Tensor> activations_;  // valid after a train-mode forward
  bool have_activations_ = false;
};

}  // namespace netcut::nn
