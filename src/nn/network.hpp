// Network: an executable wrapper around a Graph. Owns per-node activation
// storage for forward passes and gradient accumulators for backward passes.
//
// Forward passes run in one of two modes:
//  - planned (default): a MemoryPlan assigns every activation and per-layer
//    scratch buffer an offset into one arena; layers write through
//    forward_into into views bound at those offsets, so a steady-state pass
//    performs no per-node heap allocation. Tensors handed back to the caller
//    (the output, collected activations) are deep-copied out of the arena by
//    Tensor's materializing copy semantics.
//  - naive: every node heap-allocates its output via Layer::forward. Kept as
//    the reference path; the planned path is bit-identical to it.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/graph.hpp"
#include "nn/memory_plan.hpp"
#include "tensor/arena.hpp"

namespace netcut::nn {

/// Process-wide default for new Network instances. Initialized from the
/// NETCUT_MEMPLAN environment variable ("0" disables planning; anything
/// else, or unset, enables it).
bool default_memory_planning();
void set_default_memory_planning(bool on);

class Network {
 public:
  explicit Network(Graph graph);

  // The activation arena is move-only; copies start with a fresh (empty)
  // arena and re-reserve lazily on their first planned forward.
  Network(const Network& other);
  Network& operator=(const Network& other);
  Network(Network&&) = default;
  Network& operator=(Network&&) = default;

  const Graph& graph() const { return graph_; }
  Graph& graph() { return graph_; }

  /// Run the network on one CHW image (or feature vector); returns the
  /// output node's activation. With train=true, layers cache for backward
  /// and activations are retained for the DAG backward pass.
  Tensor forward(const Tensor& input, bool train = false);

  /// Forward that also returns the activations of `collect` node ids
  /// (in the same order). Used to harvest features at candidate cutpoints
  /// in a single pass.
  std::vector<Tensor> forward_collect(const Tensor& input, const std::vector<int>& collect,
                                      bool train = false);

  /// Inference-only batched forward: one output per input, in order. The
  /// planned path lays the arena out as `inputs.size()` disjoint lanes
  /// (planned once per batch size and cached) and runs lanes concurrently on
  /// the pool; every kernel is deterministic at any thread count, so the
  /// result is bitwise identical to `inputs.size()` independent single-image
  /// forwards — the serving layer relies on exactly that equivalence. All
  /// inputs must share one shape. With planning disabled this degrades to a
  /// loop of naive single-image forwards.
  std::vector<Tensor> forward_batch(const std::vector<const Tensor*>& inputs);

  /// Inference-only forward that resumes mid-graph: node `resume` is seeded
  /// with `seed` (an activation the caller already computed, e.g. the shared
  /// trunk prefix of a cascade's deeper TRN) and only nodes after it
  /// execute, so a cascade escalation pays just the delta layers. Legal only
  /// when no node past `resume` reads behind it (true whenever `resume` is a
  /// cut site / output dominator); throws std::invalid_argument otherwise,
  /// or when `seed`'s shape differs from node `resume`'s inferred shape.
  /// Bitwise identical to the suffix of a full forward whose prefix produced
  /// `seed`; resume == 0 is the ordinary full forward.
  Tensor forward_from(int resume, const Tensor& seed);

  /// Batched counterpart of forward_from: one output per seed (all sharing
  /// node `resume`'s shape), planned as disjoint arena lanes and bitwise
  /// identical to seeds.size() independent forward_from calls.
  std::vector<Tensor> forward_from_batch(int resume, const std::vector<const Tensor*>& seeds);

  /// Backpropagate from a gradient w.r.t. the output of the most recent
  /// train-mode forward. Parameter gradients accumulate in the layers.
  void backward(const Tensor& grad_output);

  /// Backpropagate from gradients seeded at several nodes simultaneously
  /// (deep supervision: auxiliary heads contribute to one backward pass).
  void backward_multi(const std::vector<std::pair<int, Tensor>>& seed_grads);

  std::vector<Tensor*> params();
  std::vector<Tensor*> grads();
  void zero_grads();

  std::int64_t total_flops() const { return graph_.total_cost().flops; }
  std::int64_t total_params() const { return graph_.total_cost().params; }

  /// Output shape at the declared input resolution.
  Shape output_shape() const;

  /// Per-instance override of the process-wide planning default.
  void set_memory_planning(bool on) { planning_ = on; }
  bool memory_planning() const { return planning_; }

  /// The (cached) memory plan for a pass with this collect set / train flag
  /// / batch size / resume node. Exposed so tests and benchmarks can inspect
  /// planned vs naive footprint (and that distinct batch sizes or resume
  /// nodes never share a plan).
  const MemoryPlan& plan_for(const std::vector<int>& collect, bool train, int batch = 1,
                             int resume = 0);

 private:
  std::vector<Tensor> forward_collect_planned(const Tensor& input,
                                              const std::vector<int>& collect, bool train);
  void check_resume(int resume, const Shape& seed_shape) const;

  Graph graph_;
  std::vector<Tensor> activations_;  // valid after a train-mode forward
  bool have_activations_ = false;

  bool planning_ = default_memory_planning();
  std::vector<MemoryPlan> plans_;  // MRU cache, front = most recent
  tensor::Arena arena_;
};

}  // namespace netcut::nn
