// Spatial pooling. Windows are clamped to the valid input region, which
// makes these layers robust at the tiny spatial sizes used by the
// CPU-scale experiments (behaves like ceil_mode + count_include_pad=false).
#pragma once

#include "nn/layer.hpp"

namespace netcut::nn {

class Pool2D final : public Layer {
 public:
  enum class Mode { kMax, kAvg };

  /// pad < 0 means "same"-style padding ((kernel-1)/2).
  Pool2D(Mode mode, int kernel, int stride, int pad = -1);

  LayerKind kind() const override {
    return mode_ == Mode::kMax ? LayerKind::kMaxPool : LayerKind::kAvgPool;
  }
  std::unique_ptr<Layer> clone() const override { return std::make_unique<Pool2D>(*this); }

  Shape output_shape(const std::vector<Shape>& in) const override;
  Tensor forward(const std::vector<const Tensor*>& in, bool train) override;
  void forward_into(const std::vector<const Tensor*>& in, Tensor& out, bool train,
                    float* scratch) override;
  std::vector<Tensor> backward(const Tensor& grad_out) override;
  LayerCost cost(const std::vector<Shape>& in) const override;

  Mode mode() const { return mode_; }
  int kernel() const { return kernel_; }
  int stride() const { return stride_; }
  int pad() const { return pad_; }

 private:
  Mode mode_;
  int kernel_, stride_, pad_;
  Shape cached_in_shape_;
  std::vector<int> cached_argmax_;  // max mode: flat input index per output
};

class GlobalAvgPool final : public Layer {
 public:
  LayerKind kind() const override { return LayerKind::kGlobalAvgPool; }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<GlobalAvgPool>(*this);
  }

  Shape output_shape(const std::vector<Shape>& in) const override;
  Tensor forward(const std::vector<const Tensor*>& in, bool train) override;
  void forward_into(const std::vector<const Tensor*>& in, Tensor& out, bool train,
                    float* scratch) override;
  std::vector<Tensor> backward(const Tensor& grad_out) override;
  LayerCost cost(const std::vector<Shape>& in) const override;

 private:
  Shape cached_in_shape_;
};

}  // namespace netcut::nn
