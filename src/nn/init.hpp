// Weight initialization schemes. These seed cold (non-pretrained) layers;
// the pseudo-pretrained trunks come from data::PretrainedWeightGenerator.
#pragma once

#include "nn/graph.hpp"
#include "util/rng.hpp"

namespace netcut::nn {

/// He-normal fill for a conv weight tensor [O, I, K, K].
void he_init_conv(Tensor& weight, util::Rng& rng);

/// Xavier-uniform fill for a dense weight tensor [out, in].
void xavier_init_dense(Tensor& weight, util::Rng& rng);

/// Initialize every parameterized layer of a graph: He for convolutions,
/// Xavier for dense layers, identity for batch norms, zero biases.
void init_graph(Graph& graph, util::Rng& rng);

}  // namespace netcut::nn
