// Binary serialization of a graph's persistent state (weights, biases,
// batch-norm statistics). Used to cache pseudo-pretrained trunks on disk so
// the pretraining cost is paid once per configuration.
//
// Format: magic, node count, then per node: layer-kind tag and each
// persistent tensor's element count + raw float data. Loading validates
// the structure matches, so a file can only be loaded into a graph with an
// identical architecture.
#pragma once

#include <iosfwd>
#include <string>

#include "nn/graph.hpp"

namespace netcut::nn {

/// Writes all persistent tensors of the graph. Throws on I/O failure.
void save_params(const Graph& graph, const std::string& path);

/// Stream form, for callers that wrap the payload in their own container
/// (e.g. the checksummed atomic weight cache).
void save_params(const Graph& graph, std::ostream& out, const std::string& context);

/// Reads persistent tensors into the graph. Returns false (leaving the
/// graph untouched where possible) when the file is missing; throws on
/// structural mismatch or corruption.
bool load_params(Graph& graph, const std::string& path);

/// Stream form; `context` names the source in error messages. Throws on
/// structural mismatch or corruption.
void load_params(Graph& graph, std::istream& in, const std::string& context);

}  // namespace netcut::nn
