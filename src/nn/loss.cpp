#include "nn/loss.hpp"

#include <cmath>
#include <stdexcept>

#include "nn/activation.hpp"

namespace netcut::nn::loss {

LossResult soft_cross_entropy(const Tensor& logits, const Tensor& target) {
  if (logits.shape() != target.shape())
    throw std::invalid_argument("soft_cross_entropy: shape mismatch");
  const Tensor p = softmax(logits);
  LossResult r;
  double ce = 0.0;
  for (std::int64_t i = 0; i < p.numel(); ++i)
    ce -= static_cast<double>(target[i]) * std::log(static_cast<double>(p[i]) + 1e-12);
  r.value = ce;
  r.grad = Tensor(logits.shape());
  for (std::int64_t i = 0; i < p.numel(); ++i) r.grad[i] = p[i] - target[i];
  return r;
}

double kl_divergence(const Tensor& target, const Tensor& prediction) {
  if (target.shape() != prediction.shape())
    throw std::invalid_argument("kl_divergence: shape mismatch");
  double kl = 0.0;
  for (std::int64_t i = 0; i < target.numel(); ++i) {
    const double t = target[i];
    if (t <= 0.0) continue;
    kl += t * std::log(t / (static_cast<double>(prediction[i]) + 1e-12));
  }
  return kl;
}

LossResult mse(const Tensor& prediction, const Tensor& target) {
  if (prediction.shape() != target.shape())
    throw std::invalid_argument("mse: shape mismatch");
  LossResult r;
  r.grad = Tensor(prediction.shape());
  double s = 0.0;
  const double n = static_cast<double>(prediction.numel());
  for (std::int64_t i = 0; i < prediction.numel(); ++i) {
    const double d = prediction[i] - target[i];
    s += d * d;
    r.grad[i] = static_cast<float>(2.0 * d / n);
  }
  r.value = s / n;
  return r;
}

}  // namespace netcut::nn::loss
