#include "nn/graph.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <stdexcept>

#include "nn/combine.hpp"

namespace netcut::nn {

Graph::Graph(const Graph& other) { copy_from(other); }

Graph& Graph::operator=(const Graph& other) {
  if (this != &other) copy_from(other);
  return *this;
}

void Graph::copy_from(const Graph& other) {
  nodes_.clear();
  nodes_.reserve(other.nodes_.size());
  for (const Node& n : other.nodes_) {
    Node copy;
    copy.layer = n.layer->clone();
    copy.inputs = n.inputs;
    copy.name = n.name;
    copy.block_id = n.block_id;
    copy.block_name = n.block_name;
    nodes_.push_back(std::move(copy));
  }
  // The cache payload is immutable once published, so clones share it.
  shape_cache_ = other.shape_cache_;
}

int Graph::add_input(Shape shape) {
  if (!nodes_.empty()) throw std::logic_error("Graph::add_input: input must be the first node");
  Node n;
  n.layer = std::make_unique<Input>(std::move(shape));
  n.name = "input";
  nodes_.push_back(std::move(n));
  shape_cache_.reset();
  return 0;
}

int Graph::add(std::unique_ptr<Layer> layer, std::vector<int> inputs, std::string name,
               int block_id, std::string block_name) {
  if (nodes_.empty()) throw std::logic_error("Graph::add: call add_input first");
  if (!layer) throw std::invalid_argument("Graph::add: null layer");
  const int id = node_count();
  if (inputs.empty()) throw std::invalid_argument("Graph::add: node needs at least one input");
  for (int in : inputs)
    if (in < 0 || in >= id)
      throw std::invalid_argument("Graph::add: input id out of range (topological order)");
  Node n;
  n.name = name.empty() ? std::string(to_string(layer->kind())) : std::move(name);
  n.layer = std::move(layer);
  n.inputs = std::move(inputs);
  n.block_id = block_id;
  n.block_name = std::move(block_name);
  nodes_.push_back(std::move(n));
  shape_cache_.reset();
  return id;
}

const Node& Graph::node(int id) const {
  if (id < 0 || id >= node_count()) throw std::out_of_range("Graph::node: bad id");
  return nodes_[static_cast<std::size_t>(id)];
}

Node& Graph::node(int id) {
  if (id < 0 || id >= node_count()) throw std::out_of_range("Graph::node: bad id");
  return nodes_[static_cast<std::size_t>(id)];
}

const Shape& Graph::input_shape() const {
  if (nodes_.empty()) throw std::logic_error("Graph: empty");
  return static_cast<const Input&>(*nodes_[0].layer).declared_shape();
}

const std::vector<Shape>& Graph::infer_shapes() const {
  if (nodes_.empty()) throw std::logic_error("Graph: empty");
  if (shape_cache_) return *shape_cache_;
  std::vector<Shape> shapes(nodes_.size());
  shapes[0] = input_shape();
  for (int id = 1; id < node_count(); ++id) {
    const Node& n = nodes_[static_cast<std::size_t>(id)];
    std::vector<Shape> in;
    in.reserve(n.inputs.size());
    for (int src : n.inputs) in.push_back(shapes[static_cast<std::size_t>(src)]);
    try {
      shapes[static_cast<std::size_t>(id)] = n.layer->output_shape(in);
    } catch (const std::exception& e) {
      throw std::invalid_argument("Graph: shape error at node " + std::to_string(id) + " (" +
                                  n.name + "): " + e.what());
    }
  }
  shape_cache_ = std::make_shared<const std::vector<Shape>>(std::move(shapes));
  return *shape_cache_;
}

std::vector<BlockInfo> Graph::blocks() const {
  std::vector<BlockInfo> out;
  for (int id = 1; id < node_count(); ++id) {
    const Node& n = nodes_[static_cast<std::size_t>(id)];
    if (n.block_id < 0) continue;
    if (!out.empty() && out.back().block_id == n.block_id) {
      out.back().last_node = id;
      out.back().node_count += 1;
    } else {
      for (const BlockInfo& b : out)
        if (b.block_id == n.block_id)
          throw std::logic_error("Graph::blocks: block " + std::to_string(n.block_id) +
                                 " is not contiguous");
      BlockInfo b;
      b.block_id = n.block_id;
      b.name = n.block_name;
      b.first_node = id;
      b.last_node = id;
      b.node_count = 1;
      out.push_back(std::move(b));
    }
  }
  return out;
}

std::vector<int> Graph::output_dominators() const {
  // dom(v) as bitsets over node ids, packed 64 per word in one flat
  // n x words array (topological order makes a single pass sufficient).
  // The AND-reduce over a node's inputs runs word-at-a-time instead of
  // bit-at-a-time through std::vector<bool>'s proxy references.
  const int n = node_count();
  const std::size_t words = (static_cast<std::size_t>(n) + 63) / 64;
  std::vector<std::uint64_t> dom(static_cast<std::size_t>(n) * words, 0);
  auto row = [&](int id) { return dom.data() + static_cast<std::size_t>(id) * words; };
  row(0)[0] = 1u;  // dom(input) = {input}
  for (int id = 1; id < n; ++id) {
    const Node& nd = nodes_[static_cast<std::size_t>(id)];
    std::uint64_t* d = row(id);
    std::memcpy(d, row(nd.inputs[0]), words * sizeof(std::uint64_t));
    for (std::size_t i = 1; i < nd.inputs.size(); ++i) {
      const std::uint64_t* other = row(nd.inputs[i]);
      for (std::size_t w = 0; w < words; ++w) d[w] &= other[w];
    }
    d[static_cast<std::size_t>(id) / 64] |= std::uint64_t{1} << (id % 64);
  }
  std::vector<int> result;
  const std::uint64_t* out_dom = row(n - 1);
  for (int id = 1; id < n; ++id)
    if (out_dom[static_cast<std::size_t>(id) / 64] >> (id % 64) & 1u) result.push_back(id);
  return result;
}

Graph Graph::prefix(int node_id) const {
  if (node_id <= 0 || node_id >= node_count())
    throw std::out_of_range("Graph::prefix: bad node id");
  // Collect ancestors.
  std::vector<bool> keep(static_cast<std::size_t>(node_count()), false);
  keep[static_cast<std::size_t>(node_id)] = true;
  for (int id = node_id; id >= 1; --id) {
    if (!keep[static_cast<std::size_t>(id)]) continue;
    for (int src : nodes_[static_cast<std::size_t>(id)].inputs)
      keep[static_cast<std::size_t>(src)] = true;
  }
  keep[0] = true;

  std::vector<int> remap(static_cast<std::size_t>(node_count()), -1);
  Graph out;
  out.add_input(input_shape());
  remap[0] = 0;
  for (int id = 1; id <= node_id; ++id) {
    if (!keep[static_cast<std::size_t>(id)]) continue;
    const Node& n = nodes_[static_cast<std::size_t>(id)];
    std::vector<int> inputs;
    inputs.reserve(n.inputs.size());
    for (int src : n.inputs) {
      if (remap[static_cast<std::size_t>(src)] < 0)
        throw std::logic_error("Graph::prefix: dangling ancestor");
      inputs.push_back(remap[static_cast<std::size_t>(src)]);
    }
    remap[static_cast<std::size_t>(id)] =
        out.add(n.layer->clone(), std::move(inputs), n.name, n.block_id, n.block_name);
  }
  return out;
}

LayerCost Graph::total_cost() const {
  const std::vector<Shape>& shapes = infer_shapes();
  LayerCost total;
  for (int id = 1; id < node_count(); ++id) {
    const Node& n = nodes_[static_cast<std::size_t>(id)];
    std::vector<Shape> in;
    for (int src : n.inputs) in.push_back(shapes[static_cast<std::size_t>(src)]);
    const LayerCost c = n.layer->cost(in);
    total.flops += c.flops;
    total.params += c.params;
    total.input_elems += c.input_elems;
    total.output_elems += c.output_elems;
    total.kernel = std::max(total.kernel, c.kernel);
  }
  return total;
}

}  // namespace netcut::nn
