// Static activation-memory planning for graph execution.
//
// Given a Graph, its inferred shapes, the set of node ids whose activations
// a pass must hand back (`collect`), and the train/inference flag, the plan
// computes every activation's live interval — definition node to last
// consumer, with collected / train-retained activations pinned to the end
// of the pass — and assigns each activation (and each layer's per-call
// forward scratch) an offset into one shared arena via greedy best-fit, so
// buffers whose lifetimes do not overlap share the same bytes. Execution
// then binds Tensor views at those offsets instead of heap-allocating a
// fresh tensor per node per pass.
//
// The plan is a pure function of (graph structure, shapes, collect, train,
// batch): it is computed once per Network and reused across every forward of
// the same configuration.
//
// Batched passes replicate the single-image layout: lane 0's slot offsets
// are computed exactly as for batch == 1, and lane b executes at offset
// `b * lane_stride()`. Lanes are disjoint by construction (the stride is the
// aligned high-water mark of one lane), so the per-lane alias proof carries
// over to every lane and lanes may execute concurrently.
//
// Prefix-resume plans (resume > 0) cover only the graph suffix: node
// `resume` plays the input role — the caller supplies its activation (the
// shared trunk prefix of a cascade's deeper TRN), it owns no slot, and only
// nodes after it are planned and executed. Legal only when every node past
// `resume` reads nodes >= resume, which holds exactly when `resume` is an
// output dominator (every TRN cut site is). resume == 0 is the ordinary
// full-pass plan, bit-identical to before the parameter existed.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/graph.hpp"

namespace netcut::nn {

/// One arena slot: `floats` payload elements starting at `offset`.
struct PlanSlot {
  std::size_t offset = 0;
  std::size_t floats = 0;
};

class MemoryPlan {
 public:
  MemoryPlan() = default;
  MemoryPlan(const Graph& graph, const std::vector<Shape>& shapes,
             const std::vector<int>& collect, bool train, int batch = 1, int resume = 0);

  /// True if this plan fits a pass over the same graph with the same
  /// collect set, train flag, batch size and resume node. A batch-N plan
  /// never serves a batch-M pass (M != N): the arena capacity and lane
  /// layout differ; likewise a resume-R plan never serves a resume-S pass.
  bool matches(int node_count, const std::vector<int>& collect, bool train,
               int batch = 1, int resume = 0) const;

  /// Arena capacity the plan needs (activations + scratch, all lanes), in
  /// floats: lane_stride() * batch().
  std::size_t arena_floats() const { return lane_stride_ * static_cast<std::size_t>(batch_); }
  /// Per-pass allocation footprint of the unplanned path: the sum of every
  /// activation's size (each naive forward heap-allocates all of them).
  std::size_t naive_activation_floats() const { return naive_activation_floats_; }
  /// High-water mark of the activation slots alone (scratch excluded) —
  /// the planned peak activation memory reported by benchmarks.
  std::size_t planned_activation_floats() const { return planned_activation_floats_; }

  /// Number of images a planned pass executes.
  int batch() const { return batch_; }
  /// Float offset between consecutive lanes (aligned one-lane high-water
  /// mark). Lane b's slots live at slot.offset + b * lane_stride().
  std::size_t lane_stride() const { return lane_stride_; }

  /// Activation slot of node `id` (1 <= id < node_count; node 0 views the
  /// caller's input tensor and owns no slot). Offsets are lane-0 relative.
  const PlanSlot& activation(int id) const { return activations_[static_cast<std::size_t>(id)]; }
  /// Forward-scratch slot of node `id`; floats == 0 when the layer asked
  /// for no workspace.
  const PlanSlot& scratch(int id) const { return scratch_[static_cast<std::size_t>(id)]; }
  /// Output shape of node `id` (the shape its view is bound with).
  const Shape& shape(int id) const { return shapes_[static_cast<std::size_t>(id)]; }
  /// Last node (inclusive) that reads node `id`'s activation.
  int last_use(int id) const { return last_use_[static_cast<std::size_t>(id)]; }

  /// The collect set and train flag the plan was built for. The verifier's
  /// independent alias proof re-derives live intervals from these.
  const std::vector<int>& collect() const { return collect_; }
  bool train() const { return train_; }
  /// First executed node is resume() + 1; node resume() views the caller's
  /// seed activation (0 for an ordinary full pass).
  int resume() const { return resume_; }

  int node_count() const { return static_cast<int>(activations_.size()); }

 private:
  std::vector<PlanSlot> activations_;  // indexed by node id; [0] unused
  std::vector<PlanSlot> scratch_;
  std::vector<Shape> shapes_;
  std::vector<int> last_use_;
  std::vector<int> collect_;
  bool train_ = false;
  int batch_ = 1;
  int resume_ = 0;
  std::size_t lane_stride_ = 0;
  std::size_t naive_activation_floats_ = 0;
  std::size_t planned_activation_floats_ = 0;
};

}  // namespace netcut::nn
