// Losses over probability-distribution targets.
//
// The HANDS labels are probabilistic (not one-hot), so training minimizes
// soft-target cross-entropy on logits — equal to KL(target || softmax)
// up to the constant target entropy, with the numerically robust gradient
// softmax(logits) - target.
#pragma once

#include "tensor/tensor.hpp"

namespace netcut::nn::loss {

using tensor::Tensor;

struct LossResult {
  double value = 0.0;
  Tensor grad;  // gradient w.r.t. the logits (or prediction for mse)
};

/// Cross-entropy between a target distribution and softmax(logits).
LossResult soft_cross_entropy(const Tensor& logits, const Tensor& target);

/// KL(target || prediction) for two probability vectors; no gradient
/// (reporting metric only).
double kl_divergence(const Tensor& target, const Tensor& prediction);

/// Mean squared error (used by regression tests of the framework).
LossResult mse(const Tensor& prediction, const Tensor& target);

}  // namespace netcut::nn::loss
