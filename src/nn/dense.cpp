#include "nn/dense.hpp"

#include <stdexcept>

#include "tensor/gemm.hpp"

namespace netcut::nn {

Dense::Dense(int in_features, int out_features, bool bias)
    : in_f_(in_features),
      out_f_(out_features),
      has_bias_(bias),
      weight_(Shape{out_features, in_features}),
      bias_(Shape{out_features}),
      grad_weight_(Shape{out_features, in_features}),
      grad_bias_(Shape{out_features}) {
  if (in_features <= 0 || out_features <= 0)
    throw std::invalid_argument("Dense: invalid feature counts");
}

Shape Dense::output_shape(const std::vector<Shape>& in) const {
  require_arity(in, 1, "Dense");
  if (in[0].rank() != 1 || in[0][0] != in_f_)
    throw std::invalid_argument("Dense: expected rank-1 input of " + std::to_string(in_f_) +
                                " features, got " + in[0].to_string());
  return Shape::vec(out_f_);
}

Tensor Dense::forward(const std::vector<const Tensor*>& in, bool train) {
  require_arity(in, 1, "Dense");
  Tensor y(Shape::vec(out_f_));
  forward_into(in, y, train, nullptr);
  return y;
}

void Dense::forward_into(const std::vector<const Tensor*>& in, Tensor& out, bool train,
                         float* /*scratch*/) {
  require_arity(in, 1, "Dense");
  const Tensor& x = *in[0];
  tensor::gemv(weight_.data(), x.data(), out.data(), out_f_, in_f_);
  if (has_bias_)
    for (int o = 0; o < out_f_; ++o) out[o] += bias_[o];
  if (train) cached_input_ = x;
}

std::vector<Tensor> Dense::backward(const Tensor& grad_out) {
  if (cached_input_.empty()) throw std::logic_error("Dense::backward without train forward");
  const Tensor& x = cached_input_;
  // dW += dy * x^T ; db += dy ; dx = W^T dy
  for (int o = 0; o < out_f_; ++o) {
    const float g = grad_out[o];
    if (has_bias_) grad_bias_[o] += g;
    if (g == 0.0f) continue;
    float* wrow = grad_weight_.data() + static_cast<std::int64_t>(o) * in_f_;
    for (int i = 0; i < in_f_; ++i) wrow[i] += g * x[i];
  }
  Tensor dx(Shape::vec(in_f_));
  tensor::gemv_t(weight_.data(), grad_out.data(), dx.data(), out_f_, in_f_);
  std::vector<Tensor> grads_in;
  grads_in.push_back(std::move(dx));
  return grads_in;
}

std::vector<Tensor*> Dense::params() {
  if (has_bias_) return {&weight_, &bias_};
  return {&weight_};
}

std::vector<Tensor*> Dense::grads() {
  if (has_bias_) return {&grad_weight_, &grad_bias_};
  return {&grad_weight_};
}

LayerCost Dense::cost(const std::vector<Shape>& in) const {
  output_shape(in);  // validates
  LayerCost c;
  c.flops = 2LL * in_f_ * out_f_ + (has_bias_ ? out_f_ : 0);
  c.params = weight_.numel() + (has_bias_ ? bias_.numel() : 0);
  c.input_elems = in_f_;
  c.output_elems = out_f_;
  c.kernel = 0;
  return c;
}

}  // namespace netcut::nn
