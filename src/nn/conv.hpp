// Standard and depthwise 2-D convolutions. Standard convolutions support
// rectangular kernels (InceptionV3 factorized 1x7 / 7x1 convolutions);
// depthwise convolutions are square (3x3 throughout the MobileNet family).
#pragma once

#include "nn/layer.hpp"
#include "tensor/im2col.hpp"

namespace netcut::nn {

class Conv2D final : public Layer {
 public:
  /// Square kernel. pad < 0 means "same"-style padding ((kernel-1)/2).
  Conv2D(int in_channels, int out_channels, int kernel, int stride = 1, int pad = -1,
         bool bias = true);
  /// Rectangular kernel with per-axis "same" padding.
  Conv2D(int in_channels, int out_channels, int kernel_h, int kernel_w, int stride, int pad_h,
         int pad_w, bool bias);

  LayerKind kind() const override { return LayerKind::kConv2D; }
  std::unique_ptr<Layer> clone() const override { return std::make_unique<Conv2D>(*this); }

  Shape output_shape(const std::vector<Shape>& in) const override;
  Tensor forward(const std::vector<const Tensor*>& in, bool train) override;
  void forward_into(const std::vector<const Tensor*>& in, Tensor& out, bool train,
                    float* scratch) override;
  std::size_t forward_scratch_floats(const std::vector<Shape>& in) const override;
  std::vector<Tensor> backward(const Tensor& grad_out) override;

  std::vector<Tensor*> params() override;
  std::vector<Tensor*> grads() override;
  LayerCost cost(const std::vector<Shape>& in) const override;

  Tensor& weight() { return weight_; }
  const Tensor& weight() const { return weight_; }
  Tensor& bias() { return bias_; }
  const Tensor& bias() const { return bias_; }
  bool has_bias() const { return has_bias_; }
  int in_channels() const { return in_c_; }
  int out_channels() const { return out_c_; }
  int kernel_h() const { return kernel_h_; }
  int kernel_w() const { return kernel_w_; }
  int stride() const { return stride_; }
  int pad_h() const { return pad_h_; }
  int pad_w() const { return pad_w_; }

 private:
  tensor::ConvGeometry geometry(const Shape& in) const;

  int in_c_, out_c_, kernel_h_, kernel_w_, stride_, pad_h_, pad_w_;
  bool has_bias_;
  Tensor weight_;  // [out_c, in_c, kh, kw]
  Tensor bias_;    // [out_c]
  Tensor grad_weight_, grad_bias_;

  // Cached by train-mode forward.
  Tensor cached_input_;

  // Persistent per-layer scratch (im2col columns and backward temporaries),
  // grown on demand and reused across calls instead of reallocating on every
  // forward/backward. Layers are not shared across pool workers (the
  // evaluator clones trunks per worker), so no synchronization is needed.
  std::vector<float> cols_scratch_, dcols_scratch_, dw_scratch_;
};

class DepthwiseConv2D final : public Layer {
 public:
  DepthwiseConv2D(int channels, int kernel, int stride = 1, int pad = -1, bool bias = true);

  LayerKind kind() const override { return LayerKind::kDepthwiseConv2D; }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<DepthwiseConv2D>(*this);
  }

  Shape output_shape(const std::vector<Shape>& in) const override;
  Tensor forward(const std::vector<const Tensor*>& in, bool train) override;
  void forward_into(const std::vector<const Tensor*>& in, Tensor& out, bool train,
                    float* scratch) override;
  std::vector<Tensor> backward(const Tensor& grad_out) override;

  std::vector<Tensor*> params() override;
  std::vector<Tensor*> grads() override;
  LayerCost cost(const std::vector<Shape>& in) const override;

  Tensor& weight() { return weight_; }
  const Tensor& weight() const { return weight_; }
  Tensor& bias() { return bias_; }
  bool has_bias() const { return has_bias_; }
  int channels() const { return channels_; }
  int kernel() const { return kernel_; }
  int stride() const { return stride_; }
  int pad() const { return pad_; }

 private:
  int channels_, kernel_, stride_, pad_;
  bool has_bias_;
  Tensor weight_;  // [c, 1, k, k]
  Tensor bias_;    // [c]
  Tensor grad_weight_, grad_bias_;
  Tensor cached_input_;
};

}  // namespace netcut::nn
