// First-order optimizers over a network's parameter list. The fine-tuning
// schedule from the paper (head-only at lr 1e-3, then all layers at 1e-4)
// is expressed by re-binding an optimizer to a different parameter set.
#pragma once

#include <memory>
#include <vector>

#include "tensor/tensor.hpp"

namespace netcut::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Bind the parameter/gradient tensors this optimizer updates. Resets
  /// internal state (momenta).
  void bind(std::vector<tensor::Tensor*> params, std::vector<tensor::Tensor*> grads);

  /// Apply one update using the currently accumulated gradients.
  virtual void step() = 0;

  void set_learning_rate(double lr) { lr_ = lr; }
  double learning_rate() const { return lr_; }

 protected:
  explicit Optimizer(double lr) : lr_(lr) {}
  virtual void on_bind() {}

  double lr_;
  std::vector<tensor::Tensor*> params_;
  std::vector<tensor::Tensor*> grads_;
};

class Sgd final : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.0, double weight_decay = 0.0);
  void step() override;

 private:
  void on_bind() override;
  double momentum_, weight_decay_;
  std::vector<std::vector<float>> velocity_;
};

class Adam final : public Optimizer {
 public:
  explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999, double eps = 1e-8);
  void step() override;

 private:
  void on_bind() override;
  double beta1_, beta2_, eps_;
  long t_ = 0;
  std::vector<std::vector<float>> m_, v_;
};

}  // namespace netcut::nn
