#include "nn/pooling.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "tensor/im2col.hpp"

namespace netcut::nn {

Pool2D::Pool2D(Mode mode, int kernel, int stride, int pad)
    : mode_(mode),
      kernel_(kernel),
      stride_(stride),
      pad_(pad < 0 ? tensor::same_pad(kernel) : pad) {
  if (kernel <= 0 || stride <= 0) throw std::invalid_argument("Pool2D: invalid hyperparameters");
}

Shape Pool2D::output_shape(const std::vector<Shape>& in) const {
  require_arity(in, 1, "Pool2D");
  if (in[0].rank() != 3) throw std::invalid_argument("Pool2D: expected CHW input");
  const int oh = std::max(1, (in[0][1] + 2 * pad_ - kernel_) / stride_ + 1);
  const int ow = std::max(1, (in[0][2] + 2 * pad_ - kernel_) / stride_ + 1);
  return Shape::chw(in[0][0], oh, ow);
}

Tensor Pool2D::forward(const std::vector<const Tensor*>& in, bool train) {
  require_arity(in, 1, "Pool2D");
  Tensor y(output_shape({in[0]->shape()}));
  forward_into(in, y, train, nullptr);
  return y;
}

void Pool2D::forward_into(const std::vector<const Tensor*>& in, Tensor& out, bool train,
                          float* /*scratch*/) {
  require_arity(in, 1, "Pool2D");
  const Tensor& x = *in[0];
  const int C = x.shape()[0], ih = x.shape()[1], iw = x.shape()[2];
  const int oh = out.shape()[1], ow = out.shape()[2];

  Tensor& y = out;
  if (train && mode_ == Mode::kMax)
    cached_argmax_.assign(static_cast<std::size_t>(out.numel()), -1);

  for (int c = 0; c < C; ++c) {
    const float* chan = x.data() + static_cast<std::int64_t>(c) * ih * iw;
    float* dst = y.data() + static_cast<std::int64_t>(c) * oh * ow;
    for (int yo = 0; yo < oh; ++yo) {
      const int y0 = std::max(0, yo * stride_ - pad_);
      const int y1 = std::min(ih, yo * stride_ - pad_ + kernel_);
      for (int xo = 0; xo < ow; ++xo) {
        const int x0 = std::max(0, xo * stride_ - pad_);
        const int x1 = std::min(iw, xo * stride_ - pad_ + kernel_);
        if (mode_ == Mode::kMax) {
          float best = -std::numeric_limits<float>::infinity();
          int best_idx = -1;
          for (int yy = y0; yy < y1; ++yy)
            for (int xx = x0; xx < x1; ++xx) {
              const float v = chan[yy * iw + xx];
              if (v > best) {
                best = v;
                best_idx = yy * iw + xx;
              }
            }
          dst[yo * ow + xo] = best_idx >= 0 ? best : 0.0f;
          if (train)
            cached_argmax_[static_cast<std::size_t>(
                (static_cast<std::int64_t>(c) * oh + yo) * ow + xo)] = best_idx;
        } else {
          float s = 0.0f;
          int count = 0;
          for (int yy = y0; yy < y1; ++yy)
            for (int xx = x0; xx < x1; ++xx) {
              s += chan[yy * iw + xx];
              ++count;
            }
          dst[yo * ow + xo] = count > 0 ? s / static_cast<float>(count) : 0.0f;
        }
      }
    }
  }
  if (train) cached_in_shape_ = x.shape();
}

std::vector<Tensor> Pool2D::backward(const Tensor& grad_out) {
  if (cached_in_shape_.rank() != 3)
    throw std::logic_error("Pool2D::backward without train forward");
  const int C = cached_in_shape_[0], ih = cached_in_shape_[1], iw = cached_in_shape_[2];
  const int oh = grad_out.shape()[1], ow = grad_out.shape()[2];
  Tensor dx(cached_in_shape_);

  for (int c = 0; c < C; ++c) {
    const float* dy = grad_out.data() + static_cast<std::int64_t>(c) * oh * ow;
    float* dst = dx.data() + static_cast<std::int64_t>(c) * ih * iw;
    for (int yo = 0; yo < oh; ++yo) {
      const int y0 = std::max(0, yo * stride_ - pad_);
      const int y1 = std::min(ih, yo * stride_ - pad_ + kernel_);
      for (int xo = 0; xo < ow; ++xo) {
        const float g = dy[yo * ow + xo];
        if (mode_ == Mode::kMax) {
          const int idx = cached_argmax_[static_cast<std::size_t>(
              (static_cast<std::int64_t>(c) * oh + yo) * ow + xo)];
          if (idx >= 0) dst[idx] += g;
        } else {
          const int x0 = std::max(0, xo * stride_ - pad_);
          const int x1 = std::min(iw, xo * stride_ - pad_ + kernel_);
          const int count = (y1 - y0) * (x1 - x0);
          if (count <= 0) continue;
          const float share = g / static_cast<float>(count);
          for (int yy = y0; yy < y1; ++yy)
            for (int xx = x0; xx < x1; ++xx) dst[yy * iw + xx] += share;
        }
      }
    }
  }
  std::vector<Tensor> grads_in;
  grads_in.push_back(std::move(dx));
  return grads_in;
}

LayerCost Pool2D::cost(const std::vector<Shape>& in) const {
  const Shape out = output_shape(in);
  LayerCost c;
  c.flops = static_cast<std::int64_t>(kernel_) * kernel_ * out.numel();
  c.input_elems = in[0].numel();
  c.output_elems = out.numel();
  c.kernel = kernel_;
  return c;
}

Shape GlobalAvgPool::output_shape(const std::vector<Shape>& in) const {
  require_arity(in, 1, "GlobalAvgPool");
  if (in[0].rank() != 3) throw std::invalid_argument("GlobalAvgPool: expected CHW input");
  return Shape::vec(in[0][0]);
}

Tensor GlobalAvgPool::forward(const std::vector<const Tensor*>& in, bool train) {
  require_arity(in, 1, "GlobalAvgPool");
  Tensor y(Shape::vec(in[0]->shape()[0]));
  forward_into(in, y, train, nullptr);
  return y;
}

void GlobalAvgPool::forward_into(const std::vector<const Tensor*>& in, Tensor& out, bool train,
                                 float* /*scratch*/) {
  require_arity(in, 1, "GlobalAvgPool");
  const Tensor& x = *in[0];
  const int C = x.shape()[0];
  const int hw = x.shape()[1] * x.shape()[2];
  for (int c = 0; c < C; ++c) {
    const float* chan = x.data() + static_cast<std::int64_t>(c) * hw;
    double s = 0.0;
    for (int i = 0; i < hw; ++i) s += chan[i];
    out[c] = static_cast<float>(s / hw);
  }
  if (train) cached_in_shape_ = x.shape();
}

std::vector<Tensor> GlobalAvgPool::backward(const Tensor& grad_out) {
  if (cached_in_shape_.rank() != 3)
    throw std::logic_error("GlobalAvgPool::backward without train forward");
  const int C = cached_in_shape_[0];
  const int hw = cached_in_shape_[1] * cached_in_shape_[2];
  Tensor dx(cached_in_shape_);
  for (int c = 0; c < C; ++c) {
    const float share = grad_out[c] / static_cast<float>(hw);
    float* dst = dx.data() + static_cast<std::int64_t>(c) * hw;
    for (int i = 0; i < hw; ++i) dst[i] = share;
  }
  std::vector<Tensor> grads_in;
  grads_in.push_back(std::move(dx));
  return grads_in;
}

LayerCost GlobalAvgPool::cost(const std::vector<Shape>& in) const {
  LayerCost c;
  c.flops = in[0].numel();
  c.input_elems = in[0].numel();
  c.output_elems = in[0][0];
  return c;
}

}  // namespace netcut::nn
