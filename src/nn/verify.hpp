// nn::verify — static analysis over the Graph IR and its memory plans.
//
// NetCut mutates pretrained graphs programmatically (trunk cutting, head
// grafting, Conv+BN folding, deserialization), and PR 2 added a greedy
// activation-memory planner. Silent IR corruption — a dangling edge after a
// remap, an aliased arena slot, a cut inside a residual block — executes
// "successfully" and produces wrong numbers. This pass is the wall between
// every graph transform and execution: O(nodes·edges), no forward
// execution, re-deriving every invariant with an implementation independent
// of the code it checks.
//
// Three analyzer families:
//   * structural lint   (verify_graph)    — dangling/unreachable nodes,
//     cycles, topological-order violations, arity mismatches, duplicate
//     edges, per-layer shape re-derivation cross-checked against the
//     Graph's cached infer_shapes(), block contiguity, block cut sites
//     that do not dominate the output;
//   * memory-plan alias proof (verify_plan) — live intervals re-derived
//     from the graph (def -> last consumer, collect/output/train pinning)
//     and checked interval-vs-offset against every slot the planner
//     emitted, so the greedy best-fit assignment is proven non-aliasing by
//     a second implementation rather than trusted;
//   * numerics guard (scan_activation / verify_params + VerifyMode::
//     kRuntime) — fresh arena slots are poisoned with a signaling-NaN
//     pattern and layer outputs are scanned for poison survivors
//     (use-before-write), NaN/Inf (exploding activations), and denormal
//     storms.
//
// Analyzers return structured Finding diagnostics instead of throwing
// mid-way, so one verify call reports every defect at once. The check_*
// wrappers are the auto-invoked hooks: they no-op when verification is off
// (NETCUT_VERIFY=0) and throw a VerifyError listing all findings when any
// error-severity finding survives.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "nn/graph.hpp"
#include "nn/memory_plan.hpp"

namespace netcut::nn {

enum class Severity { kWarning, kError };

const char* to_string(Severity severity);

/// One diagnostic. `rule` is a stable machine-matchable id from nn::rules.
struct Finding {
  Severity severity = Severity::kError;
  int node = -1;  // offending node id; -1 for graph-global findings
  std::string rule;
  std::string message;
};

struct VerifyReport {
  std::vector<Finding> findings;

  /// True when no error-severity finding is present (warnings allowed).
  bool ok() const;
  /// Number of error-severity findings.
  int errors() const;
  bool has(const std::string& rule) const;
  std::string to_string() const;
  void add(Severity severity, int node, const char* rule, std::string message);
};

// Stable rule ids. Tests and downstream tooling match on these strings;
// renaming one is a breaking change.
namespace rules {
inline constexpr const char* kInputNode = "graph.input-node";
inline constexpr const char* kDanglingEdge = "graph.dangling-edge";
inline constexpr const char* kTopoOrder = "graph.topo-order";
inline constexpr const char* kCycle = "graph.cycle";
inline constexpr const char* kArity = "graph.arity";
inline constexpr const char* kDuplicateEdge = "graph.duplicate-edge";
inline constexpr const char* kShape = "graph.shape";
inline constexpr const char* kShapeCache = "graph.shape-cache";
inline constexpr const char* kUnreachable = "graph.unreachable";
inline constexpr const char* kBlock = "graph.block";
inline constexpr const char* kCutSite = "trn.cut-site";
inline constexpr const char* kPlanStructure = "plan.structure";
inline constexpr const char* kPlanShape = "plan.shape";
inline constexpr const char* kPlanInterval = "plan.interval";
inline constexpr const char* kPlanSlotSize = "plan.slot-size";
inline constexpr const char* kPlanCapacity = "plan.capacity";
inline constexpr const char* kPlanAlias = "plan.alias";
inline constexpr const char* kUseBeforeWrite = "numerics.use-before-write";
inline constexpr const char* kNonFinite = "numerics.non-finite";
inline constexpr const char* kDenormal = "numerics.denormal-storm";
inline constexpr const char* kParamNonFinite = "numerics.param-non-finite";
}  // namespace rules

// ---- Analyzer family 1: structural lint --------------------------------

/// Full structural lint of a graph. Never throws on IR defects; every
/// violated invariant becomes a Finding.
VerifyReport verify_graph(const Graph& graph);

/// Is `cut_node` a legal TRN cut site of `trunk`? Legal means: a real,
/// non-input node that dominates the trunk output — cutting anywhere else
/// (inside a residual or Inception block) severs an Add/Concat operand.
VerifyReport verify_cut_site(const Graph& trunk, int cut_node);

// ---- Analyzer family 2: memory-plan alias proof ------------------------

/// One planned arena slot as seen by the independent checker.
struct SlotView {
  int node = -1;
  bool is_scratch = false;
  std::size_t offset = 0;
  std::size_t floats = 0;  // reserved extent checked for aliasing
  int def = 0;             // live interval, inclusive
  int last = 0;
};

/// Core alias proof over raw slots: every pair of slots whose live
/// intervals intersect must occupy disjoint [offset, offset+floats)
/// ranges, and every slot must fit in `capacity`. Exposed separately so
/// tests can seed deliberately-aliased plans.
void check_slots(const std::vector<SlotView>& slots, std::size_t capacity,
                 VerifyReport& report);

/// Independent re-derivation of activation live intervals (def -> last
/// consumer, collect/output/train pinning, per-node scratch) checked
/// against every slot `plan` emitted for `graph`.
VerifyReport verify_plan(const Graph& graph, const MemoryPlan& plan);

// ---- Analyzer family 3: numerics guard ---------------------------------

/// Scan one layer output for poison survivors (use-before-write), NaN/Inf,
/// and denormal storms; findings are appended to `report`.
void scan_activation(const Tensor& t, int node, const std::string& name,
                     VerifyReport& report);

/// Scan every layer's persistent state (weights, BN running statistics)
/// for non-finite values — the deserialization numerics check.
VerifyReport verify_params(const Graph& graph);

// ---- Mode plumbing and auto-invoked hooks ------------------------------

/// kOff: all check_* hooks no-op. kStatic (default): graph/plan/cut-site
/// checks run after every construction and mutation. kRuntime: kStatic
/// plus the per-forward poison-and-scan numerics guard.
/// Initialized from NETCUT_VERIFY: "0" selects kOff, "2" or "runtime"
/// selects kRuntime, anything else (or unset) selects kStatic.
enum class VerifyMode { kOff, kStatic, kRuntime };

VerifyMode verify_mode();
void set_verify_mode(VerifyMode mode);
/// True when the per-forward numerics guard should run.
bool runtime_verify_enabled();

/// Thrown by the check_* hooks. Derives std::invalid_argument so callers
/// that predate the verifier keep catching construction errors.
class VerifyError : public std::invalid_argument {
 public:
  VerifyError(std::string context, VerifyReport report);
  const VerifyReport& report() const { return report_; }
  const std::string& context() const { return context_; }

 private:
  std::string context_;
  VerifyReport report_;
};

/// Throw VerifyError if `report` carries error-severity findings.
void enforce(const VerifyReport& report, const std::string& context);

// Auto-invoked hooks: no-op when verify_mode() == kOff, otherwise run the
// analyzer and enforce the result.
void check_graph(const Graph& graph, const char* context);
void check_plan(const Graph& graph, const MemoryPlan& plan, const char* context);
void check_cut_site(const Graph& trunk, int cut_node, const char* context);
void check_params(const Graph& graph, const char* context);

}  // namespace netcut::nn
