#include "nn/norm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace netcut::nn {

BatchNorm::BatchNorm(int channels, float eps)
    : channels_(channels),
      eps_(eps),
      gamma_(Shape{channels}, 1.0f),
      beta_(Shape{channels}),
      running_mean_(Shape{channels}),
      running_var_(Shape{channels}, 1.0f),
      grad_gamma_(Shape{channels}),
      grad_beta_(Shape{channels}) {
  if (channels <= 0) throw std::invalid_argument("BatchNorm: invalid channel count");
}

Shape BatchNorm::output_shape(const std::vector<Shape>& in) const {
  require_arity(in, 1, "BatchNorm");
  if (in[0].rank() != 3 || in[0][0] != channels_)
    throw std::invalid_argument("BatchNorm: input shape mismatch");
  return in[0];
}

Tensor BatchNorm::forward(const std::vector<const Tensor*>& in, bool train) {
  require_arity(in, 1, "BatchNorm");
  Tensor y(in[0]->shape());
  forward_into(in, y, train, nullptr);
  return y;
}

void BatchNorm::forward_into(const std::vector<const Tensor*>& in, Tensor& out, bool train,
                             float* /*scratch*/) {
  require_arity(in, 1, "BatchNorm");
  const Tensor& x = *in[0];
  const int hw = x.shape()[1] * x.shape()[2];
  Tensor& y = out;

  if (collecting_) {
    // Accumulate running statistics AND normalize with the aggregate stats
    // collected so far (including this image), so deep stacks stay
    // well-conditioned throughout calibration. Normalizing each image by
    // its *own* spatial stats would annihilate per-image information once
    // the spatial grid collapses toward 1x1 at depth.
    stat_count_ += hw;
    for (int c = 0; c < channels_; ++c) {
      const float* src = x.data() + static_cast<std::int64_t>(c) * hw;
      double s = 0.0, s2 = 0.0;
      for (int i = 0; i < hw; ++i) {
        s += src[i];
        s2 += static_cast<double>(src[i]) * src[i];
      }
      stat_sum_[c] += static_cast<float>(s);
      stat_sumsq_[c] += static_cast<float>(s2);
      const double n = static_cast<double>(stat_count_);
      const float m = static_cast<float>(stat_sum_[c] / n);
      const float var =
          static_cast<float>(std::max(stat_sumsq_[c] / n - static_cast<double>(m) * m, 1e-8));
      const float inv_std = 1.0f / std::sqrt(var + eps_);
      float* dst = y.data() + static_cast<std::int64_t>(c) * hw;
      for (int i = 0; i < hw; ++i) dst[i] = gamma_[c] * (src[i] - m) * inv_std + beta_[c];
    }
    return;
  }

  if (!train) {
    for (int c = 0; c < channels_; ++c) {
      const float inv_std = 1.0f / std::sqrt(running_var_[c] + eps_);
      const float scale = gamma_[c] * inv_std;
      const float shift = beta_[c] - running_mean_[c] * scale;
      const float* src = x.data() + static_cast<std::int64_t>(c) * hw;
      float* dst = y.data() + static_cast<std::int64_t>(c) * hw;
      for (int i = 0; i < hw; ++i) dst[i] = src[i] * scale + shift;
    }
    return;
  }

  if (freeze_stats_) {
    // Frozen-statistics training: normalize with the running stats, cache
    // xhat for the parameter gradients; backward treats stats as constants.
    cached_frozen_ = true;
    cached_xhat_ = Tensor(x.shape());
    cached_inv_std_ = Tensor(Shape{channels_});
    for (int c = 0; c < channels_; ++c) {
      const float inv_std = 1.0f / std::sqrt(running_var_[c] + eps_);
      cached_inv_std_[c] = inv_std;
      const float* src = x.data() + static_cast<std::int64_t>(c) * hw;
      float* xh = cached_xhat_.data() + static_cast<std::int64_t>(c) * hw;
      float* dst = y.data() + static_cast<std::int64_t>(c) * hw;
      for (int i = 0; i < hw; ++i) {
        xh[i] = (src[i] - running_mean_[c]) * inv_std;
        dst[i] = gamma_[c] * xh[i] + beta_[c];
      }
    }
    return;
  }

  // Train mode: single-image spatial statistics.
  cached_frozen_ = false;
  cached_xhat_ = Tensor(x.shape());
  cached_inv_std_ = Tensor(Shape{channels_});
  for (int c = 0; c < channels_; ++c) {
    const float* src = x.data() + static_cast<std::int64_t>(c) * hw;
    double s = 0.0;
    for (int i = 0; i < hw; ++i) s += src[i];
    const float m = static_cast<float>(s / hw);
    double v = 0.0;
    for (int i = 0; i < hw; ++i) v += static_cast<double>(src[i] - m) * (src[i] - m);
    const float var = static_cast<float>(v / hw);
    const float inv_std = 1.0f / std::sqrt(var + eps_);
    cached_inv_std_[c] = inv_std;
    float* xh = cached_xhat_.data() + static_cast<std::int64_t>(c) * hw;
    float* dst = y.data() + static_cast<std::int64_t>(c) * hw;
    for (int i = 0; i < hw; ++i) {
      xh[i] = (src[i] - m) * inv_std;
      dst[i] = gamma_[c] * xh[i] + beta_[c];
    }
  }
}

std::vector<Tensor> BatchNorm::backward(const Tensor& grad_out) {
  if (cached_xhat_.empty()) throw std::logic_error("BatchNorm::backward without train forward");
  const int hw = grad_out.shape()[1] * grad_out.shape()[2];
  Tensor dx(grad_out.shape());

  if (cached_frozen_) {
    for (int c = 0; c < channels_; ++c) {
      const float* dy = grad_out.data() + static_cast<std::int64_t>(c) * hw;
      const float* xh = cached_xhat_.data() + static_cast<std::int64_t>(c) * hw;
      float* dst = dx.data() + static_cast<std::int64_t>(c) * hw;
      const float k = gamma_[c] * cached_inv_std_[c];
      float sum_dy = 0.0f, sum_dy_xh = 0.0f;
      for (int i = 0; i < hw; ++i) {
        sum_dy += dy[i];
        sum_dy_xh += dy[i] * xh[i];
        dst[i] = k * dy[i];
      }
      grad_beta_[c] += sum_dy;
      grad_gamma_[c] += sum_dy_xh;
    }
    std::vector<Tensor> grads_in;
    grads_in.push_back(std::move(dx));
    return grads_in;
  }

  const float n = static_cast<float>(hw);
  for (int c = 0; c < channels_; ++c) {
    const float* dy = grad_out.data() + static_cast<std::int64_t>(c) * hw;
    const float* xh = cached_xhat_.data() + static_cast<std::int64_t>(c) * hw;
    float* dst = dx.data() + static_cast<std::int64_t>(c) * hw;
    float sum_dy = 0.0f, sum_dy_xh = 0.0f;
    for (int i = 0; i < hw; ++i) {
      sum_dy += dy[i];
      sum_dy_xh += dy[i] * xh[i];
    }
    grad_beta_[c] += sum_dy;
    grad_gamma_[c] += sum_dy_xh;
    const float k = gamma_[c] * cached_inv_std_[c];
    for (int i = 0; i < hw; ++i)
      dst[i] = k * (dy[i] - sum_dy / n - xh[i] * sum_dy_xh / n);
  }
  std::vector<Tensor> grads_in;
  grads_in.push_back(std::move(dx));
  return grads_in;
}

LayerCost BatchNorm::cost(const std::vector<Shape>& in) const {
  output_shape(in);
  LayerCost c;
  c.flops = 2LL * in[0].numel();  // fused scale+shift per element
  c.params = 2LL * channels_;
  c.input_elems = in[0].numel();
  c.output_elems = in[0].numel();
  c.kernel = 0;
  return c;
}

void BatchNorm::begin_stat_collection() {
  collecting_ = true;
  stat_sum_ = Tensor(Shape{channels_});
  stat_sumsq_ = Tensor(Shape{channels_});
  stat_count_ = 0;
}

void BatchNorm::end_stat_collection() {
  if (!collecting_) throw std::logic_error("BatchNorm: end_stat_collection without begin");
  collecting_ = false;
  if (stat_count_ == 0) return;  // saw no data: keep previous stats
  const double n = static_cast<double>(stat_count_);
  for (int c = 0; c < channels_; ++c) {
    const double m = stat_sum_[c] / n;
    const double v = stat_sumsq_[c] / n - m * m;
    running_mean_[c] = static_cast<float>(m);
    running_var_[c] = static_cast<float>(v > 1e-8 ? v : 1e-8);
  }
}

}  // namespace netcut::nn
