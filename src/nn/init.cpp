#include "nn/init.hpp"

#include <cmath>

#include "nn/conv.hpp"
#include "nn/dense.hpp"
#include "nn/norm.hpp"

namespace netcut::nn {

void he_init_conv(Tensor& weight, util::Rng& rng) {
  const Shape& s = weight.shape();
  const double fan_in = static_cast<double>(s[1]) * s[2] * s[3];
  const double stdev = std::sqrt(2.0 / fan_in);
  for (std::int64_t i = 0; i < weight.numel(); ++i)
    weight[i] = static_cast<float>(rng.normal(0.0, stdev));
}

void xavier_init_dense(Tensor& weight, util::Rng& rng) {
  const Shape& s = weight.shape();
  const double bound = std::sqrt(6.0 / (static_cast<double>(s[0]) + s[1]));
  for (std::int64_t i = 0; i < weight.numel(); ++i)
    weight[i] = static_cast<float>(rng.uniform(-bound, bound));
}

void init_graph(Graph& graph, util::Rng& rng) {
  for (int id = 1; id < graph.node_count(); ++id) {
    Layer& layer = *graph.node(id).layer;
    switch (layer.kind()) {
      case LayerKind::kConv2D: {
        auto& conv = static_cast<Conv2D&>(layer);
        he_init_conv(conv.weight(), rng);
        if (conv.has_bias()) conv.bias().fill(0.0f);
        break;
      }
      case LayerKind::kDepthwiseConv2D: {
        auto& conv = static_cast<DepthwiseConv2D&>(layer);
        he_init_conv(conv.weight(), rng);
        if (conv.has_bias()) conv.bias().fill(0.0f);
        break;
      }
      case LayerKind::kDense: {
        auto& dense = static_cast<Dense&>(layer);
        xavier_init_dense(dense.weight(), rng);
        if (dense.has_bias()) dense.bias().fill(0.0f);
        break;
      }
      case LayerKind::kBatchNorm: {
        auto& bn = static_cast<BatchNorm&>(layer);
        bn.gamma().fill(1.0f);
        bn.beta().fill(0.0f);
        bn.running_mean().fill(0.0f);
        bn.running_var().fill(1.0f);
        break;
      }
      default:
        break;
    }
  }
}

}  // namespace netcut::nn
