#include "nn/memory_plan.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "nn/verify.hpp"

namespace netcut::nn {

namespace {

// Slots are aligned to 64 bytes so every arena view starts on a cache-line
// (and vector-ISA) boundary, matching the arena base alignment.
constexpr std::size_t kAlignFloats = 16;

std::size_t align_up(std::size_t floats) {
  return (floats + kAlignFloats - 1) / kAlignFloats * kAlignFloats;
}

struct Placed {
  std::size_t offset, floats;  // floats is the aligned reservation
  int def, last;               // live interval, inclusive
};

/// Greedy best-fit: choose the smallest gap between already-placed slots
/// whose live intervals overlap [def, last] that still fits `floats`;
/// append past them when no gap fits. Deterministic given placement order.
std::size_t place(std::vector<Placed>& placed, std::size_t floats, int def, int last) {
  std::vector<std::pair<std::size_t, std::size_t>> busy;  // [offset, end)
  for (const Placed& p : placed)
    if (p.def <= last && def <= p.last) busy.emplace_back(p.offset, p.offset + p.floats);
  std::sort(busy.begin(), busy.end());

  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
  std::size_t best = kNone, best_gap = kNone, cursor = 0;
  for (const auto& [b, e] : busy) {
    if (b > cursor) {
      const std::size_t gap = b - cursor;
      if (gap >= floats && gap < best_gap) {
        best = cursor;
        best_gap = gap;
      }
    }
    cursor = std::max(cursor, e);
  }
  const std::size_t offset = best != kNone ? best : cursor;
  placed.push_back({offset, floats, def, last});
  return offset;
}

std::size_t high_water(const std::vector<Placed>& placed) {
  std::size_t peak = 0;
  for (const Placed& p : placed) peak = std::max(peak, p.offset + p.floats);
  return peak;
}

}  // namespace

MemoryPlan::MemoryPlan(const Graph& graph, const std::vector<Shape>& shapes,
                       const std::vector<int>& collect, bool train, int batch, int resume)
    : shapes_(shapes), collect_(collect), train_(train), batch_(batch), resume_(resume) {
  const int n = graph.node_count();
  if (static_cast<int>(shapes.size()) != n)
    throw std::invalid_argument("MemoryPlan: shape count does not match graph");
  if (n < 1) throw std::invalid_argument("MemoryPlan: empty graph");
  if (batch < 1) throw std::invalid_argument("MemoryPlan: batch must be >= 1");
  if (batch > 1 && train)
    throw std::invalid_argument("MemoryPlan: batched plans are inference-only");
  if (resume < 0 || resume >= n - 1)
    throw std::invalid_argument("MemoryPlan: resume node out of range");
  if (resume > 0) {
    if (train) throw std::invalid_argument("MemoryPlan: resume plans are inference-only");
    // The resumed suffix may only read the seed node or nodes after it;
    // an edge reaching behind the seed means `resume` does not dominate
    // the output and the prefix activations it skipped would be needed.
    for (int id = resume + 1; id < n; ++id)
      for (int src : graph.node(id).inputs)
        if (src < resume)
          throw std::invalid_argument("MemoryPlan: edge severed by resume node");
    for (int id : collect)
      if (id < resume)
        throw std::invalid_argument("MemoryPlan: collect id precedes resume node");
  }

  // Live intervals: definition to last consumer. The output node, collected
  // nodes, and (train) every node are pinned to the end of the pass —
  // collected activations are read back after execution, and train-mode
  // passes retain everything for the backward DAG walk.
  const int end = n - 1;
  last_use_.resize(static_cast<std::size_t>(n));
  for (int id = 0; id < n; ++id) last_use_[static_cast<std::size_t>(id)] = id;
  for (int id = 1; id < n; ++id)
    for (int src : graph.node(id).inputs)
      last_use_[static_cast<std::size_t>(src)] =
          std::max(last_use_[static_cast<std::size_t>(src)], id);
  for (int id : collect) {
    if (id < 0 || id >= n) throw std::out_of_range("MemoryPlan: collect id out of range");
    last_use_[static_cast<std::size_t>(id)] = end;
  }
  last_use_[static_cast<std::size_t>(end)] = end;
  if (train)
    for (int& l : last_use_) l = end;

  // Activations first (their packing defines the reported activation peak),
  // in definition order; scratch slots fill remaining gaps afterwards.
  // Nodes at or before the resume seed are not executed and own no slot
  // (node `resume` views the caller's seed activation, like node 0 views
  // the input on a full pass).
  activations_.assign(static_cast<std::size_t>(n), PlanSlot{});
  scratch_.assign(static_cast<std::size_t>(n), PlanSlot{});
  std::vector<Placed> placed;
  placed.reserve(static_cast<std::size_t>(n));
  for (int id = resume + 1; id < n; ++id) {
    const std::size_t floats = static_cast<std::size_t>(shapes[static_cast<std::size_t>(id)].numel());
    naive_activation_floats_ += floats;
    PlanSlot& slot = activations_[static_cast<std::size_t>(id)];
    slot.floats = floats;
    slot.offset = place(placed, align_up(floats), id, last_use_[static_cast<std::size_t>(id)]);
  }
  planned_activation_floats_ = high_water(placed);

  // Per-node forward scratch lives only while its node executes.
  for (int id = resume + 1; id < n; ++id) {
    const Node& nd = graph.node(id);
    std::vector<Shape> in;
    in.reserve(nd.inputs.size());
    for (int src : nd.inputs) in.push_back(shapes[static_cast<std::size_t>(src)]);
    const std::size_t floats = nd.layer->forward_scratch_floats(in);
    if (floats == 0) continue;
    PlanSlot& slot = scratch_[static_cast<std::size_t>(id)];
    slot.floats = floats;
    slot.offset = place(placed, align_up(floats), id, id);
  }
  // The one-lane high-water mark is already kAlignFloats-aligned (every slot
  // starts and ends on an aligned boundary), so using it directly as the
  // lane stride keeps every lane's views cache-line aligned.
  lane_stride_ = high_water(placed);

  // Every plan the greedy assignment emits is proven non-aliasing by the
  // verifier's independent interval re-derivation before it can be used
  // (no-op under NETCUT_VERIFY=0).
  check_plan(graph, *this, "MemoryPlan");
}

bool MemoryPlan::matches(int node_count, const std::vector<int>& collect, bool train,
                         int batch, int resume) const {
  return node_count == this->node_count() && train == train_ && batch == batch_ &&
         resume == resume_ && collect == collect_;
}

}  // namespace netcut::nn
