#include "nn/network.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "nn/verify.hpp"
#include "util/thread_pool.hpp"

namespace netcut::nn {

namespace {
bool planning_env_default() {
  const char* e = std::getenv("NETCUT_MEMPLAN");
  return e == nullptr || !(e[0] == '0' && e[1] == '\0');
}
bool g_default_planning = planning_env_default();
}  // namespace

bool default_memory_planning() { return g_default_planning; }
void set_default_memory_planning(bool on) { g_default_planning = on; }

Network::Network(Graph graph) : graph_(std::move(graph)) {
  graph_.infer_shapes();           // validate eagerly (and populate the cache)
  check_graph(graph_, "Network");  // structural lint; no-op when NETCUT_VERIFY=0
}

Network::Network(const Network& other)
    : graph_(other.graph_),
      activations_(other.activations_),
      have_activations_(other.have_activations_),
      planning_(other.planning_),
      plans_(other.plans_) {}

Network& Network::operator=(const Network& other) {
  if (this == &other) return *this;
  graph_ = other.graph_;
  activations_ = other.activations_;
  have_activations_ = other.have_activations_;
  planning_ = other.planning_;
  plans_ = other.plans_;
  arena_ = tensor::Arena();
  return *this;
}

Tensor Network::forward(const Tensor& input, bool train) {
  return forward_collect(input, {}, train)[0];
}

const MemoryPlan& Network::plan_for(const std::vector<int>& collect, bool train, int batch,
                                    int resume) {
  const int n = graph_.node_count();
  for (std::size_t i = 0; i < plans_.size(); ++i) {
    // The batch size and resume node are part of the cache key: a batch-M
    // pass on a batch-N plan would bind lanes past the planned arena (or
    // waste N-M lanes), and a resume-R plan has no slots before node R.
    if (plans_[i].matches(n, collect, train, batch, resume)) {
      if (i != 0) std::rotate(plans_.begin(), plans_.begin() + static_cast<std::ptrdiff_t>(i),
                              plans_.begin() + static_cast<std::ptrdiff_t>(i) + 1);
      return plans_.front();
    }
  }
  plans_.insert(plans_.begin(),
                MemoryPlan(graph_, graph_.infer_shapes(), collect, train, batch, resume));
  // {collect?} x {train?} plus a few live batch sizes in practice.
  constexpr std::size_t kMaxCachedPlans = 6;
  if (plans_.size() > kMaxCachedPlans) plans_.pop_back();
  return plans_.front();
}

std::vector<Tensor> Network::forward_collect_planned(const Tensor& input,
                                                     const std::vector<int>& collect,
                                                     bool train) {
  const int n = graph_.node_count();
  const MemoryPlan& plan = plan_for(collect, train);
  arena_.reserve(plan.arena_floats());

  // Runtime numerics guard: poison the planned region so a layer that
  // reads or keeps memory it never wrote produces a recognizable pattern,
  // then scan every output as it is produced.
  const bool guard = runtime_verify_enabled();
  VerifyReport guard_report;
  if (guard) arena_.poison(0, plan.arena_floats());

  activations_.assign(static_cast<std::size_t>(n), Tensor());
  // Node 0 is the Input placeholder: read-only, so it views the caller's
  // buffer directly instead of copying it into the arena.
  activations_[0] = Tensor::view(input.shape(), const_cast<float*>(input.data()));
  for (int id = 1; id < n; ++id) {
    Node& nd = graph_.node(id);
    std::vector<const Tensor*> in;
    in.reserve(nd.inputs.size());
    for (int src : nd.inputs) {
      const Tensor& t = activations_[static_cast<std::size_t>(src)];
      if (t.empty()) throw std::logic_error("Network::forward: missing activation");
      in.push_back(&t);
    }
    Tensor out = Tensor::view(plan.shape(id), arena_.slot(plan.activation(id).offset));
    float* scratch =
        plan.scratch(id).floats != 0 ? arena_.slot(plan.scratch(id).offset) : nullptr;
    nd.layer->forward_into(in, out, train, scratch);
    if (guard) scan_activation(out, id, nd.name, guard_report);
    activations_[static_cast<std::size_t>(id)] = std::move(out);
    if (!train && id != n - 1) {
      // Inference: a source whose last consumer just ran is dead — its arena
      // bytes may be reused by a later node, so drop the view now. Pinned
      // nodes (collected / output) have last_use == n-1 and are never
      // dropped; nothing runs after the final node, so skipping the sweep
      // there keeps naturally-late activations distinguishable from them.
      for (int src : nd.inputs)
        if (src != 0 && plan.last_use(src) == id)
          activations_[static_cast<std::size_t>(src)] = Tensor();
    }
  }
  have_activations_ = true;
  if (guard) enforce(guard_report, "Network::forward (runtime numerics guard)");

  // push_back copies the views, which materializes owning tensors — the
  // returned activations are independent of the arena.
  std::vector<Tensor> out;
  out.reserve(collect.size() + 1);
  if (collect.empty()) {
    out.push_back(activations_[static_cast<std::size_t>(graph_.output_node())]);
  } else {
    for (int id : collect) {
      if (id < 0 || id >= n) throw std::out_of_range("Network::forward_collect: bad node id");
      out.push_back(activations_[static_cast<std::size_t>(id)]);
    }
  }
  return out;
}

std::vector<Tensor> Network::forward_batch(const std::vector<const Tensor*>& inputs) {
  const int batch = static_cast<int>(inputs.size());
  std::vector<Tensor> outputs(inputs.size());
  if (batch == 0) return outputs;
  for (const Tensor* in : inputs) {
    if (in == nullptr) throw std::invalid_argument("Network::forward_batch: null input");
    if (in->shape() != inputs[0]->shape())
      throw std::invalid_argument("Network::forward_batch: inputs must share one shape");
  }
  if (!planning_) {
    for (std::size_t i = 0; i < inputs.size(); ++i) outputs[i] = forward(*inputs[i], false);
    return outputs;
  }

  const int n = graph_.node_count();
  const int out_node = graph_.output_node();
  const MemoryPlan& plan = plan_for({}, /*train=*/false, batch);
  arena_.reserve(plan.arena_floats());

  const bool guard = runtime_verify_enabled();
  std::vector<VerifyReport> lane_reports(guard ? inputs.size() : 0);
  if (guard) arena_.poison(0, plan.arena_floats());

  // Lanes bind views into disjoint arena regions and write disjoint output
  // slots; every layer's inference forward_into is free of member writes
  // once its scratch is planned, so lanes run concurrently. Kernels are
  // deterministic at any thread count, making the pass bitwise identical to
  // `batch` independent single-image forwards however the pool is sized.
  util::parallel_for(0, batch, 1, [&](std::int64_t lb, std::int64_t le) {
    for (std::int64_t lane = lb; lane < le; ++lane) {
      const std::size_t base = static_cast<std::size_t>(lane) * plan.lane_stride();
      const Tensor& input = *inputs[static_cast<std::size_t>(lane)];
      std::vector<Tensor> acts(static_cast<std::size_t>(n));
      acts[0] = Tensor::view(input.shape(), const_cast<float*>(input.data()));
      for (int id = 1; id < n; ++id) {
        Node& nd = graph_.node(id);
        std::vector<const Tensor*> in;
        in.reserve(nd.inputs.size());
        for (int src : nd.inputs) {
          const Tensor& t = acts[static_cast<std::size_t>(src)];
          if (t.empty()) throw std::logic_error("Network::forward_batch: missing activation");
          in.push_back(&t);
        }
        Tensor out =
            Tensor::view(plan.shape(id), arena_.slot(base + plan.activation(id).offset));
        float* scratch = plan.scratch(id).floats != 0
                             ? arena_.slot(base + plan.scratch(id).offset)
                             : nullptr;
        nd.layer->forward_into(in, out, /*train=*/false, scratch);
        if (guard) scan_activation(out, id, nd.name, lane_reports[static_cast<std::size_t>(lane)]);
        acts[static_cast<std::size_t>(id)] = std::move(out);
        if (id != n - 1)
          for (int src : nd.inputs)
            if (src != 0 && plan.last_use(src) == id)
              acts[static_cast<std::size_t>(src)] = Tensor();
      }
      // Copying the view materializes an owning tensor independent of the
      // arena (and of every other lane).
      outputs[static_cast<std::size_t>(lane)] = acts[static_cast<std::size_t>(out_node)];
    }
  });
  // Batched inference leaves no activations for a backward pass.
  have_activations_ = false;
  activations_.clear();

  if (guard) {
    VerifyReport merged;  // lane order keeps the report deterministic
    for (const VerifyReport& r : lane_reports)
      merged.findings.insert(merged.findings.end(), r.findings.begin(), r.findings.end());
    enforce(merged, "Network::forward_batch (runtime numerics guard)");
  }
  return outputs;
}

void Network::check_resume(int resume, const Shape& seed_shape) const {
  const int n = graph_.node_count();
  if (resume < 0 || resume >= n - 1)
    throw std::invalid_argument("Network::forward_from: resume node out of range");
  // A resumed suffix may only read the seed node or nodes after it; an edge
  // reaching behind the seed means `resume` is not an output dominator and
  // the skipped prefix activations would be needed.
  for (int id = resume + 1; id < n; ++id)
    for (const int src : graph_.node(id).inputs)
      if (src < resume)
        throw std::invalid_argument("Network::forward_from: node " + std::to_string(id) +
                                    " reads behind resume node " + std::to_string(resume));
  const Shape& want = graph_.infer_shapes()[static_cast<std::size_t>(resume)];
  if (seed_shape != want)
    throw std::invalid_argument("Network::forward_from: seed shape " + seed_shape.to_string() +
                                " does not match node " + std::to_string(resume) + " shape " +
                                want.to_string());
}

Tensor Network::forward_from(int resume, const Tensor& seed) {
  check_resume(resume, seed.shape());
  if (resume == 0) return forward(seed, /*train=*/false);

  const int n = graph_.node_count();
  const bool guard = runtime_verify_enabled();
  VerifyReport guard_report;

  if (!planning_) {
    activations_.assign(static_cast<std::size_t>(n), Tensor());
    activations_[static_cast<std::size_t>(resume)] = seed;
    for (int id = resume + 1; id < n; ++id) {
      Node& nd = graph_.node(id);
      std::vector<const Tensor*> in;
      in.reserve(nd.inputs.size());
      for (int src : nd.inputs) {
        const Tensor& t = activations_[static_cast<std::size_t>(src)];
        if (t.empty()) throw std::logic_error("Network::forward_from: missing activation");
        in.push_back(&t);
      }
      activations_[static_cast<std::size_t>(id)] = nd.layer->forward(in, /*train=*/false);
      if (guard) scan_activation(activations_[static_cast<std::size_t>(id)], id, nd.name,
                                 guard_report);
    }
    // A resumed pass has no prefix activations: it can never seed backward.
    have_activations_ = false;
    if (guard) enforce(guard_report, "Network::forward_from (runtime numerics guard)");
    Tensor out = activations_[static_cast<std::size_t>(graph_.output_node())];
    activations_.clear();
    return out;
  }

  const MemoryPlan& plan = plan_for({}, /*train=*/false, 1, resume);
  arena_.reserve(plan.arena_floats());
  if (guard) arena_.poison(0, plan.arena_floats());

  std::vector<Tensor> acts(static_cast<std::size_t>(n));
  // The seed plays node 0's role: read-only, so it views the caller's
  // buffer directly instead of copying it into the arena.
  acts[static_cast<std::size_t>(resume)] =
      Tensor::view(seed.shape(), const_cast<float*>(seed.data()));
  for (int id = resume + 1; id < n; ++id) {
    Node& nd = graph_.node(id);
    std::vector<const Tensor*> in;
    in.reserve(nd.inputs.size());
    for (int src : nd.inputs) {
      const Tensor& t = acts[static_cast<std::size_t>(src)];
      if (t.empty()) throw std::logic_error("Network::forward_from: missing activation");
      in.push_back(&t);
    }
    Tensor out = Tensor::view(plan.shape(id), arena_.slot(plan.activation(id).offset));
    float* scratch =
        plan.scratch(id).floats != 0 ? arena_.slot(plan.scratch(id).offset) : nullptr;
    nd.layer->forward_into(in, out, /*train=*/false, scratch);
    if (guard) scan_activation(out, id, nd.name, guard_report);
    acts[static_cast<std::size_t>(id)] = std::move(out);
    if (id != n - 1)
      for (int src : nd.inputs)
        if (src != resume && plan.last_use(src) == id)
          acts[static_cast<std::size_t>(src)] = Tensor();
  }
  have_activations_ = false;
  activations_.clear();
  if (guard) enforce(guard_report, "Network::forward_from (runtime numerics guard)");
  // Copying the view materializes an owning tensor independent of the arena.
  Tensor result = acts[static_cast<std::size_t>(graph_.output_node())];
  return result;
}

std::vector<Tensor> Network::forward_from_batch(int resume,
                                                const std::vector<const Tensor*>& seeds) {
  const int batch = static_cast<int>(seeds.size());
  std::vector<Tensor> outputs(seeds.size());
  if (batch == 0) return outputs;
  for (const Tensor* s : seeds) {
    if (s == nullptr) throw std::invalid_argument("Network::forward_from_batch: null seed");
    if (s->shape() != seeds[0]->shape())
      throw std::invalid_argument("Network::forward_from_batch: seeds must share one shape");
  }
  check_resume(resume, seeds[0]->shape());
  if (!planning_) {
    for (std::size_t i = 0; i < seeds.size(); ++i)
      outputs[i] = resume == 0 ? forward(*seeds[i], /*train=*/false)
                               : forward_from(resume, *seeds[i]);
    return outputs;
  }

  const int n = graph_.node_count();
  const int out_node = graph_.output_node();
  const MemoryPlan& plan = plan_for({}, /*train=*/false, batch, resume);
  arena_.reserve(plan.arena_floats());

  const bool guard = runtime_verify_enabled();
  std::vector<VerifyReport> lane_reports(guard ? seeds.size() : 0);
  if (guard) arena_.poison(0, plan.arena_floats());

  // Same lane discipline as forward_batch (disjoint arena regions, no layer
  // member writes in planned inference), so lanes run concurrently and the
  // pass is bitwise identical to `batch` single forward_from calls at any
  // thread count.
  util::parallel_for(0, batch, 1, [&](std::int64_t lb, std::int64_t le) {
    for (std::int64_t lane = lb; lane < le; ++lane) {
      const std::size_t base = static_cast<std::size_t>(lane) * plan.lane_stride();
      const Tensor& seed = *seeds[static_cast<std::size_t>(lane)];
      std::vector<Tensor> acts(static_cast<std::size_t>(n));
      acts[static_cast<std::size_t>(resume)] =
          Tensor::view(seed.shape(), const_cast<float*>(seed.data()));
      for (int id = resume + 1; id < n; ++id) {
        Node& nd = graph_.node(id);
        std::vector<const Tensor*> in;
        in.reserve(nd.inputs.size());
        for (int src : nd.inputs) {
          const Tensor& t = acts[static_cast<std::size_t>(src)];
          if (t.empty())
            throw std::logic_error("Network::forward_from_batch: missing activation");
          in.push_back(&t);
        }
        Tensor out =
            Tensor::view(plan.shape(id), arena_.slot(base + plan.activation(id).offset));
        float* scratch = plan.scratch(id).floats != 0
                             ? arena_.slot(base + plan.scratch(id).offset)
                             : nullptr;
        nd.layer->forward_into(in, out, /*train=*/false, scratch);
        if (guard) scan_activation(out, id, nd.name, lane_reports[static_cast<std::size_t>(lane)]);
        acts[static_cast<std::size_t>(id)] = std::move(out);
        if (id != n - 1)
          for (int src : nd.inputs)
            if (src != resume && plan.last_use(src) == id)
              acts[static_cast<std::size_t>(src)] = Tensor();
      }
      outputs[static_cast<std::size_t>(lane)] = acts[static_cast<std::size_t>(out_node)];
    }
  });
  have_activations_ = false;
  activations_.clear();

  if (guard) {
    VerifyReport merged;  // lane order keeps the report deterministic
    for (const VerifyReport& r : lane_reports)
      merged.findings.insert(merged.findings.end(), r.findings.begin(), r.findings.end());
    enforce(merged, "Network::forward_from_batch (runtime numerics guard)");
  }
  return outputs;
}

std::vector<Tensor> Network::forward_collect(const Tensor& input,
                                             const std::vector<int>& collect, bool train) {
  if (planning_) return forward_collect_planned(input, collect, train);

  const int n = graph_.node_count();
  const bool guard = runtime_verify_enabled();
  VerifyReport guard_report;
  activations_.assign(static_cast<std::size_t>(n), Tensor());
  activations_[0] = input;
  for (int id = 1; id < n; ++id) {
    Node& nd = graph_.node(id);
    std::vector<const Tensor*> in;
    in.reserve(nd.inputs.size());
    for (int src : nd.inputs) {
      const Tensor& t = activations_[static_cast<std::size_t>(src)];
      if (t.empty()) throw std::logic_error("Network::forward: missing activation");
      in.push_back(&t);
    }
    activations_[static_cast<std::size_t>(id)] = nd.layer->forward(in, train);
    if (guard) scan_activation(activations_[static_cast<std::size_t>(id)], id, nd.name,
                               guard_report);
  }
  have_activations_ = true;
  if (guard) enforce(guard_report, "Network::forward (runtime numerics guard)");

  std::vector<Tensor> out;
  out.reserve(collect.size() + 1);
  if (collect.empty()) {
    out.push_back(activations_[static_cast<std::size_t>(graph_.output_node())]);
  } else {
    for (int id : collect) {
      if (id < 0 || id >= n) throw std::out_of_range("Network::forward_collect: bad node id");
      out.push_back(activations_[static_cast<std::size_t>(id)]);
    }
  }
  return out;
}

void Network::backward(const Tensor& grad_output) {
  backward_multi({{graph_.output_node(), grad_output}});
}

void Network::backward_multi(const std::vector<std::pair<int, Tensor>>& seed_grads) {
  if (!have_activations_) throw std::logic_error("Network::backward without forward");
  const int n = graph_.node_count();
  std::vector<Tensor> grad(static_cast<std::size_t>(n));
  for (const auto& [node, g] : seed_grads) {
    if (node < 0 || node >= n) throw std::out_of_range("Network::backward_multi: bad node");
    Tensor& acc = grad[static_cast<std::size_t>(node)];
    if (acc.empty())
      acc = g;
    else
      acc += g;
  }
  for (int id = n - 1; id >= 1; --id) {
    Tensor& g = grad[static_cast<std::size_t>(id)];
    if (g.empty()) continue;  // node not on any path to the output
    Node& nd = graph_.node(id);
    std::vector<Tensor> gin = nd.layer->backward(g);
    if (gin.size() != nd.inputs.size())
      throw std::logic_error("Network::backward: gradient arity mismatch at node " + nd.name);
    for (std::size_t i = 0; i < nd.inputs.size(); ++i) {
      Tensor& acc = grad[static_cast<std::size_t>(nd.inputs[i])];
      if (acc.empty())
        acc = std::move(gin[i]);
      else
        acc += gin[i];
    }
  }
}

std::vector<Tensor*> Network::params() {
  std::vector<Tensor*> out;
  for (int id = 1; id < graph_.node_count(); ++id)
    for (Tensor* p : graph_.node(id).layer->params()) out.push_back(p);
  return out;
}

std::vector<Tensor*> Network::grads() {
  std::vector<Tensor*> out;
  for (int id = 1; id < graph_.node_count(); ++id)
    for (Tensor* g : graph_.node(id).layer->grads()) out.push_back(g);
  return out;
}

void Network::zero_grads() {
  for (int id = 1; id < graph_.node_count(); ++id) graph_.node(id).layer->zero_grads();
}

Shape Network::output_shape() const {
  return graph_.infer_shapes()[static_cast<std::size_t>(graph_.output_node())];
}

}  // namespace netcut::nn
