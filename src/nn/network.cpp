#include "nn/network.hpp"

#include <stdexcept>

namespace netcut::nn {

Network::Network(Graph graph) : graph_(std::move(graph)) {
  graph_.infer_shapes();  // validate eagerly
}

Tensor Network::forward(const Tensor& input, bool train) {
  return forward_collect(input, {}, train)[0];
}

std::vector<Tensor> Network::forward_collect(const Tensor& input,
                                             const std::vector<int>& collect, bool train) {
  const int n = graph_.node_count();
  activations_.assign(static_cast<std::size_t>(n), Tensor());
  activations_[0] = input;
  for (int id = 1; id < n; ++id) {
    Node& nd = graph_.node(id);
    std::vector<const Tensor*> in;
    in.reserve(nd.inputs.size());
    for (int src : nd.inputs) {
      const Tensor& t = activations_[static_cast<std::size_t>(src)];
      if (t.empty()) throw std::logic_error("Network::forward: missing activation");
      in.push_back(&t);
    }
    activations_[static_cast<std::size_t>(id)] = nd.layer->forward(in, train);
  }
  have_activations_ = true;

  std::vector<Tensor> out;
  out.reserve(collect.size() + 1);
  if (collect.empty()) {
    out.push_back(activations_[static_cast<std::size_t>(graph_.output_node())]);
  } else {
    for (int id : collect) {
      if (id < 0 || id >= n) throw std::out_of_range("Network::forward_collect: bad node id");
      out.push_back(activations_[static_cast<std::size_t>(id)]);
    }
  }
  return out;
}

void Network::backward(const Tensor& grad_output) {
  backward_multi({{graph_.output_node(), grad_output}});
}

void Network::backward_multi(const std::vector<std::pair<int, Tensor>>& seed_grads) {
  if (!have_activations_) throw std::logic_error("Network::backward without forward");
  const int n = graph_.node_count();
  std::vector<Tensor> grad(static_cast<std::size_t>(n));
  for (const auto& [node, g] : seed_grads) {
    if (node < 0 || node >= n) throw std::out_of_range("Network::backward_multi: bad node");
    Tensor& acc = grad[static_cast<std::size_t>(node)];
    if (acc.empty())
      acc = g;
    else
      acc += g;
  }
  for (int id = n - 1; id >= 1; --id) {
    Tensor& g = grad[static_cast<std::size_t>(id)];
    if (g.empty()) continue;  // node not on any path to the output
    Node& nd = graph_.node(id);
    std::vector<Tensor> gin = nd.layer->backward(g);
    if (gin.size() != nd.inputs.size())
      throw std::logic_error("Network::backward: gradient arity mismatch at node " + nd.name);
    for (std::size_t i = 0; i < nd.inputs.size(); ++i) {
      Tensor& acc = grad[static_cast<std::size_t>(nd.inputs[i])];
      if (acc.empty())
        acc = std::move(gin[i]);
      else
        acc += gin[i];
    }
  }
}

std::vector<Tensor*> Network::params() {
  std::vector<Tensor*> out;
  for (int id = 1; id < graph_.node_count(); ++id)
    for (Tensor* p : graph_.node(id).layer->params()) out.push_back(p);
  return out;
}

std::vector<Tensor*> Network::grads() {
  std::vector<Tensor*> out;
  for (int id = 1; id < graph_.node_count(); ++id)
    for (Tensor* g : graph_.node(id).layer->grads()) out.push_back(g);
  return out;
}

void Network::zero_grads() {
  for (int id = 1; id < graph_.node_count(); ++id) graph_.node(id).layer->zero_grads();
}

Shape Network::output_shape() const {
  return graph_.infer_shapes()[static_cast<std::size_t>(graph_.output_node())];
}

}  // namespace netcut::nn
