// Fully-connected layer over rank-1 inputs.
#pragma once

#include "nn/layer.hpp"

namespace netcut::nn {

class Dense final : public Layer {
 public:
  Dense(int in_features, int out_features, bool bias = true);

  LayerKind kind() const override { return LayerKind::kDense; }
  std::unique_ptr<Layer> clone() const override { return std::make_unique<Dense>(*this); }

  Shape output_shape(const std::vector<Shape>& in) const override;
  Tensor forward(const std::vector<const Tensor*>& in, bool train) override;
  void forward_into(const std::vector<const Tensor*>& in, Tensor& out, bool train,
                    float* scratch) override;
  std::vector<Tensor> backward(const Tensor& grad_out) override;

  std::vector<Tensor*> params() override;
  std::vector<Tensor*> grads() override;
  LayerCost cost(const std::vector<Shape>& in) const override;

  Tensor& weight() { return weight_; }
  const Tensor& weight() const { return weight_; }
  Tensor& bias() { return bias_; }
  const Tensor& bias() const { return bias_; }
  bool has_bias() const { return has_bias_; }
  int in_features() const { return in_f_; }
  int out_features() const { return out_f_; }

 private:
  int in_f_, out_f_;
  bool has_bias_;
  Tensor weight_;  // [out, in]
  Tensor bias_;    // [out]
  Tensor grad_weight_, grad_bias_;
  Tensor cached_input_;
};

}  // namespace netcut::nn
