#include "nn/activation.hpp"

#include <cmath>
#include <stdexcept>

namespace netcut::nn {

Shape ReLU::output_shape(const std::vector<Shape>& in) const {
  require_arity(in, 1, "ReLU");
  return in[0];
}

Tensor ReLU::forward(const std::vector<const Tensor*>& in, bool train) {
  require_arity(in, 1, "ReLU");
  Tensor y(in[0]->shape());
  forward_into(in, y, train, nullptr);
  return y;
}

void ReLU::forward_into(const std::vector<const Tensor*>& in, Tensor& out, bool train,
                        float* /*scratch*/) {
  require_arity(in, 1, "ReLU");
  const Tensor& x = *in[0];
  const float hi = clip6_ ? 6.0f : 0.0f;
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    float v = x[i] > 0.0f ? x[i] : 0.0f;
    if (clip6_ && v > hi) v = hi;
    out[i] = v;
  }
  if (train) cached_input_ = x;
}

std::vector<Tensor> ReLU::backward(const Tensor& grad_out) {
  if (cached_input_.empty()) throw std::logic_error("ReLU::backward without train forward");
  Tensor dx(grad_out.shape());
  for (std::int64_t i = 0; i < grad_out.numel(); ++i) {
    const float x = cached_input_[i];
    const bool pass = clip6_ ? (x > 0.0f && x < 6.0f) : (x > 0.0f);
    dx[i] = pass ? grad_out[i] : 0.0f;
  }
  std::vector<Tensor> grads_in;
  grads_in.push_back(std::move(dx));
  return grads_in;
}

LayerCost ReLU::cost(const std::vector<Shape>& in) const {
  LayerCost c;
  c.flops = in[0].numel();
  c.input_elems = in[0].numel();
  c.output_elems = in[0].numel();
  return c;
}

Shape Softmax::output_shape(const std::vector<Shape>& in) const {
  require_arity(in, 1, "Softmax");
  if (in[0].rank() != 1) throw std::invalid_argument("Softmax: expected rank-1 input");
  return in[0];
}

Tensor Softmax::forward(const std::vector<const Tensor*>& in, bool train) {
  require_arity(in, 1, "Softmax");
  Tensor y = softmax(*in[0]);
  if (train) cached_output_ = y;
  return y;
}

std::vector<Tensor> Softmax::backward(const Tensor& grad_out) {
  if (cached_output_.empty()) throw std::logic_error("Softmax::backward without train forward");
  const Tensor& y = cached_output_;
  float dot = 0.0f;
  for (std::int64_t i = 0; i < y.numel(); ++i) dot += grad_out[i] * y[i];
  Tensor dx(y.shape());
  for (std::int64_t i = 0; i < y.numel(); ++i) dx[i] = y[i] * (grad_out[i] - dot);
  std::vector<Tensor> grads_in;
  grads_in.push_back(std::move(dx));
  return grads_in;
}

LayerCost Softmax::cost(const std::vector<Shape>& in) const {
  LayerCost c;
  c.flops = 5LL * in[0].numel();
  c.input_elems = in[0].numel();
  c.output_elems = in[0].numel();
  return c;
}

Tensor softmax(const Tensor& logits) {
  if (logits.shape().rank() != 1) throw std::invalid_argument("softmax: expected rank-1 input");
  Tensor y(logits.shape());
  const float m = logits.max();
  double z = 0.0;
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    y[i] = std::exp(logits[i] - m);
    z += y[i];
  }
  const float inv = static_cast<float>(1.0 / z);
  for (std::int64_t i = 0; i < logits.numel(); ++i) y[i] *= inv;
  return y;
}

}  // namespace netcut::nn
