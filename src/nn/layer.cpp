#include "nn/layer.hpp"

#include <stdexcept>

namespace netcut::nn {

const char* to_string(LayerKind kind) {
  switch (kind) {
    case LayerKind::kInput: return "Input";
    case LayerKind::kConv2D: return "Conv2D";
    case LayerKind::kDepthwiseConv2D: return "DepthwiseConv2D";
    case LayerKind::kDense: return "Dense";
    case LayerKind::kBatchNorm: return "BatchNorm";
    case LayerKind::kReLU: return "ReLU";
    case LayerKind::kReLU6: return "ReLU6";
    case LayerKind::kMaxPool: return "MaxPool";
    case LayerKind::kAvgPool: return "AvgPool";
    case LayerKind::kGlobalAvgPool: return "GlobalAvgPool";
    case LayerKind::kSoftmax: return "Softmax";
    case LayerKind::kAdd: return "Add";
    case LayerKind::kConcat: return "Concat";
    case LayerKind::kFlatten: return "Flatten";
  }
  return "Unknown";
}

void Layer::forward_into(const std::vector<const Tensor*>& in, Tensor& out, bool train,
                         float* /*scratch*/) {
  out.copy_from(forward(in, train));
}

std::size_t Layer::forward_scratch_floats(const std::vector<Shape>& /*in*/) const { return 0; }

void Layer::zero_grads() {
  for (Tensor* g : grads()) g->fill(0.0f);
}

std::int64_t Layer::param_count() const {
  std::int64_t n = 0;
  for (const Tensor* p : const_cast<Layer*>(this)->params()) n += p->numel();
  return n;
}

void Layer::require_arity(const std::vector<Shape>& in, int arity, const char* who) {
  if (static_cast<int>(in.size()) != arity)
    throw std::invalid_argument(std::string(who) + ": wrong input arity");
}

void Layer::require_arity(const std::vector<const Tensor*>& in, int arity, const char* who) {
  if (static_cast<int>(in.size()) != arity)
    throw std::invalid_argument(std::string(who) + ": wrong input arity");
}

}  // namespace netcut::nn
