#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

#include "nn/verify.hpp"

namespace netcut::nn {

namespace {
constexpr std::uint32_t kMagic = 0x4E43574Du;  // "NCWM"
}  // namespace

void save_params(const Graph& graph, std::ostream& out, const std::string& context) {
  auto put_u32 = [&](std::uint32_t v) { out.write(reinterpret_cast<const char*>(&v), 4); };
  put_u32(kMagic);
  put_u32(static_cast<std::uint32_t>(graph.node_count()));
  for (int id = 1; id < graph.node_count(); ++id) {
    Layer& layer = *const_cast<Graph&>(graph).node(id).layer;
    put_u32(static_cast<std::uint32_t>(layer.kind()));
    const auto tensors = layer.state();
    put_u32(static_cast<std::uint32_t>(tensors.size()));
    for (const Tensor* t : tensors) {
      put_u32(static_cast<std::uint32_t>(t->numel()));
      out.write(reinterpret_cast<const char*>(t->data()),
                static_cast<std::streamsize>(sizeof(float)) * t->numel());
    }
  }
  if (!out) throw std::runtime_error("save_params: write failed for " + context);
}

void save_params(const Graph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("save_params: cannot open " + path);
  save_params(graph, out, path);
}

void load_params(Graph& graph, std::istream& in, const std::string& context) {
  auto get_u32 = [&]() {
    std::uint32_t v = 0;
    in.read(reinterpret_cast<char*>(&v), 4);
    if (!in) throw std::runtime_error("load_params: truncated file " + context);
    return v;
  };
  if (get_u32() != kMagic) throw std::runtime_error("load_params: bad magic in " + context);
  if (get_u32() != static_cast<std::uint32_t>(graph.node_count()))
    throw std::runtime_error("load_params: node count mismatch in " + context);
  for (int id = 1; id < graph.node_count(); ++id) {
    Layer& layer = *graph.node(id).layer;
    if (get_u32() != static_cast<std::uint32_t>(layer.kind()))
      throw std::runtime_error("load_params: layer kind mismatch at node " +
                               std::to_string(id));
    const auto tensors = layer.state();
    if (get_u32() != tensors.size())
      throw std::runtime_error("load_params: tensor count mismatch at node " +
                               std::to_string(id));
    for (Tensor* t : tensors) {
      if (get_u32() != static_cast<std::uint32_t>(t->numel()))
        throw std::runtime_error("load_params: tensor size mismatch at node " +
                                 std::to_string(id));
      in.read(reinterpret_cast<char*>(t->data()),
              static_cast<std::streamsize>(sizeof(float)) * t->numel());
      if (!in) throw std::runtime_error("load_params: truncated tensor data in " + context);
    }
  }
  // A weight file that parses can still carry corrupt contents; lint the
  // deserialized graph and scan every loaded tensor for non-finite values.
  check_graph(graph, "load_params");
  check_params(graph, "load_params");
}

bool load_params(Graph& graph, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  load_params(graph, in, path);
  return true;
}

}  // namespace nn
