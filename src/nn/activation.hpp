// Elementwise activations and the terminal softmax.
#pragma once

#include "nn/layer.hpp"

namespace netcut::nn {

/// ReLU, or ReLU6 when clipped (MobileNet family uses ReLU6).
class ReLU final : public Layer {
 public:
  explicit ReLU(bool clip_at_6 = false) : clip6_(clip_at_6) {}

  LayerKind kind() const override { return clip6_ ? LayerKind::kReLU6 : LayerKind::kReLU; }
  std::unique_ptr<Layer> clone() const override { return std::make_unique<ReLU>(*this); }

  Shape output_shape(const std::vector<Shape>& in) const override;
  Tensor forward(const std::vector<const Tensor*>& in, bool train) override;
  void forward_into(const std::vector<const Tensor*>& in, Tensor& out, bool train,
                    float* scratch) override;
  std::vector<Tensor> backward(const Tensor& grad_out) override;
  LayerCost cost(const std::vector<Shape>& in) const override;

  bool clips_at_6() const { return clip6_; }

 private:
  bool clip6_;
  Tensor cached_input_;
};

/// Softmax over a rank-1 tensor. Backward uses the cached output:
/// dx = y ⊙ (dy − ⟨dy, y⟩).
class Softmax final : public Layer {
 public:
  LayerKind kind() const override { return LayerKind::kSoftmax; }
  std::unique_ptr<Layer> clone() const override { return std::make_unique<Softmax>(*this); }

  Shape output_shape(const std::vector<Shape>& in) const override;
  Tensor forward(const std::vector<const Tensor*>& in, bool train) override;
  std::vector<Tensor> backward(const Tensor& grad_out) override;
  LayerCost cost(const std::vector<Shape>& in) const override;

 private:
  Tensor cached_output_;
};

/// Standalone numerically-stable softmax on a rank-1 tensor.
Tensor softmax(const Tensor& logits);

}  // namespace netcut::nn
