#include "hw/faults.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <vector>

namespace netcut::hw {

namespace {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

double parse_num(const std::string& s, const std::string& clause) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0' || !std::isfinite(v))
    throw std::invalid_argument("NETCUT_FAULTS: bad number '" + s + "' in clause '" + clause +
                                "'");
  return v;
}

double parse_prob(const std::string& s, const std::string& clause) {
  const double p = parse_num(s, clause);
  if (p < 0.0 || p > 1.0)
    throw std::invalid_argument("NETCUT_FAULTS: probability out of [0,1] in clause '" +
                                clause + "'");
  return p;
}

// Casting an out-of-range double to an integer type is undefined behaviour,
// so integer-valued fields are range-checked before the cast.
int parse_int(const std::string& s, const std::string& clause) {
  const double v = parse_num(s, clause);
  if (v != std::floor(v) || v < -2147483648.0 || v > 2147483647.0)
    throw std::invalid_argument("NETCUT_FAULTS: '" + s +
                                "' is not a representable integer in clause '" + clause + "'");
  return static_cast<int>(v);
}

std::uint64_t parse_seed(const std::string& s, const std::string& clause) {
  const double v = parse_num(s, clause);
  if (v != std::floor(v) || v < 0.0 || v > 9007199254740992.0)  // 2^53: exact in a double
    throw std::invalid_argument("NETCUT_FAULTS: seed out of [0, 2^53] in clause '" + clause +
                                "'");
  return static_cast<std::uint64_t>(v);
}

}  // namespace

FaultConfig parse_fault_spec(std::string_view spec) {
  FaultConfig cfg;
  if (spec.empty()) return cfg;

  for (const std::string& clause : split(spec, ',')) {
    if (clause.empty()) continue;
    if (clause == "off") return FaultConfig{};

    const std::size_t eq = clause.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("NETCUT_FAULTS: clause '" + clause +
                                  "' is not key=value (or 'off')");
    const std::string key = clause.substr(0, eq);
    const std::string val = clause.substr(eq + 1);

    if (key == "seed") {
      cfg.seed = parse_seed(val, clause);
    } else if (key == "throttle") {
      // K@S~D
      const std::size_t at = val.find('@');
      const std::size_t tilde = val.find('~');
      if (at == std::string::npos || tilde == std::string::npos || tilde < at)
        throw std::invalid_argument("NETCUT_FAULTS: throttle wants K@S~D, got '" + clause +
                                    "'");
      cfg.throttle_mult = parse_num(val.substr(0, at), clause);
      cfg.throttle_start = parse_int(val.substr(at + 1, tilde - at - 1), clause);
      cfg.throttle_decay = parse_num(val.substr(tilde + 1), clause);
      if (cfg.throttle_mult < 1.0 || cfg.throttle_start < 0 || cfg.throttle_decay <= 0.0)
        throw std::invalid_argument("NETCUT_FAULTS: throttle wants K>=1, S>=0, D>0 in '" +
                                    clause + "'");
      cfg.enabled = true;
    } else if (key == "spike") {
      // PxM
      const std::size_t x = val.find('x');
      if (x == std::string::npos)
        throw std::invalid_argument("NETCUT_FAULTS: spike wants PxM, got '" + clause + "'");
      cfg.spike_prob = parse_prob(val.substr(0, x), clause);
      cfg.spike_mult = parse_num(val.substr(x + 1), clause);
      if (cfg.spike_mult < 1.0)
        throw std::invalid_argument("NETCUT_FAULTS: spike multiplier must be >= 1 in '" +
                                    clause + "'");
      cfg.enabled = true;
    } else if (key == "burst") {
      // PxLxM
      const auto parts = split(val, 'x');
      if (parts.size() != 3)
        throw std::invalid_argument("NETCUT_FAULTS: burst wants PxLxM, got '" + clause + "'");
      cfg.burst_prob = parse_prob(parts[0], clause);
      cfg.burst_len = parse_int(parts[1], clause);
      cfg.burst_mult = parse_num(parts[2], clause);
      if (cfg.burst_len < 1 || cfg.burst_mult < 1.0)
        throw std::invalid_argument("NETCUT_FAULTS: burst wants L>=1, M>=1 in '" + clause +
                                    "'");
      cfg.enabled = true;
    } else if (key == "drop") {
      cfg.drop_prob = parse_prob(val, clause);
      cfg.enabled = true;
    } else if (key == "crash") {
      // W@S
      const std::size_t at = val.find('@');
      if (at == std::string::npos)
        throw std::invalid_argument("NETCUT_FAULTS: crash wants W@S, got '" + clause + "'");
      cfg.crash_worker = parse_int(val.substr(0, at), clause);
      cfg.crash_attempt = parse_int(val.substr(at + 1), clause);
      if (cfg.crash_worker < 0 || cfg.crash_attempt < 0)
        throw std::invalid_argument("NETCUT_FAULTS: crash wants W>=0, S>=0 in '" + clause +
                                    "'");
      cfg.enabled = true;
    } else if (key == "hang") {
      // W@S~D
      const std::size_t at = val.find('@');
      const std::size_t tilde = val.find('~');
      if (at == std::string::npos || tilde == std::string::npos || tilde < at)
        throw std::invalid_argument("NETCUT_FAULTS: hang wants W@S~D, got '" + clause + "'");
      cfg.hang_worker = parse_int(val.substr(0, at), clause);
      cfg.hang_attempt = parse_int(val.substr(at + 1, tilde - at - 1), clause);
      cfg.hang_ms = parse_num(val.substr(tilde + 1), clause);
      if (cfg.hang_worker < 0 || cfg.hang_attempt < 0 || cfg.hang_ms <= 0.0)
        throw std::invalid_argument("NETCUT_FAULTS: hang wants W>=0, S>=0, D>0 in '" +
                                    clause + "'");
      cfg.enabled = true;
    } else if (key == "flaky") {
      // WxP
      const std::size_t x = val.find('x');
      if (x == std::string::npos)
        throw std::invalid_argument("NETCUT_FAULTS: flaky wants WxP, got '" + clause + "'");
      cfg.flaky_worker = parse_int(val.substr(0, x), clause);
      cfg.flaky_prob = parse_prob(val.substr(x + 1), clause);
      if (cfg.flaky_worker < 0)
        throw std::invalid_argument("NETCUT_FAULTS: flaky wants W>=0 in '" + clause + "'");
      cfg.enabled = true;
    } else {
      throw std::invalid_argument("NETCUT_FAULTS: unknown clause '" + clause + "'");
    }
  }
  return cfg;
}

std::string format_fault_spec(const FaultConfig& config) {
  if (!config.enabled) {
    // A lone seed clause parses to a disabled config but is still state:
    // preserve it so the round-trip is lossless.
    if (config.seed != FaultConfig{}.seed) return "seed=" + std::to_string(config.seed);
    return "off";
  }
  // %.17g is round-trip exact for doubles, and none of the formatted
  // numbers can contain the grammar's separators (',', '=', '@', '~', 'x').
  char buf[320];
  std::snprintf(buf, sizeof buf,
                "throttle=%.17g@%d~%.17g,spike=%.17gx%.17g,burst=%.17gx%dx%.17g,"
                "drop=%.17g",
                config.throttle_mult, config.throttle_start, config.throttle_decay,
                config.spike_prob, config.spike_mult, config.burst_prob, config.burst_len,
                config.burst_mult, config.drop_prob);
  std::string out = buf;
  // Worker-scoped clauses carry their own "absent" state (-1), so they are
  // spelled only when targeted — parse(format(c)) == c either way.
  if (config.crash_worker >= 0) {
    std::snprintf(buf, sizeof buf, ",crash=%d@%d", config.crash_worker,
                  config.crash_attempt);
    out += buf;
  }
  if (config.hang_worker >= 0) {
    std::snprintf(buf, sizeof buf, ",hang=%d@%d~%.17g", config.hang_worker,
                  config.hang_attempt, config.hang_ms);
    out += buf;
  }
  if (config.flaky_worker >= 0) {
    std::snprintf(buf, sizeof buf, ",flaky=%dx%.17g", config.flaky_worker,
                  config.flaky_prob);
    out += buf;
  }
  std::snprintf(buf, sizeof buf, ",seed=%llu", static_cast<unsigned long long>(config.seed));
  out += buf;
  return out;
}

FaultStream::FaultStream(const FaultConfig& config, std::uint64_t stream_seed)
    : config_(config), rng_(stream_seed) {}

RunFault FaultStream::next(int run_index) {
  RunFault f;
  if (!config_.enabled) return f;

  // Fixed draw order so the stream is identical however outcomes are used.
  const bool dropped = rng_.chance(config_.drop_prob);
  const bool spiked = rng_.chance(config_.spike_prob);
  const bool burst_starts = rng_.chance(config_.burst_prob);

  if (dropped) {
    f.failed = true;
    return f;
  }
  if (config_.throttle_mult > 1.0 && run_index >= config_.throttle_start) {
    const double age = static_cast<double>(run_index - config_.throttle_start);
    f.multiplier *= 1.0 + (config_.throttle_mult - 1.0) * std::exp(-age / config_.throttle_decay);
  }
  if (spiked) f.multiplier *= config_.spike_mult;
  if (burst_left_ > 0) {
    f.multiplier *= config_.burst_mult;
    --burst_left_;
  } else if (burst_starts) {
    f.multiplier *= config_.burst_mult;
    burst_left_ = config_.burst_len - 1;
  }
  return f;
}

const FaultModel& FaultModel::global() {
  static const FaultModel model = [] {
    const char* e = std::getenv("NETCUT_FAULTS");
    if (e == nullptr || *e == '\0') return FaultModel();
    return FaultModel(parse_fault_spec(e));
  }();
  return model;
}

const FaultModel& FaultModel::disabled() {
  static const FaultModel model;
  return model;
}

FaultStream FaultModel::stream(std::string_view label) const {
  if (!config_.enabled) return FaultStream();
  return FaultStream(config_, util::derive_seed(config_.seed, label));
}

}  // namespace netcut::hw
