// Training-time cost model for exploration-time accounting — the stand-in
// for the paper's NVIDIA Tesla K20m training server. Blockwise exploration
// retrained 148 TRNs in 183 hours; NetCut retrained 9 in 6.7 hours (27x).
// The ratio is driven by *how many* and *how large* the retrained TRNs are,
// which this model prices from each TRN's training FLOPs.
#pragma once

#include "nn/graph.hpp"

namespace netcut::hw {

struct TrainerConfig {
  std::string name = "k20m-sim";
  double peak_gflops = 3520.0;     // Tesla K20m fp32 peak
  double efficiency = 0.35;
  int dataset_images = 6500;       // transfer-learning training set size
  int epochs = 55;                 // head warm-up + 50 fine-tuning epochs
  double backward_factor = 2.0;    // backward pass costs ~2x forward
  double per_network_overhead_h = 0.05;  // data pipeline, checkpointing, eval
};

class TrainerModel {
 public:
  explicit TrainerModel(TrainerConfig config = {});

  const TrainerConfig& config() const { return config_; }

  /// GPU-hours to retrain one network (at its full training resolution).
  double training_hours(const nn::Graph& graph) const;

  /// GPU-hours to retrain a set of networks sequentially.
  double total_hours(const std::vector<const nn::Graph*>& graphs) const;

 private:
  TrainerConfig config_;
};

}  // namespace netcut::hw
