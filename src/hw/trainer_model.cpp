#include "hw/trainer_model.hpp"

#include <stdexcept>

namespace netcut::hw {

TrainerModel::TrainerModel(TrainerConfig config) : config_(std::move(config)) {
  if (config_.peak_gflops <= 0 || config_.efficiency <= 0)
    throw std::invalid_argument("TrainerModel: non-positive throughput");
}

double TrainerModel::training_hours(const nn::Graph& graph) const {
  const double forward_flops = static_cast<double>(graph.total_cost().flops);
  const double total_flops = forward_flops * (1.0 + config_.backward_factor) *
                             config_.dataset_images * config_.epochs;
  const double seconds = total_flops / (config_.peak_gflops * 1e9 * config_.efficiency);
  return seconds / 3600.0 + config_.per_network_overhead_h;
}

double TrainerModel::total_hours(const std::vector<const nn::Graph*>& graphs) const {
  double h = 0.0;
  for (const nn::Graph* g : graphs) h += training_hours(*g);
  return h;
}

}  // namespace netcut::hw
