// Simulated CUDA-event per-layer profiling (Section V-B1).
//
// Real per-layer event timing adds instrumentation overhead to every
// kernel, which is why the paper observes that the *sum* of per-layer
// latencies slightly exceeds the measured end-to-end latency — and why its
// profiler-based estimator rescales by a ratio instead of summing. The
// simulator reproduces that artifact: each profiled kernel reads
// true_latency + event_overhead, perturbed by measurement noise, while the
// table's end-to-end reference comes from the unperturbed measurement
// protocol.
#pragma once

#include <string>
#include <vector>

#include "hw/measure.hpp"

namespace netcut::hw {

struct ProfiledLayer {
  int node = -1;
  std::string name;
  double latency_ms = 0.0;   // per-layer event timing (includes overhead)
  bool fused_away = false;   // absorbed kernels appear with 0 latency
  /// Fraction of profile runs that survived fault retry + MAD rejection;
  /// 1.0 when no fault schedule is active. Estimators treat low-confidence
  /// rows as unreliable and interpolate around them.
  double confidence = 1.0;
};

struct LatencyTable {
  std::string network;
  std::vector<ProfiledLayer> layers;
  double end_to_end_ms = 0.0;  // measured without per-layer events

  /// Sum of the per-layer event timings (> end_to_end_ms by the overhead).
  double layer_sum_ms() const;
};

struct ProfilerConfig {
  double event_overhead_us = 0.7;  // added to each profiled kernel
  double noise_sigma = 0.02;       // per-layer timing noise
  int profile_runs = 50;           // per-layer timings averaged over runs
  std::uint64_t seed = 4321;
  // Self-healing knobs (only consulted when a fault schedule is active).
  int max_retries = 3;             // extra attempts per failed profile run
  double mad_k = 3.5;              // reject samples beyond k robust sigmas
  /// Fault schedule override; nullptr falls back to FaultModel::global().
  const FaultModel* faults = nullptr;
};

class LayerProfiler {
 public:
  LayerProfiler(const DeviceModel& device, LatencyMeasurer& measurer,
                ProfilerConfig config = {});

  /// Builds the per-layer latency table for one network. One table per
  /// unmodified network is all the profiler-based estimator needs.
  LatencyTable profile(const nn::Graph& graph, const std::string& name, Precision precision,
                       bool fuse);

 private:
  const DeviceModel& device_;
  LatencyMeasurer& measurer_;
  ProfilerConfig config_;
  std::uint64_t table_counter_ = 0;
};

}  // namespace netcut::hw
