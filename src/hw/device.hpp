// Analytical embedded-GPU timing model — the substitution for the paper's
// NVIDIA Jetson Xavier (see DESIGN.md).
//
// Per-kernel latency is a roofline: launch overhead plus the max of a
// compute term (FLOPs over effective throughput) and a memory term
// (activation + weight traffic over bandwidth). Effective compute
// throughput depends on operator class (depthwise convolutions are
// memory-bound and run far below peak) and on output spatial size (small
// late-network grids under-utilize the GPU). The spatial term is what makes
// latency mildly *non-linear* in the cutpoint — the effect the paper's
// RBF-SVR estimator captures and a linear model does not.
//
// Graph latency sums kernels after an optional fusion pass
// (BatchNorm/ReLU folded into their producer, as TensorRT-style deployment
// does; the paper enables layer fusion in its deployment optimizations).
//
// Batched execution (the serving layer) launches each kernel once for the
// whole batch: launch overhead is paid once, weights stream from DRAM once,
// activation traffic and FLOPs scale with the batch, and the utilization
// knee sees batch x spatial output elements — which is why a batch of 8 is
// far cheaper than 8 single-image passes. batch == 1 reproduces the
// original expression bit-for-bit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/graph.hpp"

namespace netcut::hw {

enum class Precision { kFp32, kInt8 };

const char* to_string(Precision p);

struct DeviceConfig {
  std::string name = "xavier-sim";
  double peak_gflops_fp32 = 1400.0;
  double peak_gflops_int8 = 11000.0;   // tensor-core / DLA int8 path
  double mem_bandwidth_gbps = 137.0;   // LPDDR4x
  double kernel_launch_us = 9.0;
  double efficiency_conv = 0.55;       // dense spatial convolutions
  double efficiency_pointwise = 0.45;  // 1x1 convolutions
  double efficiency_depthwise = 0.12;  // memory-bound
  double efficiency_dense = 0.35;
  /// Output-grid utilization knee: efficiency scales by s/(s+knee) where s
  /// is the output spatial element count.
  double spatial_knee = 16.0;
};

/// A derived device config with compute throughput and memory bandwidth
/// scaled by `perf_factor` (launch overhead and efficiencies unchanged) —
/// the cheap, principled way to model a heterogeneous serving fleet:
/// faster/slower replicas of the same architecture, e.g.
/// scaled_device(base, 0.5, "xavier-slow") for a half-speed sibling.
DeviceConfig scaled_device(const DeviceConfig& base, double perf_factor, std::string name);

struct KernelCost {
  int node = -1;
  std::string name;
  double latency_ms = 0.0;
  bool fused_away = false;  // absorbed into the producer kernel
};

class DeviceModel {
 public:
  explicit DeviceModel(DeviceConfig config = {});

  const DeviceConfig& config() const { return config_; }

  /// True (noise-free) latency of every node for one batched kernel launch
  /// over `batch` images. Fused-away nodes get 0.
  std::vector<KernelCost> kernel_costs(const nn::Graph& graph, Precision precision,
                                       bool fuse, int batch = 1) const;

  /// True end-to-end latency of a batch-`batch` pass in ms.
  double network_latency_ms(const nn::Graph& graph, Precision precision, bool fuse,
                            int batch = 1) const;

  /// True latency of the suffix a prefix-resume pass executes: the sum of
  /// kernel costs for nodes strictly after `resume` — the second-stage cost
  /// of a cascade escalation that reuses the shared trunk activation. At a
  /// legal cut site fusion never reaches across the boundary (cuts land on
  /// block-end ReLU/Add nodes; a following conv never folds backward into
  /// them), so the suffix sum composes exactly: full = prefix + suffix.
  /// resume == 0 reproduces network_latency_ms bit-for-bit.
  double network_latency_from_ms(const nn::Graph& graph, Precision precision, bool fuse,
                                 int resume, int batch = 1) const;

  /// Predicted end-to-end fp32/int8 latency ratio for the graph — the
  /// model's int8 speedup term. The measured counterpart is the wall-clock
  /// ratio of Network::forward to QuantizedNetwork::forward_int8; the kernel
  /// benchmark and quant tests report both side by side so the analytical
  /// term can be sanity-checked against real integer execution.
  double int8_speedup(const nn::Graph& graph, bool fuse, int batch = 1) const;

  /// Which nodes are absorbed into their producer kernel under fusion
  /// (BatchNorm / ReLU / ReLU6 whose producer is a compute node and whose
  /// producer has no other consumer).
  static std::vector<bool> fused_away(const nn::Graph& graph);

 private:
  double node_latency_ms(const nn::Layer& layer, const nn::LayerCost& cost,
                         Precision precision, int batch) const;

  DeviceConfig config_;
};

}  // namespace netcut::hw
