#include "hw/device.hpp"

#include <algorithm>
#include <stdexcept>

namespace netcut::hw {

const char* to_string(Precision p) { return p == Precision::kFp32 ? "fp32" : "int8"; }

DeviceConfig scaled_device(const DeviceConfig& base, double perf_factor, std::string name) {
  if (perf_factor <= 0) throw std::invalid_argument("scaled_device: non-positive factor");
  DeviceConfig out = base;
  out.name = std::move(name);
  out.peak_gflops_fp32 *= perf_factor;
  out.peak_gflops_int8 *= perf_factor;
  out.mem_bandwidth_gbps *= perf_factor;
  return out;
}

DeviceModel::DeviceModel(DeviceConfig config) : config_(std::move(config)) {
  if (config_.peak_gflops_fp32 <= 0 || config_.peak_gflops_int8 <= 0 ||
      config_.mem_bandwidth_gbps <= 0)
    throw std::invalid_argument("DeviceModel: non-positive throughput");
}

std::vector<bool> DeviceModel::fused_away(const nn::Graph& graph) {
  const int n = graph.node_count();
  std::vector<int> consumers(static_cast<std::size_t>(n), 0);
  for (int id = 1; id < n; ++id)
    for (int src : graph.node(id).inputs) ++consumers[static_cast<std::size_t>(src)];

  auto is_compute = [](nn::LayerKind k) {
    switch (k) {
      case nn::LayerKind::kConv2D:
      case nn::LayerKind::kDepthwiseConv2D:
      case nn::LayerKind::kDense:
      case nn::LayerKind::kAdd:
      case nn::LayerKind::kBatchNorm:
        return true;
      default:
        return false;
    }
  };

  std::vector<bool> fused(static_cast<std::size_t>(n), false);
  for (int id = 1; id < n; ++id) {
    const nn::Node& nd = graph.node(id);
    const nn::LayerKind k = nd.layer->kind();
    if (k != nn::LayerKind::kBatchNorm && k != nn::LayerKind::kReLU &&
        k != nn::LayerKind::kReLU6)
      continue;
    if (nd.inputs.size() != 1) continue;
    const int producer = nd.inputs[0];
    if (producer == graph.input_node()) continue;
    if (consumers[static_cast<std::size_t>(producer)] != 1) continue;
    if (!is_compute(graph.node(producer).layer->kind())) continue;
    fused[static_cast<std::size_t>(id)] = true;
  }
  return fused;
}

double DeviceModel::node_latency_ms(const nn::Layer& layer, const nn::LayerCost& cost,
                                    Precision precision, int batch) const {
  const double elem_bytes = precision == Precision::kInt8 ? 1.0 : 4.0;
  const double peak =
      precision == Precision::kInt8 ? config_.peak_gflops_int8 : config_.peak_gflops_fp32;
  const double b = static_cast<double>(batch);

  double eff = 0.0;
  switch (layer.kind()) {
    case nn::LayerKind::kConv2D:
      eff = cost.kernel > 1 ? config_.efficiency_conv : config_.efficiency_pointwise;
      break;
    case nn::LayerKind::kDepthwiseConv2D:
      eff = config_.efficiency_depthwise;
      break;
    case nn::LayerKind::kDense:
      eff = config_.efficiency_dense;
      break;
    default:
      eff = 0.0;  // bandwidth-bound ops: no compute term
      break;
  }

  double compute_ms = 0.0;
  if (eff > 0.0) {
    // Small output grids under-utilize the SMs; a batched launch fills them
    // with batch x output_elems work items.
    const double spatial = std::max<double>(1.0, b * static_cast<double>(cost.output_elems));
    const double util = spatial / (spatial + config_.spatial_knee * 1024.0);
    compute_ms =
        b * static_cast<double>(cost.flops) / (peak * 1e9 * eff * std::max(util, 0.05)) * 1e3;
  }

  // Activations stream per image; weights stream once per batched launch.
  const double bytes =
      b * (static_cast<double>(cost.input_elems) + static_cast<double>(cost.output_elems)) *
          elem_bytes +
      static_cast<double>(cost.params) * elem_bytes;
  const double memory_ms = bytes / (config_.mem_bandwidth_gbps * 1e9) * 1e3;

  return config_.kernel_launch_us * 1e-3 + std::max(compute_ms, memory_ms);
}

std::vector<KernelCost> DeviceModel::kernel_costs(const nn::Graph& graph, Precision precision,
                                                  bool fuse, int batch) const {
  const std::vector<tensor::Shape> shapes = graph.infer_shapes();
  const std::vector<bool> fused =
      fuse ? fused_away(graph) : std::vector<bool>(static_cast<std::size_t>(graph.node_count()),
                                                   false);
  std::vector<KernelCost> out;
  out.reserve(static_cast<std::size_t>(graph.node_count()) - 1);
  for (int id = 1; id < graph.node_count(); ++id) {
    const nn::Node& nd = graph.node(id);
    std::vector<tensor::Shape> in;
    for (int src : nd.inputs) in.push_back(shapes[static_cast<std::size_t>(src)]);
    KernelCost kc;
    kc.node = id;
    kc.name = nd.name;
    kc.fused_away = fused[static_cast<std::size_t>(id)];
    kc.latency_ms =
        kc.fused_away ? 0.0 : node_latency_ms(*nd.layer, nd.layer->cost(in), precision, batch);
    out.push_back(std::move(kc));
  }
  return out;
}

double DeviceModel::network_latency_ms(const nn::Graph& graph, Precision precision,
                                       bool fuse, int batch) const {
  double total = 0.0;
  for (const KernelCost& kc : kernel_costs(graph, precision, fuse, batch)) total += kc.latency_ms;
  return total;
}

double DeviceModel::network_latency_from_ms(const nn::Graph& graph, Precision precision,
                                            bool fuse, int resume, int batch) const {
  if (resume < 0 || resume >= graph.node_count())
    throw std::invalid_argument("DeviceModel::network_latency_from_ms: resume out of range");
  double total = 0.0;
  for (const KernelCost& kc : kernel_costs(graph, precision, fuse, batch))
    if (kc.node > resume) total += kc.latency_ms;
  return total;
}

double DeviceModel::int8_speedup(const nn::Graph& graph, bool fuse, int batch) const {
  const double fp32 = network_latency_ms(graph, Precision::kFp32, fuse, batch);
  const double int8 = network_latency_ms(graph, Precision::kInt8, fuse, batch);
  return int8 > 0.0 ? fp32 / int8 : 1.0;
}

}  // namespace netcut::hw
