// The paper's measurement protocol (Section IV-B2): warm the GPU with 200
// inferences, then report the mean over another 800 timed runs. The
// simulator adds a clock-ramp warm-up transient and lognormal run-to-run
// noise on top of the DeviceModel's true latency, so measured numbers have
// the statistical texture of real device timings while staying
// deterministic for a given seed.
#pragma once

#include "hw/device.hpp"
#include "util/rng.hpp"

namespace netcut::hw {

struct MeasureConfig {
  int warmup_runs = 200;
  int timed_runs = 800;
  double noise_sigma = 0.012;      // lognormal sigma per run
  double cold_penalty = 0.6;       // initial clock-ramp latency multiplier
  double warmup_decay_runs = 60.0; // e-folding of the cold penalty
  std::uint64_t seed = 1234;
};

struct Measurement {
  double mean_ms = 0.0;
  double stdev_ms = 0.0;
  double min_ms = 0.0;
  double max_ms = 0.0;
  int runs = 0;
};

class LatencyMeasurer {
 public:
  LatencyMeasurer(const DeviceModel& device, MeasureConfig config = {});

  /// Full protocol: 200 warm-up + 800 timed runs of the whole network.
  Measurement measure_network(const nn::Graph& graph, Precision precision, bool fuse);

  /// One simulated run at the given global run index (0 = cold start).
  double simulate_run_ms(double true_ms, int run_index, util::Rng& rng) const;

  const MeasureConfig& config() const { return config_; }

 private:
  const DeviceModel& device_;
  MeasureConfig config_;
  std::uint64_t measurement_counter_ = 0;
};

}  // namespace netcut::hw
