// The paper's measurement protocol (Section IV-B2): warm the GPU with 200
// inferences, then report the mean over another 800 timed runs. The
// simulator adds a clock-ramp warm-up transient and lognormal run-to-run
// noise on top of the DeviceModel's true latency, so measured numbers have
// the statistical texture of real device timings while staying
// deterministic for a given seed.
//
// Under an active hw::FaultModel the protocol self-heals: failed runs are
// retried with bounded backoff, surviving samples pass MAD-based outlier
// rejection, and the reported mean is the trimmed aggregate with an
// attached confidence — so throttle spikes and dropped runs degrade the
// confidence instead of silently poisoning the latency estimate. With no
// active faults the legacy code path runs and outputs are bit-identical.
#pragma once

#include "hw/device.hpp"
#include "hw/faults.hpp"
#include "util/rng.hpp"

namespace netcut::hw {

struct MeasureConfig {
  int warmup_runs = 200;
  int timed_runs = 800;
  double noise_sigma = 0.012;      // lognormal sigma per run
  double cold_penalty = 0.6;       // initial clock-ramp latency multiplier
  double warmup_decay_runs = 60.0; // e-folding of the cold penalty
  std::uint64_t seed = 1234;
  // Self-healing knobs (only consulted when a fault schedule is active).
  int max_retries = 3;             // extra attempts per failed timed run
  double mad_k = 3.5;              // reject samples beyond k robust sigmas
  /// Fault schedule override; nullptr falls back to FaultModel::global()
  /// (the NETCUT_FAULTS environment schedule).
  const FaultModel* faults = nullptr;
};

struct Measurement {
  double mean_ms = 0.0;   // trimmed mean when a fault schedule is active
  double stdev_ms = 0.0;
  double min_ms = 0.0;
  double max_ms = 0.0;
  double median_ms = 0.0;
  int runs = 0;           // samples that survived retry + rejection
  int failed_runs = 0;    // timed runs lost even after retries
  int retries = 0;        // retry attempts spent on failed runs
  int outliers_rejected = 0;
  double confidence = 1.0;  // surviving-sample fraction of timed_runs
};

class LatencyMeasurer {
 public:
  LatencyMeasurer(const DeviceModel& device, MeasureConfig config = {});

  /// Full protocol: 200 warm-up + 800 timed runs of the whole network.
  /// `batch` > 1 times a batched pass (one launch per kernel for the whole
  /// batch); batch == 1 is the original single-image protocol, bit-identical.
  Measurement measure_network(const nn::Graph& graph, Precision precision, bool fuse,
                              int batch = 1);

  /// Same protocol over the suffix a prefix-resume pass executes (nodes
  /// strictly after `resume`) — the measured second-stage cost of a cascade
  /// escalation. Consumes one measurement label like any other measurement;
  /// resume == 0 times the whole network.
  Measurement measure_network_from(const nn::Graph& graph, Precision precision, bool fuse,
                                   int resume, int batch = 1);

  /// One simulated run at the given global run index (0 = cold start).
  double simulate_run_ms(double true_ms, int run_index, util::Rng& rng) const;

  const MeasureConfig& config() const { return config_; }

 private:
  Measurement measure_true_ms(double true_ms);

  const DeviceModel& device_;
  MeasureConfig config_;
  std::uint64_t measurement_counter_ = 0;
};

}  // namespace netcut::hw
