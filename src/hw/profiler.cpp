#include "hw/profiler.hpp"

#include <cmath>

#include "util/stats.hpp"

namespace netcut::hw {

double LatencyTable::layer_sum_ms() const {
  double s = 0.0;
  for (const ProfiledLayer& l : layers) s += l.latency_ms;
  return s;
}

LayerProfiler::LayerProfiler(const DeviceModel& device, LatencyMeasurer& measurer,
                             ProfilerConfig config)
    : device_(device), measurer_(measurer), config_(config) {}

LatencyTable LayerProfiler::profile(const nn::Graph& graph, const std::string& name,
                                    Precision precision, bool fuse) {
  LatencyTable table;
  table.network = name;
  table.end_to_end_ms = measurer_.measure_network(graph, precision, fuse).mean_ms;

  const std::string table_label = "profiler/" + std::to_string(table_counter_++);
  util::Rng rng(util::derive_seed(config_.seed, table_label));
  const FaultModel& model = config_.faults != nullptr ? *config_.faults : FaultModel::global();

  for (const KernelCost& kc : device_.kernel_costs(graph, precision, fuse)) {
    ProfiledLayer pl;
    pl.node = kc.node;
    pl.name = kc.name;
    pl.fused_away = kc.fused_away;
    if (!kc.fused_away) {
      const double event_ms = kc.latency_ms + config_.event_overhead_us * 1e-3;
      if (!model.active()) {
        // Fault-free: the exact legacy per-layer loop, bit-identical.
        double sum = 0.0;
        for (int r = 0; r < config_.profile_runs; ++r)
          sum += event_ms * rng.lognormal(0.0, config_.noise_sigma);
        pl.latency_ms = sum / config_.profile_runs;
      } else {
        // Per-layer fault stream: event timings fail and spike just like
        // end-to-end runs; surviving samples are MAD-trimmed and the row
        // carries its surviving-run fraction as confidence.
        FaultStream faults =
            model.stream(table_label + "/node" + std::to_string(kc.node));
        std::vector<double> samples;
        samples.reserve(static_cast<std::size_t>(config_.profile_runs));
        for (int r = 0; r < config_.profile_runs; ++r) {
          for (int attempt = 0; attempt <= config_.max_retries; ++attempt) {
            const RunFault f = faults.next(r);
            if (!f.failed) {
              samples.push_back(event_ms * rng.lognormal(0.0, config_.noise_sigma) *
                                f.multiplier);
              break;
            }
          }
        }
        if (samples.empty()) {
          pl.latency_ms = 0.0;  // no usable timing: flagged by confidence 0
          pl.confidence = 0.0;
        } else {
          const double med = util::median(samples);
          const double robust_sigma = 1.4826 * util::mad(samples, med);
          std::vector<double> kept;
          kept.reserve(samples.size());
          if (robust_sigma > 0.0) {
            for (double s : samples)
              if (std::abs(s - med) <= config_.mad_k * robust_sigma) kept.push_back(s);
          } else {
            kept = samples;
          }
          if (kept.empty()) kept.push_back(med);
          pl.latency_ms = util::mean(kept);
          pl.confidence =
              static_cast<double>(kept.size()) / static_cast<double>(config_.profile_runs);
        }
      }
    }
    table.layers.push_back(std::move(pl));
  }
  return table;
}

}  // namespace netcut::hw
