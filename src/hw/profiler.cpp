#include "hw/profiler.hpp"

namespace netcut::hw {

double LatencyTable::layer_sum_ms() const {
  double s = 0.0;
  for (const ProfiledLayer& l : layers) s += l.latency_ms;
  return s;
}

LayerProfiler::LayerProfiler(const DeviceModel& device, LatencyMeasurer& measurer,
                             ProfilerConfig config)
    : device_(device), measurer_(measurer), config_(config) {}

LatencyTable LayerProfiler::profile(const nn::Graph& graph, const std::string& name,
                                    Precision precision, bool fuse) {
  LatencyTable table;
  table.network = name;
  table.end_to_end_ms = measurer_.measure_network(graph, precision, fuse).mean_ms;

  util::Rng rng(
      util::derive_seed(config_.seed, "profiler/" + std::to_string(table_counter_++)));

  for (const KernelCost& kc : device_.kernel_costs(graph, precision, fuse)) {
    ProfiledLayer pl;
    pl.node = kc.node;
    pl.name = kc.name;
    pl.fused_away = kc.fused_away;
    if (!kc.fused_away) {
      double sum = 0.0;
      for (int r = 0; r < config_.profile_runs; ++r) {
        const double timed = (kc.latency_ms + config_.event_overhead_us * 1e-3) *
                             rng.lognormal(0.0, config_.noise_sigma);
        sum += timed;
      }
      pl.latency_ms = sum / config_.profile_runs;
    }
    table.layers.push_back(std::move(pl));
  }
  return table;
}

}  // namespace netcut::hw
