// Deterministic fault injection for the simulated device.
//
// Real embedded GPUs misbehave: thermal throttling inflates latency for
// hundreds of runs, background load produces transient spikes and outlier
// bursts, and timing runs occasionally fail outright. The measurement and
// control-loop layers must survive all of that (NetAdapt treats on-device
// measurements as unreliable first-class signals for the same reason), so
// this module injects those faults *reproducibly*: a schedule is parsed
// from the NETCUT_FAULTS environment variable (or built in code), and each
// measurement stream derives its own seeded RNG from a stable label, so a
// faulty experiment is exactly as bit-reproducible as a clean one.
//
// Spec grammar (comma-separated clauses, all optional):
//   throttle=K@S~D   from run S the latency is multiplied by K, decaying
//                    back to 1 with e-folding D runs (a thermal event)
//   spike=PxM        each run independently spikes by xM with probability P
//   burst=PxLxM      with probability P a burst starts: L consecutive runs
//                    multiplied by xM (sustained interference)
//   drop=P           each run fails outright with probability P (retried by
//                    the self-healing measurement path)
//   seed=N           schedule seed (decorrelated per stream label)
//   off              explicitly disabled (same as an empty spec)
//
// Worker-scoped failure modes (consumed by the fleet's health layer,
// serve/health.hpp; the per-run measurement streams above ignore them, so
// adding one never perturbs a timing number):
//   crash=W@S        fleet worker W dies permanently at its S-th dispatch
//                    attempt (fail-stop: no batch, no heartbeat, ever)
//   hang=W@S~D       worker W goes silent for D ms starting at attempt S
//                    (wedged, then resumes — the recovery path's fault)
//   flaky=WxP        each of worker W's dispatch attempts fails with
//                    probability P (observed errors, drawn from a
//                    per-worker seeded stream)
// Example: NETCUT_FAULTS="throttle=2.0@200~400,spike=0.02x6,drop=0.01"
// Example: NETCUT_FAULTS="crash=2@120,hang=1@40~25,flaky=3x0.2"
//
// With no schedule active every consumer takes its exact pre-fault code
// path, so clean outputs stay bit-identical.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/rng.hpp"

namespace netcut::hw {

struct FaultConfig {
  bool enabled = false;
  // throttle=K@S~D
  double throttle_mult = 1.0;
  int throttle_start = 0;
  double throttle_decay = 300.0;
  // spike=PxM
  double spike_prob = 0.0;
  double spike_mult = 6.0;
  // burst=PxLxM
  double burst_prob = 0.0;
  int burst_len = 8;
  double burst_mult = 3.0;
  // drop=P
  double drop_prob = 0.0;
  // crash=W@S (worker-scoped; -1 = no worker targeted)
  int crash_worker = -1;
  int crash_attempt = 0;
  // hang=W@S~D
  int hang_worker = -1;
  int hang_attempt = 0;
  double hang_ms = 0.0;
  // flaky=WxP
  int flaky_worker = -1;
  double flaky_prob = 0.0;
  std::uint64_t seed = 0xFA017uLL;

  bool operator==(const FaultConfig&) const = default;

  /// True when any worker-scoped clause (crash/hang/flaky) is present.
  bool targets_workers() const {
    return crash_worker >= 0 || hang_worker >= 0 || flaky_worker >= 0;
  }
};

/// Parses the NETCUT_FAULTS grammar above. Empty or "off" yields a
/// disabled config; malformed clauses throw std::invalid_argument.
FaultConfig parse_fault_spec(std::string_view spec);

/// The inverse of parse_fault_spec: a canonical spec string such that
/// parse_fault_spec(format_fault_spec(c)) == c for every config c that
/// parse_fault_spec can produce (doubles are printed round-trip exact). A
/// disabled config formats as "off"; an enabled one spells out every clause
/// so no field is left to defaulting.
std::string format_fault_spec(const FaultConfig& config);

/// What the schedule does to one timing run.
struct RunFault {
  double multiplier = 1.0;  // latency scale (throttle * spike * burst)
  bool failed = false;      // the run produced no timing at all
};

/// Per-measurement-stream fault state: owns a seeded RNG plus the burst
/// state machine. One stream per measurement, derived from a stable label,
/// keeps fault schedules reproducible and decorrelated across streams.
class FaultStream {
 public:
  FaultStream() = default;  // inert: every run is clean
  FaultStream(const FaultConfig& config, std::uint64_t stream_seed);

  /// Faults for the run at `run_index` (0 = first warm-up run). Draws are
  /// consumed in a fixed order (drop, spike, burst) on every call, so the
  /// schedule at run k does not depend on what earlier outcomes were used
  /// for. Retrying a failed run is modeled by calling next() again at the
  /// same index.
  RunFault next(int run_index);

  bool active() const { return config_.enabled; }

 private:
  FaultConfig config_;
  util::Rng rng_{0};
  int burst_left_ = 0;
};

/// An immutable fault schedule. The process-wide schedule comes from
/// NETCUT_FAULTS (parsed once); components take an optional FaultModel
/// pointer and fall back to the global one, so tests can pin faults on or
/// off explicitly regardless of the environment.
class FaultModel {
 public:
  FaultModel() = default;  // disabled
  explicit FaultModel(FaultConfig config) : config_(config) {}

  /// The schedule parsed from NETCUT_FAULTS (disabled when unset/empty).
  /// Throws std::invalid_argument on first use if the spec is malformed.
  static const FaultModel& global();

  /// A shared always-disabled instance for explicit opt-out.
  static const FaultModel& disabled();

  bool active() const { return config_.enabled; }
  const FaultConfig& config() const { return config_; }

  /// A deterministic per-stream injector; `label` must be stable across
  /// runs (e.g. "measure/3").
  FaultStream stream(std::string_view label) const;

 private:
  FaultConfig config_;
};

}  // namespace netcut::hw
