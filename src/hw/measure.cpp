#include "hw/measure.hpp"

#include <cmath>
#include <stdexcept>

#include "util/stats.hpp"

namespace netcut::hw {

LatencyMeasurer::LatencyMeasurer(const DeviceModel& device, MeasureConfig config)
    : device_(device), config_(config) {}

double LatencyMeasurer::simulate_run_ms(double true_ms, int run_index, util::Rng& rng) const {
  const double ramp =
      1.0 + config_.cold_penalty * std::exp(-static_cast<double>(run_index) /
                                            config_.warmup_decay_runs);
  return true_ms * ramp * rng.lognormal(0.0, config_.noise_sigma);
}

Measurement LatencyMeasurer::measure_network(const nn::Graph& graph, Precision precision,
                                             bool fuse, int batch) {
  return measure_true_ms(device_.network_latency_ms(graph, precision, fuse, batch));
}

Measurement LatencyMeasurer::measure_network_from(const nn::Graph& graph, Precision precision,
                                                  bool fuse, int resume, int batch) {
  return measure_true_ms(device_.network_latency_from_ms(graph, precision, fuse, resume, batch));
}

Measurement LatencyMeasurer::measure_true_ms(double true_ms) {
  const std::string label = "measure/" + std::to_string(measurement_counter_++);
  util::Rng rng(util::derive_seed(config_.seed, label));
  const FaultModel& model = config_.faults != nullptr ? *config_.faults : FaultModel::global();

  Measurement m;
  if (!model.active()) {
    // Fault-free: the exact legacy protocol, bit-identical to before the
    // fault layer existed.
    for (int i = 0; i < config_.warmup_runs; ++i) simulate_run_ms(true_ms, i, rng);

    std::vector<double> samples;
    samples.reserve(static_cast<std::size_t>(config_.timed_runs));
    for (int i = 0; i < config_.timed_runs; ++i)
      samples.push_back(simulate_run_ms(true_ms, config_.warmup_runs + i, rng));

    m.mean_ms = util::mean(samples);
    m.stdev_ms = util::stdev(samples);
    m.min_ms = util::min_of(samples);
    m.max_ms = util::max_of(samples);
    m.median_ms = util::median(samples);
    m.runs = config_.timed_runs;
    return m;
  }

  // Fault schedule active: run the self-healing protocol. One fault stream
  // per measurement, derived from the same stable label as the noise RNG.
  FaultStream faults = model.stream(label);
  for (int i = 0; i < config_.warmup_runs; ++i) {
    faults.next(i);
    simulate_run_ms(true_ms, i, rng);
  }

  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(config_.timed_runs));
  for (int i = 0; i < config_.timed_runs; ++i) {
    const int idx = config_.warmup_runs + i;
    bool timed = false;
    double value = 0.0;
    // Bounded retry with backoff: each retry is a fresh device run at the
    // same schedule position (it consumes its own fault draw), so a
    // transient drop usually recovers within a couple of attempts.
    for (int attempt = 0; attempt <= config_.max_retries; ++attempt) {
      if (attempt > 0) ++m.retries;
      const RunFault f = faults.next(idx);
      if (!f.failed) {
        value = simulate_run_ms(true_ms, idx, rng) * f.multiplier;
        timed = true;
        break;
      }
    }
    if (timed)
      samples.push_back(value);
    else
      ++m.failed_runs;
  }
  if (samples.empty())
    throw std::runtime_error(
        "measure_network: every timed run failed under the active fault schedule");

  // MAD-based outlier rejection: spikes and burst contamination sit many
  // robust sigmas from the median and get trimmed; the aggregate is the
  // trimmed mean.
  const double med = util::median(samples);
  const double robust_sigma = 1.4826 * util::mad(samples, med);
  std::vector<double> kept;
  kept.reserve(samples.size());
  if (robust_sigma > 0.0) {
    for (double s : samples)
      if (std::abs(s - med) <= config_.mad_k * robust_sigma) kept.push_back(s);
  } else {
    kept = samples;  // degenerate spread: nothing to reject against
  }
  if (kept.empty()) kept.push_back(med);
  m.outliers_rejected = static_cast<int>(samples.size() - kept.size());

  m.mean_ms = util::mean(kept);
  m.stdev_ms = util::stdev(kept);
  m.min_ms = util::min_of(kept);
  m.max_ms = util::max_of(kept);
  m.median_ms = med;
  m.runs = static_cast<int>(kept.size());
  m.confidence = static_cast<double>(kept.size()) / static_cast<double>(config_.timed_runs);
  return m;
}

}  // namespace netcut::hw
