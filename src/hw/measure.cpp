#include "hw/measure.hpp"

#include <cmath>

#include "util/stats.hpp"

namespace netcut::hw {

LatencyMeasurer::LatencyMeasurer(const DeviceModel& device, MeasureConfig config)
    : device_(device), config_(config) {}

double LatencyMeasurer::simulate_run_ms(double true_ms, int run_index, util::Rng& rng) const {
  const double ramp =
      1.0 + config_.cold_penalty * std::exp(-static_cast<double>(run_index) /
                                            config_.warmup_decay_runs);
  return true_ms * ramp * rng.lognormal(0.0, config_.noise_sigma);
}

Measurement LatencyMeasurer::measure_network(const nn::Graph& graph, Precision precision,
                                             bool fuse) {
  const double true_ms = device_.network_latency_ms(graph, precision, fuse);
  util::Rng rng(util::derive_seed(config_.seed, "measure/" +
                                                    std::to_string(measurement_counter_++)));
  for (int i = 0; i < config_.warmup_runs; ++i) simulate_run_ms(true_ms, i, rng);

  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(config_.timed_runs));
  for (int i = 0; i < config_.timed_runs; ++i)
    samples.push_back(simulate_run_ms(true_ms, config_.warmup_runs + i, rng));

  Measurement m;
  m.mean_ms = util::mean(samples);
  m.stdev_ms = util::stdev(samples);
  m.min_ms = util::min_of(samples);
  m.max_ms = util::max_of(samples);
  m.runs = config_.timed_runs;
  return m;
}

}  // namespace netcut::hw
