// Aligned activation arena: one contiguous 64-byte-aligned float buffer the
// memory planner carves into offset slots. The arena itself does no
// lifetime bookkeeping — nn::MemoryPlan assigns non-overlapping offsets to
// tensors whose live intervals intersect, and execution binds Tensor views
// at those offsets before every planned forward pass.
//
// An arena is not thread-safe; parallel executors (the TrnEvaluator
// harvest) give every worker its own Network clone and therefore its own
// arena instance.
#pragma once

#include <cstddef>
#include <cstdint>

namespace netcut::tensor {

/// Bit pattern Arena::poison writes into slots: a signaling NaN with a
/// recognizable payload (exponent all-ones, quiet bit clear, mantissa
/// 0x25A5A5). nn::verify's runtime numerics guard scans layer outputs for
/// this exact pattern to catch use-before-write: a slot the planner bound
/// but the layer never stored to still carries the poison bits verbatim.
inline constexpr std::uint32_t kArenaPoisonBits = 0x7FA5A5A5u;

class Arena {
 public:
  Arena() = default;
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&& other) noexcept;
  Arena& operator=(Arena&& other) noexcept;

  /// Grow capacity to at least `floats` elements. Existing contents are NOT
  /// preserved and any outstanding views are invalidated, so executors
  /// reserve before binding views for a pass. Shrink requests are ignored.
  void reserve(std::size_t floats);

  std::size_t capacity() const { return capacity_; }

  /// Pointer to the slot starting `offset` floats into the buffer. The
  /// caller guarantees offset (+ slot size) <= capacity().
  float* slot(std::size_t offset) { return base_ + offset; }

  /// Fill `floats` elements starting at `offset` with kArenaPoisonBits
  /// (clamped to capacity). The runtime numerics guard poisons the planned
  /// region before a pass so unwritten reads are detectable.
  void poison(std::size_t offset, std::size_t floats);

 private:
  void release();

  float* base_ = nullptr;
  std::size_t capacity_ = 0;
};

}  // namespace netcut::tensor
