// Aligned activation arena: one contiguous 64-byte-aligned float buffer the
// memory planner carves into offset slots. The arena itself does no
// lifetime bookkeeping — nn::MemoryPlan assigns non-overlapping offsets to
// tensors whose live intervals intersect, and execution binds Tensor views
// at those offsets before every planned forward pass.
//
// An arena is not thread-safe; parallel executors (the TrnEvaluator
// harvest) give every worker its own Network clone and therefore its own
// arena instance.
#pragma once

#include <cstddef>

namespace netcut::tensor {

class Arena {
 public:
  Arena() = default;
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&& other) noexcept;
  Arena& operator=(Arena&& other) noexcept;

  /// Grow capacity to at least `floats` elements. Existing contents are NOT
  /// preserved and any outstanding views are invalidated, so executors
  /// reserve before binding views for a pass. Shrink requests are ignored.
  void reserve(std::size_t floats);

  std::size_t capacity() const { return capacity_; }

  /// Pointer to the slot starting `offset` floats into the buffer. The
  /// caller guarantees offset (+ slot size) <= capacity().
  float* slot(std::size_t offset) { return base_ + offset; }

 private:
  void release();

  float* base_ = nullptr;
  std::size_t capacity_ = 0;
};

}  // namespace netcut::tensor
