// GEMM kernels. All convolutions and dense layers lower to these via
// im2col, so this is the hot loop of the whole repository. Every entry
// point dispatches through the active KernelBackend (tensor/backend.hpp):
// scalar reference or packed simd, selected at startup (NETCUT_BACKEND).
#pragma once

#include <cstdint>

namespace netcut::tensor {

/// C[MxN] = A[MxK] * B[KxN]   (row-major, C overwritten)
void gemm(const float* a, const float* b, float* c, int m, int k, int n);

/// C[MxN] += A[MxK] * B[KxN]
void gemm_accumulate(const float* a, const float* b, float* c, int m, int k, int n);

/// C[MxN] = A^T[KxM] * B[KxN]  — A is stored KxM, used transposed.
void gemm_at(const float* a, const float* b, float* c, int m, int k, int n);

/// C[MxN] = A[MxK] * B^T[NxK]  — B is stored NxK, used transposed.
void gemm_bt(const float* a, const float* b, float* c, int m, int k, int n);

/// y[M] = A[MxN] * x[N]
void gemv(const float* a, const float* x, float* y, int m, int n);

/// y[N] = A^T[MxN] * x[M]
void gemv_t(const float* a, const float* x, float* y, int m, int n);

/// Integer GEMM for the quantized inference path:
/// C[i32, MxN] = A[s8, MxK] * B[u8, KxN], raw products with no zero-point
/// handling (callers fold the activation zero point via per-row weight
/// sums, which is exact in integer arithmetic). Bit-exact across backends.
void gemm_s8u8(const std::int8_t* a, const std::uint8_t* b, std::int32_t* c, int m, int k,
               int n);

}  // namespace netcut::tensor
