// Single-precision GEMM kernels. All convolutions and dense layers lower to
// these via im2col, so this is the hot loop of the whole repository.
#pragma once

#include <cstdint>

namespace netcut::tensor {

/// C[MxN] = A[MxK] * B[KxN]   (row-major, C overwritten)
void gemm(const float* a, const float* b, float* c, int m, int k, int n);

/// C[MxN] += A[MxK] * B[KxN]
void gemm_accumulate(const float* a, const float* b, float* c, int m, int k, int n);

/// C[MxN] = A^T[KxM] * B[KxN]  — A is stored KxM, used transposed.
void gemm_at(const float* a, const float* b, float* c, int m, int k, int n);

/// C[MxN] = A[MxK] * B^T[NxK]  — B is stored NxK, used transposed.
void gemm_bt(const float* a, const float* b, float* c, int m, int k, int n);

/// y[M] = A[MxN] * x[N]
void gemv(const float* a, const float* x, float* y, int m, int n);

/// y[N] = A^T[MxN] * x[M]
void gemv_t(const float* a, const float* x, float* y, int m, int n);

}  // namespace netcut::tensor
