#include "tensor/arena.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <new>
#include <utility>

namespace netcut::tensor {

namespace {
constexpr std::size_t kAlignBytes = 64;  // cache line; covers any vector ISA
}  // namespace

Arena::~Arena() { release(); }

Arena::Arena(Arena&& other) noexcept
    : base_(std::exchange(other.base_, nullptr)), capacity_(std::exchange(other.capacity_, 0)) {}

Arena& Arena::operator=(Arena&& other) noexcept {
  if (this != &other) {
    release();
    base_ = std::exchange(other.base_, nullptr);
    capacity_ = std::exchange(other.capacity_, 0);
  }
  return *this;
}

void Arena::release() {
  std::free(base_);
  base_ = nullptr;
  capacity_ = 0;
}

void Arena::poison(std::size_t offset, std::size_t floats) {
  if (base_ == nullptr || offset >= capacity_) return;
  const std::size_t count = std::min(floats, capacity_ - offset);
  // memcpy the bit pattern instead of assigning a float: the payload is a
  // signaling NaN and must reach memory without passing through the FPU.
  float pattern;
  static_assert(sizeof(pattern) == sizeof(kArenaPoisonBits));
  std::memcpy(&pattern, &kArenaPoisonBits, sizeof(pattern));
  std::fill(base_ + offset, base_ + offset + count, pattern);
}

void Arena::reserve(std::size_t floats) {
  if (floats <= capacity_) return;
  release();
  // aligned_alloc requires the size to be a multiple of the alignment.
  std::size_t bytes = floats * sizeof(float);
  bytes = (bytes + kAlignBytes - 1) / kAlignBytes * kAlignBytes;
  base_ = static_cast<float*>(std::aligned_alloc(kAlignBytes, bytes));
  if (base_ == nullptr) throw std::bad_alloc();
  capacity_ = bytes / sizeof(float);
}

}  // namespace netcut::tensor
