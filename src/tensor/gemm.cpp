#include "tensor/gemm.hpp"

#include <cstring>
#include <vector>

namespace netcut::tensor {

namespace {

// Cache-blocked inner kernel: processes C in row panels, keeping a B panel
// hot. With -O3 -march=native the j loop vectorizes.
void gemm_impl(const float* a, const float* b, float* c, int m, int k, int n,
               bool accumulate) {
  constexpr int kBlockK = 256;
  if (!accumulate) std::memset(c, 0, sizeof(float) * static_cast<std::size_t>(m) * n);
  for (int k0 = 0; k0 < k; k0 += kBlockK) {
    const int k1 = (k0 + kBlockK < k) ? k0 + kBlockK : k;
    for (int i = 0; i < m; ++i) {
      float* crow = c + static_cast<std::int64_t>(i) * n;
      const float* arow = a + static_cast<std::int64_t>(i) * k;
      for (int kk = k0; kk < k1; ++kk) {
        const float aik = arow[kk];
        if (aik == 0.0f) continue;
        const float* brow = b + static_cast<std::int64_t>(kk) * n;
        for (int j = 0; j < n; ++j) crow[j] += aik * brow[j];
      }
    }
  }
}

}  // namespace

void gemm(const float* a, const float* b, float* c, int m, int k, int n) {
  gemm_impl(a, b, c, m, k, n, /*accumulate=*/false);
}

void gemm_accumulate(const float* a, const float* b, float* c, int m, int k, int n) {
  gemm_impl(a, b, c, m, k, n, /*accumulate=*/true);
}

void gemm_at(const float* a, const float* b, float* c, int m, int k, int n) {
  // A stored KxM; transpose into a scratch buffer, then run the fast path.
  std::vector<float> at(static_cast<std::size_t>(m) * k);
  for (int kk = 0; kk < k; ++kk)
    for (int i = 0; i < m; ++i)
      at[static_cast<std::size_t>(i) * k + kk] = a[static_cast<std::size_t>(kk) * m + i];
  gemm_impl(at.data(), b, c, m, k, n, /*accumulate=*/false);
}

void gemm_bt(const float* a, const float* b, float* c, int m, int k, int n) {
  // B stored NxK. Dot-product formulation; both operands stream row-major.
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<std::int64_t>(i) * k;
    float* crow = c + static_cast<std::int64_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* brow = b + static_cast<std::int64_t>(j) * k;
      float s = 0.0f;
      for (int kk = 0; kk < k; ++kk) s += arow[kk] * brow[kk];
      crow[j] = s;
    }
  }
}

void gemv(const float* a, const float* x, float* y, int m, int n) {
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<std::int64_t>(i) * n;
    float s = 0.0f;
    for (int j = 0; j < n; ++j) s += arow[j] * x[j];
    y[i] = s;
  }
}

void gemv_t(const float* a, const float* x, float* y, int m, int n) {
  for (int j = 0; j < n; ++j) y[j] = 0.0f;
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<std::int64_t>(i) * n;
    const float xi = x[i];
    if (xi == 0.0f) continue;
    for (int j = 0; j < n; ++j) y[j] += xi * arow[j];
  }
}

}  // namespace netcut::tensor
