#include "tensor/gemm.hpp"

#include <vector>

#include "tensor/backend.hpp"

namespace netcut::tensor {

// Every kernel routes through the active KernelBackend (tensor/backend.hpp);
// the transposed variants keep their packing treatment here — packing into a
// contiguous layout costs O(k*n) moves against O(m*k*n) math and is what
// lets both backends take their fast row-streaming path.

void gemm(const float* a, const float* b, float* c, int m, int k, int n) {
  active_backend().gemm(a, b, c, m, k, n, /*accumulate=*/false);
}

void gemm_accumulate(const float* a, const float* b, float* c, int m, int k, int n) {
  active_backend().gemm(a, b, c, m, k, n, /*accumulate=*/true);
}

void gemm_at(const float* a, const float* b, float* c, int m, int k, int n) {
  // A stored KxM; transpose into a reusable thread-local buffer (this runs
  // on every Conv2D::backward), then take the fast path.
  static thread_local std::vector<float> at;
  const std::size_t need = static_cast<std::size_t>(m) * static_cast<std::size_t>(k);
  if (at.size() < need) at.resize(need);
  for (int kk = 0; kk < k; ++kk)
    for (int i = 0; i < m; ++i)
      at[static_cast<std::size_t>(i) * k + kk] = a[static_cast<std::size_t>(kk) * m + i];
  active_backend().gemm(at.data(), b, c, m, k, n, /*accumulate=*/false);
}

void gemm_bt(const float* a, const float* b, float* c, int m, int k, int n) {
  // B stored NxK; pack B-transpose into a contiguous KxN buffer (exactly the
  // gemm_at treatment of A) so the product takes the fast path instead of
  // walking B column-major through k-strided loads.
  static thread_local std::vector<float> bt;
  const std::size_t need = static_cast<std::size_t>(k) * static_cast<std::size_t>(n);
  if (bt.size() < need) bt.resize(need);
  for (int j = 0; j < n; ++j)
    for (int kk = 0; kk < k; ++kk)
      bt[static_cast<std::size_t>(kk) * n + j] = b[static_cast<std::size_t>(j) * k + kk];
  active_backend().gemm(a, bt.data(), c, m, k, n, /*accumulate=*/false);
}

void gemv(const float* a, const float* x, float* y, int m, int n) {
  active_backend().gemv(a, x, y, m, n);
}

void gemv_t(const float* a, const float* x, float* y, int m, int n) {
  active_backend().gemv_t(a, x, y, m, n);
}

void gemm_s8u8(const std::int8_t* a, const std::uint8_t* b, std::int32_t* c, int m, int k,
               int n) {
  active_backend().gemm_s8u8(a, b, c, m, k, n);
}

}  // namespace netcut::tensor
