#include "tensor/gemm.hpp"

#include <cstring>
#include <vector>

#include "util/thread_pool.hpp"

namespace netcut::tensor {

namespace {

// Blocking parameters. Rows of C are processed in panels of kRowTile so each
// streamed B row is reused kRowTile times from registers; K is blocked to
// keep the active B panel cache-resident. Parallelism splits the *panel*
// range, so every row takes the same code path (full tile vs remainder tail)
// at any thread count — a precondition for bit-identical results.
constexpr int kBlockK = 256;
constexpr int kRowTile = 4;

// Serial threshold: below this many FLOPs the pool dispatch overhead
// dominates, so kernels stay on the calling thread.
constexpr std::int64_t kParallelFlopCutoff = 1 << 16;

/// Processes C rows [i0, i1). i0 is tile-aligned unless the caller is the
/// serial path covering the whole matrix.
void gemm_rows(const float* a, const float* b, float* c, int i0, int i1, int k, int n,
               bool accumulate) {
  if (!accumulate)
    std::memset(c + static_cast<std::int64_t>(i0) * n, 0,
                sizeof(float) * static_cast<std::size_t>(i1 - i0) * static_cast<std::size_t>(n));
  for (int k0 = 0; k0 < k; k0 += kBlockK) {
    const int k1 = (k0 + kBlockK < k) ? k0 + kBlockK : k;
    int i = i0;
    for (; i + kRowTile <= i1; i += kRowTile) {
      const float* a0 = a + static_cast<std::int64_t>(i) * k;
      const float* a1 = a0 + k;
      const float* a2 = a1 + k;
      const float* a3 = a2 + k;
      float* c0 = c + static_cast<std::int64_t>(i) * n;
      float* c1 = c0 + n;
      float* c2 = c1 + n;
      float* c3 = c2 + n;
      for (int kk = k0; kk < k1; ++kk) {
        const float v0 = a0[kk];
        const float v1 = a1[kk];
        const float v2 = a2[kk];
        const float v3 = a3[kk];
        const float* brow = b + static_cast<std::int64_t>(kk) * n;
        for (int j = 0; j < n; ++j) {
          const float bj = brow[j];
          c0[j] += v0 * bj;
          c1[j] += v1 * bj;
          c2[j] += v2 * bj;
          c3[j] += v3 * bj;
        }
      }
    }
    for (; i < i1; ++i) {
      const float* arow = a + static_cast<std::int64_t>(i) * k;
      float* crow = c + static_cast<std::int64_t>(i) * n;
      for (int kk = k0; kk < k1; ++kk) {
        const float aik = arow[kk];
        const float* brow = b + static_cast<std::int64_t>(kk) * n;
        for (int j = 0; j < n; ++j) crow[j] += aik * brow[j];
      }
    }
  }
}

void gemm_impl(const float* a, const float* b, float* c, int m, int k, int n,
               bool accumulate) {
  const std::int64_t flops = 2LL * m * k * n;
  if (flops < kParallelFlopCutoff) {
    gemm_rows(a, b, c, 0, m, k, n, accumulate);
    return;
  }
  // Partition over row panels so tile/remainder row assignment is identical
  // at any thread count; grain keeps per-chunk work above the cutoff.
  const std::int64_t panels = (m + kRowTile - 1) / kRowTile;
  const std::int64_t panel_flops = 2LL * kRowTile * k * n;
  const std::int64_t grain =
      panel_flops > 0 ? (kParallelFlopCutoff + panel_flops - 1) / panel_flops : 1;
  util::parallel_for(0, panels, grain, [&](std::int64_t p0, std::int64_t p1) {
    const int i0 = static_cast<int>(p0) * kRowTile;
    int i1 = static_cast<int>(p1) * kRowTile;
    if (i1 > m) i1 = m;
    gemm_rows(a, b, c, i0, i1, k, n, accumulate);
  });
}

}  // namespace

void gemm(const float* a, const float* b, float* c, int m, int k, int n) {
  gemm_impl(a, b, c, m, k, n, /*accumulate=*/false);
}

void gemm_accumulate(const float* a, const float* b, float* c, int m, int k, int n) {
  gemm_impl(a, b, c, m, k, n, /*accumulate=*/true);
}

void gemm_at(const float* a, const float* b, float* c, int m, int k, int n) {
  // A stored KxM; transpose into a reusable thread-local buffer (this runs
  // on every Conv2D::backward), then take the fast path.
  static thread_local std::vector<float> at;
  const std::size_t need = static_cast<std::size_t>(m) * static_cast<std::size_t>(k);
  if (at.size() < need) at.resize(need);
  for (int kk = 0; kk < k; ++kk)
    for (int i = 0; i < m; ++i)
      at[static_cast<std::size_t>(i) * k + kk] = a[static_cast<std::size_t>(kk) * m + i];
  gemm_impl(at.data(), b, c, m, k, n, /*accumulate=*/false);
}

namespace {

/// One dot product with eight-lane partial sums so the reduction
/// vectorizes. The lane pattern is a function of k alone, so every c[i][j]
/// sees one fixed operation order at any thread count.
inline float dot8(const float* x, const float* y, int k) {
  float lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  int kk = 0;
  for (; kk + 8 <= k; kk += 8)
    for (int l = 0; l < 8; ++l) lanes[l] += x[kk + l] * y[kk + l];
  float s = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
            ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
  for (; kk < k; ++kk) s += x[kk] * y[kk];
  return s;
}

/// Four dot products against one shared y, fused into a single k pass so y
/// is loaded once per step. Each row's lanes see the exact update sequence
/// of dot8, so results match the remainder path bit-for-bit.
inline void dot8x4(const float* x0, const float* x1, const float* x2, const float* x3,
                   const float* y, int k, float* out, int stride) {
  float l0[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  float l1[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  float l2[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  float l3[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  int kk = 0;
  for (; kk + 8 <= k; kk += 8) {
    for (int l = 0; l < 8; ++l) {
      const float yv = y[kk + l];
      l0[l] += x0[kk + l] * yv;
      l1[l] += x1[kk + l] * yv;
      l2[l] += x2[kk + l] * yv;
      l3[l] += x3[kk + l] * yv;
    }
  }
  float s0 = ((l0[0] + l0[1]) + (l0[2] + l0[3])) + ((l0[4] + l0[5]) + (l0[6] + l0[7]));
  float s1 = ((l1[0] + l1[1]) + (l1[2] + l1[3])) + ((l1[4] + l1[5]) + (l1[6] + l1[7]));
  float s2 = ((l2[0] + l2[1]) + (l2[2] + l2[3])) + ((l2[4] + l2[5]) + (l2[6] + l2[7]));
  float s3 = ((l3[0] + l3[1]) + (l3[2] + l3[3])) + ((l3[4] + l3[5]) + (l3[6] + l3[7]));
  for (; kk < k; ++kk) {
    const float yv = y[kk];
    s0 += x0[kk] * yv;
    s1 += x1[kk] * yv;
    s2 += x2[kk] * yv;
    s3 += x3[kk] * yv;
  }
  out[0] = s0;
  out[stride] = s1;
  out[2 * stride] = s2;
  out[3 * stride] = s3;
}

}  // namespace

void gemm_bt(const float* a, const float* b, float* c, int m, int k, int n) {
  // B stored NxK. Dot-product formulation; A rows are processed in panels of
  // kRowTile so each streamed B row serves four dot products. Panels align
  // to absolute row indices (parallelism splits the panel range), and each
  // dot product has its own accumulators, so results are thread-count
  // invariant.
  auto panels_fn = [&](std::int64_t p0, std::int64_t p1) {
    const std::int64_t i0 = p0 * kRowTile;
    const std::int64_t i1 = p1 * kRowTile < m ? p1 * kRowTile : m;
    std::int64_t i = i0;
    for (; i + kRowTile <= i1; i += kRowTile) {
      const float* a0 = a + i * k;
      const float* a1 = a0 + k;
      const float* a2 = a1 + k;
      const float* a3 = a2 + k;
      float* crow = c + i * n;
      for (int j = 0; j < n; ++j)
        dot8x4(a0, a1, a2, a3, b + static_cast<std::int64_t>(j) * k, k, crow + j, n);
    }
    for (; i < i1; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * n;
      for (int j = 0; j < n; ++j)
        crow[j] = dot8(arow, b + static_cast<std::int64_t>(j) * k, k);
    }
  };
  const std::int64_t panels = (m + kRowTile - 1) / kRowTile;
  const std::int64_t flops = 2LL * m * k * n;
  if (flops < kParallelFlopCutoff) {
    panels_fn(0, panels);
    return;
  }
  const std::int64_t panel_flops = 2LL * kRowTile * k * n;
  const std::int64_t grain =
      panel_flops > 0 ? (kParallelFlopCutoff + panel_flops - 1) / panel_flops : 1;
  util::parallel_for(0, panels, grain, panels_fn);
}

void gemv(const float* a, const float* x, float* y, int m, int n) {
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<std::int64_t>(i) * n;
    float s = 0.0f;
    for (int j = 0; j < n; ++j) s += arow[j] * x[j];
    y[i] = s;
  }
}

void gemv_t(const float* a, const float* x, float* y, int m, int n) {
  for (int j = 0; j < n; ++j) y[j] = 0.0f;
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<std::int64_t>(i) * n;
    const float xi = x[i];
    if (xi == 0.0f) continue;
    for (int j = 0; j < n; ++j) y[j] += xi * arow[j];
  }
}

}  // namespace netcut::tensor
