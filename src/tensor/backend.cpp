#include "tensor/backend.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

namespace netcut::tensor {

namespace {

const KernelBackend& backend_for(BackendKind kind) {
  return kind == BackendKind::kScalar ? scalar_backend() : simd_backend();
}

// Resolved backend pointer. A relaxed racy first read is benign: every
// racer resolves the same environment to the same table.
std::atomic<const KernelBackend*> g_active{nullptr};

const KernelBackend* resolve_from_env() {
  if (const char* env = std::getenv("NETCUT_BACKEND")) {
    if (*env != '\0') return &backend_for(parse_backend(env));
  }
  return &simd_backend();
}

}  // namespace

BackendKind parse_backend(const char* s) {
  if (std::strcmp(s, "scalar") == 0) return BackendKind::kScalar;
  if (std::strcmp(s, "simd") == 0) return BackendKind::kSimd;
  throw std::invalid_argument("NETCUT_BACKEND: unknown backend '" + std::string(s) +
                              "' (expected scalar|simd)");
}

const char* backend_name(BackendKind kind) {
  return kind == BackendKind::kScalar ? "scalar" : "simd";
}

const KernelBackend& active_backend() {
  const KernelBackend* b = g_active.load(std::memory_order_acquire);
  if (b == nullptr) {
    b = resolve_from_env();
    g_active.store(b, std::memory_order_release);
  }
  return *b;
}

BackendKind active_backend_kind() {
  return &active_backend() == &scalar_backend() ? BackendKind::kScalar : BackendKind::kSimd;
}

void set_backend(BackendKind kind) {
  g_active.store(&backend_for(kind), std::memory_order_release);
}

}  // namespace netcut::tensor
