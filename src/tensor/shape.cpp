#include "tensor/shape.hpp"

#include <sstream>
#include <stdexcept>

namespace netcut::tensor {

Shape::Shape(std::initializer_list<int> dims) : dims_(dims) {
  for (int d : dims_)
    if (d <= 0) throw std::invalid_argument("Shape: non-positive dimension");
}

Shape::Shape(std::vector<int> dims) : dims_(std::move(dims)) {
  for (int d : dims_)
    if (d <= 0) throw std::invalid_argument("Shape: non-positive dimension");
}

int Shape::dim(int i) const {
  if (i < 0 || i >= rank()) throw std::out_of_range("Shape::dim: index out of range");
  return dims_[static_cast<std::size_t>(i)];
}

std::int64_t Shape::numel() const {
  std::int64_t n = 1;
  for (int d : dims_) n *= d;
  return n;
}

std::string Shape::to_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i) os << 'x';
    os << dims_[i];
  }
  os << ']';
  return os.str();
}

}  // namespace netcut::tensor
