// Tensor shapes. Activations are CHW (we run batch-free, image at a time,
// which keeps the training/inference core simple and cache-friendly on the
// single-core experiment host); weights are OIHW.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace netcut::tensor {

class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int> dims);
  explicit Shape(std::vector<int> dims);

  int rank() const { return static_cast<int>(dims_.size()); }
  int dim(int i) const;
  int operator[](int i) const { return dim(i); }

  /// Total element count (1 for rank-0).
  std::int64_t numel() const;

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  const std::vector<int>& dims() const { return dims_; }
  std::string to_string() const;

  // CHW accessors for rank-3 activation shapes.
  int channels() const { return dim(0); }
  int height() const { return dim(1); }
  int width() const { return dim(2); }

  static Shape chw(int c, int h, int w) { return Shape{c, h, w}; }
  static Shape vec(int n) { return Shape{n}; }

 private:
  std::vector<int> dims_;
};

}  // namespace netcut::tensor
