#include "tensor/tensor.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace netcut::tensor {

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

std::uint64_t tensor_alloc_count() { return g_alloc_count.load(std::memory_order_relaxed); }

void Tensor::adopt_storage() {
  ptr_ = data_.data();
  size_ = static_cast<std::int64_t>(data_.size());
  if (size_ > 0) g_alloc_count.fetch_add(1, std::memory_order_relaxed);
}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)), data_(static_cast<std::size_t>(shape_.numel()), fill) {
  adopt_storage();
}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
  if (static_cast<std::int64_t>(data_.size()) != shape_.numel())
    throw std::invalid_argument("Tensor: value count does not match shape");
  adopt_storage();
}

Tensor::Tensor(const Tensor& other) : shape_(other.shape_) {
  data_.assign(other.ptr_, other.ptr_ + other.size_);
  adopt_storage();
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  shape_ = other.shape_;
  data_.assign(other.ptr_, other.ptr_ + other.size_);
  adopt_storage();
  return *this;
}

Tensor::Tensor(Tensor&& other) noexcept {
  const bool owning = !other.data_.empty();
  shape_ = std::move(other.shape_);
  data_ = std::move(other.data_);
  ptr_ = owning ? data_.data() : other.ptr_;  // views keep their pointer
  size_ = other.size_;
  other.shape_ = Shape();
  other.data_.clear();
  other.ptr_ = nullptr;
  other.size_ = 0;
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this == &other) return *this;
  const bool owning = !other.data_.empty();
  shape_ = std::move(other.shape_);
  data_ = std::move(other.data_);
  ptr_ = owning ? data_.data() : other.ptr_;
  size_ = other.size_;
  other.shape_ = Shape();
  other.data_.clear();
  other.ptr_ = nullptr;
  other.size_ = 0;
  return *this;
}

Tensor Tensor::view(Shape shape, float* data) {
  Tensor t;
  t.shape_ = std::move(shape);
  t.ptr_ = data;
  t.size_ = t.shape_.numel();
  return t;
}

namespace {
[[noreturn]] void bad_access() { throw std::out_of_range("Tensor::at: index out of range"); }
}  // namespace

float& Tensor::at(int c, int h, int w) {
  if (shape_.rank() != 3) throw std::logic_error("Tensor::at(c,h,w) on non-rank-3 tensor");
  const int C = shape_[0], H = shape_[1], W = shape_[2];
  if (c < 0 || c >= C || h < 0 || h >= H || w < 0 || w >= W) bad_access();
  return ptr_[(static_cast<std::int64_t>(c) * H + h) * W + w];
}

float Tensor::at(int c, int h, int w) const { return const_cast<Tensor*>(this)->at(c, h, w); }

float& Tensor::at(int o, int i, int h, int w) {
  if (shape_.rank() != 4) throw std::logic_error("Tensor::at(o,i,h,w) on non-rank-4 tensor");
  const int O = shape_[0], I = shape_[1], H = shape_[2], W = shape_[3];
  if (o < 0 || o >= O || i < 0 || i >= I || h < 0 || h >= H || w < 0 || w >= W) bad_access();
  return ptr_[((static_cast<std::int64_t>(o) * I + i) * H + h) * W + w];
}

float Tensor::at(int o, int i, int h, int w) const {
  return const_cast<Tensor*>(this)->at(o, i, h, w);
}

void Tensor::fill(float v) { std::fill(ptr_, ptr_ + size_, v); }

void Tensor::copy_from(const Tensor& src) {
  if (src.size_ != size_) throw std::invalid_argument("Tensor::copy_from: size mismatch");
  if (size_ > 0 && ptr_ != src.ptr_)
    std::memcpy(ptr_, src.ptr_, sizeof(float) * static_cast<std::size_t>(size_));
}

Tensor Tensor::reshaped(Shape new_shape) const {
  if (new_shape.numel() != shape_.numel())
    throw std::invalid_argument("Tensor::reshaped: numel mismatch");
  return Tensor(std::move(new_shape), std::vector<float>(ptr_, ptr_ + size_));
}

namespace {
void require_same_numel(const Tensor& a, const Tensor& b, const char* fn) {
  if (a.numel() != b.numel())
    throw std::invalid_argument(std::string(fn) + ": size mismatch");
}
}  // namespace

Tensor& Tensor::operator+=(const Tensor& rhs) {
  require_same_numel(*this, rhs, "Tensor::operator+=");
  for (std::int64_t i = 0; i < numel(); ++i) ptr_[i] += rhs[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& rhs) {
  require_same_numel(*this, rhs, "Tensor::operator-=");
  for (std::int64_t i = 0; i < numel(); ++i) ptr_[i] -= rhs[i];
  return *this;
}

Tensor& Tensor::operator*=(float s) {
  for (std::int64_t i = 0; i < numel(); ++i) ptr_[i] *= s;
  return *this;
}

void Tensor::add_scaled(const Tensor& rhs, float s) {
  require_same_numel(*this, rhs, "Tensor::add_scaled");
  for (std::int64_t i = 0; i < numel(); ++i) ptr_[i] += s * rhs[i];
}

float Tensor::sum() const {
  double s = 0.0;
  for (std::int64_t i = 0; i < size_; ++i) s += ptr_[i];
  return static_cast<float>(s);
}

float Tensor::max() const {
  if (empty()) throw std::logic_error("Tensor::max on empty tensor");
  return *std::max_element(ptr_, ptr_ + size_);
}

float Tensor::min() const {
  if (empty()) throw std::logic_error("Tensor::min on empty tensor");
  return *std::min_element(ptr_, ptr_ + size_);
}

float Tensor::norm() const {
  double s = 0.0;
  for (std::int64_t i = 0; i < size_; ++i) s += static_cast<double>(ptr_[i]) * ptr_[i];
  return static_cast<float>(std::sqrt(s));
}

float Tensor::mean() const {
  if (empty()) throw std::logic_error("Tensor::mean on empty tensor");
  return sum() / static_cast<float>(numel());
}

Tensor Tensor::randn(Shape shape, util::Rng& rng, float stdev) {
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.normal(0.0, stdev));
  return t;
}

Tensor Tensor::uniform(Shape shape, util::Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) throw std::invalid_argument("max_abs_diff: shape mismatch");
  float m = 0.0f;
  for (std::int64_t i = 0; i < a.numel(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

}  // namespace netcut::tensor
