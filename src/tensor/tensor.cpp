#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace netcut::tensor {

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)), data_(static_cast<std::size_t>(shape_.numel()), fill) {}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
  if (static_cast<std::int64_t>(data_.size()) != shape_.numel())
    throw std::invalid_argument("Tensor: value count does not match shape");
}

namespace {
[[noreturn]] void bad_access() { throw std::out_of_range("Tensor::at: index out of range"); }
}  // namespace

float& Tensor::at(int c, int h, int w) {
  if (shape_.rank() != 3) throw std::logic_error("Tensor::at(c,h,w) on non-rank-3 tensor");
  const int C = shape_[0], H = shape_[1], W = shape_[2];
  if (c < 0 || c >= C || h < 0 || h >= H || w < 0 || w >= W) bad_access();
  return data_[static_cast<std::size_t>((static_cast<std::int64_t>(c) * H + h) * W + w)];
}

float Tensor::at(int c, int h, int w) const { return const_cast<Tensor*>(this)->at(c, h, w); }

float& Tensor::at(int o, int i, int h, int w) {
  if (shape_.rank() != 4) throw std::logic_error("Tensor::at(o,i,h,w) on non-rank-4 tensor");
  const int O = shape_[0], I = shape_[1], H = shape_[2], W = shape_[3];
  if (o < 0 || o >= O || i < 0 || i >= I || h < 0 || h >= H || w < 0 || w >= W) bad_access();
  return data_[static_cast<std::size_t>(((static_cast<std::int64_t>(o) * I + i) * H + h) * W +
                                        w)];
}

float Tensor::at(int o, int i, int h, int w) const {
  return const_cast<Tensor*>(this)->at(o, i, h, w);
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

Tensor Tensor::reshaped(Shape new_shape) const {
  if (new_shape.numel() != shape_.numel())
    throw std::invalid_argument("Tensor::reshaped: numel mismatch");
  return Tensor(std::move(new_shape), data_);
}

namespace {
void require_same_numel(const Tensor& a, const Tensor& b, const char* fn) {
  if (a.numel() != b.numel())
    throw std::invalid_argument(std::string(fn) + ": size mismatch");
}
}  // namespace

Tensor& Tensor::operator+=(const Tensor& rhs) {
  require_same_numel(*this, rhs, "Tensor::operator+=");
  for (std::int64_t i = 0; i < numel(); ++i) data_[static_cast<std::size_t>(i)] += rhs[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& rhs) {
  require_same_numel(*this, rhs, "Tensor::operator-=");
  for (std::int64_t i = 0; i < numel(); ++i) data_[static_cast<std::size_t>(i)] -= rhs[i];
  return *this;
}

Tensor& Tensor::operator*=(float s) {
  for (auto& v : data_) v *= s;
  return *this;
}

void Tensor::add_scaled(const Tensor& rhs, float s) {
  require_same_numel(*this, rhs, "Tensor::add_scaled");
  for (std::int64_t i = 0; i < numel(); ++i) data_[static_cast<std::size_t>(i)] += s * rhs[i];
}

float Tensor::sum() const {
  double s = 0.0;
  for (float v : data_) s += v;
  return static_cast<float>(s);
}

float Tensor::max() const {
  if (data_.empty()) throw std::logic_error("Tensor::max on empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::min() const {
  if (data_.empty()) throw std::logic_error("Tensor::min on empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::norm() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(s));
}

float Tensor::mean() const {
  if (data_.empty()) throw std::logic_error("Tensor::mean on empty tensor");
  return sum() / static_cast<float>(numel());
}

Tensor Tensor::randn(Shape shape, util::Rng& rng, float stdev) {
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.normal(0.0, stdev));
  return t;
}

Tensor Tensor::uniform(Shape shape, util::Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) throw std::invalid_argument("max_abs_diff: shape mismatch");
  float m = 0.0f;
  for (std::int64_t i = 0; i < a.numel(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

}  // namespace netcut::tensor
