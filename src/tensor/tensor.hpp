// Owning dense float tensor. Row-major, CHW for activations, OIHW for conv
// weights. Deliberately minimal: the nn layer zoo supplies the math.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/shape.hpp"
#include "util/rng.hpp"

namespace netcut::tensor {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape, float fill = 0.0f);
  Tensor(Shape shape, std::vector<float> values);

  const Shape& shape() const { return shape_; }
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& storage() { return data_; }
  const std::vector<float>& storage() const { return data_; }

  float& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  float operator[](std::int64_t i) const { return data_[static_cast<std::size_t>(i)]; }

  /// Bounds-checked CHW element access for rank-3 tensors.
  float& at(int c, int h, int w);
  float at(int c, int h, int w) const;
  /// Bounds-checked OIHW element access for rank-4 tensors.
  float& at(int o, int i, int h, int w);
  float at(int o, int i, int h, int w) const;

  void fill(float v);
  /// Returns a tensor with identical data but a new shape of equal numel.
  Tensor reshaped(Shape new_shape) const;

  // ---- Elementwise helpers (sizes must match) ----
  Tensor& operator+=(const Tensor& rhs);
  Tensor& operator-=(const Tensor& rhs);
  Tensor& operator*=(float s);
  void add_scaled(const Tensor& rhs, float s);  // *this += s * rhs

  float sum() const;
  float max() const;
  float min() const;
  /// L2 norm of all elements.
  float norm() const;
  /// Mean of all elements.
  float mean() const;

  // ---- Random fills (deterministic given the Rng) ----
  static Tensor randn(Shape shape, util::Rng& rng, float stdev = 1.0f);
  static Tensor uniform(Shape shape, util::Rng& rng, float lo, float hi);

 private:
  Shape shape_;
  std::vector<float> data_;
};

/// Max absolute elementwise difference; shapes must match.
float max_abs_diff(const Tensor& a, const Tensor& b);

}  // namespace netcut::tensor
