// Owning dense float tensor. Row-major, CHW for activations, OIHW for conv
// weights. Deliberately minimal: the nn layer zoo supplies the math.
//
// A tensor is either *owning* (heap storage in an internal vector) or a
// *view* over externally managed memory (an Arena slot assigned by the
// memory planner). Views never own or free their pointer. Copying any
// tensor — owning or view — materializes an owning deep copy, so a view
// handed out of a planned forward pass (e.g. a collected activation)
// detaches from the arena the moment it escapes; moves preserve view-ness.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/shape.hpp"
#include "util/rng.hpp"

namespace netcut::tensor {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape, float fill = 0.0f);
  Tensor(Shape shape, std::vector<float> values);

  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&& other) noexcept;
  Tensor& operator=(Tensor&& other) noexcept;

  /// Non-owning view over `data` (shape.numel() floats). The caller keeps
  /// the memory alive for the view's lifetime; copying the view detaches.
  static Tensor view(Shape shape, float* data);
  bool is_view() const { return ptr_ != nullptr && data_.empty(); }

  const Shape& shape() const { return shape_; }
  std::int64_t numel() const { return size_; }
  bool empty() const { return size_ == 0; }

  float* data() { return ptr_; }
  const float* data() const { return ptr_; }

  float& operator[](std::int64_t i) { return ptr_[i]; }
  float operator[](std::int64_t i) const { return ptr_[i]; }

  /// Bounds-checked CHW element access for rank-3 tensors.
  float& at(int c, int h, int w);
  float at(int c, int h, int w) const;
  /// Bounds-checked OIHW element access for rank-4 tensors.
  float& at(int o, int i, int h, int w);
  float at(int o, int i, int h, int w) const;

  void fill(float v);
  /// Copy the elements of `src` (same numel) into this tensor's existing
  /// storage, without reallocating or changing view-ness. The shape is kept.
  void copy_from(const Tensor& src);
  /// Returns a tensor with identical data but a new shape of equal numel.
  Tensor reshaped(Shape new_shape) const;

  // ---- Elementwise helpers (sizes must match) ----
  Tensor& operator+=(const Tensor& rhs);
  Tensor& operator-=(const Tensor& rhs);
  Tensor& operator*=(float s);
  void add_scaled(const Tensor& rhs, float s);  // *this += s * rhs

  float sum() const;
  float max() const;
  float min() const;
  /// L2 norm of all elements.
  float norm() const;
  /// Mean of all elements.
  float mean() const;

  // ---- Random fills (deterministic given the Rng) ----
  static Tensor randn(Shape shape, util::Rng& rng, float stdev = 1.0f);
  static Tensor uniform(Shape shape, util::Rng& rng, float lo, float hi);

 private:
  void adopt_storage();  // point ptr_/size_ at data_ and count the allocation

  Shape shape_;
  std::vector<float> data_;       // owning storage; empty for views
  float* ptr_ = nullptr;          // data_.data() or the viewed buffer
  std::int64_t size_ = 0;
};

/// Max absolute elementwise difference; shapes must match.
float max_abs_diff(const Tensor& a, const Tensor& b);

/// Process-wide count of owning tensor-storage acquisitions (constructions
/// and deep copies with numel > 0). Monotonic, thread-safe; benchmarks and
/// tests diff it around a region to count heap-allocation traffic.
std::uint64_t tensor_alloc_count();

}  // namespace netcut::tensor
