// Kernel backend dispatch: every GEMM-shaped hot kernel in the repo routes
// through a function table selected once at startup. Two backends exist:
//
//  * scalar — the register-tiled reference kernels (PR 1/2), kept verbatim
//    as the correctness oracle. fp32 comparisons against it are
//    ULP-tolerance (FMA and lane reductions legally change bits); int8
//    comparisons are bit-exact (integer sums are associative).
//  * simd   — packed-panel microkernels: AVX2/FMA intrinsics when the CPU
//    reports avx2+fma at runtime (function-multiversioned, no global ISA
//    flags), a portable `#pragma omp simd` register-tile otherwise.
//
// Selection: cpuid-driven default (simd everywhere — the portable tile is
// its own fallback), overridden by NETCUT_BACKEND=scalar|simd, overridden
// again by set_backend() (tests and netcut_cli --backend). The table is a
// process-wide atomic pointer: swap is a setup-time API and must not race
// with in-flight kernels.
#pragma once

#include <cstdint>

namespace netcut::tensor {

enum class BackendKind { kScalar, kSimd };

/// Function table for the hot kernels. fp32 entries match the free-function
/// contracts in gemm.hpp; the int8 entry computes raw products
/// C[i32, MxN] = A[s8, MxK] * B[u8, KxN] with no zero-point handling (the
/// caller folds zero points via per-row weight sums, which is exact in
/// integer arithmetic).
struct KernelBackend {
  const char* name = "?";
  void (*gemm)(const float* a, const float* b, float* c, int m, int k, int n,
               bool accumulate) = nullptr;
  void (*gemv)(const float* a, const float* x, float* y, int m, int n) = nullptr;
  void (*gemv_t)(const float* a, const float* x, float* y, int m, int n) = nullptr;
  void (*gemm_s8u8)(const std::int8_t* a, const std::uint8_t* b, std::int32_t* c, int m,
                    int k, int n) = nullptr;
};

const KernelBackend& scalar_backend();
const KernelBackend& simd_backend();

/// The backend all kernels dispatch through. First call resolves
/// NETCUT_BACKEND (throws std::invalid_argument on an unknown value);
/// default is the simd backend.
const KernelBackend& active_backend();
BackendKind active_backend_kind();

/// Force a backend (overrides the environment). Setup-time only: callers
/// guarantee no kernel is in flight on another thread.
void set_backend(BackendKind kind);

/// "scalar" -> kScalar, "simd" -> kSimd; throws std::invalid_argument
/// otherwise (netcut_cli maps that to its bad-arguments exit code).
BackendKind parse_backend(const char* s);

const char* backend_name(BackendKind kind);

/// Which implementation the simd backend dispatches to on this machine:
/// "avx2" (CPU reports avx2+fma) or "portable".
const char* simd_isa();

}  // namespace netcut::tensor
