// Scalar reference backend: the register-tiled kernels from PR 1/2, kept
// verbatim as the oracle the simd backend is tested against. "Scalar" means
// no explicit vectorization — the compiler may still auto-vectorize, but
// the arithmetic order per output element is the fixed k-ascending
// accumulation the rest of the repo's bit-identity contracts assume.
#include <cstring>
#include <vector>

#include "tensor/backend.hpp"
#include "util/thread_pool.hpp"

namespace netcut::tensor {

namespace {

// Blocking parameters. Rows of C are processed in panels of kRowTile so each
// streamed B row is reused kRowTile times from registers; K is blocked to
// keep the active B panel cache-resident. Parallelism splits the *panel*
// range, so every row takes the same code path (full tile vs remainder tail)
// at any thread count — a precondition for bit-identical results.
constexpr int kBlockK = 256;
constexpr int kRowTile = 4;

// Serial threshold: below this many FLOPs the pool dispatch overhead
// dominates, so kernels stay on the calling thread.
constexpr std::int64_t kParallelFlopCutoff = 1 << 16;

/// Processes C rows [i0, i1). i0 is tile-aligned unless the caller is the
/// serial path covering the whole matrix.
void gemm_rows(const float* a, const float* b, float* c, int i0, int i1, int k, int n,
               bool accumulate) {
  if (!accumulate)
    std::memset(c + static_cast<std::int64_t>(i0) * n, 0,
                sizeof(float) * static_cast<std::size_t>(i1 - i0) * static_cast<std::size_t>(n));
  for (int k0 = 0; k0 < k; k0 += kBlockK) {
    const int k1 = (k0 + kBlockK < k) ? k0 + kBlockK : k;
    int i = i0;
    for (; i + kRowTile <= i1; i += kRowTile) {
      const float* a0 = a + static_cast<std::int64_t>(i) * k;
      const float* a1 = a0 + k;
      const float* a2 = a1 + k;
      const float* a3 = a2 + k;
      float* c0 = c + static_cast<std::int64_t>(i) * n;
      float* c1 = c0 + n;
      float* c2 = c1 + n;
      float* c3 = c2 + n;
      for (int kk = k0; kk < k1; ++kk) {
        const float v0 = a0[kk];
        const float v1 = a1[kk];
        const float v2 = a2[kk];
        const float v3 = a3[kk];
        const float* brow = b + static_cast<std::int64_t>(kk) * n;
        for (int j = 0; j < n; ++j) {
          const float bj = brow[j];
          c0[j] += v0 * bj;
          c1[j] += v1 * bj;
          c2[j] += v2 * bj;
          c3[j] += v3 * bj;
        }
      }
    }
    for (; i < i1; ++i) {
      const float* arow = a + static_cast<std::int64_t>(i) * k;
      float* crow = c + static_cast<std::int64_t>(i) * n;
      for (int kk = k0; kk < k1; ++kk) {
        const float aik = arow[kk];
        const float* brow = b + static_cast<std::int64_t>(kk) * n;
        for (int j = 0; j < n; ++j) crow[j] += aik * brow[j];
      }
    }
  }
}

void gemm_scalar(const float* a, const float* b, float* c, int m, int k, int n,
                 bool accumulate) {
  const std::int64_t flops = 2LL * m * k * n;
  if (flops < kParallelFlopCutoff) {
    gemm_rows(a, b, c, 0, m, k, n, accumulate);
    return;
  }
  // Partition over row panels so tile/remainder row assignment is identical
  // at any thread count; grain keeps per-chunk work above the cutoff.
  const std::int64_t panels = (m + kRowTile - 1) / kRowTile;
  const std::int64_t panel_flops = 2LL * kRowTile * k * n;
  const std::int64_t grain =
      panel_flops > 0 ? (kParallelFlopCutoff + panel_flops - 1) / panel_flops : 1;
  util::parallel_for(0, panels, grain, [&](std::int64_t p0, std::int64_t p1) {
    const int i0 = static_cast<int>(p0) * kRowTile;
    int i1 = static_cast<int>(p1) * kRowTile;
    if (i1 > m) i1 = m;
    gemm_rows(a, b, c, i0, i1, k, n, accumulate);
  });
}

void gemv_scalar(const float* a, const float* x, float* y, int m, int n) {
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<std::int64_t>(i) * n;
    float s = 0.0f;
    for (int j = 0; j < n; ++j) s += arow[j] * x[j];
    y[i] = s;
  }
}

void gemv_t_scalar(const float* a, const float* x, float* y, int m, int n) {
  for (int j = 0; j < n; ++j) y[j] = 0.0f;
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<std::int64_t>(i) * n;
    const float xi = x[i];
    if (xi == 0.0f) continue;
    for (int j = 0; j < n; ++j) y[j] += xi * arow[j];
  }
}

/// Raw-product int8 GEMM reference. Row partition is race-free, and integer
/// addition is associative, so any split is bit-exact.
void gemm_s8u8_scalar(const std::int8_t* a, const std::uint8_t* b, std::int32_t* c, int m,
                      int k, int n) {
  const auto rows = [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const std::int8_t* arow = a + i * k;
      std::int32_t* crow = c + i * n;
      std::memset(crow, 0, sizeof(std::int32_t) * static_cast<std::size_t>(n));
      for (int kk = 0; kk < k; ++kk) {
        const std::int32_t av = arow[kk];
        if (av == 0) continue;
        const std::uint8_t* brow = b + static_cast<std::int64_t>(kk) * n;
        for (int j = 0; j < n; ++j) crow[j] += av * static_cast<std::int32_t>(brow[j]);
      }
    }
  };
  const std::int64_t macs = 1LL * m * k * n;
  if (macs < kParallelFlopCutoff) {
    rows(0, m);
    return;
  }
  const std::int64_t row_macs = 1LL * k * n;
  const std::int64_t grain =
      row_macs > 0 ? (kParallelFlopCutoff + row_macs - 1) / row_macs : 1;
  util::parallel_for(0, m, grain, [&](std::int64_t i0, std::int64_t i1) { rows(i0, i1); });
}

}  // namespace

const KernelBackend& scalar_backend() {
  static const KernelBackend backend{"scalar", gemm_scalar, gemv_scalar, gemv_t_scalar,
                                     gemm_s8u8_scalar};
  return backend;
}

}  // namespace netcut::tensor
