// Vectorized kernel backend: packed-panel microkernels behind the
// KernelBackend seam.
//
// fp32 GEMM follows the classic pack-and-tile scheme: B is packed once into
// column panels of kNr floats (zero-padded), each row tile of kMr rows packs
// A k-major, and the microkernel keeps the full kMr x kNr accumulator block
// in registers across the whole K loop — the scalar kernel's bottleneck is
// exactly the per-k C load/modify/store traffic this removes. The int8
// kernel packs activation columns k-pair-interleaved so one madd(u8->i16,
// s8->i16) instruction accumulates two K steps into exact i32 lanes (no
// i16 saturation: |u8 x s8| <= 255*127 and the pair sum fits i32).
//
// Two implementations live in this TU and are chosen at runtime via cpuid:
// AVX2/FMA function-multiversioned kernels (target attributes, so no global
// ISA flags are needed), and a portable register-tile relying on
// `#pragma omp simd` (-fopenmp-simd is applied to this file only; the
// pragma is advisory and compiles to correct scalar code anywhere).
//
// Determinism: row-panel partitioning mirrors the scalar backend — panel
// boundaries are multiples of the register tile, so every output element
// sees the same accumulation order at any thread count. fp32 results differ
// from the scalar backend only by FMA/reduction rounding (ULP-level, see
// DESIGN.md section 11); int8 results are bit-exact by integer associativity.
#include <cstring>
#include <vector>

#include "tensor/backend.hpp"
#include "util/thread_pool.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define NETCUT_SIMD_X86 1
#include <immintrin.h>
#define NETCUT_TARGET_AVX2 __attribute__((target("avx2,fma")))
#else
#define NETCUT_SIMD_X86 0
#endif

namespace netcut::tensor {

namespace {

constexpr int kMr = 6;   // fp32 rows per register tile
constexpr int kNr = 16;  // fp32 cols per register tile (two 8-float lanes)
constexpr int kMrI8 = 4;
constexpr int kNrI8 = 16;
constexpr std::int64_t kParallelFlopCutoff = 1 << 16;

/// Pack buffers are handed out 64-byte aligned so panel rows (64 bytes for
/// both the fp32 and int8 tiles) never straddle cache lines.
template <typename T>
T* aligned_slot(std::vector<T>& buf, std::size_t need) {
  constexpr std::size_t kAlign = 64 / sizeof(T);
  if (buf.size() < need + kAlign) buf.resize(need + kAlign);
  const std::size_t addr = reinterpret_cast<std::size_t>(buf.data());
  const std::size_t off = (64 - addr % 64) % 64 / sizeof(T);
  return buf.data() + off;
}

bool cpu_has_avx2_fma() {
#if NETCUT_SIMD_X86
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

const bool kUseAvx2 = cpu_has_avx2_fma();

// ---------------------------------------------------------------------------
// fp32 packing
// ---------------------------------------------------------------------------

/// B[KxN] -> panels of kNr columns, k-major within a panel, zero-padded:
/// dst[p * k * kNr + kk * kNr + jj] = b[kk][p * kNr + jj].
void pack_b_fp32(const float* b, int k, int n, float* dst) {
  const int panels = (n + kNr - 1) / kNr;
  for (int p = 0; p < panels; ++p) {
    const int j0 = p * kNr;
    const int jw = (j0 + kNr <= n) ? kNr : n - j0;
    float* panel = dst + static_cast<std::int64_t>(p) * k * kNr;
    for (int kk = 0; kk < k; ++kk) {
      const float* src = b + static_cast<std::int64_t>(kk) * n + j0;
      float* out = panel + static_cast<std::int64_t>(kk) * kNr;
      for (int jj = 0; jj < jw; ++jj) out[jj] = src[jj];
      for (int jj = jw; jj < kNr; ++jj) out[jj] = 0.0f;
    }
  }
}

/// Rows [i0, i0+mr) of A[MxK] -> k-major tile, zero-padded to kMr rows:
/// dst[kk * kMr + r] = a[i0 + r][kk].
void pack_a_fp32(const float* a, int k, int i0, int mr, float* dst) {
  for (int kk = 0; kk < k; ++kk) {
    float* out = dst + static_cast<std::int64_t>(kk) * kMr;
    for (int r = 0; r < mr; ++r) out[r] = a[static_cast<std::int64_t>(i0 + r) * k + kk];
    for (int r = mr; r < kMr; ++r) out[r] = 0.0f;
  }
}

// ---------------------------------------------------------------------------
// fp32 microkernels: c[kMr x kNr] (+)= ap * bp over kc steps
// ---------------------------------------------------------------------------

#if NETCUT_SIMD_X86
NETCUT_TARGET_AVX2 void micro_fp32_avx2(const float* ap, const float* bp, int kc, float* c,
                                        int ldc, bool add) {
  __m256 c00 = _mm256_setzero_ps(), c01 = _mm256_setzero_ps();
  __m256 c10 = _mm256_setzero_ps(), c11 = _mm256_setzero_ps();
  __m256 c20 = _mm256_setzero_ps(), c21 = _mm256_setzero_ps();
  __m256 c30 = _mm256_setzero_ps(), c31 = _mm256_setzero_ps();
  __m256 c40 = _mm256_setzero_ps(), c41 = _mm256_setzero_ps();
  __m256 c50 = _mm256_setzero_ps(), c51 = _mm256_setzero_ps();
  const auto step = [&](const float* bk, const float* ak) {
    const __m256 b0 = _mm256_load_ps(bk);
    const __m256 b1 = _mm256_load_ps(bk + 8);
    __m256 av;
    av = _mm256_broadcast_ss(ak + 0);
    c00 = _mm256_fmadd_ps(av, b0, c00);
    c01 = _mm256_fmadd_ps(av, b1, c01);
    av = _mm256_broadcast_ss(ak + 1);
    c10 = _mm256_fmadd_ps(av, b0, c10);
    c11 = _mm256_fmadd_ps(av, b1, c11);
    av = _mm256_broadcast_ss(ak + 2);
    c20 = _mm256_fmadd_ps(av, b0, c20);
    c21 = _mm256_fmadd_ps(av, b1, c21);
    av = _mm256_broadcast_ss(ak + 3);
    c30 = _mm256_fmadd_ps(av, b0, c30);
    c31 = _mm256_fmadd_ps(av, b1, c31);
    av = _mm256_broadcast_ss(ak + 4);
    c40 = _mm256_fmadd_ps(av, b0, c40);
    c41 = _mm256_fmadd_ps(av, b1, c41);
    av = _mm256_broadcast_ss(ak + 5);
    c50 = _mm256_fmadd_ps(av, b0, c50);
    c51 = _mm256_fmadd_ps(av, b1, c51);
  };
  int kk = 0;
  for (; kk + 4 <= kc; kk += 4) {
    const float* bk = bp + static_cast<std::int64_t>(kk) * kNr;
    const float* ak = ap + static_cast<std::int64_t>(kk) * kMr;
    step(bk, ak);
    step(bk + kNr, ak + kMr);
    step(bk + 2 * kNr, ak + 2 * kMr);
    step(bk + 3 * kNr, ak + 3 * kMr);
  }
  for (; kk < kc; ++kk)
    step(bp + static_cast<std::int64_t>(kk) * kNr, ap + static_cast<std::int64_t>(kk) * kMr);
  __m256 acc[kMr][2] = {{c00, c01}, {c10, c11}, {c20, c21}, {c30, c31}, {c40, c41}, {c50, c51}};
  for (int r = 0; r < kMr; ++r) {
    float* crow = c + static_cast<std::int64_t>(r) * ldc;
    if (add) {
      acc[r][0] = _mm256_add_ps(_mm256_loadu_ps(crow), acc[r][0]);
      acc[r][1] = _mm256_add_ps(_mm256_loadu_ps(crow + 8), acc[r][1]);
    }
    _mm256_storeu_ps(crow, acc[r][0]);
    _mm256_storeu_ps(crow + 8, acc[r][1]);
  }
}
#endif  // NETCUT_SIMD_X86

void micro_fp32_portable(const float* ap, const float* bp, int kc, float* c, int ldc,
                         bool add) {
  float acc[kMr][kNr] = {};
  for (int kk = 0; kk < kc; ++kk) {
    const float* brow = bp + static_cast<std::int64_t>(kk) * kNr;
    const float* ar = ap + static_cast<std::int64_t>(kk) * kMr;
    for (int r = 0; r < kMr; ++r) {
      const float av = ar[r];
#pragma omp simd
      for (int jj = 0; jj < kNr; ++jj) acc[r][jj] += av * brow[jj];
    }
  }
  for (int r = 0; r < kMr; ++r) {
    float* crow = c + static_cast<std::int64_t>(r) * ldc;
    if (add) {
      for (int jj = 0; jj < kNr; ++jj) crow[jj] += acc[r][jj];
    } else {
      for (int jj = 0; jj < kNr; ++jj) crow[jj] = acc[r][jj];
    }
  }
}

void micro_fp32(const float* ap, const float* bp, int kc, float* c, int ldc, bool add) {
#if NETCUT_SIMD_X86
  if (kUseAvx2) {
    micro_fp32_avx2(ap, bp, kc, c, ldc, add);
    return;
  }
#endif
  micro_fp32_portable(ap, bp, kc, c, ldc, add);
}

/// Row panel [i0, i1) of the packed-B product. i0 is a kMr multiple; the
/// only short tile is the final one, so tile assignment is identical at any
/// thread count.
void gemm_fp32_rows(const float* a, const float* bpack, float* c, int i0, int i1, int k,
                    int n, bool accumulate) {
  static thread_local std::vector<float> apack_store;
  float* apack = aligned_slot(apack_store, static_cast<std::size_t>(k) * kMr);
  const int panels = (n + kNr - 1) / kNr;
  float buf[kMr * kNr];
  for (int i = i0; i < i1; i += kMr) {
    const int mr = (i + kMr <= i1) ? kMr : i1 - i;
    pack_a_fp32(a, k, i, mr, apack);
    for (int p = 0; p < panels; ++p) {
      const int j0 = p * kNr;
      const int jw = (j0 + kNr <= n) ? kNr : n - j0;
      const float* bpanel = bpack + static_cast<std::int64_t>(p) * k * kNr;
      float* ctile = c + static_cast<std::int64_t>(i) * n + j0;
      if (mr == kMr && jw == kNr) {
        micro_fp32(apack, bpanel, k, ctile, n, accumulate);
        continue;
      }
      micro_fp32(apack, bpanel, k, buf, kNr, /*add=*/false);
      for (int r = 0; r < mr; ++r) {
        float* crow = ctile + static_cast<std::int64_t>(r) * n;
        const float* brow = buf + static_cast<std::int64_t>(r) * kNr;
        if (accumulate) {
          for (int jj = 0; jj < jw; ++jj) crow[jj] += brow[jj];
        } else {
          for (int jj = 0; jj < jw; ++jj) crow[jj] = brow[jj];
        }
      }
    }
  }
}

void gemm_simd(const float* a, const float* b, float* c, int m, int k, int n,
               bool accumulate) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    // Degenerate contraction: the product is all zeros.
    if (!accumulate)
      std::memset(c, 0, sizeof(float) * static_cast<std::size_t>(m) * static_cast<std::size_t>(n));
    return;
  }
  // Pack B once on the calling thread (deterministic), shared read-only by
  // every row-panel worker.
  static thread_local std::vector<float> bpack_store;
  const int bpanels = (n + kNr - 1) / kNr;
  float* bpack = aligned_slot(
      bpack_store, static_cast<std::size_t>(bpanels) * static_cast<std::size_t>(k) * kNr);
  pack_b_fp32(b, k, n, bpack);

  const std::int64_t flops = 2LL * m * k * n;
  if (flops < kParallelFlopCutoff) {
    gemm_fp32_rows(a, bpack, c, 0, m, k, n, accumulate);
    return;
  }
  const std::int64_t panels = (m + kMr - 1) / kMr;
  const std::int64_t panel_flops = 2LL * kMr * k * n;
  const std::int64_t grain =
      panel_flops > 0 ? (kParallelFlopCutoff + panel_flops - 1) / panel_flops : 1;
  const float* bp = bpack;
  util::parallel_for(0, panels, grain, [&](std::int64_t p0, std::int64_t p1) {
    const int i0 = static_cast<int>(p0) * kMr;
    int i1 = static_cast<int>(p1) * kMr;
    if (i1 > m) i1 = m;
    gemm_fp32_rows(a, bp, c, i0, i1, k, n, accumulate);
  });
}

// ---------------------------------------------------------------------------
// fp32 GEMV
// ---------------------------------------------------------------------------

#if NETCUT_SIMD_X86
NETCUT_TARGET_AVX2 void gemv_avx2(const float* a, const float* x, float* y, int m, int n) {
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<std::int64_t>(i) * n;
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    int j = 0;
    for (; j + 16 <= n; j += 16) {
      acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(arow + j), _mm256_loadu_ps(x + j), acc0);
      acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(arow + j + 8), _mm256_loadu_ps(x + j + 8), acc1);
    }
    acc0 = _mm256_add_ps(acc0, acc1);
    __m128 lo = _mm256_castps256_ps128(acc0);
    lo = _mm_add_ps(lo, _mm256_extractf128_ps(acc0, 1));
    lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
    lo = _mm_add_ss(lo, _mm_shuffle_ps(lo, lo, 1));
    float s = _mm_cvtss_f32(lo);
    for (; j < n; ++j) s += arow[j] * x[j];
    y[i] = s;
  }
}

NETCUT_TARGET_AVX2 void gemv_t_avx2(const float* a, const float* x, float* y, int m, int n) {
  std::memset(y, 0, sizeof(float) * static_cast<std::size_t>(n));
  for (int i = 0; i < m; ++i) {
    const float xi = x[i];
    if (xi == 0.0f) continue;  // dense backward feeds ReLU-sparse gradients
    const float* arow = a + static_cast<std::int64_t>(i) * n;
    const __m256 xv = _mm256_set1_ps(xi);
    int j = 0;
    for (; j + 8 <= n; j += 8)
      _mm256_storeu_ps(y + j, _mm256_fmadd_ps(xv, _mm256_loadu_ps(arow + j),
                                              _mm256_loadu_ps(y + j)));
    for (; j < n; ++j) y[j] += xi * arow[j];
  }
}
#endif  // NETCUT_SIMD_X86

void gemv_portable(const float* a, const float* x, float* y, int m, int n) {
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<std::int64_t>(i) * n;
    float s = 0.0f;
#pragma omp simd reduction(+ : s)
    for (int j = 0; j < n; ++j) s += arow[j] * x[j];
    y[i] = s;
  }
}

void gemv_t_portable(const float* a, const float* x, float* y, int m, int n) {
  std::memset(y, 0, sizeof(float) * static_cast<std::size_t>(n));
  for (int i = 0; i < m; ++i) {
    const float xi = x[i];
    if (xi == 0.0f) continue;
    const float* arow = a + static_cast<std::int64_t>(i) * n;
#pragma omp simd
    for (int j = 0; j < n; ++j) y[j] += xi * arow[j];
  }
}

void gemv_simd(const float* a, const float* x, float* y, int m, int n) {
#if NETCUT_SIMD_X86
  if (kUseAvx2) {
    gemv_avx2(a, x, y, m, n);
    return;
  }
#endif
  gemv_portable(a, x, y, m, n);
}

void gemv_t_simd(const float* a, const float* x, float* y, int m, int n) {
#if NETCUT_SIMD_X86
  if (kUseAvx2) {
    gemv_t_avx2(a, x, y, m, n);
    return;
  }
#endif
  gemv_t_portable(a, x, y, m, n);
}

// ---------------------------------------------------------------------------
// int8: C[i32, MxN] = A[s8, MxK] * B[u8, KxN], raw products
// ---------------------------------------------------------------------------

/// B -> panels of kNrI8 columns with K-pair interleaving, zero-padded both
/// ways: dst[p * kpairs * 32 + kp * 32 + jj * 2 + parity] = b[2*kp+parity][j0+jj].
/// Adjacent i16 lanes after cvtepu8_epi16 then hold (b[k][j], b[k+1][j]) —
/// exactly the operand layout one madd_epi16 contracts.
void pack_b_s8u8(const std::uint8_t* b, int k, int n, std::uint8_t* dst) {
  const int panels = (n + kNrI8 - 1) / kNrI8;
  const int kpairs = (k + 1) / 2;
  for (int p = 0; p < panels; ++p) {
    const int j0 = p * kNrI8;
    const int jw = (j0 + kNrI8 <= n) ? kNrI8 : n - j0;
    std::uint8_t* panel = dst + static_cast<std::int64_t>(p) * kpairs * 2 * kNrI8;
    for (int kp = 0; kp < kpairs; ++kp) {
      std::uint8_t* out = panel + static_cast<std::int64_t>(kp) * 2 * kNrI8;
      const std::uint8_t* b0 = b + static_cast<std::int64_t>(2 * kp) * n + j0;
      const bool has_hi = 2 * kp + 1 < k;
      const std::uint8_t* b1 = has_hi ? b0 + n : nullptr;
      for (int jj = 0; jj < jw; ++jj) {
        out[jj * 2 + 0] = b0[jj];
        out[jj * 2 + 1] = has_hi ? b1[jj] : 0;
      }
      for (int jj = jw; jj < kNrI8; ++jj) {
        out[jj * 2 + 0] = 0;
        out[jj * 2 + 1] = 0;
      }
    }
  }
}

/// Weight rows [i0, i0+mi) -> per-k-pair i32 words: low i16 = a[r][2kp],
/// high i16 = a[r][2kp+1] (0 past the K tail), zero rows past mi.
void pack_a_s8u8(const std::int8_t* a, int k, int i0, int mi, std::int32_t* dst) {
  const int kpairs = (k + 1) / 2;
  for (int kp = 0; kp < kpairs; ++kp) {
    std::int32_t* out = dst + static_cast<std::int64_t>(kp) * kMrI8;
    for (int r = 0; r < kMrI8; ++r) {
      std::int32_t lo = 0, hi = 0;
      if (r < mi) {
        const std::int8_t* arow = a + static_cast<std::int64_t>(i0 + r) * k;
        lo = arow[2 * kp];
        hi = (2 * kp + 1 < k) ? arow[2 * kp + 1] : 0;
      }
      out[r] = static_cast<std::int32_t>((static_cast<std::uint32_t>(lo) & 0xFFFFu) |
                                         (static_cast<std::uint32_t>(hi) << 16));
    }
  }
}

#if NETCUT_SIMD_X86
NETCUT_TARGET_AVX2 void micro_s8u8_avx2(const std::int32_t* ap, const std::uint8_t* bp,
                                        int kpairs, std::int32_t* c, int ldc) {
  __m256i acc[kMrI8][2];
  for (int r = 0; r < kMrI8; ++r) {
    acc[r][0] = _mm256_setzero_si256();
    acc[r][1] = _mm256_setzero_si256();
  }
  for (int kp = 0; kp < kpairs; ++kp) {
    const std::uint8_t* brow = bp + static_cast<std::int64_t>(kp) * 2 * kNrI8;
    // 16 interleaved bytes -> 16 i16 lanes: pairs (b[k][j], b[k+1][j]).
    const __m256i b0 = _mm256_cvtepu8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(brow)));
    const __m256i b1 = _mm256_cvtepu8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(brow + kNrI8)));
    const std::int32_t* arow = ap + static_cast<std::int64_t>(kp) * kMrI8;
    for (int r = 0; r < kMrI8; ++r) {
      const __m256i wv = _mm256_set1_epi32(arow[r]);
      acc[r][0] = _mm256_add_epi32(acc[r][0], _mm256_madd_epi16(b0, wv));
      acc[r][1] = _mm256_add_epi32(acc[r][1], _mm256_madd_epi16(b1, wv));
    }
  }
  for (int r = 0; r < kMrI8; ++r) {
    std::int32_t* crow = c + static_cast<std::int64_t>(r) * ldc;
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow), acc[r][0]);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow + 8), acc[r][1]);
  }
}
#endif  // NETCUT_SIMD_X86

void micro_s8u8_portable(const std::int32_t* ap, const std::uint8_t* bp, int kpairs,
                         std::int32_t* c, int ldc) {
  std::int32_t acc[kMrI8][kNrI8] = {};
  for (int kp = 0; kp < kpairs; ++kp) {
    const std::uint8_t* brow = bp + static_cast<std::int64_t>(kp) * 2 * kNrI8;
    const std::int32_t* arow = ap + static_cast<std::int64_t>(kp) * kMrI8;
    for (int r = 0; r < kMrI8; ++r) {
      const std::int32_t lo = static_cast<std::int16_t>(arow[r] & 0xFFFF);
      const std::int32_t hi = static_cast<std::int16_t>(
          static_cast<std::uint32_t>(arow[r]) >> 16);
#pragma omp simd
      for (int jj = 0; jj < kNrI8; ++jj)
        acc[r][jj] += lo * brow[jj * 2] + hi * brow[jj * 2 + 1];
    }
  }
  for (int r = 0; r < kMrI8; ++r) {
    std::int32_t* crow = c + static_cast<std::int64_t>(r) * ldc;
    for (int jj = 0; jj < kNrI8; ++jj) crow[jj] = acc[r][jj];
  }
}

void micro_s8u8(const std::int32_t* ap, const std::uint8_t* bp, int kpairs, std::int32_t* c,
                int ldc) {
#if NETCUT_SIMD_X86
  if (kUseAvx2) {
    micro_s8u8_avx2(ap, bp, kpairs, c, ldc);
    return;
  }
#endif
  micro_s8u8_portable(ap, bp, kpairs, c, ldc);
}

void gemm_s8u8_rows(const std::int8_t* a, const std::uint8_t* bpack, std::int32_t* c, int i0,
                    int i1, int k, int n) {
  static thread_local std::vector<std::int32_t> apack_store;
  const int kpairs = (k + 1) / 2;
  std::int32_t* apack =
      aligned_slot(apack_store, static_cast<std::size_t>(kpairs) * kMrI8);
  const int panels = (n + kNrI8 - 1) / kNrI8;
  std::int32_t buf[kMrI8 * kNrI8];
  for (int i = i0; i < i1; i += kMrI8) {
    const int mi = (i + kMrI8 <= i1) ? kMrI8 : i1 - i;
    pack_a_s8u8(a, k, i, mi, apack);
    for (int p = 0; p < panels; ++p) {
      const int j0 = p * kNrI8;
      const int jw = (j0 + kNrI8 <= n) ? kNrI8 : n - j0;
      const std::uint8_t* bpanel =
          bpack + static_cast<std::int64_t>(p) * kpairs * 2 * kNrI8;
      std::int32_t* ctile = c + static_cast<std::int64_t>(i) * n + j0;
      if (mi == kMrI8 && jw == kNrI8) {
        micro_s8u8(apack, bpanel, kpairs, ctile, n);
        continue;
      }
      micro_s8u8(apack, bpanel, kpairs, buf, kNrI8);
      for (int r = 0; r < mi; ++r) {
        std::int32_t* crow = ctile + static_cast<std::int64_t>(r) * n;
        const std::int32_t* brow = buf + static_cast<std::int64_t>(r) * kNrI8;
        for (int jj = 0; jj < jw; ++jj) crow[jj] = brow[jj];
      }
    }
  }
}

void gemm_s8u8_simd(const std::int8_t* a, const std::uint8_t* b, std::int32_t* c, int m,
                    int k, int n) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    std::memset(c, 0,
                sizeof(std::int32_t) * static_cast<std::size_t>(m) * static_cast<std::size_t>(n));
    return;
  }
  static thread_local std::vector<std::uint8_t> bpack_store;
  const int panels = (n + kNrI8 - 1) / kNrI8;
  const int kpairs = (k + 1) / 2;
  std::uint8_t* bpack = aligned_slot(
      bpack_store,
      static_cast<std::size_t>(panels) * static_cast<std::size_t>(kpairs) * 2 * kNrI8);
  pack_b_s8u8(b, k, n, bpack);

  const std::int64_t macs = 1LL * m * k * n;
  if (macs < kParallelFlopCutoff) {
    gemm_s8u8_rows(a, bpack, c, 0, m, k, n);
    return;
  }
  const std::int64_t tiles = (m + kMrI8 - 1) / kMrI8;
  const std::int64_t tile_macs = 1LL * kMrI8 * k * n;
  const std::int64_t grain =
      tile_macs > 0 ? (kParallelFlopCutoff + tile_macs - 1) / tile_macs : 1;
  const std::uint8_t* bp = bpack;
  util::parallel_for(0, tiles, grain, [&](std::int64_t t0, std::int64_t t1) {
    const int i0 = static_cast<int>(t0) * kMrI8;
    int i1 = static_cast<int>(t1) * kMrI8;
    if (i1 > m) i1 = m;
    gemm_s8u8_rows(a, bp, c, i0, i1, k, n);
  });
}

}  // namespace

const char* simd_isa() { return kUseAvx2 ? "avx2" : "portable"; }

const KernelBackend& simd_backend() {
  static const KernelBackend backend{"simd", gemm_simd, gemv_simd, gemv_t_simd,
                                     gemm_s8u8_simd};
  return backend;
}

}  // namespace netcut::tensor
