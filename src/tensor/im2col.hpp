// im2col / col2im lowering for convolutions, plus the shared output-size
// arithmetic. Kernels may be rectangular (InceptionV3 uses 1x7 / 7x1
// factorized convolutions).
#pragma once

#include "tensor/tensor.hpp"

namespace netcut::tensor {

struct ConvGeometry {
  int in_c = 0, in_h = 0, in_w = 0;
  int kernel_h = 1, kernel_w = 1;
  int stride = 1;
  int pad_h = 0, pad_w = 0;  // symmetric per-axis padding
  int out_h() const { return (in_h + 2 * pad_h - kernel_h) / stride + 1; }
  int out_w() const { return (in_w + 2 * pad_w - kernel_w) / stride + 1; }
  int patch() const { return kernel_h * kernel_w; }
};

/// Pad so that out = in for stride 1 and odd kernels ("same").
int same_pad(int kernel);

/// cols has shape [in_c*kernel_h*kernel_w, out_h*out_w] (row-major).
void im2col(const float* img, const ConvGeometry& g, float* cols);

/// Scatter-add the column matrix back into an image (gradient of im2col).
/// img must be zero-initialized by the caller.
void col2im(const float* cols, const ConvGeometry& g, float* img);

/// im2col over a quantized uint8 image for the integer inference path.
/// Out-of-bounds taps are filled with `zero_point` — the quantized encoding
/// of real 0 — so the s8u8 GEMM treats padding exactly like the float
/// kernel treats zero padding.
void im2col_u8(const std::uint8_t* img, const ConvGeometry& g, std::uint8_t* cols,
               std::uint8_t zero_point);

}  // namespace netcut::tensor
