#include "tensor/im2col.hpp"

#include "util/thread_pool.hpp"

namespace netcut::tensor {

namespace {

// Channels are fully independent in both directions (channel c only touches
// its own image plane and its own block of `patch` column rows), so both
// kernels partition the channel range. Per-channel work order is unchanged,
// keeping results bit-identical at any thread count.
constexpr std::int64_t kParallelElemCutoff = 1 << 14;

void im2col_channels(const float* img, const ConvGeometry& g, float* cols, std::int64_t c0,
                     std::int64_t c1) {
  const int oh = g.out_h();
  const int ow = g.out_w();
  const int patch = g.patch();
  for (std::int64_t c = c0; c < c1; ++c) {
    const float* chan = img + c * g.in_h * g.in_w;
    for (int p = 0; p < patch; ++p) {
      const int kh = p / g.kernel_w;
      const int kw = p % g.kernel_w;
      float* row = cols + (c * patch + p) * oh * ow;
      for (int y = 0; y < oh; ++y) {
        const int iy = y * g.stride + kh - g.pad_h;
        if (iy < 0 || iy >= g.in_h) {
          for (int x = 0; x < ow; ++x) row[y * ow + x] = 0.0f;
          continue;
        }
        const float* src = chan + static_cast<std::int64_t>(iy) * g.in_w;
        for (int x = 0; x < ow; ++x) {
          const int ix = x * g.stride + kw - g.pad_w;
          row[y * ow + x] = (ix >= 0 && ix < g.in_w) ? src[ix] : 0.0f;
        }
      }
    }
  }
}

void col2im_channels(const float* cols, const ConvGeometry& g, float* img, std::int64_t c0,
                     std::int64_t c1) {
  const int oh = g.out_h();
  const int ow = g.out_w();
  const int patch = g.patch();
  for (std::int64_t c = c0; c < c1; ++c) {
    float* chan = img + c * g.in_h * g.in_w;
    for (int p = 0; p < patch; ++p) {
      const int kh = p / g.kernel_w;
      const int kw = p % g.kernel_w;
      const float* row = cols + (c * patch + p) * oh * ow;
      for (int y = 0; y < oh; ++y) {
        const int iy = y * g.stride + kh - g.pad_h;
        if (iy < 0 || iy >= g.in_h) continue;
        float* dst = chan + static_cast<std::int64_t>(iy) * g.in_w;
        for (int x = 0; x < ow; ++x) {
          const int ix = x * g.stride + kw - g.pad_w;
          if (ix >= 0 && ix < g.in_w) dst[ix] += row[y * ow + x];
        }
      }
    }
  }
}

void im2col_u8_channels(const std::uint8_t* img, const ConvGeometry& g, std::uint8_t* cols,
                        std::uint8_t zero_point, std::int64_t c0, std::int64_t c1) {
  const int oh = g.out_h();
  const int ow = g.out_w();
  const int patch = g.patch();
  for (std::int64_t c = c0; c < c1; ++c) {
    const std::uint8_t* chan = img + c * g.in_h * g.in_w;
    for (int p = 0; p < patch; ++p) {
      const int kh = p / g.kernel_w;
      const int kw = p % g.kernel_w;
      std::uint8_t* row = cols + (c * patch + p) * oh * ow;
      for (int y = 0; y < oh; ++y) {
        const int iy = y * g.stride + kh - g.pad_h;
        if (iy < 0 || iy >= g.in_h) {
          for (int x = 0; x < ow; ++x) row[y * ow + x] = zero_point;
          continue;
        }
        const std::uint8_t* src = chan + static_cast<std::int64_t>(iy) * g.in_w;
        for (int x = 0; x < ow; ++x) {
          const int ix = x * g.stride + kw - g.pad_w;
          row[y * ow + x] = (ix >= 0 && ix < g.in_w) ? src[ix] : zero_point;
        }
      }
    }
  }
}

std::int64_t channel_grain(const ConvGeometry& g) {
  const std::int64_t per_channel =
      static_cast<std::int64_t>(g.patch()) * g.out_h() * g.out_w();
  if (per_channel <= 0) return 1;
  return (kParallelElemCutoff + per_channel - 1) / per_channel;
}

}  // namespace

int same_pad(int kernel) { return (kernel - 1) / 2; }

void im2col(const float* img, const ConvGeometry& g, float* cols) {
  const std::int64_t work = static_cast<std::int64_t>(g.in_c) * g.patch() * g.out_h() * g.out_w();
  if (work < kParallelElemCutoff) {
    im2col_channels(img, g, cols, 0, g.in_c);
    return;
  }
  util::parallel_for(0, g.in_c, channel_grain(g), [&](std::int64_t c0, std::int64_t c1) {
    im2col_channels(img, g, cols, c0, c1);
  });
}

void im2col_u8(const std::uint8_t* img, const ConvGeometry& g, std::uint8_t* cols,
               std::uint8_t zero_point) {
  const std::int64_t work = static_cast<std::int64_t>(g.in_c) * g.patch() * g.out_h() * g.out_w();
  if (work < kParallelElemCutoff) {
    im2col_u8_channels(img, g, cols, zero_point, 0, g.in_c);
    return;
  }
  util::parallel_for(0, g.in_c, channel_grain(g), [&](std::int64_t c0, std::int64_t c1) {
    im2col_u8_channels(img, g, cols, zero_point, c0, c1);
  });
}

void col2im(const float* cols, const ConvGeometry& g, float* img) {
  const std::int64_t work = static_cast<std::int64_t>(g.in_c) * g.patch() * g.out_h() * g.out_w();
  if (work < kParallelElemCutoff) {
    col2im_channels(cols, g, img, 0, g.in_c);
    return;
  }
  util::parallel_for(0, g.in_c, channel_grain(g), [&](std::int64_t c0, std::int64_t c1) {
    col2im_channels(cols, g, img, c0, c1);
  });
}

}  // namespace netcut::tensor
