#include "tensor/im2col.hpp"

namespace netcut::tensor {

int same_pad(int kernel) { return (kernel - 1) / 2; }

void im2col(const float* img, const ConvGeometry& g, float* cols) {
  const int oh = g.out_h();
  const int ow = g.out_w();
  const int patch = g.patch();
  for (int c = 0; c < g.in_c; ++c) {
    const float* chan = img + static_cast<std::int64_t>(c) * g.in_h * g.in_w;
    for (int p = 0; p < patch; ++p) {
      const int kh = p / g.kernel_w;
      const int kw = p % g.kernel_w;
      float* row = cols + (static_cast<std::int64_t>(c) * patch + p) * oh * ow;
      for (int y = 0; y < oh; ++y) {
        const int iy = y * g.stride + kh - g.pad_h;
        if (iy < 0 || iy >= g.in_h) {
          for (int x = 0; x < ow; ++x) row[y * ow + x] = 0.0f;
          continue;
        }
        const float* src = chan + static_cast<std::int64_t>(iy) * g.in_w;
        for (int x = 0; x < ow; ++x) {
          const int ix = x * g.stride + kw - g.pad_w;
          row[y * ow + x] = (ix >= 0 && ix < g.in_w) ? src[ix] : 0.0f;
        }
      }
    }
  }
}

void col2im(const float* cols, const ConvGeometry& g, float* img) {
  const int oh = g.out_h();
  const int ow = g.out_w();
  const int patch = g.patch();
  for (int c = 0; c < g.in_c; ++c) {
    float* chan = img + static_cast<std::int64_t>(c) * g.in_h * g.in_w;
    for (int p = 0; p < patch; ++p) {
      const int kh = p / g.kernel_w;
      const int kw = p % g.kernel_w;
      const float* row = cols + (static_cast<std::int64_t>(c) * patch + p) * oh * ow;
      for (int y = 0; y < oh; ++y) {
        const int iy = y * g.stride + kh - g.pad_h;
        if (iy < 0 || iy >= g.in_h) continue;
        float* dst = chan + static_cast<std::int64_t>(iy) * g.in_w;
        for (int x = 0; x < ow; ++x) {
          const int ix = x * g.stride + kw - g.pad_w;
          if (ix >= 0 && ix < g.in_w) dst[ix] += row[y * ow + x];
        }
      }
    }
  }
}

}  // namespace netcut::tensor
