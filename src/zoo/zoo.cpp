#include "zoo/zoo.hpp"

#include <stdexcept>

namespace netcut::zoo {

std::vector<NetId> all_nets() {
  return {NetId::kMobileNetV1_025, NetId::kMobileNetV1_050, NetId::kMobileNetV2_100,
          NetId::kMobileNetV2_140, NetId::kInceptionV3,     NetId::kResNet50,
          NetId::kDenseNet121};
}

std::string net_name(NetId id) {
  switch (id) {
    case NetId::kMobileNetV1_025: return "MobileNetV1-0.25";
    case NetId::kMobileNetV1_050: return "MobileNetV1-0.50";
    case NetId::kMobileNetV2_100: return "MobileNetV2-1.00";
    case NetId::kMobileNetV2_140: return "MobileNetV2-1.40";
    case NetId::kInceptionV3: return "InceptionV3";
    case NetId::kResNet50: return "ResNet50";
    case NetId::kDenseNet121: return "DenseNet121";
  }
  throw std::invalid_argument("net_name: unknown net");
}

int native_resolution(NetId id) {
  return id == NetId::kInceptionV3 ? 299 : 224;
}

nn::Graph build_trunk(NetId id, int resolution) {
  switch (id) {
    case NetId::kMobileNetV1_025: return build_mobilenet_v1(0.25, resolution);
    case NetId::kMobileNetV1_050: return build_mobilenet_v1(0.50, resolution);
    case NetId::kMobileNetV2_100: return build_mobilenet_v2(1.00, resolution);
    case NetId::kMobileNetV2_140: return build_mobilenet_v2(1.40, resolution);
    case NetId::kInceptionV3: return build_inception_v3(resolution);
    case NetId::kResNet50: return build_resnet50(resolution);
    case NetId::kDenseNet121: return build_densenet121(resolution);
  }
  throw std::invalid_argument("build_trunk: unknown net");
}

}  // namespace netcut::zoo
