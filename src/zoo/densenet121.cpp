// DenseNet-121 (Huang et al., 2017): growth rate 32, dense blocks of
// (6, 12, 24, 16) layers with transition layers between them.
//
// Removal granularity: each dense layer (BN-ReLU-1x1-BN-ReLU-3x3-concat) is
// one removable block, as are the transitions and the final norm — this is
// what lets DenseNet shed >100 layers with a smooth accuracy curve (Fig 5).
#include <utility>

#include "zoo/common.hpp"
#include "zoo/zoo.hpp"

#include "nn/activation.hpp"
#include "nn/combine.hpp"
#include "nn/conv.hpp"
#include "nn/norm.hpp"
#include "nn/pooling.hpp"

namespace netcut::zoo {

namespace {

int bn_relu_conv(Graph& g, int in, int in_c, int out_c, int kernel, int stride,
                 const std::string& name, int block_id, const std::string& bname) {
  int x = g.add(std::make_unique<nn::BatchNorm>(in_c), {in}, name + "/bn", block_id, bname);
  x = g.add(std::make_unique<nn::ReLU>(false), {x}, name + "/relu", block_id, bname);
  return g.add(std::make_unique<nn::Conv2D>(in_c, out_c, kernel, stride, -1, false), {x},
               name + "/conv", block_id, bname);
}

int dense_layer(Graph& g, int in, int& in_c, int growth, int block_id,
                const std::string& bname) {
  int x = bn_relu_conv(g, in, in_c, 4 * growth, 1, 1, bname + "/squeeze", block_id, bname);
  x = bn_relu_conv(g, x, 4 * growth, growth, 3, 1, bname + "/grow", block_id, bname);
  const int cat =
      g.add(std::make_unique<nn::Concat>(2), {in, x}, bname + "/concat", block_id, bname);
  in_c += growth;
  return cat;
}

int transition(Graph& g, int in, int& in_c, int block_id, const std::string& bname) {
  const int out_c = in_c / 2;
  int x = bn_relu_conv(g, in, in_c, out_c, 1, 1, bname, block_id, bname);
  x = g.add(std::make_unique<nn::Pool2D>(nn::Pool2D::Mode::kAvg, 2, 2, 0), {x}, bname + "/pool",
            block_id, bname);
  in_c = out_c;
  return x;
}

}  // namespace

nn::Graph build_densenet121(int resolution) {
  Graph g;
  const int input = g.add_input(nn::Shape::chw(3, resolution, resolution));
  const int growth = 32;

  int x = conv_bn_act(g, input, 3, 64, 7, 2, "stem", -1, "");
  x = g.add(std::make_unique<nn::Pool2D>(nn::Pool2D::Mode::kMax, 3, 2), {x}, "stem/pool");

  const int stage_layers[] = {6, 12, 24, 16};
  int in_c = 64;
  int block_id = 0;
  for (int stage = 0; stage < 4; ++stage) {
    for (int layer = 0; layer < stage_layers[stage]; ++layer) {
      const std::string bname =
          "dense" + std::to_string(stage + 1) + "_" + std::to_string(layer + 1);
      x = dense_layer(g, x, in_c, growth, block_id, bname);
      ++block_id;
    }
    if (stage < 3) {
      const std::string bname = "transition" + std::to_string(stage + 1);
      x = transition(g, x, in_c, block_id, bname);
      ++block_id;
    }
  }

  // Final norm, its own removable block.
  x = g.add(std::make_unique<nn::BatchNorm>(in_c), {x}, "final/bn", block_id, "final_norm");
  g.add(std::make_unique<nn::ReLU>(false), {x}, "final/relu", block_id, "final_norm");
  return finish_trunk(std::move(g), "zoo/densenet121");
}

}  // namespace netcut::zoo
