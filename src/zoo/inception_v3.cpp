// InceptionV3 (Szegedy et al., 2016), same-padding adaptation so the trunk
// stays valid at the reduced experiment resolutions. 11 removable modules:
// 3x InceptionA, ReductionA, 4x InceptionB (factorized 1x7/7x1), ReductionB,
// 2x InceptionC.
#include <utility>

#include "zoo/common.hpp"
#include "zoo/zoo.hpp"

#include "nn/combine.hpp"
#include "nn/pooling.hpp"

namespace netcut::zoo {

namespace {

int avg_pool_3x3_s1(Graph& g, int in, const std::string& name, int block_id,
                    const std::string& bname) {
  return g.add(std::make_unique<nn::Pool2D>(nn::Pool2D::Mode::kAvg, 3, 1, 1), {in}, name,
               block_id, bname);
}

int inception_a(Graph& g, int in, int in_c, int pool_features, int block_id,
                const std::string& bname) {
  const int b1 = conv_bn_act(g, in, in_c, 64, 1, 1, bname + "/b1x1", block_id, bname);

  int b5 = conv_bn_act(g, in, in_c, 48, 1, 1, bname + "/b5x5_1", block_id, bname);
  b5 = conv_bn_act(g, b5, 48, 64, 5, 1, bname + "/b5x5_2", block_id, bname);

  int b3 = conv_bn_act(g, in, in_c, 64, 1, 1, bname + "/b3x3dbl_1", block_id, bname);
  b3 = conv_bn_act(g, b3, 64, 96, 3, 1, bname + "/b3x3dbl_2", block_id, bname);
  b3 = conv_bn_act(g, b3, 96, 96, 3, 1, bname + "/b3x3dbl_3", block_id, bname);

  int bp = avg_pool_3x3_s1(g, in, bname + "/pool", block_id, bname);
  bp = conv_bn_act(g, bp, in_c, pool_features, 1, 1, bname + "/pool_proj", block_id, bname);

  return g.add(std::make_unique<nn::Concat>(4), {b1, b5, b3, bp}, bname + "/concat", block_id,
               bname);
}

int reduction_a(Graph& g, int in, int in_c, int block_id, const std::string& bname) {
  const int b3 = conv_bn_act(g, in, in_c, 384, 3, 2, bname + "/b3x3", block_id, bname);

  int bd = conv_bn_act(g, in, in_c, 64, 1, 1, bname + "/b3x3dbl_1", block_id, bname);
  bd = conv_bn_act(g, bd, 64, 96, 3, 1, bname + "/b3x3dbl_2", block_id, bname);
  bd = conv_bn_act(g, bd, 96, 96, 3, 2, bname + "/b3x3dbl_3", block_id, bname);

  const int bp = g.add(std::make_unique<nn::Pool2D>(nn::Pool2D::Mode::kMax, 3, 2), {in},
                       bname + "/pool", block_id, bname);

  return g.add(std::make_unique<nn::Concat>(3), {b3, bd, bp}, bname + "/concat", block_id,
               bname);
}

int inception_b(Graph& g, int in, int in_c, int c7, int block_id, const std::string& bname) {
  const int b1 = conv_bn_act(g, in, in_c, 192, 1, 1, bname + "/b1x1", block_id, bname);

  int b7 = conv_bn_act(g, in, in_c, c7, 1, 1, bname + "/b7x7_1", block_id, bname);
  b7 = conv_bn_act_rect(g, b7, c7, c7, 1, 7, 1, bname + "/b7x7_2", block_id, bname);
  b7 = conv_bn_act_rect(g, b7, c7, 192, 7, 1, 1, bname + "/b7x7_3", block_id, bname);

  int bd = conv_bn_act(g, in, in_c, c7, 1, 1, bname + "/b7x7dbl_1", block_id, bname);
  bd = conv_bn_act_rect(g, bd, c7, c7, 7, 1, 1, bname + "/b7x7dbl_2", block_id, bname);
  bd = conv_bn_act_rect(g, bd, c7, c7, 1, 7, 1, bname + "/b7x7dbl_3", block_id, bname);
  bd = conv_bn_act_rect(g, bd, c7, c7, 7, 1, 1, bname + "/b7x7dbl_4", block_id, bname);
  bd = conv_bn_act_rect(g, bd, c7, 192, 1, 7, 1, bname + "/b7x7dbl_5", block_id, bname);

  int bp = avg_pool_3x3_s1(g, in, bname + "/pool", block_id, bname);
  bp = conv_bn_act(g, bp, in_c, 192, 1, 1, bname + "/pool_proj", block_id, bname);

  return g.add(std::make_unique<nn::Concat>(4), {b1, b7, bd, bp}, bname + "/concat", block_id,
               bname);
}

int reduction_b(Graph& g, int in, int in_c, int block_id, const std::string& bname) {
  int b3 = conv_bn_act(g, in, in_c, 192, 1, 1, bname + "/b3x3_1", block_id, bname);
  b3 = conv_bn_act(g, b3, 192, 320, 3, 2, bname + "/b3x3_2", block_id, bname);

  int b7 = conv_bn_act(g, in, in_c, 192, 1, 1, bname + "/b7x7_1", block_id, bname);
  b7 = conv_bn_act_rect(g, b7, 192, 192, 1, 7, 1, bname + "/b7x7_2", block_id, bname);
  b7 = conv_bn_act_rect(g, b7, 192, 192, 7, 1, 1, bname + "/b7x7_3", block_id, bname);
  b7 = conv_bn_act(g, b7, 192, 192, 3, 2, bname + "/b7x7_4", block_id, bname);

  const int bp = g.add(std::make_unique<nn::Pool2D>(nn::Pool2D::Mode::kMax, 3, 2), {in},
                       bname + "/pool", block_id, bname);

  return g.add(std::make_unique<nn::Concat>(3), {b3, b7, bp}, bname + "/concat", block_id,
               bname);
}

int inception_c(Graph& g, int in, int in_c, int block_id, const std::string& bname) {
  const int b1 = conv_bn_act(g, in, in_c, 320, 1, 1, bname + "/b1x1", block_id, bname);

  int b3 = conv_bn_act(g, in, in_c, 384, 1, 1, bname + "/b3x3_1", block_id, bname);
  const int b3a = conv_bn_act_rect(g, b3, 384, 384, 1, 3, 1, bname + "/b3x3_2a", block_id, bname);
  const int b3b = conv_bn_act_rect(g, b3, 384, 384, 3, 1, 1, bname + "/b3x3_2b", block_id, bname);
  const int b3cat = g.add(std::make_unique<nn::Concat>(2), {b3a, b3b}, bname + "/b3x3_concat",
                          block_id, bname);

  int bd = conv_bn_act(g, in, in_c, 448, 1, 1, bname + "/b3x3dbl_1", block_id, bname);
  bd = conv_bn_act(g, bd, 448, 384, 3, 1, bname + "/b3x3dbl_2", block_id, bname);
  const int bda =
      conv_bn_act_rect(g, bd, 384, 384, 1, 3, 1, bname + "/b3x3dbl_3a", block_id, bname);
  const int bdb =
      conv_bn_act_rect(g, bd, 384, 384, 3, 1, 1, bname + "/b3x3dbl_3b", block_id, bname);
  const int bdcat = g.add(std::make_unique<nn::Concat>(2), {bda, bdb},
                          bname + "/b3x3dbl_concat", block_id, bname);

  int bp = avg_pool_3x3_s1(g, in, bname + "/pool", block_id, bname);
  bp = conv_bn_act(g, bp, in_c, 192, 1, 1, bname + "/pool_proj", block_id, bname);

  return g.add(std::make_unique<nn::Concat>(4), {b1, b3cat, bdcat, bp}, bname + "/concat",
               block_id, bname);
}

}  // namespace

nn::Graph build_inception_v3(int resolution) {
  Graph g;
  const int input = g.add_input(nn::Shape::chw(3, resolution, resolution));

  // Stem (block id -1: never removed).
  int x = conv_bn_act(g, input, 3, 32, 3, 2, "stem/conv1", -1, "");
  x = conv_bn_act(g, x, 32, 32, 3, 1, "stem/conv2", -1, "");
  x = conv_bn_act(g, x, 32, 64, 3, 1, "stem/conv3", -1, "");
  x = g.add(std::make_unique<nn::Pool2D>(nn::Pool2D::Mode::kMax, 3, 2), {x}, "stem/pool1");
  x = conv_bn_act(g, x, 64, 80, 1, 1, "stem/conv4", -1, "");
  x = conv_bn_act(g, x, 80, 192, 3, 1, "stem/conv5", -1, "");
  x = g.add(std::make_unique<nn::Pool2D>(nn::Pool2D::Mode::kMax, 3, 2), {x}, "stem/pool2");

  int block = 0;
  x = inception_a(g, x, 192, 32, block, "mixed" + std::to_string(block)); ++block;  // 256
  x = inception_a(g, x, 256, 64, block, "mixed" + std::to_string(block)); ++block;  // 288
  x = inception_a(g, x, 288, 64, block, "mixed" + std::to_string(block)); ++block;  // 288
  x = reduction_a(g, x, 288, block, "mixed" + std::to_string(block)); ++block;      // 768
  x = inception_b(g, x, 768, 128, block, "mixed" + std::to_string(block)); ++block;
  x = inception_b(g, x, 768, 160, block, "mixed" + std::to_string(block)); ++block;
  x = inception_b(g, x, 768, 160, block, "mixed" + std::to_string(block)); ++block;
  x = inception_b(g, x, 768, 192, block, "mixed" + std::to_string(block)); ++block;
  x = reduction_b(g, x, 768, block, "mixed" + std::to_string(block)); ++block;      // 1280
  x = inception_c(g, x, 1280, block, "mixed" + std::to_string(block)); ++block;     // 2048
  x = inception_c(g, x, 2048, block, "mixed" + std::to_string(block)); ++block;     // 2048
  return finish_trunk(std::move(g), "zoo/inception_v3");
}

}  // namespace netcut::zoo
