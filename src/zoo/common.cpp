#include "zoo/common.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "nn/activation.hpp"
#include "nn/conv.hpp"
#include "nn/norm.hpp"
#include "nn/verify.hpp"

namespace netcut::zoo {

int make_divisible(double value, int divisor) {
  int v = std::max(divisor, static_cast<int>(std::round(value / divisor)) * divisor);
  if (static_cast<double>(v) < 0.9 * value) v += divisor;
  return v;
}

int conv_bn_act(Graph& g, int in, int in_c, int out_c, int kernel, int stride,
                const std::string& name, int block_id, const std::string& block_name,
                bool relu6) {
  const int conv = g.add(std::make_unique<nn::Conv2D>(in_c, out_c, kernel, stride, -1, false),
                         {in}, name + "/conv", block_id, block_name);
  const int bn =
      g.add(std::make_unique<nn::BatchNorm>(out_c), {conv}, name + "/bn", block_id, block_name);
  return g.add(std::make_unique<nn::ReLU>(relu6), {bn}, name + "/act", block_id, block_name);
}

int conv_bn_act_rect(Graph& g, int in, int in_c, int out_c, int kh, int kw, int stride,
                     const std::string& name, int block_id, const std::string& block_name) {
  const int conv = g.add(std::make_unique<nn::Conv2D>(in_c, out_c, kh, kw, stride, (kh - 1) / 2,
                                                      (kw - 1) / 2, false),
                         {in}, name + "/conv", block_id, block_name);
  const int bn =
      g.add(std::make_unique<nn::BatchNorm>(out_c), {conv}, name + "/bn", block_id, block_name);
  return g.add(std::make_unique<nn::ReLU>(false), {bn}, name + "/act", block_id, block_name);
}

int conv_bn(Graph& g, int in, int in_c, int out_c, int kernel, int stride,
            const std::string& name, int block_id, const std::string& block_name) {
  const int conv = g.add(std::make_unique<nn::Conv2D>(in_c, out_c, kernel, stride, -1, false),
                         {in}, name + "/conv", block_id, block_name);
  return g.add(std::make_unique<nn::BatchNorm>(out_c), {conv}, name + "/bn", block_id,
               block_name);
}

int dwconv_bn_act(Graph& g, int in, int channels, int stride, const std::string& name,
                  int block_id, const std::string& block_name, bool relu6) {
  const int conv = g.add(std::make_unique<nn::DepthwiseConv2D>(channels, 3, stride, -1, false),
                         {in}, name + "/dwconv", block_id, block_name);
  const int bn = g.add(std::make_unique<nn::BatchNorm>(channels), {conv}, name + "/bn", block_id,
                       block_name);
  return g.add(std::make_unique<nn::ReLU>(relu6), {bn}, name + "/act", block_id, block_name);
}

Graph finish_trunk(Graph&& g, const char* builder) {
  nn::check_graph(g, builder);
  return std::move(g);
}

}  // namespace netcut::zoo
