// MobileNetV1 (Howard et al., 2017) with width multiplier alpha.
// Structure: stem conv, then 13 depthwise-separable blocks. Each separable
// block (dw 3x3 + pw 1x1, both BN+ReLU6) is one removable block.
#include <utility>

#include "zoo/common.hpp"
#include "zoo/zoo.hpp"

namespace netcut::zoo {

nn::Graph build_mobilenet_v1(double alpha, int resolution) {
  Graph g;
  const int input = g.add_input(nn::Shape::chw(3, resolution, resolution));

  auto ch = [alpha](int base) { return make_divisible(base * alpha); };

  int x = conv_bn_act(g, input, 3, ch(32), 3, 2, "stem", -1, "", /*relu6=*/true);
  int in_c = ch(32);

  struct BlockDef {
    int out;
    int stride;
  };
  const BlockDef defs[] = {
      {64, 1},  {128, 2}, {128, 1}, {256, 2},  {256, 1},  {512, 2}, {512, 1},
      {512, 1}, {512, 1}, {512, 1}, {512, 1},  {1024, 2}, {1024, 1},
  };

  int block_id = 0;
  for (const BlockDef& d : defs) {
    const std::string bname = "sep" + std::to_string(block_id + 1);
    x = dwconv_bn_act(g, x, in_c, d.stride, bname, block_id, bname, /*relu6=*/true);
    x = conv_bn_act(g, x, in_c, ch(d.out), 1, 1, bname + "/pw", block_id, bname,
                    /*relu6=*/true);
    in_c = ch(d.out);
    ++block_id;
  }
  return finish_trunk(std::move(g), "zoo/mobilenet_v1");
}

}  // namespace netcut::zoo
