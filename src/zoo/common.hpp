// Shared builder helpers for the model zoo.
//
// Every builder produces a *trunk*: the convolutional feature extractor up
// to (and including) the final block, with the original classification
// layers removed — exactly the starting point the paper uses for transfer
// learning. Heads are attached by core::attach_head.
//
// Nodes belonging to a repeating architectural module carry that module's
// block id; stem nodes carry block id -1 and are never removed.
#pragma once

#include <memory>
#include <string>

#include "nn/graph.hpp"

namespace netcut::zoo {

using nn::Graph;

/// TensorFlow-style channel rounding: nearest multiple of `divisor`,
/// never dropping below 90% of the requested value.
int make_divisible(double value, int divisor = 8);

/// Conv -> BatchNorm -> activation. Returns the id of the activation node.
/// relu6 selects ReLU6 (MobileNet family); otherwise plain ReLU.
int conv_bn_act(Graph& g, int in, int in_c, int out_c, int kernel, int stride,
                const std::string& name, int block_id, const std::string& block_name,
                bool relu6 = false);

/// Rectangular variant (InceptionV3 factorized convolutions).
int conv_bn_act_rect(Graph& g, int in, int in_c, int out_c, int kh, int kw, int stride,
                     const std::string& name, int block_id, const std::string& block_name);

/// Conv -> BatchNorm (no activation; MobileNetV2 linear bottleneck
/// projections, ResNet pre-addition branches).
int conv_bn(Graph& g, int in, int in_c, int out_c, int kernel, int stride,
            const std::string& name, int block_id, const std::string& block_name);

/// DepthwiseConv -> BatchNorm -> activation.
int dwconv_bn_act(Graph& g, int in, int channels, int stride, const std::string& name,
                  int block_id, const std::string& block_name, bool relu6 = false);

/// Verify-on-build gate every zoo builder returns through: runs the
/// nn::verify structural lint over the finished trunk (no-op when
/// NETCUT_VERIFY=0) and hands the graph back.
Graph finish_trunk(Graph&& g, const char* builder);

}  // namespace netcut::zoo
