// ResNet-50 (He et al., 2016), v1.5 variant (stride on the 3x3 conv).
// 16 bottleneck residual blocks in stages of (3, 4, 6, 3); each bottleneck
// is one removable block.
#include <utility>

#include "zoo/common.hpp"
#include "zoo/zoo.hpp"

#include "nn/activation.hpp"
#include "nn/combine.hpp"
#include "nn/pooling.hpp"

namespace netcut::zoo {

namespace {

int bottleneck(Graph& g, int in, int& in_c, int mid_c, int stride, int block_id,
               const std::string& bname) {
  const int out_c = mid_c * 4;

  int x = conv_bn_act(g, in, in_c, mid_c, 1, 1, bname + "/reduce", block_id, bname);
  x = conv_bn_act(g, x, mid_c, mid_c, 3, stride, bname + "/conv3x3", block_id, bname);
  x = conv_bn(g, x, mid_c, out_c, 1, 1, bname + "/expand", block_id, bname);

  int shortcut = in;
  if (stride != 1 || in_c != out_c)
    shortcut = conv_bn(g, in, in_c, out_c, 1, stride, bname + "/shortcut", block_id, bname);

  const int sum =
      g.add(std::make_unique<nn::Add>(2), {shortcut, x}, bname + "/add", block_id, bname);
  in_c = out_c;
  return g.add(std::make_unique<nn::ReLU>(false), {sum}, bname + "/out", block_id, bname);
}

}  // namespace

nn::Graph build_resnet50(int resolution) {
  Graph g;
  const int input = g.add_input(nn::Shape::chw(3, resolution, resolution));

  int x = conv_bn_act(g, input, 3, 64, 7, 2, "stem", -1, "");
  x = g.add(std::make_unique<nn::Pool2D>(nn::Pool2D::Mode::kMax, 3, 2), {x}, "stem/pool");

  const int stage_blocks[] = {3, 4, 6, 3};
  const int stage_mid[] = {64, 128, 256, 512};

  int in_c = 64;
  int block_id = 0;
  for (int stage = 0; stage < 4; ++stage) {
    for (int rep = 0; rep < stage_blocks[stage]; ++rep) {
      const int stride = (stage > 0 && rep == 0) ? 2 : 1;
      const std::string bname =
          "res" + std::to_string(stage + 2) + static_cast<char>('a' + rep);
      x = bottleneck(g, x, in_c, stage_mid[stage], stride, block_id, bname);
      ++block_id;
    }
  }
  return finish_trunk(std::move(g), "zoo/resnet50");
}

}  // namespace netcut::zoo
