// MobileNetV2 (Sandler et al., 2018) with width multiplier alpha.
// Structure: stem conv, 17 inverted-residual bottlenecks from the standard
// (t, c, n, s) table, and a final 1x1 feature conv. Each bottleneck is a
// removable block; the final conv is the last removable block.
#include <utility>

#include "zoo/common.hpp"
#include "zoo/zoo.hpp"

#include "nn/combine.hpp"

namespace netcut::zoo {

namespace {

/// One inverted residual: (optional) 1x1 expand, 3x3 depthwise, 1x1 linear
/// projection, with a residual Add when the shapes allow it.
int inverted_residual(Graph& g, int in, int& in_c, int expansion, int out_c, int stride,
                      int block_id, const std::string& bname) {
  int x = in;
  int mid_c = in_c * expansion;
  if (expansion != 1)
    x = conv_bn_act(g, x, in_c, mid_c, 1, 1, bname + "/expand", block_id, bname, true);
  x = dwconv_bn_act(g, x, mid_c, stride, bname + "/dw", block_id, bname, true);
  x = conv_bn(g, x, mid_c, out_c, 1, 1, bname + "/project", block_id, bname);
  if (stride == 1 && in_c == out_c)
    x = g.add(std::make_unique<nn::Add>(2), {in, x}, bname + "/add", block_id, bname);
  in_c = out_c;
  return x;
}

}  // namespace

nn::Graph build_mobilenet_v2(double alpha, int resolution) {
  Graph g;
  const int input = g.add_input(nn::Shape::chw(3, resolution, resolution));

  auto ch = [alpha](int base) { return make_divisible(base * alpha); };

  int in_c = ch(32);
  int x = conv_bn_act(g, input, 3, in_c, 3, 2, "stem", -1, "", true);

  struct StageDef {
    int t, c, n, s;
  };
  const StageDef stages[] = {
      {1, 16, 1, 1}, {6, 24, 2, 2},  {6, 32, 3, 2}, {6, 64, 4, 2},
      {6, 96, 3, 1}, {6, 160, 3, 2}, {6, 320, 1, 1},
  };

  int block_id = 0;
  for (const StageDef& st : stages) {
    for (int rep = 0; rep < st.n; ++rep) {
      const std::string bname = "bottleneck" + std::to_string(block_id + 1);
      const int stride = rep == 0 ? st.s : 1;
      x = inverted_residual(g, x, in_c, st.t, ch(st.c), stride, block_id, bname);
      ++block_id;
    }
  }

  // Final 1x1 feature conv: 1280, scaled up (but never down) by alpha.
  const int last_c = alpha > 1.0 ? make_divisible(1280 * alpha) : 1280;
  conv_bn_act(g, x, in_c, last_c, 1, 1, "features", block_id, "features", true);
  return finish_trunk(std::move(g), "zoo/mobilenet_v2");
}

}  // namespace netcut::zoo
