// The seven ImageNet-pretrained source architectures the paper explores
// (Section III-B1): MobileNetV1 (0.25, 0.5), MobileNetV2 (1.0, 1.4),
// InceptionV3, ResNet-50 and DenseNet-121.
//
// Builders emit trunks (classification layers already removed) whose nodes
// are tagged with block ids, so blockwise layer removal has real
// architectural boundaries to cut at.
#pragma once

#include <string>
#include <vector>

#include "nn/graph.hpp"

namespace netcut::zoo {

enum class NetId {
  kMobileNetV1_025,
  kMobileNetV1_050,
  kMobileNetV2_100,
  kMobileNetV2_140,
  kInceptionV3,
  kResNet50,
  kDenseNet121,
};

/// All seven, in the paper's order.
std::vector<NetId> all_nets();

std::string net_name(NetId id);

/// Native ImageNet input resolution (224, or 299 for InceptionV3). Latency
/// is always evaluated at native resolution.
int native_resolution(NetId id);

/// Build the trunk at the given square input resolution (3 x res x res).
nn::Graph build_trunk(NetId id, int resolution);

// Individual builders (exposed for tests).
nn::Graph build_mobilenet_v1(double alpha, int resolution);
nn::Graph build_mobilenet_v2(double alpha, int resolution);
nn::Graph build_inception_v3(int resolution);
nn::Graph build_resnet50(int resolution);
nn::Graph build_densenet121(int resolution);

}  // namespace netcut::zoo
