// Input-adaptive TRN cascade — confidence-gated early exit (ROADMAP item 3).
//
// A cascade runs the cheap TRN (shallow cut + transfer head) on every input
// and escalates to a deeper TRN only when the shallow head's softmax margin
// (top-1 minus top-2 probability) falls below a calibrated threshold:
//
//     margin >= thr  ->  exit with the shallow prediction   (easy input)
//     margin <  thr  ->  run the deep TRN and use its output (hard input)
//
// Both TRNs are cut from ONE pretrained trunk, so they share every weight up
// to the shallow cut. Escalation therefore resumes the deep TRN from the
// shallow stage's trunk activation (nn::Network::forward_from) and pays only
// the delta layers plus the deep head — never the shared prefix twice. Cut
// sites are output dominators forming a chain, and Graph::prefix remaps the
// shallow cut's ancestors identically in both TRN graphs, so the shared
// prefix node has the same id in both: the last trunk node of the shallow
// TRN. That makes escalate-all bitwise identical to running the deep TRN
// from scratch.
//
// Calibration (CascadeExplorer) estimates p(escalate | thr) on a held-out
// calibration half of the test split and scores cascade accuracy on the
// other half, then sweeps (threshold x cut pair) into operating points whose
// expected latency is  lat(shallow) + p_escalate * lat(stage 2). The
// combined front of single-cut and cascade points is what serving and the
// control loop pick operating points from.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/evaluator.hpp"
#include "core/lab.hpp"
#include "core/pareto.hpp"
#include "core/trn.hpp"
#include "nn/network.hpp"

namespace netcut::core {

/// Parsed form of a cascade spec string (netcut_cli --cascade).
///
/// Grammar — comma-separated clauses, mirroring NETCUT_FAULTS:
///   "off"              the disabled cascade (also the empty string)
///   shallow=<ordinal>  blockwise cut ordinal of the first stage (>= 0)
///   deep=<ordinal>     blockwise cut ordinal of the second stage (> shallow)
///   thr=<p>            escalate when softmax margin < p, p in [0, 1]
/// An enabled spec requires all three clauses; anything else (unknown keys,
/// bad numbers, shallow >= deep) throws std::invalid_argument. Round-trip
/// contract: parse_cascade_spec(format_cascade_spec(s)) == s.
struct CascadeSpec {
  bool enabled = false;
  int shallow = 0;
  int deep = 0;
  double threshold = 0.0;

  bool operator==(const CascadeSpec&) const = default;
};

CascadeSpec parse_cascade_spec(std::string_view spec);
std::string format_cascade_spec(const CascadeSpec& spec);

/// Top-1 minus top-2 probability of a softmax output — the cascade's
/// confidence signal. In [0, 1]; higher means more confident.
double softmax_margin(const tensor::Tensor& probs);

/// Two TRNs cut from one trunk, sharing the prefix up to the shallow cut.
/// The two-phase API (stage1 / escalate) lets callers apply their own gate
/// between the stages — the serving layer also checks deadline slack before
/// paying for stage 2.
class CascadeTrn {
 public:
  /// Builds both TRNs from `trunk` (shallow head first, then deep head, so
  /// construction is deterministic in `rng`). Throws std::invalid_argument
  /// unless shallow_cut < deep_cut and both are legal cut sites.
  CascadeTrn(const nn::Graph& trunk, int shallow_cut, int deep_cut, const HeadConfig& head,
             util::Rng& rng);

  int shallow_cut() const { return shallow_cut_; }
  int deep_cut() const { return deep_cut_; }
  /// Shared-prefix node id (identical in both TRN graphs): the last trunk
  /// node of the shallow TRN, where escalation resumes the deep TRN.
  int resume_node() const { return resume_node_; }

  nn::Network& shallow() { return shallow_; }
  nn::Network& deep() { return deep_; }

  /// First-stage result: the shallow prediction, its confidence, and the
  /// shared trunk activation escalation resumes from.
  struct Stage1 {
    tensor::Tensor output;     // shallow softmax probabilities
    tensor::Tensor trunk_act;  // activation at resume_node()
    double margin = 0.0;       // softmax_margin(output)
  };

  Stage1 stage1(const tensor::Tensor& input);
  /// One Stage1 per input; bitwise identical to inputs.size() stage1 calls.
  std::vector<Stage1> stage1_batch(const std::vector<const tensor::Tensor*>& inputs);

  /// Second stage: the deep TRN resumed from the shared trunk activation.
  /// Bitwise identical to deep().forward(input) for the input that produced
  /// `s` — stage 2 pays only the delta layers plus the deep head.
  tensor::Tensor escalate(const Stage1& s);
  /// Planned batched escalation (disjoint arena lanes); bitwise identical
  /// to stages.size() single escalate calls.
  std::vector<tensor::Tensor> escalate_batch(const std::vector<const Stage1*>& stages);

  /// The full decision rule: stage 1, then escalate iff margin < threshold.
  struct Result {
    tensor::Tensor output;
    double margin = 0.0;  // stage-1 confidence (the gating signal)
    bool escalated = false;
  };
  Result classify(const tensor::Tensor& input, double threshold);

 private:
  int shallow_cut_;
  int deep_cut_;
  int resume_node_;
  nn::Network shallow_;
  nn::Network deep_;
};

/// One calibrated cascade operating point of the (threshold x cut pair)
/// sweep.
struct CascadeOperatingPoint {
  std::string name;        // "<shallow trn>+<deep layers>@<thr>"
  int shallow_cut = 0;
  int deep_cut = 0;
  double threshold = 0.0;
  double p_escalate = 0.0;  // escalation rate on the calibration half
  double accuracy = 0.0;    // cascade angular similarity on the eval half
  double latency_ms = 0.0;  // measured shallow + p_escalate * measured stage 2

  TradeoffPoint as_tradeoff() const { return {name, latency_ms, accuracy}; }
};

/// Sweeps (confidence threshold x cut pair) against the evaluator's
/// accuracy cache and the lab's measurements. The test split is divided
/// deterministically: even indices calibrate p(escalate) and the escalation
/// thresholds, odd indices score accuracy — thresholds are never tuned on
/// the images that grade them.
class CascadeExplorer {
 public:
  CascadeExplorer(TrnEvaluator& evaluator, LatencyLab& lab);

  /// Escalation rate of `threshold` for the shallow cut's retrained head on
  /// the calibration half. Non-decreasing in `threshold` by construction
  /// (the gate escalates exactly the images with margin < threshold).
  double escalation_rate(zoo::NetId base, int shallow_cut, double threshold);

  /// One calibrated operating point for a (shallow, deep, threshold) triple.
  CascadeOperatingPoint operating_point(zoo::NetId base, int shallow_cut, int deep_cut,
                                        double threshold);

  /// All (shallow < deep) pairs from `cuts` crossed with `thresholds`.
  std::vector<CascadeOperatingPoint> sweep(zoo::NetId base, const std::vector<int>& cuts,
                                           const std::vector<double>& thresholds);

  /// Single-cut baseline points over `cuts`, accuracy scored on the same
  /// eval half the cascade points use (so dominance compares like with
  /// like).
  std::vector<TradeoffPoint> single_cut_points(zoo::NetId base, const std::vector<int>& cuts);

  /// The default threshold grid for sweeps.
  static std::vector<double> default_thresholds();

 private:
  TrnEvaluator& evaluator_;
  LatencyLab& lab_;
};

/// True when some cascade operating point dominates (core::dominates) a
/// point of the single-cut frontier — i.e. the combined front strictly
/// improves on every-static-cut-can-offer.
bool cascade_improves(const std::vector<CascadeOperatingPoint>& cascade_points,
                      const std::vector<TradeoffPoint>& single_cut_front);

}  // namespace netcut::core
