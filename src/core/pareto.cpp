#include "core/pareto.hpp"

#include <algorithm>

namespace netcut::core {

bool dominates(const TradeoffPoint& a, const TradeoffPoint& b) {
  const bool no_worse = a.latency_ms <= b.latency_ms && a.accuracy >= b.accuracy;
  const bool better = a.latency_ms < b.latency_ms || a.accuracy > b.accuracy;
  return no_worse && better;
}

std::vector<TradeoffPoint> pareto_frontier(std::vector<TradeoffPoint> points) {
  std::vector<TradeoffPoint> frontier;
  for (const TradeoffPoint& p : points) {
    bool dominated = false;
    for (const TradeoffPoint& q : points) {
      if (&p != &q && dominates(q, p)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) frontier.push_back(p);
  }
  std::sort(frontier.begin(), frontier.end(),
            [](const TradeoffPoint& a, const TradeoffPoint& b) {
              if (a.latency_ms != b.latency_ms) return a.latency_ms < b.latency_ms;
              return a.accuracy < b.accuracy;
            });
  // Equal points can survive the pairwise check; deduplicate.
  frontier.erase(std::unique(frontier.begin(), frontier.end(),
                             [](const TradeoffPoint& a, const TradeoffPoint& b) {
                               return a.latency_ms == b.latency_ms &&
                                      a.accuracy == b.accuracy;
                             }),
                 frontier.end());
  return frontier;
}

int best_under_deadline(const std::vector<TradeoffPoint>& points, double deadline_ms) {
  int best = -1;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].latency_ms > deadline_ms) continue;
    if (best < 0 || points[i].accuracy > points[static_cast<std::size_t>(best)].accuracy)
      best = static_cast<int>(i);
  }
  return best;
}

}  // namespace netcut::core
