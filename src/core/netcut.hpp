// NetCut — deadline-aware exploration (Section V, Algorithm 1).
//
// For each of the N trained off-the-shelf networks, the cutpoint is
// advanced (removing blocks from the top) until the latency *estimate*
// first meets the deadline; only that TRN is retrained and evaluated. The
// highest-accuracy retrained TRN wins. With N networks this retrains N
// models instead of the full blockwise candidate set — the paper's 95%
// reduction and 27x exploration speedup.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/estimator.hpp"
#include "core/evaluator.hpp"
#include "core/explorer.hpp"
#include "core/lab.hpp"

namespace netcut::core {

struct NetCutProposal {
  Candidate trn;             // the retrained deadline-meeting TRN
  double estimated_ms = 0.0; // the estimate that admitted it
  int cutpoints_tried = 0;   // estimator queries spent on this network
  bool meets_deadline = false;  // by *measured* latency (estimates can err)
};

struct NetCutResult {
  double deadline_ms = 0.0;
  std::string estimator;
  std::vector<NetCutProposal> proposals;  // one per base network
  int selected = -1;                      // index of the winning proposal
  int networks_retrained = 0;
  double exploration_hours = 0.0;         // retraining bill for the proposals

  const NetCutProposal& winner() const;
};

struct NetCutConfig {
  double deadline_ms = 0.9;  // the robotic hand's visual-classifier budget
  /// Restrict to these networks; empty means all seven.
  std::vector<zoo::NetId> networks;
};

class NetCut {
 public:
  NetCut(LatencyLab& lab, TrnEvaluator& evaluator);

  /// Algorithm 1 with the given latency estimator.
  NetCutResult run(LatencyEstimator& estimator, const NetCutConfig& config);

  /// The deadline-meeting TRN (by estimate) for one network, without
  /// retraining: the inner while-loop of Algorithm 1. Returns nullopt when
  /// even the maximal cut misses the deadline.
  std::optional<std::pair<int, double>> first_feasible_cut(LatencyEstimator& estimator,
                                                           zoo::NetId base,
                                                           double deadline_ms,
                                                           int* cutpoints_tried = nullptr);

 private:
  LatencyLab& lab_;
  TrnEvaluator& evaluator_;
};

}  // namespace netcut::core
