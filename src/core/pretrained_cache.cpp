#include "core/pretrained_cache.hpp"

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "nn/serialize.hpp"
#include "util/rng.hpp"

namespace netcut::core {

std::uint64_t pretrained_config_hash(const data::PretrainedConfig& c) {
  std::ostringstream os;
  os << "v7|" << c.seed << '|' << c.specialization_onset << '|' << c.source_images << '|'
     << c.epochs << '|' << c.learning_rate << '|' << c.batch_size << '|' << c.aux_weight;
  return util::derive_seed(0x9E77uLL, os.str());
}

namespace {
/// Pretraining runs at a fixed reduced resolution: weights are
/// resolution-independent (graph structure is identical at any input
/// size), and 24x24 keeps the one-time training bill small. BatchNorm
/// statistics are re-calibrated by the consumer at its own resolution.
constexpr int kPretrainResolution = 24;
}  // namespace

namespace {
std::string cache_file(zoo::NetId net, const data::PretrainedConfig& config,
                       const std::string& cache_dir, int pretrain_resolution) {
  std::ostringstream name;
  name << zoo::net_name(net) << "_p" << pretrain_resolution << "_" << std::hex
       << pretrained_config_hash(config) << ".weights";
  return (std::filesystem::path(cache_dir) / name.str()).string();
}
}  // namespace

bool pretrained_available(zoo::NetId net, const data::PretrainedConfig& config,
                          const std::string& cache_dir) {
  if (cache_dir.empty()) return false;
  return std::filesystem::exists(cache_file(net, config, cache_dir, 24));
}

nn::Graph pretrained_trunk(zoo::NetId net, int resolution,
                           const data::PretrainedConfig& config,
                           const std::string& cache_dir) {
  nn::Graph trunk = zoo::build_trunk(net, resolution);
  data::PretrainedConfig cfg = config;
  cfg.seed = util::derive_seed(cfg.seed, zoo::net_name(net));

  std::string path;
  if (!cache_dir.empty()) {
    std::filesystem::create_directories(cache_dir);
    std::ostringstream name;
    name << zoo::net_name(net) << "_p" << kPretrainResolution << "_" << std::hex
         << pretrained_config_hash(config) << ".weights";
    path = (std::filesystem::path(cache_dir) / name.str()).string();
    if (nn::load_params(trunk, path)) return trunk;
  }

  nn::Graph train_trunk = resolution == kPretrainResolution
                              ? trunk
                              : zoo::build_trunk(net, kPretrainResolution);
  const data::PretrainReport report = data::generate_pretrained_weights(train_trunk, cfg);
  std::fprintf(stderr,
               "[netcut] pretrained %s @%d: source-task top-1 %.2f (loss %.3f, %d steps)%s\n",
               zoo::net_name(net).c_str(), kPretrainResolution, report.source_accuracy,
               report.final_loss, report.steps,
               path.empty() ? "" : (" -> cached " + path).c_str());
  if (!path.empty()) {
    nn::save_params(train_trunk, path);
    if (!nn::load_params(trunk, path))
      throw std::runtime_error("pretrained_trunk: failed to reload cached weights");
  } else if (resolution != kPretrainResolution) {
    // No cache directory: copy the trained state across via a temp file.
    const std::string tmp = std::filesystem::temp_directory_path() /
                            ("netcut_tmp_" + std::to_string(pretrained_config_hash(cfg)));
    nn::save_params(train_trunk, tmp);
    nn::load_params(trunk, tmp);
    std::filesystem::remove(tmp);
  } else {
    trunk = std::move(train_trunk);
  }
  return trunk;
}

}  // namespace netcut::core
