#include "core/pretrained_cache.hpp"

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "nn/serialize.hpp"
#include "util/atomic_file.hpp"
#include "util/rng.hpp"

namespace netcut::core {

std::uint64_t pretrained_config_hash(const data::PretrainedConfig& c) {
  std::ostringstream os;
  os << "v7|" << c.seed << '|' << c.specialization_onset << '|' << c.source_images << '|'
     << c.epochs << '|' << c.learning_rate << '|' << c.batch_size << '|' << c.aux_weight;
  return util::derive_seed(0x9E77uLL, os.str());
}

namespace {
/// Pretraining runs at a fixed reduced resolution: weights are
/// resolution-independent (graph structure is identical at any input
/// size), and 24x24 keeps the one-time training bill small. BatchNorm
/// statistics are re-calibrated by the consumer at its own resolution.
constexpr int kPretrainResolution = 24;

/// Checked container around the raw nn::save_params payload.
constexpr std::uint32_t kContainerMagic = 0x3243574Eu;  // "NCW2"
constexpr std::uint32_t kContainerVersion = 1;
/// The raw legacy stream's leading magic ("NCWM"), for format sniffing.
constexpr std::uint32_t kLegacyMagic = 0x4E43574Du;

std::string cache_file(zoo::NetId net, const data::PretrainedConfig& config,
                       const std::string& cache_dir) {
  std::ostringstream name;
  name << zoo::net_name(net) << "_p" << kPretrainResolution << "_" << std::hex
       << pretrained_config_hash(config) << ".weights";
  return (std::filesystem::path(cache_dir) / name.str()).string();
}

/// Atomic, checksummed weight-cache write.
void save_weights_checked(const nn::Graph& graph, const std::string& path) {
  std::ostringstream payload(std::ios::binary);
  nn::save_params(graph, payload, path);
  util::atomic_write_checked(path, payload.str(), kContainerMagic, kContainerVersion);
}

enum class CacheLoad { kMissing, kLoaded, kQuarantined };

/// Loads a cached weight file into `graph`, sniffing the checked container
/// vs the legacy raw format. Any validation failure — bad checksum,
/// truncation, structural mismatch, non-finite params — quarantines the
/// file and reports kQuarantined so the caller retrains.
CacheLoad load_weights_checked(nn::Graph& graph, const std::string& path) {
  const auto magic = util::peek_magic(path);
  if (!magic) return CacheLoad::kMissing;
  try {
    if (*magic == kContainerMagic) {
      const auto payload = util::read_checked(path, kContainerMagic, kContainerVersion);
      if (!payload) return CacheLoad::kMissing;  // raced away; treat as missing
      std::istringstream in(*payload, std::ios::binary);
      nn::load_params(graph, in, path);
      return CacheLoad::kLoaded;
    }
    // Legacy headerless file (written before the checked container
    // existed): no checksum, but the structural validation still applies.
    if (nn::load_params(graph, path)) return CacheLoad::kLoaded;
    return CacheLoad::kMissing;
  } catch (const std::exception& e) {
    const std::string moved = util::quarantine_file(path);
    std::fprintf(stderr,
                 "[netcut] WARNING: corrupt weight cache %s (%s); quarantined as %s, "
                 "retraining\n",
                 path.c_str(), e.what(), moved.c_str());
    return CacheLoad::kQuarantined;
  }
}
}  // namespace

std::string pretrained_cache_file(zoo::NetId net, const data::PretrainedConfig& config,
                                  const std::string& cache_dir) {
  if (cache_dir.empty()) return {};
  return cache_file(net, config, cache_dir);
}

bool pretrained_available(zoo::NetId net, const data::PretrainedConfig& config,
                          const std::string& cache_dir) {
  if (cache_dir.empty()) return false;
  return std::filesystem::exists(cache_file(net, config, cache_dir));
}

nn::Graph pretrained_trunk(zoo::NetId net, int resolution,
                           const data::PretrainedConfig& config,
                           const std::string& cache_dir) {
  nn::Graph trunk = zoo::build_trunk(net, resolution);
  data::PretrainedConfig cfg = config;
  cfg.seed = util::derive_seed(cfg.seed, zoo::net_name(net));

  std::string path;
  if (!cache_dir.empty()) {
    std::filesystem::create_directories(cache_dir);
    path = cache_file(net, config, cache_dir);
    if (load_weights_checked(trunk, path) == CacheLoad::kLoaded) return trunk;
    // Missing or quarantined: fall through and retrain.
  }

  nn::Graph train_trunk = resolution == kPretrainResolution
                              ? trunk
                              : zoo::build_trunk(net, kPretrainResolution);
  const data::PretrainReport report = data::generate_pretrained_weights(train_trunk, cfg);
  std::fprintf(stderr,
               "[netcut] pretrained %s @%d: source-task top-1 %.2f (loss %.3f, %d steps)%s\n",
               zoo::net_name(net).c_str(), kPretrainResolution, report.source_accuracy,
               report.final_loss, report.steps,
               path.empty() ? "" : (" -> cached " + path).c_str());
  if (!path.empty()) {
    save_weights_checked(train_trunk, path);
    if (load_weights_checked(trunk, path) != CacheLoad::kLoaded)
      throw std::runtime_error("pretrained_trunk: failed to reload cached weights");
  } else if (resolution != kPretrainResolution) {
    // No cache directory: copy the trained state across in memory.
    std::ostringstream payload(std::ios::binary);
    nn::save_params(train_trunk, payload, "pretrained_trunk (in-memory)");
    std::istringstream in(payload.str(), std::ios::binary);
    nn::load_params(trunk, in, "pretrained_trunk (in-memory)");
  } else {
    trunk = std::move(train_trunk);
  }
  return trunk;
}

}  // namespace netcut::core
