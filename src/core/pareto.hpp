// Latency/accuracy Pareto frontier extraction (Figs 1, 6, 7).
#pragma once

#include <string>
#include <vector>

namespace netcut::core {

struct TradeoffPoint {
  std::string name;
  double latency_ms = 0.0;
  double accuracy = 0.0;
};

/// True if `a` dominates `b`: no worse on both axes, better on at least one
/// (lower latency is better, higher accuracy is better).
bool dominates(const TradeoffPoint& a, const TradeoffPoint& b);

/// The non-dominated subset, sorted by latency ascending.
std::vector<TradeoffPoint> pareto_frontier(std::vector<TradeoffPoint> points);

/// The most accurate point whose latency is <= deadline; returns -1 when
/// none qualifies.
int best_under_deadline(const std::vector<TradeoffPoint>& points, double deadline_ms);

}  // namespace netcut::core
