// Layer removal and TRimmed Network (TRN) construction — Section IV.
//
// A TRN is a prefix of a pretrained trunk with the problem-specific top
// removed and a fresh transfer head attached (1 GlobalAvgPool, 2 FC/ReLU,
// 1 FC/Softmax — Section III-B3). Cut sites come in two granularities:
//   * blockwise  — the last node of each architectural block (the paper's
//     chosen heuristic; negligible loss vs finer cuts, Fig 4);
//   * iterative  — every graph dominator of the trunk output (the
//     exhaustive per-layer baseline Fig 4 compares against).
#pragma once

#include <string>
#include <vector>

#include "nn/graph.hpp"
#include "util/rng.hpp"
#include "zoo/zoo.hpp"

namespace netcut::core {

struct HeadConfig {
  int classes = 5;
  int hidden1 = 64;
  int hidden2 = 32;
  bool with_softmax = true;  // trainers operate on logits and drop it
};

/// Cut sites for blockwise removal: the last node of every block, in depth
/// order. cut after blocks[i] keeps blocks 0..i.
std::vector<int> blockwise_cutpoints(const nn::Graph& trunk);

/// Cut sites for iterative (per-layer) removal: all output dominators.
std::vector<int> iterative_cutpoints(const nn::Graph& trunk);

/// Appends the transfer head to a trunk prefix. `rng` initializes the new
/// dense layers (He/Xavier).
nn::Graph attach_head(nn::Graph trunk_prefix, const HeadConfig& head, util::Rng& rng);

/// Builds the TRN graph: trunk cut at `cut_node` + fresh head.
nn::Graph build_trn(const nn::Graph& trunk, int cut_node, const HeadConfig& head,
                    util::Rng& rng);

/// Number of trunk layers (nodes excluding the input) kept by the cut.
int layers_remaining(const nn::Graph& trunk, int cut_node);

/// Number of trunk layers removed by the cut.
int layers_removed(const nn::Graph& trunk, int cut_node);

/// Paper-style TRN name, e.g. "ResNet50/113" (base network / remaining
/// layer count).
std::string trn_name(const std::string& base_name, const nn::Graph& trunk, int cut_node);

}  // namespace netcut::core
