// Blockwise exhaustive exploration — the baseline NetCut accelerates.
// Enumerates every blockwise TRN of every base network, retrains each one,
// measures each on the device, and prices the total retraining bill on the
// training-server model (the paper's "148 networks, 183 hours").
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/evaluator.hpp"
#include "core/lab.hpp"
#include "util/ranked_mutex.hpp"
#include "util/thread_annotations.hpp"

namespace netcut::core {

struct Candidate {
  zoo::NetId base;
  std::string base_name;
  std::string trn_name;       // "ResNet50/113"
  int cut_node = 0;
  int blocks_removed = 0;
  int layers_removed = 0;
  int layers_remaining = 0;
  double latency_ms = 0.0;    // measured, native resolution
  double accuracy = 0.0;      // mean angular similarity, retrained head
  double top1 = 0.0;
  double train_hours = 0.0;   // retraining cost on the trainer model
};

class BlockwiseExplorer {
 public:
  BlockwiseExplorer(LatencyLab& lab, TrnEvaluator& evaluator);

  /// All blockwise TRNs of one base network (1..B-1 blocks removed; at
  /// least one block is always kept). include_full adds the untrimmed
  /// network (0 blocks removed).
  std::vector<Candidate> explore(zoo::NetId base, bool include_full);

  /// The full sweep over all seven networks.
  std::vector<Candidate> explore_all(bool include_full);

  /// Iterative (per-layer) sweep for one network — the exhaustive baseline
  /// of Fig 4.
  std::vector<Candidate> explore_iterative(zoo::NetId base, bool include_full);

  /// Total retraining bill of a candidate set.
  static double total_train_hours(const std::vector<Candidate>& candidates);

  /// Enables the crash-safe progress journal at `path`. Completed head
  /// retrainings are appended as checksummed rows keyed on the full lab +
  /// evaluator configuration; a later explorer pointed at the same file
  /// skips those retrainings and resumes from where the previous run died.
  /// A journal written under a different configuration (or corrupted past
  /// its header) is quarantined and exploration starts fresh. The cheap
  /// analytical lab measurements are always re-run in their original order
  /// so measurement RNG streams stay identical to an uninterrupted sweep.
  void set_journal(const std::string& path);

  /// Retrainings skipped thanks to journal rows (diagnostics for tests).
  int journal_hits() const {
    util::MutexLock lock(journal_mutex_);
    return journal_hits_;
  }

 private:
  /// Candidate with all LatencyLab-derived fields filled, accuracy pending.
  Candidate lab_stub(zoo::NetId base, int cut_node, int blocks_removed);
  Candidate evaluate_cut(zoo::NetId base, int cut_node, int blocks_removed);
  /// Two-phase batch evaluation: serial lab metadata, then the independent
  /// per-TRN head retrainings fanned out across the thread pool.
  std::vector<Candidate> evaluate_cuts(zoo::NetId base,
                                       const std::vector<std::pair<int, int>>& cuts);

  /// Configuration identity stamped into the journal header.
  std::uint64_t journal_key() const;
  void journal_append(const std::string& base_name, int cut_node, const AccuracyResult& r)
      NETCUT_REQUIRES(journal_mutex_);

  LatencyLab& lab_;
  TrnEvaluator& evaluator_;

  std::string journal_path_;  // set at setup time, stable during sweeps
  /// Guards the journal memo, the hit counter, and the append-only file
  /// (pool workers publish completed retrainings concurrently).
  mutable util::RankedMutex journal_mutex_{util::rank::kJournal, "core/explorer.journal"};
  // Completed (base_name, cut_node) -> accuracy, loaded from the journal.
  std::map<std::pair<std::string, int>, AccuracyResult> journal_
      NETCUT_GUARDED_BY(journal_mutex_);
  int journal_hits_ NETCUT_GUARDED_BY(journal_mutex_) = 0;
};

}  // namespace netcut::core
