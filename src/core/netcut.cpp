#include "core/netcut.hpp"

#include <stdexcept>

namespace netcut::core {

const NetCutProposal& NetCutResult::winner() const {
  if (selected < 0 || selected >= static_cast<int>(proposals.size()))
    throw std::logic_error("NetCutResult: no winner");
  return proposals[static_cast<std::size_t>(selected)];
}

NetCut::NetCut(LatencyLab& lab, TrnEvaluator& evaluator) : lab_(lab), evaluator_(evaluator) {}

std::optional<std::pair<int, double>> NetCut::first_feasible_cut(LatencyEstimator& estimator,
                                                                 zoo::NetId base,
                                                                 double deadline_ms,
                                                                 int* cutpoints_tried) {
  // Cutpoint 0 is the untrimmed network; cutpoint k removes the last k
  // blocks. The loop mirrors Algorithm 1: keep cutting until the estimate
  // meets the deadline.
  const std::vector<int>& cuts = lab_.blockwise(base);
  const int blocks = static_cast<int>(cuts.size());
  int tried = 0;
  for (int k = 0; k <= blocks - 1; ++k) {
    const int cut_node =
        k == 0 ? lab_.full_cut(base) : cuts[static_cast<std::size_t>(blocks - 1 - k)];
    ++tried;
    const double est = estimator.estimate_ms(base, cut_node);
    if (est <= deadline_ms) {
      if (cutpoints_tried) *cutpoints_tried = tried;
      return std::make_pair(cut_node, est);
    }
  }
  if (cutpoints_tried) *cutpoints_tried = tried;
  return std::nullopt;
}

NetCutResult NetCut::run(LatencyEstimator& estimator, const NetCutConfig& config) {
  NetCutResult result;
  result.deadline_ms = config.deadline_ms;
  result.estimator = estimator.name();

  const std::vector<zoo::NetId> nets =
      config.networks.empty() ? zoo::all_nets() : config.networks;

  for (zoo::NetId base : nets) {
    int tried = 0;
    const auto feasible =
        first_feasible_cut(estimator, base, config.deadline_ms, &tried);
    if (!feasible) continue;  // no TRN of this network can meet the deadline

    const int cut_node = feasible->first;
    NetCutProposal p;
    p.estimated_ms = feasible->second;
    p.cutpoints_tried = tried;

    // Retrain + evaluate only this TRN (the expensive step NetCut rations).
    Candidate c;
    c.base = base;
    c.base_name = zoo::net_name(base);
    c.trn_name = lab_.name(base, cut_node);
    c.cut_node = cut_node;
    c.layers_removed = lab_.layers_removed(base, cut_node);
    c.layers_remaining = lab_.layers_remaining(base, cut_node);
    c.latency_ms = lab_.measured_ms(base, cut_node);
    const AccuracyResult acc = evaluator_.accuracy(base, cut_node);
    c.accuracy = acc.angular_similarity;
    c.top1 = acc.top1;
    c.train_hours = lab_.training_hours(base, cut_node);
    p.trn = c;
    p.meets_deadline = c.latency_ms <= config.deadline_ms;

    result.proposals.push_back(std::move(p));
  }

  result.networks_retrained = static_cast<int>(result.proposals.size());
  for (const NetCutProposal& p : result.proposals)
    result.exploration_hours += p.trn.train_hours;

  for (std::size_t i = 0; i < result.proposals.size(); ++i) {
    if (result.selected < 0 ||
        result.proposals[i].trn.accuracy >
            result.proposals[static_cast<std::size_t>(result.selected)].trn.accuracy)
      result.selected = static_cast<int>(i);
  }
  return result;
}

}  // namespace netcut::core
