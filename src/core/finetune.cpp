#include "core/finetune.hpp"

#include "ml/metrics.hpp"
#include "nn/activation.hpp"
#include "nn/loss.hpp"
#include "nn/norm.hpp"
#include "nn/optimizer.hpp"

namespace netcut::core {

namespace {

AccuracyResult evaluate(nn::Network& net, const data::HandsDataset& dataset) {
  std::vector<tensor::Tensor> preds, labels;
  preds.reserve(dataset.test().size());
  for (const data::Sample& s : dataset.test()) {
    preds.push_back(nn::softmax(net.forward(s.image, false)));
    labels.push_back(s.label);
  }
  AccuracyResult r;
  r.angular_similarity = ml::mean_angular_similarity(preds, labels);
  r.top1 = ml::top1_agreement(preds, labels);
  return r;
}

double run_epochs(nn::Network& net, const data::HandsDataset& dataset, nn::Optimizer& opt,
                  int epochs, util::Rng& rng) {
  const int n = static_cast<int>(dataset.train().size());
  double last = 0.0;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    last = 0.0;
    for (int i : rng.permutation(n)) {
      const data::Sample& s = dataset.train()[static_cast<std::size_t>(i)];
      net.zero_grads();
      const tensor::Tensor logits = net.forward(s.image, true);
      const auto lr = nn::loss::soft_cross_entropy(logits, s.label);
      net.backward(lr.grad);
      opt.step();
      last += lr.value;
    }
    last /= n;
  }
  return last;
}

}  // namespace

FinetuneResult finetune_trn(const nn::Graph& pretrained_trunk, int cut_node,
                            const data::HandsDataset& dataset,
                            const FinetuneConfig& config) {
  util::Rng rng(util::derive_seed(config.seed, "finetune"));
  HeadConfig head = config.head;
  head.with_softmax = false;  // train on logits; softmax applied in evaluate()
  nn::Graph trn = build_trn(pretrained_trunk, cut_node, head, rng);
  const int trunk_nodes = pretrained_trunk.prefix(cut_node).node_count();
  nn::Network net(std::move(trn));

  // Fine-tuning regime: BatchNorm statistics frozen (the pretrained stats).
  for (int id = 1; id < net.graph().node_count(); ++id) {
    nn::Layer& layer = *net.graph().node(id).layer;
    if (layer.kind() == nn::LayerKind::kBatchNorm)
      static_cast<nn::BatchNorm&>(layer).set_freeze_stats(true);
  }

  FinetuneResult result;

  // Stage 1: head only (trunk frozen by simply not binding its params).
  {
    std::vector<tensor::Tensor*> params, grads;
    for (int id = trunk_nodes; id < net.graph().node_count(); ++id) {
      for (tensor::Tensor* p : net.graph().node(id).layer->params()) params.push_back(p);
      for (tensor::Tensor* g : net.graph().node(id).layer->grads()) grads.push_back(g);
    }
    nn::Adam opt(config.head_lr);
    opt.bind(std::move(params), std::move(grads));
    result.stage1_final_loss = run_epochs(net, dataset, opt, config.head_epochs, rng);
  }
  result.after_head = evaluate(net, dataset);

  // Stage 2: everything, at the lower rate.
  if (config.full_epochs > 0) {
    nn::Adam opt(config.full_lr);
    opt.bind(net.params(), net.grads());
    result.stage2_final_loss = run_epochs(net, dataset, opt, config.full_epochs, rng);
  }
  result.after_full = evaluate(net, dataset);
  return result;
}

}  // namespace netcut::core
