// LatencyLab: the native-resolution side of the experiments. Owns the
// simulated device, the measurement protocol, the per-layer profiler and
// the training-time model, plus a cache of native-resolution trunks, and
// answers every latency/FLOPs/GPU-hour question about a (base, cut) pair.
//
// Node ids are resolution-independent, so cut sites computed by the
// evaluator at the experiment resolution address the same layers here.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/trn.hpp"
#include "hw/measure.hpp"
#include "hw/profiler.hpp"
#include "hw/trainer_model.hpp"

namespace netcut::core {

struct LabConfig {
  hw::DeviceConfig device;
  hw::MeasureConfig measure;
  hw::ProfilerConfig profiler;
  hw::TrainerConfig trainer;
  HeadConfig head;
  hw::Precision precision = hw::Precision::kInt8;  // deployment optimizations on
  bool fuse = true;
};

class LatencyLab {
 public:
  explicit LatencyLab(LabConfig config = {});

  const LabConfig& config() const { return config_; }
  const hw::DeviceModel& device() const { return device_; }

  /// Blockwise cut sites of the base trunk, depth order.
  const std::vector<int>& blockwise(zoo::NetId base);
  /// Per-layer (dominator) cut sites.
  const std::vector<int>& iterative(zoo::NetId base);
  /// Cut representing the untrimmed network.
  int full_cut(zoo::NetId base);

  /// Measured latency (full protocol, with noise) of the TRN at native
  /// resolution, trunk cut + transfer head, under the lab's precision and
  /// fusion settings. Memoized per cut.
  double measured_ms(zoo::NetId base, int cut_node);

  /// Noise-free model latency (ground truth underlying measured_ms).
  double true_ms(zoo::NetId base, int cut_node);

  /// Measured latency of one batched pass over `batch` images (one kernel
  /// launch per node for the whole batch). batch == 1 equals measured_ms.
  /// Memoized per (cut, batch).
  double measured_batch_ms(zoo::NetId base, int cut_node, int batch);

  /// Noise-free model latency of a batch-`batch` pass.
  double true_batch_ms(zoo::NetId base, int cut_node, int batch);

  /// Shared-prefix resume node of a (shallow, deep) cascade pair: the node
  /// id of `shallow_cut` inside the deep TRN's graph (cut sites are output
  /// dominators forming a chain, and Graph::prefix remaps the shallow cut's
  /// ancestors identically in both TRNs, so the id coincides with the last
  /// trunk node of the shallow TRN).
  int resume_node(zoo::NetId base, int shallow_cut);

  /// Measured second-stage latency of a cascade escalation: the deep TRN's
  /// suffix past the shared trunk prefix at `shallow_cut` (the delta layers
  /// plus the deep head). Memoized per (shallow, deep) pair.
  double measured_stage2_ms(zoo::NetId base, int shallow_cut, int deep_cut);

  /// Noise-free model latency underlying measured_stage2_ms.
  double true_stage2_ms(zoo::NetId base, int shallow_cut, int deep_cut);

  /// Batched second-stage latency over `batch` escalated images. batch == 1
  /// equals measured_stage2_ms / true_stage2_ms. Memoized.
  double measured_stage2_batch_ms(zoo::NetId base, int shallow_cut, int deep_cut, int batch);
  double true_stage2_batch_ms(zoo::NetId base, int shallow_cut, int deep_cut, int batch);

  /// Per-layer profile of the *full* base network (one table per network is
  /// all the profiler-based estimator needs).
  const hw::LatencyTable& profile(zoo::NetId base);

  /// Last trunk node id of the full base network graph (profiled tables
  /// cover trunk + head; estimators only reason over trunk rows).
  int trunk_last_node(zoo::NetId base);

  /// GPU-hours to retrain this TRN on the training server model.
  double training_hours(zoo::NetId base, int cut_node);

  /// TRN graph at native resolution (trunk prefix + head). Exposed for
  /// feature computation and the quantization example.
  nn::Graph build_native_trn(zoo::NetId base, int cut_node);

  /// Paper-style TRN name ("ResNet50/113").
  std::string name(zoo::NetId base, int cut_node);

  /// Trunk layer counts for reporting.
  int layers_removed(zoo::NetId base, int cut_node);
  int layers_remaining(zoo::NetId base, int cut_node);

 private:
  struct NetState {
    std::unique_ptr<nn::Graph> trunk;  // native resolution
    std::vector<int> blockwise;
    std::vector<int> iterative;
    std::map<int, double> measured;
    std::map<int, double> true_latency;
    std::map<std::pair<int, int>, double> measured_batch;  // (cut, batch)
    std::map<std::pair<int, int>, double> true_batch;
    // Cascade second stages, keyed ((shallow, deep), batch).
    std::map<std::pair<std::pair<int, int>, int>, double> measured_stage2;
    std::map<std::pair<std::pair<int, int>, int>, double> true_stage2;
    std::unique_ptr<hw::LatencyTable> table;
  };
  NetState& state(zoo::NetId base);

  LabConfig config_;
  hw::DeviceModel device_;
  hw::LatencyMeasurer measurer_;
  hw::LayerProfiler profiler_;
  hw::TrainerModel trainer_;
  std::map<zoo::NetId, NetState> states_;
};

}  // namespace netcut::core
