// TRN accuracy evaluation — the transfer-learning retraining loop.
//
// For each base network the evaluator builds the trunk once at the
// experiment resolution, installs pseudo-pretrained weights, calibrates
// batch norms, and runs every train/test image through it a single time,
// harvesting GlobalAvgPool features at *every* candidate cut site. Each
// TRN's head (2x FC/ReLU + FC, trained on logits with soft-target
// cross-entropy) is then retrained for real on those cached features —
// mathematically the paper's frozen-trunk transfer phase, at a cost that
// fits one CPU core. Accuracy is mean angular similarity on the held-out
// test set (Section III-A).
//
// Results are memoized to a CSV cache keyed by a config hash, so the bench
// suite reruns instantly.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/trn.hpp"
#include "data/hands.hpp"
#include "data/pretrained.hpp"
#include "nn/network.hpp"
#include "util/ranked_mutex.hpp"
#include "util/thread_annotations.hpp"

namespace netcut::core {

struct EvalConfig {
  int resolution = 32;
  std::uint64_t seed = 42;
  HeadConfig head;
  int epochs = 20;
  double learning_rate = 1e-3;
  int calibration_images = 25;  // BN re-calibration images (0: keep pretrained stats)
  data::PretrainedConfig pretrained;
  /// Accuracy memo file; empty string disables caching.
  std::string cache_path = "netcut_accuracy_cache.csv";
  /// Directory for pretrained-trunk weight files; empty disables caching
  /// (every evaluator instance then re-pretrains, which is slow).
  std::string weight_cache_dir = "netcut_weights";
};

struct AccuracyResult {
  double angular_similarity = 0.0;  // the paper's accuracy metric
  double top1 = 0.0;
};

/// Per-test-image outcome of the retrained head at one cut — the raw
/// material for cascade calibration. Image order matches the dataset's test
/// order; all vectors share its length.
struct PerImageEval {
  std::vector<double> margin;   // softmax top1 - top2 probability (confidence)
  std::vector<double> angular;  // angular similarity against the soft label
  std::vector<char> correct;    // top1 agreement with the label (0/1)
};

class TrnEvaluator {
 public:
  TrnEvaluator(const data::HandsDataset& dataset, EvalConfig config);

  /// Accuracy of the TRN cut at `cut_node` (a trunk node id; use
  /// full_cut(base) for the untrimmed network). Memoized. Thread-safe:
  /// concurrent calls for the same base share one feature extraction and a
  /// mutex-guarded memo; per-cut head training is independent and seeded
  /// from the cut key, so results are identical at any thread count.
  AccuracyResult accuracy(zoo::NetId base, int cut_node);

  /// Materialize the per-base trunk features up front (runs the parallel
  /// feature-extraction pass). Callers that fan accuracy() calls out across
  /// pool workers should prepare first so the expensive extraction happens
  /// at the outer parallelism level exactly once.
  void prepare(zoo::NetId base) { state(base); }

  /// Per-test-image margins / similarities / agreements of the TRN cut at
  /// `cut_node`. The head is retrained with exactly the op order and seed of
  /// accuracy(), so aggregate metrics agree with the memoized accuracy.
  /// Memoized in-memory per (base, cut); the returned reference stays valid
  /// for the evaluator's lifetime. Thread-safe like accuracy().
  const PerImageEval& per_image(zoo::NetId base, int cut_node);

  /// Cut node id representing "no removal" for this base network.
  int full_cut(zoo::NetId base);

  /// All legal cut sites (output dominators) of the base trunk at the
  /// evaluation resolution; node ids are identical at any resolution.
  const std::vector<int>& cutpoints(zoo::NetId base);

  const EvalConfig& config() const { return config_; }
  const data::HandsDataset& dataset() const { return dataset_; }

  /// Stable hash of (EvalConfig, dataset config): the memo-key component
  /// that invalidates cached accuracies across config changes. Exposed so
  /// resumable exploration journals can key on the same identity.
  std::uint64_t config_hash() const { return config_hash_; }

  /// Malformed/truncated rows skipped by the last cache load (a crash
  /// mid-append leaves a torn last line; corrupted rows are dropped with a
  /// warning and the cache file is healed in place).
  int cache_rows_skipped() const {
    util::MutexLock lock(cache_mutex_);
    return cache_rows_skipped_;
  }

  /// Direct head training on explicit feature vectors (exposed for tests
  /// and the EMG classifier, which shares the training loop).
  AccuracyResult train_head_on_features(const std::vector<tensor::Tensor>& train_x,
                                        const std::vector<tensor::Tensor>& train_y,
                                        const std::vector<tensor::Tensor>& test_x,
                                        const std::vector<tensor::Tensor>& test_y,
                                        std::uint64_t seed) const;

 private:
  struct NetState {
    std::unique_ptr<nn::Network> net;  // eval-res trunk, weights + calibrated BNs
    std::vector<int> cutpoints;        // dominators, depth order
    // GAP features per cut node id, aligned with dataset train/test order.
    std::map<int, std::vector<tensor::Tensor>> train_features;
    std::map<int, std::vector<tensor::Tensor>> test_features;
  };

  NetState& state(zoo::NetId base);
  std::string cache_key(zoo::NetId base, int cut_node) const;
  /// Standardize + train the head + softmax-predict the test set — the body
  /// shared by train_head_on_features and per_image (identical op order).
  std::vector<tensor::Tensor> head_predictions(const std::vector<tensor::Tensor>& train_x,
                                               const std::vector<tensor::Tensor>& train_y,
                                               const std::vector<tensor::Tensor>& test_x,
                                               std::uint64_t seed) const;
  void load_cache() NETCUT_REQUIRES(cache_mutex_);
  void append_cache(const std::string& key, const AccuracyResult& r)
      NETCUT_REQUIRES(cache_mutex_);

  const data::HandsDataset& dataset_;
  EvalConfig config_;          // immutable after construction
  std::uint64_t config_hash_;  // immutable after construction
  /// Guards states_ and structure_; held across a base's one-time feature
  /// materialization so concurrent callers share a single extraction pass.
  /// Rank kEvalStates: the materialization fans out over the thread pool
  /// (kPool) underneath it; map entries are immutable once inserted and
  /// their references stay valid, so readers of a *materialized* state
  /// need no lock.
  mutable util::RankedMutex states_mutex_{util::rank::kEvalStates, "core/evaluator.states"};
  /// Guards cache_, cache_loaded_, cache_rows_skipped_, the memo file.
  mutable util::RankedMutex cache_mutex_{util::rank::kEvalCache, "core/evaluator.cache"};
  std::map<zoo::NetId, NetState> states_ NETCUT_GUARDED_BY(states_mutex_);
  // cutpoints w/o features
  std::map<zoo::NetId, std::vector<int>> structure_ NETCUT_GUARDED_BY(states_mutex_);
  std::map<std::string, AccuracyResult> cache_ NETCUT_GUARDED_BY(cache_mutex_);
  // Per-image memo; std::map node stability keeps returned references valid.
  std::map<std::pair<zoo::NetId, int>, PerImageEval> per_image_ NETCUT_GUARDED_BY(cache_mutex_);
  bool cache_loaded_ NETCUT_GUARDED_BY(cache_mutex_) = false;
  int cache_rows_skipped_ NETCUT_GUARDED_BY(cache_mutex_) = 0;
};

}  // namespace netcut::core
