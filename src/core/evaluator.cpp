#include "core/evaluator.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/pretrained_cache.hpp"
#include <sstream>
#include <stdexcept>

#include "util/atomic_file.hpp"

#include "ml/metrics.hpp"
#include "ml/model_selection.hpp"
#include "util/thread_pool.hpp"
#include "nn/activation.hpp"
#include "nn/dense.hpp"
#include "nn/init.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"

namespace netcut::core {

namespace {

/// Channel means of a CHW activation — the GlobalAvgPool feature vector.
tensor::Tensor gap(const tensor::Tensor& act) {
  const int C = act.shape()[0];
  const std::size_t hw =
      static_cast<std::size_t>(act.shape()[1]) * static_cast<std::size_t>(act.shape()[2]);
  tensor::Tensor out(tensor::Shape::vec(C));
  for (int c = 0; c < C; ++c) {
    const float* chan = act.data() + static_cast<std::size_t>(c) * hw;
    double s = 0.0;
    for (std::size_t i = 0; i < hw; ++i) s += chan[i];
    out[c] = static_cast<float>(s / static_cast<double>(hw));
  }
  return out;
}

std::uint64_t hash_config(const EvalConfig& c, const data::HandsConfig& d) {
  std::ostringstream os;
  os << c.resolution << '|' << c.seed << '|' << c.head.classes << '|' << c.head.hidden1 << '|'
     << c.head.hidden2 << '|' << c.epochs << '|' << c.learning_rate << '|'
     << c.calibration_images << '|' << pretrained_config_hash(c.pretrained) << '|'
     << d.train_count << '|' << d.test_count << '|' << d.seed << '|' << d.resolution;
  return util::derive_seed(0xE7A1uLL, os.str());
}

}  // namespace

TrnEvaluator::TrnEvaluator(const data::HandsDataset& dataset, EvalConfig config)
    : dataset_(dataset), config_(std::move(config)) {
  if (dataset_.config().resolution != config_.resolution)
    throw std::invalid_argument("TrnEvaluator: dataset/evaluator resolution mismatch");
  config_hash_ = hash_config(config_, dataset_.config());
}

TrnEvaluator::NetState& TrnEvaluator::state(zoo::NetId base) {
  // Held across materialization: concurrent callers for the same base block
  // until the one extraction pass finishes, then share the features
  // (std::map references stay valid across later insertions).
  util::MutexLock lock(states_mutex_);
  auto it = states_.find(base);
  if (it != states_.end()) return it->second;

  NetState st;
  nn::Graph trunk = pretrained_trunk(base, config_.resolution, config_.pretrained,
                                     config_.weight_cache_dir);
  st.net = std::make_unique<nn::Network>(std::move(trunk));

  // Optional BatchNorm re-calibration on a train subset (0 keeps the
  // statistics the pretrained trunk shipped with).
  if (config_.calibration_images > 0) {
    const auto calib = dataset_.calibration_set(
        static_cast<double>(config_.calibration_images) /
            static_cast<double>(dataset_.train().size()),
        config_.seed);
    std::vector<const tensor::Tensor*> images;
    for (const data::Sample* s : calib) images.push_back(&s->image);
    data::calibrate_batchnorm(*st.net, images);
  }

  st.cutpoints = iterative_cutpoints(st.net->graph());

  // One pass per image, harvesting GAP features at every cut site. Images
  // are independent, so the pass is partitioned across the pool; each chunk
  // runs on a private clone of the frozen trunk (Network::forward_collect
  // keeps per-instance activation state) and writes features by image index,
  // which makes the result independent of the thread count.
  auto harvest = [&](const std::vector<data::Sample>& samples,
                     std::map<int, std::vector<tensor::Tensor>>& into) {
    const std::int64_t n = static_cast<std::int64_t>(samples.size());
    for (int cp : st.cutpoints) into[cp].assign(static_cast<std::size_t>(n), tensor::Tensor());
    const int threads = util::num_threads();
    const bool parallel = threads > 1 && !util::ThreadPool::in_worker() && n > 1;
    const std::int64_t grain = parallel ? (n + threads - 1) / threads : n;
    util::parallel_for(0, n, grain, [&](std::int64_t b, std::int64_t e) {
      nn::Network* net = st.net.get();
      std::unique_ptr<nn::Network> local;
      if (parallel) {
        local = std::make_unique<nn::Network>(st.net->graph());
        net = local.get();
      }
      for (std::int64_t i = b; i < e; ++i) {
        const std::vector<tensor::Tensor> acts = net->forward_collect(
            samples[static_cast<std::size_t>(i)].image, st.cutpoints, /*train=*/false);
        for (std::size_t k = 0; k < st.cutpoints.size(); ++k)
          into[st.cutpoints[k]][static_cast<std::size_t>(i)] = gap(acts[k]);
      }
    });
  };
  harvest(dataset_.train(), st.train_features);
  harvest(dataset_.test(), st.test_features);

  return states_.emplace(base, std::move(st)).first->second;
}

const std::vector<int>& TrnEvaluator::cutpoints(zoo::NetId base) {
  // Graph structure (and so node ids) is resolution-independent, so this
  // must not trigger the expensive feature-extraction path.
  util::MutexLock lock(states_mutex_);
  auto it = structure_.find(base);
  if (it == structure_.end()) {
    const nn::Graph trunk = zoo::build_trunk(base, config_.resolution);
    it = structure_.emplace(base, iterative_cutpoints(trunk)).first;
  }
  return it->second;
}

int TrnEvaluator::full_cut(zoo::NetId base) { return cutpoints(base).back(); }

std::string TrnEvaluator::cache_key(zoo::NetId base, int cut_node) const {
  return zoo::net_name(base) + "|" + std::to_string(cut_node) + "|" +
         std::to_string(config_hash_);
}

namespace {

std::vector<std::string> split_fields(const std::string& line, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= line.size()) {
    const std::size_t end = line.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(line.substr(start));
      break;
    }
    out.push_back(line.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

bool parse_full_double(const std::string& s, double& out) {
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end != s.c_str() && *end == '\0' && std::isfinite(out);
}

std::string cache_row(const std::string& key, const AccuracyResult& r) {
  std::ostringstream os;
  os.precision(17);  // lossless double round trip
  os << key << ',' << r.angular_similarity << ',' << r.top1;
  std::string row = os.str();
  std::ostringstream ck;
  ck << std::hex << util::fnv1a64(row);
  return row + ',' + ck.str();
}

/// Accepts a legacy 3-field row (key,ang,top1) or a checksummed 4-field
/// row; rejects torn lines, non-numeric fields, and checksum mismatches.
bool parse_cache_row(const std::string& line, std::string& key, AccuracyResult& r) {
  const auto fields = split_fields(line, ',');
  if (fields.size() != 3 && fields.size() != 4) return false;
  if (fields[0].empty()) return false;
  if (!parse_full_double(fields[1], r.angular_similarity)) return false;
  if (!parse_full_double(fields[2], r.top1)) return false;
  if (fields.size() == 4) {
    const std::string prefix = fields[0] + ',' + fields[1] + ',' + fields[2];
    std::ostringstream ck;
    ck << std::hex << util::fnv1a64(prefix);
    if (ck.str() != fields[3]) return false;
  }
  key = fields[0];
  return true;
}

}  // namespace

void TrnEvaluator::load_cache() {
  cache_loaded_ = true;
  cache_rows_skipped_ = 0;
  if (config_.cache_path.empty()) return;
  std::ifstream in(config_.cache_path);
  if (!in) return;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;  // header / comment lines
    std::string key;
    AccuracyResult r;
    if (parse_cache_row(line, key, r))
      cache_[key] = r;
    else
      ++cache_rows_skipped_;
  }
  in.close();
  if (cache_rows_skipped_ == 0) return;

  // Heal: a crash mid-append (or bit rot) left torn/corrupt rows behind.
  // Skip them loudly and atomically rewrite the surviving rows so the
  // damage does not persist into the next run.
  std::fprintf(stderr,
               "[netcut] WARNING: accuracy cache %s: skipped %d malformed row(s), kept %zu; "
               "healing file\n",
               config_.cache_path.c_str(), cache_rows_skipped_, cache_.size());
  std::ostringstream healed;
  healed << "# netcut-accuracy-cache v2\n";
  for (const auto& [key, r] : cache_) healed << cache_row(key, r) << '\n';
  try {
    util::atomic_write_text(config_.cache_path, healed.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[netcut] WARNING: could not heal accuracy cache: %s\n", e.what());
  }
}

void TrnEvaluator::append_cache(const std::string& key, const AccuracyResult& r) {
  if (config_.cache_path.empty()) return;
  std::ofstream out(config_.cache_path, std::ios::app);
  out << cache_row(key, r) << '\n';
}

AccuracyResult TrnEvaluator::accuracy(zoo::NetId base, int cut_node) {
  const std::string key = cache_key(base, cut_node);
  {
    util::MutexLock lock(cache_mutex_);
    if (!cache_loaded_) load_cache();
    if (auto it = cache_.find(key); it != cache_.end()) return it->second;
  }

  NetState& st = state(base);
  const auto train_it = st.train_features.find(cut_node);
  if (train_it == st.train_features.end())
    throw std::invalid_argument("TrnEvaluator::accuracy: node " + std::to_string(cut_node) +
                                " is not a legal cut site for " + zoo::net_name(base));
  const auto& train_x = train_it->second;
  const auto& test_x = st.test_features.at(cut_node);

  std::vector<tensor::Tensor> train_y, test_y;
  train_y.reserve(dataset_.train().size());
  for (const data::Sample& s : dataset_.train()) train_y.push_back(s.label);
  test_y.reserve(dataset_.test().size());
  for (const data::Sample& s : dataset_.test()) test_y.push_back(s.label);

  const std::uint64_t seed =
      util::derive_seed(config_.seed, key);
  const AccuracyResult r = train_head_on_features(train_x, train_y, test_x, test_y, seed);
  {
    util::MutexLock lock(cache_mutex_);
    cache_[key] = r;
    append_cache(key, r);
  }
  return r;
}

std::vector<tensor::Tensor> TrnEvaluator::head_predictions(
    const std::vector<tensor::Tensor>& train_x, const std::vector<tensor::Tensor>& train_y,
    const std::vector<tensor::Tensor>& test_x, std::uint64_t seed) const {
  const int features = static_cast<int>(train_x[0].numel());

  // Standardize features (fit on train) for stable head optimization.
  std::vector<double> mean(static_cast<std::size_t>(features), 0.0);
  std::vector<double> stdev(static_cast<std::size_t>(features), 0.0);
  for (const tensor::Tensor& x : train_x)
    for (int k = 0; k < features; ++k) mean[static_cast<std::size_t>(k)] += x[k];
  for (int k = 0; k < features; ++k)
    mean[static_cast<std::size_t>(k)] /= static_cast<double>(train_x.size());
  for (const tensor::Tensor& x : train_x)
    for (int k = 0; k < features; ++k) {
      const double d = x[k] - mean[static_cast<std::size_t>(k)];
      stdev[static_cast<std::size_t>(k)] += d * d;
    }
  for (int k = 0; k < features; ++k) {
    stdev[static_cast<std::size_t>(k)] =
        std::sqrt(stdev[static_cast<std::size_t>(k)] / static_cast<double>(train_x.size()));
    if (stdev[static_cast<std::size_t>(k)] < 1e-8) stdev[static_cast<std::size_t>(k)] = 1.0;
  }
  auto standardize = [&](const tensor::Tensor& x) {
    tensor::Tensor out(tensor::Shape::vec(features));
    for (int k = 0; k < features; ++k)
      out[k] = static_cast<float>((x[k] - mean[static_cast<std::size_t>(k)]) /
                                  stdev[static_cast<std::size_t>(k)]);
    return out;
  };

  // Head as a logits network (softmax applied at evaluation).
  util::Rng rng(seed);
  nn::Graph g;
  int x = g.add_input(tensor::Shape::vec(features));
  auto fc1 = std::make_unique<nn::Dense>(features, config_.head.hidden1);
  nn::xavier_init_dense(fc1->weight(), rng);
  x = g.add(std::move(fc1), {x}, "fc1");
  x = g.add(std::make_unique<nn::ReLU>(false), {x}, "relu1");
  auto fc2 = std::make_unique<nn::Dense>(config_.head.hidden1, config_.head.hidden2);
  nn::xavier_init_dense(fc2->weight(), rng);
  x = g.add(std::move(fc2), {x}, "fc2");
  x = g.add(std::make_unique<nn::ReLU>(false), {x}, "relu2");
  auto fc3 = std::make_unique<nn::Dense>(config_.head.hidden2, config_.head.classes);
  nn::xavier_init_dense(fc3->weight(), rng);
  g.add(std::move(fc3), {x}, "logits");
  nn::Network head(std::move(g));

  nn::Adam opt(config_.learning_rate);
  opt.bind(head.params(), head.grads());

  std::vector<tensor::Tensor> std_train;
  std_train.reserve(train_x.size());
  for (const tensor::Tensor& t : train_x) std_train.push_back(standardize(t));

  const int n = static_cast<int>(std_train.size());
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    const std::vector<int> order = rng.permutation(n);
    for (int i : order) {
      head.zero_grads();
      const tensor::Tensor logits =
          head.forward(std_train[static_cast<std::size_t>(i)], /*train=*/true);
      const nn::loss::LossResult lr =
          nn::loss::soft_cross_entropy(logits, train_y[static_cast<std::size_t>(i)]);
      head.backward(lr.grad);
      opt.step();
    }
  }

  std::vector<tensor::Tensor> predictions;
  predictions.reserve(test_x.size());
  for (const tensor::Tensor& t : test_x)
    predictions.push_back(nn::softmax(head.forward(standardize(t), false)));
  return predictions;
}

AccuracyResult TrnEvaluator::train_head_on_features(
    const std::vector<tensor::Tensor>& train_x, const std::vector<tensor::Tensor>& train_y,
    const std::vector<tensor::Tensor>& test_x, const std::vector<tensor::Tensor>& test_y,
    std::uint64_t seed) const {
  if (train_x.empty() || train_x.size() != train_y.size() || test_x.size() != test_y.size())
    throw std::invalid_argument("train_head_on_features: bad dataset");
  const std::vector<tensor::Tensor> predictions =
      head_predictions(train_x, train_y, test_x, seed);

  AccuracyResult r;
  r.angular_similarity = ml::mean_angular_similarity(predictions, test_y);
  r.top1 = ml::top1_agreement(predictions, test_y);
  return r;
}

const PerImageEval& TrnEvaluator::per_image(zoo::NetId base, int cut_node) {
  const auto key = std::make_pair(base, cut_node);
  {
    util::MutexLock lock(cache_mutex_);
    if (auto it = per_image_.find(key); it != per_image_.end()) return it->second;
  }

  NetState& st = state(base);
  const auto train_it = st.train_features.find(cut_node);
  if (train_it == st.train_features.end())
    throw std::invalid_argument("TrnEvaluator::per_image: node " + std::to_string(cut_node) +
                                " is not a legal cut site for " + zoo::net_name(base));
  const auto& train_x = train_it->second;
  const auto& test_x = st.test_features.at(cut_node);

  std::vector<tensor::Tensor> train_y;
  train_y.reserve(dataset_.train().size());
  for (const data::Sample& s : dataset_.train()) train_y.push_back(s.label);

  // Same seed derivation as accuracy(): the retrained head is the same head.
  const std::uint64_t seed = util::derive_seed(config_.seed, cache_key(base, cut_node));
  const std::vector<tensor::Tensor> predictions =
      head_predictions(train_x, train_y, test_x, seed);

  PerImageEval e;
  e.margin.reserve(predictions.size());
  e.angular.reserve(predictions.size());
  e.correct.reserve(predictions.size());
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    const tensor::Tensor& p = predictions[i];
    const tensor::Tensor& label = dataset_.test()[i].label;
    float top1 = 0.0f, top2 = 0.0f;
    for (int k = 0; k < static_cast<int>(p.numel()); ++k) {
      if (p[k] > top1) {
        top2 = top1;
        top1 = p[k];
      } else if (p[k] > top2) {
        top2 = p[k];
      }
    }
    e.margin.push_back(static_cast<double>(top1) - static_cast<double>(top2));
    e.angular.push_back(ml::angular_similarity(p, label));
    e.correct.push_back(ml::top1_agreement({p}, {label}) > 0.5 ? 1 : 0);
  }

  util::MutexLock lock(cache_mutex_);
  // emplace keeps the first computation if two threads raced; both computed
  // identical values anyway (same seed, same op order).
  return per_image_.emplace(key, std::move(e)).first->second;
}

}  // namespace netcut::core
