#include "core/cascade.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <utility>

namespace netcut::core {

namespace {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

double parse_num(const std::string& s, const std::string& clause) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0' || !std::isfinite(v))
    throw std::invalid_argument("--cascade: bad number '" + s + "' in clause '" + clause + "'");
  return v;
}

int parse_ordinal(const std::string& s, const std::string& clause) {
  const double v = parse_num(s, clause);
  if (v != std::floor(v) || v < 0.0 || v > 2147483647.0)
    throw std::invalid_argument("--cascade: '" + s + "' is not a cut ordinal >= 0 in clause '" +
                                clause + "'");
  return static_cast<int>(v);
}

int checked_resume(const nn::Graph& trunk, int shallow_cut, int deep_cut) {
  if (shallow_cut >= deep_cut)
    throw std::invalid_argument("CascadeTrn: shallow cut must precede deep cut");
  return trunk.prefix(shallow_cut).node_count() - 1;
}

}  // namespace

CascadeSpec parse_cascade_spec(std::string_view spec) {
  CascadeSpec cfg;
  if (spec.empty()) return cfg;

  bool have_shallow = false, have_deep = false, have_thr = false;
  for (const std::string& clause : split(spec, ',')) {
    if (clause.empty()) continue;
    if (clause == "off") return CascadeSpec{};

    const std::size_t eq = clause.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("--cascade: clause '" + clause +
                                  "' is not key=value (or 'off')");
    const std::string key = clause.substr(0, eq);
    const std::string val = clause.substr(eq + 1);

    if (key == "shallow") {
      cfg.shallow = parse_ordinal(val, clause);
      have_shallow = true;
    } else if (key == "deep") {
      cfg.deep = parse_ordinal(val, clause);
      have_deep = true;
    } else if (key == "thr") {
      cfg.threshold = parse_num(val, clause);
      if (cfg.threshold < 0.0 || cfg.threshold > 1.0)
        throw std::invalid_argument("--cascade: threshold out of [0,1] in clause '" + clause +
                                    "'");
      have_thr = true;
    } else {
      throw std::invalid_argument("--cascade: unknown clause '" + clause + "'");
    }
  }
  if (!have_shallow || !have_deep || !have_thr)
    throw std::invalid_argument("--cascade: spec needs shallow=, deep= and thr= clauses");
  if (cfg.shallow >= cfg.deep)
    throw std::invalid_argument("--cascade: shallow ordinal must be < deep ordinal");
  cfg.enabled = true;
  return cfg;
}

std::string format_cascade_spec(const CascadeSpec& spec) {
  if (!spec.enabled) return "off";
  // %.17g is round-trip exact for doubles and contains no grammar
  // separators, so parse(format(s)) == s for every enabled spec.
  char buf[96];
  std::snprintf(buf, sizeof buf, "shallow=%d,deep=%d,thr=%.17g", spec.shallow, spec.deep,
                spec.threshold);
  return buf;
}

double softmax_margin(const tensor::Tensor& probs) {
  const int n = static_cast<int>(probs.numel());
  if (n < 1) throw std::invalid_argument("softmax_margin: empty distribution");
  float top1 = 0.0f, top2 = 0.0f;
  for (int k = 0; k < n; ++k) {
    if (probs[k] > top1) {
      top2 = top1;
      top1 = probs[k];
    } else if (probs[k] > top2) {
      top2 = probs[k];
    }
  }
  return static_cast<double>(top1) - static_cast<double>(top2);
}

// ---- CascadeTrn --------------------------------------------------------

CascadeTrn::CascadeTrn(const nn::Graph& trunk, int shallow_cut, int deep_cut,
                       const HeadConfig& head, util::Rng& rng)
    : shallow_cut_(shallow_cut),
      deep_cut_(deep_cut),
      resume_node_(checked_resume(trunk, shallow_cut, deep_cut)),
      shallow_(build_trn(trunk, shallow_cut, head, rng)),
      deep_(build_trn(trunk, deep_cut, head, rng)) {}

CascadeTrn::Stage1 CascadeTrn::stage1(const tensor::Tensor& input) {
  // One pass harvests both the prediction and the trunk activation the
  // second stage resumes from.
  std::vector<tensor::Tensor> got =
      shallow_.forward_collect(input, {resume_node_, shallow_.graph().output_node()});
  Stage1 s;
  s.trunk_act = std::move(got[0]);
  s.output = std::move(got[1]);
  s.margin = softmax_margin(s.output);
  return s;
}

std::vector<CascadeTrn::Stage1> CascadeTrn::stage1_batch(
    const std::vector<const tensor::Tensor*>& inputs) {
  // A loop of singles: forward_batch is documented bitwise identical to N
  // independent forwards, so this is the same result by contract, and the
  // collect set (trunk activation + output) keeps the single-pass path the
  // simpler one.
  std::vector<Stage1> out;
  out.reserve(inputs.size());
  for (const tensor::Tensor* in : inputs) {
    if (in == nullptr) throw std::invalid_argument("CascadeTrn::stage1_batch: null input");
    out.push_back(stage1(*in));
  }
  return out;
}

tensor::Tensor CascadeTrn::escalate(const Stage1& s) {
  return deep_.forward_from(resume_node_, s.trunk_act);
}

std::vector<tensor::Tensor> CascadeTrn::escalate_batch(
    const std::vector<const Stage1*>& stages) {
  std::vector<const tensor::Tensor*> seeds;
  seeds.reserve(stages.size());
  for (const Stage1* s : stages) {
    if (s == nullptr) throw std::invalid_argument("CascadeTrn::escalate_batch: null stage");
    seeds.push_back(&s->trunk_act);
  }
  return deep_.forward_from_batch(resume_node_, seeds);
}

CascadeTrn::Result CascadeTrn::classify(const tensor::Tensor& input, double threshold) {
  Stage1 s = stage1(input);
  Result r;
  r.margin = s.margin;
  if (s.margin < threshold) {
    r.output = escalate(s);
    r.escalated = true;
  } else {
    r.output = std::move(s.output);
  }
  return r;
}

// ---- CascadeExplorer ---------------------------------------------------

CascadeExplorer::CascadeExplorer(TrnEvaluator& evaluator, LatencyLab& lab)
    : evaluator_(evaluator), lab_(lab) {}

std::vector<double> CascadeExplorer::default_thresholds() {
  return {0.0, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.6, 0.8, 1.0};
}

double CascadeExplorer::escalation_rate(zoo::NetId base, int shallow_cut, double threshold) {
  const PerImageEval& sh = evaluator_.per_image(base, shallow_cut);
  int escalated = 0, total = 0;
  for (std::size_t i = 0; i < sh.margin.size(); i += 2) {  // calibration half
    ++total;
    if (sh.margin[i] < threshold) ++escalated;
  }
  if (total == 0) throw std::logic_error("CascadeExplorer: empty calibration split");
  return static_cast<double>(escalated) / static_cast<double>(total);
}

CascadeOperatingPoint CascadeExplorer::operating_point(zoo::NetId base, int shallow_cut,
                                                       int deep_cut, double threshold) {
  if (shallow_cut >= deep_cut)
    throw std::invalid_argument("CascadeExplorer: shallow cut must precede deep cut");
  const PerImageEval& sh = evaluator_.per_image(base, shallow_cut);
  const PerImageEval& dp = evaluator_.per_image(base, deep_cut);

  CascadeOperatingPoint p;
  p.shallow_cut = shallow_cut;
  p.deep_cut = deep_cut;
  p.threshold = threshold;
  p.p_escalate = escalation_rate(base, shallow_cut, threshold);

  // Accuracy on the eval half (odd indices): each image scores with the
  // stage the gate would actually answer from.
  double sum = 0.0;
  int count = 0;
  for (std::size_t i = 1; i < sh.margin.size(); i += 2) {
    sum += sh.margin[i] >= threshold ? sh.angular[i] : dp.angular[i];
    ++count;
  }
  if (count == 0) throw std::logic_error("CascadeExplorer: empty eval split");
  p.accuracy = sum / static_cast<double>(count);

  p.latency_ms = lab_.measured_ms(base, shallow_cut) +
                 p.p_escalate * lab_.measured_stage2_ms(base, shallow_cut, deep_cut);

  char thr[32];
  std::snprintf(thr, sizeof thr, "%g", threshold);
  p.name = lab_.name(base, shallow_cut) + "+" +
           std::to_string(lab_.layers_remaining(base, deep_cut)) + "@" + thr;
  return p;
}

std::vector<CascadeOperatingPoint> CascadeExplorer::sweep(zoo::NetId base,
                                                          const std::vector<int>& cuts,
                                                          const std::vector<double>& thresholds) {
  std::vector<CascadeOperatingPoint> out;
  for (std::size_t i = 0; i < cuts.size(); ++i)
    for (std::size_t j = i + 1; j < cuts.size(); ++j)
      for (const double thr : thresholds)
        out.push_back(operating_point(base, cuts[i], cuts[j], thr));
  return out;
}

std::vector<TradeoffPoint> CascadeExplorer::single_cut_points(zoo::NetId base,
                                                              const std::vector<int>& cuts) {
  std::vector<TradeoffPoint> out;
  out.reserve(cuts.size());
  for (const int cut : cuts) {
    const PerImageEval& e = evaluator_.per_image(base, cut);
    double sum = 0.0;
    int count = 0;
    for (std::size_t i = 1; i < e.angular.size(); i += 2) {
      sum += e.angular[i];
      ++count;
    }
    if (count == 0) throw std::logic_error("CascadeExplorer: empty eval split");
    out.push_back({lab_.name(base, cut), lab_.measured_ms(base, cut),
                   sum / static_cast<double>(count)});
  }
  return out;
}

bool cascade_improves(const std::vector<CascadeOperatingPoint>& cascade_points,
                      const std::vector<TradeoffPoint>& single_cut_front) {
  for (const CascadeOperatingPoint& p : cascade_points) {
    const TradeoffPoint tp = p.as_tradeoff();
    for (const TradeoffPoint& q : single_cut_front)
      if (dominates(tp, q)) return true;
  }
  return false;
}

}  // namespace netcut::core
