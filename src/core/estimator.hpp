// TRN latency estimation — Section V-B.
//
// Three estimators behind one interface:
//  * ProfilerEstimator (V-B1): from one per-layer latency table per base
//    network, estimate the TRN by rescaling the base's measured end-to-end
//    latency with the removed-layer ratio:
//       Latency(TRN_n) = Latency(Net_0) * (1 - Σ_removed / Σ_all)
//    The ratio form (rather than a plain sum) compensates the per-layer
//    event overhead that makes Σ layers exceed the end-to-end measurement.
//  * AnalyticalEstimator (V-B2): device-agnostic ε-SVR (RBF kernel) over
//    {base latency, FLOPs, parameters, layer count, filter sizes}.
//  * LinearEstimator: the same features under ordinary least squares — the
//    paper's ablation showing why the RBF kernel matters.
#pragma once

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "core/lab.hpp"
#include "ml/linreg.hpp"
#include "ml/model_selection.hpp"
#include "ml/svr.hpp"

namespace netcut::core {

/// The analytical model's device-agnostic feature vector (Section V-B2).
struct TrnFeatures {
  double base_latency_ms = 0.0;  // the original network's measured latency
  double gflops = 0.0;           // total FLOPs of the TRN
  double mparams = 0.0;          // total parameters of the TRN
  double layer_count = 0.0;      // graph layers in the TRN
  double filter_size_sum = 0.0;  // summed spatial kernel sizes over conv layers

  std::vector<double> as_row() const {
    return {base_latency_ms, gflops, mparams, layer_count, filter_size_sum};
  }
};

/// Features of the TRN at native resolution (uses the lab's graphs).
TrnFeatures compute_trn_features(LatencyLab& lab, zoo::NetId base, int cut_node);

class LatencyEstimator {
 public:
  virtual ~LatencyEstimator() = default;
  virtual double estimate_ms(zoo::NetId base, int cut_node) = 0;

  /// Estimated latency of one batched pass over `batch` images. The default
  /// assumes perfectly linear scaling (batch x estimate_ms) — a conservative
  /// upper bound, since a batched launch amortizes per-kernel overhead.
  /// Estimators with access to the device's batch behavior override this;
  /// batch == 1 always equals estimate_ms.
  virtual double estimate_batch_ms(zoo::NetId base, int cut_node, int batch) {
    return static_cast<double>(batch) * estimate_ms(base, cut_node);
  }

  /// Expected latency of a confidence-gated cascade over (shallow, deep)
  /// with escalation probability `p_escalate`: every request pays the
  /// shallow stage, escalated ones add the deep TRN's suffix past the
  /// shared trunk prefix. The default approximates that suffix by the
  /// difference of the two single-cut estimates (the trunk delta; it
  /// slightly undercounts the deep head). Estimators with device access
  /// override with the device's true suffix scaling; batch == 1 semantics.
  virtual double estimate_cascade_ms(zoo::NetId base, int shallow_cut, int deep_cut,
                                     double p_escalate) {
    const double shallow = estimate_ms(base, shallow_cut);
    const double deep = estimate_ms(base, deep_cut);
    return shallow + p_escalate * std::max(0.0, deep - shallow);
  }

  virtual std::string name() const = 0;
};

class ProfilerEstimator final : public LatencyEstimator {
 public:
  /// Profiles each base network lazily through the lab (one table per
  /// unmodified network).
  explicit ProfilerEstimator(LatencyLab& lab);

  /// Rows whose fault-schedule confidence falls below this are not trusted:
  /// their latency is interpolated from neighboring trusted rows (with a
  /// loud warning) before the ratio formula runs.
  static constexpr double kMinRowConfidence = 0.5;

  double estimate_ms(zoo::NetId base, int cut_node) override;

  /// Batched estimate: rescale the single-image estimate by the device's
  /// noise-free batch-scaling curve at this cut,
  ///   estimate_batch_ms = estimate_ms * true_batch_ms(cut, batch) / true_ms(cut),
  /// so the estimator keeps its profiled-measurement grounding while the
  /// batch amortization (launch once, weights stream once) comes from the
  /// device model. batch == 1 reduces to estimate_ms exactly.
  double estimate_batch_ms(zoo::NetId base, int cut_node, int batch) override;

  /// Cascade estimate grounded like the batched one: the second-stage cost
  /// is the single-cut deep estimate rescaled by the device's noise-free
  /// suffix ratio true_stage2_ms / true_ms(deep), so profiling errors track
  /// the same row they came from. p_escalate == 0 reduces to the shallow
  /// estimate, p_escalate == 1 to shallow + full second stage.
  double estimate_cascade_ms(zoo::NetId base, int shallow_cut, int deep_cut,
                             double p_escalate) override;

  std::string name() const override { return "profiler"; }

 private:
  LatencyLab& lab_;
  std::set<zoo::NetId> warned_;  // one repair warning per base network
};

/// One (features, measured latency) training row per TRN.
struct LatencySample {
  zoo::NetId base;
  int cut_node;
  TrnFeatures features;
  double measured_ms;
};

class AnalyticalEstimator final : public LatencyEstimator {
 public:
  /// If grid_search is true, (γ, C) are tuned by 10-fold CV grid search on
  /// the training rows (the paper's protocol); otherwise the paper's tuned
  /// values γ=0.1, C=1e6 are used directly.
  AnalyticalEstimator(LatencyLab& lab, bool grid_search = false,
                      ml::SvrConfig base_config = {});

  void fit(const std::vector<LatencySample>& train);
  double estimate_ms(zoo::NetId base, int cut_node) override;
  double predict(const TrnFeatures& f) const;
  std::string name() const override { return "analytical-svr"; }
  const ml::SvrConfig& fitted_config() const { return fitted_config_; }

 private:
  LatencyLab& lab_;
  bool grid_search_;
  ml::SvrConfig base_config_;
  ml::SvrConfig fitted_config_;
  ml::Standardizer scaler_;
  std::unique_ptr<ml::Svr> svr_;
};

class LinearEstimator final : public LatencyEstimator {
 public:
  explicit LinearEstimator(LatencyLab& lab);

  void fit(const std::vector<LatencySample>& train);
  double estimate_ms(zoo::NetId base, int cut_node) override;
  double predict(const TrnFeatures& f) const;
  std::string name() const override { return "linear-regression"; }

 private:
  LatencyLab& lab_;
  ml::Standardizer scaler_;
  ml::LinearRegression model_;
};

}  // namespace netcut::core
