#include "core/explorer.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/atomic_file.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace netcut::core {

namespace {

constexpr const char* kJournalTag = "#netcut-journal v1 ";

std::vector<std::string> split_fields(const std::string& line, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= line.size()) {
    const std::size_t end = line.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(line.substr(start));
      break;
    }
    out.push_back(line.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

bool parse_full_double(const std::string& s, double& out) {
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end != s.c_str() && *end == '\0' && std::isfinite(out);
}

std::string journal_row(const std::string& base_name, int cut_node, const AccuracyResult& r) {
  std::ostringstream os;
  os.precision(17);  // lossless double round trip
  os << base_name << ',' << cut_node << ',' << r.angular_similarity << ',' << r.top1;
  std::string row = os.str();
  std::ostringstream ck;
  ck << std::hex << util::fnv1a64(row);
  return row + ',' + ck.str();
}

/// Rejects torn lines, non-numeric fields, and checksum mismatches — a
/// crash mid-append leaves exactly one such row at the tail.
bool parse_journal_row(const std::string& line, std::string& base_name, int& cut_node,
                       AccuracyResult& r) {
  const auto fields = split_fields(line, ',');
  if (fields.size() != 5 || fields[0].empty()) return false;
  double cut = 0.0;
  if (!parse_full_double(fields[1], cut) || cut != std::floor(cut)) return false;
  if (!parse_full_double(fields[2], r.angular_similarity)) return false;
  if (!parse_full_double(fields[3], r.top1)) return false;
  const std::string prefix =
      fields[0] + ',' + fields[1] + ',' + fields[2] + ',' + fields[3];
  std::ostringstream ck;
  ck << std::hex << util::fnv1a64(prefix);
  if (ck.str() != fields[4]) return false;
  base_name = fields[0];
  cut_node = static_cast<int>(cut);
  return true;
}

}  // namespace

BlockwiseExplorer::BlockwiseExplorer(LatencyLab& lab, TrnEvaluator& evaluator)
    : lab_(lab), evaluator_(evaluator) {}

std::uint64_t BlockwiseExplorer::journal_key() const {
  // Everything the journalled accuracies depend on: the evaluator identity
  // (dataset + head + pretraining config) plus the lab settings that select
  // which TRN is being explored under which deployment mode.
  const LabConfig& lc = lab_.config();
  std::ostringstream os;
  os << lc.device.name << '|' << hw::to_string(lc.precision) << '|' << lc.fuse << '|'
     << lc.measure.seed;
  return util::derive_seed(evaluator_.config_hash(), os.str());
}

void BlockwiseExplorer::set_journal(const std::string& path) {
  // Setup-time API, but the journal state is guarded so the load cannot
  // race a straggling sweep's appends.
  util::MutexLock lock(journal_mutex_);
  journal_path_ = path;
  journal_.clear();
  journal_hits_ = 0;
  if (path.empty()) return;

  std::ostringstream key_hex;
  key_hex << std::hex << journal_key();
  const std::string header = kJournalTag + key_hex.str();

  std::ifstream in(path);
  if (in) {
    std::string line;
    bool header_ok = std::getline(in, line) && line == header;
    if (!header_ok) {
      in.close();
      const std::string moved = util::quarantine_file(path);
      std::fprintf(stderr,
                   "[netcut] WARNING: exploration journal %s was written under a different "
                   "configuration (or is corrupt); quarantined as %s, starting fresh\n",
                   path.c_str(), moved.c_str());
    } else {
      int skipped = 0;
      while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#') continue;
        std::string base_name;
        int cut_node = 0;
        AccuracyResult r;
        if (parse_journal_row(line, base_name, cut_node, r))
          journal_[{base_name, cut_node}] = r;
        else
          ++skipped;
      }
      if (skipped > 0) {
        std::fprintf(stderr,
                     "[netcut] WARNING: exploration journal %s: skipped %d torn/corrupt "
                     "row(s), resuming from %zu completed retraining(s)\n",
                     path.c_str(), skipped, journal_.size());
        // Heal before appending: a torn tail row has no trailing newline, so
        // a straight append would concatenate onto it and corrupt the next
        // row too. Rewriting the surviving rows atomically resets the file
        // to a clean append point.
        std::ostringstream healed;
        healed << header << '\n';
        for (const auto& [bc, r] : journal_) healed << journal_row(bc.first, bc.second, r) << '\n';
        util::atomic_write_text(path, healed.str());
      }
      return;  // keep appending to the validated file
    }
  }

  // Missing (or just quarantined): publish a fresh journal, header first,
  // atomically — a crash here leaves either no file or a valid empty one.
  util::atomic_write_text(path, header + '\n');
}

void BlockwiseExplorer::journal_append(const std::string& base_name, int cut_node,
                                       const AccuracyResult& r) {
  // Append-only: a crash can tear at most the final row, which the next
  // load rejects via its checksum and simply recomputes.
  std::ofstream out(journal_path_, std::ios::app);
  out << journal_row(base_name, cut_node, r) << '\n';
}

Candidate BlockwiseExplorer::lab_stub(zoo::NetId base, int cut_node, int blocks_removed) {
  Candidate c;
  c.base = base;
  c.base_name = zoo::net_name(base);
  c.trn_name = lab_.name(base, cut_node);
  c.cut_node = cut_node;
  c.blocks_removed = blocks_removed;
  c.layers_removed = lab_.layers_removed(base, cut_node);
  c.layers_remaining = lab_.layers_remaining(base, cut_node);
  c.latency_ms = lab_.measured_ms(base, cut_node);
  c.train_hours = lab_.training_hours(base, cut_node);
  return c;
}

Candidate BlockwiseExplorer::evaluate_cut(zoo::NetId base, int cut_node, int blocks_removed) {
  Candidate c = lab_stub(base, cut_node, blocks_removed);
  const AccuracyResult acc = evaluator_.accuracy(base, cut_node);
  c.accuracy = acc.angular_similarity;
  c.top1 = acc.top1;
  return c;
}

std::vector<Candidate> BlockwiseExplorer::evaluate_cuts(
    zoo::NetId base, const std::vector<std::pair<int, int>>& cuts) {
  // Phase 1 (serial): the LatencyLab is not thread-safe (memo maps), but its
  // analytical measurements are cheap relative to head retraining.
  std::vector<Candidate> out;
  out.reserve(cuts.size());
  for (const auto& [cut_node, blocks_removed] : cuts)
    out.push_back(lab_stub(base, cut_node, blocks_removed));

  // Journal resume: candidates whose retraining already completed in a
  // previous (interrupted) run take their accuracy straight from the
  // journal. The lab phase above still ran for every candidate, in the
  // original order, so the measurement RNG streams — which are seeded by
  // call order — are identical to an uninterrupted sweep.
  std::vector<bool> journaled(out.size(), false);
  if (!journal_path_.empty()) {
    util::MutexLock lock(journal_mutex_);
    for (std::size_t i = 0; i < out.size(); ++i) {
      const auto it = journal_.find({out[i].base_name, out[i].cut_node});
      if (it == journal_.end()) continue;
      out[i].accuracy = it->second.angular_similarity;
      out[i].top1 = it->second.top1;
      journaled[i] = true;
      ++journal_hits_;
    }
  }

  // Phase 2 (parallel): per-cut head retraining dominates and each TRN is
  // independent. Feature extraction happens once, up front, at the outer
  // parallelism level; each candidate's head is seeded from its cut key, so
  // the result set is identical at any thread count.
  bool all_journaled = true;
  for (std::size_t i = 0; i < out.size(); ++i)
    if (!journaled[i]) all_journaled = false;
  if (all_journaled) return out;  // skip the expensive feature extraction too

  evaluator_.prepare(base);
  util::parallel_for(
      0, static_cast<std::int64_t>(out.size()), 1, [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) {
          if (journaled[static_cast<std::size_t>(i)]) continue;
          Candidate& c = out[static_cast<std::size_t>(i)];
          const AccuracyResult acc = evaluator_.accuracy(base, c.cut_node);
          c.accuracy = acc.angular_similarity;
          c.top1 = acc.top1;
          if (!journal_path_.empty()) {
            util::MutexLock lock(journal_mutex_);
            journal_[{c.base_name, c.cut_node}] = {c.accuracy, c.top1};
            journal_append(c.base_name, c.cut_node, {c.accuracy, c.top1});
          }
        }
      });
  return out;
}

std::vector<Candidate> BlockwiseExplorer::explore(zoo::NetId base, bool include_full) {
  const std::vector<int>& cuts = lab_.blockwise(base);
  std::vector<std::pair<int, int>> plan;
  if (include_full) plan.emplace_back(lab_.full_cut(base), 0);
  const int blocks = static_cast<int>(cuts.size());
  // Removing the last k blocks keeps blocks 0..B-1-k; always keep >= 1.
  for (int k = 1; k <= blocks - 1; ++k)
    plan.emplace_back(cuts[static_cast<std::size_t>(blocks - 1 - k)], k);
  return evaluate_cuts(base, plan);
}

std::vector<Candidate> BlockwiseExplorer::explore_all(bool include_full) {
  std::vector<Candidate> out;
  for (zoo::NetId id : zoo::all_nets()) {
    std::vector<Candidate> per = explore(id, include_full);
    out.insert(out.end(), per.begin(), per.end());
  }
  return out;
}

std::vector<Candidate> BlockwiseExplorer::explore_iterative(zoo::NetId base,
                                                            bool include_full) {
  const std::vector<int>& cuts = lab_.iterative(base);
  std::vector<std::pair<int, int>> plan;
  const int n = static_cast<int>(cuts.size());
  // cuts.back() is the trunk output; earlier entries remove progressively
  // more layers. Keep at least the first dominator.
  for (int i = n - 1; i >= 1; --i) {
    const bool is_full = i == n - 1;
    if (is_full && !include_full) continue;
    plan.emplace_back(cuts[static_cast<std::size_t>(i)], is_full ? 0 : -1);
  }
  return evaluate_cuts(base, plan);
}

double BlockwiseExplorer::total_train_hours(const std::vector<Candidate>& candidates) {
  double h = 0.0;
  for (const Candidate& c : candidates) h += c.train_hours;
  return h;
}

}  // namespace netcut::core
