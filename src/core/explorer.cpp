#include "core/explorer.hpp"

#include "util/thread_pool.hpp"

namespace netcut::core {

BlockwiseExplorer::BlockwiseExplorer(LatencyLab& lab, TrnEvaluator& evaluator)
    : lab_(lab), evaluator_(evaluator) {}

Candidate BlockwiseExplorer::lab_stub(zoo::NetId base, int cut_node, int blocks_removed) {
  Candidate c;
  c.base = base;
  c.base_name = zoo::net_name(base);
  c.trn_name = lab_.name(base, cut_node);
  c.cut_node = cut_node;
  c.blocks_removed = blocks_removed;
  c.layers_removed = lab_.layers_removed(base, cut_node);
  c.layers_remaining = lab_.layers_remaining(base, cut_node);
  c.latency_ms = lab_.measured_ms(base, cut_node);
  c.train_hours = lab_.training_hours(base, cut_node);
  return c;
}

Candidate BlockwiseExplorer::evaluate_cut(zoo::NetId base, int cut_node, int blocks_removed) {
  Candidate c = lab_stub(base, cut_node, blocks_removed);
  const AccuracyResult acc = evaluator_.accuracy(base, cut_node);
  c.accuracy = acc.angular_similarity;
  c.top1 = acc.top1;
  return c;
}

std::vector<Candidate> BlockwiseExplorer::evaluate_cuts(
    zoo::NetId base, const std::vector<std::pair<int, int>>& cuts) {
  // Phase 1 (serial): the LatencyLab is not thread-safe (memo maps), but its
  // analytical measurements are cheap relative to head retraining.
  std::vector<Candidate> out;
  out.reserve(cuts.size());
  for (const auto& [cut_node, blocks_removed] : cuts)
    out.push_back(lab_stub(base, cut_node, blocks_removed));

  // Phase 2 (parallel): per-cut head retraining dominates and each TRN is
  // independent. Feature extraction happens once, up front, at the outer
  // parallelism level; each candidate's head is seeded from its cut key, so
  // the result set is identical at any thread count.
  evaluator_.prepare(base);
  util::parallel_for(
      0, static_cast<std::int64_t>(out.size()), 1, [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) {
          Candidate& c = out[static_cast<std::size_t>(i)];
          const AccuracyResult acc = evaluator_.accuracy(base, c.cut_node);
          c.accuracy = acc.angular_similarity;
          c.top1 = acc.top1;
        }
      });
  return out;
}

std::vector<Candidate> BlockwiseExplorer::explore(zoo::NetId base, bool include_full) {
  const std::vector<int>& cuts = lab_.blockwise(base);
  std::vector<std::pair<int, int>> plan;
  if (include_full) plan.emplace_back(lab_.full_cut(base), 0);
  const int blocks = static_cast<int>(cuts.size());
  // Removing the last k blocks keeps blocks 0..B-1-k; always keep >= 1.
  for (int k = 1; k <= blocks - 1; ++k)
    plan.emplace_back(cuts[static_cast<std::size_t>(blocks - 1 - k)], k);
  return evaluate_cuts(base, plan);
}

std::vector<Candidate> BlockwiseExplorer::explore_all(bool include_full) {
  std::vector<Candidate> out;
  for (zoo::NetId id : zoo::all_nets()) {
    std::vector<Candidate> per = explore(id, include_full);
    out.insert(out.end(), per.begin(), per.end());
  }
  return out;
}

std::vector<Candidate> BlockwiseExplorer::explore_iterative(zoo::NetId base,
                                                            bool include_full) {
  const std::vector<int>& cuts = lab_.iterative(base);
  std::vector<std::pair<int, int>> plan;
  const int n = static_cast<int>(cuts.size());
  // cuts.back() is the trunk output; earlier entries remove progressively
  // more layers. Keep at least the first dominator.
  for (int i = n - 1; i >= 1; --i) {
    const bool is_full = i == n - 1;
    if (is_full && !include_full) continue;
    plan.emplace_back(cuts[static_cast<std::size_t>(i)], is_full ? 0 : -1);
  }
  return evaluate_cuts(base, plan);
}

double BlockwiseExplorer::total_train_hours(const std::vector<Candidate>& candidates) {
  double h = 0.0;
  for (const Candidate& c : candidates) h += c.train_hours;
  return h;
}

}  // namespace netcut::core
