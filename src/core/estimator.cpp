#include "core/estimator.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "nn/conv.hpp"

namespace netcut::core {

TrnFeatures compute_trn_features(LatencyLab& lab, zoo::NetId base, int cut_node) {
  const nn::Graph trn = lab.build_native_trn(base, cut_node);
  TrnFeatures f;
  const nn::LayerCost cost = trn.total_cost();
  f.base_latency_ms = lab.measured_ms(base, lab.full_cut(base));
  f.gflops = static_cast<double>(cost.flops) / 1e9;
  f.mparams = static_cast<double>(cost.params) / 1e6;
  f.layer_count = static_cast<double>(trn.layer_count());
  double filter_sum = 0.0;
  for (int id = 1; id < trn.node_count(); ++id) {
    const nn::Layer& layer = *trn.node(id).layer;
    if (layer.kind() == nn::LayerKind::kConv2D) {
      const auto& conv = static_cast<const nn::Conv2D&>(layer);
      filter_sum += conv.kernel_h() * conv.kernel_w();
    } else if (layer.kind() == nn::LayerKind::kDepthwiseConv2D) {
      const auto& conv = static_cast<const nn::DepthwiseConv2D&>(layer);
      filter_sum += conv.kernel() * conv.kernel();
    }
  }
  f.filter_size_sum = filter_sum;
  return f;
}

ProfilerEstimator::ProfilerEstimator(LatencyLab& lab) : lab_(lab) {}

double ProfilerEstimator::estimate_ms(zoo::NetId base, int cut_node) {
  const hw::LatencyTable& table = lab_.profile(base);
  const int trunk_last = lab_.trunk_last_node(base);

  // Effective per-row latencies. A row whose fault-schedule confidence is
  // too low carries garbage (or nothing): substitute the mean of its
  // nearest trusted unfused trunk neighbors — the same ratio-formula spirit
  // applied locally — rather than letting one bad row skew the whole sum.
  struct TrunkRow {
    int node;
    double ms;
    bool trusted;  // fused rows (exact 0) and confident rows
    bool fused;
  };
  std::vector<TrunkRow> rows;
  int repaired = 0;
  int unfused_rows = 0;
  for (const hw::ProfiledLayer& l : table.layers) {
    if (l.node > trunk_last) continue;  // head row
    const bool trusted = l.fused_away || l.confidence >= kMinRowConfidence;
    rows.push_back({l.node, l.latency_ms, trusted, l.fused_away});
    if (!l.fused_away) ++unfused_rows;
  }
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].trusted) continue;
    double acc = 0.0;
    int n = 0;
    for (std::size_t j = i; j-- > 0;)  // nearest trusted unfused row before
      if (rows[j].trusted && rows[j].ms > 0.0) {
        acc += rows[j].ms;
        ++n;
        break;
      }
    for (std::size_t j = i + 1; j < rows.size(); ++j)  // ... and after
      if (rows[j].trusted && rows[j].ms > 0.0) {
        acc += rows[j].ms;
        ++n;
        break;
      }
    // No trusted neighbor anywhere: fall back to a uniform share of the
    // end-to-end measurement over the unfused trunk rows.
    rows[i].ms = n > 0 ? acc / n
                       : table.end_to_end_ms / static_cast<double>(std::max(1, unfused_rows));
    ++repaired;
  }
  if (repaired > 0 && warned_.insert(base).second)
    std::fprintf(stderr,
                 "[netcut] WARNING: profile of %s has %d low confidence row(s) under the "
                 "active fault schedule; interpolating from trusted neighbors\n",
                 table.network.c_str(), repaired);

  // Σ over trunk layers ("excluding classification layers"), and over the
  // layers the cut removes (trunk nodes after the cut site).
  double sum_all = 0.0;
  double sum_removed = 0.0;
  for (const TrunkRow& r : rows) {
    sum_all += r.ms;
    if (r.node > cut_node) sum_removed += r.ms;
  }
  if (sum_all <= 0.0) throw std::logic_error("ProfilerEstimator: empty profile");
  return table.end_to_end_ms * (1.0 - sum_removed / sum_all);
}

double ProfilerEstimator::estimate_batch_ms(zoo::NetId base, int cut_node, int batch) {
  if (batch < 1) throw std::invalid_argument("estimate_batch_ms: batch must be >= 1");
  const double single = estimate_ms(base, cut_node);
  if (batch == 1) return single;
  const double true_single = lab_.true_ms(base, cut_node);
  if (true_single <= 0.0) return static_cast<double>(batch) * single;
  return single * lab_.true_batch_ms(base, cut_node, batch) / true_single;
}

double ProfilerEstimator::estimate_cascade_ms(zoo::NetId base, int shallow_cut, int deep_cut,
                                              double p_escalate) {
  if (p_escalate < 0.0 || p_escalate > 1.0)
    throw std::invalid_argument("estimate_cascade_ms: p_escalate must be in [0, 1]");
  const double shallow = estimate_ms(base, shallow_cut);
  if (p_escalate == 0.0) return shallow;
  const double deep = estimate_ms(base, deep_cut);
  const double true_deep = lab_.true_ms(base, deep_cut);
  if (true_deep <= 0.0) return shallow + p_escalate * std::max(0.0, deep - shallow);
  const double stage2 = deep * lab_.true_stage2_ms(base, shallow_cut, deep_cut) / true_deep;
  return shallow + p_escalate * stage2;
}

AnalyticalEstimator::AnalyticalEstimator(LatencyLab& lab, bool grid_search,
                                         ml::SvrConfig base_config)
    : lab_(lab), grid_search_(grid_search), base_config_(base_config),
      fitted_config_(base_config) {}

void AnalyticalEstimator::fit(const std::vector<LatencySample>& train) {
  if (train.size() < 3) throw std::invalid_argument("AnalyticalEstimator::fit: too few rows");
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  x.reserve(train.size());
  for (const LatencySample& s : train) {
    x.push_back(s.features.as_row());
    y.push_back(s.measured_ms);
  }
  scaler_.fit(x);
  const std::vector<std::vector<double>> xs = scaler_.transform(x);

  fitted_config_ = base_config_;
  if (grid_search_) {
    const int folds = std::min<int>(10, static_cast<int>(xs.size()));
    const auto points = ml::grid_search_svr(
        xs, y, {1e-3, 1e-2, 1e-1, 1.0, 1e1}, {1e0, 1e2, 1e4, 1e6}, folds, 2024);
    fitted_config_.gamma = points.front().gamma;
    fitted_config_.c = points.front().c;
  }
  svr_ = std::make_unique<ml::Svr>(fitted_config_);
  svr_->fit(xs, y);
}

double AnalyticalEstimator::predict(const TrnFeatures& f) const {
  if (!svr_) throw std::logic_error("AnalyticalEstimator: predict before fit");
  return svr_->predict(scaler_.transform(f.as_row()));
}

double AnalyticalEstimator::estimate_ms(zoo::NetId base, int cut_node) {
  return predict(compute_trn_features(lab_, base, cut_node));
}

LinearEstimator::LinearEstimator(LatencyLab& lab) : lab_(lab) {}

void LinearEstimator::fit(const std::vector<LatencySample>& train) {
  if (train.size() < 3) throw std::invalid_argument("LinearEstimator::fit: too few rows");
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (const LatencySample& s : train) {
    x.push_back(s.features.as_row());
    y.push_back(s.measured_ms);
  }
  scaler_.fit(x);
  model_.fit(scaler_.transform(x), y);
}

double LinearEstimator::predict(const TrnFeatures& f) const {
  return model_.predict(scaler_.transform(f.as_row()));
}

double LinearEstimator::estimate_ms(zoo::NetId base, int cut_node) {
  return predict(compute_trn_features(lab_, base, cut_node));
}

}  // namespace netcut::core
