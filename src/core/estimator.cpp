#include "core/estimator.hpp"

#include <algorithm>
#include <stdexcept>

#include "nn/conv.hpp"

namespace netcut::core {

TrnFeatures compute_trn_features(LatencyLab& lab, zoo::NetId base, int cut_node) {
  const nn::Graph trn = lab.build_native_trn(base, cut_node);
  TrnFeatures f;
  const nn::LayerCost cost = trn.total_cost();
  f.base_latency_ms = lab.measured_ms(base, lab.full_cut(base));
  f.gflops = static_cast<double>(cost.flops) / 1e9;
  f.mparams = static_cast<double>(cost.params) / 1e6;
  f.layer_count = static_cast<double>(trn.layer_count());
  double filter_sum = 0.0;
  for (int id = 1; id < trn.node_count(); ++id) {
    const nn::Layer& layer = *trn.node(id).layer;
    if (layer.kind() == nn::LayerKind::kConv2D) {
      const auto& conv = static_cast<const nn::Conv2D&>(layer);
      filter_sum += conv.kernel_h() * conv.kernel_w();
    } else if (layer.kind() == nn::LayerKind::kDepthwiseConv2D) {
      const auto& conv = static_cast<const nn::DepthwiseConv2D&>(layer);
      filter_sum += conv.kernel() * conv.kernel();
    }
  }
  f.filter_size_sum = filter_sum;
  return f;
}

ProfilerEstimator::ProfilerEstimator(LatencyLab& lab) : lab_(lab) {}

double ProfilerEstimator::estimate_ms(zoo::NetId base, int cut_node) {
  const hw::LatencyTable& table = lab_.profile(base);
  const int trunk_last = lab_.trunk_last_node(base);

  // Σ over trunk layers ("excluding classification layers"), and over the
  // layers the cut removes (trunk nodes after the cut site).
  double sum_all = 0.0;
  double sum_removed = 0.0;
  for (const hw::ProfiledLayer& l : table.layers) {
    if (l.node > trunk_last) continue;  // head row
    sum_all += l.latency_ms;
    if (l.node > cut_node) sum_removed += l.latency_ms;
  }
  if (sum_all <= 0.0) throw std::logic_error("ProfilerEstimator: empty profile");
  return table.end_to_end_ms * (1.0 - sum_removed / sum_all);
}

AnalyticalEstimator::AnalyticalEstimator(LatencyLab& lab, bool grid_search,
                                         ml::SvrConfig base_config)
    : lab_(lab), grid_search_(grid_search), base_config_(base_config),
      fitted_config_(base_config) {}

void AnalyticalEstimator::fit(const std::vector<LatencySample>& train) {
  if (train.size() < 3) throw std::invalid_argument("AnalyticalEstimator::fit: too few rows");
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  x.reserve(train.size());
  for (const LatencySample& s : train) {
    x.push_back(s.features.as_row());
    y.push_back(s.measured_ms);
  }
  scaler_.fit(x);
  const std::vector<std::vector<double>> xs = scaler_.transform(x);

  fitted_config_ = base_config_;
  if (grid_search_) {
    const int folds = std::min<int>(10, static_cast<int>(xs.size()));
    const auto points = ml::grid_search_svr(
        xs, y, {1e-3, 1e-2, 1e-1, 1.0, 1e1}, {1e0, 1e2, 1e4, 1e6}, folds, 2024);
    fitted_config_.gamma = points.front().gamma;
    fitted_config_.c = points.front().c;
  }
  svr_ = std::make_unique<ml::Svr>(fitted_config_);
  svr_->fit(xs, y);
}

double AnalyticalEstimator::predict(const TrnFeatures& f) const {
  if (!svr_) throw std::logic_error("AnalyticalEstimator: predict before fit");
  return svr_->predict(scaler_.transform(f.as_row()));
}

double AnalyticalEstimator::estimate_ms(zoo::NetId base, int cut_node) {
  return predict(compute_trn_features(lab_, base, cut_node));
}

LinearEstimator::LinearEstimator(LatencyLab& lab) : lab_(lab) {}

void LinearEstimator::fit(const std::vector<LatencySample>& train) {
  if (train.size() < 3) throw std::invalid_argument("LinearEstimator::fit: too few rows");
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (const LatencySample& s : train) {
    x.push_back(s.features.as_row());
    y.push_back(s.measured_ms);
  }
  scaler_.fit(x);
  model_.fit(scaler_.transform(x), y);
}

double LinearEstimator::predict(const TrnFeatures& f) const {
  return model_.predict(scaler_.transform(f.as_row()));
}

double LinearEstimator::estimate_ms(zoo::NetId base, int cut_node) {
  return predict(compute_trn_features(lab_, base, cut_node));
}

}  // namespace netcut::core
