#include "core/trn.hpp"

#include <stdexcept>

#include "nn/activation.hpp"
#include "nn/dense.hpp"
#include "nn/init.hpp"
#include "nn/pooling.hpp"
#include "nn/verify.hpp"

namespace netcut::core {

std::vector<int> blockwise_cutpoints(const nn::Graph& trunk) {
  std::vector<int> out;
  for (const nn::BlockInfo& b : trunk.blocks()) out.push_back(b.last_node);
  if (out.empty()) throw std::invalid_argument("blockwise_cutpoints: trunk has no blocks");
  return out;
}

std::vector<int> iterative_cutpoints(const nn::Graph& trunk) {
  return trunk.output_dominators();
}

nn::Graph attach_head(nn::Graph g, const HeadConfig& head, util::Rng& rng) {
  const std::vector<tensor::Shape> shapes = g.infer_shapes();
  const tensor::Shape& feat = shapes[static_cast<std::size_t>(g.output_node())];
  if (feat.rank() != 3)
    throw std::invalid_argument("attach_head: trunk output must be CHW, got " +
                                feat.to_string());
  const int features = feat[0];

  int x = g.add(std::make_unique<nn::GlobalAvgPool>(), {g.output_node()}, "head/gap");
  auto fc1 = std::make_unique<nn::Dense>(features, head.hidden1);
  nn::xavier_init_dense(fc1->weight(), rng);
  x = g.add(std::move(fc1), {x}, "head/fc1");
  x = g.add(std::make_unique<nn::ReLU>(false), {x}, "head/relu1");
  auto fc2 = std::make_unique<nn::Dense>(head.hidden1, head.hidden2);
  nn::xavier_init_dense(fc2->weight(), rng);
  x = g.add(std::move(fc2), {x}, "head/fc2");
  x = g.add(std::make_unique<nn::ReLU>(false), {x}, "head/relu2");
  auto fc3 = std::make_unique<nn::Dense>(head.hidden2, head.classes);
  nn::xavier_init_dense(fc3->weight(), rng);
  x = g.add(std::move(fc3), {x}, "head/logits");
  if (head.with_softmax) g.add(std::make_unique<nn::Softmax>(), {x}, "head/softmax");
  nn::check_graph(g, "attach_head");
  return g;
}

nn::Graph build_trn(const nn::Graph& trunk, int cut_node, const HeadConfig& head,
                    util::Rng& rng) {
  // A cut that does not dominate the trunk output would sever an
  // Add/Concat operand inside a block; reject it before grafting.
  nn::check_cut_site(trunk, cut_node, "build_trn");
  return attach_head(trunk.prefix(cut_node), head, rng);
}

int layers_remaining(const nn::Graph& trunk, int cut_node) {
  return trunk.prefix(cut_node).layer_count();
}

int layers_removed(const nn::Graph& trunk, int cut_node) {
  return trunk.layer_count() - layers_remaining(trunk, cut_node);
}

std::string trn_name(const std::string& base_name, const nn::Graph& trunk, int cut_node) {
  return base_name + "/" + std::to_string(layers_remaining(trunk, cut_node));
}

}  // namespace netcut::core
