// Disk-cached pseudo-pretrained trunks. Pretraining a deep trunk costs
// minutes of CPU; the resulting weights depend only on (network, input
// resolution, PretrainedConfig), so they are serialized once per
// configuration and reloaded by every later evaluator / example / bench.
//
// Concurrency contract: these are stateless free functions — no globals,
// no caches in memory — so there is nothing to annotate (see DESIGN.md
// section 13). Cross-process/thread safety of the on-disk cache comes from
// the write protocol instead: writes go to a tmp file and rename into
// place, so two racing writers produce one winner and zero torn files, and
// a concurrent reader sees either the old complete file or the new one.
#pragma once

#include <string>

#include "data/pretrained.hpp"
#include "zoo/zoo.hpp"

namespace netcut::core {

/// Stable hash of the pretraining configuration (cache-key component).
std::uint64_t pretrained_config_hash(const data::PretrainedConfig& config);

/// True when a cached weight file exists for this (network, config).
bool pretrained_available(zoo::NetId net, const data::PretrainedConfig& config,
                          const std::string& cache_dir);

/// Path of the weight-cache file for this (network, config) under
/// `cache_dir` (empty when caching is disabled). Exposed so chaos tests
/// can corrupt the exact file the cache will read back.
std::string pretrained_cache_file(zoo::NetId net, const data::PretrainedConfig& config,
                                  const std::string& cache_dir);

/// Builds the trunk at `resolution` with pretrained weights: loaded from
/// `cache_dir` when a matching file exists, otherwise trained via
/// data::generate_pretrained_weights and saved. An empty cache_dir disables
/// caching (always trains).
///
/// Writes are atomic (tmp + rename) and wrapped in a checksummed container;
/// a cached file that is truncated, bit-flipped, or structurally wrong is
/// quarantined (renamed aside with a warning) and the trunk is retrained —
/// a crash mid-write can never poison later runs. Legacy headerless weight
/// files are still read.
nn::Graph pretrained_trunk(zoo::NetId net, int resolution,
                           const data::PretrainedConfig& config,
                           const std::string& cache_dir);

}  // namespace netcut::core
