#include "core/lab.hpp"

namespace netcut::core {

LatencyLab::LatencyLab(LabConfig config)
    : config_(std::move(config)),
      device_(config_.device),
      measurer_(device_, config_.measure),
      profiler_(device_, measurer_, config_.profiler),
      trainer_(config_.trainer) {}

LatencyLab::NetState& LatencyLab::state(zoo::NetId base) {
  auto it = states_.find(base);
  if (it != states_.end()) return it->second;
  NetState st;
  st.trunk =
      std::make_unique<nn::Graph>(zoo::build_trunk(base, zoo::native_resolution(base)));
  st.blockwise = blockwise_cutpoints(*st.trunk);
  st.iterative = iterative_cutpoints(*st.trunk);
  return states_.emplace(base, std::move(st)).first->second;
}

const std::vector<int>& LatencyLab::blockwise(zoo::NetId base) {
  return state(base).blockwise;
}

const std::vector<int>& LatencyLab::iterative(zoo::NetId base) {
  return state(base).iterative;
}

int LatencyLab::full_cut(zoo::NetId base) { return state(base).trunk->output_node(); }

nn::Graph LatencyLab::build_native_trn(zoo::NetId base, int cut_node) {
  // Head weight values do not affect analytic latency; a fixed seed keeps
  // graph construction deterministic.
  util::Rng rng(util::derive_seed(0xBEEF, "lab/head"));
  return build_trn(*state(base).trunk, cut_node, config_.head, rng);
}

double LatencyLab::measured_ms(zoo::NetId base, int cut_node) {
  NetState& st = state(base);
  if (auto it = st.measured.find(cut_node); it != st.measured.end()) return it->second;
  const nn::Graph trn = build_native_trn(base, cut_node);
  const double ms =
      measurer_.measure_network(trn, config_.precision, config_.fuse).mean_ms;
  st.measured[cut_node] = ms;
  return ms;
}

double LatencyLab::true_ms(zoo::NetId base, int cut_node) {
  NetState& st = state(base);
  if (auto it = st.true_latency.find(cut_node); it != st.true_latency.end())
    return it->second;
  const nn::Graph trn = build_native_trn(base, cut_node);
  const double ms = device_.network_latency_ms(trn, config_.precision, config_.fuse);
  st.true_latency[cut_node] = ms;
  return ms;
}

double LatencyLab::measured_batch_ms(zoo::NetId base, int cut_node, int batch) {
  if (batch == 1) return measured_ms(base, cut_node);
  NetState& st = state(base);
  const auto key = std::make_pair(cut_node, batch);
  if (auto it = st.measured_batch.find(key); it != st.measured_batch.end())
    return it->second;
  const nn::Graph trn = build_native_trn(base, cut_node);
  const double ms =
      measurer_.measure_network(trn, config_.precision, config_.fuse, batch).mean_ms;
  st.measured_batch[key] = ms;
  return ms;
}

double LatencyLab::true_batch_ms(zoo::NetId base, int cut_node, int batch) {
  if (batch == 1) return true_ms(base, cut_node);
  NetState& st = state(base);
  const auto key = std::make_pair(cut_node, batch);
  if (auto it = st.true_batch.find(key); it != st.true_batch.end()) return it->second;
  const nn::Graph trn = build_native_trn(base, cut_node);
  const double ms = device_.network_latency_ms(trn, config_.precision, config_.fuse, batch);
  st.true_batch[key] = ms;
  return ms;
}

int LatencyLab::resume_node(zoo::NetId base, int shallow_cut) {
  return state(base).trunk->prefix(shallow_cut).node_count() - 1;
}

double LatencyLab::measured_stage2_ms(zoo::NetId base, int shallow_cut, int deep_cut) {
  return measured_stage2_batch_ms(base, shallow_cut, deep_cut, 1);
}

double LatencyLab::true_stage2_ms(zoo::NetId base, int shallow_cut, int deep_cut) {
  return true_stage2_batch_ms(base, shallow_cut, deep_cut, 1);
}

double LatencyLab::measured_stage2_batch_ms(zoo::NetId base, int shallow_cut, int deep_cut,
                                            int batch) {
  NetState& st = state(base);
  const auto key = std::make_pair(std::make_pair(shallow_cut, deep_cut), batch);
  if (auto it = st.measured_stage2.find(key); it != st.measured_stage2.end())
    return it->second;
  const nn::Graph trn = build_native_trn(base, deep_cut);
  const double ms = measurer_
                        .measure_network_from(trn, config_.precision, config_.fuse,
                                              resume_node(base, shallow_cut), batch)
                        .mean_ms;
  st.measured_stage2[key] = ms;
  return ms;
}

double LatencyLab::true_stage2_batch_ms(zoo::NetId base, int shallow_cut, int deep_cut,
                                        int batch) {
  NetState& st = state(base);
  const auto key = std::make_pair(std::make_pair(shallow_cut, deep_cut), batch);
  if (auto it = st.true_stage2.find(key); it != st.true_stage2.end()) return it->second;
  const nn::Graph trn = build_native_trn(base, deep_cut);
  const double ms = device_.network_latency_from_ms(trn, config_.precision, config_.fuse,
                                                    resume_node(base, shallow_cut), batch);
  st.true_stage2[key] = ms;
  return ms;
}

const hw::LatencyTable& LatencyLab::profile(zoo::NetId base) {
  NetState& st = state(base);
  if (!st.table) {
    const nn::Graph full = build_native_trn(base, full_cut(base));
    st.table = std::make_unique<hw::LatencyTable>(
        profiler_.profile(full, zoo::net_name(base), config_.precision, config_.fuse));
  }
  return *st.table;
}

int LatencyLab::trunk_last_node(zoo::NetId base) { return state(base).trunk->output_node(); }

double LatencyLab::training_hours(zoo::NetId base, int cut_node) {
  const nn::Graph trn = build_native_trn(base, cut_node);
  return trainer_.training_hours(trn);
}

std::string LatencyLab::name(zoo::NetId base, int cut_node) {
  return trn_name(zoo::net_name(base), *state(base).trunk, cut_node);
}

int LatencyLab::layers_removed(zoo::NetId base, int cut_node) {
  return core::layers_removed(*state(base).trunk, cut_node);
}

int LatencyLab::layers_remaining(zoo::NetId base, int cut_node) {
  return core::layers_remaining(*state(base).trunk, cut_node);
}

}  // namespace netcut::core
