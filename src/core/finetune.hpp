// The paper's full two-stage transfer protocol (Section III-B3): train the
// new head with the trunk frozen (lr 1e-3), then continue with *every*
// layer unfrozen at a lower rate (the paper: 50 epochs at 1e-4).
//
// The TrnEvaluator used by the experiment sweeps implements only the first
// stage (on cached features — it dominates the accuracy ordering across
// cutpoints and fits the single-core budget for ~150 TRNs). This header is
// the faithful end-to-end version: real backprop through the trimmed trunk,
// BatchNorms in the frozen-statistics fine-tuning regime.
#pragma once

#include "core/evaluator.hpp"
#include "core/trn.hpp"
#include "data/hands.hpp"

namespace netcut::core {

struct FinetuneConfig {
  HeadConfig head;
  int head_epochs = 8;       // stage 1: head only, trunk frozen
  double head_lr = 1e-3;     // the paper's initial learning rate
  int full_epochs = 2;       // stage 2: all layers
  double full_lr = 1e-4;     // the paper's fine-tuning learning rate
  std::uint64_t seed = 99;
};

struct FinetuneResult {
  AccuracyResult after_head;  // test accuracy after stage 1
  AccuracyResult after_full;  // test accuracy after stage 2
  double stage1_final_loss = 0.0;
  double stage2_final_loss = 0.0;
};

/// Builds the TRN (trunk cut at `cut_node` + fresh head) from an already
/// pretrained trunk and runs both training stages on the dataset's train
/// split, evaluating angular similarity on the test split after each stage.
FinetuneResult finetune_trn(const nn::Graph& pretrained_trunk, int cut_node,
                            const data::HandsDataset& dataset, const FinetuneConfig& config);

}  // namespace netcut::core
