// Sharded request queue: one RequestQueue per fleet worker, plus
// deterministic seeded work stealing.
//
// A single global queue serializes every worker's batch formation on one
// lock; sharding gives each worker its own EDF heap (push and take contend
// only within a shard) and recovers utilization with stealing: a worker
// whose shard runs dry takes the earliest-deadline work from a victim
// shard. Victims are drawn from a per-worker RNG seeded by
// derive_seed(seed, "serve/steal/<w>"), so the steal sequence — and every
// number downstream of it — is a pure function of (config, seed): the same
// fleet simulation is bit-identical across runs and thread counts.
//
// Routing is by request id (round-robin `id % shards`), which is
// tenant-blind and keeps the mapping stable under replay. Fairness across
// tenants is the fleet's admission-control job, not the router's.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "serve/queue.hpp"
#include "util/rng.hpp"

namespace netcut::serve {

class ShardedQueue {
 public:
  ShardedQueue(std::size_t shards, std::uint64_t seed);

  std::size_t shards() const { return shards_.size(); }
  RequestQueue& shard(std::size_t i) { return *shards_[i]; }
  const RequestQueue& shard(std::size_t i) const { return *shards_[i]; }

  /// Shard index request `id` routes to (id % shards).
  std::size_t route(std::uint64_t id) const { return id % shards_.size(); }

  /// Route one request to shard route(id).
  void push(Request r);

  /// Backlog across all shards.
  std::size_t total_size() const;

  /// Ensure shard `w` has work: when it is dry and some other shard is
  /// not, steal up to `max_steal` of a victim's earliest-deadline requests
  /// into shard `w`. The victim is the first non-empty shard scanning from
  /// a seeded random offset (worker `w`'s own stream; a draw is consumed
  /// only when a steal is actually attempted). Returns the number stolen.
  ///
  /// Concurrency: safe against concurrent pushes and takes on any shard.
  /// Each worker index must have a single caller at a time (a worker
  /// steals only for itself), which keeps its RNG stream private.
  std::size_t balance(std::size_t w, std::size_t max_steal);

  /// Steals performed for worker `w` so far. Safe from any thread (a
  /// stats/reporting read, e.g. Fleet::stats, may race worker `w`'s own
  /// balance calls): the counters are atomics precisely so the reporting
  /// path needs no lock — a plain int64 here was a data race between the
  /// balancing worker and the reporter.
  std::int64_t steals(std::size_t w) const {
    return steals_[w].load(std::memory_order_relaxed);
  }

  void close_all();

 private:
  std::vector<std::unique_ptr<RequestQueue>> shards_;
  std::vector<util::Rng> steal_rng_;  // one stream per worker (single-caller)
  /// Successful steal count per worker: written only by worker w's balance
  /// (single-caller contract), read by any reporter, hence atomic.
  std::unique_ptr<std::atomic<std::int64_t>[]> steals_;
};

}  // namespace netcut::serve
