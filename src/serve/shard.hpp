// Sharded request queue: one RequestQueue per fleet worker, plus
// deterministic seeded work stealing and tenant-aware rendezvous routing.
//
// A single global queue serializes every worker's batch formation on one
// lock; sharding gives each worker its own EDF heap (push and take contend
// only within a shard) and recovers utilization with stealing: a worker
// whose shard runs dry takes the earliest-deadline work from a victim
// shard. Victims are drawn from a per-worker RNG seeded by
// derive_seed(seed, "serve/steal/<w>"), so the steal sequence — and every
// number downstream of it — is a pure function of (config, seed): the same
// fleet simulation is bit-identical across runs and thread counts.
//
// Routing is rendezvous (highest-random-weight) hashing on (tenant,
// routable shards): every routable shard gets a seeded pseudo-random
// weight for the tenant and the max wins. Same tenant, same shard — batch
// formation sees co-located tenant traffic — and when a shard leaves the
// routable set (replica Down/Degraded) only the tenants whose argmax was
// that shard re-map; everyone else's mapping is untouched (the minimal-
// disruption property that makes failover cheap). The weights are a pure
// seeded hash evaluation, and ties (2^-64 events) break toward the lower
// shard index off the same hash draw, so same-seed runs stay
// bit-identical. Fairness across tenants is the fleet's admission-control
// job, not the router's.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "serve/queue.hpp"
#include "util/rng.hpp"

namespace netcut::serve {

class ShardedQueue {
 public:
  ShardedQueue(std::size_t shards, std::uint64_t seed);

  std::size_t shards() const { return shards_.size(); }
  RequestQueue& shard(std::size_t i) { return *shards_[i]; }
  const RequestQueue& shard(std::size_t i) const { return *shards_[i]; }

  /// Shard index tenant `tenant` routes to: rendezvous hash over the
  /// currently routable shards (all shards when none is marked routable,
  /// so a fully-down fleet still has a deterministic mapping for the
  /// admission path to shed against). Safe from any thread.
  std::size_t route(std::uint32_t tenant) const;

  /// Route one request to shard route(r.tenant).
  void push(Request r);

  /// Membership of shard `w` in the routing set. The fleet's health layer
  /// flips this on lifecycle transitions (only Up replicas take routed
  /// work); atomics because submitters route concurrently. Shards start
  /// routable.
  void set_routable(std::size_t w, bool on);
  bool routable(std::size_t w) const {
    return routable_[w].load(std::memory_order_relaxed) != 0;
  }

  /// Backlog across all shards.
  std::size_t total_size() const;

  /// Ensure shard `w` has work: when it is dry and some other shard is
  /// not, steal up to `max_steal` of a victim's earliest-deadline requests
  /// into shard `w`. The victim is the first non-empty shard scanning from
  /// a seeded random offset (worker `w`'s own stream; a draw is consumed
  /// only when a steal is actually attempted). Returns the number stolen.
  ///
  /// Concurrency: safe against concurrent pushes and takes on any shard.
  /// Each worker index must have a single caller at a time (a worker
  /// steals only for itself), which keeps its RNG stream private.
  std::size_t balance(std::size_t w, std::size_t max_steal);

  /// Steals performed for worker `w` so far. Safe from any thread (a
  /// stats/reporting read, e.g. Fleet::stats, may race worker `w`'s own
  /// balance calls): the counters are atomics precisely so the reporting
  /// path needs no lock — a plain int64 here was a data race between the
  /// balancing worker and the reporter.
  std::int64_t steals(std::size_t w) const {
    return steals_[w].load(std::memory_order_relaxed);
  }

  void close_all();

 private:
  std::vector<std::unique_ptr<RequestQueue>> shards_;
  std::vector<util::Rng> steal_rng_;  // one stream per worker (single-caller)
  std::uint64_t route_salt_ = 0;      // seeds the rendezvous weights
  /// Successful steal count per worker: written only by worker w's balance
  /// (single-caller contract), read by any reporter, hence atomic.
  std::unique_ptr<std::atomic<std::int64_t>[]> steals_;
  /// Routing-set membership per shard (1 = routable).
  std::unique_ptr<std::atomic<char>[]> routable_;
};

}  // namespace netcut::serve
