#include "serve/shard.hpp"

#include <stdexcept>
#include <string>

#include "util/schedule.hpp"

namespace netcut::serve {

ShardedQueue::ShardedQueue(std::size_t shards, std::uint64_t seed)
    : steals_(new std::atomic<std::int64_t>[shards == 0 ? 1 : shards]) {
  if (shards == 0) throw std::invalid_argument("ShardedQueue: need at least one shard");
  shards_.reserve(shards);
  steal_rng_.reserve(shards);
  for (std::size_t w = 0; w < shards; ++w) {
    shards_.push_back(std::make_unique<RequestQueue>());
    steal_rng_.emplace_back(util::derive_seed(seed, "serve/steal/" + std::to_string(w)));
    steals_[w].store(0, std::memory_order_relaxed);
  }
}

void ShardedQueue::push(Request r) { shards_[route(r.id)]->push(r); }

std::size_t ShardedQueue::total_size() const {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s->size();
  return n;
}

std::size_t ShardedQueue::balance(std::size_t w, std::size_t max_steal) {
  if (w >= shards_.size()) throw std::invalid_argument("ShardedQueue: bad worker index");
  if (max_steal == 0 || shards_.size() == 1) return 0;
  if (!shards_[w]->empty()) return 0;
  // Cheap pre-check so an idle fleet does not burn RNG draws: only consume
  // a victim draw when there is something to steal. (Sizes can move under
  // us in live threaded use; steal() below re-checks under the lock and
  // an unlucky empty scan just returns 0.)
  bool any = false;
  for (std::size_t v = 0; v < shards_.size() && !any; ++v)
    any = v != w && !shards_[v]->empty();
  if (!any) return 0;
  // Seeded victim: a random offset over the other shards, then the first
  // non-empty one scanning forward — one draw per attempted steal.
  const auto offset = static_cast<std::size_t>(
      steal_rng_[w].uniform_int(0, static_cast<int>(shards_.size()) - 2));
  for (std::size_t probe = 0; probe < shards_.size() - 1; ++probe) {
    std::size_t v = (offset + probe) % (shards_.size() - 1);
    if (v >= w) ++v;  // skip self: maps [0, shards-2] onto the others
    std::vector<Request> got = shards_[v]->steal(max_steal);
    if (got.empty()) continue;
    // The delicate window: the stolen requests are in *neither* shard
    // right here. The model checker interleaves drains/closes/pushes into
    // this gap to prove no request is lost or duplicated by migration.
    util::sched::yield("shard.balance.holding-stolen");
    for (const Request& r : got) shards_[w]->reinsert(r);
    steals_[w].fetch_add(1, std::memory_order_relaxed);
    return got.size();
  }
  return 0;
}

void ShardedQueue::close_all() {
  for (auto& s : shards_) s->close();
}

}  // namespace netcut::serve
