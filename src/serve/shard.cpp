#include "serve/shard.hpp"

#include <stdexcept>
#include <string>

#include "util/schedule.hpp"

namespace netcut::serve {

ShardedQueue::ShardedQueue(std::size_t shards, std::uint64_t seed)
    : route_salt_(util::derive_seed(seed, "serve/route")),
      steals_(new std::atomic<std::int64_t>[shards == 0 ? 1 : shards]),
      routable_(new std::atomic<char>[shards == 0 ? 1 : shards]) {
  if (shards == 0) throw std::invalid_argument("ShardedQueue: need at least one shard");
  shards_.reserve(shards);
  steal_rng_.reserve(shards);
  for (std::size_t w = 0; w < shards; ++w) {
    shards_.push_back(std::make_unique<RequestQueue>());
    steal_rng_.emplace_back(util::derive_seed(seed, "serve/steal/" + std::to_string(w)));
    steals_[w].store(0, std::memory_order_relaxed);
    routable_[w].store(1, std::memory_order_relaxed);
  }
}

std::size_t ShardedQueue::route(std::uint32_t tenant) const {
  // Highest-random-weight: every candidate shard scores a seeded hash of
  // (salt, tenant, shard) — two splitmix64 rounds whiten the inputs — and
  // the maximum wins. Evaluating a seeded hash is the stateless form of a
  // seeded-RNG draw, so the tie-break (strictly-greater keeps the lowest
  // winning index) is deterministic and same-seed runs stay bit-identical.
  std::size_t best = shards_.size();
  std::uint64_t best_weight = 0;
  const bool any_routable = [&] {
    for (std::size_t s = 0; s < shards_.size(); ++s)
      if (routable(s)) return true;
    return false;
  }();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (any_routable && !routable(s)) continue;
    std::uint64_t state = route_salt_ ^ (static_cast<std::uint64_t>(tenant) + 1);
    util::splitmix64(state);
    state ^= static_cast<std::uint64_t>(s) + 0x9E3779B97F4A7C15ull;
    const std::uint64_t weight = util::splitmix64(state);
    if (best == shards_.size() || weight > best_weight) {
      best = s;
      best_weight = weight;
    }
  }
  return best;
}

void ShardedQueue::push(Request r) { shards_[route(r.tenant)]->push(r); }

void ShardedQueue::set_routable(std::size_t w, bool on) {
  routable_[w].store(on ? 1 : 0, std::memory_order_relaxed);
}

std::size_t ShardedQueue::total_size() const {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s->size();
  return n;
}

std::size_t ShardedQueue::balance(std::size_t w, std::size_t max_steal) {
  if (w >= shards_.size()) throw std::invalid_argument("ShardedQueue: bad worker index");
  if (max_steal == 0 || shards_.size() == 1) return 0;
  if (!shards_[w]->empty()) return 0;
  // Cheap pre-check so an idle fleet does not burn RNG draws: only consume
  // a victim draw when there is something to steal. (Sizes can move under
  // us in live threaded use; steal() below re-checks under the lock and
  // an unlucky empty scan just returns 0.)
  bool any = false;
  for (std::size_t v = 0; v < shards_.size() && !any; ++v)
    any = v != w && !shards_[v]->empty();
  if (!any) return 0;
  // Seeded victim: a random offset over the other shards, then the first
  // non-empty one scanning forward — one draw per attempted steal.
  const auto offset = static_cast<std::size_t>(
      steal_rng_[w].uniform_int(0, static_cast<int>(shards_.size()) - 2));
  for (std::size_t probe = 0; probe < shards_.size() - 1; ++probe) {
    std::size_t v = (offset + probe) % (shards_.size() - 1);
    if (v >= w) ++v;  // skip self: maps [0, shards-2] onto the others
    std::vector<Request> got = shards_[v]->steal(max_steal);
    if (got.empty()) continue;
    // The delicate window: the stolen requests are in *neither* shard
    // right here. The model checker interleaves drains/closes/pushes into
    // this gap to prove no request is lost or duplicated by migration.
    util::sched::yield("shard.balance.holding-stolen");
    for (const Request& r : got) shards_[w]->reinsert(r);
    steals_[w].fetch_add(1, std::memory_order_relaxed);
    return got.size();
  }
  return 0;
}

void ShardedQueue::close_all() {
  for (auto& s : shards_) s->close();
}

}  // namespace netcut::serve
