// Thread-safe request queue between submitting clients and the batch
// server. Clients push; the server atomically takes the earliest-deadline
// prefix chosen by its batching policy.
//
// The pending set is an incrementally maintained binary min-heap keyed by
// (deadline, id): push is O(log n) and take pops only the k requests it
// returns (O(k log n)), instead of the full EDF re-sort per take that this
// replaced (O(n log n) on every batch under a deep backlog — the dominant
// cost at fleet scale, measured in bench/serve_snapshot's queue_take
// section). Because (deadline, id) is a total order, popping the k smallest
// yields exactly the sorted prefix the old sort produced: pop order is
// bit-identical.
//
// The head inspection and the pop still happen inside one critical section,
// so a concurrently arriving request can never split the batching policy's
// view of the queue from what is actually taken. Ties on deadline break by
// id, which keeps the order — and therefore every downstream number —
// deterministic under the simulated clock.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "serve/request.hpp"
#include "util/ranked_mutex.hpp"
#include "util/thread_annotations.hpp"

namespace netcut::serve {

class RequestQueue {
 public:
  /// Enqueue one request. Wakes one waiter.
  void push(Request r);

  /// Re-enqueue a request that is already inside the system (stolen from a
  /// sibling shard). Unlike push, this is allowed on a closed queue:
  /// close() stops new arrivals, but in-flight work may still migrate
  /// between shards while the fleet drains.
  void reinsert(Request r);

  std::size_t size() const;
  bool empty() const;

  /// Atomically: ask `choose(head, pending)` — where `head` is the
  /// earliest-(deadline, id) pending request and `pending` the backlog
  /// size — how many requests to take, then pop and return that many in
  /// EDF order. Because the backlog is EDF-ordered, the head carries the
  /// earliest deadline of any prefix, which is all a deadline-aware policy
  /// needs (see BatchFormer). `choose` must return a count in
  /// [0, pending]; it runs under the queue lock, so it must not touch the
  /// queue. Returns empty when the queue is empty (choose is not called).
  std::vector<Request> take(
      const std::function<std::size_t(const Request& head, std::size_t pending)>& choose);

  /// Atomically pop up to `max_n` of the earliest-(deadline, id) pending
  /// requests, in EDF order — the work-stealing primitive: a dry shard
  /// steals the victim's most urgent work, so stolen requests are served
  /// in the same global EDF order a single queue would have used. Returns
  /// empty when the queue is empty. Allowed on a closed queue (draining).
  std::vector<Request> steal(std::size_t max_n);

  /// Atomically pop *everything*, in EDF order — the failover primitive: a
  /// dead worker's shard is emptied in one critical section, so a
  /// concurrent stealer sees either the full heap or nothing, never a
  /// half-drained prefix. Allowed on a closed queue.
  std::vector<Request> drain();

  /// Block until the queue is non-empty or closed. Returns true when there
  /// is work, false when the queue is closed and drained. The simulated
  /// clock never calls this; live (demo) servers do.
  bool wait_nonempty();

  /// No more pushes will arrive; wakes all waiters.
  void close();
  bool closed() const;

 private:
  std::vector<Request> pop_locked(std::size_t n) NETCUT_REQUIRES(mu_);

  mutable util::RankedMutex mu_{util::rank::kQueue, "serve/queue"};
  util::CondVar cv_;
  std::vector<Request> heap_ NETCUT_GUARDED_BY(mu_);  // min-heap over (deadline, id)
  bool closed_ NETCUT_GUARDED_BY(mu_) = false;
};

}  // namespace netcut::serve
