// Thread-safe request queue between submitting clients and the batch
// server. Clients push; the server atomically takes the earliest-deadline
// prefix chosen by its batching policy.
//
// The EDF (earliest-deadline-first) order is decided inside one critical
// section together with the pop, so a concurrently arriving request can
// never split the policy's view of the queue from what is actually taken.
// Ties on deadline break by id, which keeps the order — and therefore every
// downstream number — deterministic under the simulated clock.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <vector>

#include "serve/request.hpp"

namespace netcut::serve {

class RequestQueue {
 public:
  /// Enqueue one request. Wakes one waiter.
  void push(Request r);

  std::size_t size() const;
  bool empty() const;

  /// Atomically: sort the pending set EDF (deadline, then id), ask `choose`
  /// how many of the earliest-deadline requests to take, pop and return
  /// that prefix. `choose` sees the full EDF-sorted pending set and must
  /// return a count in [0, size]; it runs under the queue lock, so it must
  /// not touch the queue.
  std::vector<Request> take(
      const std::function<std::size_t(const std::vector<Request>&)>& choose);

  /// Block until the queue is non-empty or closed. Returns true when there
  /// is work, false when the queue is closed and drained. The simulated
  /// clock never calls this; live (demo) servers do.
  bool wait_nonempty();

  /// No more pushes will arrive; wakes all waiters.
  void close();
  bool closed() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Request> pending_;
  bool closed_ = false;
};

}  // namespace netcut::serve
