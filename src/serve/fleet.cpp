#include "serve/fleet.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "util/schedule.hpp"

namespace netcut::serve {

Fleet::Fleet(std::vector<FleetWorker> workers, FleetConfig config)
    : config_(std::move(config)),
      queue_(workers.empty() ? 1 : workers.size(), config_.seed),
      monitor_(workers.empty() ? 1 : workers.size(), config_.health),
      injector_(
          (config_.faults != nullptr ? *config_.faults : hw::FaultModel::global()).config(),
          workers.empty() ? 1 : workers.size()) {
  if (workers.empty()) throw std::invalid_argument("Fleet: no workers");
  if (config_.classes.empty()) throw std::invalid_argument("Fleet: no SLO classes");
  if (config_.admission_headroom < 0 || config_.admission_headroom >= 1)
    throw std::invalid_argument("Fleet: admission_headroom outside [0, 1)");
  for (const SloClass& c : config_.classes)
    if (c.weight <= 0 || c.deadline_slack_ms <= 0 || c.p99_budget_ms <= 0)
      throw std::invalid_argument("Fleet: bad SLO class '" + c.name + "'");
  names_.reserve(workers.size());
  servers_.reserve(workers.size());
  busy_until_ms_.assign(workers.size(), -std::numeric_limits<double>::infinity());
  serving_.assign(workers.size(), 0);
  attempts_.assign(workers.size(), 0);
  max_batch_.reserve(workers.size());
  for (std::size_t w = 0; w < workers.size(); ++w) {
    FleetWorker& spec = workers[w];
    names_.push_back(spec.name.empty() ? "worker" + std::to_string(w) : spec.name);
    max_batch_.push_back(static_cast<std::size_t>(std::max(1, spec.serve.max_batch)));
    servers_.push_back(std::make_unique<BatchServer>(std::move(spec.options),
                                                     queue_.shard(w), spec.serve));
  }
}

ReplicaState Fleet::worker_state(std::size_t w) const {
  util::MutexLock lock(mu_);
  return monitor_.state(w);
}

ReplicaHealth Fleet::worker_health(std::size_t w) const {
  util::MutexLock lock(mu_);
  return monitor_.replica(w);
}

bool Fleet::feasible(const Request& r, double now_ms) const {
  // Least-loaded-replica bound: earliest start (free time), plus the
  // shard's backlog drained at the fastest TRN's amortized batched rate —
  // fastest(max_batch) / max_batch, the best sustained per-request rate any
  // option on the replica can reach (a batch of n costs curve(n), so
  // dividing the single-request latency by the batch size would overstate
  // the drain rate) — plus one full fastest batch window for the request
  // itself. Reserving the whole batch window, not a single-request pass, is
  // what keeps admission self-consistent: it caps the backlog at a depth
  // where the EDF head still has curve(max_batch) of slack left when its
  // turn comes, so the batch former can keep packing full batches. A looser
  // bound admits a backlog deep enough that heads arrive at the server
  // already hopeless, batches degenerate toward size 1, the effective
  // service rate collapses below the assumed amortized rate, and every
  // admitted request misses — the exact spiral admission control is there
  // to prevent. If even this best case blows the deadline on every replica,
  // no admission order could save the request: shed now, explicitly,
  // instead of missing later. Work stealing is what makes the per-replica
  // view sound — work admitted against a short shard gets pulled to a dry
  // worker if its own shard lags.
  // A fleet with no Up replica has no capacity to vouch for: shed.
  // Degraded/Recovering replicas may still *serve* (they drain backlog),
  // but admission promises are only made against replicas whose health the
  // monitor currently trusts — that is what keeps the bound sound at N-1
  // after a failover, and what stops a flapping replica from re-inflating
  // capacity before its warm-up completes.
  if (monitor_.up_count() == 0) return false;

  const double margin =
      std::max(0.0, config_.admission_headroom * (r.deadline_ms - now_ms));

  // Own-shard view: the replica this request routes to, serving only its
  // own shard, finishes it in time. Under balanced routing this is the
  // exact bound — checking some *other*, less-loaded replica instead would
  // admit work into a fuller shard than the one that passed the test.
  // route() only picks Up shards while any exist, so `own` is in admission.
  const std::size_t own = queue_.route(r.tenant);
  const int own_mb = static_cast<int>(max_batch_[own]);
  const double own_batch = servers_[own]->fastest_latency_ms(own_mb);
  const double own_eta = std::max(now_ms, busy_until_ms_[own]) +
                         static_cast<double>(queue_.shard(own).size()) * own_batch /
                             static_cast<double>(own_mb) +
                         own_batch;
  if (own_eta + margin <= r.deadline_ms) return true;

  // Fleet-wide view, applicable only while stealing is actually available:
  // work stealing turns the shards into one logical EDF queue with the
  // summed service rate (dry workers pull the most urgent work over), so a
  // request the own-shard view sheds is still admitted while the fleet as
  // a whole can absorb it. Under skewed routing this is what keeps the hot
  // shard's backlog bounded while the stealing workers' shards look
  // deceptively dry. The dry-shard gate matters in the other direction: in
  // a balanced saturated fleet no shard ever runs dry, nothing migrates,
  // and vouching for the fleet's aggregate rate would admit work into a
  // hot shard no stealer will ever relieve.
  bool stealer_available = false;
  for (std::size_t w = 0; w < servers_.size() && !stealer_available; ++w)
    stealer_available = w != own && monitor_.in_admission(w) && queue_.shard(w).empty();
  if (!stealer_available) return false;

  // Only Up replicas contribute rate: a Down replica serves nothing and a
  // Degraded/Recovering one may vanish (or is still warming) — counting it
  // would admit against capacity the fleet might not have.
  double fleet_rate = 0.0;                                        // requests per ms
  double earliest_start = std::numeric_limits<double>::infinity();
  double best_batch = std::numeric_limits<double>::infinity();
  for (std::size_t w = 0; w < servers_.size(); ++w) {
    if (!monitor_.in_admission(w)) continue;
    const int mb = static_cast<int>(max_batch_[w]);
    const double fastest_batch = servers_[w]->fastest_latency_ms(mb);
    fleet_rate += static_cast<double>(mb) / fastest_batch;
    earliest_start = std::min(earliest_start, std::max(now_ms, busy_until_ms_[w]));
    best_batch = std::min(best_batch, fastest_batch);
  }
  const double fleet_eta = earliest_start +
                           static_cast<double>(queue_.total_size()) / fleet_rate + best_batch;
  return fleet_eta + margin <= r.deadline_ms;
}

bool Fleet::over_fair_share(const Request& r) const {
  // Weighted share of in-flight work. Active tenants are those holding
  // work right now, plus the submitter; iteration over the ordered map
  // keeps the arithmetic deterministic.
  double total_weight = 0.0;
  bool submitter_counted = false;
  for (const auto& [tenant, n] : inflight_) {
    if (n <= 0) continue;
    const auto it = tenants_.find(tenant);
    total_weight += config_.classes[it->second.slo].weight;
    submitter_counted = submitter_counted || tenant == r.tenant;
  }
  if (!submitter_counted) total_weight += config_.classes[r.slo].weight;
  const double allowance = config_.classes[r.slo].weight / total_weight *
                           static_cast<double>(inflight_total_ + 1);
  const auto it = inflight_.find(r.tenant);
  const std::int64_t mine = it != inflight_.end() ? it->second : 0;
  return static_cast<double>(mine + 1) > allowance;
}

std::optional<Completion> Fleet::submit(const Request& r, double now_ms) {
  if (r.slo >= config_.classes.size())
    throw std::invalid_argument("Fleet: request references unknown SLO class");
  {
    util::MutexLock lock(mu_);
    TenantCounters& tc = tenants_[r.tenant];
    tc.slo = r.slo;
    ++tc.submitted;
    ++stats_.submitted;

    const bool pressured = queue_.total_size() >= config_.pressure_backlog;
    if (config_.admission &&
        (!feasible(r, now_ms) || (pressured && over_fair_share(r)))) {
      ++tc.shed;
      ++stats_.shed;
      Completion c;
      c.id = r.id;
      c.arrival_ms = r.arrival_ms;
      c.deadline_ms = r.deadline_ms;
      c.tenant = r.tenant;
      c.slo = r.slo;
      c.finish_ms = now_ms;
      c.rejected = true;
      return c;
    }

    // Count the admission before the push lands: a concurrent stats reader
    // in the window below must still see submitted == shed + served +
    // in flight.
    ++inflight_[r.tenant];
    ++inflight_total_;
  }
  // Admitted-but-not-yet-enqueued window: the request is counted in flight
  // but in no shard. The model checker interleaves steppers and other
  // submitters here to prove the conservation invariant and that a stepper
  // racing this push merely finds a dry shard (no lost request, no lost
  // wakeup once it lands).
  util::sched::yield("fleet.submit.admit-to-push");
  queue_.push(r);
  return std::nullopt;
}

std::vector<Completion> Fleet::step(double now_ms) {
  // Health first: apply heartbeat-deadline / probation transitions and
  // drain any Down shard before dispatching. Drain rejections are explicit
  // completions the caller must account, so they are returned as this
  // step's result (the next step() call at the same now_ms dispatches).
  {
    std::vector<Completion> shed = failover_pass(now_ms);
    if (!shed.empty()) return shed;
  }
  for (std::size_t w = 0; w < servers_.size(); ++w) {
    // Claim the worker under the lock, serve it outside: the replica's
    // step runs the batch forward (which may block on the thread pool's
    // completion wait), so the fleet lock must not be held across it. The
    // serving_ flag keeps a concurrent stepper from double-serving the
    // claimed replica in that window.
    enum class Act { kSkip, kServe, kDrain };
    Act act = Act::kSkip;
    std::vector<std::size_t> survivors;
    {
      util::MutexLock lock(mu_);
      if (!monitor_.serving_allowed(w)) continue;
      if (serving_[w] != 0 || busy_until_ms_[w] > now_ms) continue;
      // Dispatch only when there is work the replica could take (its own
      // shard, or another shard it could steal from) — a dispatch attempt
      // is an observable event for the fault injector and the silence
      // clock, so idle polls must not count as attempts.
      bool has_work = !queue_.shard(w).empty();
      for (std::size_t v = 0; v < servers_.size() && !has_work; ++v)
        has_work = v != w && !queue_.shard(v).empty();
      if (!has_work) continue;

      if (injector_.active()) {
        const std::int64_t k = attempts_[w]++;
        switch (injector_.on_attempt(w, k, now_ms)) {
          case WorkerFaultInjector::Attempt::kSilent: {
            // The replica ignored the dispatch: open (or keep open) the
            // silence window and judge it against the thresholds now.
            monitor_.note_attempt_blocked(w, now_ms);
            const bool went_down =
                monitor_.advance(w, now_ms, injector_.responsive(w, now_ms));
            queue_.set_routable(w, monitor_.routable(w));
            if (went_down) {
              survivors = on_went_down(w);
              act = Act::kDrain;
            }
            break;
          }
          case WorkerFaultInjector::Attempt::kError: {
            const ReplicaState before = monitor_.state(w);
            monitor_.note_error(w, now_ms);
            queue_.set_routable(w, monitor_.routable(w));
            if (before != ReplicaState::kDown &&
                monitor_.state(w) == ReplicaState::kDown) {
              survivors = on_went_down(w);
              act = Act::kDrain;
            }
            break;
          }
          case WorkerFaultInjector::Attempt::kServe:
            monitor_.note_dispatch(w, now_ms);
            serving_[w] = 1;
            act = Act::kServe;
            break;
        }
      } else {
        serving_[w] = 1;
        act = Act::kServe;
      }
    }
    if (act == Act::kDrain) {
      // Nudge the survivors' watchdogs outside the lock (the server takes
      // its own rank-kServer mutex), then drain the dead shard.
      for (std::size_t v : survivors) servers_[v]->note_capacity_loss();
      std::vector<Completion> shed = drain_worker(w, now_ms);
      if (!shed.empty()) return shed;
      continue;
    }
    if (act != Act::kServe) continue;
    util::sched::yield("fleet.step.claimed");
    if (queue_.shard(w).empty()) queue_.balance(w, max_batch_[w]);
    std::vector<Completion> done;
    if (!queue_.shard(w).empty()) done = servers_[w]->step(now_ms);

    util::MutexLock lock(mu_);
    serving_[w] = 0;
    if (done.empty()) continue;
    busy_until_ms_[w] = done.front().finish_ms;
    // A completed batch is the heartbeat: close the silence window, decay
    // the error score, advance the warm-up (Degraded/Recovering earn Up
    // back after warmup_batches clean batches — mirrored into routing).
    monitor_.note_progress(w, now_ms);
    queue_.set_routable(w, monitor_.routable(w));
    for (Completion& c : done) {
      c.worker = w;
      TenantCounters& tc = tenants_[c.tenant];
      ++tc.served;
      tc.missed += c.missed ? 1 : 0;
      ++stats_.served;
      stats_.missed += c.missed ? 1 : 0;
      --inflight_[c.tenant];
      --inflight_total_;
    }
    return done;
  }
  return {};
}

std::vector<Completion> Fleet::failover_pass(double now_ms) {
  // Without worker-scoped faults no replica can ever leave Up (silence
  // windows and errors only come from the injector), so the clean path
  // skips the scan entirely — NETCUT_FAULTS unset stays the PR 8 loop.
  std::vector<std::size_t> to_drain;
  std::vector<std::size_t> survivors;
  {
    util::MutexLock lock(mu_);
    if (!injector_.active()) return {};
    for (std::size_t w = 0; w < servers_.size(); ++w) {
      const bool went_down =
          monitor_.advance(w, now_ms, injector_.responsive(w, now_ms));
      queue_.set_routable(w, monitor_.routable(w));
      if (went_down) {
        for (std::size_t v : on_went_down(w)) survivors.push_back(v);
        to_drain.push_back(w);
      } else if (monitor_.state(w) == ReplicaState::kDown &&
                 !queue_.shard(w).empty()) {
        // Stray sweep: a push that routed before the Down flip can land
        // after the drain. Its staleness is bounded to one step — every
        // pass re-drains any Down shard holding work.
        to_drain.push_back(w);
      }
    }
  }
  for (std::size_t v : survivors) servers_[v]->note_capacity_loss();
  std::vector<Completion> shed;
  for (std::size_t w : to_drain) {
    std::vector<Completion> s = drain_worker(w, now_ms);
    shed.insert(shed.end(), std::make_move_iterator(s.begin()),
                std::make_move_iterator(s.end()));
  }
  return shed;
}

std::vector<std::size_t> Fleet::on_went_down(std::size_t w) {
  ++stats_.failovers;
  // Survivors inherit a slice of the dead replica's load the instant
  // routing flips; their watchdogs get the capacity-loss nudge (fall back
  // to a faster TRN now) rather than waiting a full miss window.
  std::vector<std::size_t> survivors;
  for (std::size_t v = 0; v < servers_.size(); ++v)
    if (v != w && monitor_.in_admission(v)) survivors.push_back(v);
  return survivors;
}

std::vector<Completion> Fleet::drain_worker(std::size_t w, double now_ms) {
  // Atomically empty the dead shard. The orphans stay counted in the
  // inflight totals while they sit in no shard, so the conservation
  // invariant (submitted == shed + served + in flight) holds at every
  // interleaving of this window — the model checker parks threads here
  // against concurrent submits, steals and stats reads to prove it.
  std::vector<Request> orphans = queue_.shard(w).drain();
  if (orphans.empty()) return {};
  util::sched::yield("fleet.drain.holding-orphans");
  std::vector<Completion> shed;
  {
    util::MutexLock lock(mu_);
    for (const Request& r : orphans) {
      // Re-admission against the shrunk fleet, one orphan at a time with
      // reinsertion under the same lock hold, so each later orphan's bound
      // sees the earlier ones already back in the shards (batching the
      // checks would over-admit: fifty orphans all judged against the
      // pre-requeue backlog). EDF order is preserved per shard because
      // drain() yields EDF order and reinsert() re-heapifies.
      if (!config_.admission || feasible(r, now_ms)) {
        queue_.shard(queue_.route(r.tenant)).reinsert(r);
        ++stats_.requeued;
        continue;
      }
      TenantCounters& tc = tenants_[r.tenant];
      ++tc.shed;
      ++stats_.shed;
      ++stats_.drain_shed;
      --inflight_[r.tenant];
      --inflight_total_;
      Completion c;
      c.id = r.id;
      c.arrival_ms = r.arrival_ms;
      c.deadline_ms = r.deadline_ms;
      c.tenant = r.tenant;
      c.slo = r.slo;
      c.finish_ms = now_ms;
      c.rejected = true;
      shed.push_back(std::move(c));
    }
  }
  util::sched::yield("fleet.drain.requeue");
  return shed;
}

double Fleet::next_free_after(double now_ms) const {
  util::MutexLock lock(mu_);
  double next = std::numeric_limits<double>::infinity();
  for (const double busy : busy_until_ms_)
    if (busy > now_ms) next = std::min(next, busy);
  if (injector_.active()) {
    // Health deadlines are clock events too: an event-driven caller must
    // wake at the next silence threshold / probation end / hang end, or a
    // wedged replica would never be *declared* dead between batches.
    for (std::size_t w = 0; w < servers_.size(); ++w) {
      next = std::min(next, monitor_.next_event_after(w, now_ms));
      const double alive = injector_.next_responsive_ms(w, now_ms);
      if (alive > now_ms) next = std::min(next, alive);
    }
  }
  return next;
}

void Fleet::close() { queue_.close_all(); }

FleetStats Fleet::stats() const {
  FleetStats s;
  {
    util::MutexLock lock(mu_);
    s = stats_;
  }
  s.steals = 0;
  for (std::size_t w = 0; w < servers_.size(); ++w) s.steals += queue_.steals(w);
  return s;
}

}  // namespace netcut::serve
