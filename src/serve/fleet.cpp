#include "serve/fleet.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "util/schedule.hpp"

namespace netcut::serve {

Fleet::Fleet(std::vector<FleetWorker> workers, FleetConfig config)
    : config_(std::move(config)),
      queue_(workers.empty() ? 1 : workers.size(), config_.seed) {
  if (workers.empty()) throw std::invalid_argument("Fleet: no workers");
  if (config_.classes.empty()) throw std::invalid_argument("Fleet: no SLO classes");
  if (config_.admission_headroom < 0 || config_.admission_headroom >= 1)
    throw std::invalid_argument("Fleet: admission_headroom outside [0, 1)");
  for (const SloClass& c : config_.classes)
    if (c.weight <= 0 || c.deadline_slack_ms <= 0 || c.p99_budget_ms <= 0)
      throw std::invalid_argument("Fleet: bad SLO class '" + c.name + "'");
  names_.reserve(workers.size());
  servers_.reserve(workers.size());
  busy_until_ms_.assign(workers.size(), -std::numeric_limits<double>::infinity());
  serving_.assign(workers.size(), 0);
  max_batch_.reserve(workers.size());
  for (std::size_t w = 0; w < workers.size(); ++w) {
    FleetWorker& spec = workers[w];
    names_.push_back(spec.name.empty() ? "worker" + std::to_string(w) : spec.name);
    max_batch_.push_back(static_cast<std::size_t>(std::max(1, spec.serve.max_batch)));
    servers_.push_back(std::make_unique<BatchServer>(std::move(spec.options),
                                                     queue_.shard(w), spec.serve));
  }
}

bool Fleet::feasible(const Request& r, double now_ms) const {
  // Least-loaded-replica bound: earliest start (free time), plus the
  // shard's backlog drained at the fastest TRN's amortized batched rate —
  // fastest(max_batch) / max_batch, the best sustained per-request rate any
  // option on the replica can reach (a batch of n costs curve(n), so
  // dividing the single-request latency by the batch size would overstate
  // the drain rate) — plus one full fastest batch window for the request
  // itself. Reserving the whole batch window, not a single-request pass, is
  // what keeps admission self-consistent: it caps the backlog at a depth
  // where the EDF head still has curve(max_batch) of slack left when its
  // turn comes, so the batch former can keep packing full batches. A looser
  // bound admits a backlog deep enough that heads arrive at the server
  // already hopeless, batches degenerate toward size 1, the effective
  // service rate collapses below the assumed amortized rate, and every
  // admitted request misses — the exact spiral admission control is there
  // to prevent. If even this best case blows the deadline on every replica,
  // no admission order could save the request: shed now, explicitly,
  // instead of missing later. Work stealing is what makes the per-replica
  // view sound — work admitted against a short shard gets pulled to a dry
  // worker if its own shard lags.
  const double margin =
      std::max(0.0, config_.admission_headroom * (r.deadline_ms - now_ms));

  // Own-shard view: the replica this request routes to, serving only its
  // own shard, finishes it in time. Under balanced routing this is the
  // exact bound — checking some *other*, less-loaded replica instead would
  // admit work into a fuller shard than the one that passed the test.
  const std::size_t own = queue_.route(r.id);
  const int own_mb = static_cast<int>(max_batch_[own]);
  const double own_batch = servers_[own]->fastest_latency_ms(own_mb);
  const double own_eta = std::max(now_ms, busy_until_ms_[own]) +
                         static_cast<double>(queue_.shard(own).size()) * own_batch /
                             static_cast<double>(own_mb) +
                         own_batch;
  if (own_eta + margin <= r.deadline_ms) return true;

  // Fleet-wide view, applicable only while stealing is actually available:
  // work stealing turns the shards into one logical EDF queue with the
  // summed service rate (dry workers pull the most urgent work over), so a
  // request the own-shard view sheds is still admitted while the fleet as
  // a whole can absorb it. Under skewed routing this is what keeps the hot
  // shard's backlog bounded while the stealing workers' shards look
  // deceptively dry. The dry-shard gate matters in the other direction: in
  // a balanced saturated fleet no shard ever runs dry, nothing migrates,
  // and vouching for the fleet's aggregate rate would admit work into a
  // hot shard no stealer will ever relieve.
  bool stealer_available = false;
  for (std::size_t w = 0; w < servers_.size() && !stealer_available; ++w)
    stealer_available = w != own && queue_.shard(w).empty();
  if (!stealer_available) return false;

  double fleet_rate = 0.0;                                        // requests per ms
  double earliest_start = std::numeric_limits<double>::infinity();
  double best_batch = std::numeric_limits<double>::infinity();
  for (std::size_t w = 0; w < servers_.size(); ++w) {
    const int mb = static_cast<int>(max_batch_[w]);
    const double fastest_batch = servers_[w]->fastest_latency_ms(mb);
    fleet_rate += static_cast<double>(mb) / fastest_batch;
    earliest_start = std::min(earliest_start, std::max(now_ms, busy_until_ms_[w]));
    best_batch = std::min(best_batch, fastest_batch);
  }
  const double fleet_eta = earliest_start +
                           static_cast<double>(queue_.total_size()) / fleet_rate + best_batch;
  return fleet_eta + margin <= r.deadline_ms;
}

bool Fleet::over_fair_share(const Request& r) const {
  // Weighted share of in-flight work. Active tenants are those holding
  // work right now, plus the submitter; iteration over the ordered map
  // keeps the arithmetic deterministic.
  double total_weight = 0.0;
  bool submitter_counted = false;
  for (const auto& [tenant, n] : inflight_) {
    if (n <= 0) continue;
    const auto it = tenants_.find(tenant);
    total_weight += config_.classes[it->second.slo].weight;
    submitter_counted = submitter_counted || tenant == r.tenant;
  }
  if (!submitter_counted) total_weight += config_.classes[r.slo].weight;
  const double allowance = config_.classes[r.slo].weight / total_weight *
                           static_cast<double>(inflight_total_ + 1);
  const auto it = inflight_.find(r.tenant);
  const std::int64_t mine = it != inflight_.end() ? it->second : 0;
  return static_cast<double>(mine + 1) > allowance;
}

std::optional<Completion> Fleet::submit(const Request& r, double now_ms) {
  if (r.slo >= config_.classes.size())
    throw std::invalid_argument("Fleet: request references unknown SLO class");
  {
    util::MutexLock lock(mu_);
    TenantCounters& tc = tenants_[r.tenant];
    tc.slo = r.slo;
    ++tc.submitted;
    ++stats_.submitted;

    const bool pressured = queue_.total_size() >= config_.pressure_backlog;
    if (config_.admission &&
        (!feasible(r, now_ms) || (pressured && over_fair_share(r)))) {
      ++tc.shed;
      ++stats_.shed;
      Completion c;
      c.id = r.id;
      c.arrival_ms = r.arrival_ms;
      c.deadline_ms = r.deadline_ms;
      c.tenant = r.tenant;
      c.slo = r.slo;
      c.finish_ms = now_ms;
      c.rejected = true;
      return c;
    }

    // Count the admission before the push lands: a concurrent stats reader
    // in the window below must still see submitted == shed + served +
    // in flight.
    ++inflight_[r.tenant];
    ++inflight_total_;
  }
  // Admitted-but-not-yet-enqueued window: the request is counted in flight
  // but in no shard. The model checker interleaves steppers and other
  // submitters here to prove the conservation invariant and that a stepper
  // racing this push merely finds a dry shard (no lost request, no lost
  // wakeup once it lands).
  util::sched::yield("fleet.submit.admit-to-push");
  queue_.push(r);
  return std::nullopt;
}

std::vector<Completion> Fleet::step(double now_ms) {
  for (std::size_t w = 0; w < servers_.size(); ++w) {
    // Claim the worker under the lock, serve it outside: the replica's
    // step runs the batch forward (which may block on the thread pool's
    // completion wait), so the fleet lock must not be held across it. The
    // serving_ flag keeps a concurrent stepper from double-serving the
    // claimed replica in that window.
    {
      util::MutexLock lock(mu_);
      if (serving_[w] != 0 || busy_until_ms_[w] > now_ms) continue;
      serving_[w] = 1;
    }
    util::sched::yield("fleet.step.claimed");
    if (queue_.shard(w).empty()) queue_.balance(w, max_batch_[w]);
    std::vector<Completion> done;
    if (!queue_.shard(w).empty()) done = servers_[w]->step(now_ms);

    util::MutexLock lock(mu_);
    serving_[w] = 0;
    if (done.empty()) continue;
    busy_until_ms_[w] = done.front().finish_ms;
    for (Completion& c : done) {
      c.worker = w;
      TenantCounters& tc = tenants_[c.tenant];
      ++tc.served;
      tc.missed += c.missed ? 1 : 0;
      ++stats_.served;
      stats_.missed += c.missed ? 1 : 0;
      --inflight_[c.tenant];
      --inflight_total_;
    }
    return done;
  }
  return {};
}

double Fleet::next_free_after(double now_ms) const {
  util::MutexLock lock(mu_);
  double next = std::numeric_limits<double>::infinity();
  for (const double busy : busy_until_ms_)
    if (busy > now_ms) next = std::min(next, busy);
  return next;
}

void Fleet::close() { queue_.close_all(); }

FleetStats Fleet::stats() const {
  FleetStats s;
  {
    util::MutexLock lock(mu_);
    s = stats_;
  }
  s.steals = 0;
  for (std::size_t w = 0; w < servers_.size(); ++w) s.steals += queue_.steals(w);
  return s;
}

}  // namespace netcut::serve
