#include "serve/health.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace netcut::serve {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

const char* replica_state_name(ReplicaState s) {
  switch (s) {
    case ReplicaState::kUp: return "up";
    case ReplicaState::kDegraded: return "degraded";
    case ReplicaState::kDown: return "down";
    case ReplicaState::kRecovering: return "recovering";
  }
  return "?";
}

HealthMonitor::HealthMonitor(std::size_t workers, HealthConfig config)
    : config_(config), replicas_(workers) {
  if (workers == 0) throw std::invalid_argument("HealthMonitor: no workers");
  if (config_.suspect_after_ms <= 0 || config_.down_after_ms <= config_.suspect_after_ms)
    throw std::invalid_argument(
        "HealthMonitor: want 0 < suspect_after_ms < down_after_ms");
  if (config_.degraded_errors < 1 || config_.down_errors <= config_.degraded_errors)
    throw std::invalid_argument(
        "HealthMonitor: want 1 <= degraded_errors < down_errors");
  if (config_.probation_ms <= 0 || config_.warmup_batches < 1)
    throw std::invalid_argument("HealthMonitor: want probation_ms > 0, warmup_batches >= 1");
}

std::size_t HealthMonitor::up_count() const {
  std::size_t n = 0;
  for (const ReplicaHealth& r : replicas_) n += r.state == ReplicaState::kUp ? 1 : 0;
  return n;
}

void HealthMonitor::set_state(std::size_t w, ReplicaState s, double now_ms) {
  ReplicaHealth& r = replicas_[w];
  if (r.state == s) return;
  r.state = s;
  ++r.transitions;
  if (s == ReplicaState::kDown) {
    r.down_since_ms = now_ms;
    r.detected_ms = now_ms;
    r.responsive_since_ms = kInf;
    r.silent_since_ms = kInf;
  }
  if (s == ReplicaState::kRecovering || s == ReplicaState::kUp) {
    r.clean_batches = 0;
    r.error_score = 0;
  }
}

void HealthMonitor::note_progress(std::size_t w, double now_ms) {
  ReplicaHealth& r = replicas_[w];
  r.last_progress_ms = now_ms;
  r.silent_since_ms = kInf;
  r.error_score = std::max(0, r.error_score - 1);
  if (r.state == ReplicaState::kDegraded || r.state == ReplicaState::kRecovering) {
    // Warm-up ramp: only a full run of clean batches re-earns Up (and with
    // it routing + admission capacity). Counting batches, not time, means a
    // flapping replica pays the whole ramp again on every cycle.
    if (++r.clean_batches >= config_.warmup_batches) set_state(w, ReplicaState::kUp, now_ms);
  }
}

void HealthMonitor::note_attempt_blocked(std::size_t w, double now_ms) {
  ReplicaHealth& r = replicas_[w];
  if (r.silent_since_ms == kInf) r.silent_since_ms = now_ms;
}

void HealthMonitor::note_dispatch(std::size_t w, double now_ms) {
  ReplicaHealth& r = replicas_[w];
  r.last_progress_ms = now_ms;
  r.silent_since_ms = kInf;
}

void HealthMonitor::note_error(std::size_t w, double now_ms) {
  ReplicaHealth& r = replicas_[w];
  // An error is a *response*: the replica is alive, just failing. Close the
  // silence window but do not count it as progress.
  r.silent_since_ms = kInf;
  r.clean_batches = 0;
  ++r.error_score;
  if (r.error_score >= config_.down_errors) {
    set_state(w, ReplicaState::kDown, now_ms);
  } else if (r.error_score >= config_.degraded_errors && r.state == ReplicaState::kUp) {
    set_state(w, ReplicaState::kDegraded, now_ms);
  }
}

bool HealthMonitor::advance(std::size_t w, double now_ms, bool responsive) {
  ReplicaHealth& r = replicas_[w];
  if (r.state == ReplicaState::kUp || r.state == ReplicaState::kDegraded) {
    if (r.silent_since_ms == kInf) return false;
    const double silent = now_ms - r.silent_since_ms;
    if (r.state == ReplicaState::kUp && silent >= config_.suspect_after_ms)
      set_state(w, ReplicaState::kDegraded, now_ms);
    if (r.state == ReplicaState::kDegraded && silent >= config_.down_after_ms) {
      set_state(w, ReplicaState::kDown, now_ms);
      return true;
    }
    return false;
  }
  if (r.state == ReplicaState::kDown) {
    if (!responsive) {
      r.responsive_since_ms = kInf;
      return false;
    }
    if (r.responsive_since_ms == kInf) r.responsive_since_ms = now_ms;
    if (now_ms - r.responsive_since_ms >= config_.probation_ms)
      set_state(w, ReplicaState::kRecovering, now_ms);
  }
  return false;
}

double HealthMonitor::next_event_after(std::size_t w, double now_ms) const {
  const ReplicaHealth& r = replicas_[w];
  if (r.state == ReplicaState::kUp && r.silent_since_ms < kInf) {
    const double suspect = r.silent_since_ms + config_.suspect_after_ms;
    if (suspect > now_ms) return suspect;
    return r.silent_since_ms + config_.down_after_ms;
  }
  if (r.state == ReplicaState::kDegraded && r.silent_since_ms < kInf) {
    const double down = r.silent_since_ms + config_.down_after_ms;
    if (down > now_ms) return down;
  }
  if (r.state == ReplicaState::kDown && r.responsive_since_ms < kInf) {
    const double recover = r.responsive_since_ms + config_.probation_ms;
    if (recover > now_ms) return recover;
  }
  return kInf;
}

WorkerFaultInjector::WorkerFaultInjector(const hw::FaultConfig& config, std::size_t workers)
    : active_(config.enabled && config.targets_workers()),
      config_(config),
      crashed_(workers, 0),
      hang_fired_(workers, 0),
      hang_until_ms_(workers, -kInf) {
  flaky_rng_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w)
    flaky_rng_.emplace_back(
        util::derive_seed(config.seed, "serve/flaky/" + std::to_string(w)));
}

WorkerFaultInjector::Attempt WorkerFaultInjector::on_attempt(std::size_t w, std::int64_t k,
                                                             double now_ms) {
  if (!active_) return Attempt::kServe;
  if (crashed_[w] != 0) return Attempt::kSilent;
  if (config_.crash_worker == static_cast<int>(w) && k >= config_.crash_attempt) {
    crashed_[w] = 1;
    return Attempt::kSilent;
  }
  if (config_.hang_worker == static_cast<int>(w) && hang_fired_[w] == 0 &&
      k >= config_.hang_attempt) {
    hang_fired_[w] = 1;
    hang_until_ms_[w] = now_ms + config_.hang_ms;
  }
  if (now_ms < hang_until_ms_[w]) return Attempt::kSilent;
  if (config_.flaky_worker == static_cast<int>(w) &&
      flaky_rng_[w].chance(config_.flaky_prob))
    return Attempt::kError;
  return Attempt::kServe;
}

bool WorkerFaultInjector::responsive(std::size_t w, double now_ms) const {
  if (!active_) return true;
  if (crashed_[w] != 0) return false;
  return now_ms >= hang_until_ms_[w];
}

double WorkerFaultInjector::next_responsive_ms(std::size_t w, double now_ms) const {
  if (!active_) return kInf;
  if (crashed_[w] != 0) return kInf;
  if (now_ms < hang_until_ms_[w]) return hang_until_ms_[w];
  return kInf;
}

}  // namespace netcut::serve
