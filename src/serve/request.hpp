// The unit of work flowing through the serving layer: one inference request
// with an absolute deadline on a shared millisecond timeline, tagged with
// the tenant that submitted it and that tenant's SLO class.
//
// The serving layer is clock-agnostic: it never reads a wall clock. Callers
// stamp arrivals and pass `now` into every call, so the same code runs
// under the deterministic simulated clock (tests, benchmarks) and under a
// real steady_clock-derived timeline (the demo).
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace netcut::serve {

struct Request {
  std::uint64_t id = 0;
  double arrival_ms = 0.0;   // when the request entered the system
  double deadline_ms = 0.0;  // absolute: respond by this time or it is a miss
  /// Who submitted it. Tenants are opaque ids; the fleet's admission
  /// control and per-tenant accounting key on this.
  std::uint32_t tenant = 0;
  /// Index into the fleet's SLO class table (deadline slack, p99 budget,
  /// admission weight). Single-tenant callers leave the default class 0.
  std::uint32_t slo = 0;
  /// Input image (one CHW tensor). Borrowed: the submitter keeps it alive
  /// until the completion for this id is delivered.
  const tensor::Tensor* input = nullptr;
};

}  // namespace netcut::serve
