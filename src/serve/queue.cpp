#include "serve/queue.hpp"

#include <algorithm>
#include <stdexcept>

namespace netcut::serve {

void RequestQueue::push(Request r) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) throw std::logic_error("RequestQueue: push after close");
    pending_.push_back(r);
  }
  cv_.notify_one();
}

std::size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

bool RequestQueue::empty() const { return size() == 0; }

std::vector<Request> RequestQueue::take(
    const std::function<std::size_t(const std::vector<Request>&)>& choose) {
  std::lock_guard<std::mutex> lock(mu_);
  if (pending_.empty()) return {};
  std::sort(pending_.begin(), pending_.end(), [](const Request& a, const Request& b) {
    if (a.deadline_ms != b.deadline_ms) return a.deadline_ms < b.deadline_ms;
    return a.id < b.id;
  });
  const std::size_t n = choose(pending_);
  if (n > pending_.size()) throw std::logic_error("RequestQueue: choose picked too many");
  std::vector<Request> out(pending_.begin(),
                           pending_.begin() + static_cast<std::ptrdiff_t>(n));
  pending_.erase(pending_.begin(), pending_.begin() + static_cast<std::ptrdiff_t>(n));
  return out;
}

bool RequestQueue::wait_nonempty() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return !pending_.empty() || closed_; });
  return !pending_.empty();
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

}  // namespace netcut::serve
