#include "serve/queue.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/schedule.hpp"

namespace netcut::serve {

namespace {

/// std::push_heap/pop_heap build a max-heap; inverting the (deadline, id)
/// order keeps the *earliest* deadline at the front. Ids are unique, so
/// this is a total order and pop order is fully deterministic.
bool later(const Request& a, const Request& b) {
  if (a.deadline_ms != b.deadline_ms) return a.deadline_ms > b.deadline_ms;
  return a.id > b.id;
}

}  // namespace

void RequestQueue::push(Request r) {
  {
    util::MutexLock lock(mu_);
    if (closed_) throw std::logic_error("RequestQueue: push after close");
    heap_.push_back(r);
    std::push_heap(heap_.begin(), heap_.end(), later);
  }
  // Deliberate unlock-before-notify window: the model checker explores
  // schedules where a waiter (or a close) lands right here.
  util::sched::yield("queue.push.pre-notify");
  cv_.notify_one();
}

void RequestQueue::reinsert(Request r) {
  {
    util::MutexLock lock(mu_);
    heap_.push_back(r);
    std::push_heap(heap_.begin(), heap_.end(), later);
  }
  util::sched::yield("queue.reinsert.pre-notify");
  cv_.notify_one();
}

std::size_t RequestQueue::size() const {
  util::MutexLock lock(mu_);
  return heap_.size();
}

bool RequestQueue::empty() const { return size() == 0; }

std::vector<Request> RequestQueue::pop_locked(std::size_t n) {
  std::vector<Request> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::pop_heap(heap_.begin(), heap_.end(), later);
    out.push_back(heap_.back());
    heap_.pop_back();
  }
  return out;
}

std::vector<Request> RequestQueue::take(
    const std::function<std::size_t(const Request& head, std::size_t pending)>& choose) {
  util::MutexLock lock(mu_);
  if (heap_.empty()) return {};
  const std::size_t n = choose(heap_.front(), heap_.size());
  if (n > heap_.size()) throw std::logic_error("RequestQueue: choose picked too many");
  return pop_locked(n);
}

std::vector<Request> RequestQueue::steal(std::size_t max_n) {
  util::MutexLock lock(mu_);
  return pop_locked(std::min(max_n, heap_.size()));
}

std::vector<Request> RequestQueue::drain() {
  util::MutexLock lock(mu_);
  return pop_locked(heap_.size());
}

bool RequestQueue::wait_nonempty() {
  util::MutexLock lock(mu_);
  cv_.wait(mu_, [&]() NETCUT_REQUIRES(mu_) { return !heap_.empty() || closed_; });
  return !heap_.empty();
}

void RequestQueue::close() {
  {
    util::MutexLock lock(mu_);
    closed_ = true;
  }
  util::sched::yield("queue.close.pre-notify");
  cv_.notify_all();
}

bool RequestQueue::closed() const {
  util::MutexLock lock(mu_);
  return closed_;
}

}  // namespace netcut::serve
