// Greedy deadline-aware batch forming.
//
// Given the EDF-ordered backlog, pick the largest batch (up to the size
// cap) whose estimated batched latency still meets the earliest deadline in
// the batch. Because the backlog is EDF-ordered, the earliest deadline of
// any prefix is the head's deadline — so the policy needs only the head
// and the backlog size, which is exactly what RequestQueue::take hands it
// (the queue no longer materializes a sorted view at all). The search is a
// single scan over the batch-latency curve — which the device model makes
// concave in batch size (launch once, weights stream once), exactly the
// amortization the batcher is there to exploit.
//
// The head request is always served even when it can no longer meet its
// deadline — completing it late (and letting the miss feed the watchdog)
// beats letting it starve the queue. A hopeless head rides the *largest*
// batch: nothing can save it, so the policy maximizes drain rate instead
// of wasting a near-full single-request launch on it (serving late heads
// one at a time divides throughput by the batch size exactly when the
// queue most needs the amortization, and under saturation that collapse
// is self-sustaining).
#pragma once

#include <cstddef>
#include <functional>

namespace netcut::serve {

struct BatcherConfig {
  int max_batch = 8;
};

/// Thread-safety: a BatchFormer is immutable after construction (choose is
/// const and touches only the config and the latency callback), so it
/// needs no lock of its own. Callers must ensure the latency callback is
/// itself safe to invoke concurrently — the server's callback reads the
/// watchdog's current option, which is internally synchronized. Note that
/// RequestQueue::take invokes choose() while holding the queue lock (rank
/// kQueue), so the callback may acquire only higher-ranked locks (the
/// watchdog's kWatchdog qualifies).
class BatchFormer {
 public:
  /// `batch_latency_ms(n)` estimates the service time of a batch of n on
  /// the option currently in service (e.g. from
  /// LatencyEstimator::estimate_batch_ms or a measured curve). It must be
  /// non-decreasing in n.
  BatchFormer(BatcherConfig config, std::function<double(int)> batch_latency_ms);

  /// Batch size to take from an EDF-ordered backlog of `pending` requests
  /// whose head deadline is `head_deadline_ms`, at time `now_ms`: the
  /// largest n <= min(max_batch, pending) with
  ///   now_ms + batch_latency_ms(n) <= head_deadline_ms,
  /// and at least 1 when the backlog is non-empty.
  std::size_t choose(double now_ms, double head_deadline_ms, std::size_t pending) const;

  const BatcherConfig& config() const { return config_; }

 private:
  BatcherConfig config_;
  std::function<double(int)> batch_latency_ms_;
};

}  // namespace netcut::serve
