// Greedy deadline-aware batch forming.
//
// Given the EDF-sorted pending set, pick the largest batch (up to the size
// cap) whose estimated batched latency still meets the earliest deadline in
// the batch. Because the candidates are EDF-sorted, the earliest deadline
// of any prefix is the head's deadline, so the search is a single scan over
// the batch-latency curve — which the device model makes concave in batch
// size (launch once, weights stream once), exactly the amortization the
// batcher is there to exploit.
//
// The head request is always served (batch >= 1) even when it can no
// longer meet its deadline: it is cheaper to complete it late — and let
// the miss feed the watchdog — than to let it starve the queue.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "serve/request.hpp"

namespace netcut::serve {

struct BatcherConfig {
  int max_batch = 8;
};

class BatchFormer {
 public:
  /// `batch_latency_ms(n)` estimates the service time of a batch of n on
  /// the option currently in service (e.g. from
  /// LatencyEstimator::estimate_batch_ms or a measured curve). It must be
  /// non-decreasing in n.
  BatchFormer(BatcherConfig config, std::function<double(int)> batch_latency_ms);

  /// Batch size to take from the EDF-sorted pending set at time `now_ms`:
  /// the largest n <= min(max_batch, pending) with
  ///   now_ms + batch_latency_ms(n) <= earliest deadline in the batch,
  /// and at least 1 when the pending set is non-empty.
  std::size_t choose(double now_ms, const std::vector<Request>& edf_pending) const;

  const BatcherConfig& config() const { return config_; }

 private:
  BatcherConfig config_;
  std::function<double(int)> batch_latency_ms_;
};

}  // namespace netcut::serve
