// Replica health for the fleet: a per-worker lifecycle state machine plus
// the deterministic worker-fault injector that exercises it.
//
//   Up ──silent ≥ suspect_after──▶ Degraded ──silent ≥ down_after──▶ Down
//   ▲                                 │  ▲                            │
//   │◀──── warm-up (clean batches) ───┘  └─── errors ≥ down_errors ───┘
//   │                                                                 │
//   └──── warm-up (steal-only) ──── Recovering ◀── responsive + ──────┘
//                                                  probation
//
//  * Up: serving, routable, counted in the admission capacity.
//  * Degraded: suspected (silent past the heartbeat deadline, or an error
//    score over threshold). Still serves its own shard — but new work is
//    routed away and admission stops vouching for it, so a replica that is
//    about to die stops accumulating obligations first.
//  * Down: declared dead. The fleet drains its shard and re-queues the
//    orphans against the shrunk capacity (Fleet::step); nothing routes to
//    it and it serves nothing.
//  * Recovering: responsive again after probation. Serves steal-only — it
//    helps drain the survivors' backlog but takes no routed work and adds
//    nothing to the admission capacity until a full warm-up of clean
//    batches. The warm-up is the anti-flap hysteresis: a worker that keeps
//    hanging re-enters admission at most once per (probation + warm-up),
//    so the gate cannot oscillate with the fault.
//
// Detection is heartbeat-based and clock-agnostic: every signal is an
// explicit call from Fleet::step(now_ms). A *dispatched* batch that
// completes is a heartbeat (note_progress); a dispatch attempt the replica
// silently ignores opens a silence window (note_attempt_blocked); a
// reported batch error bumps a leaky error score (note_error). Silence is
// judged against time thresholds, never against service time — a replica
// slowed 5x by a thermal throttle still completes batches, still
// heartbeats, and is never suspected (no false positives under throttle=).
//
// Both classes here are *externally synchronized*: the Fleet owns them
// under its admission lock (rank kFleet). They take no locks, call no
// clocks and draw only from seeded streams, so fleet runs stay
// bit-reproducible with failures injected.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "hw/faults.hpp"
#include "util/rng.hpp"

namespace netcut::serve {

enum class ReplicaState { kUp, kDegraded, kDown, kRecovering };

const char* replica_state_name(ReplicaState s);

struct HealthConfig {
  /// Heartbeat deadline: a replica silent this long (while dispatch
  /// attempts are being ignored) is suspected — Up becomes Degraded.
  double suspect_after_ms = 8.0;
  /// Silent this long and it is declared Down: drain + failover.
  double down_after_ms = 20.0;
  /// Leaky error score (errors +1, clean batches -1) at which an Up
  /// replica is Degraded / a Degraded one is Down.
  int degraded_errors = 2;
  int down_errors = 5;
  /// A Down replica must answer probes this long before Recovering starts.
  double probation_ms = 10.0;
  /// Clean batches a Recovering (or Degraded) replica must serve before it
  /// is Up again — the warm-up ramp that prevents admission flap.
  int warmup_batches = 4;
};

/// Per-replica lifecycle record (snapshot type for reports/demos too).
struct ReplicaHealth {
  ReplicaState state = ReplicaState::kUp;
  /// Last heartbeat (completed batch), -inf before the first.
  double last_progress_ms = -std::numeric_limits<double>::infinity();
  /// Start of the open silence window, NaN-free sentinel +inf when closed.
  double silent_since_ms = std::numeric_limits<double>::infinity();
  int error_score = 0;
  int clean_batches = 0;  // warm-up progress while Degraded/Recovering
  double down_since_ms = 0.0;      // when Down was declared
  double detected_ms = 0.0;        // == down_since_ms (timeline alias)
  /// When the replica was first seen responsive again while Down; +inf
  /// while unresponsive (probation restarts if it goes silent again).
  double responsive_since_ms = std::numeric_limits<double>::infinity();
  std::int64_t transitions = 0;  // state changes (flap telemetry)
};

/// The lifecycle state machine for every replica in one fleet.
class HealthMonitor {
 public:
  HealthMonitor(std::size_t workers, HealthConfig config);

  const HealthConfig& config() const { return config_; }
  std::size_t workers() const { return replicas_.size(); }
  ReplicaState state(std::size_t w) const { return replicas_[w].state; }
  const ReplicaHealth& replica(std::size_t w) const { return replicas_[w]; }

  /// Policy predicates the fleet keys routing/admission/serving off.
  bool serving_allowed(std::size_t w) const {
    return replicas_[w].state != ReplicaState::kDown;
  }
  bool in_admission(std::size_t w) const {
    return replicas_[w].state == ReplicaState::kUp;
  }
  bool routable(std::size_t w) const {
    return replicas_[w].state == ReplicaState::kUp;
  }
  bool steal_only(std::size_t w) const {
    return replicas_[w].state == ReplicaState::kRecovering;
  }
  std::size_t up_count() const;

  /// A dispatched batch completed: heartbeat. Closes any silence window,
  /// decays the error score and advances the warm-up (Degraded/Recovering
  /// go Up after config.warmup_batches clean batches).
  void note_progress(std::size_t w, double now_ms);

  /// A dispatch attempt was silently ignored (crash/hang): opens the
  /// silence window. Threshold crossings are applied by advance(), so
  /// detection is purely a function of the step clock.
  void note_attempt_blocked(std::size_t w, double now_ms);

  /// The replica accepted a dispatch (batch in flight): closes the silence
  /// window without advancing the warm-up — acceptance proves liveness,
  /// only completion proves health.
  void note_dispatch(std::size_t w, double now_ms);

  /// The replica answered the dispatch with an error (flaky): bumps the
  /// leaky error score and resets the warm-up.
  void note_error(std::size_t w, double now_ms);

  /// Time-driven transitions at `now_ms`; `responsive` is whether the
  /// replica currently answers probes (false mid-hang / after a crash).
  /// Applies silence thresholds (Up -> Degraded -> Down) and the Down ->
  /// Recovering probation. Returns true when this call declared the
  /// replica Down (the caller must drain its shard).
  bool advance(std::size_t w, double now_ms, bool responsive);

  /// Earliest time strictly after `now_ms` at which advance() could take a
  /// transition for worker `w` given no new events; +inf when none is
  /// scheduled. The fleet folds this into next_free_after so event-driven
  /// callers never sleep through a heartbeat deadline.
  double next_event_after(std::size_t w, double now_ms) const;

 private:
  void set_state(std::size_t w, ReplicaState s, double now_ms);

  HealthConfig config_;  // immutable after construction
  std::vector<ReplicaHealth> replicas_;
};

/// Interprets the worker-scoped NETCUT_FAULTS clauses (crash=W@S,
/// hang=W@S~D, flaky=WxP) for one fleet. Flaky draws come from per-worker
/// streams derived from the schedule seed, so outcomes are bit-identical
/// run to run and decorrelated across workers. Inert (every attempt
/// serves) when the schedule has no worker clauses.
class WorkerFaultInjector {
 public:
  WorkerFaultInjector() = default;  // inert
  WorkerFaultInjector(const hw::FaultConfig& config, std::size_t workers);

  bool active() const { return active_; }

  /// Outcome of dispatch attempt `k` (0-based, per worker) at `now_ms`.
  enum class Attempt {
    kServe,   // the replica serves the batch normally
    kError,   // the replica answers with a failure (observed error)
    kSilent,  // the replica ignores the dispatch (crashed or hung)
  };
  Attempt on_attempt(std::size_t w, std::int64_t k, double now_ms);

  /// Does the replica answer out-of-band probes at `now_ms`? False after a
  /// crash and mid-hang; flaky replicas always answer.
  bool responsive(std::size_t w, double now_ms) const;

  /// Earliest time strictly after `now_ms` at which an unresponsive
  /// replica answers again (+inf after a crash, hang end mid-hang).
  double next_responsive_ms(std::size_t w, double now_ms) const;

 private:
  bool active_ = false;
  hw::FaultConfig config_;
  std::vector<util::Rng> flaky_rng_;
  std::vector<char> crashed_;
  std::vector<char> hang_fired_;
  std::vector<double> hang_until_ms_;
};

}  // namespace netcut::serve
