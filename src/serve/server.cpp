#include "serve/server.hpp"

#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

namespace netcut::serve {

namespace {
constexpr double kSlowdownAlpha = 0.1;  // matches the control loop's EWMA

/// Timing-only escalation wish for one request: a Bernoulli(p) draw keyed
/// on (cascade seed, request id) alone, so it is stable across batch
/// boundaries, retries, and work stealing.
bool timing_wish(std::uint64_t cascade_seed, std::uint64_t id, double p) {
  util::Rng rng(util::derive_seed(cascade_seed, std::to_string(id)));
  return rng.uniform() < p;
}
}  // namespace

double expected_latency_ms(const ServeOption& opt, int n) {
  double t = opt.latency_ms(n);
  if (opt.cascade.enabled) {
    const int k = static_cast<int>(std::ceil(opt.cascade.p_escalate * n));
    if (k > 0) t += opt.cascade.stage2_ms(k);
  }
  return t;
}

BatchServer::BatchServer(std::vector<ServeOption> options, RequestQueue& queue,
                         ServeConfig config)
    : options_(std::move(options)),
      queue_(queue),
      config_(config),
      former_(BatcherConfig{config.max_batch},
              [this](int n) { return expected_latency_ms(options_[watchdog_.current()], n); }),
      watchdog_(config.watchdog, options_.empty() ? 1 : options_.size()),
      cascade_seed_(util::derive_seed(config.seed, "serve/cascade")),
      rng_(util::derive_seed(config.seed, "serve/service")) {
  if (options_.empty()) throw std::invalid_argument("BatchServer: no TRN options");
  for (const ServeOption& o : options_) {
    if (!o.latency_ms) throw std::invalid_argument("BatchServer: null latency model");
    if (o.cascade.enabled) {
      if (!o.cascade.stage2_ms)
        throw std::invalid_argument("BatchServer: cascade option needs a stage-2 latency model");
      if (o.cascade.p_escalate < 0.0 || o.cascade.p_escalate > 1.0)
        throw std::invalid_argument("BatchServer: cascade p_escalate must be in [0, 1]");
      if (o.cascade.threshold < 0.0)
        throw std::invalid_argument("BatchServer: cascade threshold must be >= 0");
      if (o.net != nullptr && o.cascade.trn == nullptr)
        throw std::invalid_argument(
            "BatchServer: compute option with a cascade needs cascade.trn");
    }
  }
  if (config_.nominal_deadline_ms <= 0)
    throw std::invalid_argument("BatchServer: bad nominal deadline");
  const hw::FaultModel& model =
      config_.faults != nullptr ? *config_.faults : hw::FaultModel::global();
  if (model.active()) fault_stream_ = model.stream("serve");
}

void BatchServer::note_capacity_loss() {
  util::MutexLock lock(mu_);
  const std::size_t at = watchdog_.current();
  if (watchdog_.note_capacity_loss())
    stats_.switches.push_back({batch_counter_, at, at + 1, watchdog_.window_miss_rate()});
}

std::vector<Completion> BatchServer::step(double now_ms) {
  const std::size_t cur = watchdog_.current();
  std::vector<Request> batch = queue_.take([&](const Request& head, std::size_t pending) {
    return former_.choose(now_ms, head.deadline_ms, pending);
  });
  if (batch.empty()) return {};
  const int n = static_cast<int>(batch.size());
  const ServeOption& opt = options_[cur];
  const bool cascade_compute = opt.cascade.enabled && opt.cascade.trn != nullptr;

  // Cascade decisions — pure functions of the batch, decided pre-lock. A
  // request escalates when it *wishes* to (low stage-1 confidence, or the
  // calibrated timing-only draw) AND the nominal two-stage time still meets
  // its deadline. The slack bound charges stage 2 for every wish in the
  // batch (an upper bound on what actually escalates), so one request's
  // gate never depends on another's.
  std::vector<char> escalate(batch.size(), 0);
  std::vector<core::CascadeTrn::Stage1> stages;
  int n_escalated = 0;
  if (opt.cascade.enabled) {
    std::vector<char> wish(batch.size(), 0);
    int wishes = 0;
    if (cascade_compute) {
      std::vector<const tensor::Tensor*> inputs;
      inputs.reserve(batch.size());
      for (const Request& r : batch) {
        if (r.input == nullptr)
          throw std::invalid_argument("BatchServer: null input on a compute option");
        inputs.push_back(r.input);
      }
      stages = opt.cascade.trn->stage1_batch(inputs);
      for (std::size_t i = 0; i < stages.size(); ++i)
        wish[i] = stages[i].margin < opt.cascade.threshold ? 1 : 0;
    } else {
      for (std::size_t i = 0; i < batch.size(); ++i)
        wish[i] = timing_wish(cascade_seed_, batch[i].id, opt.cascade.p_escalate) ? 1 : 0;
    }
    for (const char w : wish) wishes += w;
    if (wishes > 0) {
      const double bound = opt.latency_ms(n) + opt.cascade.stage2_ms(wishes);
      for (std::size_t i = 0; i < batch.size(); ++i)
        escalate[i] = wish[i] != 0 && now_ms + bound <= batch[i].deadline_ms ? 1 : 0;
    }
    for (const char e : escalate) n_escalated += e;
  }

  // Real compute: one batched pass, bitwise identical to n single-image
  // forwards (outputs skipped for timing-only options). With a cascade,
  // escalated requests get the deep TRN's output (resumed from the shared
  // trunk activation), the rest keep their stage-1 prediction.
  std::vector<tensor::Tensor> outputs;
  if (cascade_compute) {
    outputs.resize(batch.size());
    std::vector<const core::CascadeTrn::Stage1*> to_escalate;
    std::vector<std::size_t> slots;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (escalate[i] != 0) {
        to_escalate.push_back(&stages[i]);
        slots.push_back(i);
      } else {
        outputs[i] = std::move(stages[i].output);
      }
    }
    if (!to_escalate.empty()) {
      std::vector<tensor::Tensor> deep = opt.cascade.trn->escalate_batch(to_escalate);
      for (std::size_t j = 0; j < slots.size(); ++j) outputs[slots[j]] = std::move(deep[j]);
    }
  } else if (opt.net != nullptr) {
    std::vector<const tensor::Tensor*> inputs;
    inputs.reserve(batch.size());
    for (const Request& r : batch) {
      if (r.input == nullptr)
        throw std::invalid_argument("BatchServer: null input on a compute option");
      inputs.push_back(r.input);
    }
    outputs = opt.net->forward_batch(inputs);
  }

  // Accounting happens under mu_ — only after the forward above, so no
  // lock is ever held across compute (the pool's completion wait must not
  // run under a serve lock).
  util::MutexLock lock(mu_);

  // Simulated time: the device model's batched latency (plus the cascade's
  // realized stage-2 mass), with run-to-run jitter and whatever the fault
  // schedule does to this launch. A failed run still burns the time but
  // yields no usable results.
  const double nominal =
      opt.latency_ms(n) + (n_escalated > 0 ? opt.cascade.stage2_ms(n_escalated) : 0.0);
  double service = nominal * rng_.lognormal(0.0, config_.jitter_sigma);
  hw::RunFault fault;
  if (fault_stream_.active()) fault = fault_stream_.next(static_cast<int>(batch_counter_));
  service *= fault.multiplier;
  const double finish = now_ms + service;
  if (!fault.failed) slowdown_ += kSlowdownAlpha * (service / nominal - slowdown_);

  std::vector<Completion> done;
  done.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Request& r = batch[i];
    Completion c;
    c.id = r.id;
    c.arrival_ms = r.arrival_ms;
    c.deadline_ms = r.deadline_ms;
    c.tenant = r.tenant;
    c.slo = r.slo;
    c.finish_ms = finish;
    c.failed = fault.failed;
    c.missed = fault.failed || finish > r.deadline_ms;
    c.escalated = escalate[i] != 0;
    c.option = cur;
    c.batch = n;
    if (i < outputs.size()) c.output = std::move(outputs[i]);
    done.push_back(std::move(c));
  }

  // Feed every completion's verdict to the shared breach policy: queue
  // saturation (waiting time pushing finishes past deadlines) is
  // indistinguishable from device degradation here, and gets the same
  // fallback.
  if (watchdog_.adaptive()) {
    for (const Completion& c : done) {
      const std::size_t at = watchdog_.current();
      const bool slower_fits =
          at > 0 && expected_latency_ms(options_[at - 1], 1) * slowdown_ <=
                        config_.watchdog.recover_headroom * config_.nominal_deadline_ms;
      const app::MissRateWatchdog::Decision dec = watchdog_.observe(c.missed, slower_fits);
      if (dec.action == app::MissRateWatchdog::Action::kFallBack)
        stats_.switches.push_back({batch_counter_, at, at + 1, dec.window_miss_rate});
      else if (dec.action == app::MissRateWatchdog::Action::kRecover)
        stats_.switches.push_back({batch_counter_, at, at - 1, dec.window_miss_rate});
    }
  }

  stats_.served += n;
  for (const Completion& c : done) stats_.missed += c.missed ? 1 : 0;
  stats_.escalated += n_escalated;
  stats_.batches += 1;
  stats_.busy_ms += service;
  ++batch_counter_;
  return done;
}

}  // namespace netcut::serve
