#include "serve/server.hpp"

#include <stdexcept>
#include <utility>

namespace netcut::serve {

namespace {
constexpr double kSlowdownAlpha = 0.1;  // matches the control loop's EWMA
}  // namespace

BatchServer::BatchServer(std::vector<ServeOption> options, RequestQueue& queue,
                         ServeConfig config)
    : options_(std::move(options)),
      queue_(queue),
      config_(config),
      former_(BatcherConfig{config.max_batch},
              [this](int n) { return options_[watchdog_.current()].latency_ms(n); }),
      watchdog_(config.watchdog, options_.empty() ? 1 : options_.size()),
      rng_(util::derive_seed(config.seed, "serve/service")) {
  if (options_.empty()) throw std::invalid_argument("BatchServer: no TRN options");
  for (const ServeOption& o : options_)
    if (!o.latency_ms) throw std::invalid_argument("BatchServer: null latency model");
  if (config_.nominal_deadline_ms <= 0)
    throw std::invalid_argument("BatchServer: bad nominal deadline");
  const hw::FaultModel& model =
      config_.faults != nullptr ? *config_.faults : hw::FaultModel::global();
  if (model.active()) fault_stream_ = model.stream("serve");
}

void BatchServer::note_capacity_loss() {
  util::MutexLock lock(mu_);
  const std::size_t at = watchdog_.current();
  if (watchdog_.note_capacity_loss())
    stats_.switches.push_back({batch_counter_, at, at + 1, watchdog_.window_miss_rate()});
}

std::vector<Completion> BatchServer::step(double now_ms) {
  const std::size_t cur = watchdog_.current();
  std::vector<Request> batch = queue_.take([&](const Request& head, std::size_t pending) {
    return former_.choose(now_ms, head.deadline_ms, pending);
  });
  if (batch.empty()) return {};
  const int n = static_cast<int>(batch.size());

  // Real compute: one batched pass, bitwise identical to n single-image
  // forwards (outputs skipped for timing-only options).
  std::vector<tensor::Tensor> outputs;
  if (options_[cur].net != nullptr) {
    std::vector<const tensor::Tensor*> inputs;
    inputs.reserve(batch.size());
    for (const Request& r : batch) {
      if (r.input == nullptr)
        throw std::invalid_argument("BatchServer: null input on a compute option");
      inputs.push_back(r.input);
    }
    outputs = options_[cur].net->forward_batch(inputs);
  }

  // Accounting happens under mu_ — only after the forward above, so no
  // lock is ever held across compute (the pool's completion wait must not
  // run under a serve lock).
  util::MutexLock lock(mu_);

  // Simulated time: the device model's batched latency, with run-to-run
  // jitter and whatever the fault schedule does to this launch. A failed
  // run still burns the time but yields no usable results.
  const double nominal = options_[cur].latency_ms(n);
  double service = nominal * rng_.lognormal(0.0, config_.jitter_sigma);
  hw::RunFault fault;
  if (fault_stream_.active()) fault = fault_stream_.next(static_cast<int>(batch_counter_));
  service *= fault.multiplier;
  const double finish = now_ms + service;
  if (!fault.failed) slowdown_ += kSlowdownAlpha * (service / nominal - slowdown_);

  std::vector<Completion> done;
  done.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Request& r = batch[i];
    Completion c;
    c.id = r.id;
    c.arrival_ms = r.arrival_ms;
    c.deadline_ms = r.deadline_ms;
    c.tenant = r.tenant;
    c.slo = r.slo;
    c.finish_ms = finish;
    c.failed = fault.failed;
    c.missed = fault.failed || finish > r.deadline_ms;
    c.option = cur;
    c.batch = n;
    if (i < outputs.size()) c.output = std::move(outputs[i]);
    done.push_back(std::move(c));
  }

  // Feed every completion's verdict to the shared breach policy: queue
  // saturation (waiting time pushing finishes past deadlines) is
  // indistinguishable from device degradation here, and gets the same
  // fallback.
  if (watchdog_.adaptive()) {
    for (const Completion& c : done) {
      const std::size_t at = watchdog_.current();
      const bool slower_fits =
          at > 0 && options_[at - 1].latency_ms(1) * slowdown_ <=
                        config_.watchdog.recover_headroom * config_.nominal_deadline_ms;
      const app::MissRateWatchdog::Decision dec = watchdog_.observe(c.missed, slower_fits);
      if (dec.action == app::MissRateWatchdog::Action::kFallBack)
        stats_.switches.push_back({batch_counter_, at, at + 1, dec.window_miss_rate});
      else if (dec.action == app::MissRateWatchdog::Action::kRecover)
        stats_.switches.push_back({batch_counter_, at, at - 1, dec.window_miss_rate});
    }
  }

  stats_.served += n;
  for (const Completion& c : done) stats_.missed += c.missed ? 1 : 0;
  stats_.batches += 1;
  stats_.busy_ms += service;
  ++batch_counter_;
  return done;
}

}  // namespace netcut::serve
