// BatchServer: the deadline-aware serving layer (the "one camera, one
// hand" control loop generalized to many concurrent clients).
//
// One step serves one batch: the greedy former picks the largest
// earliest-deadline prefix of the queue whose estimated batched latency
// still meets the batch's earliest deadline, the batch runs through the
// TRN's true batch-N forward path (bitwise identical to N single-image
// passes — see Network::forward_batch), and service time is charged by the
// device model's batched roofline plus seeded jitter and the optional
// NETCUT_FAULTS schedule.
//
// Like the prosthetic control loop, the server carries a Pareto front of
// TRN options (preferred first, fastest fallback last) and feeds every
// completion's deadline verdict to the shared MissRateWatchdog: a saturated
// queue — arrivals outpacing service — looks exactly like a degrading
// device, so the same breach policy sheds load by falling back to a faster
// TRN, and the same hysteresis steps back up once the queue calms and the
// slower network is predicted to fit again.
//
// The server is clock-agnostic: `now_ms` comes from the caller, so the
// deterministic simulated clock (tests/serve_sim.hpp) and a wall clock
// drive identical code.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "app/watchdog.hpp"
#include "core/cascade.hpp"
#include "hw/faults.hpp"
#include "nn/network.hpp"
#include "serve/batcher.hpp"
#include "serve/queue.hpp"
#include "util/ranked_mutex.hpp"
#include "util/rng.hpp"
#include "util/thread_annotations.hpp"

namespace netcut::serve {

/// Input-adaptive cascade riding on a ServeOption: the option's net /
/// latency_ms describe the *shallow* first stage, and this struct adds the
/// calibrated escalation behaviour. Escalation is gated twice per request:
/// by confidence (softmax margin below `threshold`) and by deadline slack —
/// an escalation-worthy request still exits shallow when the nominal
/// two-stage time would blow its deadline (a confident-but-late answer
/// beats a better-but-missed one).
struct ServeCascade {
  bool enabled = false;
  /// Runs real two-stage compute. May be null for timing-only simulations:
  /// escalation wishes are then drawn per request id from a seed derived
  /// from the server seed, so the decision for a given request is identical
  /// however batches form or steal across workers.
  core::CascadeTrn* trn = nullptr;
  /// Escalate when the stage-1 softmax margin falls below this.
  double threshold = 0.0;
  /// Calibrated escalation mass (CascadeExplorer), used by batch formation
  /// to budget the expected stage-2 time, and as the wish probability of
  /// timing-only options.
  double p_escalate = 0.0;
  /// Nominal stage-2 latency for k escalated requests (the delta layers
  /// plus the deep head — e.g. LatencyLab::true_stage2_batch_ms curried).
  /// Must be non-decreasing in k. Required when enabled.
  std::function<double(int)> stage2_ms;
};

/// One deployable TRN on the latency/accuracy Pareto front.
struct ServeOption {
  std::string name;  // paper-style "ResNet50/113"
  /// Runs the real batched forward for completions. May be null for
  /// timing-only simulations (outputs are then left empty). Ignored when
  /// cascade.trn is set (the cascade then owns compute).
  nn::Network* net = nullptr;
  /// Nominal (noise-free) service time of a batch of n on the device, e.g.
  /// LatencyLab::true_batch_ms or ProfilerEstimator::estimate_batch_ms
  /// curried over (base, cut). Must be non-decreasing in n. With a cascade
  /// this is the *stage-1* (shallow) latency.
  std::function<double(int)> latency_ms;
  /// Confidence-gated second stage; disabled by default.
  ServeCascade cascade;
};

struct ServeConfig {
  int max_batch = 8;
  /// Nominal relative deadline clients are expected to attach, used only
  /// for the watchdog's recovery fit test (the prediction that the slower
  /// TRN would meet deadlines again).
  double nominal_deadline_ms = 10.0;
  double jitter_sigma = 0.015;  // lognormal service-time noise
  std::uint64_t seed = 7070;
  app::WatchdogConfig watchdog;
  /// Fault schedule; nullptr falls back to FaultModel::global()
  /// (the NETCUT_FAULTS environment schedule).
  const hw::FaultModel* faults = nullptr;
};

/// Sentinel worker index for completions not served by a fleet replica
/// (single-server use, or an admission-control rejection).
inline constexpr std::size_t kNoWorker = static_cast<std::size_t>(-1);

/// Outcome of one request.
struct Completion {
  std::uint64_t id = 0;
  double arrival_ms = 0.0;
  double deadline_ms = 0.0;
  double finish_ms = 0.0;
  std::uint32_t tenant = 0;   // copied from the request
  std::uint32_t slo = 0;      // copied from the request
  bool missed = false;        // finished after its deadline (or failed)
  bool failed = false;        // the serving run failed under faults
  /// Shed by admission control: never admitted, never served. An explicit
  /// verdict — a shed request is not a silent miss. finish_ms is the
  /// rejection time and missed/failed stay false.
  bool rejected = false;
  /// Served by the cascade's second stage (low stage-1 confidence and the
  /// deadline had slack for the deep TRN).
  bool escalated = false;
  std::size_t option = 0;     // Pareto-front index that served it
  std::size_t worker = kNoWorker;  // fleet replica that served it
  int batch = 0;              // size of the batch it rode in
  tensor::Tensor output;      // empty when the option has no network
};

/// One watchdog move, for reporting.
struct ServeSwitch {
  std::int64_t batch_index = 0;
  std::size_t from = 0;
  std::size_t to = 0;
  double window_miss_rate = 0.0;
};

struct ServeStats {
  std::int64_t served = 0;
  std::int64_t missed = 0;
  std::int64_t escalated = 0;  // requests the cascade sent to stage 2
  std::int64_t batches = 0;
  double busy_ms = 0.0;  // total service time charged
  std::vector<ServeSwitch> switches;
};

/// Nominal service time of a batch of n on `opt`, including the *expected*
/// escalation mass of an enabled cascade: latency_ms(n) plus the stage-2
/// time for ceil(p_escalate * n) requests. Batch formation and admission
/// control budget with this, so an escalating option is never batched as if
/// stage 2 were free.
double expected_latency_ms(const ServeOption& opt, int n);

class BatchServer {
 public:
  BatchServer(std::vector<ServeOption> options, RequestQueue& queue, ServeConfig config);

  /// Serve one batch from the queue at time `now_ms`. Returns the batch's
  /// completions in EDF order (empty when the queue is empty); every
  /// completion in the batch shares one finish time.
  ///
  /// Concurrency: one stepper at a time per server (each fleet worker owns
  /// its replica) — the jitter/fault streams are sequential draws. The
  /// reporting getters below are safe from any thread *concurrent with*
  /// the stepper: accounting state is guarded by mu_, taken only after the
  /// batch forward (no lock is held across compute, so a reporter never
  /// blocks behind a batch and the pool's completion wait never runs under
  /// a serve lock).
  std::vector<Completion> step(double now_ms);

  /// Pareto-front index currently in service (0 = preferred). Safe from
  /// any thread (the watchdog guards its own window state).
  std::size_t current_option() const { return watchdog_.current(); }

  /// Nominal latency of the fastest (last) Pareto option for a batch of n —
  /// the admission-control bound: if even this cannot meet a deadline,
  /// nothing on this replica can. Includes expected escalation mass.
  double fastest_latency_ms(int n) const { return expected_latency_ms(options_.back(), n); }

  std::size_t option_count() const { return options_.size(); }
  const std::string& option_name(std::size_t i) const { return options_[i].name; }

  /// Miss rate over the watchdog's current sliding window (0 until it has
  /// observations) — the live health signal fleet reports surface.
  double window_miss_rate() const { return watchdog_.window_miss_rate(); }

  /// Fleet capacity-loss signal (a sibling replica went Down and this one
  /// inherits a slice of its load): proactively fall back one Pareto step
  /// — degraded accuracy now beats the mass deadline misses the extra load
  /// would cause before the miss-rate window could react. Recorded as a
  /// ServeSwitch; a no-op when the watchdog is disabled or already at the
  /// fastest option. Safe from any thread.
  void note_capacity_loss();

  /// Snapshot of the accounting counters (by value: a reference into
  /// mutex-guarded state would dangle past the lock).
  ServeStats stats() const {
    util::MutexLock lock(mu_);
    return stats_;
  }
  const ServeConfig& config() const { return config_; }

 private:
  std::vector<ServeOption> options_;  // immutable after construction
  RequestQueue& queue_;
  ServeConfig config_;                // immutable after construction
  BatchFormer former_;                // stateless policy (const choose)
  app::MissRateWatchdog watchdog_;    // internally synchronized
  /// Guards the accounting state below. Rank kServer: taken before the
  /// watchdog's own mutex (observe under accounting) and never while the
  /// queue lock is held.
  mutable util::RankedMutex mu_{util::rank::kServer, "serve/server"};
  /// Seed for timing-only escalation wishes, drawn per request *id* (not
  /// from rng_): a request's wish is identical however batches form, and
  /// the jitter stream stays aligned with cascade-free configurations.
  std::uint64_t cascade_seed_;
  util::Rng rng_ NETCUT_GUARDED_BY(mu_);
  hw::FaultStream fault_stream_ NETCUT_GUARDED_BY(mu_);
  // EWMA of observed / nominal service time.
  double slowdown_ NETCUT_GUARDED_BY(mu_) = 1.0;
  std::int64_t batch_counter_ NETCUT_GUARDED_BY(mu_) = 0;
  ServeStats stats_ NETCUT_GUARDED_BY(mu_);
};

}  // namespace netcut::serve
